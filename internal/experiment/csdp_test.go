package experiment

import (
	"strings"
	"testing"
	"time"

	"wtcp/internal/multiconn"
	"wtcp/internal/units"
)

func TestCSDPStudyOrdering(t *testing.T) {
	points, err := CSDPStudy(CSDPOptions{
		Connections:  4,
		Replications: 2,
		Transfer:     256 * units.KB,
		BadPeriods:   []time.Duration{time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want one per policy", len(points))
	}
	byPolicy := map[multiconn.Policy]float64{}
	for _, p := range points {
		byPolicy[p.Policy] = p.AggregateKbps.Mean()
	}
	if !(byPolicy[multiconn.RoundRobin] > byPolicy[multiconn.FIFO]) {
		t.Errorf("RR %.0f not above FIFO %.0f", byPolicy[multiconn.RoundRobin], byPolicy[multiconn.FIFO])
	}
	if !(byPolicy[multiconn.CSDP] > byPolicy[multiconn.FIFO]) {
		t.Errorf("CSDP %.0f not above FIFO %.0f", byPolicy[multiconn.CSDP], byPolicy[multiconn.FIFO])
	}
}

func TestCSDPRenderers(t *testing.T) {
	points, err := CSDPStudy(CSDPOptions{
		Connections:  2,
		Replications: 1,
		Transfer:     128 * units.KB,
		BadPeriods:   []time.Duration{time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	table := RenderCSDPTable("study", points)
	if !strings.Contains(table, "fifo") || !strings.Contains(table, "csdp") {
		t.Errorf("table malformed:\n%s", table)
	}
	csv := CSDPCSV(points)
	if !strings.Contains(csv, "roundrobin,1.0,") {
		t.Errorf("csv malformed:\n%s", csv)
	}
}

func TestCongestionStudyShape(t *testing.T) {
	points, err := CongestionStudy(CongestionOptions{
		Replications: 2,
		Transfer:     40 * units.KB,
		Loads:        []float64{0, 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 2 schemes x 2 loads", len(points))
	}
	get := func(s string, load float64) CongestionPoint {
		for _, p := range points {
			if p.Scheme.String() == s && p.LoadFraction == load {
				return p
			}
		}
		t.Fatal("point missing")
		return CongestionPoint{}
	}
	// EBSN still wins under wired congestion (its benefit is orthogonal
	// to congestion losses).
	for _, load := range []float64{0, 0.6} {
		b := get("basic", load)
		e := get("ebsn", load)
		if e.ThroughputKbps.Mean() <= b.ThroughputKbps.Mean()*0.95 {
			t.Errorf("load %.0f%%: EBSN %.2f not above basic %.2f",
				100*load, e.ThroughputKbps.Mean(), b.ThroughputKbps.Mean())
		}
	}
	// Loading the wire does not increase throughput.
	e0, e6 := get("ebsn", 0), get("ebsn", 0.6)
	if e6.ThroughputKbps.Mean() > e0.ThroughputKbps.Mean()*1.05 {
		t.Errorf("EBSN throughput rose under congestion: %.2f -> %.2f",
			e0.ThroughputKbps.Mean(), e6.ThroughputKbps.Mean())
	}
	table := RenderCongestionTable("congestion", points)
	if !strings.Contains(table, "60%") {
		t.Errorf("table malformed:\n%s", table)
	}
}

func TestCrossTrafficHeavyLoadStillCompletes(t *testing.T) {
	// Saturating cross traffic (95% of the wire) plus the TCP transfer:
	// the run must still complete (TCP backs off) and the wired queue
	// must actually drop something.
	points, err := CongestionStudy(CongestionOptions{
		Replications: 1,
		Transfer:     20 * units.KB,
		Loads:        []float64{0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.ThroughputKbps.Mean() <= 0 {
			t.Errorf("%v did not complete under heavy cross traffic", p.Scheme)
		}
	}
}
