package chaos

import (
	"errors"
	"time"

	"wtcp/internal/link"
	"wtcp/internal/packet"
	"wtcp/internal/sim"
)

// Stats counts injected faults over a run.
type Stats struct {
	// StormDrops counts deliveries lost to burst-loss storms; blackout
	// losses appear in the affected link's Corrupted counter instead
	// (blackouts are modelled as certain corruption at the channel).
	StormDrops uint64
	// CorruptDrops, Duplicates, and Reorders count per-packet fault
	// injections across all hops.
	CorruptDrops uint64
	Duplicates   uint64
	Reorders     uint64
	// NotifyDropped, NotifyDuplicated, and NotifyDelayed count EBSN/
	// quench notification faults.
	NotifyDropped    uint64
	NotifyDuplicated uint64
	NotifyDelayed    uint64
	// Crashes counts base-station failures injected; CrashLostPackets
	// counts the forwarding state lost with them.
	Crashes          uint64
	CrashLostPackets uint64
	// EventStormEvents counts kernel events fired by event storms (the
	// resource-exhaustion fault).
	EventStormEvents uint64
}

// Crashable is the station-side contract for crash injection. Crash
// returns the number of packets whose forwarding state was lost.
type Crashable interface {
	Crash() int
	Restart()
}

// Injector executes a validated fault plan against an assembled topology.
// Create with New, then Attach each link and ScheduleCrashes the base
// station; everything else runs off simulation events.
type Injector struct {
	sim *sim.Simulator
	rng *sim.RNG
	cfg *Config

	stats Stats
}

// New builds an injector for the given plan. rng must be dedicated to the
// injector (derived from the scenario seed) so chaos draws never perturb
// the channel's or the ARQ's sequences.
func New(s *sim.Simulator, cfg *Config, rng *sim.RNG) (*Injector, error) {
	if s == nil {
		return nil, errors.New("chaos: nil simulator")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Enabled() && rng == nil {
		return nil, errors.New("chaos: nil RNG")
	}
	return &Injector{sim: s, rng: rng, cfg: cfg}, nil
}

// Stats returns a copy of the fault counters.
func (in *Injector) Stats() Stats { return in.stats }

// faultsFor returns the per-packet fault entry for a hop, if any.
func (in *Injector) faultsFor(name string) (PacketFaults, bool) {
	for _, p := range in.cfg.Packets {
		if p.Link == name && p.enabled() {
			return p, true
		}
	}
	return PacketFaults{}, false
}

// stormsFor returns the storm windows for a hop.
func (in *Injector) stormsFor(name string) []Storm {
	var out []Storm
	for _, s := range in.cfg.Storms {
		if s.Link == name && s.LossProb > 0 {
			out = append(out, s)
		}
	}
	return out
}

// notifyApplies reports whether notification faults act on this hop.
// Notifications travel BS -> FH, i.e. the reverse wired hop.
func (in *Injector) notifyApplies(name string) bool {
	return name == WiredRev && in.cfg.Notify.enabled()
}

// Attach installs this plan's delivery-time faults on l (storms, packet
// corruption/duplication/reordering, and — on the reverse wired hop —
// notification faults). Hops with no applicable faults are left
// untouched. Blackouts are not handled here: they ride the link's error
// channel via Config.OverlayChannel.
func (in *Injector) Attach(l *link.Link) {
	name := l.Name()
	pf, hasPF := in.faultsFor(name)
	storms := in.stormsFor(name)
	notify := in.notifyApplies(name)
	if !hasPF && len(storms) == 0 && !notify {
		return
	}
	l.SetInterceptor(func(p *packet.Packet) bool {
		now := in.sim.Now()
		for _, s := range storms {
			if now >= s.At && now < s.At+s.Length && in.rng.Bernoulli(s.LossProb) {
				in.stats.StormDrops++
				return false
			}
		}
		if notify && p.IsNotification() {
			return in.deliverNotification(l, p)
		}
		if hasPF {
			return in.deliverWithPacketFaults(l, pf, p)
		}
		return true
	})
}

// deliverNotification applies loss/duplication/delay to one EBSN or
// quench message. Returning false consumes the original; duplicated or
// delayed copies re-enter the receiver via Inject.
func (in *Injector) deliverNotification(l *link.Link, p *packet.Packet) bool {
	if in.rng.Bernoulli(in.cfg.Notify.LossProb) {
		in.stats.NotifyDropped++
		return false
	}
	if in.cfg.Notify.DupProb > 0 && in.rng.Bernoulli(in.cfg.Notify.DupProb) {
		in.stats.NotifyDuplicated++
		dup := *p
		in.sim.Schedule(0, func() { l.Inject(&dup) })
	}
	if in.cfg.Notify.DelayProb > 0 && in.rng.Bernoulli(in.cfg.Notify.DelayProb) {
		in.stats.NotifyDelayed++
		held := p
		in.sim.Schedule(in.cfg.Notify.Delay, func() { l.Inject(held) })
		return false
	}
	return true
}

// deliverWithPacketFaults applies the per-packet corruption, duplication,
// and reordering draws. Order matters and is fixed for determinism:
// corruption first (a corrupted packet cannot also duplicate), then
// duplication, then reordering.
func (in *Injector) deliverWithPacketFaults(l *link.Link, pf PacketFaults, p *packet.Packet) bool {
	if pf.CorruptProb > 0 && in.rng.Bernoulli(pf.CorruptProb) {
		in.stats.CorruptDrops++
		return false
	}
	if pf.DupProb > 0 && in.rng.Bernoulli(pf.DupProb) {
		in.stats.Duplicates++
		dup := *p
		in.sim.Schedule(0, func() { l.Inject(&dup) })
	}
	if pf.ReorderProb > 0 && in.rng.Bernoulli(pf.ReorderProb) {
		in.stats.Reorders++
		held := p
		in.sim.Schedule(pf.ReorderDelay, func() { l.Inject(held) })
		return false
	}
	return true
}

// ScheduleCrashes arms the plan's base-station crash/restart cycles
// against target.
func (in *Injector) ScheduleCrashes(target Crashable) {
	for _, cr := range in.cfg.Crashes {
		cr := cr
		in.sim.ScheduleAt(cr.At, func() {
			in.stats.Crashes++
			in.stats.CrashLostPackets += uint64(target.Crash())
		})
		in.sim.ScheduleAt(cr.At+cr.Downtime, func() { target.Restart() })
	}
}

// ScheduleEventStorms arms the plan's event storms: each floods the
// kernel with self-rescheduling events starting at its At. The storm
// touches no packets and draws no randomness — its entire effect is
// scheduler load, which is exactly what a resource budget (sim.Budget)
// exists to bound. An unbounded zero-spacing storm is a deliberate
// same-instant livelock: without an event budget nothing ends the run.
func (in *Injector) ScheduleEventStorms() {
	for _, es := range in.cfg.EventStorms {
		es := es
		fired := int64(0)
		var tick func()
		tick = func() {
			in.stats.EventStormEvents++
			fired++
			if es.Count > 0 && fired >= es.Count {
				return
			}
			in.sim.Schedule(es.Spacing, tick)
		}
		in.sim.ScheduleAt(es.At, tick)
	}
}

// Horizon reports the virtual time of the last scheduled fault (the end
// of the latest window, crash downtime, or zero when the plan only has
// probabilistic faults). Scenario runners can use it to sanity-check that
// the run horizon actually covers the injected faults.
func (c *Config) Horizon() time.Duration {
	if c == nil {
		return 0
	}
	var h time.Duration
	bump := func(t time.Duration) {
		if t > h {
			h = t
		}
	}
	for _, b := range c.Blackouts {
		bump(b.At + b.Length)
	}
	for _, s := range c.Storms {
		bump(s.At + s.Length)
	}
	for _, cr := range c.Crashes {
		bump(cr.At + cr.Downtime)
	}
	for _, es := range c.EventStorms {
		end := es.At
		if es.Count > 0 {
			end += time.Duration(es.Count-1) * es.Spacing
		}
		bump(end)
	}
	return h
}
