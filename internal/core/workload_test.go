package core

import (
	"sort"
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/distrib"
	"wtcp/internal/units"
)

func webWL() WebWorkload {
	return WebWorkload{Pages: 8, PageSize: 8 * units.KB, ThinkTime: 2 * time.Second}
}

func telnetWL() TelnetWorkload {
	return TelnetWorkload{Keystrokes: 100, Interval: 500 * time.Millisecond, WriteSize: 4}
}

func TestWorkloadValidation(t *testing.T) {
	cfg := WAN(bs.Basic, 576, time.Second)
	if _, err := RunWeb(cfg, WebWorkload{}); err == nil {
		t.Error("empty web workload accepted")
	}
	if _, err := RunTelnet(cfg, TelnetWorkload{}); err == nil {
		t.Error("empty telnet workload accepted")
	}
	for _, scheme := range []bs.Scheme{bs.Snoop, bs.SplitConnection} {
		cfg := WAN(scheme, 576, time.Second)
		if _, err := RunWeb(cfg, webWL()); err == nil {
			t.Errorf("web accepted %v", scheme)
		}
		if _, err := RunTelnet(cfg, telnetWL()); err == nil {
			t.Errorf("telnet accepted %v", scheme)
		}
	}
}

func TestWebWorkloadCompletes(t *testing.T) {
	for _, scheme := range []bs.Scheme{bs.Basic, bs.LocalRecovery, bs.EBSN} {
		r, err := RunWeb(WAN(scheme, 576, 4*time.Second), webWL())
		if err != nil {
			t.Fatal(err)
		}
		if !r.Completed {
			t.Fatalf("%v: only %d pages loaded", scheme, len(r.PageLoadSec))
		}
		if len(r.PageLoadSec) != 8 {
			t.Fatalf("%v: %d page samples", scheme, len(r.PageLoadSec))
		}
		for i, sec := range r.PageLoadSec {
			if sec <= 0 {
				t.Errorf("%v page %d load = %v", scheme, i, sec)
			}
		}
		if r.P95LoadSec < r.MeanLoadSec {
			t.Errorf("%v: p95 %.2f below mean %.2f", scheme, r.P95LoadSec, r.MeanLoadSec)
		}
	}
}

func TestWebEBSNImprovesPageLoads(t *testing.T) {
	mean := func(scheme bs.Scheme) (m, p95 float64) {
		const n = 3
		for seed := int64(1); seed <= n; seed++ {
			cfg := WAN(scheme, 576, 4*time.Second)
			cfg.Seed = seed
			r, err := RunWeb(cfg, webWL())
			if err != nil {
				t.Fatal(err)
			}
			if !r.Completed {
				t.Fatalf("%v seed %d incomplete", scheme, seed)
			}
			m += r.MeanLoadSec / n
			p95 += r.P95LoadSec / n
		}
		return m, p95
	}
	bMean, bP95 := mean(bs.Basic)
	eMean, eP95 := mean(bs.EBSN)
	if eMean >= bMean {
		t.Errorf("EBSN mean page load %.2fs not below basic %.2fs", eMean, bMean)
	}
	if eP95 >= bP95 {
		t.Errorf("EBSN p95 page load %.2fs not below basic %.2fs", eP95, bP95)
	}
}

func TestTelnetWorkloadCompletes(t *testing.T) {
	r, err := RunTelnet(WAN(bs.EBSN, 576, 4*time.Second), telnetWL())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("delivered %d keystroke latencies", len(r.LatencySec))
	}
	if len(r.LatencySec) != 100 {
		t.Fatalf("latency samples = %d", len(r.LatencySec))
	}
	// Baseline latency on a clean path is a few hundred ms (wired
	// 50 ms prop + serialization); even the mean under fades stays
	// bounded.
	if r.MeanLatency <= 0 || r.MeanLatency > 60 {
		t.Errorf("mean latency = %.3fs", r.MeanLatency)
	}
}

func TestTelnetEBSNImprovesLatency(t *testing.T) {
	mean := func(scheme bs.Scheme) float64 {
		var sum float64
		const n = 3
		for seed := int64(1); seed <= n; seed++ {
			cfg := WAN(scheme, 576, 4*time.Second)
			cfg.Seed = seed
			r, err := RunTelnet(cfg, telnetWL())
			if err != nil {
				t.Fatal(err)
			}
			if !r.Completed {
				t.Fatalf("%v seed %d incomplete", scheme, seed)
			}
			sum += r.MeanLatency / n
		}
		return sum
	}
	basic := mean(bs.Basic)
	ebsn := mean(bs.EBSN)
	if ebsn >= basic {
		t.Errorf("EBSN keystroke latency %.3fs not below basic %.3fs", ebsn, basic)
	}
}

func TestWorkloadCleanChannelFast(t *testing.T) {
	cfg := WAN(bs.Basic, 576, time.Second)
	cfg.Channel.GoodBER = 0
	cfg.Channel.BadBER = 0
	r, err := RunTelnet(cfg, telnetWL())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("clean telnet incomplete")
	}
	// ~50ms wired prop + ~30ms serialization + 5ms radio: well under 1s.
	if r.P95Latency > 1.0 {
		t.Errorf("clean-channel p95 keystroke latency = %.3fs", r.P95Latency)
	}
	if r.Timeouts != 0 {
		t.Errorf("clean-channel timeouts = %d", r.Timeouts)
	}
}

func TestWebHeavyTailedPages(t *testing.T) {
	pareto, err := distrib.ParetoWithMean(1.3, float64(8*units.KB))
	if err != nil {
		t.Fatal(err)
	}
	cfg := WAN(bs.EBSN, 576, 2*time.Second)
	r, err := RunWeb(cfg, WebWorkload{
		Pages:     12,
		PageSizes: pareto,
		ThinkTime: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("heavy-tailed web run incomplete: %d pages", len(r.PageLoadSec))
	}
	// Heavy-tailed sizes make page loads far more dispersed than fixed
	// sizes: the max should dwarf the median.
	sorted := append([]float64(nil), r.PageLoadSec...)
	sort.Float64s(sorted)
	if sorted[len(sorted)-1] < 2*sorted[len(sorted)/2] {
		t.Logf("note: tail not pronounced in this draw (max %.2f vs median %.2f)",
			sorted[len(sorted)-1], sorted[len(sorted)/2])
	}
	// Reproducibility: the same seed draws the same page sequence.
	r2, err := RunWeb(cfg, WebWorkload{Pages: 12, PageSizes: pareto, ThinkTime: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.PageLoadSec) != len(r.PageLoadSec) {
		t.Fatal("replay length differs")
	}
	for i := range r.PageLoadSec {
		if r.PageLoadSec[i] != r2.PageLoadSec[i] {
			t.Fatalf("page %d load differs across identical runs", i)
		}
	}
}

func TestWebDistributionValidation(t *testing.T) {
	cfg := WAN(bs.Basic, 576, time.Second)
	// A distribution alone (no fixed size) is acceptable.
	if _, err := RunWeb(cfg, WebWorkload{Pages: 2, PageSizes: distrib.Constant(4096), ThinkTime: time.Second}); err != nil {
		t.Errorf("distribution-only workload rejected: %v", err)
	}
	// Degenerate draws clamp to one byte rather than breaking the run.
	if _, err := RunWeb(cfg, WebWorkload{Pages: 2, PageSizes: distrib.Constant(0.2), ThinkTime: time.Second}); err != nil {
		t.Errorf("sub-byte draws broke the run: %v", err)
	}
}
