package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"wtcp/internal/cell"
	"wtcp/internal/errmodel"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

func cellTestConfig(flows int) CellConfig {
	return CellConfig{Config: cell.Config{
		Flows:             flows,
		Policy:            cell.RoundRobin,
		TransferSize:      32 * units.KB,
		PacketSize:        1536,
		Window:            16 * units.KB,
		WiredRate:         10 * units.Mbps,
		WiredDelay:        time.Millisecond,
		WirelessRate:      2 * units.Mbps,
		WirelessDelay:     time.Millisecond,
		Channel:           errmodel.PaperLAN(time.Second),
		PredictorAccuracy: 1.0,
		Seed:              1,
	}}
}

func TestRunCellCompletes(t *testing.T) {
	res, err := RunCell(context.Background(), cellTestConfig(4))
	if err != nil {
		t.Fatalf("RunCell: %v", err)
	}
	if !res.Completed || res.CompletedFlows != 4 {
		t.Fatalf("completed %d/4 flows", res.CompletedFlows)
	}
}

func TestRunCellValidates(t *testing.T) {
	cfg := cellTestConfig(4)
	cfg.Flows = 0
	if _, err := RunCell(context.Background(), cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunCellCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCell(ctx, cellTestConfig(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
}

func TestRunCellBudget(t *testing.T) {
	cfg := cellTestConfig(8)
	cfg.Budget = sim.Budget{MaxEvents: 5}
	_, err := RunCell(context.Background(), cfg)
	var be *sim.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want a *sim.BudgetError", err)
	}
}
