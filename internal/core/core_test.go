package core

import (
	"math"
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

func TestWANPresetMatchesPaper(t *testing.T) {
	cfg := WAN(bs.Basic, 576, 2*time.Second)
	if cfg.WiredRate != 56*units.Kbps {
		t.Errorf("wired rate = %v", cfg.WiredRate)
	}
	if cfg.WirelessRate != 19200 {
		t.Errorf("wireless rate = %v", cfg.WirelessRate)
	}
	if cfg.WirelessOverhead != 1.5 {
		t.Errorf("overhead = %v", cfg.WirelessOverhead)
	}
	if cfg.MTU != 128 {
		t.Errorf("MTU = %v", cfg.MTU)
	}
	if cfg.Window != 4*units.KB {
		t.Errorf("window = %v", cfg.Window)
	}
	if cfg.TransferSize != 100*units.KB {
		t.Errorf("transfer = %v", cfg.TransferSize)
	}
	if cfg.MSS() != 536 {
		t.Errorf("MSS = %v", cfg.MSS())
	}
	if got := cfg.EffectiveWirelessRate(); got != 12800 {
		t.Errorf("effective rate = %v, want 12.8kbps", got)
	}
	if cfg.Channel.MeanGood != 10*time.Second || cfg.Channel.MeanBad != 2*time.Second {
		t.Errorf("channel = %+v", cfg.Channel)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestLANPresetMatchesPaper(t *testing.T) {
	cfg := LAN(bs.EBSN, 800*time.Millisecond)
	if cfg.WiredRate != 10*units.Mbps || cfg.WirelessRate != 2*units.Mbps {
		t.Errorf("rates = %v / %v", cfg.WiredRate, cfg.WirelessRate)
	}
	if cfg.MTU != 0 {
		t.Error("LAN preset must not fragment")
	}
	if cfg.Window != 64*units.KB || cfg.PacketSize != 1536 {
		t.Errorf("window/packet = %v / %v", cfg.Window, cfg.PacketSize)
	}
	if cfg.TransferSize != 4*units.MB {
		t.Errorf("transfer = %v", cfg.TransferSize)
	}
	if cfg.Channel.MeanGood != 4*time.Second {
		t.Errorf("mean good = %v", cfg.Channel.MeanGood)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	base := WAN(bs.Basic, 576, time.Second)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"packet size at header", func(c *Config) { c.PacketSize = 40 }},
		{"zero transfer", func(c *Config) { c.TransferSize = 0 }},
		{"window below segment", func(c *Config) { c.Window = 100 }},
		{"zero wired rate", func(c *Config) { c.WiredRate = 0 }},
		{"zero wireless rate", func(c *Config) { c.WirelessRate = 0 }},
		{"negative overhead", func(c *Config) { c.WirelessOverhead = -1 }},
		{"negative MTU", func(c *Config) { c.MTU = -5 }},
		{"bad channel", func(c *Config) { c.Channel.MeanGood = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
			if _, err := Run(cfg); err == nil {
				t.Error("Run accepted invalid config")
			}
		})
	}
}

func TestTheoreticalMaxMatchesPaperValues(t *testing.T) {
	// Paper §5.1: tput_th = (lambda_bg/(lambda_bg+lambda_gb)) * tput_max
	// with tput_max = 12.8 kbps; for bad=1s, good=10s that's ~11.64.
	tests := []struct {
		bad  time.Duration
		want float64
	}{
		{1 * time.Second, 12.8 * 10 / 11},
		{2 * time.Second, 12.8 * 10 / 12},
		{3 * time.Second, 12.8 * 10 / 13},
		{4 * time.Second, 12.8 * 10 / 14},
	}
	for _, tt := range tests {
		cfg := WAN(bs.Basic, 576, tt.bad)
		if got := cfg.TheoreticalMaxKbps(); math.Abs(got-tt.want) > 0.01 {
			t.Errorf("tput_th(bad=%v) = %.3f, want %.3f", tt.bad, got, tt.want)
		}
	}
	// LAN: tput_max = 2 Mbps.
	lan := LAN(bs.Basic, time.Second)
	want := 2000.0 * 4 / 5
	if got := lan.TheoreticalMaxKbps(); math.Abs(got-want) > 0.5 {
		t.Errorf("LAN tput_th = %.1f, want %.1f", got, want)
	}
}

func TestErrorFreeRunApproachesCeiling(t *testing.T) {
	cfg := WAN(bs.Basic, 576, time.Second)
	cfg.Channel.GoodBER = 0
	cfg.Channel.BadBER = 0
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("error-free run did not complete")
	}
	// Payload-only ceiling for 576-byte packets: 12.8 * 536/576 ~ 11.91.
	if r.Summary.ThroughputKbps < 11.6 || r.Summary.ThroughputKbps > 11.95 {
		t.Errorf("error-free throughput = %.2f kbps, want ~11.91", r.Summary.ThroughputKbps)
	}
	if r.Summary.Goodput < 0.999 {
		t.Errorf("error-free goodput = %.4f, want 1.0", r.Summary.Goodput)
	}
	if r.Summary.Timeouts != 0 {
		t.Errorf("error-free run had %d timeouts", r.Summary.Timeouts)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	cfg := WAN(bs.EBSN, 576, 2*time.Second)
	cfg.Seed = 42
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary {
		t.Errorf("same seed diverged:\n%+v\n%+v", a.Summary, b.Summary)
	}
	cfg.Seed = 43
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Elapsed == c.Summary.Elapsed && a.Summary.RetransmittedBytes == c.Summary.RetransmittedBytes {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestSchemeOrderingWAN(t *testing.T) {
	// The paper's headline ordering at a fixed error condition: EBSN >=
	// local recovery > basic, and EBSN goodput ~= 1. Averaged over a few
	// seeds to avoid flakiness.
	mean := func(scheme bs.Scheme) (tput, goodput float64) {
		const n = 3
		for seed := int64(1); seed <= n; seed++ {
			cfg := WAN(scheme, 576, 2*time.Second)
			cfg.Seed = seed
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Completed {
				t.Fatalf("%v run with seed %d did not complete", scheme, seed)
			}
			tput += r.Summary.ThroughputKbps / n
			goodput += r.Summary.Goodput / n
		}
		return tput, goodput
	}
	basicT, _ := mean(bs.Basic)
	localT, _ := mean(bs.LocalRecovery)
	ebsnT, ebsnG := mean(bs.EBSN)
	if !(ebsnT >= localT && localT > basicT) {
		t.Errorf("ordering violated: ebsn=%.2f local=%.2f basic=%.2f", ebsnT, localT, basicT)
	}
	if ebsnG < 0.97 {
		t.Errorf("EBSN goodput = %.3f, want ~1.0", ebsnG)
	}
	// tput_th is a long-run expectation; a finite run can realize a
	// luckier channel, so allow modest excess.
	th := WAN(bs.EBSN, 576, 2*time.Second).TheoreticalMaxKbps()
	if ebsnT > th*1.15 {
		t.Errorf("EBSN throughput %.2f far above theoretical max %.2f", ebsnT, th)
	}
}

func TestTraceCollection(t *testing.T) {
	cfg := WAN(bs.Basic, 576, 4*time.Second)
	cfg.Channel.Deterministic = true
	cfg.CollectTrace = true
	cfg.TransferSize = 30 * units.KB
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace == nil {
		t.Fatal("trace not collected")
	}
	if r.Trace.Count(0) != 0 {
	} // silence lint-ish nothing
	sends := len(r.Trace.Events())
	if sends == 0 {
		t.Fatal("trace empty")
	}
	// Without tracing enabled the field is nil.
	cfg.CollectTrace = false
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Trace != nil {
		t.Error("trace collected when disabled")
	}
}

func TestCwndEvolutionBasicVsEBSN(t *testing.T) {
	// The window-evolution view of Figures 3 vs 5: under the
	// deterministic fade schedule, basic TCP's congestion window
	// collapses to one segment repeatedly, while EBSN's never does.
	run := func(scheme bs.Scheme) *Result {
		cfg := WAN(scheme, 576, 4*time.Second)
		cfg.Channel.Deterministic = true
		cfg.CollectTrace = true
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cwnd == nil {
			t.Fatal("no cwnd series collected")
		}
		return r
	}
	basic := run(bs.Basic)
	ebsn := run(bs.EBSN)
	if got := basic.Cwnd.Collapses(536); got < 3 {
		t.Errorf("basic TCP cwnd collapses = %d, want several (one per fade)", got)
	}
	if got := ebsn.Cwnd.Collapses(536); got != 0 {
		t.Errorf("EBSN cwnd collapses = %d, want 0", got)
	}
	if ebsn.Cwnd.Max() < basic.Cwnd.Max() {
		t.Errorf("EBSN max window %d below basic %d", ebsn.Cwnd.Max(), basic.Cwnd.Max())
	}
}

func TestHorizonStopsPathologicalRun(t *testing.T) {
	cfg := WAN(bs.Basic, 576, 30*time.Second) // mostly-bad channel
	cfg.Channel.MeanGood = time.Second
	cfg.Horizon = 30 * time.Second
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed {
		t.Skip("transfer unexpectedly completed; horizon untestable with this seed")
	}
	if r.Summary.Elapsed < 30*time.Second {
		t.Errorf("elapsed = %v, want horizon reached", r.Summary.Elapsed)
	}
}

func TestLANRunCompletesAndOrdersSchemes(t *testing.T) {
	run := func(scheme bs.Scheme) *Result {
		cfg := LAN(scheme, 800*time.Millisecond)
		cfg.TransferSize = units.MB // quarter-size for test speed
		cfg.Seed = 5
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Completed {
			t.Fatalf("%v LAN run did not complete", scheme)
		}
		return r
	}
	basic := run(bs.Basic)
	ebsn := run(bs.EBSN)
	if ebsn.Summary.ThroughputMbps <= basic.Summary.ThroughputMbps {
		t.Errorf("LAN EBSN %.3f Mbps not above basic %.3f Mbps",
			ebsn.Summary.ThroughputMbps, basic.Summary.ThroughputMbps)
	}
	if ebsn.Summary.Goodput < 0.98 {
		t.Errorf("LAN EBSN goodput = %.3f", ebsn.Summary.Goodput)
	}
	if basic.Summary.RetransmittedBytes <= ebsn.Summary.RetransmittedBytes {
		t.Error("basic should retransmit more than EBSN on the LAN")
	}
}

func TestQuenchDoesNotPreventTimeouts(t *testing.T) {
	// The paper's negative result: source quench reduces inflight data
	// but timeouts persist. Compare against EBSN under identical
	// conditions.
	var quenchTimeouts, ebsnTimeouts uint64
	for seed := int64(1); seed <= 3; seed++ {
		q := WAN(bs.SourceQuench, 576, 4*time.Second)
		q.Seed = seed
		rq, err := Run(q)
		if err != nil {
			t.Fatal(err)
		}
		quenchTimeouts += rq.Summary.Timeouts
		e := WAN(bs.EBSN, 576, 4*time.Second)
		e.Seed = seed
		re, err := Run(e)
		if err != nil {
			t.Fatal(err)
		}
		ebsnTimeouts += re.Summary.Timeouts
	}
	if quenchTimeouts == 0 {
		t.Error("quench eliminated all timeouts (paper says it cannot)")
	}
	if ebsnTimeouts >= quenchTimeouts {
		t.Errorf("EBSN timeouts %d not below quench timeouts %d", ebsnTimeouts, quenchTimeouts)
	}
}

func TestRenoAblationRuns(t *testing.T) {
	cfg := WAN(bs.Basic, 576, 2*time.Second)
	cfg.Variant = tcp.Reno
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("Reno run did not complete")
	}
}

func TestResultExposesComponentStats(t *testing.T) {
	cfg := WAN(bs.EBSN, 576, 2*time.Second)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.BS.ARQAttempts == 0 {
		t.Error("no ARQ attempts recorded")
	}
	if r.Mobile.LinkAcksSent == 0 {
		t.Error("no link acks recorded")
	}
	if r.WirelessDown.Sent == 0 || r.WirelessUp.Sent == 0 {
		t.Error("wireless link stats empty")
	}
	if r.Sink.SegmentsReceived == 0 {
		t.Error("sink stats empty")
	}
	if r.BS.EBSNsSent == 0 {
		t.Error("EBSN scheme sent no EBSNs under a bursty channel")
	}
	if r.Sender.EBSNResets == 0 {
		t.Error("sender never processed an EBSN")
	}
}
