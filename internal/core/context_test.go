package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/units"
)

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, WAN(bs.Basic, 576, 2*time.Second))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
}

func TestRunContextDeadlineStopsMidTransfer(t *testing.T) {
	// A WAN transfer takes tens of simulated seconds — far longer than a
	// 20 ms wall-clock budget — so the deadline must interrupt it.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	cfg := WAN(bs.EBSN, 576, 2*time.Second)
	cfg.TransferSize = 10 * units.MB // never finishes in 20 ms of wall clock
	_, err := RunContext(ctx, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunContextSplitCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := WAN(bs.SplitConnection, 576, 2*time.Second)
	_, err := RunContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("split RunContext = %v, want context.Canceled", err)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	cfg := WAN(bs.Basic, 576, 2*time.Second)
	cfg.TransferSize = 20 * units.KB
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary {
		t.Errorf("RunContext diverged from Run: %+v vs %+v", a.Summary, b.Summary)
	}
}
