package core

import (
	"testing"
	"testing/quick"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/errmodel"
	"wtcp/internal/units"
)

// TestPropertyRunInvariants drives Run across a randomized slice of the
// configuration space and checks the invariants every completed
// simulation must satisfy, regardless of scheme or error condition:
//
//  1. goodput lies in (0, 1];
//  2. throughput never exceeds the wireless hop's effective rate;
//  3. a run with zero loss events retransmits nothing;
//  4. the sink's delivered byte count equals the transfer size.
func TestPropertyRunInvariants(t *testing.T) {
	schemes := []bs.Scheme{bs.Basic, bs.LocalRecovery, bs.EBSN, bs.SourceQuench, bs.Snoop, bs.SplitConnection}
	sizes := []units.ByteSize{128, 384, 576, 1024, 1536}
	f := func(schemeRaw, sizeRaw uint8, badRaw uint8, seed int64) bool {
		scheme := schemes[int(schemeRaw)%len(schemes)]
		size := sizes[int(sizeRaw)%len(sizes)]
		bad := time.Duration(badRaw%4+1) * time.Second
		cfg := WAN(scheme, size, bad)
		cfg.TransferSize = 30 * units.KB
		cfg.Seed = seed
		r, err := Run(cfg)
		if err != nil {
			t.Logf("Run(%v, %v, %v) error: %v", scheme, size, bad, err)
			return false
		}
		if !r.Completed {
			t.Logf("incomplete: %v/%v/%v seed %d", scheme, size, bad, seed)
			return false
		}
		g := r.Summary.Goodput
		if g <= 0 || g > 1.0000001 {
			t.Logf("goodput %v out of range (%v/%v)", g, scheme, size)
			return false
		}
		// Payload throughput can never beat the effective radio rate.
		if r.Summary.ThroughputKbps > float64(cfg.EffectiveWirelessRate())/1000+0.01 {
			t.Logf("throughput %v exceeds radio (%v/%v)", r.Summary.ThroughputKbps, scheme, size)
			return false
		}
		if r.Summary.Timeouts == 0 && r.Summary.FastRetransmits == 0 &&
			r.BS.ARQDiscards == 0 && r.Summary.RetransmittedBytes != 0 &&
			scheme != bs.SplitConnection && scheme != bs.Snoop {
			t.Logf("retransmissions with no loss events (%v/%v)", scheme, size)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAsymmetricChannelUplinkOnlyFades(t *testing.T) {
	// Downlink clean, uplink bursty: every data unit crosses, but the
	// link-level acks die in batches. The base station cannot
	// distinguish "data lost" from "ack lost", so uplink fading still
	// registers as unsuccessful attempts — EBSNs keep flowing (the
	// mechanism covers ack-path fading too) and the retransmissions of
	// already-delivered units surface as duplicates at the mobile host.
	clean := errmodel.Config{GoodBER: 0, BadBER: 0, MeanGood: time.Hour, MeanBad: 0}
	uplink := errmodel.PaperWAN(4 * time.Second)
	uplink.MeanGood = 3 * time.Second // fade often

	var timeouts, ebsns, duplicates uint64
	for seed := int64(1); seed <= 3; seed++ {
		cfg := WAN(bs.EBSN, 576, 4*time.Second)
		cfg.Channel = clean
		cfg.UplinkChannel = &uplink
		cfg.TransferSize = 40 * units.KB
		cfg.Seed = seed
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Completed {
			t.Fatal("did not complete")
		}
		timeouts += r.Summary.Timeouts
		ebsns += r.BS.EBSNsSent
		duplicates += r.Mobile.DuplicateUnits
	}
	if ebsns == 0 {
		t.Error("uplink-only fading generated no EBSNs (lost link acks must look like failed attempts)")
	}
	if duplicates == 0 {
		t.Error("no duplicate units at the mobile host despite lost link acks")
	}
	// TCP acks are also lost in the same fades, yet cumulative acking
	// plus the EBSN stream keeps timeouts rare.
	if timeouts > 6 {
		t.Errorf("timeouts = %d across 3 runs, want few", timeouts)
	}
}

func TestSharedChannelFadesBothDirections(t *testing.T) {
	// With the default shared process, a fade that kills data also kills
	// acks: the uplink must record corruption in a bursty run.
	cfg := WAN(bs.Basic, 576, 4*time.Second)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.WirelessUp.Corrupted == 0 {
		t.Error("uplink saw no corruption under a shared bursty channel")
	}
	if r.WirelessDown.Corrupted == 0 {
		t.Error("downlink saw no corruption under a shared bursty channel")
	}
}
