package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"wtcp/internal/core"
	"wtcp/internal/units"
)

// TestRetryBackoffEnvelope pins the retry pause schedule: pure in the
// replication's identity (key, seed, attempt), exponential from
// retryBackoffBase, jitter bounded by half the uncapped delay, and
// never past the cap's envelope no matter how large the attempt.
func TestRetryBackoffEnvelope(t *testing.T) {
	const key = "wan/tahoe/bad=1s/size=512"
	for attempt := 1; attempt <= 10; attempt++ {
		got := retryBackoff(key, 1, attempt)
		if again := retryBackoff(key, 1, attempt); again != got {
			t.Fatalf("attempt %d: backoff not deterministic: %v then %v", attempt, got, again)
		}
		base := retryBackoffBase << (attempt - 1)
		if base <= 0 || base > retryBackoffCap {
			base = retryBackoffCap
		}
		if got < base || got > base+base/2 {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, got, base, base+base/2)
		}
	}
	// Absurd attempt counts (shift overflow territory) still land in the
	// capped envelope.
	if d := retryBackoff(key, 1, 500); d < retryBackoffCap || d > retryBackoffCap+retryBackoffCap/2 {
		t.Errorf("attempt 500: backoff %v escaped the cap envelope [%v, %v]",
			d, retryBackoffCap, retryBackoffCap+retryBackoffCap/2)
	}
	// Jitter is identity-derived: two replications retrying in the same
	// instant must not share a schedule (that is the stampede the jitter
	// exists to break up).
	same := true
	for attempt := 1; attempt <= 4; attempt++ {
		if retryBackoff(key, 1, attempt) != retryBackoff(key, 2, attempt) {
			same = false
		}
	}
	if same {
		t.Error("seeds 1 and 2 share an identical 4-retry schedule; jitter is not identity-derived")
	}
}

// TestRetryBackoffRecordedAndByteIdentical: a retried replication must
// record the pauses it actually waited through in its checkpoint
// record, and — because the schedule is seed-derived, not clocked — a
// re-run of the same sweep must write the identical bytes.
func TestRetryBackoffRecordedAndByteIdentical(t *testing.T) {
	const baseSeed = 300
	failing := int64(baseSeed + 1) // replication 1's first-attempt seed
	stubRunSim(t, func(ctx context.Context, cfg core.Config) (*core.Result, error) {
		if cfg.Seed == failing {
			return nil, errors.New("synthetic transient failure")
		}
		r := &core.Result{Completed: true}
		r.Summary.ThroughputKbps = float64(cfg.Seed)
		r.Summary.Goodput = 1
		return r, nil
	})
	opt := Options{
		Replications: 2,
		BaseSeed:     baseSeed,
		Retries:      1,
		PacketSizes:  []units.ByteSize{512},
		BadPeriods:   []time.Duration{time.Second},
	}
	var key string
	opt.OnPoint = func(k string) { key = k }

	run := func(name string) []byte {
		o := opt
		o.Checkpoint = filepath.Join(t.TempDir(), name)
		if _, err := Fig7(context.Background(), o); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(o.Checkpoint)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := run("a.json")
	second := run("b.json")
	if !bytes.Equal(first, second) {
		t.Errorf("two runs of the same sweep wrote different checkpoint bytes; backoff metadata is not deterministic")
	}

	var f checkpointFile
	if err := json.Unmarshal(first, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 1 || len(f.Points[0].Reps) != 2 {
		t.Fatalf("checkpoint holds %d points, want 1 with 2 reps", len(f.Points))
	}
	retried, clean := f.Points[0].Reps[0], f.Points[0].Reps[1]
	if retried.Seed != failing+retrySeedOffset {
		t.Fatalf("retried rep ran seed %d, want perturbed %d", retried.Seed, failing+retrySeedOffset)
	}
	// runRep identifies a replication by its 1-based index, so the
	// retried first replication's recorded pause is retryBackoff(key, 1, 1).
	want := []int64{retryBackoff(key, 1, 1).Milliseconds()}
	if !reflect.DeepEqual(retried.Backoffs, want) {
		t.Errorf("retried rep recorded backoff_ms %v, want %v", retried.Backoffs, want)
	}
	if len(clean.Backoffs) != 0 {
		t.Errorf("first-attempt success recorded backoff_ms %v, want none", clean.Backoffs)
	}
}
