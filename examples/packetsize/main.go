// Packet-size study: the paper's first proposal. For a given wireless
// error condition, sweep the wired-network packet size and find the
// optimum — which differs from both the wireless MTU (128 B) and the IP
// default (576 B), and shifts with the error condition.
//
//	go run ./examples/packetsize
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"wtcp/internal/experiment"
	"wtcp/internal/units"
)

func main() {
	opt := experiment.Options{
		Replications: 5,
		PacketSizes: []units.ByteSize{
			128, 256, 384, 512, 768, 1024, 1280, 1536,
		},
	}
	points, err := experiment.Fig7(context.Background(), opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Basic TCP over the wide-area preset: throughput (Kbps) by packet size")
	fmt.Println(experiment.RenderThroughputTable("", points))

	fmt.Println("optimal packet size per error condition (mean bad period):")
	for _, bad := range []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second} {
		size, tput := experiment.OptimalPacketSize(points, bad)
		// Compare the optimum against the default 576 B and the largest.
		var at576, at1536 float64
		for _, p := range points {
			if p.BadPeriod != bad {
				continue
			}
			switch p.PacketSize {
			case 512:
				at576 = p.ThroughputKbps.Mean() // nearest swept size to 576
			case 1536:
				at1536 = p.ThroughputKbps.Mean()
			}
		}
		_ = at576
		fmt.Printf("  bad=%v: best %v at %.2f Kbps (%.0f%% over 1536B packets)\n",
			bad, size, tput, 100*(tput-at1536)/at1536)
	}
	fmt.Println("\nA base station can exploit this with a static table mapping the")
	fmt.Println("current error characteristic to the packet size a source should use —")
	fmt.Println("no per-connection state required (paper, section 4.1).")
}
