package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		buf := new(strings.Builder)
		chunk := make([]byte, 1<<16)
		for {
			n, err := r.Read(chunk)
			buf.Write(chunk[:n])
			if err != nil {
				break
			}
		}
		done <- buf.String()
	}()
	runErr := fn()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, runErr
}

func TestFigureTrace(t *testing.T) {
	out, err := capture(t, func() error { return run(context.Background(), []string{"-fig", "5"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "EBSN resets") {
		t.Errorf("figure 5 output malformed:\n%s", out)
	}
}

func TestFigureTraceCSV(t *testing.T) {
	out, err := capture(t, func() error { return run(context.Background(), []string{"-fig", "3", "-csv"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "time_sec,packet_mod_90,kind") {
		t.Errorf("CSV header missing:\n%.200s", out)
	}
}

func TestFigureSweepReducedReps(t *testing.T) {
	out, err := capture(t, func() error { return run(context.Background(), []string{"-fig", "7", "-reps", "1"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "tput_th") {
		t.Errorf("figure 7 table malformed:\n%.400s", out)
	}
}

func TestFigureHandoff(t *testing.T) {
	out, err := capture(t, func() error { return run(context.Background(), []string{"-fig", "handoff"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "fastretransmit") {
		t.Errorf("handoff table malformed:\n%s", out)
	}
}

func TestFigureUnknown(t *testing.T) {
	if _, err := capture(t, func() error { return run(context.Background(), []string{"-fig", "99"}) }); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestFigureOutDirectory(t *testing.T) {
	dir := t.TempDir()
	_, err := capture(t, func() error { return run(context.Background(), []string{"-fig", "7", "-reps", "1", "-out", dir}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	body, err := os.ReadFile(filepath.Join(dir, "fig7.csv"))
	if err != nil {
		t.Fatalf("fig7.csv not written: %v", err)
	}
	if !strings.Contains(string(body), "scheme,bad_period_sec") {
		t.Errorf("fig7.csv malformed:\n%.200s", body)
	}
}
