package core

import (
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/units"
)

// TestSACKDoesNotFixBurstLoss captures an ablation insight that supports
// the paper's premise: selective acknowledgments, which repair scattered
// losses cheaply, barely help under the paper's *burst* losses — a fade
// kills the whole window, so there is nothing out-of-order left at the
// receiver to acknowledge selectively. End-to-end TCP machinery cannot
// substitute for link-layer recovery here.
func TestSACKDoesNotFixBurstLoss(t *testing.T) {
	mean := func(sack bool) float64 {
		var sum float64
		const n = 5
		for seed := int64(1); seed <= n; seed++ {
			cfg := WAN(bs.Basic, 576, 4*time.Second)
			cfg.SACK = sack
			cfg.Seed = seed
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Completed {
				t.Fatal("did not complete")
			}
			sum += r.Summary.ThroughputKbps / n
		}
		return sum
	}
	plain := mean(false)
	sacked := mean(true)
	// SACK must not hurt, and the paper-scale gain stays marginal
	// (< 15%) — nowhere near EBSN's ~50-100%.
	if sacked < plain*0.85 {
		t.Errorf("SACK hurt burst-loss throughput: %.2f vs %.2f", sacked, plain)
	}
	if sacked > plain*1.15 {
		t.Errorf("SACK gain %.2f vs %.2f suspiciously large for burst losses", sacked, plain)
	}
}

// TestSACKHelpsScatteredLoss is the control: under light random (non
// burst) loss, SACK does reduce redundant retransmissions.
func TestSACKHelpsScatteredLoss(t *testing.T) {
	run := func(sack bool) (retxKB float64, skipped uint64) {
		var sum float64
		var skips uint64
		const n = 5
		for seed := int64(1); seed <= n; seed++ {
			cfg := WAN(bs.Basic, 1536, time.Second)
			// Scattered loss: frequent, very short fades.
			cfg.Channel.MeanGood = 2 * time.Second
			cfg.Channel.MeanBad = 120 * time.Millisecond
			cfg.TransferSize = 60 * units.KB
			cfg.SACK = sack
			cfg.Seed = seed
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sum += r.Summary.RetransmittedKB() / n
			skips += r.Sender.SACKSkippedSegments
		}
		return sum, skips
	}
	plainRetx, _ := run(false)
	sackRetx, skips := run(true)
	if skips == 0 {
		t.Skip("no scoreboard skips under these seeds; scattered-loss control inconclusive")
	}
	if sackRetx > plainRetx {
		t.Errorf("SACK retransmitted more under scattered loss: %.1fKB vs %.1fKB",
			sackRetx, plainRetx)
	}
}
