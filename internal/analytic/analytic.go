// Package analytic provides the closed-form, first-order performance
// models the simulation is validated against:
//
//   - the paper's theoretical maximum tput_th = effective rate x
//     good-time fraction (§5);
//   - the header-efficiency ceiling that shapes the left edge of
//     Figure 7 (a 128-byte packet spends 31% of the wire on headers);
//   - a renewal-cycle estimate of basic TCP's throughput under
//     alternating good/bad periods, which captures the Figure 7 gap
//     between basic TCP and tput_th to first order.
//
// None of these replace simulation — they bound it. The test suite keeps
// the simulator honest by requiring agreement within coarse bands.
package analytic

import (
	"math"
	"time"

	"wtcp/internal/packet"
	"wtcp/internal/units"
)

// GoodFraction is the long-run fraction of time a two-state channel with
// the given mean holding times spends in the good state.
func GoodFraction(meanGood, meanBad time.Duration) float64 {
	total := meanGood + meanBad
	if total <= 0 {
		return 1
	}
	return float64(meanGood) / float64(total)
}

// HeaderEfficiency is the payload fraction of a packet: (size-40)/size.
func HeaderEfficiency(packetSize units.ByteSize) float64 {
	if packetSize <= packet.HeaderSize {
		return 0
	}
	return float64(packetSize-packet.HeaderSize) / float64(packetSize)
}

// PayloadCeilingKbps is the error-free user-payload throughput of a link
// with the given effective rate carrying back-to-back packets of the
// given size.
func PayloadCeilingKbps(effectiveRate units.BitRate, packetSize units.ByteSize) float64 {
	return float64(effectiveRate) / 1000 * HeaderEfficiency(packetSize)
}

// TputThKbps is the paper's theoretical maximum: the effective link rate
// scaled by the good-time fraction. The paper counts header bytes toward
// tput_th (it marks 11.64-ish values against payload-only curves); this
// helper reproduces that definition.
func TputThKbps(effectiveRate units.BitRate, meanGood, meanBad time.Duration) float64 {
	return float64(effectiveRate) / 1000 * GoodFraction(meanGood, meanBad)
}

// EBSNCeilingKbps is the payload-counted ceiling an ideal EBSN run
// approaches: the payload ceiling scaled by the good fraction (local
// recovery hides fades; the only loss is the fade time itself).
func EBSNCeilingKbps(effectiveRate units.BitRate, packetSize units.ByteSize, meanGood, meanBad time.Duration) float64 {
	return PayloadCeilingKbps(effectiveRate, packetSize) * GoodFraction(meanGood, meanBad)
}

// FadeHitProbability is the chance that a transmission occupying the
// medium for airTime overlaps the start of a fade, with exponential good
// periods of the given mean: 1 - exp(-airTime/meanGood).
func FadeHitProbability(airTime, meanGood time.Duration) float64 {
	if meanGood <= 0 {
		return 1
	}
	return -math.Expm1(-float64(airTime) / float64(meanGood))
}

// BasicTCPParams parameterizes the renewal estimate.
type BasicTCPParams struct {
	EffectiveRate units.BitRate
	PacketSize    units.ByteSize
	MeanGood      time.Duration
	MeanBad       time.Duration
	// DeadTime is the post-fade recovery penalty: the residual
	// retransmission timeout after the channel heals plus the slow-start
	// ramp back to the window. EstimateDeadTime provides a default.
	DeadTime time.Duration
}

// EstimateDeadTime gives a first-order recovery penalty: half the typical
// backed-off RTO (the timer rarely expires exactly at fade end) plus a
// few round trips of slow-start ramp.
func EstimateDeadTime(rto, rtt time.Duration) time.Duration {
	return rto/2 + 4*rtt
}

// BasicTCPEstimateKbps is a renewal-cycle model of basic TCP under
// alternating fades: each good+bad cycle delivers payload for
// (good - dead) of its (good + bad) length at the payload ceiling.
//
// The model ignores good-state corruption and window dynamics, so it is
// an upper-leaning first-order estimate; the simulator lands below it
// when fades also destroy whole windows (large packets) and above it
// when fast retransmit shortens recovery.
func BasicTCPEstimateKbps(p BasicTCPParams) float64 {
	ceiling := PayloadCeilingKbps(p.EffectiveRate, p.PacketSize)
	cycle := p.MeanGood + p.MeanBad
	if cycle <= 0 {
		return ceiling
	}
	useful := p.MeanGood - p.DeadTime
	if useful < 0 {
		useful = 0
	}
	return ceiling * float64(useful) / float64(cycle)
}
