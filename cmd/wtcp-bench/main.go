// Command wtcp-bench turns `go test -bench` output into a committed
// machine-readable baseline and compares fresh runs against it, so CI can
// fail on kernel performance regressions without external tooling.
//
// Two modes:
//
//	wtcp-bench -record -out BENCH_kernel.json < bench.txt
//	    Parse benchmark lines from stdin (or -in) and write a JSON
//	    baseline: per-benchmark ns/op, B/op, allocs/op.
//
//	wtcp-bench -compare BENCH_kernel.json [-threshold 0.20] < bench.txt
//	    Parse a fresh run and compare against the baseline. Exits 1 if
//	    any matched benchmark slowed down by more than the threshold
//	    fraction in ns/op, or allocated more objects per op than the
//	    baseline (allocation regressions on the kernel hot path are
//	    bugs at any size, not just at 20%).
//
// The repository keeps multiple baselines — BENCH_kernel.json for the
// kernel micro-benchmarks, BENCH_scale.json for the cell-scale engine —
// and each baseline file stores its own comparison filter, so
// `wtcp-bench -compare BENCH_scale.json` applies the right benchmark
// subset without the caller repeating it. `-file F` names the baseline
// for either mode (`-record -file F` writes it, `-file F` alone compares
// against it); `-filter` overrides the stored filter, with "auto"
// (the default) meaning "whatever the baseline stores", falling back to
// "^BenchmarkSim" for legacy baselines without one. Pass -filter "" to
// compare everything.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded performance.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Baseline is the file format of BENCH_kernel.json / BENCH_scale.json.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// Filter is the regexp of benchmarks this baseline gates; a compare
	// run applies it unless the caller overrides -filter. Empty means
	// the legacy default.
	Filter  string   `json:"filter,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wtcp-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wtcp-bench", flag.ContinueOnError)
	var (
		record    = fs.Bool("record", false, "record a baseline from benchmark output")
		file      = fs.String("file", "", "baseline file for either mode (-record writes it, otherwise compares against it)")
		out       = fs.String("out", "BENCH_kernel.json", "baseline file to write (with -record; -file wins when both are set)")
		compare   = fs.String("compare", "", "baseline file to compare against")
		in        = fs.String("in", "", "benchmark output file (default stdin)")
		threshold = fs.Float64("threshold", 0.20, "allowed ns/op regression fraction (with -compare)")
		filter    = fs.String("filter", "auto", "regexp of benchmarks to compare; auto = the baseline's stored filter, empty = all")
		note      = fs.String("note", "", "regeneration note to store in the baseline (with -record)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file != "" {
		if *record {
			*out = *file
		} else if *compare == "" {
			*compare = *file
		}
	}
	if *record == (*compare != "") {
		return errors.New("exactly one of -record or -compare (or -file) is required")
	}

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	results, err := parseBench(r)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return errors.New("no benchmark lines found in input")
	}

	if *record {
		b := Baseline{
			Note:    *note,
			Results: results,
		}
		if b.Note == "" {
			b.Note = "kernel benchmark baseline; regenerate with `make bench-baseline`"
		}
		if *filter != "auto" {
			b.Filter = *filter
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("recorded %d benchmarks to %s\n", len(results), *out)
		return nil
	}

	baseline, base, err := loadBaseline(*compare)
	if err != nil {
		return err
	}
	// Resolve the effective filter: explicit flag > the baseline's stored
	// filter > the legacy kernel default.
	pattern := *filter
	if pattern == "auto" {
		pattern = baseline.Filter
		if pattern == "" {
			pattern = "^BenchmarkSim"
		}
	}
	var re *regexp.Regexp
	if pattern != "" {
		re, err = regexp.Compile(pattern)
		if err != nil {
			return fmt.Errorf("bad filter %q: %w", pattern, err)
		}
	}
	return compareResults(os.Stdout, base, results, re, *threshold)
}

func loadBaseline(path string) (Baseline, map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Result, len(b.Results))
	for _, r := range b.Results {
		m[r.Name] = r
	}
	return b, m, nil
}

// benchLine matches `go test -bench -benchmem` output, e.g.
//
//	BenchmarkSimKernel-8   26153130   86.81 ns/op   0 B/op   0 allocs/op
//
// Custom metrics between ns/op and B/op are tolerated and ignored.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

func parseBench(r io.Reader) ([]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	byName := make(map[string][]Result)
	var order []string
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, err
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, err
		}
		res := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		for _, field := range strings.Split(strings.TrimSpace(m[4]), "\t") {
			field = strings.TrimSpace(field)
			switch {
			case strings.HasSuffix(field, " B/op"):
				res.BytesPerOp, _ = strconv.ParseFloat(strings.TrimSuffix(field, " B/op"), 64)
			case strings.HasSuffix(field, " allocs/op"):
				res.AllocsPerOp, _ = strconv.ParseFloat(strings.TrimSuffix(field, " allocs/op"), 64)
			}
		}
		if _, seen := byName[res.Name]; !seen {
			order = append(order, res.Name)
		}
		byName[res.Name] = append(byName[res.Name], res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// `-count=N` runs produce repeated lines; keep the minimum ns/op per
	// name (the least-disturbed run) and the max allocs/op (pessimistic).
	var out []Result
	for _, name := range order {
		runs := byName[name]
		agg := runs[0]
		for _, r := range runs[1:] {
			if r.NsPerOp < agg.NsPerOp {
				agg.NsPerOp = r.NsPerOp
				agg.Iterations = r.Iterations
			}
			if r.AllocsPerOp > agg.AllocsPerOp {
				agg.AllocsPerOp = r.AllocsPerOp
			}
			if r.BytesPerOp > agg.BytesPerOp {
				agg.BytesPerOp = r.BytesPerOp
			}
		}
		out = append(out, agg)
	}
	return out, nil
}

func compareResults(w io.Writer, base map[string]Result, fresh []Result, filter *regexp.Regexp, threshold float64) error {
	var failures []string
	var compared int
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Name < fresh[j].Name })
	for _, r := range fresh {
		if filter != nil && !filter.MatchString(r.Name) {
			continue
		}
		b, ok := base[r.Name]
		if !ok {
			fmt.Fprintf(w, "NEW     %-28s %12.2f ns/op (no baseline)\n", r.Name, r.NsPerOp)
			continue
		}
		compared++
		delta := (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		status := "ok"
		if delta > threshold {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s: %.2f ns/op vs baseline %.2f (%+.1f%% > %.0f%% allowed)",
				r.Name, r.NsPerOp, b.NsPerOp, 100*delta, 100*threshold))
		}
		if r.AllocsPerOp > b.AllocsPerOp {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f allocs/op vs baseline %.0f (any increase fails)",
				r.Name, r.AllocsPerOp, b.AllocsPerOp))
		}
		fmt.Fprintf(w, "%-7s %-28s %12.2f ns/op  baseline %12.2f  (%+.1f%%)  %.0f allocs/op\n",
			status, r.Name, r.NsPerOp, b.NsPerOp, 100*delta, r.AllocsPerOp)
	}
	if compared == 0 {
		return errors.New("no benchmarks matched the baseline and filter; is the input a -bench run?")
	}
	if len(failures) > 0 {
		fmt.Fprintln(w)
		for _, f := range failures {
			fmt.Fprintln(w, "regression:", f)
		}
		return fmt.Errorf("%d benchmark regression(s)", len(failures))
	}
	fmt.Fprintf(w, "all %d compared benchmarks within %.0f%% of baseline\n", compared, 100*threshold)
	return nil
}
