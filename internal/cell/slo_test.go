package cell

import (
	"context"
	"runtime"
	"testing"
	"time"

	"wtcp/internal/sim"
)

// Scale SLOs: the tentpole's contract is that a whole cell — tens of
// thousands of concurrent flows — simulates within a fixed wall-clock
// and heap budget. The bounds are deliberately loose multiples of the
// measured cost on a developer machine (so CI noise does not flake
// them) but tight enough that an accidental O(F) scan per event or a
// per-packet heap object blows straight through them.

// sloRun executes Preset(n) under a wall/heap budget and sanity-checks
// the outcome. The heap ceiling rides sim.Budget's live-heap probe; the
// wall ceiling is enforced both by the budget (which aborts a runaway
// run promptly) and by the test's own measurement.
func sloRun(t *testing.T, n int, wall time.Duration, heap int64) *Result {
	t.Helper()
	cfg := Preset(n)
	start := time.Now()
	res, err := RunContext(context.Background(), cfg, sim.Budget{
		WallClock:    wall,
		MaxHeapBytes: heap,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Preset(%d) run failed: %v", n, err)
	}
	if elapsed > wall {
		t.Errorf("Preset(%d) took %v, SLO %v", n, elapsed, wall)
	}
	if res.CompletedFlows < n*9/10 {
		t.Errorf("Preset(%d): only %d flows completed inside the horizon", n, res.CompletedFlows)
	}
	if res.Arena.LiveAtEnd != 0 {
		t.Errorf("Preset(%d): leaked %d arena slots", n, res.Arena.LiveAtEnd)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("Preset(%d): wall %v, %d events (%.0f ev/s), %d/%d flows, peak arena %d, heap-alloc %d MB",
		n, elapsed, res.Events, float64(res.Events)/elapsed.Seconds(),
		res.CompletedFlows, n, res.Arena.PeakLive, ms.HeapAlloc>>20)
	return res
}

// TestCellSLO1k is the CI smoke bound: a thousand-flow cell over 60
// virtual seconds must finish fast and small. Runs under -race too
// (with a relaxed wall bound).
func TestCellSLO1k(t *testing.T) {
	wall := 10 * time.Second
	if raceEnabled {
		wall = 60 * time.Second
	}
	sloRun(t, 1000, wall, 512<<20)
}

// TestCellSLO10k is the mid-scale bound.
func TestCellSLO10k(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("mid-scale SLO runs in full non-race mode only")
	}
	sloRun(t, 10000, 30*time.Second, 1<<30)
}

// TestCellSLO50k is the headline bound from the issue: 50k flows x 60
// virtual seconds inside a strict wall-clock budget, peak heap under a
// fixed ceiling.
func TestCellSLO50k(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("full-scale SLO runs in full non-race mode only")
	}
	sloRun(t, 50000, 120*time.Second, 2<<30)
}
