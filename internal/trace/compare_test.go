package trace

import (
	"strings"
	"testing"
	"time"
)

func TestRenderComparison(t *testing.T) {
	left := New(100)
	left.Record(time.Second, Send, 0)
	left.Record(5*time.Second, Retransmit, 0)
	right := New(100)
	right.Record(time.Second, Send, 0)
	right.Record(30*time.Second, Send, 100*50)

	out := RenderComparison("basic", left, "ebsn", right, 40, 12, 60*time.Second)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title row + height rows + axis + labels + legend.
	if len(lines) != 1+12+1+1+1 {
		t.Fatalf("line count = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "basic") || !strings.Contains(lines[0], "ebsn") {
		t.Errorf("title row = %q", lines[0])
	}
	// Every grid row has two panels separated by spaces.
	for _, l := range lines[1 : 1+12] {
		if strings.Count(l, "|") != 2 {
			t.Errorf("grid row %q lacks two panels", l)
		}
	}
	if !strings.Contains(out, "o") {
		t.Error("left panel's retransmission mark missing")
	}
	if !strings.Contains(out, "60s") {
		t.Error("time axis labels missing")
	}
}

func TestRenderComparisonDegenerate(t *testing.T) {
	// Nil traces and tiny dimensions must not panic.
	out := RenderComparison("a-very-long-title-that-gets-clipped", nil, "b", nil, 1, 1, time.Second)
	if out == "" {
		t.Error("empty output")
	}
	if strings.Contains(out, "a-very-long-title-that-gets-clipped") {
		t.Error("title not clipped to panel width")
	}
}
