package sim

import "time"

// This file is the kernel's event storage: a monomorphic 4-ary min-heap
// ordered by (time, sequence), plus the free list that recycles event
// structs so steady-state scheduling allocates nothing.
//
// Why not container/heap: the interface-based API boxes every Push/Pop
// through `any`, forces dynamic dispatch on Less/Swap, and its binary
// layout does one comparison per level. A 4-ary heap is shallower
// (log4 n levels), and the four children of a node share a cache line of
// the backing slice, so sift-down touches less memory per level. The heap
// holds *event pointers directly; there is no boxing anywhere on the
// schedule/fire path.
//
// Cancellation is lazy: Cancel tombstones the event in place (see
// Simulator.Cancel) and the tombstone is dropped when it surfaces at the
// root, or en masse by compact() when tombstones dominate the heap. The
// pop order of live events is the same as with eager removal because the
// (at, seq) key is unique per event: a heap's pop sequence over a fixed
// key set is determined by the keys alone, never by insertion history.

// event is the kernel-internal representation of a scheduled callback.
// Fired and cancelled events return to the simulator's free list; gen is
// bumped on every recycle so stale Event handles can never reach a
// recycled struct (see Event).
type event struct {
	at   time.Duration
	seq  uint64
	gen  uint64
	pos  int32 // heap index, or -1 when not queued
	dead bool  // tombstoned by Cancel, dropped at pop/compact time
	fn   func()
}

// eventLess orders events by (time, sequence): earlier time first, and
// FIFO within the same instant. The pair is unique per event, so the
// order is total — this is the determinism contract the repository's
// bit-identical replays rest on.
func eventLess(x, y *event) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

// eventQueue is the 4-ary min-heap. Children of node i live at
// 4i+1..4i+4; the parent of node i is (i-1)/4.
type eventQueue struct {
	a []*event
}

func (q *eventQueue) len() int { return len(q.a) }

// push appends e and restores the heap property upward.
func (q *eventQueue) push(e *event) {
	i := len(q.a)
	q.a = append(q.a, e)
	// Sift up with a hole: move parents down until e's slot is found.
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(e, q.a[p]) {
			break
		}
		q.a[i] = q.a[p]
		q.a[i].pos = int32(i)
		i = p
	}
	q.a[i] = e
	e.pos = int32(i)
}

// popMin removes and returns the root (the earliest event).
func (q *eventQueue) popMin() *event {
	a := q.a
	root := a[0]
	n := len(a) - 1
	last := a[n]
	a[n] = nil
	q.a = a[:n]
	if n > 0 {
		q.a[0] = last
		last.pos = 0
		q.siftDown(0)
	}
	root.pos = -1
	return root
}

// siftDown restores the heap property from slot i toward the leaves.
func (q *eventQueue) siftDown(i int) {
	a := q.a
	n := len(a)
	e := a[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		best := c
		for j := c + 1; j < end; j++ {
			if eventLess(a[j], a[best]) {
				best = j
			}
		}
		if !eventLess(a[best], e) {
			break
		}
		a[i] = a[best]
		a[i].pos = int32(i)
		i = best
	}
	a[i] = e
	e.pos = int32(i)
}

// heapify rebuilds the heap property over the whole slice (used after
// compaction filters tombstones out in place).
func (q *eventQueue) heapify() {
	a := q.a
	for i, e := range a {
		e.pos = int32(i)
	}
	if len(a) < 2 {
		return
	}
	for i := (len(a) - 2) / 4; i >= 0; i-- {
		q.siftDown(i)
	}
}

// compactMin is the tombstone floor below which compaction never runs;
// amortization needs a batch, and tiny heaps clean themselves up at pop
// time anyway.
const compactMin = 64

// compact filters every tombstone out of the heap in one pass, recycles
// them, and re-heapifies. Called when tombstones outnumber live events
// (see Cancel), which bounds tombstone memory at ~2x the live set and
// keeps the amortized cost per cancel O(1).
func (s *Simulator) compact() {
	a := s.queue.a
	keep := a[:0]
	for _, e := range a {
		if e.dead {
			s.recycle(e)
		} else {
			keep = append(keep, e)
		}
	}
	for i := len(keep); i < len(a); i++ {
		a[i] = nil
	}
	s.queue.a = keep
	s.dead = 0
	s.queue.heapify()
}

// alloc takes an event struct from the free list, or allocates the free
// list's first tenant. Steady state (as many events firing as being
// scheduled) allocates nothing.
func (s *Simulator) alloc() *event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free = s.free[:n-1]
		return e
	}
	return &event{pos: -1}
}

// recycle returns a fired or cancelled event to the free list. The
// generation bump invalidates every outstanding handle to the struct, so
// a caller holding a stale Event cannot observe or cancel the struct's
// next tenant.
func (s *Simulator) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.pos = -1
	e.dead = false
	s.free = append(s.free, e)
}
