package link

import (
	"testing"
	"time"

	"wtcp/internal/errmodel"
	"wtcp/internal/packet"
	"wtcp/internal/queue"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

func TestTxDoneHookFiresAtSerializationEnd(t *testing.T) {
	s := sim.New()
	var txDoneAt time.Duration
	l, err := New(s, Config{Rate: 8 * units.Kbps, Delay: 500 * time.Millisecond}, nil, func(*packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	l.SetTxDoneHook(func(*packet.Packet) { txDoneAt = s.Now() })
	l.Send(mkData(1, 984)) // 1024 bytes -> 1.024s serialization
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := 1024 * time.Millisecond
	if txDoneAt != want {
		t.Errorf("tx-done at %v, want %v (before propagation)", txDoneAt, want)
	}
}

func TestTxDoneHookFiresEvenWhenCorrupted(t *testing.T) {
	s := sim.New()
	ch := scriptAlwaysBad{}
	fired := 0
	delivered := 0
	l, err := New(s, WirelessWAN(0, ch), sim.NewRNG(1), func(*packet.Packet) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	l.SetTxDoneHook(func(*packet.Packet) { fired++ })
	l.Send(&packet.Packet{Kind: packet.Fragment, Payload: 128})
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("tx-done fired %d times, want 1", fired)
	}
	if delivered != 0 {
		t.Error("corrupted packet delivered")
	}
}

// scriptAlwaysBad corrupts everything.
type scriptAlwaysBad struct{}

func (scriptAlwaysBad) StateAt(time.Duration) errmodel.State { return errmodel.Bad }

func (scriptAlwaysBad) ExpectedBitErrors(time.Duration, time.Duration, int64) float64 {
	return 1e9
}

func TestDropQueued(t *testing.T) {
	s := sim.New()
	var dropped []uint64
	l, err := New(s, Config{Rate: units.Kbps}, nil, func(*packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	l.SetDropHook(func(p *packet.Packet) { dropped = append(dropped, p.ID) })
	// First send occupies the transmitter; the next three queue.
	for i := uint64(1); i <= 4; i++ {
		l.Send(mkData(i, 85))
	}
	if got := l.DropQueued(); got != 3 {
		t.Fatalf("DropQueued = %d, want 3", got)
	}
	if len(dropped) != 3 {
		t.Errorf("drop hook saw %d packets", len(dropped))
	}
	if l.QueueLen() != 0 {
		t.Error("queue not empty after DropQueued")
	}
	// The in-flight packet still delivers.
	deliveredBefore := l.Stats().Delivered
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if l.Stats().Delivered != deliveredBefore+1 {
		t.Error("in-flight packet lost by DropQueued")
	}
}

func TestECNThresholdMarking(t *testing.T) {
	s := sim.New()
	l, err := New(s, Config{Rate: units.Kbps, ECNThreshold: 2}, nil, func(*packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	var sent []*packet.Packet
	for i := uint64(1); i <= 5; i++ {
		p := mkData(i, 10)
		sent = append(sent, p)
		l.Send(p)
	}
	// Packet 1 transmits immediately (queue empty), 2 and 3 enqueue at
	// lengths 0 and 1; packets 4 and 5 see length >= 2 and get marked.
	for i, p := range sent {
		wantMark := i >= 3
		if p.CongestionMarked != wantMark {
			t.Errorf("packet %d marked=%v, want %v", i+1, p.CongestionMarked, wantMark)
		}
	}
	if got := l.Stats().ECNMarked; got != 2 {
		t.Errorf("ECNMarked = %d, want 2", got)
	}
}

func TestECNDoesNotMarkControlPackets(t *testing.T) {
	s := sim.New()
	l, err := New(s, Config{Rate: units.Kbps, ECNThreshold: 1}, nil, func(*packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Send(&packet.Packet{Kind: packet.Ack})
	}
	if got := l.Stats().ECNMarked; got != 0 {
		t.Errorf("control packets marked: %d", got)
	}
}

func TestREDLinkRequiresRNG(t *testing.T) {
	s := sim.New()
	red := &queue.REDConfig{MinThreshold: 1, MaxThreshold: 5, MaxP: 0.1, Weight: 0.2}
	if _, err := New(s, Config{Rate: units.Kbps, RED: red}, nil, func(*packet.Packet) {}); err == nil {
		t.Error("RED without RNG accepted")
	}
	bad := &queue.REDConfig{}
	if _, err := New(s, Config{Rate: units.Kbps, RED: bad}, sim.NewRNG(1), func(*packet.Packet) {}); err == nil {
		t.Error("invalid RED config accepted")
	}
}

func TestREDLinkMarksUnderSustainedQueue(t *testing.T) {
	s := sim.New()
	red := &queue.REDConfig{MinThreshold: 2, MaxThreshold: 8, MaxP: 0.5, Weight: 0.5}
	l, err := New(s, Config{Rate: units.Kbps, RED: red}, sim.NewRNG(3), func(*packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 40; i++ {
		l.Send(mkData(i, 10))
	}
	if got := l.Stats().ECNMarked; got == 0 {
		t.Error("RED never marked despite a persistent 30+-packet queue")
	}
}
