package serve

import (
	"sync"
	"time"

	"wtcp/internal/core"
)

// Load shedding by failure taxonomy (core.Classify), applied at
// admission:
//
//   - Fail-fast classes (protocol-bug, panic) are deterministic: the
//     same request will fail the same way every time, so its
//     fingerprint is recorded permanently and replays answer 422
//     immediately, pointing at the captured repro bundle instead of
//     burning a slot to rediscover the bug.
//   - Resource exhaustion is a property of the scenario's shape, not
//     one request: when a request's class (preset/scheme for runs, the
//     sweep list for campaigns) exhausts its budget, the whole class
//     cools down — near-identical requests are rejected at admission
//     with 503 + Retry-After until the cooldown lapses, so a
//     pathological query pattern cannot saturate every slot with
//     doomed work.

// permFailure records a deterministically failing request.
type permFailure struct {
	Class  string
	Reason string
	// ReproDir points at the directory holding the failure's captured
	// repro bundle (cmd/wtcp-repro replays it).
	ReproDir string
}

type breaker struct {
	mu       sync.Mutex
	cooldown time.Duration
	perm     map[string]permFailure
	until    map[string]time.Time
}

func newBreaker(cooldown time.Duration) *breaker {
	return &breaker{cooldown: cooldown, perm: map[string]permFailure{}, until: map[string]time.Time{}}
}

// permanent reports a recorded deterministic failure for fp.
func (b *breaker) permanent(fp string) (permFailure, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	pf, ok := b.perm[fp]
	return pf, ok
}

// recordPermanent trips the per-fingerprint breaker for a fail-fast
// class. Only protocol-bug and panic warrant it; other classes may
// succeed under different load or budgets.
func (b *breaker) recordPermanent(fp string, class core.FailureClass, reason, reproDir string) {
	if class != core.ClassProtocolBug && class != core.ClassPanic {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.perm[fp] = permFailure{Class: string(class), Reason: reason, ReproDir: reproDir}
}

// tripClass starts (or extends) the cooldown for a scenario class.
func (b *breaker) tripClass(class string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.until[class] = time.Now().Add(b.cooldown)
}

// rejected reports whether class is cooling down and for how much
// longer. Expired entries are pruned on the way.
func (b *breaker) rejected(class string) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	deadline, ok := b.until[class]
	if !ok {
		return 0, false
	}
	remaining := time.Until(deadline)
	if remaining <= 0 {
		delete(b.until, class)
		return 0, false
	}
	return remaining, true
}

// counts reports how many permanent records and live cooldowns exist.
func (b *breaker) counts() (perm, cooling int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	for _, d := range b.until {
		if d.After(now) {
			cooling++
		}
	}
	return len(b.perm), cooling
}
