package fleet

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"wtcp/internal/chaos"
)

// faultTransport is an http.RoundTripper that applies a
// chaos.FleetFaults plan to the worker's coordinator RPCs: renewals and
// result posts can be dropped (transport error before delivery),
// duplicated (delivered twice, second reply discarded), or delayed
// (held before delivery — long enough to lapse a lease when the plan
// wants it to). Faults draw from a seeded RNG so a chaotic campaign
// replays identically from (plan, seed).
//
// Dropping a result post after delivery would be indistinguishable from
// a lost reply, which is exactly the case the coordinator's duplicate
// handling exists for — the dup fault covers it from the other side:
// the coordinator sees the same post twice and must count it once.
type faultTransport struct {
	faults *chaos.FleetFaults
	next   http.RoundTripper

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFaultClient wraps an HTTP client with the fault plan. A nil or
// disabled plan returns a plain client.
func NewFaultClient(faults *chaos.FleetFaults, seed int64) *http.Client {
	if !faults.Enabled() {
		return &http.Client{}
	}
	if faults.Seed != 0 {
		seed = faults.Seed
	}
	return &http.Client{Transport: &faultTransport{
		faults: faults,
		next:   http.DefaultTransport,
		rng:    rand.New(rand.NewSource(seed)),
	}}
}

// RoundTrip applies the plan to the matching RPC class and forwards the
// request.
func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	var f chaos.RPCFaults
	switch {
	case strings.HasSuffix(req.URL.Path, "/v1/renew"):
		f = t.faults.Renew
	case strings.HasSuffix(req.URL.Path, "/v1/result"):
		f = t.faults.Result
	default:
		return t.next.RoundTrip(req)
	}
	if !f.Enabled() {
		return t.next.RoundTrip(req)
	}

	t.mu.Lock()
	drop := t.rng.Float64() < f.DropProb
	dup := t.rng.Float64() < f.DupProb
	delay := t.rng.Float64() < f.DelayProb
	t.mu.Unlock()

	if drop {
		return nil, fmt.Errorf("fleet chaos: dropped %s", req.URL.Path)
	}
	if delay {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(f.Delay()):
		}
	}
	if dup {
		// Deliver once and discard the reply, then deliver again and
		// return that reply — the coordinator sees two identical posts,
		// like a client that retried after losing the first response.
		first, err := t.next.RoundTrip(cloneRequest(req))
		if err == nil {
			first.Body.Close()
		}
	}
	return t.next.RoundTrip(req)
}

// cloneRequest copies the request for a duplicate delivery. Bodies in
// this protocol are small JSON buffers already materialized by the
// caller, so GetBody is always available.
func cloneRequest(req *http.Request) *http.Request {
	out := req.Clone(req.Context())
	if req.GetBody != nil {
		if body, err := req.GetBody(); err == nil {
			out.Body = body
		}
	}
	return out
}
