package sim

import "time"

// Timer is a restartable one-shot timer bound to a Simulator. It mirrors
// the retransmission-timer idiom in TCP implementations: Set replaces any
// previous deadline, Stop cancels, and the callback fires at most once per
// Set. The zero value is not usable; create timers with NewTimer.
type Timer struct {
	sim *Simulator
	ev  *Event
	fn  func()

	// sets counts how many times the timer has been (re)armed; exposed for
	// instrumentation (e.g. counting EBSN-induced timer resets).
	sets uint64
}

// NewTimer returns a timer that invokes fn on expiry. fn runs in event
// context (virtual time).
func NewTimer(s *Simulator, fn func()) *Timer {
	return &Timer{sim: s, fn: fn}
}

// Set arms the timer to fire after d, replacing any pending deadline.
func (t *Timer) Set(d time.Duration) {
	t.sim.Cancel(t.ev)
	t.sets++
	t.ev = t.sim.Schedule(d, func() {
		t.ev = nil
		t.fn()
	})
}

// Stop cancels any pending deadline. Stopping an idle timer is a no-op.
func (t *Timer) Stop() {
	t.sim.Cancel(t.ev)
	t.ev = nil
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.ev.Pending() }

// Deadline reports the virtual time the timer will fire, or a negative
// value if the timer is idle.
func (t *Timer) Deadline() time.Duration {
	if !t.ev.Pending() {
		return -1
	}
	return t.ev.At()
}

// Sets reports how many times the timer has been armed since creation.
func (t *Timer) Sets() uint64 { return t.sets }
