package core

import (
	"errors"
	"sort"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/distrib"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// The paper motivates the study with "popular applications like ftp,
// telnet, www-access" but evaluates only bulk transfer (ftp). The
// workload runners below put the other two application shapes on the same
// FH-BS-MH topology:
//
//   - RunWeb: request/response pages — a burst of page bytes, a pause
//     until the mobile host has the whole page, a think time, repeat. The
//     metric is page-load latency.
//   - RunTelnet: an interactive echo stream — small writes at typing
//     intervals, each measured from production at the fixed host to
//     delivery at the mobile host. The metric is keystroke latency.
//
// Both use the streaming sender: bytes become sendable when the
// application produces them.

// WebWorkload describes a page-fetch sequence.
type WebWorkload struct {
	// Pages is the number of page downloads.
	Pages int
	// PageSize is the per-page payload when PageSizes is nil.
	PageSize units.ByteSize
	// PageSizes, when non-nil, draws each page's size from a
	// distribution (web object sizes are classically heavy-tailed
	// Pareto); samples are clamped to at least one byte. The draw uses
	// the run's seed, so a configuration is fully reproducible.
	PageSizes distrib.Distribution
	// ThinkTime is the fixed reading pause between a page's completion
	// and the next request.
	ThinkTime time.Duration
}

// WebResult carries the page-level measurements.
type WebResult struct {
	Completed bool
	// PageLoadSec holds each page's load time (request to last byte).
	PageLoadSec []float64
	MeanLoadSec float64
	P95LoadSec  float64
	Timeouts    uint64
	EBSNResets  uint64
}

// RunWeb executes a web-browsing workload over the configured topology.
// cfg.TransferSize is ignored (derived from the workload).
func RunWeb(cfg Config, web WebWorkload) (*WebResult, error) {
	if web.Pages <= 0 || (web.PageSize <= 0 && web.PageSizes == nil) {
		return nil, errors.New("core: web workload needs pages and a page size (or size distribution)")
	}
	if cfg.Scheme == bs.SplitConnection || cfg.Scheme == bs.Snoop {
		return nil, errors.New("core: workload runners support the in-path schemes only")
	}
	// Pre-draw the page sizes so the transfer total is known up front
	// (and the sequence depends only on the seed).
	sizes := make([]units.ByteSize, web.Pages)
	var total units.ByteSize
	if web.PageSizes != nil {
		rng := sim.NewRNG(cfg.Seed ^ 0x5eb)
		for i := range sizes {
			v := units.ByteSize(web.PageSizes.Sample(rng))
			if v < 1 {
				v = 1
			}
			sizes[i] = v
			total += v
		}
	} else {
		for i := range sizes {
			sizes[i] = web.PageSize
		}
		total = units.ByteSize(web.Pages) * web.PageSize
	}
	cfg.TransferSize = total
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = DefaultHorizon
	}
	tp, err := newTopology(cfg, true)
	if err != nil {
		return nil, err
	}
	tp.armOracle(cfg)

	res := &WebResult{}
	var pageStart time.Duration
	var nextBoundary units.ByteSize
	page := 0

	startPage := func() {
		pageStart = tp.sim.Now()
		nextBoundary += sizes[page]
		tp.sender.MakeAvailable(sizes[page])
		page++
	}
	tp.sink.SetDeliveredHook(func(total units.ByteSize) {
		if total < nextBoundary {
			return
		}
		res.PageLoadSec = append(res.PageLoadSec, (tp.sim.Now() - pageStart).Seconds())
		if len(res.PageLoadSec) < web.Pages {
			tp.sim.Schedule(web.ThinkTime, startPage)
		}
	})

	tp.sender.Start()
	startPage()
	for len(res.PageLoadSec) < web.Pages && tp.sim.Now() < cfg.Horizon {
		if ok, err := tp.sim.Step(); !ok || err != nil {
			break
		}
	}

	if f := tp.sim.Failure(); f != nil {
		sim.Release(tp.sim)
		return nil, f
	}
	res.Completed = len(res.PageLoadSec) == web.Pages
	res.Timeouts = tp.sender.Stats().Timeouts
	res.EBSNResets = tp.sender.Stats().EBSNResets
	res.MeanLoadSec, res.P95LoadSec = meanP95(res.PageLoadSec)
	sim.Release(tp.sim)
	return res, nil
}

// TelnetWorkload describes an interactive typing stream.
type TelnetWorkload struct {
	// Keystrokes is the number of writes.
	Keystrokes int
	// Interval is the fixed time between writes (a steady typist).
	Interval time.Duration
	// WriteSize is the payload per write (1 for raw characters; a few
	// bytes for line-buffered input).
	WriteSize units.ByteSize
}

// TelnetResult carries the per-keystroke latencies.
type TelnetResult struct {
	Completed   bool
	LatencySec  []float64
	MeanLatency float64
	P95Latency  float64
	Timeouts    uint64
}

// RunTelnet executes an interactive workload: writes are produced on
// schedule regardless of delivery progress (a typist does not wait for
// echoes), and each write's latency is measured to its in-order delivery
// at the mobile host.
func RunTelnet(cfg Config, tl TelnetWorkload) (*TelnetResult, error) {
	if tl.Keystrokes <= 0 || tl.WriteSize <= 0 || tl.Interval <= 0 {
		return nil, errors.New("core: telnet workload needs keystrokes, a write size, and an interval")
	}
	if cfg.Scheme == bs.SplitConnection || cfg.Scheme == bs.Snoop {
		return nil, errors.New("core: workload runners support the in-path schemes only")
	}
	cfg.TransferSize = units.ByteSize(tl.Keystrokes) * tl.WriteSize
	// Interactive segments are tiny; make the MSS match the write so each
	// keystroke is one segment (character-at-a-time telnet).
	cfg.PacketSize = tl.WriteSize + PaperHeader
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = DefaultHorizon
	}
	tp, err := newTopology(cfg, true)
	if err != nil {
		return nil, err
	}
	tp.armOracle(cfg)

	res := &TelnetResult{}
	produced := make([]time.Duration, 0, tl.Keystrokes)
	delivered := 0

	tp.sink.SetDeliveredHook(func(total units.ByteSize) {
		for delivered < len(produced) &&
			units.ByteSize(delivered+1)*tl.WriteSize <= total {
			res.LatencySec = append(res.LatencySec,
				(tp.sim.Now() - produced[delivered]).Seconds())
			delivered++
		}
	})

	var produce func()
	produce = func() {
		produced = append(produced, tp.sim.Now())
		tp.sender.MakeAvailable(tl.WriteSize)
		if len(produced) < tl.Keystrokes {
			tp.sim.Schedule(tl.Interval, produce)
		}
	}
	tp.sender.Start()
	produce()
	for delivered < tl.Keystrokes && tp.sim.Now() < cfg.Horizon {
		if ok, err := tp.sim.Step(); !ok || err != nil {
			break
		}
	}

	if f := tp.sim.Failure(); f != nil {
		sim.Release(tp.sim)
		return nil, f
	}
	res.Completed = delivered == tl.Keystrokes
	res.Timeouts = tp.sender.Stats().Timeouts
	res.MeanLatency, res.P95Latency = meanP95(res.LatencySec)
	sim.Release(tp.sim)
	return res, nil
}

// meanP95 summarizes a latency sample.
func meanP95(xs []float64) (mean, p95 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	idx := int(float64(len(sorted))*0.95) - 1
	if idx < 0 {
		idx = 0
	}
	return sum / float64(len(sorted)), sorted[idx]
}
