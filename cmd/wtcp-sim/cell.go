package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"wtcp/internal/cell"
	"wtcp/internal/core"
	"wtcp/internal/sim"
)

// cellOptions carries the -cell* flags into the cell-scale runner.
type cellOptions struct {
	flows   int
	policy  string
	bad     time.Duration
	horizon time.Duration
	oracle  int
	seed    int64
	jsonOut bool
	budget  sim.Budget
}

// runCellMode executes one cell-scale simulation (wtcp-sim -cell N): the
// flat struct-of-arrays engine simulating N concurrent flows across
// sharded base stations, scenario presets at 1k/10k/50k and anywhere in
// between.
func runCellMode(opt cellOptions) error {
	cfg := cell.Preset(opt.flows)
	switch opt.policy {
	case "", "roundrobin":
		cfg.Policy = cell.RoundRobin
	case "fifo":
		cfg.Policy = cell.FIFO
	case "csdp":
		cfg.Policy = cell.CSDP
	default:
		return fmt.Errorf("unknown cell policy %q (fifo|roundrobin|csdp)", opt.policy)
	}
	if opt.bad > 0 {
		cfg.Channel.MeanBad = opt.bad
	}
	if opt.horizon > 0 {
		cfg.Horizon = opt.horizon
	}
	cfg.OracleSample = opt.oracle
	cfg.Seed = opt.seed

	start := time.Now()
	res, err := core.RunCell(context.Background(), core.CellConfig{Config: cfg, Budget: opt.budget})
	if err != nil {
		return err
	}
	wall := time.Since(start)

	if opt.jsonOut {
		return json.NewEncoder(os.Stdout).Encode(map[string]any{
			"flows":           cfg.Flows,
			"base_stations":   cfg.BaseStations,
			"policy":          cfg.Policy.String(),
			"completed_flows": res.CompletedFlows,
			"aggregate_kbps":  res.AggregateKbps,
			"fairness":        res.Fairness,
			"radio_attempts":  res.RadioAttempts,
			"radio_discards":  res.RadioDiscards,
			"ebsns_sent":      res.EBSNsSent,
			"timeouts":        res.TotalTimeouts,
			"queue_drops":     res.QueueDrops,
			"events":          res.Events,
			"events_per_sec":  float64(res.Events) / wall.Seconds(),
			"wall_ms":         wall.Milliseconds(),
			"arena_peak":      res.Arena.PeakLive,
		})
	}
	fmt.Printf("cell: %d flows on %d base stations, %s scheduling, bad=%v\n",
		cfg.Flows, cfg.BaseStations, cfg.Policy, cfg.Channel.MeanBad)
	fmt.Printf("completed    %d/%d flows in %v virtual\n", res.CompletedFlows, cfg.Flows, cfg.Horizon)
	fmt.Printf("aggregate    %.1f Kbps (fairness %.3f)\n", res.AggregateKbps, res.Fairness)
	fmt.Printf("radio        %d attempts, %d discards, %d EBSNs\n",
		res.RadioAttempts, res.RadioDiscards, res.EBSNsSent)
	fmt.Printf("source       %d timeouts, %d queue drops\n", res.TotalTimeouts, res.QueueDrops)
	fmt.Printf("engine       %d events in %v wall (%.0f ev/s), peak %d packets live\n",
		res.Events, wall.Round(time.Millisecond), float64(res.Events)/wall.Seconds(), res.Arena.PeakLive)
	return nil
}
