// Package bs implements the base station — the gateway between the wired
// and wireless halves of the paper's topology — in all the forwarding
// modes the paper studies:
//
//   - Basic: plain store-and-forward (fragment and transmit; no recovery).
//     Every wireless loss is left to end-to-end TCP.
//   - LocalRecovery: per-unit link-level ARQ with random retransmission
//     backoff and an RTmax attempt cap followed by a whole-packet discard
//     — the [Bhagwat 95]-style "aggressive retransmission with packet
//     discards" protocol the paper adopts (RTmax = 13, from CDPD).
//   - EBSN: LocalRecovery plus an Explicit Bad State Notification sent to
//     the TCP source after *every* unsuccessful transmission attempt, so
//     the source keeps pushing its retransmission timer back instead of
//     timing out while the base station is still recovering locally.
//   - SourceQuench: LocalRecovery plus an ICMP source quench per failed
//     attempt — the comparator the paper shows cannot prevent timeouts
//     (it throttles new data but does not touch the timer).
//   - Snoop: a simplified transport-aware snoop agent [Balakrishnan 95]
//     as a related-work baseline: caches data packets, retransmits
//     locally on duplicate ACKs (suppressing them toward the source) or
//     on a local persistence timer; no link-level acknowledgments.
//
// None of the schemes except Snoop keeps per-connection transport state —
// the paper's headline operational advantage.
package bs

import (
	"errors"
	"fmt"
	"time"

	"wtcp/internal/ip"
	"wtcp/internal/link"
	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// Scheme selects the base station's forwarding behaviour.
type Scheme int

// Schemes.
const (
	Basic Scheme = iota + 1
	LocalRecovery
	EBSN
	SourceQuench
	Snoop
	// SplitConnection is the I-TCP baseline [Bakre & Badrinath 94]: the
	// connection is split at the base station into a wired TCP and an
	// independent wireless TCP. It is a topology change, implemented by
	// internal/core's wiring rather than by BaseStation (which rejects
	// it); the constant lives here so every scheme shares one namespace.
	SplitConnection
)

var schemeNames = map[Scheme]string{
	Basic:           "basic",
	LocalRecovery:   "localrecovery",
	EBSN:            "ebsn",
	SourceQuench:    "sourcequench",
	Snoop:           "snoop",
	SplitConnection: "split",
}

// String names the scheme as used by the CLI tools.
func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// ParseScheme converts a CLI name into a Scheme.
func ParseScheme(name string) (Scheme, error) {
	for s, n := range schemeNames {
		if n == name {
			return s, nil
		}
	}
	valid := make([]string, 0, len(schemeNames))
	for _, s := range Schemes() {
		valid = append(valid, s.String())
	}
	return 0, fmt.Errorf("bs: unknown scheme %q (want one of %v)", name, valid)
}

// Schemes lists all supported schemes in presentation order.
func Schemes() []Scheme {
	return []Scheme{Basic, LocalRecovery, EBSN, SourceQuench, Snoop, SplitConnection}
}

// UsesLinkAcks reports whether the scheme requires the mobile host to send
// link-level acknowledgments.
func (s Scheme) UsesLinkAcks() bool {
	switch s {
	case LocalRecovery, EBSN, SourceQuench:
		return true
	default:
		return false
	}
}

// ARQConfig parameterizes the local-recovery link protocol.
type ARQConfig struct {
	// RTmax is the number of successive retransmissions allowed before
	// the packet is discarded (13 in CDPD and in the paper).
	RTmax int
	// Window is the number of link units (fragments) that may be
	// outstanding at once; pipelining keeps the radio busy so local
	// recovery does not itself cost throughput.
	Window int
	// AckTimeout is how long after a unit finishes transmitting the base
	// station waits for its link-level ack before declaring the attempt
	// unsuccessful.
	AckTimeout time.Duration
	// BackoffMax bounds the uniform random retransmission backoff drawn
	// after each unsuccessful attempt.
	BackoffMax time.Duration
}

// Default ARQ values; AckTimeout and BackoffMax defaults suit the WAN
// radio (fragment ~80 ms on air, link ack ~25 ms).
const (
	DefaultRTmax      = 13
	DefaultARQWindow  = 4
	DefaultAckTimeout = 250 * time.Millisecond
	DefaultBackoffMax = 300 * time.Millisecond
)

// WithDefaults fills unset fields with the package defaults.
func (c ARQConfig) WithDefaults() ARQConfig {
	if c.RTmax <= 0 {
		c.RTmax = DefaultRTmax
	}
	if c.Window <= 0 {
		c.Window = DefaultARQWindow
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = DefaultAckTimeout
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	return c
}

// SnoopConfig parameterizes the snoop baseline.
type SnoopConfig struct {
	// LocalTimeout is the persistence timer for the oldest cached,
	// unacknowledged packet.
	LocalTimeout time.Duration
	// MaxCached bounds the cache in packets.
	MaxCached int
	// MaxLocalRetx is the ARQ-style attempt cap: once a cached copy has
	// been locally retransmitted this many times it is evicted and the
	// fixed host's own recovery takes over (dupacks for it are forwarded
	// again). A fresh copy from the source restarts the count.
	MaxLocalRetx int
}

// Default snoop values. The retransmission cap mirrors the ARQ RTmax so
// the two local-recovery schemes give up after comparable persistence.
const (
	DefaultSnoopTimeout   = 800 * time.Millisecond
	DefaultSnoopMaxCached = 64
	DefaultSnoopMaxRetx   = DefaultRTmax
)

func (c SnoopConfig) WithDefaults() SnoopConfig {
	if c.LocalTimeout <= 0 {
		c.LocalTimeout = DefaultSnoopTimeout
	}
	if c.MaxCached <= 0 {
		c.MaxCached = DefaultSnoopMaxCached
	}
	if c.MaxLocalRetx <= 0 {
		c.MaxLocalRetx = DefaultSnoopMaxRetx
	}
	return c
}

// Config parameterizes a base station.
type Config struct {
	// Scheme selects the forwarding behaviour.
	Scheme Scheme
	// MTU is the wireless link MTU; data packets larger than it are
	// fragmented. Zero disables fragmentation (the paper's LAN setup).
	MTU units.ByteSize
	// QueueLimit bounds the number of data packets the base station will
	// hold for the wireless link (beyond it, tail drop).
	QueueLimit int
	// ARQ configures local recovery (used by LocalRecovery, EBSN,
	// SourceQuench).
	ARQ ARQConfig
	// Snoop configures the snoop baseline.
	Snoop SnoopConfig
	// NotifyEvery sends the EBSN/quench control message only on every
	// Nth unsuccessful attempt (default 1 = the paper's "after every
	// unsuccessful attempt"). An ablation knob: sparser notifications
	// save reverse-channel bandwidth but risk source timeouts between
	// them.
	NotifyEvery int
}

// Stats counts base-station activity.
type Stats struct {
	// DataIn counts data packets accepted from the wired side; DataDropped
	// counts those refused because the hold queue was full.
	DataIn      uint64
	DataDropped uint64
	// AcksForwarded counts TCP acks relayed from the mobile host to the
	// fixed host.
	AcksForwarded uint64
	// ARQAttempts counts link-unit transmissions (first tries and
	// retries); ARQTimeouts counts unsuccessful attempts; ARQDiscards
	// counts whole packets abandoned after RTmax.
	ARQAttempts uint64
	ARQTimeouts uint64
	ARQDiscards uint64
	// LinkAcks counts link-level acknowledgments received.
	LinkAcks uint64
	// EBSNsSent and QuenchesSent count control messages emitted toward
	// the source.
	EBSNsSent    uint64
	QuenchesSent uint64
	// SnoopLocalRetx counts snoop-triggered local retransmissions;
	// SnoopSuppressedDupAcks counts dupacks absorbed at the base station;
	// SnoopEvictions counts cached copies dropped at the local
	// retransmission cap.
	SnoopLocalRetx         uint64
	SnoopSuppressedDupAcks uint64
	SnoopEvictions         uint64
	// Crashes counts injected crash/restart cycles; CrashLostPackets
	// counts data packets whose forwarding state died with a crash
	// (in-recovery, pending, or queued on the downlink); CrashDiscards
	// counts packets dropped at the station's doors while it was down.
	Crashes          uint64
	CrashLostPackets uint64
	CrashDiscards    uint64
}

// Hooks are optional base-station observation points; any field may be
// nil. They exist for the conformance tracer and for tests, and must not
// mutate station state. All fire synchronously inside the transition they
// describe.
type Hooks struct {
	// OnARQAttempt fires when a link unit is put on the air (first tries
	// and retries). unit is the unit's packet ID, pkt the network packet it
	// belongs to, attempt the 1-based transmission count.
	OnARQAttempt func(unit, pkt uint64, attempt int)
	// OnARQFailure fires when an attempt's acknowledgment timer expires —
	// the "unsuccessful attempt" that triggers source notification.
	OnARQFailure func(unit, pkt uint64, attempt int)
	// OnARQAck fires when a link-level acknowledgment completes a unit.
	OnARQAck func(unit, pkt uint64)
	// OnARQDiscard fires when a whole network packet is withdrawn after
	// RTmax retransmissions.
	OnARQDiscard func(pkt uint64)
	// OnNotify fires for every control message emitted toward a source
	// (packet.EBSN or packet.SourceQuench).
	OnNotify func(kind packet.Kind, conn int)
	// OnSnoopAdmit fires when the snoop agent caches a downlink data
	// segment (including a replacement copy from the source).
	OnSnoopAdmit func(seq int64)
	// OnSnoopRetx fires for every snoop local retransmission; attempt is
	// the 1-based count for the current cached copy.
	OnSnoopRetx func(seq int64, attempt int)
	// OnSnoopSuppress fires when a duplicate ACK is absorbed at the base
	// station instead of being forwarded to the fixed host.
	OnSnoopSuppress func(ackNo int64)
	// OnSnoopEvict fires when a cached copy is dropped at the local
	// retransmission cap.
	OnSnoopEvict func(seq int64)
}

// BaseStation is the gateway agent. Create with New, then deliver packets
// arriving from the wired side via FromWired and from the wireless side
// via FromWireless.
type BaseStation struct {
	sim     *sim.Simulator
	cfg     Config
	ids     *packet.IDGen
	rng     *sim.RNG
	down    *link.Link             // BS -> MH
	toWired func(p *packet.Packet) // BS -> FH (reverse wired hop)

	frag *ip.Fragmenter // nil when cfg.MTU == 0

	arq   *arqEngine  // non-nil for recovery schemes
	snoop *snoopAgent // non-nil for Snoop

	// failuresSinceNotify implements Config.NotifyEvery.
	failuresSinceNotify int

	hooks Hooks

	// downed marks the station as crashed: all traffic is dropped at its
	// doors until Restart.
	downed bool

	stats Stats
}

// New wires a base station. down is the wireless downlink toward the
// mobile host; toWired emits packets toward the fixed host. rng drives the
// random ARQ backoff.
func New(s *sim.Simulator, cfg Config, ids *packet.IDGen, rng *sim.RNG, down *link.Link, toWired func(*packet.Packet)) (*BaseStation, error) {
	if down == nil {
		return nil, errors.New("bs: nil downlink")
	}
	if toWired == nil {
		return nil, errors.New("bs: nil wired output")
	}
	if cfg.MTU < 0 {
		return nil, errors.New("bs: negative MTU")
	}
	if cfg.Scheme == 0 {
		cfg.Scheme = Basic
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 50
	}
	if cfg.NotifyEvery <= 0 {
		cfg.NotifyEvery = 1
	}
	b := &BaseStation{
		sim:     s,
		cfg:     cfg,
		ids:     ids,
		rng:     rng,
		down:    down,
		toWired: toWired,
	}
	if cfg.MTU > 0 {
		f, err := ip.NewFragmenter(cfg.MTU, ids)
		if err != nil {
			return nil, err
		}
		b.frag = f
	}
	switch cfg.Scheme {
	case LocalRecovery, EBSN, SourceQuench:
		if rng == nil {
			return nil, errors.New("bs: recovery schemes need an RNG for backoff")
		}
		b.arq = newARQEngine(b, cfg.ARQ.WithDefaults())
	case Snoop:
		b.snoop = newSnoopAgent(b, cfg.Snoop.WithDefaults())
	case SplitConnection:
		return nil, errors.New("bs: split connection is a topology change; use the core scenario wiring")
	}
	return b, nil
}

// Stats returns a copy of the counters.
func (b *BaseStation) Stats() Stats { return b.stats }

// SetHooks installs observation callbacks. Call before traffic flows.
func (b *BaseStation) SetHooks(h Hooks) { b.hooks = h }

// Scheme reports the configured scheme.
func (b *BaseStation) Scheme() Scheme { return b.cfg.Scheme }

// Backlog reports the number of data packets held for the wireless link
// (queued plus in recovery), the quantity the quench policy watches.
func (b *BaseStation) Backlog() int {
	switch {
	case b.arq != nil:
		return b.arq.backlogPackets()
	case b.snoop != nil:
		return b.down.QueueLen()
	default:
		return b.down.QueueLen()
	}
}

// SnoopCacheLen reports the number of segments in the snoop cache (zero
// for non-snoop schemes) — the occupancy the property tests drain to
// zero.
func (b *BaseStation) SnoopCacheLen() int {
	if b.snoop == nil {
		return 0
	}
	return len(b.snoop.cache)
}

// Crash simulates a base-station failure: every piece of soft state —
// ARQ windows, retry timers, the snoop cache, packets queued for the
// radio — is lost, and until Restart the station drops whatever arrives
// at either interface. It returns the number of data packets whose
// forwarding state died with the crash; their recovery is end-to-end
// TCP's problem, exactly the blackout-style fault that dominates real
// deployments. Crashing an already-down station is a no-op.
func (b *BaseStation) Crash() int {
	if b.downed {
		return 0
	}
	b.downed = true
	b.stats.Crashes++
	lost := b.down.DropQueued()
	if b.arq != nil {
		lost += b.arq.reset()
	}
	if b.snoop != nil {
		lost += b.snoop.reset()
	}
	b.stats.CrashLostPackets += uint64(lost)
	return lost
}

// Restart brings a crashed station back with empty state (a reboot, not a
// resume). Restarting a live station is a no-op.
func (b *BaseStation) Restart() { b.downed = false }

// Down reports whether the station is crashed.
func (b *BaseStation) Down() bool { return b.downed }

// FromWired accepts a packet arriving over the wired link from the fixed
// host (data segments, in this study).
func (b *BaseStation) FromWired(p *packet.Packet) {
	if b.downed {
		b.stats.CrashDiscards++
		return
	}
	if p.Kind != packet.Data {
		// Nothing else flows FH->MH in this study; drop silently.
		return
	}
	switch {
	case b.arq != nil:
		if !b.arq.admit(p) {
			b.stats.DataDropped++
			return
		}
		b.stats.DataIn++
	case b.snoop != nil:
		b.stats.DataIn++
		b.snoop.admit(p)
	default: // Basic
		b.stats.DataIn++
		b.forwardBasic(p)
	}
}

// forwardBasic fragments and streams a data packet onto the downlink with
// no recovery.
func (b *BaseStation) forwardBasic(p *packet.Packet) {
	for _, u := range b.units(p) {
		b.down.Send(u)
	}
}

// units converts a data packet into the link units transmitted over the
// wireless hop: MTU fragments when fragmentation is on, the packet itself
// otherwise.
func (b *BaseStation) units(p *packet.Packet) []*packet.Packet {
	if b.frag == nil {
		return []*packet.Packet{p}
	}
	return b.frag.Fragment(p)
}

// FromWireless accepts a packet arriving over the wireless uplink from the
// mobile host: TCP acks and link-level acks.
func (b *BaseStation) FromWireless(p *packet.Packet) {
	if b.downed {
		b.stats.CrashDiscards++
		return
	}
	switch p.Kind {
	case packet.Ack:
		if b.snoop != nil && b.snoop.filterAck(p) {
			return // suppressed dupack
		}
		b.stats.AcksForwarded++
		b.toWired(p)
	case packet.LinkAck:
		b.stats.LinkAcks++
		if b.arq != nil {
			b.arq.onLinkAck(uint64(p.AckNo))
		}
	}
}

// notifyFailureAll emits the per-failed-attempt control message to every
// held-up source. failing is always included; heldUp lists the
// connections with data still crossing the hop. With a single connection
// this reduces exactly to the paper's "notify the source". The addresses
// come from the packets themselves — still no per-connection transport
// state at the base station.
func (b *BaseStation) notifyFailureAll(failing int, heldUp []int) {
	// The NotifyEvery thinning applies per failure *event*; the fan-out
	// to held-up sources happens for each event that passes the filter.
	b.failuresSinceNotify++
	if b.failuresSinceNotify < b.cfg.NotifyEvery {
		return
	}
	b.failuresSinceNotify = 0

	notified := map[int]bool{failing: true}
	b.emitNotification(failing)
	for _, conn := range heldUp {
		if notified[conn] {
			continue
		}
		notified[conn] = true
		b.emitNotification(conn)
	}
}

// emitNotification sends one control message toward a source.
func (b *BaseStation) emitNotification(conn int) {
	switch b.cfg.Scheme {
	case EBSN:
		b.stats.EBSNsSent++
		if b.hooks.OnNotify != nil {
			b.hooks.OnNotify(packet.EBSN, conn)
		}
		b.toWired(&packet.Packet{
			ID:     b.ids.Next(),
			Kind:   packet.EBSN,
			Conn:   conn,
			SentAt: b.sim.Now(),
		})
	case SourceQuench:
		b.stats.QuenchesSent++
		if b.hooks.OnNotify != nil {
			b.hooks.OnNotify(packet.SourceQuench, conn)
		}
		b.toWired(&packet.Packet{
			ID:     b.ids.Next(),
			Kind:   packet.SourceQuench,
			Conn:   conn,
			SentAt: b.sim.Now(),
		})
	}
}
