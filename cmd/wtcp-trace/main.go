// Command wtcp-trace reproduces the paper's packet-trace figures
// (Figures 3-5): a 576-byte-packet transfer over the deterministic
// good-10s/bad-4s channel, plotted as packet number (mod 90) against send
// time.
//
//	wtcp-trace -scheme basic          # Figure 3
//	wtcp-trace -scheme localrecovery  # Figure 4
//	wtcp-trace -scheme ebsn -csv      # Figure 5 as CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/experiment"
	"wtcp/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wtcp-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wtcp-trace", flag.ContinueOnError)
	var (
		schemeName = fs.String("scheme", "basic", "scheme: basic (Fig 3) | localrecovery (Fig 4) | ebsn (Fig 5) | sourcequench | snoop")
		horizon    = fs.Duration("horizon", 60*time.Second, "observation window")
		width      = fs.Int("width", 100, "plot width in characters")
		height     = fs.Int("height", 30, "plot height in characters")
		csv        = fs.Bool("csv", false, "emit CSV scatter data instead of ASCII art")
		cwnd       = fs.Bool("cwnd", false, "plot congestion-window evolution instead of the packet trace")
		compare    = fs.Bool("compare", false, "render basic TCP and EBSN side by side (Figures 3 vs 5)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		basic, err := experiment.TraceFigure(bs.Basic, *horizon)
		if err != nil {
			return err
		}
		ebsn, err := experiment.TraceFigure(bs.EBSN, *horizon)
		if err != nil {
			return err
		}
		fmt.Print(trace.RenderComparison(
			fmt.Sprintf("Fig 3: basic TCP (%d timeouts)", basic.Summary.Timeouts), basic.Trace,
			fmt.Sprintf("Fig 5: EBSN (%d timeouts)", ebsn.Summary.Timeouts), ebsn.Trace,
			*width/2, *height, *horizon))
		return nil
	}
	scheme, err := bs.ParseScheme(*schemeName)
	if err != nil {
		return err
	}
	r, err := experiment.TraceFigure(scheme, *horizon)
	if err != nil {
		return err
	}
	if *cwnd {
		if *csv {
			fmt.Print(r.Cwnd.CSV())
			return nil
		}
		fmt.Printf("congestion window evolution: %s, deterministic channel good=10s bad=4s\n", scheme)
		fmt.Print(r.Cwnd.RenderASCII(*width, *height, *horizon))
		fmt.Printf("window collapses to one segment: %d\n", r.Cwnd.Collapses(536))
		return nil
	}
	if *csv {
		fmt.Print(r.Trace.CSV())
		return nil
	}
	fmt.Printf("packet trace: %s, deterministic channel good=10s bad=4s, 576B packets, 4KB window\n", scheme)
	fmt.Print(r.Trace.RenderASCII(*width, *height, *horizon))
	fmt.Printf("source timeouts %d | source retransmissions %d | fast retransmits %d | EBSN resets %d\n",
		r.Summary.Timeouts, r.Sender.RetransSegments, r.Summary.FastRetransmits, r.Summary.EBSNResets)
	return nil
}
