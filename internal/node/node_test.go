package node

import (
	"testing"

	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

type harness struct {
	s      *sim.Simulator
	m      *Mobile
	sink   *tcp.Sink
	uplink []*packet.Packet
	ids    *packet.IDGen
}

func newHarness(t *testing.T, linkAcks bool) *harness {
	t.Helper()
	h := &harness{s: sim.New(), ids: &packet.IDGen{}}
	sink, err := tcp.NewSink(h.s, 4*units.KB, h.ids, func(p *packet.Packet) {
		h.uplink = append(h.uplink, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	h.sink = sink
	m, err := NewMobile(h.s, MobileConfig{LinkAcks: linkAcks}, h.ids, sink, func(p *packet.Packet) {
		h.uplink = append(h.uplink, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	h.m = m
	return h
}

func TestConstructorValidation(t *testing.T) {
	s := sim.New()
	ids := &packet.IDGen{}
	sink, err := tcp.NewSink(s, units.KB, ids, func(*packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMobile(s, MobileConfig{}, ids, nil, func(*packet.Packet) {}); err == nil {
		t.Error("nil sink accepted")
	}
	if _, err := NewMobile(s, MobileConfig{}, ids, sink, nil); err == nil {
		t.Error("nil uplink accepted")
	}
}

func TestFragmentsReassembleIntoSink(t *testing.T) {
	h := newHarness(t, false)
	// Hand-build a two-fragment train for a 100-byte-payload segment
	// (140 on-wire: fragments of 128 and 12).
	frags := []*packet.Packet{
		{ID: 1, Kind: packet.Fragment, Seq: 0, Payload: 128, FragOf: 50, FragIndex: 0, FragCount: 2},
		{ID: 2, Kind: packet.Fragment, Seq: 0, Payload: 12, FragOf: 50, FragIndex: 1, FragCount: 2},
	}
	for _, f := range frags {
		h.m.Receive(f)
	}
	if got := h.sink.Delivered(); got != 100 {
		t.Errorf("sink delivered %d, want 100", got)
	}
	// One TCP ack emitted, no link acks.
	if len(h.uplink) != 1 || h.uplink[0].Kind != packet.Ack {
		t.Fatalf("uplink = %v, want a single TCP ack", h.uplink)
	}
	if h.m.Stats().LinkAcksSent != 0 {
		t.Error("link acks sent while disabled")
	}
	if h.m.Stats().UnitsReceived != 2 {
		t.Errorf("UnitsReceived = %d", h.m.Stats().UnitsReceived)
	}
}

func TestLinkAcksEmittedPerUnit(t *testing.T) {
	h := newHarness(t, true)
	h.m.Receive(&packet.Packet{ID: 7, Kind: packet.Fragment, Seq: 0, Payload: 128, FragOf: 50, FragIndex: 0, FragCount: 2})
	if len(h.uplink) != 1 {
		t.Fatalf("uplink = %d packets, want 1 link ack", len(h.uplink))
	}
	la := h.uplink[0]
	if la.Kind != packet.LinkAck || la.AckNo != 7 {
		t.Errorf("link ack = %+v", la)
	}
	if h.m.Stats().LinkAcksSent != 1 {
		t.Error("LinkAcksSent not counted")
	}
}

func TestWholePacketModeLAN(t *testing.T) {
	h := newHarness(t, true)
	h.m.Receive(&packet.Packet{ID: 3, Kind: packet.Data, Seq: 0, Payload: 1496})
	// Link ack first, then the sink's TCP ack.
	if len(h.uplink) != 2 {
		t.Fatalf("uplink = %d packets, want link ack + TCP ack", len(h.uplink))
	}
	if h.uplink[0].Kind != packet.LinkAck || h.uplink[1].Kind != packet.Ack {
		t.Errorf("uplink kinds = %v, %v", h.uplink[0].Kind, h.uplink[1].Kind)
	}
	if h.sink.Delivered() != 1496 {
		t.Errorf("Delivered = %d", h.sink.Delivered())
	}
}

func TestControlPacketsIgnored(t *testing.T) {
	h := newHarness(t, true)
	h.m.Receive(&packet.Packet{Kind: packet.EBSN})
	h.m.Receive(&packet.Packet{Kind: packet.LinkAck})
	if len(h.uplink) != 0 || h.m.Stats().UnitsReceived != 0 {
		t.Error("control packets processed by mobile host")
	}
}

func TestDuplicateUnitStillLinkAcked(t *testing.T) {
	// An ARQ retransmission whose first copy arrived must be link-acked
	// again (the first ack may have been lost) but not re-delivered.
	h := newHarness(t, true)
	f := &packet.Packet{ID: 9, Kind: packet.Fragment, Seq: 0, Payload: 140, FragOf: 60, FragIndex: 0, FragCount: 1}
	h.m.Receive(f)
	h.m.Receive(f)
	links := 0
	for _, p := range h.uplink {
		if p.Kind == packet.LinkAck {
			links++
		}
	}
	if links != 2 {
		t.Errorf("link acks = %d, want 2", links)
	}
	if h.sink.Delivered() != 100 {
		t.Errorf("Delivered = %d, want 100 (no double delivery)", h.sink.Delivered())
	}
}
