package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"wtcp/internal/chaos"
	"wtcp/internal/experiment"
	"wtcp/internal/units"
)

// newTestServer opens a Server over dir with test-friendly defaults,
// registered for cleanup.
func newTestServer(t *testing.T, dir string, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		DataDir:         dir,
		Slots:           2,
		QueueDepth:      2,
		DefaultDeadline: time.Minute,
		BreakerCooldown: time.Hour, // cooldowns must be observable, not racy
	}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// runBody builds a small, fast /v1/run body. transferKB tunes how long
// the execution holds a slot (~10ms per MB on this simulator).
func runBody(seed int64, transferKB int64) []byte {
	return []byte(fmt.Sprintf(
		`{"scenario":{"mean_bad":"4s","transfer_kb":%d,"seed":%d},"replications":1}`, transferKB, seed))
}

func post(t *testing.T, ts *httptest.Server, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestRunEndpointCachesAndServesByFingerprint(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := runBody(1, 20)
	resp, fresh := post(t, ts, "/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh run: HTTP %d: %s", resp.StatusCode, fresh)
	}
	if got := resp.Header.Get("X-Wtcpd-Cache"); got != "miss" {
		t.Errorf("fresh run cache header = %q, want miss", got)
	}
	var rr RunResponse
	if err := json.Unmarshal(fresh, &rr); err != nil {
		t.Fatalf("decode run response: %v", err)
	}
	if len(rr.Replications) != 1 || len(rr.Replications[0].Values) != len(rr.Metrics) {
		t.Fatalf("response shape: %+v", rr)
	}
	if rr.Replications[0].Values[0] <= 0 {
		t.Errorf("throughput %v not positive", rr.Replications[0].Values[0])
	}

	resp, cached := post(t, ts, "/v1/run", body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Wtcpd-Cache") != "hit" {
		t.Fatalf("repeat run: HTTP %d cache=%q", resp.StatusCode, resp.Header.Get("X-Wtcpd-Cache"))
	}
	if !bytes.Equal(fresh, cached) {
		t.Errorf("cached response differs from fresh:\n%s\nvs\n%s", fresh, cached)
	}

	resp, byFP := get(t, ts, "/v1/result/"+rr.Fingerprint)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(fresh, byFP) {
		t.Errorf("/v1/result: HTTP %d, byte-identical=%v", resp.StatusCode, bytes.Equal(fresh, byFP))
	}
	if srv.met.executed.Load() != 1 {
		t.Errorf("executed %d times, want 1 (cache must absorb repeats)", srv.met.executed.Load())
	}

	if resp, _ := get(t, ts, "/v1/result/not-a-fingerprint"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed fingerprint: HTTP %d, want 400", resp.StatusCode)
	}
	unknown := strings.Repeat("ab", 32)
	if resp, _ := get(t, ts, "/v1/result/"+unknown); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown fingerprint: HTTP %d, want 404", resp.StatusCode)
	}
}

func TestMalformedRequestsAnswer400AndNeverAdmit(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bad := [][]byte{
		nil,
		[]byte(`{`),
		[]byte(`[]`),
		[]byte(`{"scenario":`),
		[]byte(`{"replications":1}`),
		[]byte(`{"scenario":null}`),
		[]byte(`{"scenario":{"preset":"wan"},"typo":1}`),
		[]byte(`{"scenario":{"preset":"mars"}}`),
		[]byte(`{"scenario":{"preset":"wan","packet_size_bytes":-1}}`),
		[]byte(`{"scenario":{"preset":"wan"},"replications":-1}`),
		[]byte(`{"scenario":{"preset":"wan"},"replications":65}`),
		[]byte(`{"scenario":{"preset":"wan"},"deadline_ms":-5}`),
		[]byte(`{"scenario":{"preset":"wan"}} trailing`),
		bytes.Repeat([]byte("x"), maxRequestBody+2),
	}
	for _, body := range bad {
		if resp, data := post(t, ts, "/v1/run", body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %.60q: HTTP %d (%s), want 400", body, resp.StatusCode, data)
		}
	}
	if resp, _ := post(t, ts, "/v1/sweep", []byte(`{"campaign":{"sweeps":["fig99"]}}`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown sweep: HTTP %d, want 400", resp.StatusCode)
	}
	if got := srv.met.accepted.Load(); got != 0 {
		t.Errorf("malformed requests admitted %d times", got)
	}
	if got := srv.met.badRequests.Load(); got == 0 {
		t.Error("bad-request counter never moved")
	}
}

func TestDeadlineExpiresAs504WithoutTrippingTheClass(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A transfer far too large to finish in 15ms.
	body := []byte(`{"scenario":{"mean_bad":"4s","transfer_kb":500000,"seed":1},"deadline_ms":15}`)
	resp, data := post(t, ts, "/v1/run", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline run: HTTP %d: %s", resp.StatusCode, data)
	}
	if srv.met.deadlines.Load() != 1 {
		t.Errorf("deadline counter = %d, want 1", srv.met.deadlines.Load())
	}
	// The same scenario class must still be admittable: a client's short
	// deadline is not evidence the class exhausts resources.
	resp, data = post(t, ts, "/v1/run", runBody(2, 20))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("class admitted after deadline expiry: HTTP %d: %s", resp.StatusCode, data)
	}
	// A deadline-expired request is not cached: retrying with a longer
	// deadline must be allowed to succeed. (Same fingerprint — deadlines
	// are excluded from identity.)
	if _, ok := srv.cache.get(mustRunFP(t, body)); ok {
		t.Error("deadline-expired answer was cached")
	}
}

func TestResourceExhaustionCoolsTheScenarioClass(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// An event budget no real run fits in: deterministic exhaustion.
	exhausted := []byte(`{"scenario":{"mean_bad":"4s","transfer_kb":20,"seed":1,"budget":{"max_events":50}}}`)
	resp, data := post(t, ts, "/v1/run", exhausted)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("exhausted run: HTTP %d: %s", resp.StatusCode, data)
	}
	var e errorBody
	if err := json.Unmarshal(data, &e); err != nil || e.Class != "resource-exhausted" {
		t.Fatalf("exhausted run error body: %s (err %v)", data, err)
	}

	// The whole class (wan/basic) now cools down at admission...
	resp, data = post(t, ts, "/v1/run", runBody(9, 20))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("class neighbour during cooldown: HTTP %d: %s", resp.StatusCode, data)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 || ra > 3600 {
		t.Errorf("cooldown Retry-After = %q, want finite [1, 3600]", resp.Header.Get("Retry-After"))
	}
	if srv.met.executed.Load() != 1 {
		t.Errorf("cooldown did not shed at admission: executed %d", srv.met.executed.Load())
	}
	// ...but a different class is unaffected.
	resp, data = post(t, ts, "/v1/run", []byte(`{"scenario":{"mean_bad":"4s","transfer_kb":20,"scheme":"ebsn","seed":1}}`))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("other class during cooldown: HTTP %d: %s", resp.StatusCode, data)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post(t, ts, "/v1/run", runBody(1, 20))
	resp, data := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: HTTP %d", resp.StatusCode)
	}
	var snap experiment.HealthSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("/healthz is not a health snapshot: %v\n%s", err, data)
	}
	if snap.Completed == 0 {
		t.Errorf("health snapshot saw no completed runs: %s", data)
	}

	resp, data = get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	for _, want := range []string{
		"wtcpd_requests_total", "wtcpd_accepted_total", "wtcpd_cache_entries",
		"wtcpd_slots 2", "wtcpd_completed_total 1",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Draining flips /healthz to 503 so load balancers stop routing.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srv.Drain(ctx)
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz while draining: HTTP %d, want 503", resp.StatusCode)
	}
}

func mustRunFP(t *testing.T, body []byte) string {
	t.Helper()
	req, sf, err := ParseRunRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	return RunFingerprint(sf, req.Replications)
}

// TestServeStormDrainResume is the acceptance test the tentpole names:
// a seeded 50-request storm with chaotic clients against slots=2, a
// SIGTERM-style drain mid-storm, and a restart on the same data
// directory. Every accepted request either completed or was journaled
// and completes after resume — nothing is silently lost — while every
// rejection carried a finite Retry-After, and a repeat request is
// served from cache byte-identical to the fresh run.
func TestServeStormDrainResume(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, dir, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	faults := &chaos.ServeFaults{MalformedProb: 0.2, DisconnectProb: 0.1, Seed: 42}
	if err := faults.Validate(); err != nil {
		t.Fatal(err)
	}

	const storm = 50
	type report struct {
		fault      chaos.ServeFault
		fp         string
		status     int
		body       []byte
		retryAfter string
	}
	reports := make([]report, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		i := i
		// 10 distinct experiments, ~60ms of work each: enough overlap to
		// exercise single-flight joins, 429 shedding, and the drain.
		body := runBody(int64(i%10+1), 5000)
		rep := report{fault: faults.Roll(uint64(i)), fp: mustRunFP(t, body)}
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch rep.fault {
			case chaos.ServeMalformed:
				resp, err := http.Post(ts.URL+"/v1/run", "application/json",
					bytes.NewReader(faults.Corrupt(body, uint64(i))))
				if err == nil {
					rep.status = resp.StatusCode
					resp.Body.Close()
				}
			case chaos.ServeDisconnect:
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
				req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run", bytes.NewReader(body))
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					resp.Body.Close()
				}
				cancel()
				rep.status = -1 // walked away; nothing to assert on the wire
			default:
				resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("request %d: %v", i, err)
					return
				}
				rep.status = resp.StatusCode
				rep.retryAfter = resp.Header.Get("Retry-After")
				rep.body, _ = io.ReadAll(resp.Body)
				resp.Body.Close()
			}
			reports[i] = rep
		}()
	}

	// Drain mid-storm: once the storm has demonstrably made progress (a
	// fixed sleep would drain before anything completed under -race,
	// where every run is several times slower), checkpoint-cancel with a
	// short grace.
	progress := time.Now().Add(10 * time.Second)
	for srv.health.Snapshot().Completed < 4 && time.Now().Before(progress) {
		time.Sleep(5 * time.Millisecond)
	}
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	srv.Drain(dctx)
	cancel()
	wg.Wait()

	journaled := map[string]bool{}
	entries, err := os.ReadDir(filepath.Join(dir, "pending"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		journaled[strings.TrimSuffix(e.Name(), ".json")] = true
	}

	completedFP := map[string][]byte{}
	rejects := 0
	for i, rep := range reports {
		switch {
		case rep.fault == chaos.ServeMalformed:
			if rep.status != http.StatusBadRequest {
				t.Errorf("request %d (malformed): HTTP %d, want 400", i, rep.status)
			}
		case rep.status == -1: // disconnected client: no wire contract
		case rep.status == http.StatusOK:
			if prev, ok := completedFP[rep.fp]; ok && !bytes.Equal(prev, rep.body) {
				t.Errorf("request %d: two 200s for %s differ", i, rep.fp[:12])
			}
			completedFP[rep.fp] = rep.body
		case rep.status == http.StatusTooManyRequests, rep.status == http.StatusServiceUnavailable:
			rejects++
			if ra, err := strconv.Atoi(rep.retryAfter); err != nil || ra < 1 || ra > 3600 {
				t.Errorf("request %d: HTTP %d with Retry-After %q, want finite [1, 3600]", i, rep.status, rep.retryAfter)
			}
			// Zero lost: a 503 whose work was accepted must be journaled
			// (the body says so); a 429/queue-shed 503 must not be.
			var e errorBody
			if json.Unmarshal(rep.body, &e) == nil && strings.Contains(e.Error, "journaled") && !journaled[rep.fp] && completedFP[rep.fp] == nil {
				t.Errorf("request %d: told client it was journaled but no journal entry or cached result for %s", i, rep.fp[:12])
			}
		default:
			t.Errorf("request %d (fault %v): unexpected HTTP %d: %s", i, rep.fault, rep.status, rep.body)
		}
	}
	if len(completedFP) == 0 {
		t.Error("storm completed nothing; drain came too early to mean anything")
	}
	if rejects == 0 {
		t.Error("50 simultaneous requests against 2+2 capacity produced zero 429/503 rejections")
	}
	t.Logf("storm: %d fingerprints completed, %d rejects, %d journaled", len(completedFP), rejects, len(journaled))

	// Restart on the same data directory: journaled work resumes and
	// completes without re-running anything already cached. (Close the
	// old instance first — a real restart ends the process, releasing
	// its ledger locks.)
	srv.Close()
	srv2 := newTestServer(t, dir, nil)
	resumed := srv2.Resume()
	if resumed != len(journaled) {
		t.Errorf("resumed %d, want %d (one per journal entry)", resumed, len(journaled))
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		entries, err := os.ReadDir(filepath.Join(dir, "pending"))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never drained: %d entries left", len(entries))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv2.met.executed.Load(); got != uint64(resumed) {
		t.Errorf("restart executed %d requests, want exactly the %d resumed (zero double-run)", got, resumed)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	for fp := range journaled {
		resp, data := get(t, ts2, "/v1/result/"+fp)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("journaled %s after resume: HTTP %d: %s", fp[:12], resp.StatusCode, data)
		}
	}

	// Byte-identity across lives: a fingerprint completed by the first
	// server, recomputed from scratch on a cold server, matches exactly.
	cold := newTestServer(t, t.TempDir(), nil)
	ts3 := httptest.NewServer(cold.Handler())
	defer ts3.Close()
	for fp, want := range completedFP {
		resp, data := get(t, ts2, "/v1/result/"+fp)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(data, want) {
			t.Errorf("%s differs across server lives", fp[:12])
		}
		// One cold recompute is enough to pin determinism.
		var rr RunResponse
		if err := json.Unmarshal(want, &rr); err != nil {
			t.Fatal(err)
		}
		seed := rr.Replications[0].Seed
		resp, data = post(t, ts3, "/v1/run", runBody(seed, 5000))
		if resp.StatusCode != http.StatusOK || !bytes.Equal(data, want) {
			t.Errorf("cold recompute of %s not byte-identical (HTTP %d)", fp[:12], resp.StatusCode)
		}
		break
	}
}

// TestSweepDrainResumeWarmStart pins the sweep half of "nothing lost,
// nothing double-run": a drain mid-campaign keeps every settled point
// in the shared ledger, the restarted server re-executes only the
// remainder, and the final response is byte-identical to an
// uninterrupted run.
func TestSweepDrainResumeWarmStart(t *testing.T) {
	campaign := []byte(`{"campaign":{"sweeps":["fig7"],"replications":1,"transfer_kb":2000,"packet_sizes":[256,512,1024,1536],"bad_periods":["4s"]}}`)

	// Reference: the same campaign, uninterrupted.
	ref := newTestServer(t, t.TempDir(), nil)
	tsRef := httptest.NewServer(ref.Handler())
	defer tsRef.Close()
	resp, want := post(t, tsRef, "/v1/sweep", campaign)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference sweep: HTTP %d: %s", resp.StatusCode, want)
	}

	dir := t.TempDir()
	srv := newTestServer(t, dir, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, data := post(t, ts, "/v1/sweep", campaign)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("drained sweep: HTTP %d: %s", resp.StatusCode, data)
		}
	}()
	time.Sleep(30 * time.Millisecond) // let a point or two settle
	dctx, cancel := context.WithCancel(context.Background())
	cancel() // no grace: checkpoint-cancel immediately
	srv.Drain(dctx)
	<-done

	req, c, err := ParseSweepRequest(campaign)
	if err != nil {
		t.Fatal(err)
	}
	_ = req
	fp := SweepFingerprint(c)
	if !srv.jour.has(fp) {
		t.Fatal("drained sweep kept no journal entry")
	}
	srv.Close() // release the point-ledger lock, as a real exit would

	srv2 := newTestServer(t, dir, nil)
	if n := srv2.Resume(); n != 1 {
		t.Fatalf("resumed %d journaled requests, want 1", n)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	deadline := time.Now().Add(30 * time.Second)
	var got []byte
	for {
		resp, data := get(t, ts2, "/v1/result/"+fp)
		if resp.StatusCode == http.StatusOK {
			got = data
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed sweep never finished: HTTP %d: %s", resp.StatusCode, data)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed sweep differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
}

// TestAdviseRefinesFromSweepPoints pins the satellite: /v1/advise
// answers from the same point ledger as /v1/sweep, so a sweep that
// already measured the sizes makes the advise query free, and its
// table equals the sweep's numbers.
func TestAdviseRefinesFromSweepPoints(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), func(cfg *Config) {
		cfg.Advise = experiment.Options{
			Replications: 1,
			Transfer:     100 * units.KB,
			PacketSizes:  []units.ByteSize{256, 1024},
		}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A sweep over the same option class settles both calibration points.
	campaign := []byte(`{"campaign":{"sweeps":["fig7"],"replications":1,"transfer_kb":100,"packet_sizes":[256,1024],"bad_periods":["4s"]}}`)
	if resp, data := post(t, ts, "/v1/sweep", campaign); resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: HTTP %d: %s", resp.StatusCode, data)
	}
	executedBefore := srv.met.executed.Load()

	resp, data := get(t, ts, "/v1/advise?bad=4s")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advise: HTTP %d: %s", resp.StatusCode, data)
	}
	var adv AdviseResponse
	if err := json.Unmarshal(data, &adv); err != nil {
		t.Fatal(err)
	}
	if len(adv.Table) != 2 {
		t.Fatalf("advise table has %d entries, want 2: %s", len(adv.Table), data)
	}
	if adv.RecommendedPacketSizeBytes != 256 && adv.RecommendedPacketSizeBytes != 1024 {
		t.Errorf("recommended size %d not in the calibration set", adv.RecommendedPacketSizeBytes)
	}
	best := adv.Table[0]
	for _, e := range adv.Table[1:] {
		if e.ThroughputKbps > best.ThroughputKbps {
			best = e
		}
	}
	if adv.RecommendedPacketSizeBytes != best.PacketSizeBytes {
		t.Errorf("recommended %d but the table maximum is %d", adv.RecommendedPacketSizeBytes, best.PacketSizeBytes)
	}
	// Warm start: the advise request ran zero fresh simulations; both
	// points came from the sweep's ledger. (The request itself executes.)
	if got := srv.met.executed.Load(); got != executedBefore+1 {
		t.Errorf("advise after sweep executed %d new requests, want 1 (warm points)", got-executedBefore)
	}
	if snap := srv.health.Snapshot(); snap.Completed != 2 {
		t.Errorf("engine ran %d replications total, want 2 (advise must not re-run sweep points)", snap.Completed)
	}

	// ?ber= is an accepted alias and hits the same cache entry.
	resp, data2 := get(t, ts, "/v1/advise?ber=4s")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Wtcpd-Cache") != "hit" || !bytes.Equal(data, data2) {
		t.Errorf("?ber alias: HTTP %d cache=%q identical=%v", resp.StatusCode, resp.Header.Get("X-Wtcpd-Cache"), bytes.Equal(data, data2))
	}

	if resp, _ := get(t, ts, "/v1/advise"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("advise without ?bad: HTTP %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/advise?bad=banana"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("advise with junk duration: HTTP %d, want 400", resp.StatusCode)
	}
}
