package sim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// budgetErr runs the simulator to exhaustion and requires the run to
// halt with a *BudgetError of the given kind.
func budgetErr(t *testing.T, s *Simulator, kind string) *BudgetError {
	t.Helper()
	err := s.RunAll()
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("RunAll returned %v, want *BudgetError", err)
	}
	if be.Kind != kind {
		t.Fatalf("budget kind = %q, want %q (err: %v)", be.Kind, kind, be)
	}
	if got := s.Failure(); got != err {
		t.Fatalf("Failure() = %v, want the returned error %v", got, err)
	}
	return be
}

// TestEventBudgetCatchesSameInstantLivelock is the reason the event
// budget exists: an event that reschedules itself at delay zero never
// advances the virtual clock, so the virtual-time watchdog (which is
// itself a scheduled event) can never fire. The fired-event counter
// still advances, and the budget halts the run.
func TestEventBudgetCatchesSameInstantLivelock(t *testing.T) {
	s := New()
	// Arm a watchdog exactly as core does; it must stay silent because
	// its tick can never be reached while the clock is frozen.
	s.StartWatchdog(time.Millisecond, func() int64 { return 0 }, nil)
	var spins int
	var spin func()
	spin = func() {
		spins++
		s.Schedule(0, spin)
	}
	s.Schedule(0, spin)
	s.SetBudget(Budget{MaxEvents: 5000})

	be := budgetErr(t, s, BudgetEvents)
	if be.Limit != 5000 {
		t.Fatalf("Limit = %d, want 5000", be.Limit)
	}
	if be.Value < 5000 {
		t.Fatalf("Value = %d, want >= 5000", be.Value)
	}
	if be.At != 0 {
		t.Fatalf("At = %v, want 0 (clock must not have advanced)", be.At)
	}
	if s.Now() != 0 {
		t.Fatalf("Now = %v, want 0", s.Now())
	}
	var stall *StallError
	if errors.As(s.Failure(), &stall) {
		t.Fatalf("watchdog fired (%v); livelock must be caught by the event budget, not the watchdog", stall)
	}
	// The budget stops the run before firing event Limit+1, and every
	// fired event was a spin (the watchdog tick sits at 1ms, unreachable).
	if spins != 5000 {
		t.Fatalf("spins = %d, want exactly 5000", spins)
	}
}

func TestVirtualTimeBudget(t *testing.T) {
	s := New()
	var fired []time.Duration
	for _, at := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second} {
		at := at
		s.ScheduleAt(at, func() { fired = append(fired, at) })
	}
	s.SetBudget(Budget{MaxVirtual: 3 * time.Second})

	be := budgetErr(t, s, BudgetVirtual)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want the two events within the 3s budget", fired)
	}
	if time.Duration(be.Value) != 5*time.Second {
		t.Fatalf("Value = %v, want the offending event time 5s", time.Duration(be.Value))
	}
	if time.Duration(be.Limit) != 3*time.Second {
		t.Fatalf("Limit = %v, want 3s", time.Duration(be.Limit))
	}
	if s.Now() > 3*time.Second {
		t.Fatalf("Now = %v advanced past the virtual budget", s.Now())
	}
}

func TestWallClockBudget(t *testing.T) {
	s := New()
	var tick func()
	tick = func() { s.Schedule(time.Microsecond, tick) }
	s.Schedule(0, tick)
	// 1ns wall budget: the first strided poll (after wallCheckStride
	// events) is already past it.
	s.SetBudget(Budget{WallClock: time.Nanosecond})

	be := budgetErr(t, s, BudgetWall)
	if be.Value <= be.Limit {
		t.Fatalf("Value %d should exceed Limit %d", be.Value, be.Limit)
	}
}

func TestHeapBudget(t *testing.T) {
	s := New()
	var tick func()
	tick = func() { s.Schedule(time.Microsecond, tick) }
	s.Schedule(0, tick)
	// A 1-byte heap ceiling trips on the very first probe, which runs on
	// the first event (probes start at the current fired count).
	s.SetBudget(Budget{MaxHeapBytes: 1})

	be := budgetErr(t, s, BudgetHeap)
	if be.Value <= 1 {
		t.Fatalf("Value = %d, want the observed heap size", be.Value)
	}
}

func TestStepSurfacesBudgetError(t *testing.T) {
	s := New()
	var spin func()
	spin = func() { s.Schedule(0, spin) }
	s.Schedule(0, spin)
	s.SetBudget(Budget{MaxEvents: 3})

	var last error
	steps := 0
	for {
		ran, err := s.Step()
		if err != nil {
			last = err
			break
		}
		if !ran {
			t.Fatal("queue drained; expected the budget to trip first")
		}
		steps++
		if steps > 10 {
			t.Fatal("budget never tripped")
		}
	}
	var be *BudgetError
	if !errors.As(last, &be) || be.Kind != BudgetEvents {
		t.Fatalf("Step returned %v, want events *BudgetError", last)
	}
	if steps != 3 {
		t.Fatalf("executed %d events, want exactly 3", steps)
	}
	// Subsequent Steps keep returning the recorded failure.
	if _, err := s.Step(); !errors.Is(err, last) && err != last {
		t.Fatalf("second Step returned %v, want the recorded failure", err)
	}
}

func TestBudgetDisabledAndReset(t *testing.T) {
	s := New()
	if s.Budget() != (Budget{}) {
		t.Fatalf("fresh simulator reports budget %+v", s.Budget())
	}
	s.SetBudget(Budget{})
	if s.budget != nil {
		t.Fatal("zero budget must leave the nil fast path")
	}
	// Negative fields are "explicitly unlimited": still no enforcement.
	s.SetBudget(Budget{MaxEvents: -1, MaxVirtual: -1, WallClock: -1, MaxHeapBytes: -1})
	if s.budget != nil {
		t.Fatal("all-negative budget must leave the nil fast path")
	}

	s.SetBudget(Budget{MaxEvents: 10})
	if s.Budget().MaxEvents != 10 {
		t.Fatalf("Budget() = %+v, want MaxEvents 10", s.Budget())
	}
	s.Reset()
	if s.budget != nil {
		t.Fatal("Reset must clear the budget (pooled simulators must not leak ceilings)")
	}
	// And the reset simulator runs unbudgeted.
	n := 0
	var tick func()
	tick = func() {
		if n++; n < 100 {
			s.Schedule(time.Millisecond, tick)
		}
	}
	s.Schedule(0, tick)
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll after Reset: %v", err)
	}
	if n != 100 {
		t.Fatalf("fired %d events, want 100", n)
	}
}

func TestBudgetOrLayersDefaults(t *testing.T) {
	def := Budget{MaxEvents: 1 << 31, WallClock: 10 * time.Minute}
	got := Budget{}.Or(def)
	if got != def {
		t.Fatalf("zero.Or(def) = %+v, want %+v", got, def)
	}
	// Set fields win; negative (explicitly unlimited) fields survive.
	got = Budget{MaxEvents: 7, WallClock: -1}.Or(def)
	if got.MaxEvents != 7 || got.WallClock != -1 {
		t.Fatalf("Or = %+v, want MaxEvents 7 and WallClock -1", got)
	}
	if got.MaxVirtual != 0 || got.MaxHeapBytes != 0 {
		t.Fatalf("Or = %+v, unset fields with unset defaults must stay zero", got)
	}
	if (Budget{MaxEvents: -1, MaxVirtual: -1, WallClock: -1, MaxHeapBytes: -1}).Enabled() {
		t.Fatal("all-negative budget must not be Enabled")
	}
	if !(Budget{MaxHeapBytes: 1}).Enabled() {
		t.Fatal("heap-only budget must be Enabled")
	}
}

func TestBudgetErrorText(t *testing.T) {
	e := &BudgetError{Kind: BudgetEvents, Limit: 100, Value: 100, At: time.Second}
	for _, want := range []string{"events", "100", "1s"} {
		if !strings.Contains(e.Error(), want) {
			t.Fatalf("error %q missing %q", e.Error(), want)
		}
	}
	w := &BudgetError{Kind: BudgetWall, Limit: int64(time.Minute), Value: int64(2 * time.Minute), At: 0}
	for _, want := range []string{"wall-clock", "1m", "2m"} {
		if !strings.Contains(w.Error(), want) {
			t.Fatalf("error %q missing %q", w.Error(), want)
		}
	}
}

// TestBudgetFirstFailureWins: an earlier recorded failure (an invariant
// violation) is not overwritten by a later budget exhaustion.
func TestBudgetFirstFailureWins(t *testing.T) {
	s := New()
	s.SetBudget(Budget{MaxEvents: 5})
	boom := errors.New("boom")
	s.Schedule(0, func() { s.Fail("inv", boom) })
	var spin func()
	spin = func() { s.Schedule(0, spin) }
	s.Schedule(0, spin)

	err := s.RunAll()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("RunAll returned %v, want ErrStopped from the failing check's Stop", err)
	}
	var ce *CheckError
	if !errors.As(s.Failure(), &ce) {
		t.Fatalf("Failure() = %v, want the first-recorded *CheckError (budget must not overwrite it)", s.Failure())
	}
}
