package multiconn

// This file preserves the original object-per-flow engine as a test-only
// reference implementation: Run now delegates to the flat internal/cell
// engine, and the differential test pins the two bit-identical.
// Behaviour changes must land in both or the pin fails.

import (
	"fmt"
	"time"

	"wtcp/internal/errmodel"
	"wtcp/internal/link"
	"wtcp/internal/packet"
	"wtcp/internal/queue"
	"wtcp/internal/sim"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

// connection bundles one TCP transfer's endpoints and channel.
type connection struct {
	index    int
	channel  *errmodel.Markov
	queue    *queue.DropTail
	sender   *tcp.Sender
	sink     *tcp.Sink
	wiredFwd *link.Link
	wiredRev *link.Link
}

// engine is the shared-radio scheduler: per-connection queues (or one
// global FIFO order emulated through them), a stop-and-wait link ARQ, and
// the policy-specific pick of the next unit.
type engine struct {
	sim  *sim.Simulator
	cfg  Config
	ids  *packet.IDGen
	rng  *sim.RNG // corruption + backoff draws
	pred *sim.RNG // predictor error draws

	conns []*connection

	// fifoOrder holds connection indices in packet-arrival order for the
	// FIFO policy (the queues still hold the packets; this preserves the
	// global order).
	fifoOrder []int

	// Radio state: one unit in flight at a time (stop-and-wait).
	busy     bool
	attempts uint64
	discards uint64
	// skippedBad counts CSDP skip decisions.
	skippedBad uint64
	// ebsnsSent counts per-connection bad-state notifications.
	ebsnsSent uint64
	// tries tracks the current head packet's transmission count per
	// connection (the head is retried until acked or discarded).
	tries map[int]int
	// pollTimer re-kicks the scheduler when CSDP finds all queues
	// blocked by bad channels.
	pollTimer *sim.Timer
	// rr is the round-robin pointer.
	rr int
}

// csdpPollInterval is how often a fully-blocked CSDP scheduler re-checks
// the channels.
const csdpPollInterval = 10 * time.Millisecond

// enqueueFromWire admits a data packet arriving over a wired link.
func (e *engine) enqueueFromWire(p *packet.Packet) {
	if p.Kind != packet.Data {
		return
	}
	c := e.conns[p.Conn]
	if !c.queue.Push(p) {
		return // tail drop; TCP recovers end to end
	}
	if e.cfg.Policy == FIFO {
		e.fifoOrder = append(e.fifoOrder, p.Conn)
	}
	e.kick()
}

// allDone reports whether every connection finished.
func (e *engine) allDone() bool {
	for _, c := range e.conns {
		if !c.sender.Done() {
			return false
		}
	}
	return true
}

// kick starts a transmission if the radio is idle and a unit is eligible.
func (e *engine) kick() {
	if e.busy {
		return
	}
	conn, ok := e.pickNext()
	if !ok {
		return
	}
	p := e.conns[conn].queue.Peek()
	if p == nil {
		return
	}
	e.transmit(conn, p)
}

// pickNext selects the next connection to serve, per policy. It reports
// false when nothing is eligible right now.
func (e *engine) pickNext() (int, bool) {
	switch e.cfg.Policy {
	case FIFO:
		for len(e.fifoOrder) > 0 {
			conn := e.fifoOrder[0]
			if e.conns[conn].queue.Len() > 0 {
				return conn, true
			}
			// The entry's packet was discarded; drop the stale order slot.
			e.fifoOrder = e.fifoOrder[1:]
		}
		return 0, false
	case RoundRobin:
		return e.nextNonEmpty(func(int) bool { return true })
	default: // CSDP
		conn, ok := e.nextNonEmpty(func(c int) bool { return e.predictGood(c) })
		if ok {
			return conn, true
		}
		// Everything pending is predicted bad: poll again shortly rather
		// than burn the radio on doomed transmissions.
		if e.anyQueued() && !e.pollTimer.Pending() {
			e.pollTimer.Set(csdpPollInterval)
		}
		return 0, false
	}
}

// nextNonEmpty scans round-robin from the pointer for a non-empty queue
// accepted by eligible.
func (e *engine) nextNonEmpty(eligible func(conn int) bool) (int, bool) {
	n := len(e.conns)
	for i := 1; i <= n; i++ {
		conn := (e.rr + i) % n
		if e.conns[conn].queue.Len() == 0 {
			continue
		}
		if !eligible(conn) {
			e.skippedBad++
			continue
		}
		e.rr = conn
		return conn, true
	}
	return 0, false
}

// anyQueued reports whether any connection has pending packets.
func (e *engine) anyQueued() bool {
	for _, c := range e.conns {
		if c.queue.Len() > 0 {
			return true
		}
	}
	return false
}

// predictGood consults the channel predictor for a connection.
func (e *engine) predictGood(conn int) bool {
	truth := e.conns[conn].channel.StateAt(e.sim.Now()) == errmodel.Good
	if e.pred.Bernoulli(e.cfg.PredictorAccuracy) {
		return truth
	}
	return !truth
}

// transmit puts the head packet of conn on the radio (stop-and-wait: the
// radio is held until the link-ack deadline).
func (e *engine) transmit(conn int, p *packet.Packet) {
	e.busy = true
	e.attempts++
	e.tries[conn]++

	start := e.sim.Now()
	tx := units.TransmissionTime(p.Size(), e.cfg.WirelessRate)
	ackTx := units.TransmissionTime(packet.ControlSize, e.cfg.WirelessRate)
	cycle := tx + 2*e.cfg.WirelessDelay + ackTx

	e.sim.Schedule(cycle, func() {
		e.busy = false
		ch := e.conns[conn].channel
		dataBits := int64(p.Size().Bits())
		corrupted := e.rng.PoissonAtLeastOne(ch.ExpectedBitErrors(start, start+tx, dataBits))
		ackLost := false
		if !corrupted {
			// The link ack rides the same fading channel.
			ackStart := start + tx + e.cfg.WirelessDelay
			ackLost = e.rng.PoissonAtLeastOne(ch.ExpectedBitErrors(ackStart, ackStart+ackTx, int64(packet.ControlSize.Bits())))
			// Data arrived: deliver regardless of the ack's fate (a lost
			// ack only causes a duplicate later).
			e.deliver(conn, p)
		}
		if corrupted || ackLost {
			e.onAttemptFailed(conn)
		} else {
			e.onAttemptSucceeded(conn)
		}
		e.kick()
	})
}

// onAttemptSucceeded pops the acknowledged head and resets its try count.
func (e *engine) onAttemptSucceeded(conn int) {
	c := e.conns[conn]
	c.queue.Pop()
	delete(e.tries, conn)
	if e.cfg.Policy == FIFO && len(e.fifoOrder) > 0 {
		e.fifoOrder = e.fifoOrder[1:]
	}
}

// onAttemptFailed retries or discards the head packet. Under FIFO the
// head keeps the radio's attention (head-of-line blocking — the
// phenomenon this study quantifies); under RR/CSDP the failed head simply
// waits for its connection's next turn.
func (e *engine) onAttemptFailed(conn int) {
	if e.cfg.EBSN {
		// The paper's mechanism, generalized to many connections: the
		// base station notifies every source whose data it is holding up
		// — the one whose transmission failed and any bystanders queued
		// behind it (under FIFO their delay is just as real; their
		// timers must be pushed back too).
		for i, c := range e.conns {
			if i != conn && c.queue.Len() == 0 {
				continue
			}
			e.ebsnsSent++
			sender := c.sender
			connID := i
			e.sim.Schedule(e.cfg.WiredDelay, func() {
				sender.Receive(&packet.Packet{Kind: packet.EBSN, Conn: connID})
			})
		}
	}
	if e.tries[conn] <= e.cfg.RTmax {
		return // head stays queued; the next pick may retry it
	}
	// Discard after RTmax retransmissions.
	e.discards++
	c := e.conns[conn]
	c.queue.Pop()
	delete(e.tries, conn)
	if e.cfg.Policy == FIFO && len(e.fifoOrder) > 0 {
		e.fifoOrder = e.fifoOrder[1:]
	}
}

// deliver hands a data packet to the mobile host's TCP sink; the TCP ack
// travels back over the (fading) uplink and the wired reverse hop.
// Radio contention for TCP acks is not modeled (they are small; the
// original study treats them as cheap).
func (e *engine) deliver(conn int, p *packet.Packet) {
	c := e.conns[conn]
	e.sim.Schedule(e.cfg.WirelessDelay, func() { c.sink.Receive(p) })
}

// ackFromMobile carries a TCP ack across the uplink (with fading) toward
// the fixed host.
func (e *engine) ackFromMobile(c *connection, ack *packet.Packet) {
	start := e.sim.Now()
	ackTx := units.TransmissionTime(ack.Size(), e.cfg.WirelessRate)
	lost := e.rng.PoissonAtLeastOne(
		c.channel.ExpectedBitErrors(start, start+ackTx, int64(ack.Size().Bits())))
	if lost {
		return
	}
	e.sim.Schedule(ackTx+e.cfg.WirelessDelay, func() {
		c.wiredRev.Send(ack)
	})
}

// refRun executes cfg on the reference engine above — the original
// object-per-flow implementation Run used before it delegated to
// internal/cell. The differential test pins Run bit-identical to it.
func refRun(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 4 * time.Hour
	}
	if cfg.RTmax <= 0 {
		cfg.RTmax = 64
	}
	if cfg.PerConnQueue <= 0 {
		cfg.PerConnQueue = 20
	}

	s := sim.New()
	ids := &packet.IDGen{}
	rng := sim.NewRNG(cfg.Seed)

	e := &engine{
		sim:   s,
		cfg:   cfg,
		ids:   ids,
		rng:   rng.Split(),
		pred:  rng.Split(),
		tries: make(map[int]int),
	}
	e.pollTimer = sim.NewTimer(s, e.kick)

	mss := cfg.PacketSize - packet.HeaderSize
	for i := 0; i < cfg.Connections; i++ {
		ch, err := errmodel.NewMarkov(cfg.Channel, rng.Split())
		if err != nil {
			return nil, err
		}
		conn := &connection{index: i, channel: ch, queue: queue.New(cfg.PerConnQueue)}
		e.conns = append(e.conns, conn)

		conn.wiredFwd, err = link.New(s, link.Config{
			Name: fmt.Sprintf("wired-fwd-%d", i), Rate: cfg.WiredRate, Delay: cfg.WiredDelay, QueueLimit: 50,
		}, nil, e.enqueueFromWire)
		if err != nil {
			return nil, err
		}
		conn.wiredRev, err = link.New(s, link.Config{
			Name: fmt.Sprintf("wired-rev-%d", i), Rate: cfg.WiredRate, Delay: cfg.WiredDelay, QueueLimit: 50,
		}, nil, func(p *packet.Packet) { conn.sender.Receive(p) })
		if err != nil {
			return nil, err
		}

		conn.sink, err = tcp.NewSink(s, cfg.Window, ids, func(p *packet.Packet) {
			p.Conn = conn.index
			e.ackFromMobile(conn, p)
		})
		if err != nil {
			return nil, err
		}
		conn.sender, err = tcp.NewSender(s, tcp.Config{
			MSS:    mss,
			Window: cfg.Window,
			Total:  cfg.TransferSize,
		}, ids, func(p *packet.Packet) {
			p.Conn = conn.index
			conn.wiredFwd.Send(p)
		})
		if err != nil {
			return nil, err
		}
	}

	for _, c := range e.conns {
		c.sender.Start()
	}
	for !e.allDone() && s.Now() < cfg.Horizon {
		if ok, err := s.Step(); !ok || err != nil {
			break
		}
	}

	res := &Result{
		Config:        cfg,
		Completed:     e.allDone(),
		RadioAttempts: e.attempts,
		RadioDiscards: e.discards,
		SkippedBad:    e.skippedBad,
		EBSNsSent:     e.ebsnsSent,
	}
	var sum, sumSq float64
	for _, c := range e.conns {
		elapsed := c.sender.FinishedAt()
		if !c.sender.Done() {
			elapsed = s.Now()
		}
		tput := units.ThroughputKbps(cfg.TransferSize, elapsed)
		st := c.sender.Stats()
		res.PerConn = append(res.PerConn, ConnResult{
			Completed:      c.sender.Done(),
			Elapsed:        elapsed,
			ThroughputKbps: tput,
			Timeouts:       st.Timeouts,
			RetransKB:      float64(st.RetransBytes) / float64(units.KB),
		})
		res.TotalTimeouts += st.Timeouts
		res.AggregateKbps += tput
		sum += tput
		sumSq += tput * tput
	}
	if n := float64(len(e.conns)); sumSq > 0 {
		res.Fairness = sum * sum / (n * sumSq)
	}
	return res, nil
}
