package experiment

import (
	"fmt"
	"strings"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
	"wtcp/internal/stats"
	"wtcp/internal/units"
)

// SeverityPoint is one channel-severity cell: the paper conjectures (§1,
// §6) that its schemes "yield even better performance if wireless links
// are more lossy" — this study checks that EBSN's relative improvement
// grows as the channel degrades.
type SeverityPoint struct {
	// MeanBad and BadBER describe the severity step.
	MeanBad time.Duration
	BadBER  float64
	// BasicKbps and EBSNKbps are the per-scheme throughput samples.
	BasicKbps *stats.Sample
	EBSNKbps  *stats.Sample
	// ImprovementPct is EBSN's mean relative gain.
	ImprovementPct float64
}

// SeverityOptions tunes the study.
type SeverityOptions struct {
	Replications int
	Transfer     units.ByteSize
	PacketSize   units.ByteSize
	// Severities lists the (mean bad period, bad-state BER) steps, mild
	// to harsh. Nil uses a default ladder.
	Severities []struct {
		MeanBad time.Duration
		BadBER  float64
	}
	BaseSeed int64
}

func (o SeverityOptions) withDefaults() SeverityOptions {
	if o.Replications <= 0 {
		o.Replications = 5
	}
	if o.PacketSize <= 0 {
		o.PacketSize = 1536
	}
	if len(o.Severities) == 0 {
		o.Severities = []struct {
			MeanBad time.Duration
			BadBER  float64
		}{
			{1 * time.Second, 1e-2},
			{2 * time.Second, 1e-2},
			{4 * time.Second, 1e-2},
			{6 * time.Second, 1e-2},
		}
	}
	return o
}

// SeverityStudy measures basic TCP and EBSN across a severity ladder.
func SeverityStudy(opt SeverityOptions) ([]SeverityPoint, error) {
	opt = opt.withDefaults()
	var out []SeverityPoint
	for _, sev := range opt.Severities {
		var basic, ebsn stats.Sample
		for seed := int64(1); seed <= int64(opt.Replications); seed++ {
			for _, scheme := range []bs.Scheme{bs.Basic, bs.EBSN} {
				cfg := core.WAN(scheme, opt.PacketSize, sev.MeanBad)
				cfg.Channel.BadBER = sev.BadBER
				cfg.Seed = opt.BaseSeed + seed
				if opt.Transfer > 0 {
					cfg.TransferSize = opt.Transfer
				}
				r, err := core.Run(cfg)
				if err != nil {
					return nil, err
				}
				if scheme == bs.Basic {
					basic.Add(r.Summary.ThroughputKbps)
				} else {
					ebsn.Add(r.Summary.ThroughputKbps)
				}
			}
		}
		imp := 0.0
		if basic.Mean() > 0 {
			imp = 100 * (ebsn.Mean() - basic.Mean()) / basic.Mean()
		}
		out = append(out, SeverityPoint{
			MeanBad:        sev.MeanBad,
			BadBER:         sev.BadBER,
			BasicKbps:      &basic,
			EBSNKbps:       &ebsn,
			ImprovementPct: imp,
		})
	}
	return out, nil
}

// RenderSeverityTable formats the study.
func RenderSeverityTable(title string, points []SeverityPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s  %-10s  %-12s  %-12s  %-12s\n",
		"bad", "bad BER", "basic(Kbps)", "ebsn(Kbps)", "improvement")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s  %-10.0e  %-12.2f  %-12.2f  %+.0f%%\n",
			p.MeanBad, p.BadBER, p.BasicKbps.Mean(), p.EBSNKbps.Mean(), p.ImprovementPct)
	}
	return b.String()
}
