package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleOf(vs ...float64) *Sample {
	s := &Sample{}
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

func TestEmptySampleSafe(t *testing.T) {
	s := &Sample{}
	if s.Mean() != 0 || s.StdDev() != 0 || s.RelStdDev() != 0 ||
		s.CI95() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 || s.N() != 0 {
		t.Error("empty sample should return zeros everywhere")
	}
}

func TestMeanAndStdDev(t *testing.T) {
	s := sampleOf(2, 4, 4, 4, 5, 5, 7, 9)
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample stddev with n-1: variance = 32/7.
	want := math.Sqrt(32.0 / 7)
	if got := s.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if got := s.RelStdDev(); math.Abs(got-want/5) > 1e-12 {
		t.Errorf("RelStdDev = %v", got)
	}
}

func TestSingleValueSample(t *testing.T) {
	s := sampleOf(3.5)
	if s.Mean() != 3.5 || s.StdDev() != 0 || s.CI95() != 0 {
		t.Error("single-value sample stats wrong")
	}
}

func TestMinMaxMedian(t *testing.T) {
	s := sampleOf(9, 1, 5, 3, 7)
	if s.Min() != 1 || s.Max() != 9 || s.Median() != 5 {
		t.Errorf("min/max/median = %v/%v/%v", s.Min(), s.Max(), s.Median())
	}
	even := sampleOf(1, 2, 3, 4)
	if even.Median() != 2.5 {
		t.Errorf("even median = %v, want 2.5", even.Median())
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small, big := &Sample{}, &Sample{}
	for i := 0; i < 4; i++ {
		small.Add(float64(i % 2))
	}
	for i := 0; i < 400; i++ {
		big.Add(float64(i % 2))
	}
	if big.CI95() >= small.CI95() {
		t.Errorf("CI95 did not shrink: %v -> %v", small.CI95(), big.CI95())
	}
}

func TestValuesReturnsCopy(t *testing.T) {
	s := sampleOf(1, 2, 3)
	vs := s.Values()
	vs[0] = 99
	if s.Values()[0] != 1 {
		t.Error("Values exposed internal storage")
	}
}

func TestRunReplicationsDeterministicOrder(t *testing.T) {
	s := RunReplications(8, func(seed int64) float64 { return float64(seed * seed) })
	vs := s.Values()
	if len(vs) != 8 {
		t.Fatalf("N = %d", len(vs))
	}
	for i, v := range vs {
		want := float64((i + 1) * (i + 1))
		if v != want {
			t.Errorf("value[%d] = %v, want %v (seed order)", i, v, want)
		}
	}
}

func TestRunReplicationsZeroN(t *testing.T) {
	if RunReplications(0, func(int64) float64 { return 1 }).N() != 0 {
		t.Error("zero replications should be empty")
	}
}

// Property: mean is within [min, max] and stddev is non-negative.
func TestPropertyMomentBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		s := &Sample{}
		for _, v := range raw {
			s.Add(float64(v))
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9 && s.StdDev() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
