package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// chain schedules a self-perpetuating event so the queue never drains.
func chain(s *Simulator) {
	var tick func()
	tick = func() { s.Schedule(time.Millisecond, tick) }
	s.Schedule(time.Millisecond, tick)
}

func TestBindCancelHaltsRun(t *testing.T) {
	s := New()
	ctx, cancel := context.WithCancel(context.Background())
	s.Bind(ctx)
	chain(s)
	fired := 0
	s.Schedule(0, func() { fired++ })
	cancel()
	err := s.Run(time.Hour)
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("Run = %v, want *CancelError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not unwrap to context.Canceled", err)
	}
	if s.Failure() == nil {
		t.Error("cancellation not recorded as the simulator failure")
	}
	// Cancellation was observed before the first event fired (the poll
	// stride starts at fired=0), so the run stopped at a clean boundary.
	if fired != 0 {
		t.Errorf("events fired after pre-cancelled context: %d", fired)
	}
}

func TestBindCancelMidRunStopsWithinStride(t *testing.T) {
	s := New()
	ctx, cancel := context.WithCancel(context.Background())
	s.Bind(ctx)
	chain(s)
	// Cancel from inside the simulation once some events have fired.
	s.Schedule(10*time.Millisecond, cancel)
	err := s.Run(time.Hour)
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("Run = %v, want *CancelError", err)
	}
	if s.Fired() > 16+ctxPollStride {
		t.Errorf("run fired %d events after cancellation, want within one poll stride", s.Fired())
	}
	// The queue still holds the pending chain event: the run stopped
	// between events, not by tearing state down.
	if s.Pending() == 0 {
		t.Error("pending events discarded by cancellation")
	}
}

func TestBindCancelStopsStepLoop(t *testing.T) {
	s := New()
	ctx, cancel := context.WithCancel(context.Background())
	s.Bind(ctx)
	chain(s)
	cancel()
	ok, err := s.Step()
	if ok {
		t.Error("Step executed an event after cancellation")
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("Step error = %v, want *CancelError", err)
	}
	if !errors.As(s.Failure(), &ce) {
		t.Fatalf("Failure = %v, want *CancelError", s.Failure())
	}
}

func TestBindBackgroundIsFree(t *testing.T) {
	s := New()
	s.Bind(context.Background())
	if s.ctx != nil {
		t.Error("background context should detach the poll entirely")
	}
	n := 0
	s.Schedule(time.Second, func() { n++ })
	if err := s.RunAll(); err != nil || n != 1 {
		t.Fatalf("RunAll = %v, fired %d", err, n)
	}
}

func TestBindDeadlineUnwraps(t *testing.T) {
	s := New()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	s.Bind(ctx)
	chain(s)
	err := s.Run(time.Hour)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want DeadlineExceeded", err)
	}
}
