package ip

import (
	"testing"

	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// FuzzReassembler feeds the reassembler adversarial fragment streams —
// random order, duplication, truncation, interleaved groups — and checks
// it never delivers a malformed packet and never delivers one group
// twice. Runs as a seed-corpus test under plain `go test`; use
// `go test -fuzz=FuzzReassembler ./internal/ip` to explore.
func FuzzReassembler(f *testing.F) {
	f.Add(uint16(536), uint8(128), []byte{0, 1, 2, 3, 4})
	f.Add(uint16(1496), uint8(100), []byte{4, 3, 2, 1, 0, 0, 1, 2})
	f.Add(uint16(88), uint8(200), []byte{0, 0, 0})
	f.Add(uint16(2000), uint8(16), []byte{7, 1, 3, 3, 5, 0, 2, 6, 4, 1})

	f.Fuzz(func(t *testing.T, payloadRaw uint16, mtuRaw uint8, order []byte) {
		payload := units.ByteSize(payloadRaw%4096) + 1
		mtu := units.ByteSize(mtuRaw)%512 + 16
		s := sim.New()
		ids := &packet.IDGen{}
		fr, err := NewFragmenter(mtu, ids)
		if err != nil {
			t.Fatal(err)
		}
		var delivered []*packet.Packet
		r, err := NewReassembler(s, 0, func(p *packet.Packet) {
			delivered = append(delivered, p)
		})
		if err != nil {
			t.Fatal(err)
		}
		orig := &packet.Packet{ID: 1, Kind: packet.Data, Seq: 4096, Payload: payload}
		frags := fr.Fragment(orig)
		// Deliver fragments in the fuzzed order (with repeats); indexes
		// out of range wrap.
		seen := map[int]bool{}
		for _, b := range order {
			idx := int(b) % len(frags)
			seen[idx] = true
			r.Receive(frags[idx])
		}
		complete := len(seen) == len(frags)
		switch {
		case complete && len(delivered) != 1:
			t.Fatalf("all %d fragments delivered (some repeatedly) but %d packets emerged",
				len(frags), len(delivered))
		case !complete && len(delivered) != 0:
			t.Fatalf("incomplete group delivered a packet")
		}
		if len(delivered) == 1 {
			p := delivered[0]
			if p.ID != orig.ID || p.Seq != orig.Seq || p.Payload != orig.Payload {
				t.Fatalf("malformed reassembly: %+v from %+v", p, orig)
			}
		}
		// Feeding every fragment again must not re-deliver.
		for _, fg := range frags {
			r.Receive(fg)
		}
		if complete && len(delivered) != 1 {
			t.Fatalf("stale fragments re-delivered the packet")
		}
	})
}
