package multiconn

import (
	"testing"
	"time"

	"wtcp/internal/units"
)

func TestConfigValidate(t *testing.T) {
	base := LANDefaults(4, RoundRobin, time.Second)
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero connections", func(c *Config) { c.Connections = 0 }},
		{"bad policy", func(c *Config) { c.Policy = 0 }},
		{"packet below header", func(c *Config) { c.PacketSize = 40 }},
		{"zero transfer", func(c *Config) { c.TransferSize = 0 }},
		{"window below segment", func(c *Config) { c.Window = 100 }},
		{"zero wired rate", func(c *Config) { c.WiredRate = 0 }},
		{"accuracy above one", func(c *Config) { c.PredictorAccuracy = 1.5 }},
		{"bad channel", func(c *Config) { c.Channel.MeanGood = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
			if _, err := Run(cfg); err == nil {
				t.Error("Run accepted invalid config")
			}
		})
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || RoundRobin.String() != "roundrobin" || CSDP.String() != "csdp" {
		t.Error("policy names")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should render")
	}
}

func TestSingleConnectionPoliciesAgree(t *testing.T) {
	// With one connection there is nothing to schedule around: FIFO and
	// round-robin must produce identical results for the same seed.
	fifo := LANDefaults(1, FIFO, time.Second)
	fifo.TransferSize = 256 * units.KB
	rf, err := Run(fifo)
	if err != nil {
		t.Fatal(err)
	}
	rr := fifo
	rr.Policy = RoundRobin
	rrr, err := Run(rr)
	if err != nil {
		t.Fatal(err)
	}
	if rf.AggregateKbps != rrr.AggregateKbps {
		t.Errorf("single-connection FIFO %.2f != RR %.2f kbps",
			rf.AggregateKbps, rrr.AggregateKbps)
	}
}

func TestSchedulingOrderingUnderIndependentFading(t *testing.T) {
	// The headline result of [Bhagwat 95], which the paper summarizes:
	// with several connections fading independently, RR beats FIFO and
	// an accurate CSDP beats RR. Averaged over seeds.
	agg := func(p Policy) float64 {
		var sum float64
		const n = 3
		for seed := int64(1); seed <= n; seed++ {
			cfg := LANDefaults(4, p, time.Second)
			cfg.TransferSize = 256 * units.KB
			cfg.Seed = seed
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Completed {
				t.Fatalf("%v seed %d did not complete", p, seed)
			}
			sum += r.AggregateKbps
		}
		return sum / n
	}
	fifo := agg(FIFO)
	rr := agg(RoundRobin)
	csdp := agg(CSDP)
	if !(rr > fifo) {
		t.Errorf("RR %.0f kbps not above FIFO %.0f kbps", rr, fifo)
	}
	if !(csdp >= rr*0.98) {
		t.Errorf("CSDP %.0f kbps clearly below RR %.0f kbps", csdp, rr)
	}
	if !(csdp > fifo) {
		t.Errorf("CSDP %.0f kbps not above FIFO %.0f kbps", csdp, fifo)
	}
}

func TestPredictorAccuracyMatters(t *testing.T) {
	// The study's main limitation: CSDP's benefit degrades with predictor
	// accuracy. A coin-flip predictor should do no better than an
	// oracle.
	run := func(acc float64) float64 {
		var sum float64
		for seed := int64(1); seed <= 3; seed++ {
			cfg := LANDefaults(4, CSDP, time.Second)
			cfg.TransferSize = 256 * units.KB
			cfg.PredictorAccuracy = acc
			cfg.Seed = seed
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sum += r.AggregateKbps
		}
		return sum / 3
	}
	oracle := run(1.0)
	coin := run(0.5)
	if coin > oracle {
		t.Errorf("coin-flip predictor %.0f kbps beat the oracle %.0f kbps", coin, oracle)
	}
}

func TestFIFOHeadOfLineBlockingVisible(t *testing.T) {
	// FIFO burns radio attempts retrying a fading head while others
	// starve; RR spends fewer attempts for more delivered throughput.
	cfg := LANDefaults(4, FIFO, time.Second)
	cfg.TransferSize = 256 * units.KB
	rf, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = RoundRobin
	rr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rf.RadioAttempts <= rr.RadioAttempts {
		t.Errorf("FIFO attempts %d not above RR attempts %d (no HOL waste visible)",
			rf.RadioAttempts, rr.RadioAttempts)
	}
	if rf.RadioDiscards < rr.RadioDiscards {
		t.Errorf("FIFO discards %d below RR discards %d", rf.RadioDiscards, rr.RadioDiscards)
	}
}

func TestCSDPSkipsBadChannels(t *testing.T) {
	// Full-length transfers: short runs may not meet a fade at all
	// (mean good period is 4 s).
	cfg := LANDefaults(4, CSDP, time.Second)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.SkippedBad == 0 {
		t.Error("oracle CSDP never skipped a bad channel under bursty fading")
	}
	cfg.Policy = RoundRobin
	rr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rr.SkippedBad != 0 {
		t.Error("RR recorded skip decisions")
	}
}

func TestFairnessIndex(t *testing.T) {
	cfg := LANDefaults(4, RoundRobin, time.Second)
	cfg.TransferSize = 128 * units.KB
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fairness <= 0.25 || r.Fairness > 1.0000001 {
		t.Errorf("Jain fairness = %v, want in (1/n, 1]", r.Fairness)
	}
	if len(r.PerConn) != 4 {
		t.Fatalf("PerConn = %d entries", len(r.PerConn))
	}
	for i, c := range r.PerConn {
		if !c.Completed || c.ThroughputKbps <= 0 {
			t.Errorf("conn %d: %+v", i, c)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	cfg := LANDefaults(3, CSDP, 800*time.Millisecond)
	cfg.TransferSize = 128 * units.KB
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AggregateKbps != b.AggregateKbps || a.RadioAttempts != b.RadioAttempts {
		t.Error("same seed diverged")
	}
}

func TestErrorFreeChannelSharesRadioFully(t *testing.T) {
	cfg := LANDefaults(4, RoundRobin, time.Second)
	cfg.Channel.GoodBER = 0
	cfg.Channel.BadBER = 0
	cfg.TransferSize = 128 * units.KB
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("error-free run did not complete")
	}
	// Aggregate bounded by the radio's effective capacity; stop-and-wait
	// per 1536B packet: tx 6.1ms + ack 0.16ms + 2ms prop ~ 8.3ms/packet
	// ~ 1.47 Mbps of payload.
	if r.AggregateKbps < 1200 || r.AggregateKbps > 2000 {
		t.Errorf("error-free aggregate = %.0f kbps", r.AggregateKbps)
	}
	if r.Fairness < 0.99 {
		t.Errorf("error-free fairness = %v, want ~1", r.Fairness)
	}
	if r.RadioDiscards != 0 {
		t.Errorf("discards on a clean channel: %d", r.RadioDiscards)
	}
}
