// Package sim implements the discrete-event simulation kernel the rest of
// the repository is built on. It plays the role the LBL Network Simulator
// (ns) played for the paper: a virtual clock, an ordered event queue with
// cancellable events, and deterministic seeded randomness.
//
// The kernel is deliberately single-threaded: a simulation run is a
// sequential replay of events in virtual-time order, which is what makes
// runs reproducible bit-for-bit for a given seed. Concurrency across
// *replications* (different seeds) is handled by callers (see
// internal/stats.RunReplications), never inside one simulation.
//
// The hot path is allocation-free in steady state: event structs are
// recycled through a per-simulator free list, the queue is a monomorphic
// 4-ary min-heap (see heap.go), and cancellation tombstones events in
// O(1) instead of restructuring the heap. DESIGN.md §"Kernel data
// structures" documents the design and the determinism contract it
// preserves.
package sim

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Run (and Step) when the simulation was halted
// with Stop before the run condition was met.
var ErrStopped = errors.New("sim: stopped")

// Event is a handle to a scheduled callback, returned by
// Simulator.Schedule and accepted by Simulator.Cancel. It is a small
// value, cheap to copy and store; the zero value is a valid "no event"
// handle (never pending, cancelling it is a no-op).
//
// Handles are generation-checked: once the event fires or is cancelled,
// the kernel recycles the underlying struct for a future event, and every
// outstanding handle to it goes stale — Pending reports false and Cancel
// does nothing, exactly as with a fired event. Callers may therefore keep
// handles as long as they like without interfering with later events.
type Event struct {
	e   *event
	gen uint64
	at  time.Duration
}

// At reports the virtual time at which the event is (or was) scheduled to
// fire.
func (ev Event) At() time.Duration { return ev.at }

// Pending reports whether the event is still queued (not yet fired and
// not cancelled).
func (ev Event) Pending() bool {
	return ev.e != nil && ev.e.gen == ev.gen && ev.e.pos >= 0 && !ev.e.dead
}

// Simulator owns the virtual clock and the pending-event queue. The zero
// value is ready to use.
type Simulator struct {
	now   time.Duration
	seq   uint64
	queue eventQueue
	// dead counts tombstoned (lazily cancelled) events still occupying
	// heap slots; Pending subtracts it and compact() resets it.
	dead int
	// free is the recycled-event list; see heap.go.
	free    []*event
	stopped bool

	// fired counts events executed; useful for tests and for detecting
	// runaway simulations.
	fired uint64

	// checks are the registered invariants (see check.go); checksOn marks
	// the periodic runner as started, and failure records the first
	// invariant violation or watchdog stall.
	checks   []check
	checksOn bool
	failure  error

	// ctx, when non-nil, is polled at event boundaries (see context.go);
	// once it ends the run halts with a *CancelError.
	ctx context.Context

	// budget, when non-nil, holds the run's resource ceilings (see
	// budget.go); exhaustion halts the run with a *BudgetError. Nil is
	// the fast path: an unbudgeted run pays one nil check per event.
	budget *budgetState
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator { return &Simulator{} }

// Now reports the current virtual time (elapsed since the start of the
// simulation).
func (s *Simulator) Now() time.Duration { return s.now }

// Fired reports how many events have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports how many events are queued (cancelled events do not
// count, even while their tombstones still occupy heap slots).
func (s *Simulator) Pending() int { return s.queue.len() - s.dead }

// Schedule queues fn to run after delay of virtual time. A negative delay
// is treated as zero (fire as soon as possible, after already-queued events
// at the current instant). The returned Event may be passed to Cancel.
func (s *Simulator) Schedule(delay time.Duration, fn func()) Event {
	if delay < 0 {
		delay = 0
	}
	e := s.alloc()
	e.at = s.now + delay
	e.seq = s.seq
	e.fn = fn
	s.seq++
	s.queue.push(e)
	return Event{e: e, gen: e.gen, at: e.at}
}

// ScheduleAt queues fn at an absolute virtual time. Times in the past are
// clamped to now.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) Event {
	return s.Schedule(at-s.now, fn)
}

// Cancel removes a pending event from the queue. Cancelling a zero,
// stale, fired, or already-cancelled handle is a no-op, so callers do not
// need to track timer state precisely.
//
// Cancellation is lazy: the event is tombstoned in place (O(1)) and its
// heap slot is reclaimed when it surfaces at the root or when compaction
// sweeps the queue, so cancel-heavy workloads (every EBSN timer reset is
// a cancel) never pay the O(log n) restructuring of an eager removal.
func (s *Simulator) Cancel(ev Event) {
	e := ev.e
	if e == nil || e.gen != ev.gen || e.pos < 0 || e.dead {
		return
	}
	e.dead = true
	s.dead++
	if s.dead > compactMin && s.dead*2 > s.queue.len() {
		s.compact()
	}
}

// Stop halts the currently executing Run after the current event returns.
// Step also refuses to execute further events until the next Run resets
// the stop.
func (s *Simulator) Stop() { s.stopped = true }

// peekLive returns the earliest live event without removing it, dropping
// and recycling any tombstones that have surfaced at the root. Returns
// nil when no live events remain.
func (s *Simulator) peekLive() *event {
	for s.queue.len() > 0 {
		root := s.queue.a[0]
		if !root.dead {
			return root
		}
		s.queue.popMin()
		s.dead--
		s.recycle(root)
	}
	return nil
}

// fire pops the (live) root event, advances the clock, recycles the
// struct, and runs the callback.
func (s *Simulator) fire(next *event) {
	s.queue.popMin()
	s.now = next.at
	s.fired++
	fn := next.fn
	// Recycle before the callback runs: the firing event is no longer
	// pending, and its struct can be handed straight back to a Schedule
	// performed inside the callback.
	s.recycle(next)
	fn()
}

// Run executes events in order until the queue drains, until the virtual
// clock would pass until (events at exactly until still fire), or until
// Stop is called. A non-positive until runs the queue to exhaustion.
// It returns ErrStopped if halted by Stop, the recorded *CancelError
// if the context bound with Bind ended, and the recorded *BudgetError
// if a resource budget installed with SetBudget was exhausted.
func (s *Simulator) Run(until time.Duration) error {
	s.stopped = false
	for {
		next := s.peekLive()
		if next == nil {
			break
		}
		if s.cancelled() {
			return s.failure
		}
		if s.stopped {
			return ErrStopped
		}
		if s.budget != nil && s.exceeded(next) {
			return s.failure
		}
		if until > 0 && next.at > until {
			// Leave future events queued; advance the clock to the
			// horizon so Now() reflects the full observation window.
			s.now = until
			return nil
		}
		s.fire(next)
	}
	if until > 0 && s.now < until {
		s.now = until
	}
	return nil
}

// RunAll executes events until the queue drains or Stop is called.
func (s *Simulator) RunAll() error { return s.Run(0) }

// Step executes exactly one event. It reports whether one was executed,
// and — like Run — surfaces the halt condition as an error: ErrStopped
// after Stop (or a halted check/watchdog), or the recorded failure (a
// *CheckError, *StallError, *CancelError, or *BudgetError) when one
// exists. An empty queue is (false, nil): exhaustion is not an error.
func (s *Simulator) Step() (bool, error) {
	if s.cancelled() {
		return false, s.failure
	}
	if s.stopped {
		if s.failure != nil {
			return false, s.failure
		}
		return false, ErrStopped
	}
	next := s.peekLive()
	if next == nil {
		return false, nil
	}
	if s.budget != nil && s.exceeded(next) {
		return false, s.failure
	}
	s.fire(next)
	return true, nil
}

// String summarizes the simulator state, for debugging.
func (s *Simulator) String() string {
	return fmt.Sprintf("sim(now=%v pending=%d fired=%d)", s.now, s.Pending(), s.fired)
}
