// Package link models point-to-point simplex links: a drop-tail queue, a
// serializing transmitter (one packet on the wire at a time), a propagation
// delay, and — for wireless links — a framing/FEC byte overhead and a
// burst-error channel that corrupts transmissions.
//
// The paper's two links are presets here: a wired link (56 kbps WAN /
// 10 Mbps LAN, error-free) and a wireless link (19.2 kbps raw with 1.5x
// overhead for the WAN — 12.8 kbps effective — or 2 Mbps with no overhead
// for the LAN). Corrupted transmissions are discarded at the receiver, as
// a CRC failure would be; the sender learns nothing (loss detection is the
// ARQ's or TCP's job).
package link

import (
	"errors"
	"math"
	"time"

	"wtcp/internal/errmodel"
	"wtcp/internal/packet"
	"wtcp/internal/queue"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// Stats counts link activity over a run.
type Stats struct {
	// Sent counts transmissions started (including ARQ retransmissions
	// handed to the link).
	Sent uint64
	// Delivered counts packets handed to the receiver.
	Delivered uint64
	// Corrupted counts transmissions discarded by the error channel.
	Corrupted uint64
	// QueueDrops counts packets refused by the outbound queue.
	QueueDrops uint64
	// BytesSent and BytesDelivered count network-layer bytes (before the
	// framing overhead multiplier).
	BytesSent      units.ByteSize
	BytesDelivered units.ByteSize
	// Injected counts deliveries that bypassed the transmitter entirely
	// (fault-injected duplicates and delayed releases); they are kept out
	// of Delivered so Delivered+Corrupted <= Sent stays an invariant.
	Injected uint64
	// ECNMarked counts packets that received the CE congestion mark.
	ECNMarked uint64
}

// Config parameterizes a link.
type Config struct {
	// Name labels the link in traces ("wired", "wireless-down", ...).
	Name string
	// Rate is the raw serialization rate.
	Rate units.BitRate
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueLimit bounds the outbound queue in packets (0 = unbounded).
	QueueLimit int
	// Overhead multiplies network-layer bytes into on-air bytes to account
	// for framing, FEC, and synchronization (1.5 for the paper's WAN
	// radio). Zero means 1.0 (no overhead).
	Overhead float64
	// Channel is the error process; nil means error-free.
	Channel errmodel.Channel
	// ECNThreshold enables simple explicit congestion notification: a
	// Data packet admitted while the queue already holds at least this
	// many packets gets its CE bit set instead of the queue having to
	// drop to signal congestion [Floyd 94]. Zero disables marking.
	ECNThreshold int
	// RED, when non-nil, replaces the deterministic threshold with
	// Random Early Detection marking. Requires an RNG.
	RED *queue.REDConfig
}

func (c Config) validate() error {
	switch {
	case c.Rate <= 0:
		return errors.New("link: non-positive rate")
	case c.Delay < 0:
		return errors.New("link: negative delay")
	case c.Overhead < 0:
		return errors.New("link: negative overhead")
	default:
		return nil
	}
}

// Link is a simplex link. Create with New; the zero value is unusable.
type Link struct {
	sim       *sim.Simulator
	cfg       Config
	rng       *sim.RNG
	q         *queue.DropTail
	red       *queue.RED
	busy      bool
	deliver   func(*packet.Packet)
	onDrop    func(*packet.Packet)
	onTxDone  func(*packet.Packet)
	intercept func(*packet.Packet) bool

	// The transmitter's event callbacks are pre-bound once (see New) so
	// the per-packet hot path — one tx-done event and one delivery event
	// per transmission — schedules no new closures. curP/curStart/curTx
	// describe the single transmission being serialized (the transmitter
	// is serial by construction); inflight is the FIFO of packets that
	// finished serializing and are crossing the propagation delay.
	// Deliveries are scheduled at strictly nondecreasing times with a
	// fixed delay, so the FIFO pop order matches the event order.
	txDoneFn  func()
	deliverFn func()
	curP      *packet.Packet
	curStart  time.Duration
	curTx     time.Duration
	inflight  []*packet.Packet

	stats Stats
}

// New builds a link that hands delivered packets to deliver. rng is used
// only for corruption draws and may be nil when cfg.Channel is nil.
func New(s *sim.Simulator, cfg Config, rng *sim.RNG, deliver func(*packet.Packet)) (*Link, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if deliver == nil {
		return nil, errors.New("link: nil deliver callback")
	}
	if cfg.Channel != nil && rng == nil {
		return nil, errors.New("link: error channel requires an RNG")
	}
	if cfg.Overhead == 0 {
		cfg.Overhead = 1.0
	}
	l := &Link{
		sim:     s,
		cfg:     cfg,
		rng:     rng,
		q:       queue.New(cfg.QueueLimit),
		deliver: deliver,
	}
	if cfg.RED != nil {
		if rng == nil {
			return nil, errors.New("link: RED requires an RNG")
		}
		red, err := queue.NewRED(*cfg.RED)
		if err != nil {
			return nil, err
		}
		l.red = red
	}
	l.txDoneFn = l.txDone
	l.deliverFn = l.deliverNext
	return l, nil
}

// SetDropHook installs a callback invoked when a transmission is corrupted
// or tail-dropped, for tracing. May be nil.
func (l *Link) SetDropHook(fn func(*packet.Packet)) { l.onDrop = fn }

// SetTxDoneHook installs a callback invoked the instant a transmission
// finishes serializing, whether or not the error channel corrupted it. ARQ
// implementations use it to start their acknowledgment timers at the
// correct moment (a queued packet must not age its timer while waiting for
// the transmitter). May be nil.
func (l *Link) SetTxDoneHook(fn func(*packet.Packet)) { l.onTxDone = fn }

// SetInterceptor installs a delivery-time intercept: fn runs after the
// propagation delay, immediately before the packet would be handed to the
// receiver, and returning false consumes the packet (the receiver never
// sees it; delivery counters are not incremented). Fault-injection layers
// use it for loss, duplication, and delay beyond what the error channel
// models. May be nil to remove.
func (l *Link) SetInterceptor(fn func(*packet.Packet) bool) { l.intercept = fn }

// Inject hands p directly to the receiver, bypassing the queue, the
// transmitter, and the error channel, and counting it as delivered. Fault
// injectors use it to re-deliver duplicated packets or release delayed
// ones; it is also the natural seam for replaying captured traffic.
func (l *Link) Inject(p *packet.Packet) {
	l.stats.Injected++
	l.deliver(p)
}

// Name reports the configured label.
func (l *Link) Name() string { return l.cfg.Name }

// TxTime reports the serialization time for size network-layer bytes,
// including the framing overhead.
func (l *Link) TxTime(size units.ByteSize) time.Duration {
	onAir := units.ByteSize(math.Ceil(float64(size) * l.cfg.Overhead))
	return units.TransmissionTime(onAir, l.cfg.Rate)
}

// RTT reports the round-trip fixed cost of this link and a paired reverse
// link with the same delay: two propagation delays (serialization excluded).
func (l *Link) RTT() time.Duration { return 2 * l.cfg.Delay }

// Delay reports the one-way propagation delay.
func (l *Link) Delay() time.Duration { return l.cfg.Delay }

// Busy reports whether a transmission is in progress.
func (l *Link) Busy() bool { return l.busy }

// QueueLen reports the outbound queue occupancy.
func (l *Link) QueueLen() int { return l.q.Len() }

// Queue exposes the outbound queue for occupancy-based policies (source
// quench). Callers must not pop from it.
func (l *Link) Queue() *queue.DropTail { return l.q }

// DropQueued discards everything waiting in the outbound queue (used when
// the receiver detaches, e.g. a handoff) and reports how many packets
// died. A transmission already on the wire is unaffected.
func (l *Link) DropQueued() int {
	dropped := l.q.Drain()
	for _, p := range dropped {
		if l.onDrop != nil {
			l.onDrop(p)
		}
	}
	return len(dropped)
}

// Stats returns a copy of the accumulated counters.
func (l *Link) Stats() Stats {
	s := l.stats
	s.QueueDrops = l.q.Dropped()
	return s
}

// Send queues p for transmission. It reports false if the queue refused
// the packet.
func (l *Link) Send(p *packet.Packet) bool {
	if p.Kind == packet.Data {
		switch {
		case l.red != nil:
			if l.red.ShouldMark(l.q.Len(), l.rng) {
				p.CongestionMarked = true
				l.stats.ECNMarked++
			}
		case l.cfg.ECNThreshold > 0 && l.q.Len() >= l.cfg.ECNThreshold:
			p.CongestionMarked = true
			l.stats.ECNMarked++
		}
	}
	if !l.q.Push(p) {
		if l.onDrop != nil {
			l.onDrop(p)
		}
		return false
	}
	l.kick()
	return true
}

// kick starts the transmitter if it is idle and work is queued.
func (l *Link) kick() {
	if l.busy {
		return
	}
	p := l.q.Pop()
	if p == nil {
		return
	}
	l.busy = true
	l.curP = p
	l.curStart = l.sim.Now()
	l.curTx = l.TxTime(p.Size())
	l.stats.Sent++
	l.stats.BytesSent += p.Size()
	l.sim.Schedule(l.curTx, l.txDoneFn)
}

// txDone fires when the current transmission finishes serializing: draw
// the error channel, hand survivors to the propagation pipe, and start
// the next transmission.
func (l *Link) txDone() {
	p, start, tx := l.curP, l.curStart, l.curTx
	l.busy = false
	l.curP = nil
	if l.onTxDone != nil {
		l.onTxDone(p)
	}
	corrupted := false
	if l.cfg.Channel != nil {
		onAirBits := int64(math.Ceil(float64(p.Size().Bits()) * l.cfg.Overhead))
		mean := l.cfg.Channel.ExpectedBitErrors(start, start+tx, onAirBits)
		corrupted = l.rng.PoissonAtLeastOne(mean)
	}
	if corrupted {
		l.stats.Corrupted++
		if l.onDrop != nil {
			l.onDrop(p)
		}
	} else {
		l.inflight = append(l.inflight, p)
		l.sim.Schedule(l.cfg.Delay, l.deliverFn)
	}
	l.kick()
}

// deliverNext completes the propagation delay of the oldest in-flight
// packet and hands it to the receiver.
func (l *Link) deliverNext() {
	p := l.inflight[0]
	copy(l.inflight, l.inflight[1:])
	l.inflight = l.inflight[:len(l.inflight)-1]
	if l.intercept != nil && !l.intercept(p) {
		return // consumed by the fault injector
	}
	l.stats.Delivered++
	l.stats.BytesDelivered += p.Size()
	l.deliver(p)
}

// Paper link presets.

// WiredWAN returns the paper's 56 kbps wired WAN link configuration.
func WiredWAN(delay time.Duration) Config {
	return Config{Name: "wired", Rate: 56 * units.Kbps, Delay: delay, QueueLimit: 50}
}

// WirelessWAN returns the paper's wide-area wireless link: 19.2 kbps raw,
// 1.5x framing/FEC overhead (12.8 kbps effective), with the given error
// channel.
func WirelessWAN(delay time.Duration, ch errmodel.Channel) Config {
	return Config{
		Name:     "wireless",
		Rate:     BitRateWirelessWAN,
		Delay:    delay,
		Overhead: 1.5,
		Channel:  ch,
	}
}

// WiredLAN returns the paper's 10 Mbps wired LAN link configuration.
func WiredLAN(delay time.Duration) Config {
	return Config{Name: "wired", Rate: 10 * units.Mbps, Delay: delay, QueueLimit: 100}
}

// WirelessLAN returns the paper's 2 Mbps local-area wireless link with no
// framing overhead.
func WirelessLAN(delay time.Duration, ch errmodel.Channel) Config {
	return Config{Name: "wireless", Rate: 2 * units.Mbps, Delay: delay, Channel: ch}
}

// BitRateWirelessWAN is the raw WAN radio rate (19.2 kbps).
const BitRateWirelessWAN = 19200 * units.BitPerSecond
