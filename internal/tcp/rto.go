package tcp

import "time"

// RTOEstimator implements the BSD/Jacobson-Karels retransmission-timeout
// machinery on a coarse-grained TCP clock. Round-trip times are measured
// in clock ticks (the paper uses a 100 ms granularity, so RTTs are "known
// to the nearest 100 msec"), smoothed with the SIGCOMM'88 estimator, and
// backed off exponentially on consecutive losses per Karn's algorithm.
type RTOEstimator struct {
	granularity time.Duration
	initial     time.Duration
	minTicks    float64
	maxRTO      time.Duration

	srtt      float64 // smoothed RTT, in ticks
	rttvar    float64 // mean deviation, in ticks
	hasSample bool

	// shift is the Karn backoff exponent: the effective RTO is the base
	// value times 2^shift, capped at maxShift.
	shift int

	samples uint64
}

const (
	// maxBackoffShift caps the exponential backoff at 2^6 = 64x, the BSD
	// TCP_MAXRXTSHIFT-era bound.
	maxBackoffShift = 6
	// minRTOTicks is the BSD floor of two clock ticks.
	minRTOTicks = 2
)

// Defaults matching the paper's setup and common BSD values.
const (
	DefaultGranularity = 100 * time.Millisecond
	DefaultInitialRTO  = 3 * time.Second
	DefaultMaxRTO      = 64 * time.Second
)

// NewRTOEstimator returns an estimator with the given clock granularity.
// Non-positive arguments fall back to the defaults above.
func NewRTOEstimator(granularity, initialRTO, maxRTO time.Duration) *RTOEstimator {
	if granularity <= 0 {
		granularity = DefaultGranularity
	}
	if initialRTO <= 0 {
		initialRTO = DefaultInitialRTO
	}
	if maxRTO <= 0 {
		maxRTO = DefaultMaxRTO
	}
	return &RTOEstimator{
		granularity: granularity,
		initial:     initialRTO,
		minTicks:    minRTOTicks,
		maxRTO:      maxRTO,
	}
}

// Granularity reports the TCP clock tick length.
func (e *RTOEstimator) Granularity() time.Duration { return e.granularity }

// Ticks converts a duration to whole clock ticks (truncating), which is
// how a coarse-clock TCP perceives elapsed time.
func (e *RTOEstimator) Ticks(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return int(d / e.granularity)
}

// Sample feeds one round-trip measurement, in ticks, into the smoothed
// estimator (Jacobson/Karels: gain 1/8 on srtt, 1/4 on rttvar). Sampling
// also resets the Karn backoff: the measurement proves a fresh,
// non-retransmitted segment was acknowledged.
func (e *RTOEstimator) Sample(ticks int) {
	m := float64(ticks)
	if !e.hasSample {
		e.srtt = m
		e.rttvar = m / 2
		e.hasSample = true
	} else {
		err := m - e.srtt
		e.srtt += err / 8
		if err < 0 {
			err = -err
		}
		e.rttvar += (err - e.rttvar) / 4
	}
	e.samples++
	e.shift = 0
}

// base returns the un-backed-off timeout.
func (e *RTOEstimator) base() time.Duration {
	if !e.hasSample {
		return e.initial
	}
	ticks := e.srtt + 4*e.rttvar
	if ticks < e.minTicks {
		ticks = e.minTicks
	}
	return time.Duration(ticks * float64(e.granularity))
}

// RTO reports the current retransmission timeout: the smoothed base value
// times the Karn backoff, clamped to the ceiling.
func (e *RTOEstimator) RTO() time.Duration {
	rto := e.base() << e.shift
	if rto > e.maxRTO {
		rto = e.maxRTO
	}
	return rto
}

// Backoff doubles the timeout for the next retransmission (up to the 64x
// cap), as TCP does on each consecutive loss of the same segment.
func (e *RTOEstimator) Backoff() {
	if e.shift < maxBackoffShift {
		e.shift++
	}
}

// BackoffShift reports the current backoff exponent (0 = no backoff).
func (e *RTOEstimator) BackoffShift() int { return e.shift }

// SRTT reports the smoothed round-trip time (zero before any sample).
func (e *RTOEstimator) SRTT() time.Duration {
	return time.Duration(e.srtt * float64(e.granularity))
}

// RTTVar reports the smoothed mean deviation.
func (e *RTOEstimator) RTTVar() time.Duration {
	return time.Duration(e.rttvar * float64(e.granularity))
}

// Samples reports how many RTT measurements have been taken.
func (e *RTOEstimator) Samples() uint64 { return e.samples }
