package multiconn_test

import (
	"fmt"
	"time"

	"wtcp/internal/multiconn"
	"wtcp/internal/units"
)

// Example reproduces the scheduling comparison the paper's related-work
// section summarizes: round-robin service beats FIFO when mobile users
// fade independently, because a fading head-of-line packet no longer
// blocks everyone.
func Example() {
	run := func(p multiconn.Policy) float64 {
		cfg := multiconn.LANDefaults(4, p, time.Second)
		cfg.TransferSize = 256 * units.KB
		r, err := multiconn.Run(cfg)
		if err != nil {
			return 0
		}
		return r.AggregateKbps
	}
	fifo := run(multiconn.FIFO)
	rr := run(multiconn.RoundRobin)
	csdp := run(multiconn.CSDP)
	fmt.Println("round-robin beats FIFO:", rr > fifo)
	fmt.Println("CSDP beats FIFO:      ", csdp > fifo)
	// Output:
	// round-robin beats FIFO: true
	// CSDP beats FIFO:       true
}
