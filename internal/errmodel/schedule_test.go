package errmodel

import (
	"math"
	"testing"
	"time"
)

func paperSchedule(t *testing.T) *Schedule {
	t.Helper()
	sc, err := NewSchedule([]Phase{
		{State: Good, Duration: 10 * time.Second},
		{State: Bad, Duration: 4 * time.Second},
	}, true, 1e-6, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestNewScheduleValidation(t *testing.T) {
	if _, err := NewSchedule(nil, false, 0, 0); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := NewSchedule([]Phase{{State: Good, Duration: 0}}, false, 0, 0); err == nil {
		t.Error("zero-duration phase accepted")
	}
	if _, err := NewSchedule([]Phase{{State: State(9), Duration: time.Second}}, false, 0, 0); err == nil {
		t.Error("unknown state accepted")
	}
	if _, err := NewSchedule([]Phase{{State: Good, Duration: time.Second}}, false, -1, 0); err == nil {
		t.Error("negative BER accepted")
	}
}

func TestScheduleRepeats(t *testing.T) {
	sc := paperSchedule(t)
	tests := []struct {
		at   time.Duration
		want State
	}{
		{0, Good},
		{9 * time.Second, Good},
		{10 * time.Second, Bad},
		{13 * time.Second, Bad},
		{14 * time.Second, Good},
		{24 * time.Second, Bad},  // second cycle
		{150 * time.Second, Bad}, // 150 mod 14 = 10 -> bad
		{-time.Second, Good},     // clamps
	}
	for _, tt := range tests {
		if got := sc.StateAt(tt.at); got != tt.want {
			t.Errorf("StateAt(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestScheduleNonRepeatingHoldsLastState(t *testing.T) {
	sc, err := NewSchedule([]Phase{
		{State: Bad, Duration: time.Second},
		{State: Good, Duration: time.Second},
	}, false, 1e-6, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.StateAt(500 * time.Millisecond); got != Bad {
		t.Errorf("first phase = %v", got)
	}
	if got := sc.StateAt(10 * time.Hour); got != Good {
		t.Errorf("beyond script = %v, want last state held", got)
	}
}

func TestScheduleExpectedBitErrorsMatchesMarkovDeterministic(t *testing.T) {
	// The schedule with the paper's phases must agree exactly with the
	// deterministic Markov channel.
	sc := paperSchedule(t)
	cfg := PaperWAN(4 * time.Second)
	cfg.Deterministic = true
	m, err := NewMarkov(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range []struct{ a, b time.Duration }{
		{time.Second, 2 * time.Second},
		{9500 * time.Millisecond, 10500 * time.Millisecond},
		{8 * time.Second, 16 * time.Second},
		{20 * time.Second, 30 * time.Second},
	} {
		want := m.ExpectedBitErrors(span.a, span.b, 1536)
		got := sc.ExpectedBitErrors(span.a, span.b, 1536)
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Errorf("[%v,%v): schedule %v vs markov %v", span.a, span.b, got, want)
		}
	}
}

func TestScheduleEdgeCases(t *testing.T) {
	sc := paperSchedule(t)
	if got := sc.ExpectedBitErrors(time.Second, 2*time.Second, 0); got != 0 {
		t.Errorf("zero bits = %v", got)
	}
	got := sc.ExpectedBitErrors(11*time.Second, 11*time.Second, 100)
	if math.Abs(got-1.0) > 1e-9 {
		t.Errorf("instantaneous in bad state = %v, want 1.0", got)
	}
}
