package fleet

import (
	"wtcp/internal/experiment"
)

// Wire protocol between coordinator and workers: five JSON-over-HTTP
// endpoints rooted at the coordinator's base URL.
//
//	GET  /v1/campaign  -> Campaign        (workers fetch the manifest)
//	POST /v1/lease     -> leaseReply      (request a work unit)
//	POST /v1/renew     -> renewReply      (heartbeat a held lease)
//	POST /v1/result    -> resultReply     (deliver a unit's outcome)
//	GET  /v1/status    -> Snapshot        (fleet health aggregate)
//
// The protocol is deliberately boring — request/response, no streaming,
// no worker-side server — because every robustness property lives in
// the state machine, not the transport: a lease is only held while
// renewals keep arriving, and a result is only counted if its key is
// not yet settled in the ledger.

// workUnit is one leased sweep point.
type workUnit struct {
	// Lease identifies this grant; renewals and the result must echo it.
	Lease uint64 `json:"lease"`
	// Key is the point's ledger key (also derivable from Spec; sent so
	// workers can log and report without recomputing).
	Key string `json:"key"`
	// Spec is the point to execute.
	Spec experiment.PointSpec `json:"spec"`
	// TTLMs is the lease duration; the worker must renew well inside it.
	TTLMs int64 `json:"ttl_ms"`
	// Stolen marks a straggler re-dispatch: another worker still holds
	// an older lease on the same point and the first finisher wins.
	Stolen bool `json:"stolen,omitempty"`
}

// leaseRequest asks for work. Health piggybacks the worker's engine
// heartbeat so the coordinator's fleet snapshot stays current without a
// separate telemetry channel.
type leaseRequest struct {
	Worker string                     `json:"worker"`
	Health *experiment.HealthSnapshot `json:"health,omitempty"`
}

// leaseReply grants a unit, asks the worker to wait, or ends the
// campaign.
type leaseReply struct {
	// Done tells the worker the campaign is over (all points settled, or
	// the campaign failed); the worker exits.
	Done bool `json:"done,omitempty"`
	// Unit is the granted work unit, nil when none is available.
	Unit *workUnit `json:"unit,omitempty"`
	// WaitMs asks an idle worker to poll again after this long (set when
	// Unit is nil and Done is false: all remaining points are leased to
	// live holders and none qualifies for stealing yet).
	WaitMs int64 `json:"wait_ms,omitempty"`
}

// renewRequest heartbeats a held lease.
type renewRequest struct {
	Worker string                     `json:"worker"`
	Lease  uint64                     `json:"lease"`
	Health *experiment.HealthSnapshot `json:"health,omitempty"`
}

// renewReply extends the lease or tells the worker to abandon the unit
// (the lease expired or the point settled first — e.g. a thief won).
type renewReply struct {
	OK    bool  `json:"ok"`
	TTLMs int64 `json:"ttl_ms,omitempty"`
}

// resultRequest delivers a unit's outcome. Exactly one of
// Outcome.Reps, Outcome.Quarantine, or Failure is meaningful.
type resultRequest struct {
	Worker  string                  `json:"worker"`
	Lease   uint64                  `json:"lease"`
	Outcome experiment.PointOutcome `json:"outcome"`
	// Failure carries a fail-fast error (protocol bug, panic): the
	// campaign must stop, not retry, exactly as the sequential engine
	// would.
	Failure string                     `json:"failure,omitempty"`
	Health  *experiment.HealthSnapshot `json:"health,omitempty"`
}

// resultReply acknowledges a result post. Both a fresh accept and a
// duplicate drop return HTTP 200 — the worker's obligation ends either
// way; Duplicate is telemetry.
type resultReply struct {
	Accepted  bool `json:"accepted"`
	Duplicate bool `json:"duplicate,omitempty"`
}
