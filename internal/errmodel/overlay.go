package errmodel

import (
	"errors"
	"sort"
	"time"
)

// FaultWindow is one scheduled interval during which an Overlay forces the
// channel into the Bad state with the given bit error rate, regardless of
// what the underlying error process says. A BER of 1 makes every
// transmission overlapping the window certain to be corrupted (a link
// blackout); smaller values model burst-loss storms beyond the scheduled
// Markov process.
type FaultWindow struct {
	// Start is the virtual time the fault begins.
	Start time.Duration
	// Length is how long the fault lasts.
	Length time.Duration
	// BER is the forced bit error rate inside the window.
	BER float64
}

// End reports the first instant after the fault.
func (w FaultWindow) End() time.Duration { return w.Start + w.Length }

// Validate reports whether the window is usable.
func (w FaultWindow) Validate() error {
	switch {
	case w.Start < 0:
		return errors.New("errmodel: fault window starts before time zero")
	case w.Length <= 0:
		return errors.New("errmodel: fault window needs a positive length")
	case w.BER < 0 || w.BER > 1:
		return errors.New("errmodel: fault window BER outside [0, 1]")
	default:
		return nil
	}
}

// Overlay composes a base error process with scheduled fault windows: the
// chaos layer's link blackouts and loss storms. Outside every window the
// overlay is transparent; inside one, the forced BER replaces (not adds
// to) the base process for the overlapped fraction of a transmission, and
// StateAt reports Bad. A nil base behaves as a perfect channel, which is
// how error-free wired links gain injectable faults.
type Overlay struct {
	base    Channel
	windows []FaultWindow
}

var _ Channel = (*Overlay)(nil)

// NewOverlay builds an overlay over base (nil = perfect channel). Windows
// are sorted by start time; overlapping windows are allowed, with the
// highest BER winning where they overlap in state queries and each
// contributing independently to expected errors being avoided by taking
// the max per instant — in practice callers configure disjoint windows.
func NewOverlay(base Channel, windows []FaultWindow) (*Overlay, error) {
	for _, w := range windows {
		if err := w.Validate(); err != nil {
			return nil, err
		}
	}
	sorted := make([]FaultWindow, len(windows))
	copy(sorted, windows)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	return &Overlay{base: base, windows: sorted}, nil
}

// forcedAt reports the forced BER at instant t and whether any window
// covers t. With overlapping windows the highest BER wins.
func (o *Overlay) forcedAt(t time.Duration) (float64, bool) {
	ber, in := 0.0, false
	for _, w := range o.windows {
		if w.Start > t {
			break
		}
		if t < w.End() {
			in = true
			if w.BER > ber {
				ber = w.BER
			}
		}
	}
	return ber, in
}

// StateAt implements Channel: Bad inside any fault window, the base
// process's state outside (Good when the base is nil).
func (o *Overlay) StateAt(t time.Duration) State {
	if _, in := o.forcedAt(t); in {
		return Bad
	}
	if o.base == nil {
		return Good
	}
	return o.base.StateAt(t)
}

// ExpectedBitErrors implements Channel. The transmission's bits are spread
// uniformly over [start, end); fault windows contribute their forced BER
// for the overlapped fraction, and the base process contributes for the
// remainder. The uncovered-fraction scaling of the base mean is exact for
// a base process whose BER is constant over the interval and a close
// upper-structure approximation otherwise (fault windows dominate the
// error count wherever they overlap).
func (o *Overlay) ExpectedBitErrors(start, end time.Duration, bits int64) float64 {
	if bits <= 0 {
		return 0
	}
	if end <= start {
		if ber, in := o.forcedAt(start); in {
			return ber * float64(bits)
		}
		if o.base == nil {
			return 0
		}
		return o.base.ExpectedBitErrors(start, end, bits)
	}
	total := float64(end - start)
	covered := time.Duration(0)
	forced := 0.0
	for _, w := range o.windows {
		if w.Start >= end {
			break
		}
		lo, hi := maxDur(start, w.Start), minDur(end, w.End())
		if hi <= lo {
			continue
		}
		overlap := hi - lo
		covered += overlap
		forced += w.BER * float64(bits) * float64(overlap) / total
	}
	if covered > end-start {
		covered = end - start
	}
	baseMean := 0.0
	if o.base != nil && covered < end-start {
		baseMean = o.base.ExpectedBitErrors(start, end, bits) *
			float64(end-start-covered) / total
	}
	return forced + baseMean
}
