package cell

import (
	"fmt"
	"testing"
	"time"

	"wtcp/internal/errmodel"
	"wtcp/internal/units"
)

// ---- arena unit tests ----

func TestArenaAllocFreeRecycles(t *testing.T) {
	a := newArena(4)
	s1 := a.alloc(1, 0, 1496)
	s2 := a.alloc(2, 1496, 1496)
	if s1 == s2 {
		t.Fatal("distinct allocations shared a slot")
	}
	if a.Live() != 2 {
		t.Fatalf("live %d, want 2", a.Live())
	}
	a.decref(s1)
	if a.Live() != 1 {
		t.Fatalf("live %d after free, want 1", a.Live())
	}
	if s3 := a.alloc(3, 0, 100); s3 != s1 {
		t.Fatalf("freed slot %d not recycled (got %d)", s1, s3)
	}
	st := a.stats()
	if st.Allocs != 3 || st.PeakLive != 2 || st.Capacity != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestArenaRefcountHoldsSlot(t *testing.T) {
	a := newArena(4)
	s := a.alloc(1, 0, 1496)
	a.incref(s)
	a.decref(s)
	if a.Live() != 1 {
		t.Fatal("slot freed while a reference remained")
	}
	a.decref(s)
	if a.Live() != 0 || a.misuse != nil {
		t.Fatalf("live %d misuse %v", a.Live(), a.misuse)
	}
}

func TestArenaMisuseLatched(t *testing.T) {
	a := newArena(4)
	s := a.alloc(1, 0, 1496)
	a.decref(s)
	a.decref(s) // double free
	if a.misuse == nil {
		t.Fatal("double free not latched")
	}
	first := a.misuse
	a.incref(s) // incref of free slot: also misuse, but first wins
	if a.misuse != first {
		t.Fatal("latched misuse overwritten")
	}
}

func TestArenaSize(t *testing.T) {
	a := newArena(4)
	s := a.alloc(1, 0, 1496)
	if got := a.size(s); got != 1536*units.ByteSize(1) {
		t.Fatalf("size %v, want 1536", got)
	}
}

// ---- the chaos refcount property (ISSUE satellite: no leaks, no
// double-frees under loss/dup/reorder; run under -race in CI) ----

// TestArenaRefcountsUnderChaos is the reference-hygiene property test:
// across a grid of drop/duplicate/reorder fault rates and seeds, every
// run must end with zero live arena slots and no latched refcount
// misuse — chaos may destroy throughput, never references. Duplicated
// deliveries take the incref path, dropped ones never acquire a
// reference, and reordered ones outlive the radio cycle that produced
// them, so the grid exercises every ownership hand-off the engine has.
func TestArenaRefcountsUnderChaos(t *testing.T) {
	grids := []Chaos{
		{DropP: 0.3},
		{DupP: 0.3},
		{ReorderP: 0.3},
		{DropP: 0.15, DupP: 0.15, ReorderP: 0.15},
		{DropP: 0.5, DupP: 0.5, ReorderP: 0.5, ReorderDelay: 20 * time.Millisecond},
	}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		grids = grids[3:4]
		seeds = seeds[:1]
	}
	for gi, chaos := range grids {
		for _, seed := range seeds {
			gi, chaos, seed := gi, chaos, seed
			t.Run(fmt.Sprintf("grid%d/seed%d", gi, seed), func(t *testing.T) {
				t.Parallel()
				cfg := smallConfig(8)
				cfg.TransferSize = 32 * units.KB
				cfg.Chaos = chaos
				cfg.Seed = seed
				cfg.EBSN = true
				// Heavy chaos may legitimately keep flows from finishing;
				// cap the run so the test stays fast. Reference hygiene
				// must hold either way.
				cfg.Horizon = 2 * time.Minute
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if res.Arena.LiveAtEnd != 0 {
					t.Errorf("leaked %d arena slots (chaos %+v)", res.Arena.LiveAtEnd, chaos)
				}
				if chaos.DropP > 0 && res.ChaosDrops == 0 {
					t.Error("drop chaos configured but no drops recorded")
				}
				if chaos.DupP > 0 && res.ChaosDups == 0 {
					t.Error("dup chaos configured but no dups recorded")
				}
				if chaos.ReorderP > 0 && res.ChaosDelays == 0 {
					t.Error("reorder chaos configured but no delays recorded")
				}
			})
		}
	}
}

// TestChaosOffDrawsNothing pins the isolation contract: a zero-value
// Chaos leaves the run bit-identical to one that never had the chaos
// RNG split consulted (the split happens either way; only draws differ).
func TestChaosOffDrawsNothing(t *testing.T) {
	cfg := smallConfig(4)
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.ChaosDrops+a.ChaosDups+a.ChaosDelays != 0 {
		t.Fatal("chaos counters non-zero without chaos")
	}
	// FIFO stresses the stale-head path under discards; still no chaos.
	cfg.Policy = FIFO
	cfg.Channel = errmodel.PaperLAN(200 * time.Millisecond)
	cfg.RTmax = 2 // force discards
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if b.Arena.LiveAtEnd != 0 {
		t.Errorf("leaked %d slots on the discard path", b.Arena.LiveAtEnd)
	}
}
