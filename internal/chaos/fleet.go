package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// This file extends the fault-injection subsystem past the simulator:
// FleetFaults describes adverse conditions at the coordinator/worker
// RPC boundary of a distributed campaign (internal/fleet) — dropped,
// duplicated, and delayed lease renewals and result posts, plus a
// scheduled worker SIGKILL. Like the in-sim faults, everything draws
// from a seeded RNG so a chaotic campaign is reproducible from
// (config, seed) alone; the guarantees the fleet must keep under these
// faults (no lost points, no double counting) are exactly the ones its
// acceptance tests assert.

// RPCFaults perturbs one class of fleet RPC (lease renewals or result
// posts) probabilistically, per call.
type RPCFaults struct {
	// DropProb is the probability a call is dropped before reaching the
	// coordinator (the caller sees a transport error).
	DropProb float64 `json:"drop_prob,omitempty"`
	// DupProb is the probability a call is delivered twice — the
	// duplicate a retrying client would produce after losing the reply.
	DupProb float64 `json:"dup_prob,omitempty"`
	// DelayProb is the probability a call is held for DelayMs before
	// delivery (long enough to cross a lease-expiry boundary when the
	// test wants it to).
	DelayProb float64 `json:"delay_prob,omitempty"`
	// DelayMs is the hold duration for delayed calls, in milliseconds.
	DelayMs int64 `json:"delay_ms,omitempty"`
}

// Enabled reports whether any fault can fire.
func (f RPCFaults) Enabled() bool {
	return f.DropProb > 0 || f.DupProb > 0 || f.DelayProb > 0
}

// Delay returns the configured hold duration.
func (f RPCFaults) Delay() time.Duration { return time.Duration(f.DelayMs) * time.Millisecond }

// validate bounds the probabilities and delay.
func (f RPCFaults) validate(name string) error {
	for _, p := range []struct {
		field string
		v     float64
	}{
		{"drop_prob", f.DropProb}, {"dup_prob", f.DupProb}, {"delay_prob", f.DelayProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: fleet %s.%s %v outside [0, 1]", name, p.field, p.v)
		}
	}
	if f.DelayMs < 0 {
		return fmt.Errorf("chaos: fleet %s.delay_ms %d is negative", name, f.DelayMs)
	}
	if f.DelayProb > 0 && f.DelayMs == 0 {
		return fmt.Errorf("chaos: fleet %s.delay_prob set but delay_ms is zero; give the hold duration", name)
	}
	return nil
}

// WorkerKill SIGKILLs one local worker subprocess mid-campaign: worker
// index Worker is killed after it has completed AfterUnits work units
// (0 kills it while it holds its first lease). The fleet must finish
// the campaign anyway, losing and double-counting nothing.
type WorkerKill struct {
	Worker     int `json:"worker"`
	AfterUnits int `json:"after_units,omitempty"`
}

// FleetFaults is a fault plan for the coordinator/worker boundary of a
// distributed campaign. Zero value injects nothing.
type FleetFaults struct {
	// Renew perturbs lease-renewal heartbeats; Result perturbs result
	// posts. A dropped renewal stream eventually expires the lease and
	// the point is reassigned; a duplicated result post must be
	// deduplicated by the coordinator's ledger.
	Renew  RPCFaults `json:"renew,omitempty"`
	Result RPCFaults `json:"result,omitempty"`
	// Kill, when set, SIGKILLs a local worker subprocess (see
	// WorkerKill). Only the local fleet runner honours it.
	Kill *WorkerKill `json:"kill,omitempty"`
	// Seed drives the boundary-fault RNG; 0 derives from the campaign
	// seed.
	Seed int64 `json:"seed,omitempty"`
}

// Enabled reports whether the plan injects anything.
func (f *FleetFaults) Enabled() bool {
	return f != nil && (f.Renew.Enabled() || f.Result.Enabled() || f.Kill != nil)
}

// Validate rejects out-of-range knobs with messages that say how to fix
// the field.
func (f *FleetFaults) Validate() error {
	if f == nil {
		return nil
	}
	if err := f.Renew.validate("renew"); err != nil {
		return err
	}
	if err := f.Result.validate("result"); err != nil {
		return err
	}
	if f.Kill != nil {
		if f.Kill.Worker < 0 {
			return fmt.Errorf("chaos: fleet kill.worker %d is negative; give the local worker index", f.Kill.Worker)
		}
		if f.Kill.AfterUnits < 0 {
			return fmt.Errorf("chaos: fleet kill.after_units %d is negative; 0 kills during the first held lease", f.Kill.AfterUnits)
		}
	}
	return nil
}

// ParseFleet decodes and validates a JSON fleet fault plan. Unknown
// fields are rejected so a typoed knob fails loudly instead of silently
// injecting nothing.
func ParseFleet(data []byte) (*FleetFaults, error) {
	var f FleetFaults
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("chaos: parse fleet faults: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}
