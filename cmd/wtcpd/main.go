// Command wtcpd serves the simulation engine over HTTP as a
// self-defending service: bounded admission with honest Retry-After
// hints, client deadlines propagated into per-run resource budgets,
// taxonomy-driven load shedding, a content-addressed result cache with
// single-flight dedup, and a graceful SIGTERM drain that checkpoints
// in-flight work so a restart resumes it instead of losing it.
//
//	wtcpd -data /var/lib/wtcpd                 # serve on 127.0.0.1:8787
//	wtcpd -data d -addr :9000 -slots 4         # wider box
//	curl -XPOST :8787/v1/run -d '{"scenario":{"preset":"wan","mean_bad":"4s"}}'
//	curl ':8787/v1/advise?bad=4s'              # §4.1 packet-size advice
//	curl :8787/healthz                         # engine heartbeat
//
// SIGTERM (or Ctrl-C) drains: admission stops, in-flight requests get
// -drain-grace to finish, then are canceled at a replication boundary
// with their journal entries and finished sweep points intact. SIGUSR1
// dumps the health snapshot to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wtcp/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wtcpd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wtcpd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8787", "listen address")
		dataDir    = fs.String("data", "", "state directory: result cache, journal, point ledgers, repro bundles (required)")
		slots      = fs.Int("slots", 0, "concurrent run slots (default 2)")
		queue      = fs.Int("queue", 0, "admission wait-queue depth (default 2x slots)")
		cacheMB    = fs.Int64("cache-mb", 0, "result-cache byte cap in MiB (default 256)")
		deadline   = fs.Duration("deadline", 0, "default per-request execution deadline (default 2m)")
		cooldown   = fs.Duration("cooldown", 0, "scenario-class breaker cooldown (default 30s)")
		workers    = fs.Int("workers", 0, "replication workers per request (default 1)")
		retries    = fs.Int("retries", 0, "per-replication retry budget (0 = engine default of 1, negative disables)")
		drainGrace = fs.Duration("drain-grace", 30*time.Second, "how long a drain lets in-flight work finish before checkpoint-cancel")
		statusPath = fs.String("status", "", "also persist the health heartbeat to this JSON file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return errors.New("-data is required (the server's state directory)")
	}

	srv, err := serve.New(serve.Config{
		DataDir:         *dataDir,
		Slots:           *slots,
		QueueDepth:      *queue,
		CacheBytes:      *cacheMB << 20,
		DefaultDeadline: *deadline,
		BreakerCooldown: *cooldown,
		Workers:         *workers,
		Retries:         *retries,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	stopHeartbeat := srv.Health().Heartbeat(*statusPath, os.Stderr)
	defer stopHeartbeat()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	resumed := srv.Resume()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigCh)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "wtcpd: listening on %s (resumed %d journaled request(s))\n", ln.Addr(), resumed)

	select {
	case sig := <-sigCh:
		fmt.Fprintf(stdout, "wtcpd: %v: draining (grace %v)\n", sig, *drainGrace)
		// Order matters: Drain first (admission answers 503, in-flight
		// work finishes or checkpoints), then Shutdown (no new
		// connections), so a drain is observable over HTTP while it runs.
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		srv.Drain(drainCtx)
		cancel()
		shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		err := httpSrv.Shutdown(shutCtx)
		cancel2()
		fmt.Fprintf(stdout, "wtcpd: drained\n")
		return err
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
