//go:build unix

package experiment

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// NotifyOnSignal prints the health heartbeat to w every time the
// process receives SIGUSR1, until the returned stop function is called.
// This is the "what is the engine doing right now" hook for the CLIs:
// kill -USR1 <pid> dumps active runs, throughput, and quarantine counts
// without interrupting the sweep.
func (h *Health) NotifyOnSignal(w io.Writer) (stop func()) {
	if h == nil {
		return func() {}
	}
	if w == nil {
		w = os.Stderr
	}
	c := make(chan os.Signal, 1)
	signal.Notify(c, syscall.SIGUSR1)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-c:
				fmt.Fprint(w, h.String())
			}
		}
	}()
	return func() {
		signal.Stop(c)
		close(done)
	}
}
