package main

import (
	"strings"
	"testing"
)

// FuzzScenario throws arbitrary bytes at the scenario parser. The
// contract under fuzzing: parseScenario never panics, and any scenario
// it accepts is fully runnable (the returned config passes validation,
// which build already enforces — so acceptance with a broken config is
// a bug, not a user error).
func FuzzScenario(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"preset":"wan","scheme":"ebsn","packet_size_bytes":1536,"mean_bad":"4s","transfer_kb":100,"seed":7}`,
		`{"preset":"lan","scheme":"snoop","mean_bad":"800ms","sack":true,"delayed_acks":true}`,
		`{"scheme":"localrecovery","variant":"newreno","window_kb":8,"cross_traffic_pct":30,"ecn":true}`,
		`{"scheme":"sourcequench","notify_every":2,"deterministic":true,"collect_trace":true}`,
		`{"mtu_bytes":-1,"wired_kbps":128,"wireless_kbps":1000,"horizon":"10m"}`,
		`{"checks":true,"stall":"2m","seed":3}`,
		`{"scheme":"ebsn","checks":true,"stall":"off","chaos":{
			"blackouts":[{"link":"wireless-down","at":"5s","length":"3s"}],
			"storms":[{"link":"wired-fwd","at":"10s","length":"2s","loss_prob":0.3}],
			"crashes":[{"at":"20s","downtime":"2s"}],
			"notify":{"loss_prob":0.5,"dup_prob":0.1,"delay_prob":0.2,"delay":"300ms"},
			"packets":[{"link":"wireless-up","corrupt_prob":0.01,"dup_prob":0.01,"reorder_prob":0.02,"reorder_delay":"50ms"}]}}`,
		`{"packet_size_bytes":10}`,
		`{"chaos":{"blackouts":[{"link":"nope","at":"1s","length":"1s"}]}}`,
		`{"chaos":null}`,
		`{"bogus":1}`,
		`{`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := parseScenario(data)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Errorf("parseScenario accepted a config that fails validation: %v\ninput: %s", verr, data)
		}
	})
}

// TestFuzzSeedsClassify pins the fuzz seed corpus' accept/reject split
// so a parser regression shows up as a plain test failure even when the
// fuzzer is not run.
func TestFuzzSeedsClassify(t *testing.T) {
	accept := []string{
		`{}`,
		`{"preset":"wan","scheme":"ebsn","packet_size_bytes":1536,"mean_bad":"4s","transfer_kb":100,"seed":7}`,
		`{"scheme":"ebsn","checks":true,"chaos":{"crashes":[{"at":"20s","downtime":"2s"}]}}`,
		`{"chaos":null}`,
	}
	reject := []string{
		`{"packet_size_bytes":10}`,
		`{"chaos":{"blackouts":[{"link":"nope","at":"1s","length":"1s"}]}}`,
		`{"bogus":1}`,
		`{`,
	}
	for _, s := range accept {
		if _, err := parseScenario([]byte(s)); err != nil {
			t.Errorf("valid scenario rejected: %v\ninput: %s", err, s)
		}
	}
	for _, s := range reject {
		if _, err := parseScenario([]byte(s)); err == nil {
			t.Errorf("invalid scenario accepted: %s", s)
		} else if strings.Contains(err.Error(), "panic") {
			t.Errorf("error leaks a panic: %v", err)
		}
	}
}
