package cell

import (
	"fmt"

	"wtcp/internal/packet"
	"wtcp/internal/units"
)

// arena is the shared packet store: every data segment travelling from a
// sender toward a sink lives in one slot here, referenced by index from
// the base-station queues and the calendar's delivery events. Slots are
// reference-counted because one packet can be alive in two places at once
// (the ARQ still holds the queue head while a copy is crossing the radio
// toward the sink; a lost link-ack leaves both references live).
//
// Storage is struct-of-arrays so a 50k-flow run touches dense slabs
// instead of pointer-chasing 100k tiny heap objects, and the free list
// makes steady-state alloc/release allocation-free once capacity has
// plateaued.
type arena struct {
	flow   []int32
	seq    []int64
	paylen []int32
	ref    []int32

	free []int32

	live   int
	peak   int
	allocs uint64

	// misuse records the first refcount violation (double free or
	// release of a free slot). It is a protocol bug in the engine, never
	// a network condition, so it is latched and surfaced at run end.
	misuse error
}

// noSlot is the nil packet reference.
const noSlot int32 = -1

// newArena returns an arena with capacity for hint packets (grown on
// demand; growth is amortized and stops once the working set plateaus).
func newArena(hint int) *arena {
	if hint < 16 {
		hint = 16
	}
	a := &arena{
		flow:   make([]int32, 0, hint),
		seq:    make([]int64, 0, hint),
		paylen: make([]int32, 0, hint),
		ref:    make([]int32, 0, hint),
		free:   make([]int32, 0, hint),
	}
	return a
}

// alloc claims a slot holding one data segment with refcount 1.
func (a *arena) alloc(flow int32, seq int64, paylen int32) int32 {
	var s int32
	if n := len(a.free); n > 0 {
		s = a.free[n-1]
		a.free = a.free[:n-1]
		a.flow[s] = flow
		a.seq[s] = seq
		a.paylen[s] = paylen
		a.ref[s] = 1
	} else {
		s = int32(len(a.flow))
		a.flow = append(a.flow, flow)
		a.seq = append(a.seq, seq)
		a.paylen = append(a.paylen, paylen)
		a.ref = append(a.ref, 1)
	}
	a.allocs++
	a.live++
	if a.live > a.peak {
		a.peak = a.live
	}
	return s
}

// incref adds one reference to a live slot.
func (a *arena) incref(s int32) {
	if a.ref[s] <= 0 {
		a.fault(s, "incref of free slot")
		return
	}
	a.ref[s]++
}

// decref drops one reference; the slot returns to the free list when the
// count reaches zero.
func (a *arena) decref(s int32) {
	if a.ref[s] <= 0 {
		a.fault(s, "double free")
		return
	}
	a.ref[s]--
	if a.ref[s] == 0 {
		a.live--
		a.free = append(a.free, s)
	}
}

// size reports the slot's on-wire size (header plus payload).
func (a *arena) size(s int32) units.ByteSize {
	return packet.HeaderSize + units.ByteSize(a.paylen[s])
}

// fault latches the first refcount violation.
func (a *arena) fault(s int32, what string) {
	if a.misuse == nil {
		a.misuse = fmt.Errorf("cell: arena %s: slot %d (flow %d seq %d)", what, s, a.flow[s], a.seq[s])
	}
}

// Live reports the number of slots with a non-zero refcount.
func (a *arena) Live() int { return a.live }

// ArenaStats summarizes arena activity for a run's Result.
type ArenaStats struct {
	// Allocs counts slot claims over the whole run.
	Allocs uint64
	// PeakLive is the maximum simultaneously-referenced slot count.
	PeakLive int
	// Capacity is the final slot-slab size.
	Capacity int
	// LiveAtEnd is the referenced-slot count after end-of-run drain; a
	// non-zero value means a leaked reference.
	LiveAtEnd int
}

func (a *arena) stats() ArenaStats {
	return ArenaStats{Allocs: a.allocs, PeakLive: a.peak, Capacity: len(a.flow), LiveAtEnd: a.live}
}
