package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"wtcp/internal/core"
	"wtcp/internal/experiment"
	"wtcp/internal/fleet"
	"wtcp/internal/scenario"
)

// Execution: turning parsed requests into engine work and engine
// outcomes into HTTP answers plus their policy consequences (cache,
// journal, breakers).

// RepResult is one replication's record in a response: the seed it ran
// under and the extracted measurements, with any retry backoff
// schedule it consumed (non-empty only when transient failures forced
// retries).
type RepResult struct {
	Seed      int64     `json:"seed"`
	Values    []float64 `json:"values"`
	BackoffMs []int64   `json:"backoff_ms,omitempty"`
}

// RunResponse is the POST /v1/run success body.
type RunResponse struct {
	Fingerprint string `json:"fingerprint"`
	// Metrics names the Values columns, in order.
	Metrics      []string    `json:"metrics"`
	Replications []RepResult `json:"replications"`
}

// runMetrics names the columns runExtract produces.
var runMetrics = []string{"throughput_kbps", "goodput", "retransmitted_kb", "timeouts"}

// QuarantineInfo describes a point whose circuit breaker tripped.
type QuarantineInfo struct {
	Class    string `json:"class"`
	Attempts int    `json:"attempts"`
	Reason   string `json:"reason"`
}

// PointResult is one sweep point in a response: exactly one of
// Replications or Quarantine is set.
type PointResult struct {
	Key          string          `json:"key"`
	Replications []RepResult     `json:"replications,omitempty"`
	Quarantine   *QuarantineInfo `json:"quarantine,omitempty"`
}

// SweepResponse is the POST /v1/sweep success body, points in the
// campaign's canonical sweep order.
type SweepResponse struct {
	Fingerprint string        `json:"fingerprint"`
	Points      []PointResult `json:"points"`
}

// errorBody is the JSON shape of every non-2xx answer.
type errorBody struct {
	Error         string `json:"error"`
	Class         string `json:"class,omitempty"`
	Fingerprint   string `json:"fingerprint,omitempty"`
	ReproDir      string `json:"repro_dir,omitempty"`
	RetryAfterSec int    `json:"retry_after_sec,omitempty"`
}

func marshalError(e errorBody) []byte {
	data, err := json.Marshal(e)
	if err != nil {
		return []byte(`{"error":"internal error"}`)
	}
	return data
}

// marshalResponse encodes a success body. These structs are
// marshalable by construction; an encode failure is an internal bug.
func marshalResponse(v any) ([]byte, outcome, bool) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, outcome{
			status: http.StatusInternalServerError,
			body:   marshalError(errorBody{Error: fmt.Sprintf("encode response: %v", err)}),
			failed: true,
		}, false
	}
	return data, outcome{}, true
}

// runQuery binds a validated run request into the serveQuery pipeline.
func (s *Server) runQuery(req RunRequest, sf scenario.File, body []byte) query {
	return query{
		kind:        "run",
		fp:          RunFingerprint(sf, req.Replications),
		class:       runClass(sf),
		journalBody: body,
		deadline:    time.Duration(req.DeadlineMS) * time.Millisecond,
		exec: func(ctx context.Context) outcome {
			return s.execRun(ctx, req, sf)
		},
	}
}

// runClass is the breaker cooldown granularity for runs: the scenario's
// shape (preset and scheme), not its exact parameters — a WAN/ebsn
// scenario that exhausts its budget predicts the same fate for its
// near-identical neighbours.
func runClass(sf scenario.File) string {
	preset, scheme := sf.Preset, sf.Scheme
	if preset == "" {
		preset = "wan"
	}
	if scheme == "" {
		scheme = "basic"
	}
	return "run/" + preset + "/" + scheme
}

// sweepQuery binds a validated sweep request into the pipeline.
func (s *Server) sweepQuery(req SweepRequest, c fleet.Campaign, body []byte) query {
	return query{
		kind:        "sweep",
		fp:          SweepFingerprint(c),
		class:       "sweep/" + strings.Join(c.Sweeps, "+"),
		journalBody: body,
		deadline:    time.Duration(req.DeadlineMS) * time.Millisecond,
		exec: func(ctx context.Context) outcome {
			return s.execSweep(ctx, c)
		},
	}
}

// engineOptions layers the server's execution policy over a request's
// result-affecting options: health telemetry, repro capture, worker
// width and retry budget defaults, and the request deadline folded
// into the per-run wall-clock ceiling (so a hung replication dies at
// the simulator's own budget check, not only at the context).
func (s *Server) engineOptions(ctx context.Context, opt experiment.Options) experiment.Options {
	opt.Health = s.health
	opt.ReproDir = s.reproDir()
	if opt.Workers == 0 {
		opt.Workers = s.cfg.Workers
	}
	if opt.Retries == 0 {
		opt.Retries = s.cfg.Retries
	}
	opt.RunBudget = opt.RunBudget.Or(deadlineBudget(ctx))
	return opt
}

// execRun runs one scenario for Replications consecutive seeds.
func (s *Server) execRun(ctx context.Context, req RunRequest, sf scenario.File) outcome {
	fp := RunFingerprint(sf, req.Replications)
	opt := s.engineOptions(ctx, experiment.Options{
		Replications: req.Replications,
		Supervise:    experiment.NewSupervisor(),
	})
	build := func(seed int64) core.Config {
		cfg, err := sf.Build()
		if err != nil {
			// ParseRunRequest already built this file once; a failure here
			// is impossible by construction.
			panic(fmt.Sprintf("serve: rebuild validated scenario: %v", err))
		}
		// The engine hands the 1-based replication index as the seed;
		// offset from the scenario's own seed so replication 1 is exactly
		// the scenario as written.
		cfg.Seed += seed - 1
		return cfg
	}
	extract := func(r *core.Result) []float64 {
		return []float64{
			r.Summary.ThroughputKbps,
			r.Summary.Goodput,
			r.Summary.RetransmittedKB(),
			float64(r.Summary.Timeouts),
		}
	}
	reps, quar, err := experiment.RunCustom(ctx, opt, "run-"+fp[:16], build, extract)
	if err != nil {
		return s.failureOutcome(ctx, fp, err)
	}
	if quar != nil {
		return s.quarantineOutcome(ctx, fp, *quar)
	}
	body, bad, ok := marshalResponse(RunResponse{
		Fingerprint:  fp,
		Metrics:      runMetrics,
		Replications: repResults(reps),
	})
	if !ok {
		return bad
	}
	return outcome{status: http.StatusOK, body: body, cacheable: true}
}

// execSweep runs a campaign point by point against the shared point
// ledger: already-settled points load instead of re-running (warm
// start across overlapping sweeps, /v1/advise, and drain/resume), and
// each fresh point is recorded the moment it settles, so a drain can
// never lose more than the point in flight.
func (s *Server) execSweep(ctx context.Context, c fleet.Campaign) outcome {
	fp := SweepFingerprint(c)
	opt, err := c.Options()
	if err != nil {
		// ParseSweepRequest validated the campaign; unreachable.
		return s.failureOutcome(ctx, fp, err)
	}
	opt = s.engineOptions(ctx, opt)
	if c.Supervise {
		opt.Supervise = experiment.NewSupervisor()
	}
	specs, err := c.Specs()
	if err != nil {
		return s.failureOutcome(ctx, fp, err)
	}
	led, err := s.pointLedger(opt)
	if err != nil {
		return outcome{
			status: http.StatusInternalServerError,
			body:   marshalError(errorBody{Error: err.Error(), Fingerprint: fp}),
			failed: true,
		}
	}
	points := make([]PointResult, 0, len(specs))
	for _, spec := range specs {
		if err := ctx.Err(); err != nil {
			// Deadline or drain mid-campaign. Every settled point above is
			// already in the ledger; only the remainder re-runs next life.
			return s.failureOutcome(ctx, fp, err)
		}
		pr, err := s.settlePoint(ctx, opt, led, spec)
		if err != nil {
			return s.failureOutcome(ctx, fp, err)
		}
		points = append(points, pr)
	}
	body, bad, ok := marshalResponse(SweepResponse{Fingerprint: fp, Points: points})
	if !ok {
		return bad
	}
	return outcome{status: http.StatusOK, body: body, cacheable: true}
}

// settlePoint returns one point's settled result, loading it from the
// shared ledger when anyone — an earlier sweep, an advise request, a
// previous server life — already computed it, and recording it
// otherwise. pointMu closes the ledger's check-then-record window so
// concurrent requests over the same option class cannot double-record
// a key.
func (s *Server) settlePoint(ctx context.Context, opt experiment.Options, led *experiment.Ledger, spec experiment.PointSpec) (PointResult, error) {
	key, err := spec.Key()
	if err != nil {
		return PointResult{}, err
	}
	s.pointMu.Lock()
	if pr, ok := settledPoint(led, key); ok {
		s.pointMu.Unlock()
		return pr, nil
	}
	s.pointMu.Unlock()

	out, err := experiment.RunPointSpec(ctx, opt, spec)
	if err != nil {
		return PointResult{}, err
	}
	if out.Quarantine != nil && out.Quarantine.Class == string(core.ClassResourceExhausted) && ctx.Err() != nil {
		// The wall-budget exhaustion was induced by the request deadline
		// (or a drain), not by the point itself: recording it would
		// poison the shared ledger with a quarantine every future
		// warm-start inherits. Surface the interruption instead.
		return PointResult{}, ctx.Err()
	}

	s.pointMu.Lock()
	defer s.pointMu.Unlock()
	if pr, ok := settledPoint(led, key); ok {
		// A concurrent request settled the key first; replications are
		// deterministic, so our result carried identical bits — drop it.
		return pr, nil
	}
	if out.Quarantine != nil {
		if err := led.PutQuarantine(*out.Quarantine); err != nil {
			return PointResult{}, err
		}
	} else if err := led.Put(key, out.Reps); err != nil {
		return PointResult{}, err
	}
	pr, _ := settledPoint(led, key)
	pr.Key = key
	return pr, nil
}

// settledPoint loads a key's recorded result, if any. Callers hold
// pointMu.
func settledPoint(led *experiment.Ledger, key string) (PointResult, bool) {
	if reps, ok := led.Reps(key); ok {
		return PointResult{Key: key, Replications: repResults(reps)}, true
	}
	for _, q := range led.Quarantined() {
		if q.Key == key {
			return PointResult{Key: key, Quarantine: &QuarantineInfo{
				Class: q.Class, Attempts: q.Attempts, Reason: q.Reason,
			}}, true
		}
	}
	return PointResult{}, false
}

// repResults decodes engine records into response form.
func repResults(reps []experiment.RepRecord) []RepResult {
	out := make([]RepResult, len(reps))
	for i, r := range reps {
		values := make([]float64, len(r.Values))
		for k, bits := range r.Values {
			values[k] = math.Float64frombits(bits)
		}
		out[i] = RepResult{Seed: r.Seed, Values: values, BackoffMs: r.Backoffs}
	}
	return out
}

// failureOutcome maps an execution error onto HTTP and policy via the
// failure taxonomy. The context state is consulted before the class:
// the deadline-derived wall-clock budget and the context expire
// together, so the same client deadline can surface as canceled or as
// resource-exhausted depending on which check fired first — and a
// class cooldown must never trip (nor a 504 turn into a 503) because
// of that race.
func (s *Server) failureOutcome(ctx context.Context, fp string, err error) outcome {
	class := core.Classify(err)
	interrupted := class == core.ClassCanceled || class == core.ClassResourceExhausted
	switch {
	case class == core.ClassProtocolBug || class == core.ClassPanic:
		// Deterministic failure: same request, same bug, every time.
		// Permanently fail the fingerprint and point at the repro bundle.
		return outcome{
			status: http.StatusUnprocessableEntity,
			body: marshalError(errorBody{
				Error:       err.Error(),
				Class:       string(class),
				Fingerprint: fp,
				ReproDir:    s.reproDir(),
			}),
			failed:     true,
			permClass:  class,
			permReason: err.Error(),
		}
	case interrupted && s.runCtx.Err() != nil:
		return s.drainedOutcome(fp)
	case interrupted && ctx.Err() != nil:
		return s.deadlineOutcome(fp, err)
	case class == core.ClassResourceExhausted:
		// The request's own budget (scenario or campaign block) exhausted
		// within the deadline: fail the request and cool the whole
		// scenario class down at admission.
		return outcome{
			status: http.StatusUnprocessableEntity,
			body: marshalError(errorBody{
				Error:       err.Error(),
				Class:       string(class),
				Fingerprint: fp,
			}),
			failed:    true,
			tripClass: true,
		}
	default:
		return outcome{
			status: http.StatusInternalServerError,
			body: marshalError(errorBody{
				Error:       err.Error(),
				Class:       string(class),
				Fingerprint: fp,
			}),
			failed: true,
		}
	}
}

// drainedOutcome answers work interrupted by a graceful drain: it is
// journaled and will resume in the next server life; the client polls
// /v1/result for the answer.
func (s *Server) drainedOutcome(fp string) outcome {
	sec := s.retryAfterSec()
	return outcome{
		status: http.StatusServiceUnavailable,
		body: marshalError(errorBody{
			Error:         "server drained mid-execution; the request is journaled and resumes on restart — poll /v1/result/" + fp,
			Class:         string(core.ClassCanceled),
			Fingerprint:   fp,
			RetryAfterSec: sec,
		}),
		retryAfter:  sec,
		keepJournal: true,
	}
}

// deadlineOutcome answers work killed by the request's own deadline.
func (s *Server) deadlineOutcome(fp string, err error) outcome {
	return outcome{
		status: http.StatusGatewayTimeout,
		body: marshalError(errorBody{
			Error:       fmt.Sprintf("request deadline expired: %v", err),
			Class:       string(core.ClassCanceled),
			Fingerprint: fp,
		}),
		failed:          true,
		deadlineExpired: true,
	}
}

// quarantineOutcome maps a supervised breaker trip onto HTTP: the
// request fails with the quarantine record, and resource exhaustion
// additionally cools its scenario class down. The same context guards
// as failureOutcome apply — a quarantine whose budget exhaustion was
// induced by the request deadline (or a drain) is the deadline's
// outcome, not the scenario's.
func (s *Server) quarantineOutcome(ctx context.Context, fp string, quar experiment.Quarantine) outcome {
	exhausted := quar.Class == string(core.ClassResourceExhausted)
	if exhausted && s.runCtx.Err() != nil {
		return s.drainedOutcome(fp)
	}
	if exhausted && ctx.Err() != nil {
		return s.deadlineOutcome(fp, fmt.Errorf("%s", quar.Reason))
	}
	return outcome{
		status: http.StatusUnprocessableEntity,
		body: marshalError(errorBody{
			Error:       fmt.Sprintf("quarantined after %d attempts: %s", quar.Attempts, quar.Reason),
			Class:       quar.Class,
			Fingerprint: fp,
		}),
		failed:    true,
		tripClass: exhausted,
	}
}
