package core

import (
	"errors"
	"fmt"

	"wtcp/internal/bs"
	"wtcp/internal/errmodel"
	"wtcp/internal/link"
	"wtcp/internal/node"
	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

// MultiFlowConfig runs several simultaneous transfers through the single
// FH—BS—MH path of the paper's topology (all flows share the wired link,
// the base station, and the radio — unlike internal/multiconn, where each
// mobile fades independently behind a scheduler).
//
// The interesting question it answers: does EBSN still work with several
// sources? It does, and still without per-connection state — the failing
// unit's own header names the source to notify.
type MultiFlowConfig struct {
	// Base supplies every per-flow parameter (scheme, packet size,
	// channel, transfer size...). Snoop and SplitConnection are not
	// supported here (both are inherently single-connection designs in
	// this repository).
	Base Config
	// Flows is the number of simultaneous transfers.
	Flows int
}

// FlowResult is one flow's outcome.
type FlowResult struct {
	Completed      bool
	ElapsedSec     float64
	ThroughputKbps float64
	Timeouts       uint64
	EBSNResets     uint64
}

// MultiFlowResult aggregates a run.
type MultiFlowResult struct {
	Completed     bool
	PerFlow       []FlowResult
	AggregateKbps float64
	// Fairness is Jain's index across flow throughputs.
	Fairness float64
	BS       bs.Stats
}

// RunMultiFlow executes the scenario.
func RunMultiFlow(cfg MultiFlowConfig) (*MultiFlowResult, error) {
	if cfg.Flows <= 0 {
		return nil, errors.New("core: need at least one flow")
	}
	if cfg.Base.Scheme == bs.Snoop || cfg.Base.Scheme == bs.SplitConnection {
		return nil, fmt.Errorf("core: multi-flow does not support the %v scheme", cfg.Base.Scheme)
	}
	if err := cfg.Base.Validate(); err != nil {
		return nil, err
	}
	base := cfg.Base
	if base.Horizon <= 0 {
		base.Horizon = DefaultHorizon
	}

	s := sim.New()
	ids := &packet.IDGen{}
	rng := sim.NewRNG(base.Seed)
	channel, err := errmodel.NewMarkov(base.Channel, rng.Split())
	if err != nil {
		return nil, err
	}

	var (
		station *bs.BaseStation
		mobile  *node.Mobile
		senders []*tcp.Sender
		sinks   []*tcp.Sink
	)

	wiredFwd, err := link.New(s, link.Config{
		Name: "wired-fwd", Rate: base.WiredRate, Delay: base.WiredDelay, QueueLimit: 50,
	}, nil, func(p *packet.Packet) { station.FromWired(p) })
	if err != nil {
		return nil, err
	}
	wiredRev, err := link.New(s, link.Config{
		Name: "wired-rev", Rate: base.WiredRate, Delay: base.WiredDelay, QueueLimit: 50,
	}, nil, func(p *packet.Packet) {
		if p.Conn >= 0 && p.Conn < len(senders) {
			senders[p.Conn].Receive(p)
		}
	})
	if err != nil {
		return nil, err
	}
	wirelessDown, err := link.New(s, link.Config{
		Name: "wireless-down", Rate: base.WirelessRate, Delay: base.WirelessDelay,
		Overhead: base.WirelessOverhead, Channel: channel,
	}, rng.Split(), func(p *packet.Packet) { mobile.Receive(p) })
	if err != nil {
		return nil, err
	}
	wirelessUp, err := link.New(s, link.Config{
		Name: "wireless-up", Rate: base.WirelessRate, Delay: base.WirelessDelay,
		Overhead: base.WirelessOverhead, Channel: channel,
	}, rng.Split(), func(p *packet.Packet) { station.FromWireless(p) })
	if err != nil {
		return nil, err
	}

	arqCfg := base.ARQ
	if arqCfg.AckTimeout <= 0 {
		arqCfg.AckTimeout = deriveAckTimeout(wirelessDown, wirelessUp)
	}
	arqCfg = arqCfg.WithDefaults()
	station, err = bs.New(s, bs.Config{
		Scheme:      base.Scheme,
		MTU:         base.MTU,
		ARQ:         arqCfg,
		Snoop:       base.Snoop,
		NotifyEvery: base.NotifyEvery,
		// The hold queue is shared: scale it with the flow count so the
		// admission pressure per flow matches the single-flow setup.
		QueueLimit: 50 * cfg.Flows,
	}, ids, rng.Split(), wirelessDown, func(p *packet.Packet) { wiredRev.Send(p) })
	if err != nil {
		return nil, err
	}

	// One mobile host; reassembled traffic dispatches to per-flow sinks.
	mobile, err = node.NewMobileDeliver(s, node.MobileConfig{
		LinkAcks:       base.Scheme.UsesLinkAcks(),
		ReorderTimeout: deriveReorderTimeout(arqCfg),
	}, ids, func(p *packet.Packet) {
		if p.Conn >= 0 && p.Conn < len(sinks) {
			sinks[p.Conn].Receive(p)
		}
	}, func(p *packet.Packet) { wirelessUp.Send(p) })
	if err != nil {
		return nil, err
	}

	for i := 0; i < cfg.Flows; i++ {
		i := i
		sink, err := tcp.NewSink(s, base.Window, ids, func(p *packet.Packet) {
			p.Conn = i
			wirelessUp.Send(p)
		})
		if err != nil {
			return nil, err
		}
		sinks = append(sinks, sink)
		sender, err := tcp.NewSender(s, tcp.Config{
			MSS:         base.MSS(),
			Window:      base.Window,
			Total:       base.TransferSize,
			Granularity: base.Granularity,
			InitialRTO:  base.InitialRTO,
			Variant:     base.Variant,
			SACK:        base.SACK,
		}, ids, func(p *packet.Packet) {
			p.Conn = i
			wiredFwd.Send(p)
		})
		if err != nil {
			return nil, err
		}
		senders = append(senders, sender)
	}

	for _, snd := range senders {
		snd.Start()
	}
	allDone := func() bool {
		for _, snd := range senders {
			if !snd.Done() {
				return false
			}
		}
		return true
	}
	for !allDone() && s.Now() < base.Horizon {
		if ok, err := s.Step(); !ok || err != nil {
			break
		}
	}

	res := &MultiFlowResult{Completed: allDone(), BS: station.Stats()}
	var sum, sumSq float64
	for i, snd := range senders {
		elapsed := snd.FinishedAt()
		if !snd.Done() {
			elapsed = s.Now()
		}
		tput := units.ThroughputKbps(base.TransferSize, elapsed)
		st := snd.Stats()
		res.PerFlow = append(res.PerFlow, FlowResult{
			Completed:      snd.Done(),
			ElapsedSec:     elapsed.Seconds(),
			ThroughputKbps: tput,
			Timeouts:       st.Timeouts,
			EBSNResets:     st.EBSNResets,
		})
		res.AggregateKbps += tput
		sum += tput
		sumSq += tput * tput
		_ = i
	}
	if n := float64(cfg.Flows); sumSq > 0 {
		res.Fairness = sum * sum / (n * sumSq)
	}
	return res, nil
}
