// Package core is the library's composition layer: it wires the paper's
// Figure 2 topology — a TCP source in a fixed host (FH), a base station
// (BS) bridging a wired and a wireless link, and a TCP sink in a mobile
// host (MH) — and runs one bulk transfer under a chosen base-station
// scheme, returning every measurement the evaluation needs.
//
//	FH ──wired──▶ BS ──wireless──▶ MH
//	FH ◀─wired─── BS ◀─wireless─── MH
//
// Presets reproduce the paper's two environments: a wide-area network
// (56 kbps wire, 19.2 kbps radio with 1.5x overhead, 128-byte MTU, 4 KB
// window, 100 KB transfer) and a local-area network (10 Mbps wire, 2 Mbps
// radio, no fragmentation, 64 KB window, 4 MB transfer).
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/chaos"
	"wtcp/internal/errmodel"
	"wtcp/internal/link"
	"wtcp/internal/metrics"
	"wtcp/internal/node"
	"wtcp/internal/oracle"
	"wtcp/internal/packet"
	"wtcp/internal/queue"
	"wtcp/internal/sim"
	"wtcp/internal/tcp"
	"wtcp/internal/trace"
	"wtcp/internal/units"
)

// Config fully describes one simulation run.
type Config struct {
	// Scheme selects the base-station behaviour.
	Scheme bs.Scheme
	// PacketSize is the wired-network packet size (payload + 40-byte
	// header) — the paper's swept parameter, 128..1536 bytes.
	PacketSize units.ByteSize
	// TransferSize is the bulk payload to move end to end.
	TransferSize units.ByteSize
	// Window is the receiver's advertised window.
	Window units.ByteSize

	// WiredRate/WiredDelay parameterize the FH-BS link (both directions).
	WiredRate  units.BitRate
	WiredDelay time.Duration
	// WirelessRate/WirelessDelay/WirelessOverhead parameterize the BS-MH
	// link (both directions). Overhead is the on-air byte multiplier
	// (1.5 in the paper's WAN).
	WirelessRate     units.BitRate
	WirelessDelay    time.Duration
	WirelessOverhead float64
	// MTU is the wireless fragmentation threshold; zero disables
	// fragmentation.
	MTU units.ByteSize

	// Channel is the burst-error model for the wireless hop. Both
	// directions share one channel process by default (a fade hits the
	// medium); see UplinkChannel for asymmetry.
	Channel errmodel.Config
	// UplinkChannel, when non-nil, gives the MH->BS direction its own
	// independent error process — the paper notes wireless errors are
	// "highly sensitive to direction of propagation". Nil shares the
	// downlink's process.
	UplinkChannel *errmodel.Config

	// ARQ and Snoop tune the base station. Zero values use defaults; the
	// ARQ acknowledgment timeout, if unset, is derived from the link
	// parameters.
	ARQ   bs.ARQConfig
	Snoop bs.SnoopConfig

	// TCP tuning. Zero values use the paper's defaults (100 ms clock,
	// 3 s initial RTO, Tahoe, per-segment ACKs).
	Granularity time.Duration
	InitialRTO  time.Duration
	Variant     tcp.Variant
	// DelayedAcks enables RFC 1122 delayed acknowledgments at the sink
	// (an ablation; the paper's ns sink acks every segment).
	DelayedAcks bool
	// ECN enables congestion marking at the wired queue (CE on packets
	// admitted past half occupancy) with [Floyd 94] window-halving at
	// the source — the §6 future-work interaction study with EBSN.
	ECN bool
	// NotifyEvery thins the EBSN/quench stream to every Nth failed
	// attempt (0/1 = the paper's every-attempt behaviour).
	NotifyEvery int
	// SACK enables selective acknowledgments at both endpoints (an
	// ablation; the paper's TCP predates RFC 2018). It mitigates the
	// go-back-N cost of multi-loss windows — the TCP-side alternative to
	// pushing recovery into the base station.
	SACK bool

	// CrossTraffic injects competing load on the wired forward link —
	// the congested-wire scenario the paper defers to future work
	// ("we are separately studying the impact of congestion in the wired
	// network on the effectiveness of EBSN"). Zero value = no cross
	// traffic.
	CrossTraffic CrossTraffic

	// Chaos, when non-nil, injects the configured faults — link
	// blackouts, loss storms, base-station crashes, notification faults,
	// and per-packet corruption/duplication/reordering — on top of the
	// scenario. All chaos randomness derives from Seed, so a chaos run is
	// reproducible bit-for-bit. A nil or empty plan injects nothing.
	Chaos *chaos.Config

	// Checks enables periodic runtime invariant checking: sender window
	// and sequence consistency, sequence-number monotonicity, packet
	// conservation on every hop, and the event-heap's own structure. A
	// violation aborts the run with an error — it means a protocol bug,
	// not a network condition. CheckInterval tunes the virtual-time period
	// (default 1 s).
	Checks        bool
	CheckInterval time.Duration
	// Stall configures the no-progress watchdog: if no payload byte is
	// newly acknowledged for this much virtual time, the run is aborted
	// with a diagnostic snapshot instead of burning events until the
	// horizon. Zero arms the watchdog at DefaultStall whenever Checks or
	// Chaos are active (chaos can wedge a transfer by design); a negative
	// value disables it.
	Stall time.Duration
	// Budget bounds the run's resource consumption: fired events (the
	// same-instant livelock guard the watchdog cannot provide), virtual
	// time, wall-clock time, and heap bytes. Exhaustion halts the run
	// with a *sim.BudgetError as the run error. The zero value imposes
	// no ceilings; the experiment engine layers its own defaults on top
	// (see experiment.Options). The budget reads no simulation state, so
	// a run that stays within it is bit-identical to an unbudgeted run.
	Budget sim.Budget

	// Seed drives all randomness in the run (channel, corruption draws,
	// ARQ backoff).
	Seed int64
	// Horizon caps virtual time as a runaway guard; zero uses a generous
	// default.
	Horizon time.Duration
	// CollectTrace records the Figure 3-5 packet trace.
	CollectTrace bool
	// Oracle enables the streaming conformance checker: every trace event
	// is validated against the Tahoe sender state machine, the link-layer
	// ARQ contract, and the EBSN/quench notification rules as the run
	// executes (see internal/oracle). A violation halts the run and is
	// returned as the run error, naming the broken rule and the event
	// index. Orthogonal to CollectTrace: the oracle taps the event stream
	// without retaining it.
	Oracle bool
}

// DefaultHorizon bounds a run that fails to complete (e.g. a pathological
// parameter choice); generous relative to the paper's ~minute transfers.
const DefaultHorizon = 4 * time.Hour

// DefaultStall is the watchdog's default no-progress window. Generous
// relative to every legitimate quiet period in the paper's scenarios (the
// longest backed-off RTO is 64 s and mean fades are seconds), so only a
// genuinely wedged run trips it.
const DefaultStall = 5 * time.Minute

// CrossTraffic describes Poisson background load sharing the wired
// forward link's queue with the connection under study. The packets are
// routed elsewhere (they consume wired bandwidth and queue slots, then
// leave at the base station), so their only effect is congestion: added
// queueing delay and drop pressure on the studied connection.
type CrossTraffic struct {
	// Rate is the average offered load.
	Rate units.BitRate
	// PacketSize is the cross-traffic packet size (default 576 bytes).
	PacketSize units.ByteSize
}

// enabled reports whether any load is configured.
func (c CrossTraffic) enabled() bool { return c.Rate > 0 }

// withDefaults fills the packet size.
func (c CrossTraffic) withDefaults() CrossTraffic {
	if c.PacketSize <= 0 {
		c.PacketSize = 576
	}
	return c
}

// crossConn marks cross-traffic packets; the base-station side discards
// them after they have crossed (and congested) the wired link.
const crossConn = -1

// Paper constants.
const (
	// PaperHeader is the TCP/IP header size (40 bytes).
	PaperHeader = packet.HeaderSize
	// PaperWANPacketDefault is the IP default datagram size the paper
	// highlights (576 bytes).
	PaperWANPacketDefault units.ByteSize = 576
)

// WAN returns the paper's wide-area configuration for a given scheme,
// wired packet size, and mean bad-period length.
func WAN(scheme bs.Scheme, packetSize units.ByteSize, meanBad time.Duration) Config {
	return Config{
		Scheme:           scheme,
		PacketSize:       packetSize,
		TransferSize:     100 * units.KB,
		Window:           4 * units.KB,
		WiredRate:        56 * units.Kbps,
		WiredDelay:       50 * time.Millisecond,
		WirelessRate:     link.BitRateWirelessWAN,
		WirelessDelay:    5 * time.Millisecond,
		WirelessOverhead: 1.5,
		MTU:              128,
		Channel:          errmodel.PaperWAN(meanBad),
		Seed:             1,
	}
}

// LAN returns the paper's local-area configuration for a given scheme and
// mean bad-period length (packet size fixed at 1536 bytes, no
// fragmentation).
func LAN(scheme bs.Scheme, meanBad time.Duration) Config {
	return Config{
		Scheme:        scheme,
		PacketSize:    1536,
		TransferSize:  4 * units.MB,
		Window:        64 * units.KB,
		WiredRate:     10 * units.Mbps,
		WiredDelay:    time.Millisecond,
		WirelessRate:  2 * units.Mbps,
		WirelessDelay: time.Millisecond,
		MTU:           0,
		Channel:       errmodel.PaperLAN(meanBad),
		// LAN link-protocol timing. The source's RTO sits at its 200 ms
		// floor on a LAN, so the EBSN stream (one per failed attempt)
		// must arrive well inside 200 ms: short ack timeouts and short
		// backoffs give a ~60-80 ms per-unit retry cycle. RTmax = 13 is
		// CDPD's wide-area constant; at this cycle it would give up after
		// ~1 s, inside ordinary fades, so the LAN preset allows 64
		// retransmissions (~5 s of persistence, outlasting the paper's
		// 0.4-1.6 s mean fades).
		ARQ: bs.ARQConfig{
			RTmax:      64,
			BackoffMax: 100 * time.Millisecond,
		},
		Seed: 1,
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	switch {
	case c.PacketSize <= PaperHeader:
		return fmt.Errorf("core: packet size %d does not exceed the %d-byte header", c.PacketSize, PaperHeader)
	case c.TransferSize <= 0:
		return errors.New("core: nothing to transfer")
	case c.Window < c.PacketSize-PaperHeader:
		return errors.New("core: window below one segment")
	case c.WiredRate <= 0 || c.WirelessRate <= 0:
		return errors.New("core: links need positive rates")
	case c.WirelessOverhead < 0:
		return errors.New("core: negative wireless overhead")
	case c.MTU < 0:
		return errors.New("core: negative MTU")
	}
	if err := c.Chaos.Validate(); err != nil {
		return err
	}
	if c.Scheme == bs.SplitConnection && c.Chaos.Enabled() {
		// The split topology has no single base-station agent to crash and
		// relays rather than forwards, so the fault plan's link names do
		// not mean the same thing there.
		return errors.New("core: fault injection is not supported for split-connection runs")
	}
	return c.Channel.Validate()
}

// MSS reports the TCP payload per segment implied by the packet size.
func (c Config) MSS() units.ByteSize { return c.PacketSize - PaperHeader }

// EffectiveWirelessRate reports the post-overhead data rate of the
// wireless hop (12.8 kbps for the paper's WAN radio).
func (c Config) EffectiveWirelessRate() units.BitRate {
	if c.WirelessOverhead <= 1 {
		return c.WirelessRate
	}
	return units.BitRate(float64(c.WirelessRate) / c.WirelessOverhead)
}

// TheoreticalMaxKbps reports the paper's tput_th: the effective wireless
// rate scaled by the channel's good-time fraction.
func (c Config) TheoreticalMaxKbps() float64 {
	return float64(c.EffectiveWirelessRate()) / 1000 * c.Channel.GoodFraction()
}

// Result carries everything measured in one run.
type Result struct {
	// Config echoes the run parameters.
	Config Config
	// Completed reports whether the transfer finished before the horizon.
	Completed bool
	// Summary holds the paper's metrics (throughput, goodput,
	// retransmitted data).
	Summary metrics.Summary
	// Sender, Sink, BS, Mobile, WirelessDown, WirelessUp expose raw
	// component counters for deeper analysis.
	Sender       tcp.Stats
	Sink         tcp.SinkStats
	BS           bs.Stats
	Mobile       node.MobileStats
	WirelessDown link.Stats
	WirelessUp   link.Stats
	// Trace and Cwnd are non-nil when Config.CollectTrace was set: the
	// packet trace of Figures 3-5 and the congestion-window evolution
	// series.
	Trace *trace.Trace
	Cwnd  *trace.CwndSeries

	// Events counts the kernel events the run fired — the engine's
	// health telemetry aggregates it into an events/sec rate.
	Events uint64

	// Aborted marks a run halted by the no-progress watchdog;
	// AbortReason carries its diagnostic snapshot. An aborted run's
	// Summary reflects progress up to the abort, like a horizon-capped
	// run's.
	Aborted     bool
	AbortReason string
	// Chaos holds the injected-fault counters when Config.Chaos was
	// active (nil otherwise).
	Chaos *chaos.Stats

	// SplitWireless holds the base station's wireless-side sender
	// counters for split-connection runs (nil otherwise); SplitWiredDone
	// is when the fixed host's half finished — before the mobile host
	// had the data, the end-to-end-semantics violation the paper points
	// out.
	SplitWireless  *tcp.Stats
	SplitWiredDone time.Duration

	// SnoopCacheLen is the snoop cache's occupancy when the run ended
	// (always zero for non-snoop schemes). A completed transfer must
	// drain it to zero — every cached copy is eventually acked or
	// evicted at the retransmission cap.
	SnoopCacheLen int
}

// PanicError reports a simulation that panicked. RunContext converts the
// panic to an error so a sweep can retry or skip the replication — and
// emit a reproduction bundle — instead of crashing the whole campaign.
type PanicError struct {
	// Value is the panic value, stringified.
	Value string
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string { return "core: run panicked: " + e.Value }

// Run executes one simulation and returns its measurements.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: the simulation polls
// ctx at event boundaries and halts cleanly between events once it ends,
// returning an error that unwraps to ctx.Err(). A panic anywhere inside
// the run is recovered into a *PanicError instead of taking down the
// caller.
func RunContext(ctx context.Context, cfg Config) (res *Result, err error) {
	// pooled is the simulator to return to the kernel pool when the run
	// exits normally. A panicked run never releases: the simulator may be
	// mid-callback with who-knows-what half-applied, and the pool must
	// only ever hold simulators whose Reset is known safe.
	var pooled *sim.Simulator
	defer func() {
		if p := recover(); p != nil {
			res = nil
			err = &PanicError{Value: fmt.Sprint(p), Stack: string(debug.Stack())}
			return
		}
		if pooled != nil {
			sim.Release(pooled)
		}
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = DefaultHorizon
	}
	if cfg.Scheme == bs.SplitConnection {
		s := sim.Acquire()
		pooled = s
		s.SetBudget(cfg.Budget)
		return runSplit(ctx, cfg, s)
	}

	tp, err := newTopology(cfg, false)
	if err != nil {
		return nil, err
	}
	pooled = tp.sim
	tp.sim.Bind(ctx)

	var tr *trace.Trace
	var cw *trace.CwndSeries
	if cfg.CollectTrace || cfg.Oracle {
		tr = trace.New(cfg.MSS())
		hooks := tr.Hooks(tp.sim.Now)
		if cfg.CollectTrace {
			cw = trace.NewCwndSeries()
			hooks.OnCwnd = cw.Hook(tp.sim.Now)
		}
		tp.sender.SetHooks(hooks)
		if cfg.Oracle {
			tp.attachOracle(cfg, tr)
		}
	}

	if cfg.Checks {
		tp.registerInvariants()
		tp.sim.EnableChecks(cfg.CheckInterval)
	}
	if stall := cfg.stallWindow(); stall > 0 {
		tp.sim.StartWatchdog(stall, tp.sender.SndUna, tp.snapshot)
	}

	tp.sender.Start()
	for !tp.sender.Done() && tp.sim.Now() < cfg.Horizon && tp.sim.Failure() == nil {
		if ok, err := tp.sim.Step(); !ok || err != nil {
			break
		}
	}

	if f := tp.sim.Failure(); f != nil {
		var stall *sim.StallError
		if !errors.As(f, &stall) {
			// An invariant violation is a protocol bug and a cancellation
			// is the caller's deadline, not a network condition: surface
			// either as a run error (a *CancelError unwraps to ctx.Err()).
			return nil, f
		}
		res := tp.result(cfg)
		res.Aborted = true
		res.AbortReason = stall.Error()
		if cfg.CollectTrace {
			res.Trace = tr
			res.Cwnd = cw
		}
		return res, nil
	}

	res = tp.result(cfg)
	if cfg.CollectTrace {
		res.Trace = tr
		res.Cwnd = cw
	}
	return res, nil
}

// stallWindow resolves the watchdog window: explicit wins, negative
// disables, zero auto-arms at DefaultStall when checks or chaos are active
// (a fault plan can wedge a transfer by design).
func (c Config) stallWindow() time.Duration {
	switch {
	case c.Stall > 0:
		return c.Stall
	case c.Stall < 0:
		return 0
	case c.Checks || c.Chaos.Enabled():
		return DefaultStall
	default:
		return 0
	}
}

// topology is the assembled Figure 2 network, reused by the bulk runner
// (Run) and the application-workload runners (RunWeb, RunTelnet).
type topology struct {
	sim    *sim.Simulator
	ids    *packet.IDGen
	sender *tcp.Sender
	sink   *tcp.Sink
	bs     *bs.BaseStation
	mobile *node.Mobile

	wiredFwd, wiredRev       *link.Link
	wirelessDown, wirelessUp *link.Link

	// arq and snoop are the resolved base-station configurations
	// (defaults applied), kept so the conformance oracle can mirror the
	// station's attempt caps.
	arq   bs.ARQConfig
	snoop bs.SnoopConfig

	chaos *chaos.Injector
}

// attachOracle subscribes a conformance checker to the trace's event
// stream and wires the base-station and mobile-host instrumentation that
// feeds it. The first violation halts the run through the simulator's
// failure channel, exactly like a periodic invariant check.
func (tp *topology) attachOracle(cfg Config, tr *trace.Trace) {
	checker := oracle.New(oracle.Config{
		Variant:      cfg.Variant,
		MSS:          cfg.MSS(),
		Window:       cfg.Window,
		RTmax:        tp.arq.RTmax,
		SnoopMaxRetx: tp.snoop.MaxLocalRetx,
		// The run has a single connection, so notification counting is
		// exact: every EBSN reset at the source must be backed by an
		// emitted notification, and every notification by a link failure.
		TrackNotifications: true,
	})
	tp.bs.SetHooks(tr.BSHooks(tp.sim.Now))
	tp.mobile.SetSequencedHook(tr.MobileHook(tp.sim.Now))
	tr.SetObserver(func(idx int, e trace.Event) {
		if v := checker.Observe(idx, e); v != nil {
			tp.sim.Fail("oracle", v)
		}
	})
}

// armOracle attaches the conformance checker for runners that do not
// otherwise build a trace (the application-workload paths): a throwaway
// trace is created purely as the oracle's event tap. No-op when
// cfg.Oracle is unset.
func (tp *topology) armOracle(cfg Config) {
	if !cfg.Oracle {
		return
	}
	tr := trace.New(cfg.MSS())
	tp.sender.SetHooks(tr.Hooks(tp.sim.Now))
	tp.attachOracle(cfg, tr)
}

// result assembles the standard measurement record.
func (tp *topology) result(cfg Config) *Result {
	res := &Result{
		Config:       cfg,
		Completed:    tp.sender.Done(),
		Events:       tp.sim.Fired(),
		Sender:       tp.sender.Stats(),
		Sink:         tp.sink.Stats(),
		BS:           tp.bs.Stats(),
		Mobile:       tp.mobile.Stats(),
		WirelessDown: tp.wirelessDown.Stats(),
		WirelessUp:   tp.wirelessUp.Stats(),
	}
	if tp.chaos != nil {
		st := tp.chaos.Stats()
		res.Chaos = &st
	}
	res.SnoopCacheLen = tp.bs.SnoopCacheLen()
	elapsed := tp.sender.FinishedAt()
	if !res.Completed {
		elapsed = tp.sim.Now()
	}
	res.Summary = metrics.Summarize(cfg.TransferSize, cfg.MSS(), res.Sender, elapsed)
	return res
}

// newTopology wires the FH-BS-MH network. streaming opens the sender with
// no data available (application workloads grant bytes as they produce
// them).
func newTopology(cfg Config, streaming bool) (*topology, error) {
	// Acquire from the kernel pool so replication sweeps reuse the event
	// heap slab and free list instead of regrowing them per run. Runners
	// release the simulator when they finish (see RunContext, RunWeb,
	// RunTelnet).
	s := sim.Acquire()
	s.SetBudget(cfg.Budget)
	ids := &packet.IDGen{}
	rng := sim.NewRNG(cfg.Seed)

	// The chaos RNG splits off first — and only when a fault plan is
	// active — so every non-chaos run keeps exactly the draw sequences it
	// had before fault injection existed.
	var chaosRNG *sim.RNG
	if cfg.Chaos.Enabled() {
		chaosRNG = rng.Split()
	}

	var channel errmodel.Channel
	channel, err := errmodel.NewMarkov(cfg.Channel, rng.Split())
	if err != nil {
		return nil, err
	}
	var upChannel errmodel.Channel = channel
	if cfg.UplinkChannel != nil {
		up, err := errmodel.NewMarkov(*cfg.UplinkChannel, rng.Split())
		if err != nil {
			return nil, err
		}
		upChannel = up
	}
	// Blackout windows ride the links' error channels as forced-BER
	// overlays; outside the windows the overlay adds no randomness draws,
	// so in-run behaviour away from the faults is unperturbed.
	if channel, err = cfg.Chaos.OverlayChannel(chaos.WirelessDown, channel); err != nil {
		return nil, err
	}
	if upChannel, err = cfg.Chaos.OverlayChannel(chaos.WirelessUp, upChannel); err != nil {
		return nil, err
	}

	// Forward declarations so the delivery closures can reference agents
	// wired later.
	var (
		station *bs.BaseStation
		mobile  *node.Mobile
		sender  *tcp.Sender
	)

	// Links. Queue limits: the wired hop models a router queue; the
	// wireless queues are managed by the base station itself (ARQ window
	// or plain FIFO), so they stay unbounded here.
	var red *queue.REDConfig
	var wiredRNG *sim.RNG
	if cfg.ECN {
		// RED on the wired router queue: thresholds at 20%/70% of the
		// 50-packet buffer, classic 10% ceiling probability. The weight
		// is coarse because arrivals are slow at 56 kbps.
		red = &queue.REDConfig{MinThreshold: 10, MaxThreshold: 35, MaxP: 0.1, Weight: 0.2}
		wiredRNG = rng.Split()
	}
	// A wired hop is error-free unless a blackout targets it, in which
	// case it gets a nil-based overlay channel (and an RNG to drive the
	// corruption draws inside the windows).
	var wiredFwdCh errmodel.Channel
	if cfg.Chaos.NeedsChannel(chaos.WiredFwd) {
		if wiredFwdCh, err = cfg.Chaos.OverlayChannel(chaos.WiredFwd, nil); err != nil {
			return nil, err
		}
		if wiredRNG == nil {
			wiredRNG = rng.Split()
		}
	}
	wiredFwd, err := link.New(s, link.Config{
		Name: "wired-fwd", Rate: cfg.WiredRate, Delay: cfg.WiredDelay, QueueLimit: 50,
		RED: red, Channel: wiredFwdCh,
	}, wiredRNG, func(p *packet.Packet) {
		if p.Conn == crossConn {
			return // background traffic exits at the base station
		}
		station.FromWired(p)
	})
	if err != nil {
		return nil, err
	}
	if cfg.CrossTraffic.enabled() {
		startCrossTraffic(s, cfg.CrossTraffic.withDefaults(), ids, rng.Split(), wiredFwd, cfg.Horizon)
	}
	var wiredRevCh errmodel.Channel
	var wiredRevRNG *sim.RNG
	if cfg.Chaos.NeedsChannel(chaos.WiredRev) {
		if wiredRevCh, err = cfg.Chaos.OverlayChannel(chaos.WiredRev, nil); err != nil {
			return nil, err
		}
		wiredRevRNG = rng.Split()
	}
	wiredRev, err := link.New(s, link.Config{
		Name: "wired-rev", Rate: cfg.WiredRate, Delay: cfg.WiredDelay, QueueLimit: 50,
		Channel: wiredRevCh,
	}, wiredRevRNG, func(p *packet.Packet) { sender.Receive(p) })
	if err != nil {
		return nil, err
	}
	wirelessDown, err := link.New(s, link.Config{
		Name: "wireless-down", Rate: cfg.WirelessRate, Delay: cfg.WirelessDelay,
		Overhead: cfg.WirelessOverhead, Channel: channel,
	}, rng.Split(), func(p *packet.Packet) { mobile.Receive(p) })
	if err != nil {
		return nil, err
	}
	wirelessUp, err := link.New(s, link.Config{
		Name: "wireless-up", Rate: cfg.WirelessRate, Delay: cfg.WirelessDelay,
		Overhead: cfg.WirelessOverhead, Channel: upChannel,
	}, rng.Split(), func(p *packet.Packet) { station.FromWireless(p) })
	if err != nil {
		return nil, err
	}

	// Base station. ARQ defaults are resolved here so the mobile host's
	// reorder timer can be sized from the same values.
	arqCfg := cfg.ARQ
	if arqCfg.AckTimeout <= 0 {
		arqCfg.AckTimeout = deriveAckTimeout(wirelessDown, wirelessUp)
	}
	arqCfg = arqCfg.WithDefaults()
	snoopCfg := cfg.Snoop.WithDefaults()
	station, err = bs.New(s, bs.Config{
		Scheme:      cfg.Scheme,
		MTU:         cfg.MTU,
		ARQ:         arqCfg,
		Snoop:       snoopCfg,
		NotifyEvery: cfg.NotifyEvery,
	}, ids, rng.Split(), wirelessDown, func(p *packet.Packet) { wiredRev.Send(p) })
	if err != nil {
		return nil, err
	}

	// Mobile host: sink + reassembly + link acks.
	sink, err := tcp.NewSink(s, cfg.Window, ids, func(p *packet.Packet) { wirelessUp.Send(p) })
	if err != nil {
		return nil, err
	}
	if cfg.DelayedAcks {
		sink.EnableDelayedAcks(0)
	}
	if cfg.SACK || cfg.Variant.Scoreboard() {
		sink.EnableSACK()
	}
	mobile, err = node.NewMobile(s, node.MobileConfig{
		LinkAcks:       cfg.Scheme.UsesLinkAcks(),
		ReorderTimeout: deriveReorderTimeout(arqCfg),
	}, ids, sink, func(p *packet.Packet) { wirelessUp.Send(p) })
	if err != nil {
		return nil, err
	}

	// Fixed host: the TCP source.
	sender, err = tcp.NewSender(s, tcp.Config{
		MSS:         cfg.MSS(),
		Window:      cfg.Window,
		Total:       cfg.TransferSize,
		Granularity: cfg.Granularity,
		InitialRTO:  cfg.InitialRTO,
		Variant:     cfg.Variant,
		SACK:        cfg.SACK,
		Streaming:   streaming,
	}, ids, func(p *packet.Packet) { wiredFwd.Send(p) })
	if err != nil {
		return nil, err
	}

	tp := &topology{
		sim:          s,
		ids:          ids,
		sender:       sender,
		sink:         sink,
		bs:           station,
		mobile:       mobile,
		wiredFwd:     wiredFwd,
		wiredRev:     wiredRev,
		wirelessDown: wirelessDown,
		wirelessUp:   wirelessUp,
		arq:          arqCfg,
		snoop:        snoopCfg,
	}
	if chaosRNG != nil {
		inj, err := chaos.New(s, cfg.Chaos, chaosRNG)
		if err != nil {
			return nil, err
		}
		inj.Attach(wiredFwd)
		inj.Attach(wiredRev)
		inj.Attach(wirelessDown)
		inj.Attach(wirelessUp)
		inj.ScheduleCrashes(station)
		inj.ScheduleEventStorms()
		tp.chaos = inj
	}
	return tp, nil
}

// deriveAckTimeout computes a link-ack deadline from the radio timing: the
// ack's serialization plus both propagation delays, with slack for an
// ack-path queue (a TCP ack ahead of the link ack on the uplink).
func deriveAckTimeout(down, up *link.Link) time.Duration {
	ackTx := up.TxTime(packet.ControlSize)
	slack := 4*ackTx + 20*time.Millisecond
	return down.Delay() + up.Delay() + ackTx + slack
}

// startCrossTraffic schedules a Poisson packet stream into the wired
// forward link until the horizon. Tail drops of cross-traffic packets are
// part of the model (a congested queue drops whoever arrives late).
func startCrossTraffic(s *sim.Simulator, ct CrossTraffic, ids *packet.IDGen, rng *sim.RNG, l *link.Link, horizon time.Duration) {
	meanGap := float64(units.TransmissionTime(ct.PacketSize, ct.Rate))
	var next func()
	next = func() {
		if s.Now() >= horizon {
			return
		}
		l.Send(&packet.Packet{
			ID:      ids.Next(),
			Kind:    packet.Data,
			Conn:    crossConn,
			Payload: ct.PacketSize - packet.HeaderSize,
			SentAt:  s.Now(),
		})
		s.Schedule(time.Duration(rng.Exp(meanGap)), next)
	}
	s.Schedule(time.Duration(rng.Exp(meanGap)), next)
}

// deriveReorderTimeout sizes the mobile host's gap-flush timer to a couple
// of full ARQ retry cycles: shorter would flush gaps the ARQ is about to
// fill; much longer only delays recovery of a discarded packet.
func deriveReorderTimeout(arq bs.ARQConfig) time.Duration {
	cycle := arq.AckTimeout + arq.BackoffMax
	if cycle <= 0 {
		return 0 // let the node default apply
	}
	d := 3 * cycle
	const lo, hi = 500 * time.Millisecond, 3 * time.Second
	if d < lo {
		d = lo
	}
	if d > hi {
		d = hi
	}
	return d
}
