package core

import (
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/errmodel"
	"wtcp/internal/units"
)

// TestSurvivesNearPermanentFade drives every scheme through a channel
// that is bad 80% of the time — far beyond the paper's operating range —
// and requires eventual completion (no deadlock, no livelock) with sane
// accounting.
func TestSurvivesNearPermanentFade(t *testing.T) {
	for _, scheme := range []bs.Scheme{bs.Basic, bs.LocalRecovery, bs.EBSN, bs.Snoop, bs.SplitConnection} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := WAN(scheme, 576, 8*time.Second)
			cfg.Channel.MeanGood = 2 * time.Second
			cfg.TransferSize = 10 * units.KB
			cfg.Horizon = 2 * time.Hour
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Completed {
				t.Fatalf("%v livelocked under 80%% fade", scheme)
			}
			if g := r.Summary.Goodput; g <= 0 || g > 1.0000001 {
				t.Errorf("goodput = %v", g)
			}
		})
	}
}

// TestFadeAtConnectionStart begins the run inside a fade: the very first
// segment (and the initial RTO) must cope with zero feedback.
func TestFadeAtConnectionStart(t *testing.T) {
	for _, scheme := range []bs.Scheme{bs.Basic, bs.EBSN} {
		cfg := WAN(scheme, 576, 4*time.Second)
		cfg.Channel.Start = errmodel.Bad
		cfg.TransferSize = 20 * units.KB
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Completed {
			t.Fatalf("%v never escaped the initial fade", scheme)
		}
	}
}

// TestTinyTransfers exercises the degenerate sizes: one byte, one
// segment, one segment plus a byte.
func TestTinyTransfers(t *testing.T) {
	for _, size := range []units.ByteSize{1, 536, 537} {
		for _, scheme := range []bs.Scheme{bs.Basic, bs.EBSN, bs.SplitConnection} {
			cfg := WAN(scheme, 576, 2*time.Second)
			cfg.TransferSize = size
			r, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v/%d: %v", scheme, size, err)
			}
			if !r.Completed {
				t.Fatalf("%v/%d did not complete", scheme, size)
			}
		}
	}
}

// TestExtremePacketSizes runs the boundary packet sizes the validator
// admits.
func TestExtremePacketSizes(t *testing.T) {
	for _, size := range []units.ByteSize{41, 128, 4096} {
		cfg := WAN(bs.EBSN, size, time.Second)
		cfg.TransferSize = 5 * units.KB
		if size-PaperHeader > cfg.Window {
			cfg.Window = size // keep window >= one segment
		}
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !r.Completed {
			t.Fatalf("size %d did not complete", size)
		}
	}
}

// TestHighBERGoodState raises the good-state BER a hundredfold (the
// paper's conservative-model caveat in reverse): everything still
// completes, with visibly more loss events.
func TestHighBERGoodState(t *testing.T) {
	clean := WAN(bs.EBSN, 576, 2*time.Second)
	clean.TransferSize = 30 * units.KB
	rc, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	noisy := clean
	noisy.Channel.GoodBER = 1e-4
	rn, err := Run(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if !rn.Completed {
		t.Fatal("high-BER run did not complete")
	}
	if rn.WirelessDown.Corrupted <= rc.WirelessDown.Corrupted {
		t.Errorf("corruption did not rise with BER: %d vs %d",
			rn.WirelessDown.Corrupted, rc.WirelessDown.Corrupted)
	}
	if rn.Summary.ThroughputKbps > rc.Summary.ThroughputKbps {
		t.Error("higher BER improved throughput")
	}
}

// TestDeterministicChannelAcrossSchemes is the paper's §4.2.1 methodology
// check: the deterministic channel subjects every scheme to the exact
// same fade schedule, so the wireless link's state trajectory must be
// identical — only the schemes' reactions differ.
func TestDeterministicChannelAcrossSchemes(t *testing.T) {
	var firstFadeStartState errmodel.State
	for i, scheme := range []bs.Scheme{bs.Basic, bs.LocalRecovery, bs.EBSN} {
		cfg := WAN(scheme, 576, 4*time.Second)
		cfg.Channel.Deterministic = true
		ch, err := errmodel.NewMarkov(cfg.Channel, nil)
		if err != nil {
			t.Fatal(err)
		}
		state := ch.StateAt(11 * time.Second)
		if i == 0 {
			firstFadeStartState = state
		} else if state != firstFadeStartState {
			t.Error("deterministic schedule differs across schemes")
		}
	}
	if firstFadeStartState != errmodel.Bad {
		t.Errorf("11s should be inside the first fade, got %v", firstFadeStartState)
	}
}

// TestReorderTimeoutOverride exercises the mobile-host gap-flush knob end
// to end: an absurdly small reorder timeout forces flushes under burst
// loss yet the transfer still completes correctly.
func TestReorderTimeoutOverride(t *testing.T) {
	cfg := WAN(bs.EBSN, 576, 4*time.Second)
	cfg.TransferSize = 30 * units.KB
	cfg.ARQ.BackoffMax = 400 * time.Millisecond
	cfg.ARQ.AckTimeout = 300 * time.Millisecond
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("did not complete with custom ARQ timing")
	}
}
