package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/chaos"
	"wtcp/internal/core"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

// File is the JSON scenario format accepted by wtcp-sim's -config and
// wtcpd's /v1/run requests. Durations are human-readable strings ("4s",
// "800ms"); omitted fields keep the preset's value. Example:
//
//	{
//	  "preset": "wan",
//	  "scheme": "ebsn",
//	  "packet_size_bytes": 1536,
//	  "mean_bad": "4s",
//	  "transfer_kb": 100,
//	  "sack": true,
//	  "seed": 7,
//	  "checks": true,
//	  "budget": {"max_events": 2000000, "wall_clock": "1m"},
//	  "chaos": {
//	    "blackouts": [{"link": "wireless-down", "at": "5s", "length": "3s"}],
//	    "crashes":   [{"at": "20s", "downtime": "2s"}],
//	    "notify":    {"loss_prob": 0.5}
//	  }
//	}
type File struct {
	Preset          string  `json:"preset,omitempty"` // "wan" (default) or "lan"
	Scheme          string  `json:"scheme,omitempty"`
	PacketSizeBytes int     `json:"packet_size_bytes,omitempty"`
	TransferKB      int64   `json:"transfer_kb,omitempty"`
	WindowKB        int     `json:"window_kb,omitempty"`
	MTUBytes        int     `json:"mtu_bytes,omitempty"` // wireless fragmentation threshold (-1 disables)
	WiredKbps       float64 `json:"wired_kbps,omitempty"`
	WirelessKbps    float64 `json:"wireless_kbps,omitempty"`
	MeanGood        string  `json:"mean_good,omitempty"`
	MeanBad         string  `json:"mean_bad,omitempty"`
	Deterministic   bool    `json:"deterministic,omitempty"`
	Variant         string  `json:"variant,omitempty"` // tahoe (default), reno, newreno, sack
	DelayedAcks     bool    `json:"delayed_acks,omitempty"`
	SACK            bool    `json:"sack,omitempty"`
	ECN             bool    `json:"ecn,omitempty"`
	NotifyEvery     int     `json:"notify_every,omitempty"`
	CrossTrafficPct int     `json:"cross_traffic_pct,omitempty"` // % of wired capacity
	Seed            int64   `json:"seed,omitempty"`
	CollectTrace    bool    `json:"collect_trace,omitempty"`
	Horizon         string  `json:"horizon,omitempty"` // virtual-time cap ("10m")

	// Robustness knobs: Chaos holds an inline fault-injection plan (see
	// internal/chaos for the schema), Checks enables runtime invariant
	// checking, and Stall tunes the no-progress watchdog window ("5m";
	// "off" disables it). Budget bounds the run's resource consumption
	// (schema shared with fleet campaign manifests); exhausting any
	// ceiling halts the run with a budget error.
	Chaos  json.RawMessage `json:"chaos,omitempty"`
	Checks bool            `json:"checks,omitempty"`
	Stall  string          `json:"stall,omitempty"`
	Budget *Budget         `json:"budget,omitempty"`
}

// Load reads and validates a JSON scenario file into a runnable
// configuration.
func Load(path string) (core.Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return core.Config{}, fmt.Errorf("read scenario: %w", err)
	}
	cfg, err := Parse(raw)
	if err != nil {
		return core.Config{}, fmt.Errorf("scenario %s: %w", path, err)
	}
	return cfg, nil
}

// Parse decodes and validates scenario JSON. Unknown fields are
// rejected so a typoed knob fails loudly instead of being ignored.
func Parse(raw []byte) (core.Config, error) {
	sf, err := ParseFile(raw)
	if err != nil {
		return core.Config{}, err
	}
	return sf.Build()
}

// ParseFile decodes scenario JSON into its file form without building
// the configuration. Callers that need the declarative shape — wtcpd's
// request fingerprinting canonicalizes a File with its budget cleared —
// follow up with Build, which performs full validation.
func ParseFile(raw []byte) (File, error) {
	var sf File
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sf); err != nil {
		return File{}, fmt.Errorf("parse: %w", err)
	}
	return sf, nil
}

// validate rejects malformed or contradictory field values before they
// turn into a half-built configuration, with messages that say how to fix
// the field.
func (sf File) validate() error {
	switch {
	case sf.PacketSizeBytes < 0:
		return fmt.Errorf("packet_size_bytes %d is negative; give the full wired packet size in bytes (header included, e.g. 576)", sf.PacketSizeBytes)
	case sf.PacketSizeBytes > 0 && sf.PacketSizeBytes <= 40:
		return fmt.Errorf("packet_size_bytes %d does not exceed the 40-byte TCP/IP header; the paper sweeps 128-1536", sf.PacketSizeBytes)
	case sf.TransferKB < 0:
		return fmt.Errorf("transfer_kb %d is negative; give the bulk transfer size in KB", sf.TransferKB)
	case sf.WindowKB < 0:
		return fmt.Errorf("window_kb %d is negative; give the advertised window in KB", sf.WindowKB)
	case sf.MTUBytes < -1:
		return fmt.Errorf("mtu_bytes %d is invalid; give a positive wireless MTU, 0 to keep the preset, or -1 to disable fragmentation", sf.MTUBytes)
	case sf.WiredKbps < 0:
		return fmt.Errorf("wired_kbps %v is negative; give the wired link rate in Kbps", sf.WiredKbps)
	case sf.WirelessKbps < 0:
		return fmt.Errorf("wireless_kbps %v is negative; give the raw wireless rate in Kbps", sf.WirelessKbps)
	case sf.NotifyEvery < 0:
		return fmt.Errorf("notify_every %d is negative; 0 or 1 notifies on every failed attempt, N thins to every Nth", sf.NotifyEvery)
	case sf.CrossTrafficPct < 0 || sf.CrossTrafficPct > 100:
		return fmt.Errorf("cross_traffic_pct %d outside [0, 100]; it is the share of wired capacity given to background load", sf.CrossTrafficPct)
	}
	return nil
}

// Build converts the file into a core.Config.
func (sf File) Build() (core.Config, error) {
	if err := sf.validate(); err != nil {
		return core.Config{}, err
	}
	scheme := bs.Basic
	if sf.Scheme != "" {
		s, err := bs.ParseScheme(sf.Scheme)
		if err != nil {
			return core.Config{}, err
		}
		scheme = s
	}
	meanBad := 2 * time.Second
	if d, err := ParsePositiveDur("mean_bad", sf.MeanBad); err != nil {
		return core.Config{}, err
	} else if d > 0 {
		meanBad = d
	}

	var cfg core.Config
	switch sf.Preset {
	case "", "wan":
		size := units.ByteSize(576)
		if sf.PacketSizeBytes > 0 {
			size = units.ByteSize(sf.PacketSizeBytes)
		}
		cfg = core.WAN(scheme, size, meanBad)
	case "lan":
		cfg = core.LAN(scheme, meanBad)
		if sf.PacketSizeBytes > 0 {
			cfg.PacketSize = units.ByteSize(sf.PacketSizeBytes)
		}
	default:
		return core.Config{}, fmt.Errorf("unknown preset %q (want wan or lan)", sf.Preset)
	}

	if d, err := ParsePositiveDur("mean_good", sf.MeanGood); err != nil {
		return core.Config{}, err
	} else if d > 0 {
		cfg.Channel.MeanGood = d
	}
	cfg.Channel.Deterministic = sf.Deterministic
	if sf.TransferKB > 0 {
		cfg.TransferSize = units.ByteSize(sf.TransferKB) * units.KB
	}
	if sf.WindowKB > 0 {
		cfg.Window = units.ByteSize(sf.WindowKB) * units.KB
	}
	switch sf.MTUBytes {
	case 0: // keep the preset
	case -1:
		cfg.MTU = 0
	default:
		cfg.MTU = units.ByteSize(sf.MTUBytes)
	}
	if sf.WiredKbps > 0 {
		cfg.WiredRate = units.BitRate(sf.WiredKbps * 1000)
	}
	if sf.WirelessKbps > 0 {
		cfg.WirelessRate = units.BitRate(sf.WirelessKbps * 1000)
	}
	if sf.Variant != "" {
		v, err := tcp.ParseVariant(sf.Variant)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Variant = v
	}
	cfg.DelayedAcks = sf.DelayedAcks
	cfg.SACK = sf.SACK
	cfg.ECN = sf.ECN
	cfg.NotifyEvery = sf.NotifyEvery
	if sf.CrossTrafficPct > 0 {
		cfg.CrossTraffic = core.CrossTraffic{
			Rate: units.BitRate(float64(sf.CrossTrafficPct) / 100 * float64(cfg.WiredRate)),
		}
	}
	if sf.Seed != 0 {
		cfg.Seed = sf.Seed
	}
	cfg.CollectTrace = sf.CollectTrace
	if d, err := ParsePositiveDur("horizon", sf.Horizon); err != nil {
		return core.Config{}, err
	} else if d > 0 {
		cfg.Horizon = d
	}

	if len(sf.Chaos) > 0 && string(sf.Chaos) != "null" {
		plan, err := chaos.Parse(sf.Chaos)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Chaos = plan
		if h := plan.Horizon(); cfg.Horizon > 0 && h > cfg.Horizon {
			return core.Config{}, fmt.Errorf("chaos plan schedules faults until %v but the horizon ends at %v; raise horizon or move the faults earlier", h, cfg.Horizon)
		}
	}
	cfg.Checks = sf.Checks
	if sf.Budget != nil {
		b, err := sf.Budget.Build()
		if err != nil {
			return core.Config{}, err
		}
		cfg.Budget = b
	}
	switch sf.Stall {
	case "":
	case "off":
		cfg.Stall = -1
	default:
		d, err := ParsePositiveDur("stall", sf.Stall)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Stall = d
	}
	return cfg, cfg.Validate()
}
