// Package sim implements the discrete-event simulation kernel the rest of
// the repository is built on. It plays the role the LBL Network Simulator
// (ns) played for the paper: a virtual clock, an ordered event queue with
// cancellable events, and deterministic seeded randomness.
//
// The kernel is deliberately single-threaded: a simulation run is a
// sequential replay of events in virtual-time order, which is what makes
// runs reproducible bit-for-bit for a given seed. Concurrency across
// *replications* (different seeds) is handled by callers (see
// internal/stats.RunReplications), never inside one simulation.
package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Run when the simulation was halted with Stop
// before the run condition was met.
var ErrStopped = errors.New("sim: stopped")

// Event is a scheduled callback. Events are created by Simulator.Schedule
// and may be cancelled with Simulator.Cancel until they fire.
type Event struct {
	// at is the virtual time the event fires.
	at time.Duration
	// seq breaks ties between events scheduled for the same instant:
	// earlier-scheduled events fire first (FIFO within a timestamp).
	seq uint64
	// index is the event's position in the heap, or -1 once it has been
	// removed (fired or cancelled).
	index int
	fn    func()
}

// At reports the virtual time at which the event is (or was) scheduled to
// fire.
func (e *Event) At() time.Duration { return e.at }

// Pending reports whether the event is still queued (not yet fired and not
// cancelled).
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		// The heap is private to this package; a non-*Event push is a
		// programming error inside the package itself.
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Simulator owns the virtual clock and the pending-event queue. The zero
// value is ready to use.
type Simulator struct {
	now     time.Duration
	seq     uint64
	queue   eventHeap
	stopped bool

	// fired counts events executed; useful for tests and for detecting
	// runaway simulations.
	fired uint64

	// checks are the registered invariants (see check.go); checksOn marks
	// the periodic runner as started, and failure records the first
	// invariant violation or watchdog stall.
	checks   []check
	checksOn bool
	failure  error

	// ctx, when non-nil, is polled at event boundaries (see context.go);
	// once it ends the run halts with a *CancelError.
	ctx context.Context
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator { return &Simulator{} }

// Now reports the current virtual time (elapsed since the start of the
// simulation).
func (s *Simulator) Now() time.Duration { return s.now }

// Fired reports how many events have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports how many events are queued.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule queues fn to run after delay of virtual time. A negative delay
// is treated as zero (fire as soon as possible, after already-queued events
// at the current instant). The returned Event may be passed to Cancel.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	ev := &Event{at: s.now + delay, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev
}

// ScheduleAt queues fn at an absolute virtual time. Times in the past are
// clamped to now.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) *Event {
	return s.Schedule(at-s.now, fn)
}

// Cancel removes a pending event from the queue. Cancelling a nil, fired,
// or already-cancelled event is a no-op, so callers do not need to track
// timer state precisely.
func (s *Simulator) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&s.queue, ev.index)
}

// Stop halts the currently executing Run after the current event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in order until the queue drains, until the virtual
// clock would pass until (events at exactly until still fire), or until
// Stop is called. A non-positive until runs the queue to exhaustion.
// It returns ErrStopped if halted by Stop, and the recorded *CancelError
// if the context bound with Bind ended.
func (s *Simulator) Run(until time.Duration) error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.cancelled() {
			return s.failure
		}
		if s.stopped {
			return ErrStopped
		}
		next := s.queue[0]
		if until > 0 && next.at > until {
			// Leave future events queued; advance the clock to the
			// horizon so Now() reflects the full observation window.
			s.now = until
			return nil
		}
		heap.Pop(&s.queue)
		s.now = next.at
		s.fired++
		next.fn()
	}
	if until > 0 && s.now < until {
		s.now = until
	}
	return nil
}

// RunAll executes events until the queue drains or Stop is called.
func (s *Simulator) RunAll() error { return s.Run(0) }

// Step executes exactly one event and reports whether one was available.
// A step is also refused once the bound context (see Bind) has ended;
// Failure then reports the *CancelError.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 || s.cancelled() {
		return false
	}
	next := heap.Pop(&s.queue).(*Event)
	s.now = next.at
	s.fired++
	next.fn()
	return true
}

// String summarizes the simulator state, for debugging.
func (s *Simulator) String() string {
	return fmt.Sprintf("sim(now=%v pending=%d fired=%d)", s.now, len(s.queue), s.fired)
}
