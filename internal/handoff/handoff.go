// Package handoff reproduces the mobility study the paper's related-work
// section opens with [Caceres & Iftode 94]: a mobile host moving between
// cells loses the packets queued at (and in flight to) its old base
// station, and plain TCP then sits out a — possibly backed-off —
// retransmission timeout before recovering. Their fix, reproduced here:
// immediately after completing a handoff the mobile host re-sends three
// duplicate acknowledgments, triggering fast retransmit at the source so
// recovery starts one round trip after reconnection instead of one RTO.
//
// The paper itself excludes handoffs (it defers them to a companion
// report); this package exists as the related-work baseline, built on the
// same simulator, TCP, and link substrates.
package handoff

import (
	"errors"
	"fmt"
	"time"

	"wtcp/internal/link"
	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

// Scheme selects the mobile host's post-handoff behaviour.
type Scheme int

// Schemes.
const (
	// Plain lets TCP discover the handoff losses by itself (timeout).
	Plain Scheme = iota + 1
	// FastRetransmit has the mobile host emit three duplicate acks right
	// after reconnecting, converting the timeout into a fast retransmit.
	FastRetransmit
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Plain:
		return "plain"
	case FastRetransmit:
		return "fastretransmit"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Config parameterizes a handoff run. The wireless cells are error-free
// by default: like the original study, the point is to isolate mobility
// effects from corruption effects.
type Config struct {
	Scheme       Scheme
	TransferSize units.ByteSize
	PacketSize   units.ByteSize
	Window       units.ByteSize

	WiredRate     units.BitRate
	WiredDelay    time.Duration
	WirelessRate  units.BitRate
	WirelessDelay time.Duration

	// Dwell is how long the mobile host stays in a cell between
	// handoffs; Latency is the disconnection gap while switching.
	Dwell   time.Duration
	Latency time.Duration

	Granularity time.Duration
	InitialRTO  time.Duration

	Seed    int64
	Horizon time.Duration
}

// Defaults returns a WaveLAN-era configuration matching the original
// study's environment: 2 Mbps cells, 1 s dwell, 100 ms handoff gap.
func Defaults(scheme Scheme) Config {
	return Config{
		Scheme:        scheme,
		TransferSize:  units.MB,
		PacketSize:    1500,
		Window:        64 * units.KB,
		WiredRate:     10 * units.Mbps,
		WiredDelay:    time.Millisecond,
		WirelessRate:  2 * units.Mbps,
		WirelessDelay: time.Millisecond,
		Dwell:         time.Second,
		Latency:       100 * time.Millisecond,
		Seed:          1,
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	switch {
	case c.Scheme < Plain || c.Scheme > FastRetransmit:
		return errors.New("handoff: unknown scheme")
	case c.PacketSize <= packet.HeaderSize:
		return errors.New("handoff: packet size below header")
	case c.TransferSize <= 0:
		return errors.New("handoff: nothing to transfer")
	case c.Window < c.PacketSize-packet.HeaderSize:
		return errors.New("handoff: window below one segment")
	case c.WiredRate <= 0 || c.WirelessRate <= 0:
		return errors.New("handoff: rates must be positive")
	case c.Dwell <= 0:
		return errors.New("handoff: dwell must be positive")
	case c.Latency < 0:
		return errors.New("handoff: negative latency")
	default:
		return nil
	}
}

// Result is a run's outcome.
type Result struct {
	Config          Config
	Completed       bool
	Elapsed         time.Duration
	ThroughputKbps  float64
	Timeouts        uint64
	FastRetransmits uint64
	Handoffs        int
	// DroppedAtHandoff counts packets lost to cell switches (queued at
	// the old base station or in flight during the gap).
	DroppedAtHandoff uint64
	// RetransKB is the source's retransmitted volume.
	RetransKB float64
}

// Run executes one handoff simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = time.Hour
	}

	s := sim.New()
	ids := &packet.IDGen{}

	st := &state{sim: s, cfg: cfg, ids: ids}

	var err error
	// Two cells; the mobile host alternates between them.
	for i := 0; i < 2; i++ {
		i := i
		st.down[i], err = link.New(s, link.Config{
			Name: fmt.Sprintf("cell%d-down", i), Rate: cfg.WirelessRate, Delay: cfg.WirelessDelay,
		}, nil, func(p *packet.Packet) { st.mhReceive(i, p) })
		if err != nil {
			return nil, err
		}
		st.up[i], err = link.New(s, link.Config{
			Name: fmt.Sprintf("cell%d-up", i), Rate: cfg.WirelessRate, Delay: cfg.WirelessDelay,
		}, nil, func(p *packet.Packet) { st.bsUplink(i, p) })
		if err != nil {
			return nil, err
		}
	}
	st.wiredFwd, err = link.New(s, link.Config{
		Name: "wired-fwd", Rate: cfg.WiredRate, Delay: cfg.WiredDelay, QueueLimit: 100,
	}, nil, st.route)
	if err != nil {
		return nil, err
	}
	st.wiredRev, err = link.New(s, link.Config{
		Name: "wired-rev", Rate: cfg.WiredRate, Delay: cfg.WiredDelay, QueueLimit: 100,
	}, nil, func(p *packet.Packet) { st.sender.Receive(p) })
	if err != nil {
		return nil, err
	}

	st.sink, err = tcp.NewSink(s, cfg.Window, ids, st.mhSend)
	if err != nil {
		return nil, err
	}
	st.sender, err = tcp.NewSender(s, tcp.Config{
		MSS:         cfg.PacketSize - packet.HeaderSize,
		Window:      cfg.Window,
		Total:       cfg.TransferSize,
		Granularity: cfg.Granularity,
		InitialRTO:  cfg.InitialRTO,
	}, ids, func(p *packet.Packet) { st.wiredFwd.Send(p) })
	if err != nil {
		return nil, err
	}

	st.scheduleNextHandoff()
	st.sender.Start()
	for !st.sender.Done() && s.Now() < cfg.Horizon {
		if ok, err := s.Step(); !ok || err != nil {
			break
		}
	}

	senderStats := st.sender.Stats()
	res := &Result{
		Config:           cfg,
		Completed:        st.sender.Done(),
		Timeouts:         senderStats.Timeouts,
		FastRetransmits:  senderStats.FastRetransmits,
		Handoffs:         st.handoffs,
		DroppedAtHandoff: st.dropped,
		RetransKB:        float64(senderStats.RetransBytes) / float64(units.KB),
	}
	res.Elapsed = st.sender.FinishedAt()
	if !res.Completed {
		res.Elapsed = s.Now()
	}
	res.ThroughputKbps = units.ThroughputKbps(cfg.TransferSize, res.Elapsed)
	return res, nil
}

// state is the mutable topology: which cell the mobile host occupies and
// whether it is mid-handoff.
type state struct {
	sim *sim.Simulator
	cfg Config
	ids *packet.IDGen

	down     [2]*link.Link
	up       [2]*link.Link
	wiredFwd *link.Link
	wiredRev *link.Link

	sender *tcp.Sender
	sink   *tcp.Sink

	cell         int  // current cell (0/1)
	disconnected bool // inside the handoff gap

	handoffs int
	dropped  uint64
}

// route delivers a wired packet to the mobile host's current cell; during
// the handoff gap (and for packets chasing the old cell) it is lost.
func (st *state) route(p *packet.Packet) {
	if st.disconnected {
		st.dropped++
		return
	}
	st.down[st.cell].Send(p)
}

// mhReceive is a cell's downlink delivery: only the attached cell reaches
// the mobile host.
func (st *state) mhReceive(cell int, p *packet.Packet) {
	if st.disconnected || cell != st.cell {
		st.dropped++
		return
	}
	st.sink.Receive(p)
}

// mhSend carries mobile-host output over the current cell's uplink.
func (st *state) mhSend(p *packet.Packet) {
	if st.disconnected {
		st.dropped++
		return
	}
	st.up[st.cell].Send(p)
}

// bsUplink forwards uplink arrivals onto the wire; stragglers into a
// detached cell die.
func (st *state) bsUplink(cell int, p *packet.Packet) {
	if cell != st.cell {
		st.dropped++
		return
	}
	st.wiredRev.Send(p)
}

// scheduleNextHandoff arms the next cell switch.
func (st *state) scheduleNextHandoff() {
	st.sim.Schedule(st.cfg.Dwell, st.beginHandoff)
}

// beginHandoff detaches the mobile host: everything queued for the old
// cell is lost.
func (st *state) beginHandoff() {
	if st.sender.Done() {
		return
	}
	st.disconnected = true
	st.handoffs++
	// Packets already queued at the old cell's downlink die with the
	// attachment (they were addressed to a receiver that left).
	st.dropped += uint64(st.down[st.cell].DropQueued())
	st.sim.Schedule(st.cfg.Latency, st.completeHandoff)
}

// completeHandoff attaches to the new cell and, per the fast-retransmit
// scheme, nudges the source with three duplicate acks.
func (st *state) completeHandoff() {
	st.cell = 1 - st.cell
	st.disconnected = false
	if st.cfg.Scheme == FastRetransmit {
		for i := 0; i < tcp.DupAckThreshold; i++ {
			st.up[st.cell].Send(&packet.Packet{
				ID:     st.ids.Next(),
				Kind:   packet.Ack,
				AckNo:  st.sink.RcvNxt(),
				SentAt: st.sim.Now(),
			})
		}
	}
	st.scheduleNextHandoff()
}
