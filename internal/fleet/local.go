package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"sync"
	"time"

	"wtcp/internal/chaos"
	"wtcp/internal/experiment"
)

// LocalOptions configures RunLocal.
type LocalOptions struct {
	// Campaign is the validated manifest.
	Campaign Campaign
	// Workers is the fleet size (default 4).
	Workers int
	// LedgerPath is the checkpoint file results merge into (required).
	LedgerPath string
	// StatusPath, when set, receives the fleet Snapshot.
	StatusPath string
	// LeaseTTL overrides DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Faults is an optional chaos plan for the coordinator/worker
	// boundary (renew/result RPC faults apply to in-process workers too;
	// Kill needs subprocess workers).
	Faults *chaos.FleetFaults
	// WorkerCommand, when set, launches worker i as a subprocess that
	// must connect to url and run the worker loop (wtcp-fleet self-execs
	// `wtcp-fleet worker`; tests re-exec the test binary). When nil,
	// workers run as in-process goroutines — same protocol, same
	// determinism, no process isolation.
	WorkerCommand func(i int, name, url string) *exec.Cmd
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)
}

// RunLocal runs a complete sharded campaign on this machine: it starts
// a coordinator on a loopback port, launches the workers, waits for
// every point to settle, and returns with the ledger closed and ready
// for the merge pass. Worker crashes are survived (their leases lapse
// and the points reassign); a fail-fast failure from any worker stops
// the campaign and is returned.
func RunLocal(ctx context.Context, lo LocalOptions) (Snapshot, error) {
	if lo.Workers <= 0 {
		lo.Workers = 4
	}
	if lo.Log == nil {
		lo.Log = func(string, ...any) {}
	}
	if err := lo.Faults.Validate(); err != nil {
		return Snapshot{}, err
	}
	if lo.Faults.Enabled() && lo.Faults.Kill != nil && lo.Faults.Kill.Worker >= lo.Workers {
		return Snapshot{}, fmt.Errorf("fleet: kill.worker %d out of range (fleet has %d workers)", lo.Faults.Kill.Worker, lo.Workers)
	}

	coord, err := NewCoordinator(CoordinatorConfig{
		Campaign:   lo.Campaign,
		LedgerPath: lo.LedgerPath,
		StatusPath: lo.StatusPath,
		LeaseTTL:   lo.LeaseTTL,
		Log:        lo.Log,
	})
	if err != nil {
		return Snapshot{}, err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Snapshot{}, fmt.Errorf("fleet: listen: %w", err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String()
	lo.Log("fleet: coordinator listening on %s (%d workers)", url, lo.Workers)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Launch the fleet.
	var wg sync.WaitGroup
	procs := make([]*exec.Cmd, lo.Workers)
	workerErrs := make([]error, lo.Workers)
	for i := 0; i < lo.Workers; i++ {
		name := fmt.Sprintf("worker-%d", i)
		if lo.WorkerCommand != nil {
			cmd := lo.WorkerCommand(i, name, url)
			if err := cmd.Start(); err != nil {
				cancel()
				return Snapshot{}, fmt.Errorf("fleet: start %s: %w", name, err)
			}
			procs[i] = cmd
			wg.Add(1)
			go func(i int, cmd *exec.Cmd, name string) {
				defer wg.Done()
				if err := cmd.Wait(); err != nil && ctx.Err() == nil {
					// A dead worker is survivable by design; record it for
					// the log, fail the campaign only via the coordinator's
					// own fail-fast path.
					lo.Log("fleet: %s exited: %v", name, err)
					workerErrs[i] = err
				}
			}(i, cmd, name)
		} else {
			wg.Add(1)
			go func(i int, name string) {
				defer wg.Done()
				cfg := WorkerConfig{
					Name:        name,
					Coordinator: url,
					Health:      experiment.NewHealth(),
					HTTPClient:  NewFaultClient(lo.Faults, lo.Campaign.BaseSeed+int64(i)),
					Log:         lo.Log,
				}
				if err := RunWorker(ctx, cfg); err != nil && ctx.Err() == nil {
					lo.Log("fleet: %s: %v", name, err)
					workerErrs[i] = err
				}
			}(i, name)
		}
	}

	// Chaos: SIGKILL the configured worker once it has settled enough
	// units and holds a lease, so the kill lands mid-point.
	if lo.Faults.Enabled() && lo.Faults.Kill != nil && lo.WorkerCommand != nil {
		go watchAndKill(ctx, coord, procs, *lo.Faults.Kill, lo.Log)
	}

	// Wait for the campaign to finish (or the caller to give up).
	select {
	case <-coord.Done():
	case <-ctx.Done():
		cancel()
		wg.Wait()
		for _, cmd := range procs {
			if cmd != nil && cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
		return coord.Snapshot(), ctx.Err()
	}
	err = coord.Err()
	snap := coord.Snapshot()
	cancel()
	// Idle workers notice Done on their next lease poll; killing the
	// context (above) unblocks the rest. Subprocess workers exit on the
	// Done reply; give stragglers a nudge.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		for _, cmd := range procs {
			if cmd != nil && cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
		wg.Wait()
	}
	if err == nil {
		// Campaign completed: a worker that failed for fleet-local reasons
		// (e.g. couldn't reach the coordinator at all) is only fatal if the
		// campaign didn't finish without it — which it did. Log-only.
		_ = workerErrs
	}
	return snap, err
}

// watchAndKill polls the coordinator snapshot until the target worker
// has settled AfterUnits units and currently holds a lease, then
// SIGKILLs its process. The campaign must recover: the lease lapses,
// the point reassigns, nothing is lost or double-counted.
func watchAndKill(ctx context.Context, coord *Coordinator, procs []*exec.Cmd, kill chaos.WorkerKill, logf func(string, ...any)) {
	name := fmt.Sprintf("worker-%d", kill.Worker)
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-coord.Done():
			return
		case <-t.C:
		}
		snap := coord.Snapshot()
		for _, wh := range snap.Workers {
			if wh.Name != name || wh.Completed < kill.AfterUnits || wh.Leases == 0 {
				continue
			}
			cmd := procs[kill.Worker]
			if cmd == nil || cmd.Process == nil {
				return
			}
			logf("fleet chaos: SIGKILL %s (completed %d units, %d leases held)", name, wh.Completed, wh.Leases)
			cmd.Process.Kill()
			return
		}
	}
}
