package tcp

import (
	"testing"
	"time"

	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

func TestScoreboardMergeAndCover(t *testing.T) {
	var sb scoreboard
	sb.record([]packet.SACKBlock{{Start: 1000, End: 2000}})
	sb.record([]packet.SACKBlock{{Start: 3000, End: 4000}})
	sb.record([]packet.SACKBlock{{Start: 2000, End: 3000}}) // bridges the gap
	if sb.len() != 1 {
		t.Fatalf("blocks = %d, want merged into 1", sb.len())
	}
	if !sb.covered(1500, 2500) {
		t.Error("merged range not covered")
	}
	if sb.covered(500, 1500) {
		t.Error("uncovered prefix reported covered")
	}
	if sb.covered(3500, 4500) {
		t.Error("uncovered suffix reported covered")
	}
}

func TestScoreboardAdvance(t *testing.T) {
	var sb scoreboard
	sb.record([]packet.SACKBlock{{Start: 1000, End: 2000}, {Start: 3000, End: 4000}})
	sb.advance(1500)
	if sb.covered(1000, 1400) {
		t.Error("range below una survived advance")
	}
	if !sb.covered(1500, 2000) {
		t.Error("trimmed block lost its tail")
	}
	sb.advance(5000)
	if sb.len() != 0 {
		t.Errorf("blocks after full advance = %d", sb.len())
	}
}

func TestScoreboardIgnoresDegenerateBlocks(t *testing.T) {
	var sb scoreboard
	sb.record([]packet.SACKBlock{{Start: 10, End: 10}, {Start: 20, End: 5}})
	if sb.len() != 0 {
		t.Errorf("degenerate blocks stored: %d", sb.len())
	}
	sb.reset()
}

func TestScoreboardBounded(t *testing.T) {
	var sb scoreboard
	for i := int64(0); i < 1000; i++ {
		sb.record([]packet.SACKBlock{{Start: i * 10, End: i*10 + 5}})
	}
	if sb.len() > maxScoreboardBlocks {
		t.Errorf("scoreboard grew to %d blocks", sb.len())
	}
}

func TestSinkSACKBlocks(t *testing.T) {
	s := sim.New()
	var acks []*packet.Packet
	sink, err := NewSink(s, 64*units.KB, &packet.IDGen{}, func(p *packet.Packet) {
		acks = append(acks, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	sink.EnableSACK()
	// Receive 0, then 2, 3, then 5 (holes at 1 and 4).
	sink.Receive(data(0, 536))
	sink.Receive(data(2*536, 536))
	sink.Receive(data(3*536, 536))
	sink.Receive(data(5*536, 536))
	last := acks[len(acks)-1]
	if len(last.SACK) != 2 {
		t.Fatalf("SACK blocks = %v, want 2 ranges", last.SACK)
	}
	if last.SACK[0] != (packet.SACKBlock{Start: 2 * 536, End: 4 * 536}) {
		t.Errorf("first block = %+v", last.SACK[0])
	}
	if last.SACK[1] != (packet.SACKBlock{Start: 5 * 536, End: 6 * 536}) {
		t.Errorf("second block = %+v", last.SACK[1])
	}
	// Filling hole 1 merges: blocks shrink.
	sink.Receive(data(536, 536))
	last = acks[len(acks)-1]
	if last.AckNo != 4*536 {
		t.Errorf("cumulative ack = %d", last.AckNo)
	}
	if len(last.SACK) != 1 || last.SACK[0].Start != 5*536 {
		t.Errorf("post-fill blocks = %v", last.SACK)
	}
}

func TestSinkNoSACKWhenDisabled(t *testing.T) {
	h := newSinkHarness(t, 4*units.KB)
	h.sink.Receive(data(2*536, 536)) // OOO
	if h.acks[0].SACK != nil {
		t.Error("SACK blocks attached while disabled")
	}
}

// newSACKLoop wires a loop with SACK negotiated on both ends.
func newSACKLoop(t *testing.T, cfg Config, delay time.Duration) *loop {
	t.Helper()
	cfg.SACK = true
	l := newLoop(t, cfg, delay)
	l.sink.EnableSACK()
	return l
}

func TestSACKAvoidsRedundantGoBackN(t *testing.T) {
	// Drop two non-adjacent segments from one window; Tahoe's go-back-N
	// normally resends everything from the first hole, but with SACK the
	// delivered middle segments are skipped.
	cfg := wanConfig()
	cfg.Total = 60 * units.KB
	run := func(sack bool) Stats {
		var l *loop
		if sack {
			l = newSACKLoop(t, cfg, 50*time.Millisecond)
		} else {
			l = newLoop(t, cfg, 50*time.Millisecond)
		}
		dropped := map[int64]bool{}
		l.dropData = func(p *packet.Packet) bool {
			if (p.Seq == 5*536 || p.Seq == 8*536) && !p.Retransmit && !dropped[p.Seq] {
				dropped[p.Seq] = true
				return true
			}
			return false
		}
		l.snd.Start()
		if err := l.s.Run(20 * time.Minute); err != nil {
			t.Fatal(err)
		}
		if !l.snd.Done() {
			t.Fatal("did not complete")
		}
		if l.sink.Delivered() != cfg.Total {
			t.Fatalf("delivered %d", l.sink.Delivered())
		}
		return l.snd.Stats()
	}
	plain := run(false)
	sacked := run(true)
	if sacked.RetransSegments >= plain.RetransSegments {
		t.Errorf("SACK retransmissions %d not below plain %d",
			sacked.RetransSegments, plain.RetransSegments)
	}
	if sacked.SACKSkippedSegments == 0 {
		t.Error("no segments skipped via the scoreboard")
	}
	if plain.SACKSkippedSegments != 0 {
		t.Error("plain run recorded SACK skips")
	}
}

func TestSACKUnderRandomLossStillCorrect(t *testing.T) {
	// Heavy random loss with SACK on: the transfer must still complete
	// exactly (no byte skipped that the receiver did not have).
	rng := sim.NewRNG(11)
	cfg := Config{
		MSS:        536,
		Window:     8 * units.KB,
		Total:      40 * units.KB,
		InitialRTO: 500 * time.Millisecond,
		SACK:       true,
	}
	l := newLoop(t, cfg, 20*time.Millisecond)
	l.sink.EnableSACK()
	l.dropData = func(*packet.Packet) bool { return rng.Bernoulli(0.25) }
	l.dropAck = func(*packet.Packet) bool { return rng.Bernoulli(0.25) }
	l.snd.Start()
	if err := l.s.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if !l.snd.Done() {
		t.Fatal("did not complete")
	}
	if l.sink.Delivered() != cfg.Total {
		t.Fatalf("delivered %d, want %d", l.sink.Delivered(), cfg.Total)
	}
}
