package core

import (
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/units"
)

func multiFlowBase(scheme bs.Scheme) MultiFlowConfig {
	base := WAN(scheme, 576, 2*time.Second)
	base.TransferSize = 20 * units.KB // per flow, for test speed
	return MultiFlowConfig{Base: base, Flows: 3}
}

func TestMultiFlowValidation(t *testing.T) {
	cfg := multiFlowBase(bs.EBSN)
	cfg.Flows = 0
	if _, err := RunMultiFlow(cfg); err == nil {
		t.Error("zero flows accepted")
	}
	for _, scheme := range []bs.Scheme{bs.Snoop, bs.SplitConnection} {
		cfg := multiFlowBase(scheme)
		if _, err := RunMultiFlow(cfg); err == nil {
			t.Errorf("%v accepted for multi-flow", scheme)
		}
	}
	bad := multiFlowBase(bs.EBSN)
	bad.Base.PacketSize = 10
	if _, err := RunMultiFlow(bad); err == nil {
		t.Error("invalid base config accepted")
	}
}

func TestMultiFlowAllComplete(t *testing.T) {
	for _, scheme := range []bs.Scheme{bs.Basic, bs.LocalRecovery, bs.EBSN} {
		r, err := RunMultiFlow(multiFlowBase(scheme))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Completed {
			t.Fatalf("%v: not all flows completed", scheme)
		}
		if len(r.PerFlow) != 3 {
			t.Fatalf("PerFlow = %d", len(r.PerFlow))
		}
		for i, f := range r.PerFlow {
			if !f.Completed || f.ThroughputKbps <= 0 {
				t.Errorf("%v flow %d: %+v", scheme, i, f)
			}
		}
	}
}

func TestMultiFlowEBSNRoutedPerFlow(t *testing.T) {
	// Every flow's source must receive EBSNs (the notification is
	// addressed from the failing packet, not broadcast or dropped).
	cfg := multiFlowBase(bs.EBSN)
	cfg.Base.Channel.MeanBad = 4 * time.Second
	r, err := RunMultiFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("did not complete")
	}
	if r.BS.EBSNsSent == 0 {
		t.Fatal("no EBSNs under a bursty channel")
	}
	flowsWithResets := 0
	var totalTimeouts uint64
	for _, f := range r.PerFlow {
		if f.EBSNResets > 0 {
			flowsWithResets++
		}
		totalTimeouts += f.Timeouts
	}
	if flowsWithResets < 2 {
		t.Errorf("only %d/3 flows saw EBSN resets (routing broken?)", flowsWithResets)
	}
	// EBSN still suppresses timeouts with multiple flows.
	basic := multiFlowBase(bs.Basic)
	basic.Base.Channel.MeanBad = 4 * time.Second
	rb, err := RunMultiFlow(basic)
	if err != nil {
		t.Fatal(err)
	}
	var basicTimeouts uint64
	for _, f := range rb.PerFlow {
		basicTimeouts += f.Timeouts
	}
	if totalTimeouts >= basicTimeouts && basicTimeouts > 0 {
		t.Errorf("EBSN timeouts %d not below basic %d across flows", totalTimeouts, basicTimeouts)
	}
}

func TestMultiFlowEBSNBeatsBasicAggregate(t *testing.T) {
	agg := func(scheme bs.Scheme) float64 {
		var sum float64
		for seed := int64(1); seed <= 3; seed++ {
			cfg := multiFlowBase(scheme)
			cfg.Base.Channel.MeanBad = 4 * time.Second
			cfg.Base.Seed = seed
			r, err := RunMultiFlow(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sum += r.AggregateKbps / 3
		}
		return sum
	}
	basic := agg(bs.Basic)
	ebsn := agg(bs.EBSN)
	if ebsn <= basic {
		t.Errorf("multi-flow EBSN aggregate %.2f not above basic %.2f", ebsn, basic)
	}
}

func TestMultiFlowFairness(t *testing.T) {
	r, err := RunMultiFlow(multiFlowBase(bs.EBSN))
	if err != nil {
		t.Fatal(err)
	}
	if r.Fairness < 0.6 || r.Fairness > 1.0000001 {
		t.Errorf("Jain fairness = %v across identical flows", r.Fairness)
	}
}

func TestMultiFlowSingleFlowMatchesRunRoughly(t *testing.T) {
	// A multi-flow run with one flow is the same system as Run (modulo
	// the shared-queue scaling); throughput should land close.
	mf := MultiFlowConfig{Base: WAN(bs.EBSN, 576, 2*time.Second), Flows: 1}
	mf.Base.TransferSize = 30 * units.KB
	rm, err := RunMultiFlow(mf)
	if err != nil {
		t.Fatal(err)
	}
	single := WAN(bs.EBSN, 576, 2*time.Second)
	single.TransferSize = 30 * units.KB
	rs, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rm.AggregateKbps, rs.Summary.ThroughputKbps
	if a < b*0.7 || a > b*1.3 {
		t.Errorf("one-flow multi-flow %.2f far from Run %.2f", a, b)
	}
}
