package serve

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// metrics is the server's counter set, rendered in the Prometheus text
// exposition format by /metrics. Counters only ever increase; gauges
// (in-flight, queued, cache occupancy) are sampled at render time.
type metrics struct {
	requests         atomic.Uint64
	badRequests      atomic.Uint64
	accepted         atomic.Uint64
	rejectedBusy     atomic.Uint64
	rejectedBreaker  atomic.Uint64
	rejectedDraining atomic.Uint64
	cacheHits        atomic.Uint64
	executed         atomic.Uint64
	completed        atomic.Uint64
	failed           atomic.Uint64
	drained          atomic.Uint64
	resumed          atomic.Uint64
	deadlines        atomic.Uint64
}

// render emits the exposition text. The server passes live gauges in.
func (m *metrics) render(s *Server) string {
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP wtcpd_%s %s\n# TYPE wtcpd_%s counter\nwtcpd_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP wtcpd_%s %s\n# TYPE wtcpd_%s gauge\nwtcpd_%s %d\n", name, help, name, name, v)
	}
	counter("requests_total", "Query requests received (run, sweep, advise).", m.requests.Load())
	counter("bad_requests_total", "Requests rejected as malformed (400).", m.badRequests.Load())
	counter("accepted_total", "Requests that won a run slot and were journaled.", m.accepted.Load())
	counter("rejected_busy_total", "Requests shed with 429 (slots and queue full).", m.rejectedBusy.Load())
	counter("rejected_breaker_total", "Requests shed by a tripped breaker (422/503).", m.rejectedBreaker.Load())
	counter("rejected_draining_total", "Requests shed with 503 during drain.", m.rejectedDraining.Load())
	counter("cache_hits_total", "Requests answered from the result cache.", m.cacheHits.Load())
	counter("executed_total", "Fresh executions started on the engine.", m.executed.Load())
	counter("completed_total", "Executions that finished and were cached.", m.completed.Load())
	counter("failed_total", "Executions that ended in a failure answer.", m.failed.Load())
	counter("deadline_expired_total", "Executions killed by the request deadline (504).", m.deadlines.Load())
	counter("drained_total", "Accepted requests checkpointed by a drain (journal kept).", m.drained.Load())
	counter("resumed_total", "Journaled requests re-executed after a restart.", m.resumed.Load())

	gauge("in_flight", "Run slots currently held.", int64(s.adm.inFlight()))
	gauge("queued", "Requests waiting for a run slot.", int64(s.adm.queued()))
	gauge("slots", "Configured run-slot capacity.", int64(s.adm.slotCount()))
	entries, bytes, evictions := s.cache.stats()
	gauge("cache_entries", "Result-cache entries resident.", int64(entries))
	gauge("cache_bytes", "Result-cache bytes resident.", bytes)
	counter("cache_evictions_total", "Result-cache entries evicted under the byte cap.", evictions)
	perm, cooling := s.brk.counts()
	gauge("breaker_permanent", "Fingerprints permanently failed (protocol-bug/panic).", int64(perm))
	gauge("breaker_cooling", "Scenario classes currently cooling down.", int64(cooling))
	return b.String()
}
