package stats

import (
	"math"
	"testing"

	"wtcp/internal/sim"
)

func TestKSStatisticRejectsEmpty(t *testing.T) {
	if _, err := KSStatistic(nil, ExponentialCDF(1)); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestKSCriticalValue(t *testing.T) {
	v, err := KSCriticalValue(100, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.1358) > 1e-4 {
		t.Errorf("critical(100, .05) = %v", v)
	}
	if _, err := KSCriticalValue(0, 0.05); err == nil {
		t.Error("zero n accepted")
	}
	if _, err := KSCriticalValue(100, 0.2); err == nil {
		t.Error("unsupported alpha accepted")
	}
}

func TestKSAcceptsMatchingExponential(t *testing.T) {
	rng := sim.NewRNG(7)
	const n = 2000
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = rng.Exp(3.0)
	}
	d, err := KSStatistic(sample, ExponentialCDF(3.0))
	if err != nil {
		t.Fatal(err)
	}
	crit, err := KSCriticalValue(n, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if d > crit {
		t.Errorf("KS rejected matching exponential: D=%v > crit=%v", d, crit)
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	rng := sim.NewRNG(7)
	const n = 2000
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = rng.Float64() * 6 // uniform(0,6), mean 3
	}
	d, err := KSStatistic(sample, ExponentialCDF(3.0))
	if err != nil {
		t.Fatal(err)
	}
	crit, err := KSCriticalValue(n, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if d <= crit {
		t.Errorf("KS failed to reject uniform-vs-exponential: D=%v <= crit=%v", d, crit)
	}
}

func TestExponentialCDFShape(t *testing.T) {
	cdf := ExponentialCDF(2)
	if cdf(-1) != 0 || cdf(0) != 0 {
		t.Error("CDF not zero at origin")
	}
	if got := cdf(2); math.Abs(got-(1-math.Exp(-1))) > 1e-12 {
		t.Errorf("cdf(mean) = %v", got)
	}
	if cdf(1e9) < 0.999999 {
		t.Error("CDF does not approach 1")
	}
}
