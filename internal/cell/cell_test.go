package cell

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"wtcp/internal/errmodel"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// smallConfig is a quick multi-flow scenario that completes in well under
// a second of wall time: LAN-ish links, short transfers, mild fading.
func smallConfig(flows int) Config {
	return Config{
		Flows:             flows,
		BaseStations:      1,
		Policy:            RoundRobin,
		TransferSize:      64 * units.KB,
		PacketSize:        1536,
		Window:            16 * units.KB,
		WiredRate:         10 * units.Mbps,
		WiredDelay:        time.Millisecond,
		WirelessRate:      2 * units.Mbps,
		WirelessDelay:     time.Millisecond,
		Channel:           errmodel.PaperLAN(time.Second),
		PredictorAccuracy: 1.0,
		RTmax:             64,
		Seed:              1,
	}
}

func TestRunCompletesSmallPopulation(t *testing.T) {
	for _, policy := range []Policy{FIFO, RoundRobin, CSDP} {
		t.Run(policy.String(), func(t *testing.T) {
			cfg := smallConfig(4)
			cfg.Policy = policy
			if policy == CSDP {
				cfg.PredictorAccuracy = 0.9
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !res.Completed || res.CompletedFlows != 4 {
				t.Fatalf("run did not complete: %d/4 flows", res.CompletedFlows)
			}
			for f, fr := range res.Flows {
				if !fr.Completed || fr.Elapsed <= 0 {
					t.Errorf("flow %d: %+v", f, fr)
				}
			}
			if res.AggregateKbps <= 0 {
				t.Errorf("aggregate throughput %v", res.AggregateKbps)
			}
			if res.Fairness <= 0 || res.Fairness > 1 {
				t.Errorf("fairness %v outside (0,1]", res.Fairness)
			}
			if res.RadioAttempts == 0 {
				t.Error("no radio attempts recorded")
			}
			if res.Arena.LiveAtEnd != 0 {
				t.Errorf("arena leaked %d slots", res.Arena.LiveAtEnd)
			}
		})
	}
}

// TestRunDeterminism pins that a seed fully determines a run, and that
// changing the seed actually changes the outcome.
func TestRunDeterminism(t *testing.T) {
	cfg := smallConfig(8)
	cfg.EBSN = true
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(a.Flows, b.Flows) || a.Events != b.Events ||
		a.RadioAttempts != b.RadioAttempts {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if reflect.DeepEqual(a.Flows, c.Flows) {
		t.Fatal("different seeds produced identical per-flow results")
	}
}

// TestMultiBaseStation exercises the sharded layout: flows land on
// f mod B, each base station schedules independently.
func TestMultiBaseStation(t *testing.T) {
	cfg := smallConfig(6)
	cfg.BaseStations = 3
	cfg.SharedChannel = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatalf("completed %d/6 flows", res.CompletedFlows)
	}
	if res.Arena.LiveAtEnd != 0 {
		t.Errorf("arena leaked %d slots", res.Arena.LiveAtEnd)
	}
}

// TestStaggeredAdmission pins the AdmitBatch/AdmitEvery path: later
// batches cannot start before their admission instant.
func TestStaggeredAdmission(t *testing.T) {
	cfg := smallConfig(8)
	cfg.AdmitBatch = 2
	cfg.AdmitEvery = 50 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatalf("completed %d/8 flows", res.CompletedFlows)
	}
	// Flows 0..1 started at t=0; flow 6 started at t=150ms. A staggered
	// flow's elapsed time is measured from run start, so the late flows
	// must take at least their admission delay.
	if res.Flows[7].Elapsed < 150*time.Millisecond {
		t.Errorf("flow 7 finished in %v, before its admission instant", res.Flows[7].Elapsed)
	}
}

// TestOracleSampling runs with conformance checkers attached to a subset
// of flows; a healthy run must not trip them.
func TestOracleSampling(t *testing.T) {
	cfg := smallConfig(8)
	cfg.OracleSample = 4
	cfg.EBSN = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("oracle-sampled run failed: %v", err)
	}
	if !res.Completed {
		t.Fatalf("completed %d/8 flows", res.CompletedFlows)
	}
}

// TestOracleSamplingDoesNotPerturb pins that attaching the sampler
// changes no simulation outcome: observation must be pure.
func TestOracleSamplingDoesNotPerturb(t *testing.T) {
	cfg := smallConfig(6)
	plain, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg.OracleSample = 6
	sampled, err := Run(cfg)
	if err != nil {
		t.Fatalf("sampled Run: %v", err)
	}
	if !reflect.DeepEqual(plain.Flows, sampled.Flows) || plain.Events != sampled.Events {
		t.Fatal("oracle sampling perturbed the simulation")
	}
}

func TestValidate(t *testing.T) {
	base := smallConfig(4)
	for name, mutate := range map[string]func(*Config){
		"no flows":        func(c *Config) { c.Flows = 0 },
		"bad policy":      func(c *Config) { c.Policy = 0 },
		"tiny packet":     func(c *Config) { c.PacketSize = 40 },
		"no transfer":     func(c *Config) { c.TransferSize = 0 },
		"window too low":  func(c *Config) { c.Window = 100 },
		"no rate":         func(c *Config) { c.WiredRate = 0 },
		"accuracy range":  func(c *Config) { c.PredictorAccuracy = 1.5 },
		"bs over flows":   func(c *Config) { c.BaseStations = 9 },
		"chaos p range":   func(c *Config) { c.Chaos.DropP = 2 },
		"channel invalid": func(c *Config) { c.Channel = errmodel.Config{} },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := base
			mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

// TestHorizonCapsRun pins the incomplete-run path: an impossible horizon
// leaves flows unfinished with Elapsed equal to the clock at exit.
func TestHorizonCapsRun(t *testing.T) {
	cfg := smallConfig(4)
	cfg.TransferSize = 64 * units.MB
	cfg.Horizon = 100 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed {
		t.Fatal("64 MB x 4 flows cannot finish in 100 ms of 2 Mbps radio")
	}
	if res.Arena.LiveAtEnd != 0 {
		t.Errorf("arena leaked %d slots on the horizon path", res.Arena.LiveAtEnd)
	}
}

// TestRunContextCancel pins cooperative cancellation: an already-ended
// context halts the run with an error unwrapping to context.Canceled.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := smallConfig(4)
	_, err := RunContext(ctx, cfg, sim.Budget{})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
}

// TestRunContextBudget pins budget enforcement: a tiny event ceiling
// halts the run with a *sim.BudgetError even mid-admission-wave (the
// pump chunks its same-instant storms so the kernel sees progress).
func TestRunContextBudget(t *testing.T) {
	cfg := smallConfig(8)
	_, err := RunContext(context.Background(), cfg, sim.Budget{MaxEvents: 3})
	var be *sim.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want a *sim.BudgetError", err)
	}
	if be.Kind != sim.BudgetEvents {
		t.Fatalf("budget kind %q, want %q", be.Kind, sim.BudgetEvents)
	}
}

func TestPresetScales(t *testing.T) {
	for _, n := range []int{1000, 10000, 50000} {
		cfg := Preset(n)
		if err := cfg.Validate(); err != nil {
			t.Errorf("Preset(%d) invalid: %v", n, err)
		}
		if want := (n + 9999) / 10000; cfg.BaseStations != want {
			t.Errorf("Preset(%d): %d base stations, want %d", n, cfg.BaseStations, want)
		}
	}
}

// TestPresetSmokeRun completes a small preset end to end: the staggered
// admission, shared channels, and EBSN paths all execute.
func TestPresetSmokeRun(t *testing.T) {
	cfg := Preset(200)
	cfg.Horizon = 30 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatalf("completed %d/200 flows", res.CompletedFlows)
	}
	if res.Arena.LiveAtEnd != 0 {
		t.Errorf("arena leaked %d slots", res.Arena.LiveAtEnd)
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{FIFO: "fifo", RoundRobin: "roundrobin", CSDP: "csdp"} {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
	if !strings.Contains(Policy(9).String(), "9") {
		t.Error("unknown policy string should carry the value")
	}
}
