package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// This file locks down the kernel's determinism contract by differential
// testing: the same randomized schedule/cancel/run scenario is replayed
// against the production kernel (4-ary heap, lazy cancellation, pooled
// events) and against a deliberately naive reference queue built on
// container/heap with eager removal — the structure the kernel replaced.
// The two must produce bit-identical fire traces: same callbacks, same
// order, same virtual timestamps. Any divergence means the fast path
// changed observable semantics, which would silently invalidate every
// seeded replay in the repository.

// kern abstracts the two kernels under a driver that makes identical
// decisions against both.
type kern interface {
	now() time.Duration
	schedule(d time.Duration, fn func()) any
	cancel(h any)
	run(until time.Duration)
}

// realKern adapts the production Simulator.
type realKern struct{ s *Simulator }

func (r realKern) now() time.Duration                      { return r.s.Now() }
func (r realKern) schedule(d time.Duration, fn func()) any { return r.s.Schedule(d, fn) }
func (r realKern) cancel(h any)                            { r.s.Cancel(h.(Event)) }
func (r realKern) run(until time.Duration)                 { _ = r.s.Run(until) }

// modelItem and modelHeap are the reference queue: container/heap over
// boxed items ordered by (at, seq), with eager cancellation via
// heap.Remove — semantically the pre-optimization kernel.
type modelItem struct {
	at  time.Duration
	seq uint64
	fn  func()
	idx int // heap index, -1 once popped or removed
}

type modelHeap []*modelItem

func (h modelHeap) Len() int { return len(h) }
func (h modelHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h modelHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *modelHeap) Push(x any) {
	it := x.(*modelItem)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *modelHeap) Pop() any {
	old := *h
	n := len(old) - 1
	it := old[n]
	old[n] = nil
	it.idx = -1
	*h = old[:n]
	return it
}

type modelKern struct {
	h   modelHeap
	t   time.Duration
	seq uint64
}

func (m *modelKern) now() time.Duration { return m.t }

func (m *modelKern) schedule(d time.Duration, fn func()) any {
	if d < 0 {
		d = 0
	}
	it := &modelItem{at: m.t + d, seq: m.seq, fn: fn}
	m.seq++
	heap.Push(&m.h, it)
	return it
}

func (m *modelKern) cancel(h any) {
	it := h.(*modelItem)
	if it.idx >= 0 {
		heap.Remove(&m.h, it.idx)
		it.idx = -1
	}
}

func (m *modelKern) run(until time.Duration) {
	for len(m.h) > 0 {
		next := m.h[0]
		if until > 0 && next.at > until {
			m.t = until
			return
		}
		heap.Pop(&m.h)
		m.t = next.at
		next.fn()
	}
	if until > 0 && m.t < until {
		m.t = until
	}
}

// drive replays one randomized scenario against k and returns the fire
// trace. All randomness comes from the seeded rng; because both kernels
// are driven by the same seed, the rng draw sequence — including draws
// made inside callbacks — matches exactly as long as the kernels fire
// callbacks in the same order, which is precisely the property under
// test. The coarse delay grid forces heavy same-instant collisions so
// FIFO-within-instant is exercised constantly; callbacks schedule
// children and cancel survivors so cancellation interleaves with
// scheduling at every depth.
func drive(k kern, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	var trace []string
	var live []any
	nextID := 0
	var add func(depth int)
	add = func(depth int) {
		id := nextID
		nextID++
		d := time.Duration(rng.Intn(5)) * time.Millisecond
		h := k.schedule(d, func() {
			trace = append(trace, fmt.Sprintf("%d@%d", id, k.now()))
			if depth < 4 && rng.Intn(2) == 0 {
				add(depth + 1)
			}
			if len(live) > 0 && rng.Intn(3) == 0 {
				// Cancelling a fired handle is a no-op in both kernels,
				// so drawing from the full history is fine — and it
				// exercises the stale-handle path.
				k.cancel(live[rng.Intn(len(live))])
			}
		})
		live = append(live, h)
	}
	for i := 0; i < 60; i++ {
		add(0)
	}
	for i := 0; i < 20; i++ {
		k.cancel(live[rng.Intn(len(live))])
	}
	k.run(40 * time.Millisecond)
	return trace
}

// TestDifferentialDeterminism replays many seeded scenarios on the
// production kernel and the container/heap reference and requires
// bit-identical traces.
func TestDifferentialDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		got := drive(realKern{s: New()}, seed)
		want := drive(&modelKern{}, seed)
		if len(got) == 0 {
			t.Fatalf("seed %d: empty trace (scenario fired nothing)", seed)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: trace length %d (kernel) vs %d (reference)", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: traces diverge at index %d: kernel %q, reference %q",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestDifferentialDeterminismPooled repeats the comparison on a recycled
// simulator from the pool: reuse must not perturb the trace. The pooled
// run reuses event structs from the free list with bumped generations,
// so any ABA confusion between runs would surface here.
func TestDifferentialDeterminismPooled(t *testing.T) {
	s := New()
	for seed := int64(1); seed <= 20; seed++ {
		s.Reset()
		got := drive(realKern{s: s}, seed)
		want := drive(&modelKern{}, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: trace length %d (pooled kernel) vs %d (reference)", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: traces diverge at index %d: pooled kernel %q, reference %q",
					seed, i, got[i], want[i])
			}
		}
	}
}
