package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"wtcp/internal/experiment"
	"wtcp/internal/scenario"
)

// GET /v1/advise is the paper's §4.1 deployment proposal as a service
// endpoint: given the currently observed wireless error characteristic
// (the mean bad-period length), return the packet size that maximizes
// measured throughput under it, with the full calibration column
// behind the recommendation. The calibration points are ordinary
// Figure 7 sweep points settled through the same shared point ledger
// as /v1/sweep, so an advise query warm-starts from any overlapping
// sweep campaign already computed — and refines the table by running
// only the sizes nobody has measured yet.

// AdviseEntry is one calibration row: a packet size and its mean
// measured throughput under the queried error characteristic.
type AdviseEntry struct {
	PacketSizeBytes int     `json:"packet_size_bytes"`
	ThroughputKbps  float64 `json:"throughput_kbps"`
}

// AdviseResponse is the GET /v1/advise success body.
type AdviseResponse struct {
	Fingerprint string `json:"fingerprint"`
	// MeanBad is the canonicalized queried bad-period ("4s").
	MeanBad                    string        `json:"mean_bad"`
	RecommendedPacketSizeBytes int           `json:"recommended_packet_size_bytes"`
	ThroughputKbps             float64       `json:"throughput_kbps"`
	Table                      []AdviseEntry `json:"table"`
	// Quarantined lists calibration sizes whose points tripped the
	// circuit breaker and therefore back no recommendation.
	Quarantined []string `json:"quarantined,omitempty"`
}

// adviseBody is the journal form of an advise query.
type adviseBody struct {
	Bad string `json:"bad"`
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	v := r.URL.Query().Get("bad")
	if v == "" {
		// ?ber= is accepted as an alias: operators observing a bit-error
		// rate express it as the mean bad-period it induces.
		v = r.URL.Query().Get("ber")
	}
	if v == "" {
		s.met.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, 0, errorBody{
			Error: "advise needs ?bad= (the observed mean bad-period, e.g. ?bad=4s)",
		})
		return
	}
	bad, err := scenario.ParsePositiveDur("bad", v)
	if err != nil || bad == 0 {
		s.met.badRequests.Add(1)
		if err == nil {
			err = fmt.Errorf("bad period must be a positive duration like \"4s\"")
		}
		writeError(w, http.StatusBadRequest, 0, errorBody{Error: err.Error()})
		return
	}
	s.serveQuery(w, r, s.adviseQuery(bad))
}

// adviseOptions is the option class advise calibration runs under.
func (s *Server) adviseOptions() experiment.Options {
	opt := s.cfg.Advise
	if len(opt.PacketSizes) == 0 {
		opt.PacketSizes = experiment.PacketSizes
	}
	return opt
}

// adviseQuery binds a parsed advise query into the serveQuery pipeline.
func (s *Server) adviseQuery(bad time.Duration) query {
	opt := s.adviseOptions()
	opt.BadPeriods = []time.Duration{bad}
	fp := fingerprintOf(struct {
		Kind    string `json:"kind"`
		Options string `json:"options"`
	}{"advise/v1", experiment.Fingerprint(opt)})
	body, err := json.Marshal(adviseBody{Bad: bad.String()})
	if err != nil {
		panic(fmt.Sprintf("serve: encode advise journal: %v", err))
	}
	return query{
		kind:        "advise",
		fp:          fp,
		class:       "advise",
		journalBody: body,
		exec: func(ctx context.Context) outcome {
			return s.execAdvise(ctx, bad, fp)
		},
	}
}

// execAdvise settles one Figure 7 calibration point per packet size
// (basic TCP — the advisor tunes the baseline, as §4.1 proposes) and
// recommends the throughput-maximizing size.
func (s *Server) execAdvise(ctx context.Context, bad time.Duration, fp string) outcome {
	opt := s.engineOptions(ctx, s.adviseOptions())
	opt.Supervise = experiment.NewSupervisor()
	led, err := s.pointLedger(opt)
	if err != nil {
		return outcome{
			status: http.StatusInternalServerError,
			body:   marshalError(errorBody{Error: err.Error(), Fingerprint: fp}),
			failed: true,
		}
	}
	resp := AdviseResponse{Fingerprint: fp, MeanBad: bad.String()}
	best := -1
	for _, size := range opt.PacketSizes {
		if err := ctx.Err(); err != nil {
			return s.failureOutcome(ctx, fp, err)
		}
		spec := experiment.PointSpec{
			Sweep:  experiment.SweepFig7,
			Scheme: "basic",
			Bad:    bad,
			Size:   size,
		}
		pr, err := s.settlePoint(ctx, opt, led, spec)
		if err != nil {
			return s.failureOutcome(ctx, fp, err)
		}
		if pr.Quarantine != nil {
			resp.Quarantined = append(resp.Quarantined,
				fmt.Sprintf("%d bytes: %s (%s)", int(size), pr.Quarantine.Class, pr.Quarantine.Reason))
			continue
		}
		// Fig7 extract column 0 is ThroughputKbps; average the
		// replications like the figure generator does.
		var mean float64
		for _, rep := range pr.Replications {
			mean += rep.Values[0]
		}
		mean /= float64(len(pr.Replications))
		resp.Table = append(resp.Table, AdviseEntry{PacketSizeBytes: int(size), ThroughputKbps: mean})
		if best < 0 || mean > resp.Table[best].ThroughputKbps {
			best = len(resp.Table) - 1
		}
	}
	if best < 0 {
		return outcome{
			status: http.StatusUnprocessableEntity,
			body: marshalError(errorBody{
				Error:       "every calibration point quarantined; no recommendation is defensible",
				Fingerprint: fp,
			}),
			failed: true,
		}
	}
	resp.RecommendedPacketSizeBytes = resp.Table[best].PacketSizeBytes
	resp.ThroughputKbps = resp.Table[best].ThroughputKbps
	body, bad2, ok := marshalResponse(resp)
	if !ok {
		return bad2
	}
	return outcome{status: http.StatusOK, body: body, cacheable: true}
}
