package report

import (
	"context"
	"strings"
	"testing"
)

func TestGenerateQuickReport(t *testing.T) {
	md, err := Generate(context.Background(), Options{Replications: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	wantSections := []string{
		"# Replication report",
		"## Figures 3-5",
		"### Basic TCP (Fig 7)",
		"### EBSN (Fig 8)",
		"## Figure 9",
		"## Figures 10-11",
		"## Cell-scale simulation (struct-of-arrays engine)",
		"## Claim-by-claim verdicts",
	}
	for _, w := range wantSections {
		if !strings.Contains(md, w) {
			t.Errorf("report missing section %q", w)
		}
	}
	// The markdown tables must be well formed (headers followed by
	// separator rows).
	if !strings.Contains(md, "| pkt size |") || !strings.Contains(md, "| tput_th |") {
		t.Error("throughput tables malformed")
	}
	// Every checked claim must reproduce at this scale.
	if !AllReproduced(md) {
		failing := []string{}
		for _, line := range strings.Split(md, "\n") {
			if strings.Contains(line, "NOT reproduced") {
				failing = append(failing, line)
			}
		}
		t.Errorf("claims failed to reproduce:\n%s", strings.Join(failing, "\n"))
	}
}

func TestAllReproducedDetection(t *testing.T) {
	if !AllReproduced("text **All checked claims reproduced.** more") {
		t.Error("positive marker not detected")
	}
	if AllReproduced("**Some claims were NOT reproduced") {
		t.Error("negative report reported as clean")
	}
}

func TestGenerateDefaultsApplied(t *testing.T) {
	// Zero replications default to 5; just verify the options path (the
	// full-fidelity run itself is exercised by wtcp-report usage and the
	// quick path above).
	opt := Options{}.withDefaults()
	if opt.Replications != 5 {
		t.Errorf("default replications = %d", opt.Replications)
	}
}
