//go:build unix

package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startServer launches run() in a goroutine and returns the base URL it
// listens on plus a channel carrying its exit error. The caller drives
// shutdown by sending SIGTERM to the test process — the same signal a
// supervisor would send — and waits on the channel.
func startServer(t *testing.T, args []string) (string, <-chan error) {
	t.Helper()
	pr, pw := io.Pipe()
	errCh := make(chan error, 1)
	go func() {
		err := run(args, pw)
		pw.Close()
		errCh <- err
	}()
	lines := bufio.NewScanner(pr)
	for lines.Scan() {
		line := lines.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr := strings.Fields(line[i+len("listening on "):])[0]
			// Drain the rest of the pipe so run() never blocks on writes.
			go func() {
				for lines.Scan() {
				}
			}()
			return "http://" + addr, errCh
		}
	}
	select {
	case err := <-errCh:
		t.Fatalf("server exited before listening: %v", err)
	default:
		t.Fatal("server output ended before listening line")
	}
	return "", nil
}

func sigterm(t *testing.T) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
}

func waitExit(t *testing.T, errCh <-chan error) {
	t.Helper()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("server exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}

func TestServeRunAndGracefulExit(t *testing.T) {
	dir := t.TempDir()
	base, errCh := startServer(t, []string{"-data", dir, "-addr", "127.0.0.1:0"})

	body := []byte(`{"scenario":{"mean_bad":"4s","transfer_kb":50,"seed":3}}`)
	resp, err := http.Post(base+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: HTTP %d: %s", resp.StatusCode, fresh)
	}
	resp, err = http.Post(base+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	cached, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Wtcpd-Cache") != "hit" || !bytes.Equal(fresh, cached) {
		t.Errorf("repeat request: cache=%q identical=%v", resp.Header.Get("X-Wtcpd-Cache"), bytes.Equal(fresh, cached))
	}
	if resp, err := http.Get(base + "/healthz"); err == nil {
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/healthz: HTTP %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	sigterm(t)
	waitExit(t, errCh)
}

func TestDrainJournalsInFlightWorkAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	base, errCh := startServer(t, []string{"-data", dir, "-addr", "127.0.0.1:0", "-drain-grace", "50ms"})

	// Enough replications that the run is still going when the drain hits.
	body := []byte(`{"scenario":{"mean_bad":"4s","transfer_kb":100000,"seed":5},"replications":32}`)
	got := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			got <- 0
			return
		}
		resp.Body.Close()
		got <- resp.StatusCode
	}()
	time.Sleep(150 * time.Millisecond) // admitted and executing
	sigterm(t)
	waitExit(t, errCh)
	if status := <-got; status != http.StatusServiceUnavailable {
		t.Fatalf("drained in-flight request: HTTP %d, want 503", status)
	}

	pending, err := os.ReadDir(filepath.Join(dir, "pending"))
	if err != nil || len(pending) != 1 {
		t.Fatalf("journal after drain: %d entries (err %v), want 1", len(pending), err)
	}
	fp := strings.TrimSuffix(pending[0].Name(), ".json")

	// Second life on the same data directory resumes and finishes it.
	base2, errCh2 := startServer(t, []string{"-data", dir, "-addr", "127.0.0.1:0"})
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/result/%s", base2, fp))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if !strings.Contains(string(data), fp) {
				t.Errorf("result body does not carry its fingerprint: %s", data)
			}
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("resumed result: HTTP %d: %s", resp.StatusCode, data)
		}
		if time.Now().After(deadline) {
			t.Fatal("resumed work never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
	sigterm(t)
	waitExit(t, errCh2)
}

func TestDataFlagIsRequired(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:0"}, io.Discard); err == nil {
		t.Fatal("run without -data succeeded")
	}
}
