package experiment_test

import (
	"context"
	"fmt"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/experiment"
	"wtcp/internal/units"
)

// ExampleFig7 runs a reduced Figure 7 sweep and locates the optimal
// packet size for a given error condition — the paper's §4.1 proposal.
func ExampleFig7() {
	points, err := experiment.Fig7(context.Background(), experiment.Options{
		Replications: 2,
		Transfer:     40 * units.KB,
		PacketSizes:  []units.ByteSize{128, 512, 1536},
		BadPeriods:   []time.Duration{time.Second},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	size, tput := experiment.OptimalPacketSize(points, time.Second)
	fmt.Println("points:", len(points))
	fmt.Println("optimum in sweep:", size == 128 || size == 512 || size == 1536)
	fmt.Println("optimum positive:", tput > 0)
	// Output:
	// points: 3
	// optimum in sweep: true
	// optimum positive: true
}

// ExampleCalibrateAdvisor builds the base station's §4.1 advisory table
// and answers a point query.
func ExampleCalibrateAdvisor() {
	advisor, err := experiment.CalibrateAdvisor(context.Background(), experiment.Options{
		Replications: 2,
		Transfer:     40 * units.KB,
		PacketSizes:  []units.ByteSize{256, 512, 1024},
		BadPeriods:   []time.Duration{time.Second, 4 * time.Second},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("entries:", len(advisor.Table()))
	rec := advisor.Recommend(900 * time.Millisecond)
	fmt.Println("recommendation in sweep:", rec == 256 || rec == 512 || rec == 1024)
	// Output:
	// entries: 2
	// recommendation in sweep: true
}

// ExampleTraceFigure reproduces the Figure 5 headline: EBSN removes every
// source timeout under the deterministic fade schedule.
func ExampleTraceFigure() {
	r, err := experiment.TraceFigure(bs.EBSN, 60*time.Second)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("timeouts:", r.Summary.Timeouts)
	// Output:
	// timeouts: 0
}
