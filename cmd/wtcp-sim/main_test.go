package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunBasicScenario(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-scheme", "ebsn", "-packet", "576", "-bad", "2s", "-transfer", "30"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"scheme=ebsn", "throughput", "goodput", "retransmitted", "timeouts", "tput_th"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunStrictMode(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-strict", "-scheme", "ebsn", "-packet", "576", "-bad", "2s", "-transfer", "30"})
	})
	if err != nil {
		t.Fatalf("strict run: %v", err)
	}
	if !strings.Contains(out, "throughput") {
		t.Errorf("strict run produced no summary:\n%s", out)
	}
}

func TestRunLANPreset(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-lan", "-scheme", "basic", "-bad", "800ms", "-transfer", "512"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "packet=1536B") {
		t.Errorf("LAN preset not applied:\n%s", out)
	}
}

func TestRunReplications(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-scheme", "basic", "-transfer", "20", "-reps", "3"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "sd ") {
		t.Errorf("replicated run shows no deviation:\n%s", out)
	}
}

func TestRunVerbose(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-scheme", "localrecovery", "-transfer", "20", "-v"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "sender:") || !strings.Contains(out, "downlink:") {
		t.Errorf("verbose output missing component stats:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-scheme", "bogus"}) }); err == nil {
		t.Error("bogus scheme accepted")
	}
	if _, err := capture(t, func() error { return run([]string{"-packet", "10"}) }); err == nil {
		t.Error("sub-header packet size accepted")
	}
	if _, err := capture(t, func() error { return run([]string{"-nonsense"}) }); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunSplitScheme(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-scheme", "split", "-transfer", "20"})
	})
	if err != nil {
		t.Fatalf("split run: %v", err)
	}
	if !strings.Contains(out, "scheme=split") {
		t.Errorf("split output wrong:\n%s", out)
	}
}

func TestRunJSONOutput(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-scheme", "ebsn", "-transfer", "20", "-reps", "2", "-json"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if parsed["scheme"] != "ebsn" {
		t.Errorf("scheme = %v", parsed["scheme"])
	}
	if parsed["replications"].(float64) != 2 {
		t.Errorf("replications = %v", parsed["replications"])
	}
	if _, ok := parsed["last_replication"].(map[string]any); !ok {
		t.Error("component detail missing")
	}
	if parsed["throughput_kbps_mean"].(float64) <= 0 {
		t.Error("zero throughput in JSON output")
	}
}
