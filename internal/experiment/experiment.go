// Package experiment reproduces every result-bearing figure of the paper:
//
//   - Figures 3-5: deterministic-channel packet traces for basic TCP,
//     local recovery, and EBSN (TraceFigure).
//   - Figure 7: WAN throughput vs wired packet size for basic TCP, four
//     bad-period lengths (Fig7).
//   - Figure 8: the same sweep under EBSN (Fig8).
//   - Figure 9: WAN retransmitted data vs packet size for both schemes
//     (Fig9).
//   - Figures 10-11: LAN throughput and retransmitted data vs mean bad
//     period for basic TCP and EBSN (LANStudy).
//
// Each experiment runs independent seeded replications (the paper reports
// standard deviations below 4%) and returns per-point samples plus the
// theoretical maximum tput_th the paper marks on its axes.
//
// Sweeps run on a crash-safe engine (engine.go): they honour a
// context.Context, can spread replications over a bounded worker pool
// without changing any result bit, checkpoint finished points to disk so
// a killed campaign resumes where it stopped, and capture failed
// replications as repro bundles for cmd/wtcp-repro.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
	"wtcp/internal/sim"
	"wtcp/internal/stats"
	"wtcp/internal/units"
)

// PacketSizes is the paper's swept wired-packet-size axis (128-1536
// bytes).
var PacketSizes = []units.ByteSize{
	128, 256, 384, 512, 640, 768, 896, 1024, 1152, 1280, 1408, 1536,
}

// WANBadPeriods is the paper's wide-area mean-bad-period axis.
var WANBadPeriods = []time.Duration{
	1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second,
}

// LANBadPeriods is the paper's local-area mean-bad-period axis
// (400 ms - 1.6 s).
var LANBadPeriods = []time.Duration{
	400 * time.Millisecond, 600 * time.Millisecond, 800 * time.Millisecond,
	1000 * time.Millisecond, 1200 * time.Millisecond, 1400 * time.Millisecond,
	1600 * time.Millisecond,
}

// Options tunes an experiment run.
type Options struct {
	// Replications per point (default 5).
	Replications int
	// BaseSeed offsets the replication seeds so independent experiment
	// invocations can use disjoint randomness.
	BaseSeed int64
	// Transfer overrides the preset transfer size (tests use smaller
	// transfers for speed); zero keeps the paper's value.
	Transfer units.ByteSize
	// PacketSizes and BadPeriods override the swept axes; nil keeps the
	// paper's.
	PacketSizes []units.ByteSize
	BadPeriods  []time.Duration
	// Retries bounds how many times a failed or watchdog-aborted
	// replication is re-run with fresh randomness before being skipped
	// (default 1; negative disables retrying).
	Retries int
	// Checks enables runtime invariant checking inside every run (see
	// core.Config.Checks). A violation fails the replication.
	Checks bool
	// Oracle arms the streaming conformance checker inside every run (see
	// core.Config.Oracle): each trace event is validated against the
	// Tahoe, ARQ, and EBSN rule sets, and a violation fails the
	// replication with the broken rule's name.
	Oracle bool

	// Workers bounds how many replications of a point run concurrently
	// (default 1, i.e. sequential). Results are identical for any worker
	// count: each replication is an independent single-threaded
	// simulation, and samples are aggregated in seed order.
	Workers int
	// Checkpoint, when non-empty, names a file finished points are saved
	// to (atomic write-rename) and reloaded from, so an interrupted
	// sweep resumes from the last completed point. The file embeds a
	// fingerprint of the result-affecting options; resuming under
	// different options is refused.
	Checkpoint string
	// ReproDir, when non-empty, names a directory where each permanently
	// failed replication is captured as a repro bundle for cmd/wtcp-repro.
	ReproDir string
	// OnPoint, when set, is called with each point's key after the point
	// is freshly computed (not when reloaded from the checkpoint). Used
	// for progress reporting and by tests to interrupt a sweep.
	OnPoint func(key string)

	// Supervise arms the per-point circuit breaker (see supervise.go):
	// a point whose replications exhaust the engine's patience —
	// resource-exhausted, or every replication permanently failed — is
	// quarantined and recorded on the Supervisor (and in the
	// checkpoint), and the sweep continues degraded instead of failing.
	// Nil keeps the historical all-or-nothing behaviour.
	Supervise *Supervisor
	// RunBudget layers extra per-replication resource ceilings between
	// each run's own Config.Budget and the engine defaults
	// (DefaultRunWall, DefaultRunMaxEvents). Zero fields inherit;
	// negative fields mean explicitly unlimited.
	RunBudget sim.Budget
	// NoRunBudget disables the engine's default per-run wall-clock and
	// event ceilings (RunBudget and per-run Config.Budget still apply).
	NoRunBudget bool
	// Health, when set, receives real-time run telemetry: active
	// replications, events/sec, completed/retried/quarantined counts,
	// and the straggler log. See Health.SetStatusPath / NotifyOnSignal.
	Health *Health
}

func (o Options) withDefaults() Options {
	if o.Replications <= 0 {
		o.Replications = 5
	}
	return o
}

func (o Options) packetSizes() []units.ByteSize {
	if len(o.PacketSizes) > 0 {
		return o.PacketSizes
	}
	return PacketSizes
}

func (o Options) wanBadPeriods() []time.Duration {
	if len(o.BadPeriods) > 0 {
		return o.BadPeriods
	}
	return WANBadPeriods
}

func (o Options) lanBadPeriods() []time.Duration {
	if len(o.BadPeriods) > 0 {
		return o.BadPeriods
	}
	return LANBadPeriods
}

// workers resolves the worker-pool width.
func (o Options) workers() int {
	if o.Workers > 1 {
		return o.Workers
	}
	return 1
}

// fingerprint digests the result-affecting options. Workers, Checkpoint,
// ReproDir, OnPoint, and the supervision knobs (Supervise, RunBudget,
// NoRunBudget, Health) are deliberately excluded: they change how a
// sweep executes, never what a within-budget run measures, so a
// checkpoint written with -workers 4 resumes fine under -workers 1 and
// a governed sweep's surviving points are bit-identical to an
// ungoverned run's.
func (o Options) fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d reps=%d seed=%d transfer=%d retries=%d checks=%v oracle=%v",
		checkpointVersion, o.Replications, o.BaseSeed, o.Transfer, o.retries(), o.Checks, o.Oracle)
	fmt.Fprintf(&b, " sizes=%v wanBads=%v lanBads=%v",
		o.packetSizes(), o.wanBadPeriods(), o.lanBadPeriods())
	return b.String()
}

// openCheckpoint opens the configured checkpoint store, or nil when
// checkpointing is off.
func (o Options) openCheckpoint() (*checkpoint, error) {
	if o.Checkpoint == "" {
		return nil, nil
	}
	return openCheckpoint(o.Checkpoint, o.fingerprint())
}

// ThroughputPoint is one (bad period, packet size) cell of Figures 7/8.
type ThroughputPoint struct {
	Scheme         bs.Scheme
	BadPeriod      time.Duration
	PacketSize     units.ByteSize
	ThroughputKbps *stats.Sample
	// Goodput is the paper's second metric: useful data over everything
	// the source transmitted.
	Goodput *stats.Sample
	// TheoreticalMaxKbps is the paper's tput_th for this bad period.
	TheoreticalMaxKbps float64
	// Seeds records, in replication order, the seed each contributing run
	// actually used — a retried replication shows its substituted seed.
	Seeds []int64
}

// RetransPoint is one cell of Figure 9 (and the per-scheme halves of
// Figure 11): source-retransmitted data in KB.
type RetransPoint struct {
	Scheme      bs.Scheme
	BadPeriod   time.Duration
	PacketSize  units.ByteSize
	RetransKB   *stats.Sample
	TimeoutsAvg float64
	// Seeds records the seed each contributing replication actually used.
	Seeds []int64
}

// Sweep-point key builders. These strings are load-bearing: they key
// the checkpoint ledger, so the sequential engine and the fleet layer
// (internal/fleet) must derive them identically.
func wanKey(scheme bs.Scheme, bad time.Duration, size units.ByteSize) string {
	return fmt.Sprintf("wan/%v/bad=%v/size=%d", scheme, bad, size)
}

func fig9Key(scheme bs.Scheme, bad time.Duration, size units.ByteSize) string {
	return fmt.Sprintf("fig9/%v/bad=%v/size=%d", scheme, bad, size)
}

func lanKey(scheme bs.Scheme, bad time.Duration) string {
	return fmt.Sprintf("lan/%v/bad=%v", scheme, bad)
}

// wanSweep runs the WAN packet-size sweep for one scheme.
func wanSweep(ctx context.Context, scheme bs.Scheme, opt Options) ([]ThroughputPoint, error) {
	opt = opt.withDefaults()
	ck, err := opt.openCheckpoint()
	if err != nil {
		return nil, err
	}
	defer ck.close()
	var tps []ThroughputPoint
	for _, bad := range opt.wanBadPeriods() {
		for _, size := range opt.packetSizes() {
			key := wanKey(scheme, bad, size)
			reps, err := runPoint(ctx, opt, ck, key, func(seed int64) core.Config {
				return wanConfig(scheme, size, bad, opt, seed)
			}, func(r *core.Result) []float64 {
				return []float64{r.Summary.ThroughputKbps, r.Summary.Goodput}
			})
			if errors.Is(err, errPointQuarantined) {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("%v sweep, bad period %v, packet size %d: %w", scheme, bad, size, err)
			}
			var tput, goodput stats.Sample
			for _, rep := range reps {
				vs := rep.floats()
				tput.Add(vs[0])
				goodput.Add(vs[1])
			}
			cfg := core.WAN(scheme, size, bad)
			tps = append(tps, ThroughputPoint{
				Scheme:             scheme,
				BadPeriod:          bad,
				PacketSize:         size,
				ThroughputKbps:     &tput,
				Goodput:            &goodput,
				TheoreticalMaxKbps: cfg.TheoreticalMaxKbps(),
				Seeds:              seedsOf(reps),
			})
		}
	}
	return tps, nil
}

// wanConfig builds one run's configuration.
func wanConfig(scheme bs.Scheme, size units.ByteSize, bad time.Duration, opt Options, seed int64) core.Config {
	cfg := core.WAN(scheme, size, bad)
	if opt.Transfer > 0 {
		cfg.TransferSize = opt.Transfer
	}
	cfg.Seed = opt.BaseSeed + seed
	cfg.Checks = opt.Checks
	cfg.Oracle = opt.Oracle
	return cfg
}

// lanConfig builds one LAN run's configuration.
func lanConfig(scheme bs.Scheme, bad time.Duration, opt Options, seed int64) core.Config {
	cfg := core.LAN(scheme, bad)
	if opt.Transfer > 0 {
		cfg.TransferSize = opt.Transfer
	}
	cfg.Seed = opt.BaseSeed + seed
	cfg.Checks = opt.Checks
	cfg.Oracle = opt.Oracle
	return cfg
}

// retries resolves the per-replication retry budget.
func (o Options) retries() int {
	switch {
	case o.Retries > 0:
		return o.Retries
	case o.Retries < 0:
		return 0
	default:
		return 1
	}
}

// retrySeedOffset pushes a retried replication's seed far outside the
// normal per-point seed range, so retries draw fresh, disjoint randomness
// instead of replaying the failure.
const retrySeedOffset = int64(1) << 20

// firstLine trims a multi-line diagnostic (a watchdog snapshot) to its
// summary line for inline error messages.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Fig7 reproduces Figure 7: basic-TCP throughput vs packet size.
func Fig7(ctx context.Context, opt Options) ([]ThroughputPoint, error) {
	return wanSweep(ctx, bs.Basic, opt)
}

// Fig8 reproduces Figure 8: EBSN throughput vs packet size.
func Fig8(ctx context.Context, opt Options) ([]ThroughputPoint, error) {
	return wanSweep(ctx, bs.EBSN, opt)
}

// Fig9 reproduces Figure 9: retransmitted data vs packet size for basic
// TCP and EBSN.
func Fig9(ctx context.Context, opt Options) ([]RetransPoint, error) {
	opt = opt.withDefaults()
	ck, err := opt.openCheckpoint()
	if err != nil {
		return nil, err
	}
	defer ck.close()
	var out []RetransPoint
	for _, scheme := range []bs.Scheme{bs.Basic, bs.EBSN} {
		for _, bad := range opt.wanBadPeriods() {
			for _, size := range opt.packetSizes() {
				key := fig9Key(scheme, bad, size)
				reps, err := runPoint(ctx, opt, ck, key, func(seed int64) core.Config {
					return wanConfig(scheme, size, bad, opt, seed)
				}, func(r *core.Result) []float64 {
					return []float64{r.Summary.RetransmittedKB(), float64(r.Summary.Timeouts)}
				})
				if errors.Is(err, errPointQuarantined) {
					continue
				}
				if err != nil {
					return nil, fmt.Errorf("fig9 %v, bad period %v, packet size %d: %w", scheme, bad, size, err)
				}
				var retrans stats.Sample
				var timeouts float64
				for _, rep := range reps {
					vs := rep.floats()
					retrans.Add(vs[0])
					timeouts += vs[1]
				}
				out = append(out, RetransPoint{
					Scheme:      scheme,
					BadPeriod:   bad,
					PacketSize:  size,
					RetransKB:   &retrans,
					TimeoutsAvg: timeouts / float64(len(reps)),
					Seeds:       seedsOf(reps),
				})
			}
		}
	}
	return out, nil
}

// LANPoint is one (scheme, bad period) cell of Figures 10 and 11.
type LANPoint struct {
	Scheme             bs.Scheme
	BadPeriod          time.Duration
	ThroughputMbps     *stats.Sample
	RetransKB          *stats.Sample
	TimeoutsAvg        float64
	TheoreticalMaxMbps float64
	// Seeds records the seed each contributing replication actually used.
	Seeds []int64
}

// LANStudy reproduces Figures 10 (throughput vs bad period) and 11
// (retransmitted data vs bad period) in one pass over basic TCP and EBSN.
func LANStudy(ctx context.Context, opt Options) ([]LANPoint, error) {
	opt = opt.withDefaults()
	ck, err := opt.openCheckpoint()
	if err != nil {
		return nil, err
	}
	defer ck.close()
	var out []LANPoint
	for _, scheme := range []bs.Scheme{bs.Basic, bs.EBSN} {
		for _, bad := range opt.lanBadPeriods() {
			key := lanKey(scheme, bad)
			reps, err := runPoint(ctx, opt, ck, key, func(seed int64) core.Config {
				return lanConfig(scheme, bad, opt, seed)
			}, func(r *core.Result) []float64 {
				return []float64{r.Summary.ThroughputMbps, r.Summary.RetransmittedKB(), float64(r.Summary.Timeouts)}
			})
			if errors.Is(err, errPointQuarantined) {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("lan study %v, bad period %v: %w", scheme, bad, err)
			}
			var tput, retrans stats.Sample
			var timeouts float64
			for _, rep := range reps {
				vs := rep.floats()
				tput.Add(vs[0])
				retrans.Add(vs[1])
				timeouts += vs[2]
			}
			cfg := core.LAN(scheme, bad)
			out = append(out, LANPoint{
				Scheme:             scheme,
				BadPeriod:          bad,
				ThroughputMbps:     &tput,
				RetransKB:          &retrans,
				TimeoutsAvg:        timeouts / float64(len(reps)),
				TheoreticalMaxMbps: cfg.TheoreticalMaxKbps() / 1000,
				Seeds:              seedsOf(reps),
			})
		}
	}
	return out, nil
}

// TraceFigure reproduces one of Figures 3-5: a deterministic-channel run
// (good 10 s / bad 4 s, exactly repeating) of a 576-byte-packet transfer
// with the packet trace collected. scheme selects the figure: Basic =
// Fig. 3, LocalRecovery = Fig. 4, EBSN = Fig. 5.
func TraceFigure(scheme bs.Scheme, horizon time.Duration) (*core.Result, error) {
	cfg := core.WAN(scheme, core.PaperWANPacketDefault, 4*time.Second)
	cfg.Channel.Deterministic = true
	cfg.CollectTrace = true
	cfg.Oracle = true
	if horizon > 0 {
		cfg.Horizon = horizon
	}
	return core.Run(cfg)
}

// OptimalPacketSize reports the packet size with the highest mean
// throughput among the given points for one bad period, with the winning
// mean.
func OptimalPacketSize(points []ThroughputPoint, bad time.Duration) (units.ByteSize, float64) {
	var bestSize units.ByteSize
	best := -1.0
	for _, p := range points {
		if p.BadPeriod != bad {
			continue
		}
		if m := p.ThroughputKbps.Mean(); m > best {
			best = m
			bestSize = p.PacketSize
		}
	}
	return bestSize, best
}
