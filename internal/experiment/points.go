package experiment

import (
	"context"
	"fmt"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
	"wtcp/internal/units"
)

// This file is the engine's distributable face: a sweep point as a
// value (PointSpec) instead of a pair of closures, the enumeration of a
// campaign's whole point grid in canonical sweep order, and a runner
// that executes one spec in isolation. internal/fleet ships PointSpecs
// to workers over HTTP and merges the returned records into the same
// checkpoint ledger the sequential engine writes — which is what makes
// a sharded campaign's output bit-identical to a single-process run.

// Sweep names accepted by SweepSpecs (the campaign manifest's "sweeps"
// list).
const (
	SweepFig7 = "fig7" // WAN throughput vs packet size, basic TCP
	SweepFig8 = "fig8" // WAN throughput vs packet size, EBSN
	SweepFig9 = "fig9" // WAN retransmitted data, both schemes
	SweepLAN  = "lan"  // LAN throughput + retransmitted data, both schemes
)

// PointSpec identifies one sweep point of a named figure sweep. It is
// pure data — JSON-serializable, comparable — and, together with the
// campaign Options, determines the point's build/extract behaviour and
// its checkpoint key exactly as the sequential sweep loops do.
type PointSpec struct {
	// Sweep is one of the Sweep* constants.
	Sweep string `json:"sweep"`
	// Scheme is the bs.Scheme name ("basic", "ebsn", ...).
	Scheme string `json:"scheme"`
	// Bad is the mean bad-period for the point.
	Bad time.Duration `json:"bad_ns"`
	// Size is the wired packet size; zero for LAN points (the LAN sweep
	// does not sweep packet size).
	Size units.ByteSize `json:"size_bytes,omitempty"`
}

// Key returns the point's checkpoint-ledger key, identical to the one
// the sequential sweep loop would use.
func (s PointSpec) Key() (string, error) {
	scheme, err := bs.ParseScheme(s.Scheme)
	if err != nil {
		return "", fmt.Errorf("experiment: point spec: %w", err)
	}
	switch s.Sweep {
	case SweepFig7, SweepFig8:
		return wanKey(scheme, s.Bad, s.Size), nil
	case SweepFig9:
		return fig9Key(scheme, s.Bad, s.Size), nil
	case SweepLAN:
		return lanKey(scheme, s.Bad), nil
	default:
		return "", fmt.Errorf("experiment: point spec: unknown sweep %q (want %s, %s, %s, or %s)",
			s.Sweep, SweepFig7, SweepFig8, SweepFig9, SweepLAN)
	}
}

// SweepSpecs enumerates the full point grid of the named sweeps under
// opt, in the exact order the sequential engine visits them. The order
// matters to no one's correctness — results merge by key — but keeping
// it canonical makes coordinator logs and snapshots line up with the
// sequential engine's progress output.
func SweepSpecs(opt Options, sweeps []string) ([]PointSpec, error) {
	opt = opt.withDefaults()
	var out []PointSpec
	for _, sweep := range sweeps {
		switch sweep {
		case SweepFig7, SweepFig8:
			scheme := bs.Basic
			if sweep == SweepFig8 {
				scheme = bs.EBSN
			}
			for _, bad := range opt.wanBadPeriods() {
				for _, size := range opt.packetSizes() {
					out = append(out, PointSpec{Sweep: sweep, Scheme: scheme.String(), Bad: bad, Size: size})
				}
			}
		case SweepFig9:
			for _, scheme := range []bs.Scheme{bs.Basic, bs.EBSN} {
				for _, bad := range opt.wanBadPeriods() {
					for _, size := range opt.packetSizes() {
						out = append(out, PointSpec{Sweep: sweep, Scheme: scheme.String(), Bad: bad, Size: size})
					}
				}
			}
		case SweepLAN:
			for _, scheme := range []bs.Scheme{bs.Basic, bs.EBSN} {
				for _, bad := range opt.lanBadPeriods() {
					out = append(out, PointSpec{Sweep: sweep, Scheme: scheme.String(), Bad: bad})
				}
			}
		default:
			return nil, fmt.Errorf("experiment: unknown sweep %q (want %s, %s, %s, or %s)",
				sweep, SweepFig7, SweepFig8, SweepFig9, SweepLAN)
		}
	}
	return out, nil
}

// buildExtract resolves the spec into the same build/extract pair the
// sequential sweep loop would construct for the point.
func (s PointSpec) buildExtract(opt Options) (func(int64) core.Config, func(*core.Result) []float64, error) {
	scheme, err := bs.ParseScheme(s.Scheme)
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: point spec: %w", err)
	}
	switch s.Sweep {
	case SweepFig7, SweepFig8:
		return func(seed int64) core.Config {
				return wanConfig(scheme, s.Size, s.Bad, opt, seed)
			}, func(r *core.Result) []float64 {
				return []float64{r.Summary.ThroughputKbps, r.Summary.Goodput}
			}, nil
	case SweepFig9:
		return func(seed int64) core.Config {
				return wanConfig(scheme, s.Size, s.Bad, opt, seed)
			}, func(r *core.Result) []float64 {
				return []float64{r.Summary.RetransmittedKB(), float64(r.Summary.Timeouts)}
			}, nil
	case SweepLAN:
		return func(seed int64) core.Config {
				return lanConfig(scheme, s.Bad, opt, seed)
			}, func(r *core.Result) []float64 {
				return []float64{r.Summary.ThroughputMbps, r.Summary.RetransmittedKB(), float64(r.Summary.Timeouts)}
			}, nil
	default:
		return nil, nil, fmt.Errorf("experiment: point spec: unknown sweep %q", s.Sweep)
	}
}

// PointOutcome is the result of executing one PointSpec: exactly one of
// Reps (the seed-ordered replication records) or Quarantine (the point
// tripped its circuit breaker under supervision) is set.
type PointOutcome struct {
	Key        string      `json:"key"`
	Reps       []RepRecord `json:"reps,omitempty"`
	Quarantine *Quarantine `json:"quarantine,omitempty"`
}

// RunPointSpec executes one sweep point exactly as the sequential
// engine would — same seeds, same retry/backoff schedule, same
// classification policy — but with no checkpoint involved: the caller
// (a fleet worker) owns delivering the outcome to the ledger. Fail-fast
// failures (protocol-bug, panic) and cancellation return an error;
// with opt.Supervise armed, breaker trips return a Quarantine record
// instead.
func RunPointSpec(ctx context.Context, opt Options, spec PointSpec) (PointOutcome, error) {
	opt = opt.withDefaults()
	key, err := spec.Key()
	if err != nil {
		return PointOutcome{}, err
	}
	build, extract, err := spec.buildExtract(opt)
	if err != nil {
		return PointOutcome{}, err
	}
	reps, quar, err := executePoint(ctx, opt, key, build, extract)
	if err != nil {
		return PointOutcome{}, err
	}
	return PointOutcome{Key: key, Reps: reps, Quarantine: quar}, nil
}
