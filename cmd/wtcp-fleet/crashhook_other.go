//go:build !unix

package main

import "wtcp/internal/fleet"

// hookWorkerCrash is a no-op on platforms without SIGKILL; the crash
// acceptance tests are unix-only.
func hookWorkerCrash(cfg *fleet.WorkerConfig) {}
