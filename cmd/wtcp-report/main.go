// Command wtcp-report runs the full replication suite and emits a
// markdown report: every figure's table regenerated fresh, plus a
// claim-by-claim verdict list checking the paper's qualitative statements
// against the new measurements.
//
//	wtcp-report > replication.md
//	wtcp-report -quick          # CI-sized sweeps
//	wtcp-report -reps 10        # smoother curves
//	wtcp-report -checkpoint sweep.json -workers 4
//
// The command exits non-zero if any checked claim fails to reproduce.
// SIGINT/SIGTERM stop the suite cleanly at the next simulation boundary;
// with -checkpoint, rerunning resumes from the finished sweep points.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"wtcp/internal/experiment"
	"wtcp/internal/report"
	"wtcp/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "wtcp-report: interrupted; checkpointed points are saved, rerun to resume")
		} else {
			fmt.Fprintln(os.Stderr, "wtcp-report:", err)
		}
		os.Exit(1)
	}
	os.Exit(code)
}

func run(ctx context.Context, args []string, out *os.File) (int, error) {
	fs := flag.NewFlagSet("wtcp-report", flag.ContinueOnError)
	var (
		reps       = fs.Int("reps", 5, "replications per data point")
		quick      = fs.Bool("quick", false, "CI-sized sweeps (smaller transfers, fewer points)")
		seed       = fs.Int64("seed", 0, "base seed offset")
		checkpoint = fs.String("checkpoint", "", "checkpoint file: finished sweep points are saved here and an interrupted run resumes from them")
		workers    = fs.Int("workers", 1, "replications run concurrently per sweep point (results are identical for any value)")
		reproDir   = fs.String("repro", "", "directory to capture failed replications as wtcp-repro bundles")

		supervise   = fs.Bool("supervise", true, "quarantine pathological sweep points (listed in the report) instead of failing the whole suite")
		maxEvents   = fs.Int64("max-events", 0, "per-run fired-event budget (0 = engine default, negative = unlimited)")
		maxVTime    = fs.Duration("max-vtime", 0, "per-run virtual-time budget (0 = none)")
		runDeadline = fs.Duration("run-deadline", 0, "per-run wall-clock deadline (0 = engine default, negative = unlimited)")
		maxHeap     = fs.Int64("max-heap", 0, "per-run heap ceiling in bytes (0 = none)")
		noRunBudget = fs.Bool("no-run-budget", false, "disable the default per-run event and wall-clock ceilings")
		statusPath  = fs.String("status", "", "write a health heartbeat JSON to this file while the suite runs (poll it, or send SIGUSR1 for a stderr dump)")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	health := experiment.NewHealth()
	stopBeat := health.Heartbeat(*statusPath, os.Stderr)
	defer stopBeat()
	md, err := report.Generate(ctx, report.Options{
		Replications: *reps,
		Quick:        *quick,
		BaseSeed:     *seed,
		Checkpoint:   *checkpoint,
		Workers:      *workers,
		ReproDir:     *reproDir,
		Supervise:    *supervise,
		RunBudget: sim.Budget{MaxEvents: *maxEvents, MaxVirtual: *maxVTime,
			WallClock: *runDeadline, MaxHeapBytes: *maxHeap},
		NoRunBudget: *noRunBudget,
		Health:      health,
	})
	stopBeat()
	if err != nil {
		return 1, err
	}
	fmt.Fprint(out, md)
	if !report.AllReproduced(md) {
		return 2, nil
	}
	return 0, nil
}
