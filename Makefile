# Convenience targets for the wtcp reproduction.

GO ?= go

.PHONY: all build vet test test-race check conformance budget-smoke fleet-smoke serve-smoke scale-smoke zoo-smoke goldens bench bench-baseline bench-compare bench-smoke bench-scale bench-scale-baseline figures traces report fuzz fuzz-smoke clean

all: build vet test

# Pre-PR gate: static analysis plus the full suite under the race
# detector (the simulator is single-threaded by design; -race proves it),
# plus the protocol-conformance, run-supervision, fleet, service,
# cell-scale, and protocol-zoo gates.
check: vet test-race conformance budget-smoke fleet-smoke serve-smoke scale-smoke zoo-smoke

# Supervision gate: a tiny sweep with one pathological (livelocking)
# point under aggressive run budgets, with the worker pool and heartbeat
# exercised under -race. Asserts clean quarantine, partial results,
# checkpoint + status-file + repro-bundle plumbing.
budget-smoke:
	$(GO) test -race -run 'TestBudgetSmoke|TestGovernedSweepQuarantinesPathologicalPoint' ./internal/experiment/

# Fleet gate: a four-worker sharded campaign under -race with a
# chaos-injected SIGKILL of a live lease holder; asserts every point
# settles exactly once and the merged ledger is bit-identical to the
# sequential engine's output.
fleet-smoke:
	$(GO) test -race -run TestFleetSmoke ./internal/fleet/

# Service gate: the wtcpd storm/drain acceptance test under -race — a
# seeded 50-request storm with chaos-injected malformed bodies and
# client disconnects against a 2-slot server, SIGTERM drain mid-storm,
# restart, and resume; asserts nothing lost, nothing double-run, finite
# Retry-After on rejects, byte-identical cache hits — plus the
# single-flight dedup test.
serve-smoke:
	$(GO) test -race -run 'TestServeStormDrainResume|TestSingleFlightDeduplicatesConcurrentRequests' ./internal/serve/

# Cell-scale gate: the 1k-flow SLO, the arena refcount property under
# chaos loss/dup/reorder, and the old-vs-new differential pin, all under
# -race; then the steady-state zero-alloc pins without it (the race
# detector instruments allocation, making AllocsPerRun meaningless).
scale-smoke:
	$(GO) test -race -run 'TestCellSLO1k|TestArenaRefcountsUnderChaos|TestRunMatchesReferenceEngine' ./internal/cell/ ./internal/multiconn/
	$(GO) test -run 'TestSteadyStateZeroAllocs' ./internal/cell/

# Protocol-zoo gate, under -race: the Tahoe-profile refactor regression
# and cross-protocol metamorphic orderings, the snoop cache property
# grid and Tahoe/Reno differential pin, the full variant x scheme study
# grid, and the split-connection oracle run.
zoo-smoke:
	$(GO) test -race -run 'TestTahoeProfileRegression|TestProfilePrefixes|TestGoodputOrderingUnderRandomLoss|TestSnoopAtLeastUnassistedBaseline' ./internal/oracle/
	$(GO) test -race -run 'TestSnoopPropertiesUnderChaos|TestSnoopChaosDeterminism|TestVariantsIdenticalWithoutLoss|TestTahoeRenoDivergeAtFastRetransmit|TestOracleOnSplitConnection' ./internal/core/
	$(GO) test -race -run 'TestZooStudyGrid' ./internal/experiment/
	$(GO) test -race -run 'TestLegacyGoldensSurviveZooRefactor' ./cmd/wtcp-conformance/

# Conformance gate: the oracle/trace/ARQ suites under -race, then the
# golden-trace drift check against the committed canonical scenarios.
conformance:
	$(GO) test -race ./internal/oracle/... ./internal/trace/... ./internal/bs/...
	$(GO) run ./cmd/wtcp-conformance -dir cmd/wtcp-conformance/testdata/goldens

# Regenerate the committed golden traces after an intended protocol
# change. Review the resulting diff like code — every changed line is a
# changed protocol event.
goldens:
	$(GO) run ./cmd/wtcp-conformance -dir cmd/wtcp-conformance/testdata/goldens -update

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Full benchmark run; the raw output lands in bench.txt for wtcp-bench.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem . | tee bench.txt

# Re-record the committed kernel baseline from a full benchmark run.
# Run on a quiet machine; CI compares against this file.
bench-baseline: bench
	$(GO) run ./cmd/wtcp-bench -record -out BENCH_kernel.json -in bench.txt

# Compare a fresh full run against the committed baseline (>20% ns/op
# slowdown or any allocs/op increase on the kernel micro-benchmarks fails).
bench-compare: bench
	$(GO) run ./cmd/wtcp-bench -compare BENCH_kernel.json -in bench.txt

# CI-sized benchmark gate: short benchtime on the substrate
# micro-benchmarks only (BenchmarkSim*). End-to-end run benchmarks are
# excluded — shared-runner noise swamps them at short benchtime; the
# kernel micro-benchmarks are stable enough to gate on.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSim' -benchmem -benchtime=0.2s -count=3 . | tee bench-smoke.txt
	$(GO) run ./cmd/wtcp-bench -compare BENCH_kernel.json -threshold 0.20 -in bench-smoke.txt

# Cell-scale benchmarks: per-stage hot-path micro-benchmarks plus
# end-to-end 1k/10k/50k cell runs, compared against the committed
# BENCH_scale.json (its stored filter selects ^BenchmarkCell; >35%
# ns/op slowdown or any allocs/op increase fails — the e2e runs are
# noisier than the kernel micro-benchmarks, hence the looser threshold).
bench-scale:
	$(GO) test -run '^$$' -bench '^BenchmarkCell' -benchmem -benchtime=0.5s ./internal/cell/ | tee bench-scale.txt
	$(GO) run ./cmd/wtcp-bench -file BENCH_scale.json -threshold 0.35 -in bench-scale.txt

# Re-record the committed cell-scale baseline. Run on a quiet machine.
bench-scale-baseline:
	$(GO) test -run '^$$' -bench '^BenchmarkCell' -benchmem -benchtime=0.5s ./internal/cell/ | tee bench-scale.txt
	$(GO) run ./cmd/wtcp-bench -record -file BENCH_scale.json -filter '^BenchmarkCell' -note 'cell-scale engine baseline; regenerate with `make bench-scale-baseline`' -in bench-scale.txt

# Regenerate every paper figure at publication fidelity.
figures:
	$(GO) run ./cmd/wtcp-figures -fig all -reps 10

traces:
	$(GO) run ./cmd/wtcp-trace -scheme basic
	$(GO) run ./cmd/wtcp-trace -scheme localrecovery
	$(GO) run ./cmd/wtcp-trace -scheme ebsn

# Rebuild REPLICATION.md from live runs (fails if any claim regresses).
report:
	$(GO) run ./cmd/wtcp-report -reps 10 > REPLICATION.md

fuzz:
	$(GO) test -fuzz=FuzzReassembler -fuzztime=30s ./internal/ip
	$(GO) test -fuzz=FuzzSenderAckStream -fuzztime=30s ./internal/tcp
	$(GO) test -fuzz=FuzzScenario -fuzztime=30s ./internal/scenario
	$(GO) test -fuzz=FuzzRunRequest -fuzztime=30s ./internal/serve
	$(GO) test -fuzz=FuzzChaosParse -fuzztime=30s ./internal/chaos

# CI-sized fuzzing: ~10s per target, enough to catch regressions on the
# seeded corpora without stalling the pipeline.
fuzz-smoke:
	$(GO) test -fuzz=FuzzReassembler -fuzztime=10s ./internal/ip
	$(GO) test -fuzz=FuzzSenderAckStream -fuzztime=10s ./internal/tcp
	$(GO) test -fuzz=FuzzScenario -fuzztime=10s ./internal/scenario
	$(GO) test -fuzz=FuzzRunRequest -fuzztime=10s ./internal/serve
	$(GO) test -fuzz=FuzzChaosParse -fuzztime=10s ./internal/chaos

clean:
	$(GO) clean ./...
