// Package trace records the per-packet connection history the paper's
// Figures 3-5 visualize: every segment transmission plotted as (send time,
// packet number mod 90), with retransmissions appearing as repeated marks
// on the same horizontal line.
//
// The package renders the same data two ways: a CSV suitable for any
// plotting tool, and an ASCII scatter for terminal inspection.
package trace

import (
	"fmt"
	"strings"
	"time"

	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

// EventKind discriminates trace events.
type EventKind int

// Event kinds.
const (
	// Send is an original segment transmission.
	Send EventKind = iota + 1
	// Retransmit is a source retransmission of previously sent data.
	Retransmit
	// Timeout is a retransmission-timer expiry at the source.
	Timeout
	// FastRetx is a third-duplicate-ACK fast retransmit trigger.
	FastRetx
	// EBSNReset is a timer re-arm caused by an EBSN.
	EBSNReset
)

// String names the kind for CSV output.
func (k EventKind) String() string {
	switch k {
	case Send:
		return "send"
	case Retransmit:
		return "retransmit"
	case Timeout:
		return "timeout"
	case FastRetx:
		return "fastretx"
	case EBSNReset:
		return "ebsn"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// PacketModulo is the paper's vertical-axis wraparound ("packet number mod
// 90").
const PacketModulo = 90

// Event is one recorded occurrence.
type Event struct {
	At   time.Duration
	Kind EventKind
	// Seq is the first byte offset of the segment involved (zero for
	// EBSN resets).
	Seq int64
	// PacketNo is Seq divided by the MSS — the paper's packet number.
	PacketNo int64
}

// Trace accumulates events for one connection.
type Trace struct {
	mss    units.ByteSize
	events []Event
}

// New returns an empty trace for a connection with the given MSS (used to
// convert byte offsets into packet numbers).
func New(mss units.ByteSize) *Trace {
	if mss <= 0 {
		mss = 1
	}
	return &Trace{mss: mss}
}

// packetNo converts a byte offset to the paper's packet number.
func (tr *Trace) packetNo(seq int64) int64 { return seq / int64(tr.mss) }

// Record appends an event.
func (tr *Trace) Record(at time.Duration, kind EventKind, seq int64) {
	tr.events = append(tr.events, Event{At: at, Kind: kind, Seq: seq, PacketNo: tr.packetNo(seq)})
}

// Hooks returns sender hooks that feed this trace. now must report the
// simulation clock.
func (tr *Trace) Hooks(now func() time.Duration) tcp.Hooks {
	return tcp.Hooks{
		OnSend: func(seq int64, _ units.ByteSize, retx bool) {
			kind := Send
			if retx {
				kind = Retransmit
			}
			tr.Record(now(), kind, seq)
		},
		OnTimeout:        func(seq int64) { tr.Record(now(), Timeout, seq) },
		OnFastRetransmit: func(seq int64) { tr.Record(now(), FastRetx, seq) },
		OnEBSN:           func() { tr.Record(now(), EBSNReset, 0) },
	}
}

// Events returns the recorded events in order.
func (tr *Trace) Events() []Event {
	out := make([]Event, len(tr.events))
	copy(out, tr.events)
	return out
}

// Count reports how many events of the given kind were recorded.
func (tr *Trace) Count(kind EventKind) int {
	n := 0
	for _, e := range tr.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// SendsOf reports how many times the given packet number was put on the
// wire (1 = never retransmitted by the source).
func (tr *Trace) SendsOf(packetNo int64) int {
	n := 0
	for _, e := range tr.events {
		if (e.Kind == Send || e.Kind == Retransmit) && e.PacketNo == packetNo {
			n++
		}
	}
	return n
}

// CSV renders the send/retransmit events as the paper's scatter data:
// time_sec,packet_mod_90,kind — one row per transmission.
func (tr *Trace) CSV() string {
	var b strings.Builder
	b.WriteString("time_sec,packet_mod_90,kind\n")
	for _, e := range tr.events {
		if e.Kind != Send && e.Kind != Retransmit {
			continue
		}
		fmt.Fprintf(&b, "%.3f,%d,%s\n", e.At.Seconds(), e.PacketNo%PacketModulo, e.Kind)
	}
	return b.String()
}

// RenderASCII draws the scatter on a width x height character grid
// covering [0, horizon] seconds by [0, 90) packet numbers. Original sends
// draw '.', retransmissions 'o', and the x-axis is labeled in seconds.
func (tr *Trace) RenderASCII(width, height int, horizon time.Duration) string {
	if width < 20 {
		width = 20
	}
	if height < 10 {
		height = 10
	}
	if horizon <= 0 {
		horizon = time.Second
		for _, e := range tr.events {
			if e.At > horizon {
				horizon = e.At
			}
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, e := range tr.events {
		if e.Kind != Send && e.Kind != Retransmit {
			continue
		}
		if e.At > horizon {
			continue
		}
		x := int(float64(width-1) * float64(e.At) / float64(horizon))
		y := int(float64(height-1) * float64(e.PacketNo%PacketModulo) / float64(PacketModulo-1))
		row := height - 1 - y // origin bottom-left, like the paper
		mark := byte('.')
		if e.Kind == Retransmit {
			mark = 'o'
		}
		// Retransmission marks win over plain sends at the same cell.
		if grid[row][x] == ' ' || mark == 'o' {
			grid[row][x] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "packet number mod %d (top=%d)  '.' send  'o' source retransmission\n",
		PacketModulo, PacketModulo-1)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, " 0%*s\n", width-1, fmt.Sprintf("%.0fs", horizon.Seconds()))
	return b.String()
}
