package scenario

import (
	"strings"
	"testing"
)

// FuzzScenario throws arbitrary bytes at the scenario parser. The
// contract under fuzzing: Parse never panics, and any scenario it
// accepts is fully runnable (the returned config passes validation,
// which Build already enforces — so acceptance with a broken config is
// a bug, not a user error). wtcpd's /v1/run fuzzer builds on the same
// corpus (see internal/serve).
func FuzzScenario(f *testing.F) {
	for _, s := range FuzzSeeds() {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := Parse(data)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Errorf("Parse accepted a config that fails validation: %v\ninput: %s", verr, data)
		}
	})
}

// TestFuzzSeedsClassify pins the fuzz seed corpus' accept/reject split
// so a parser regression shows up as a plain test failure even when the
// fuzzer is not run.
func TestFuzzSeedsClassify(t *testing.T) {
	accept := []string{
		`{}`,
		`{"preset":"wan","scheme":"ebsn","packet_size_bytes":1536,"mean_bad":"4s","transfer_kb":100,"seed":7}`,
		`{"scheme":"ebsn","checks":true,"chaos":{"crashes":[{"at":"20s","downtime":"2s"}]}}`,
		`{"chaos":null}`,
	}
	reject := []string{
		`{"packet_size_bytes":10}`,
		`{"chaos":{"blackouts":[{"link":"nope","at":"1s","length":"1s"}]}}`,
		`{"bogus":1}`,
		`{`,
	}
	for _, s := range accept {
		if _, err := Parse([]byte(s)); err != nil {
			t.Errorf("valid scenario rejected: %v\ninput: %s", err, s)
		}
	}
	for _, s := range reject {
		if _, err := Parse([]byte(s)); err == nil {
			t.Errorf("invalid scenario accepted: %s", s)
		} else if strings.Contains(err.Error(), "panic") {
			t.Errorf("error leaks a panic: %v", err)
		}
	}
}
