// Package units provides byte-size and bit-rate types with the arithmetic
// the link models need: serialization (transmission) time of a payload at a
// rate, and rate/size formatting for reports.
//
// The paper quotes link speeds in kbps/Mbps and sizes in bytes/Kbytes;
// these types keep those conversions in one tested place.
package units

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// ByteSize is a data size in bytes.
type ByteSize int64

// Common sizes. KB here follows the paper's usage (1 Kbyte = 1024 bytes for
// windows and transfer sizes, as in BSD TCP).
const (
	Byte ByteSize = 1
	KB   ByteSize = 1024
	MB   ByteSize = 1024 * KB
)

// Bits reports the size in bits.
func (b ByteSize) Bits() int64 { return int64(b) * 8 }

// String renders the size with a binary-unit suffix.
func (b ByteSize) String() string {
	switch {
	case b >= MB && b%MB == 0:
		return strconv.FormatInt(int64(b/MB), 10) + "MB"
	case b >= KB && b%KB == 0:
		return strconv.FormatInt(int64(b/KB), 10) + "KB"
	default:
		return strconv.FormatInt(int64(b), 10) + "B"
	}
}

// BitRate is a data rate in bits per second.
type BitRate int64

// Common rates.
const (
	BitPerSecond BitRate = 1
	Kbps         BitRate = 1000
	Mbps         BitRate = 1000 * Kbps
)

// String renders the rate with a decimal-unit suffix.
func (r BitRate) String() string {
	switch {
	case r >= Mbps && r%Mbps == 0:
		return strconv.FormatInt(int64(r/Mbps), 10) + "Mbps"
	case r >= Kbps:
		return trimFloat(float64(r)/float64(Kbps)) + "Kbps"
	default:
		return strconv.FormatInt(int64(r), 10) + "bps"
	}
}

func trimFloat(f float64) string {
	s := strconv.FormatFloat(f, 'f', 3, 64)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// TransmissionTime reports how long serializing size onto a link of rate r
// takes. A non-positive rate yields zero (treated as infinitely fast),
// which keeps degenerate test configurations safe.
func TransmissionTime(size ByteSize, r BitRate) time.Duration {
	if r <= 0 || size <= 0 {
		return 0
	}
	sec := float64(size.Bits()) / float64(r)
	return time.Duration(math.Round(sec * float64(time.Second)))
}

// Throughput reports the rate achieved moving size in elapsed time. A
// non-positive elapsed time yields zero.
func Throughput(size ByteSize, elapsed time.Duration) BitRate {
	if elapsed <= 0 || size <= 0 {
		return 0
	}
	return BitRate(math.Round(float64(size.Bits()) / elapsed.Seconds()))
}

// ThroughputKbps is Throughput expressed as a float in kilobits/second,
// the unit of the paper's WAN figures.
func ThroughputKbps(size ByteSize, elapsed time.Duration) float64 {
	if elapsed <= 0 || size <= 0 {
		return 0
	}
	return float64(size.Bits()) / elapsed.Seconds() / 1000
}

// ThroughputMbps is Throughput expressed as a float in megabits/second,
// the unit of the paper's LAN figures.
func ThroughputMbps(size ByteSize, elapsed time.Duration) float64 {
	return ThroughputKbps(size, elapsed) / 1000
}

// FormatKbps renders a kbps value the way the figures label them.
func FormatKbps(v float64) string { return fmt.Sprintf("%.2f Kbps", v) }

// FormatMbps renders an Mbps value the way the figures label them.
func FormatMbps(v float64) string { return fmt.Sprintf("%.3f Mbps", v) }
