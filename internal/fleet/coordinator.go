package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"wtcp/internal/experiment"
)

// Lease and stealing policy. The straggler threshold mirrors the PR-5
// engine heartbeat (4x the median, after a minimum sample count) so the
// same signal that logs a slow replication inside one process triggers
// re-dispatch across processes.
const (
	// DefaultLeaseTTL is how long a lease lives without renewal. Workers
	// renew at TTL/3, so a healthy worker is never near expiry; only a
	// dead or partitioned one lapses.
	DefaultLeaseTTL = 10 * time.Second

	// stealFactor and stealMinSamples gate work stealing: a unit leased
	// for more than stealFactor times the median settle time (measured
	// over at least stealMinSamples settled units) may be re-leased to
	// an idle worker.
	stealFactor     = 4.0
	stealMinSamples = 3
	// maxHolders bounds concurrent leases on one unit: the original
	// holder plus one thief. A second thief buys nothing — the point is
	// deterministic — and would just burn CPU.
	maxHolders = 2

	// idleWaitMs is how long an idle worker is told to wait before
	// re-polling when no unit is grantable.
	idleWaitMs = 200
)

// unitStatus is a work unit's lifecycle state.
type unitStatus int

const (
	unitPending unitStatus = iota // queued, no live lease
	unitLeased                    // at least one live lease
	unitSettled                   // recorded in the ledger, final
)

// unit is the coordinator's record of one sweep point.
type unit struct {
	spec   experiment.PointSpec
	key    string
	status unitStatus
	// holders maps live lease IDs to their grant records.
	holders map[uint64]*lease
	// dispatches counts every grant (first lease, reassignment, steal).
	dispatches int
	// lastWorker is the worker most recently involved with the unit —
	// the settler once settled, otherwise the most recent holder — for
	// quarantine/reassignment attribution.
	lastWorker string
}

// lease is one live grant of a unit to a worker.
type lease struct {
	id      uint64
	unit    *unit
	worker  string
	granted time.Time
	renewed time.Time
	stolen  bool
}

// workerState is what the coordinator knows about one worker.
type workerState struct {
	name      string
	lastSeen  time.Time
	health    *experiment.HealthSnapshot
	completed int // units settled by this worker
	leases    int // live leases held
}

// Reassignment records one lease that expired and sent its unit back to
// the queue — the audit trail for "which worker lost which point".
type Reassignment struct {
	Key    string `json:"key"`
	Worker string `json:"worker"`
	// Stolen distinguishes a straggler steal (original holder was still
	// renewing) from an expiry (holder went silent).
	Stolen bool `json:"stolen,omitempty"`
}

// WorkerHealth is one worker's slice of the fleet snapshot.
type WorkerHealth struct {
	Name        string                     `json:"name"`
	LastSeenSec float64                    `json:"last_seen_sec"`
	Completed   int                        `json:"completed"`
	Leases      int                        `json:"leases"`
	Health      *experiment.HealthSnapshot `json:"health,omitempty"`
}

// Snapshot is the fleet-wide health aggregate: campaign progress, the
// lease ledger's counters, and every worker's own engine heartbeat
// (the PR-5 per-process snapshot) rolled up into one document. Written
// atomically to the status path and served at /v1/status.
type Snapshot struct {
	Timestamp time.Time `json:"timestamp"`
	// Campaign progress.
	TotalUnits  int `json:"total_units"`
	Settled     int `json:"settled"`
	Pending     int `json:"pending"`
	Leased      int `json:"leased"`
	Quarantined int `json:"quarantined"`
	// Robustness counters.
	Expired     int            `json:"expired"`
	Stolen      int            `json:"stolen"`
	Duplicates  int            `json:"duplicates"`
	LateResults int            `json:"late_results"`
	Reassigned  []Reassignment `json:"reassigned,omitempty"`
	// Aggregates over worker heartbeats.
	Completed       uint64         `json:"completed"`
	Failed          uint64         `json:"failed"`
	Retried         uint64         `json:"retried"`
	EventsProcessed uint64         `json:"events_processed"`
	EventsPerSec    float64        `json:"events_per_sec"`
	Workers         []WorkerHealth `json:"workers,omitempty"`
	// Failure is the fail-fast error that ended the campaign, if any.
	Failure string `json:"failure,omitempty"`
}

// Coordinator shards a campaign across workers. It owns the ledger (the
// exactly-once record), the lease table (the at-least-once dispatcher),
// and the fleet health snapshot. All HTTP handlers and the expiry
// sweeper serialize on mu; handlers do no I/O while holding it except
// the ledger write that settles a point, which must be atomic with the
// settled-state flip.
type Coordinator struct {
	campaign   Campaign
	ledger     *experiment.Ledger
	leaseTTL   time.Duration
	statusPath string
	logf       func(format string, args ...any)

	mu        sync.Mutex
	units     map[string]*unit // by key
	order     []string         // canonical point order, for logs and snapshots
	pending   []string         // keys awaiting (re)dispatch, FIFO
	leases    map[uint64]*lease
	nextLease uint64
	workers   map[string]*workerState
	// durations holds wall-clock settle times of settled units (seconds),
	// the base of the steal threshold's median.
	durations   []float64
	expired     int
	stolen      int
	duplicates  int
	lateResults int
	reassigned  []Reassignment
	failure     string
	done        chan struct{}
	doneOnce    sync.Once
	stopSweep   chan struct{}
	sweepOnce   sync.Once
}

// CoordinatorConfig configures NewCoordinator.
type CoordinatorConfig struct {
	// Campaign is the validated manifest.
	Campaign Campaign
	// LedgerPath is the checkpoint file results merge into.
	LedgerPath string
	// StatusPath, when set, receives the fleet Snapshot (atomic
	// write-rename) on every settle and on a poll tick.
	StatusPath string
	// LeaseTTL overrides DefaultLeaseTTL (tests shorten it).
	LeaseTTL time.Duration
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)
}

// NewCoordinator opens the ledger, enumerates the campaign's point
// grid, and queues every point not already settled (so a restarted
// campaign resumes where it left off, exactly like the sequential
// engine against the same checkpoint).
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := cfg.Campaign.Validate(); err != nil {
		return nil, err
	}
	if cfg.LedgerPath == "" {
		return nil, fmt.Errorf("fleet: coordinator needs a ledger path")
	}
	opt, err := cfg.Campaign.Options()
	if err != nil {
		return nil, err
	}
	specs, err := cfg.Campaign.Specs()
	if err != nil {
		return nil, err
	}
	ledger, err := experiment.OpenLedger(cfg.LedgerPath, opt)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		campaign:   cfg.Campaign,
		ledger:     ledger,
		leaseTTL:   cfg.LeaseTTL,
		statusPath: cfg.StatusPath,
		logf:       cfg.Log,
		units:      make(map[string]*unit, len(specs)),
		leases:     map[uint64]*lease{},
		workers:    map[string]*workerState{},
		done:       make(chan struct{}),
		stopSweep:  make(chan struct{}),
	}
	if c.leaseTTL <= 0 {
		c.leaseTTL = DefaultLeaseTTL
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	for _, spec := range specs {
		key, err := spec.Key()
		if err != nil {
			ledger.Close()
			return nil, err
		}
		if _, dup := c.units[key]; dup {
			// Overlapping sweeps (fig7+fig9 share WAN configs but use
			// different keys; identical sweeps listed twice don't) would
			// double-queue; keep the first.
			continue
		}
		u := &unit{spec: spec, key: key, holders: map[uint64]*lease{}}
		if ledger.Has(key) {
			u.status = unitSettled
		} else {
			c.pending = append(c.pending, key)
		}
		c.units[key] = u
		c.order = append(c.order, key)
	}
	if c.settledLocked() == len(c.order) {
		c.doneOnce.Do(func() { close(c.done) })
	}
	go c.sweepExpiry()
	return c, nil
}

// Handler returns the coordinator's HTTP mux.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/campaign", c.handleCampaign)
	mux.HandleFunc("/v1/lease", c.handleLease)
	mux.HandleFunc("/v1/renew", c.handleRenew)
	mux.HandleFunc("/v1/result", c.handleResult)
	mux.HandleFunc("/v1/status", c.handleStatus)
	return mux
}

// Done is closed when every unit is settled or the campaign fails.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Err returns the fail-fast error that ended the campaign, if any.
// Meaningful once Done is closed.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failure != "" {
		return fmt.Errorf("fleet: campaign failed: %s", c.failure)
	}
	return nil
}

// Close stops the expiry sweeper, writes a final snapshot, and releases
// the ledger lock (so the merge pass can reopen the file).
func (c *Coordinator) Close() {
	c.sweepOnce.Do(func() { close(c.stopSweep) })
	c.writeStatus()
	c.ledger.Close()
}

// settledLocked counts settled units; mu must be held.
func (c *Coordinator) settledLocked() int {
	n := 0
	for _, u := range c.units {
		if u.status == unitSettled {
			n++
		}
	}
	return n
}

// handleCampaign serves the manifest so every worker runs under the
// exact options the ledger is fingerprinted with.
func (c *Coordinator) handleCampaign(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.campaign)
}

// handleLease grants a work unit: a pending unit if any, else a stolen
// straggler, else a wait hint (or Done when the campaign is over).
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteWorkerLocked(req.Worker, req.Health)
	if c.failure != "" || c.settledLocked() == len(c.order) {
		writeJSON(w, leaseReply{Done: true})
		return
	}
	if u := c.nextPendingLocked(); u != nil {
		writeJSON(w, leaseReply{Unit: c.grantLocked(u, req.Worker, false)})
		return
	}
	if u := c.stealableLocked(); u != nil {
		c.stolen++
		c.logf("fleet: stealing %s from %s for %s (held %.1fs, median %.1fs)",
			u.key, u.lastWorker, req.Worker, c.oldestHoldSecLocked(u), medianOf(c.durations))
		writeJSON(w, leaseReply{Unit: c.grantLocked(u, req.Worker, true)})
		return
	}
	writeJSON(w, leaseReply{WaitMs: idleWaitMs})
}

// nextPendingLocked pops the next dispatchable pending unit.
func (c *Coordinator) nextPendingLocked() *unit {
	for len(c.pending) > 0 {
		key := c.pending[0]
		c.pending = c.pending[1:]
		u := c.units[key]
		// A queued key can have settled in the meantime (late result) or
		// been re-leased by stealing; skip those.
		if u.status == unitPending {
			return u
		}
	}
	return nil
}

// stealableLocked finds a leased unit whose oldest lease has been held
// longer than stealFactor times the median settle time, with room for
// another holder. Returns nil before enough units settled to trust the
// median.
func (c *Coordinator) stealableLocked() *unit {
	if len(c.durations) < stealMinSamples {
		return nil
	}
	threshold := stealFactor * medianOf(c.durations)
	var best *unit
	var bestAge float64
	for _, key := range c.order {
		u := c.units[key]
		if u.status != unitLeased || len(u.holders) >= maxHolders {
			continue
		}
		if age := c.oldestHoldSecLocked(u); age > threshold && age > bestAge {
			best, bestAge = u, age
		}
	}
	return best
}

// oldestHoldSecLocked returns the age in seconds of the unit's oldest
// live lease.
func (c *Coordinator) oldestHoldSecLocked(u *unit) float64 {
	var oldest float64
	for _, l := range u.holders {
		if age := time.Since(l.granted).Seconds(); age > oldest {
			oldest = age
		}
	}
	return oldest
}

// grantLocked issues a new lease on u to worker.
func (c *Coordinator) grantLocked(u *unit, worker string, stolen bool) *workUnit {
	c.nextLease++
	now := time.Now()
	l := &lease{id: c.nextLease, unit: u, worker: worker, granted: now, renewed: now, stolen: stolen}
	u.holders[l.id] = l
	u.status = unitLeased
	u.dispatches++
	u.lastWorker = worker
	c.leases[l.id] = l
	if ws := c.workers[worker]; ws != nil {
		ws.leases++
	}
	return &workUnit{
		Lease:  l.id,
		Key:    u.key,
		Spec:   u.spec,
		TTLMs:  c.leaseTTL.Milliseconds(),
		Stolen: stolen,
	}
}

// handleRenew extends a live lease. A renewal for an expired lease or a
// settled unit answers OK=false: the worker abandons the unit (its work
// either already counted or will be redone by the new holder —
// deterministic either way).
func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req renewRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteWorkerLocked(req.Worker, req.Health)
	l, ok := c.leases[req.Lease]
	if !ok || l.unit.status == unitSettled {
		writeJSON(w, renewReply{OK: false})
		return
	}
	l.renewed = time.Now()
	writeJSON(w, renewReply{OK: true, TTLMs: c.leaseTTL.Milliseconds()})
}

// handleResult settles a unit. This is where at-least-once dispatch
// narrows to exactly-once accounting: the first result for a key is
// recorded in the ledger; any later result for the same key — a
// duplicated post, a stolen race's loser, an expired lease's late
// arrival — is acknowledged and dropped.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	c.noteWorkerLocked(req.Worker, req.Health)

	if req.Failure != "" {
		if c.failure == "" {
			c.failure = fmt.Sprintf("worker %s on %s: %s", req.Worker, req.Outcome.Key, req.Failure)
			c.logf("fleet: fail-fast from %s: %s", req.Worker, c.failure)
			c.doneOnce.Do(func() { close(c.done) })
		}
		c.mu.Unlock()
		writeJSON(w, resultReply{Accepted: true})
		return
	}

	key := req.Outcome.Key
	u := c.units[key]
	if u == nil {
		c.mu.Unlock()
		httpError(w, http.StatusBadRequest, "fleet: result for unknown point %q", key)
		return
	}
	l, liveLease := c.leases[req.Lease]
	if !liveLease {
		c.lateResults++
	}
	if u.status == unitSettled {
		c.duplicates++
		if liveLease {
			c.releaseLocked(l)
		}
		c.mu.Unlock()
		writeJSON(w, resultReply{Accepted: true, Duplicate: true})
		return
	}

	// Record first, then flip state: if the ledger write fails the unit
	// stays dispatchable and the worker sees an error and retries.
	var err error
	if q := req.Outcome.Quarantine; q != nil {
		q.Worker = req.Worker
		err = c.ledger.PutQuarantine(*q)
	} else {
		err = c.ledger.Put(key, req.Outcome.Reps)
	}
	if err != nil {
		c.mu.Unlock()
		httpError(w, http.StatusInternalServerError, "fleet: record %s: %v", key, err)
		return
	}
	u.status = unitSettled
	u.lastWorker = req.Worker
	if liveLease && l.unit == u {
		c.durations = append(c.durations, time.Since(l.granted).Seconds())
	}
	for id := range u.holders {
		c.releaseLocked(c.leases[id])
	}
	if ws := c.workers[req.Worker]; ws != nil {
		ws.completed++
	}
	settled, total := c.settledLocked(), len(c.order)
	c.logf("fleet: settled %s by %s (%d/%d)", key, req.Worker, settled, total)
	if settled == total {
		c.doneOnce.Do(func() { close(c.done) })
	}
	c.mu.Unlock()
	c.writeStatus()
	writeJSON(w, resultReply{Accepted: true})
}

// releaseLocked drops a lease from the tables; nil-safe.
func (c *Coordinator) releaseLocked(l *lease) {
	if l == nil {
		return
	}
	delete(c.leases, l.id)
	delete(l.unit.holders, l.id)
	if ws := c.workers[l.worker]; ws != nil && ws.leases > 0 {
		ws.leases--
	}
}

// handleStatus serves the fleet snapshot.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.Snapshot())
}

// noteWorkerLocked refreshes a worker's liveness and heartbeat.
func (c *Coordinator) noteWorkerLocked(name string, h *experiment.HealthSnapshot) {
	if name == "" {
		return
	}
	ws := c.workers[name]
	if ws == nil {
		ws = &workerState{name: name}
		c.workers[name] = ws
		c.logf("fleet: worker %s joined", name)
	}
	ws.lastSeen = time.Now()
	if h != nil {
		ws.health = h
	}
}

// sweepExpiry retires lapsed leases every TTL/2. A unit whose last
// lease lapsed goes back to the pending queue — this is the path that
// recovers a SIGKILLed worker's points.
func (c *Coordinator) sweepExpiry() {
	t := time.NewTicker(c.leaseTTL / 2)
	defer t.Stop()
	for {
		select {
		case <-c.stopSweep:
			return
		case <-t.C:
			c.expireLeases()
		}
	}
}

// expireLeases drops every lease not renewed within the TTL and
// re-queues units left holderless.
func (c *Coordinator) expireLeases() {
	c.mu.Lock()
	var lines []string
	now := time.Now()
	for _, l := range c.leases {
		if now.Sub(l.renewed) <= c.leaseTTL {
			continue
		}
		c.expired++
		u := l.unit
		c.releaseLocked(l)
		if u.status == unitLeased && len(u.holders) == 0 {
			u.status = unitPending
			c.pending = append(c.pending, u.key)
			c.reassigned = append(c.reassigned, Reassignment{Key: u.key, Worker: l.worker, Stolen: l.stolen})
			lines = append(lines, fmt.Sprintf("fleet: lease on %s by %s expired; reassigning", u.key, l.worker))
		} else {
			lines = append(lines, fmt.Sprintf("fleet: stale lease on %s by %s expired (unit %v)", u.key, l.worker, u.status))
		}
	}
	c.mu.Unlock()
	for _, line := range lines {
		c.logf("%s", line)
	}
	if len(lines) > 0 {
		c.writeStatus()
	}
}

// Snapshot aggregates campaign progress, robustness counters, and every
// worker's engine heartbeat into the fleet health document.
func (c *Coordinator) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	snap := Snapshot{
		Timestamp:   now,
		TotalUnits:  len(c.order),
		Settled:     c.settledLocked(),
		Quarantined: len(c.ledger.Quarantined()),
		Expired:     c.expired,
		Stolen:      c.stolen,
		Duplicates:  c.duplicates,
		LateResults: c.lateResults,
		Reassigned:  append([]Reassignment(nil), c.reassigned...),
		Failure:     c.failure,
	}
	for _, u := range c.units {
		switch u.status {
		case unitPending:
			snap.Pending++
		case unitLeased:
			snap.Leased++
		}
	}
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ws := c.workers[name]
		wh := WorkerHealth{
			Name:        name,
			LastSeenSec: now.Sub(ws.lastSeen).Seconds(),
			Completed:   ws.completed,
			Leases:      ws.leases,
			Health:      ws.health,
		}
		if h := ws.health; h != nil {
			snap.Completed += h.Completed
			snap.Failed += h.Failed
			snap.Retried += h.Retried
			snap.EventsProcessed += h.EventsProcessed
			snap.EventsPerSec += h.EventsPerSec
		}
		snap.Workers = append(snap.Workers, wh)
	}
	return snap
}

// writeStatus persists the fleet snapshot to the status path with the
// same temp-write-then-rename discipline as engine checkpoints. No-op
// without a status path.
func (c *Coordinator) writeStatus() {
	if c.statusPath == "" {
		return
	}
	data, err := json.MarshalIndent(c.Snapshot(), "", "  ")
	if err != nil {
		c.logf("fleet: encode status: %v", err)
		return
	}
	data = append(data, '\n')
	dir := filepath.Dir(c.statusPath)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		c.logf("fleet: status dir: %v", err)
		return
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(c.statusPath)+".tmp*")
	if err != nil {
		c.logf("fleet: status temp file: %v", err)
		return
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Close()
		if err == nil {
			err = os.Rename(tmp.Name(), c.statusPath)
		}
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		c.logf("fleet: write status: %v", err)
	}
}

// medianOf returns the median of xs (0 when empty).
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// writeJSON encodes v as the response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// readJSON decodes the request body into v, answering 400 on failure.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err == nil {
		err = json.Unmarshal(body, v)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "fleet: bad request: %v", err)
		return false
	}
	return true
}

// httpError answers an error with a plain-text body the worker can
// surface.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}
