package trace

import (
	"strings"
	"testing"
	"time"
)

func TestCwndSeriesRecordAndAccessors(t *testing.T) {
	c := NewCwndSeries()
	c.Record(time.Second, 536, 4096)
	c.Record(2*time.Second, 1072, 4096)
	c.Record(3*time.Second, 536, 2048) // collapse
	c.Record(4*time.Second, 1072, 2048)
	pts := c.Points()
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[2].Ssthresh != 2048 {
		t.Error("ssthresh not recorded")
	}
	if got := c.Max(); got != 1072 {
		t.Errorf("Max = %d", got)
	}
	if got := c.Collapses(536); got != 1 {
		t.Errorf("Collapses = %d, want 1", got)
	}
}

func TestCwndHookBindsClock(t *testing.T) {
	c := NewCwndSeries()
	now := 5 * time.Second
	hook := c.Hook(func() time.Duration { return now })
	hook(536, 4096)
	if pts := c.Points(); len(pts) != 1 || pts[0].At != 5*time.Second {
		t.Errorf("hook recorded %+v", c.Points())
	}
}

func TestCwndCSV(t *testing.T) {
	c := NewCwndSeries()
	c.Record(1500*time.Millisecond, 536, 2048)
	csv := c.CSV()
	if !strings.Contains(csv, "time_sec,cwnd_bytes,ssthresh_bytes") ||
		!strings.Contains(csv, "1.500,536,2048") {
		t.Errorf("CSV malformed:\n%s", csv)
	}
}

func TestCwndRenderASCII(t *testing.T) {
	c := NewCwndSeries()
	for i := 0; i < 50; i++ {
		c.Record(time.Duration(i)*time.Second, 536*(1+536*0), 4096)
		c.Record(time.Duration(i)*time.Second+500*time.Millisecond, 536*4, 4096)
	}
	out := c.RenderASCII(60, 12, 50*time.Second)
	if !strings.Contains(out, "*") || !strings.Contains(out, "congestion window") {
		t.Errorf("render malformed:\n%s", out)
	}
	// Degenerate cases stay safe.
	if NewCwndSeries().RenderASCII(0, 0, 0) == "" {
		t.Error("empty series render failed")
	}
}

func TestCwndPointsIsCopy(t *testing.T) {
	c := NewCwndSeries()
	c.Record(time.Second, 536, 4096)
	pts := c.Points()
	pts[0].Cwnd = 9999
	if c.Points()[0].Cwnd != 536 {
		t.Error("Points exposed internal storage")
	}
}
