package experiment

import (
	"errors"
	"sync"
	"time"

	"wtcp/internal/core"
	"wtcp/internal/sim"
)

// This file is the engine half of the run-supervision layer: the
// default per-run resource budget, and the per-point circuit breaker
// that turns classified failures into explicit quarantine records
// instead of a hung worker or a dead sweep.
//
// Policy, by failure class (core.Classify):
//
//	transient           retry with a perturbed seed (the pre-existing
//	                    behaviour), skip the replication when retries
//	                    are exhausted
//	protocol-bug, panic fail fast: no retries, emit a repro bundle,
//	                    fail the sweep — the implementation is wrong
//	resource-exhausted  the circuit breaker trips after the point's
//	                    attempts are spent: the point is quarantined
//	                    (recorded in the checkpoint and the sweep
//	                    result), a repro bundle is emitted, and the
//	                    sweep continues degraded
//	canceled            propagate; the caller asked the sweep to stop
//
// Quarantine is never silent: a governed sweep's output always carries
// the explicit Quarantined list, and a resumed sweep replays recorded
// quarantines in sweep order so its result is byte-identical whether
// the quarantine happened before or after the resume boundary.

// Default per-run ceilings the engine applies when supervision has not
// been configured otherwise. They exist to close a real gap: the sim
// watchdog only sees virtual-time stalls, so a same-instant event
// livelock used to hang an engine worker forever. The values are far
// above any legitimate paper scenario (the heaviest LAN replication
// fires ~10M events and finishes in seconds of wall clock).
const (
	// DefaultRunWall is the default wall-clock deadline per replication
	// attempt.
	DefaultRunWall = 10 * time.Minute
	// DefaultRunMaxEvents is the default fired-event ceiling per
	// replication attempt (the livelock guard).
	DefaultRunMaxEvents = int64(1) << 31
)

// errPointQuarantined is runPoint's sentinel: the point was quarantined
// by the circuit breaker (and recorded), so the sweep should skip it
// and continue.
var errPointQuarantined = errors.New("experiment: point quarantined")

// Quarantine records one sweep point the circuit breaker removed from a
// governed sweep, and why.
type Quarantine struct {
	// Key is the sweep point's checkpoint key.
	Key string `json:"key"`
	// Class is the failure class that tripped the breaker
	// (a core.FailureClass string).
	Class string `json:"class"`
	// Attempts is how many replication attempts were spent before the
	// breaker tripped.
	Attempts int `json:"attempts"`
	// Reason is the final attempt's error.
	Reason string `json:"reason"`
	// Worker names the fleet worker that last held the point when the
	// breaker tripped (empty for single-process sweeps), so degraded
	// distributed campaigns stay auditable in the report's quarantine
	// table.
	Worker string `json:"worker,omitempty"`
}

// Supervisor arms the per-point circuit breaker for a sweep and
// collects its quarantine records. A nil Supervisor in Options keeps
// the engine's historical all-or-nothing behaviour (any point whose
// every replication fails, fails the sweep). Safe for concurrent use;
// one Supervisor may span several sweeps (a whole report run).
type Supervisor struct {
	mu          sync.Mutex
	quarantined []Quarantine
}

// NewSupervisor returns an empty supervisor.
func NewSupervisor() *Supervisor { return &Supervisor{} }

// Quarantined returns the quarantine records in the order the points
// were (or, on resume, would have been) reached by the sweep.
func (sv *Supervisor) Quarantined() []Quarantine {
	if sv == nil {
		return nil
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	out := make([]Quarantine, len(sv.quarantined))
	copy(out, sv.quarantined)
	return out
}

// note appends one quarantine record.
func (sv *Supervisor) note(q Quarantine) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.quarantined = append(sv.quarantined, q)
}

// runBudget resolves the budget one replication attempt runs under:
// the run's own Config.Budget wins field by field, then Options.RunBudget,
// then the engine defaults (unless NoRunBudget). A negative field at any
// layer means "explicitly unlimited" and survives the layering.
func (o Options) runBudget(b sim.Budget) sim.Budget {
	b = b.Or(o.RunBudget)
	if o.NoRunBudget {
		return b
	}
	return b.Or(sim.Budget{MaxEvents: DefaultRunMaxEvents, WallClock: DefaultRunWall})
}

// noteQuarantined records a quarantine with the supervisor and the
// health telemetry.
func (o Options) noteQuarantined(q Quarantine) {
	o.Supervise.note(q)
	o.Health.noteQuarantine()
}

// failFast reports whether the class must abort the sweep immediately.
func failFast(class core.FailureClass) bool {
	return class == core.ClassProtocolBug || class == core.ClassPanic
}

// repFailure is a permanently failed replication: the annotated error,
// its failure class, and the attempts spent. It unwraps to the
// underlying run error so errors.As (and core.Classify) see through it.
type repFailure struct {
	err      error
	class    core.FailureClass
	attempts int
}

// Error implements error.
func (f *repFailure) Error() string { return f.err.Error() }

// Unwrap exposes the underlying error.
func (f *repFailure) Unwrap() error { return f.err }
