package experiment

import (
	"context"

	"wtcp/internal/core"
)

// This file is the engine's service face: the hooks wtcpd
// (internal/serve) uses to execute arbitrary scenario requests with the
// full engine policy stack — worker pool, retry/backoff schedule,
// failure classification, repro-bundle capture, health telemetry — and
// to record the outcomes in ordinary checkpoint files that double as
// the server's content-addressed result store.

// RunCustom executes one caller-defined point: Replications runs of the
// configurations built by build, samples extracted by extract, under
// exactly the sequential engine's policies (same retry seeds and
// backoff schedule, same classification, same supervision semantics as
// a sweep point). build receives the 1-based replication index as its
// seed argument, like the figure-sweep builders. The outcome mirrors
// RunPointSpec: seed-ordered records on success, a Quarantine when
// opt.Supervise is armed and the point's breaker trips, or an error
// for fail-fast classes and cancellation.
func RunCustom(ctx context.Context, opt Options, key string,
	build func(seed int64) core.Config, extract func(*core.Result) []float64) ([]RepRecord, *Quarantine, error) {
	opt = opt.withDefaults()
	return executePoint(ctx, opt, key, build, extract)
}

// OpenLedgerAt opens (or creates) a ledger at path under an explicit
// fingerprint instead of one derived from sweep Options. wtcpd's run
// store uses this: its keys are content hashes of whole requests, so
// the result-affecting configuration is inside every key and the file
// fingerprint only has to version the store's own schema.
func OpenLedgerAt(path, fingerprint string) (*Ledger, error) {
	ck, err := openCheckpoint(path, fingerprint)
	if err != nil {
		return nil, err
	}
	return &Ledger{ck: ck}, nil
}

// Fingerprint exposes the result-affecting options digest that keys
// checkpoint compatibility (see Options.fingerprint). wtcpd names its
// per-campaign-class sweep ledgers by a hash of this string so
// overlapping sweep requests land in — and warm-start from — the same
// file.
func Fingerprint(opt Options) string {
	return opt.withDefaults().fingerprint()
}
