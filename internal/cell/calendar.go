package cell

// calEvent is one scheduled micro-event. The calendar carries every
// one-shot occurrence the engine schedules — wired-pipe arrivals, radio
// cycle completions, sink deliveries, ACK and EBSN arrivals, admission
// batches — as a plain value in a monomorphic heap, instead of one
// closure-bearing kernel event each. Calendar events never cancel, which
// is what lets them live in a heap with no tombstone machinery; the
// cancellable timers (RTO, CSDP poll) live on the wheel.
type calEvent struct {
	at   int64  // absolute virtual time, ns
	seq  uint64 // schedule order; breaks same-instant ties FIFO
	kind uint8
	flow int32
	bs   int32
	slot int32 // arena slot (delivery kinds) or batch size (admission)
	a    int64 // ackNo (ack arrivals) / spare
}

// Calendar event kinds.
const (
	evWiredArrive uint8 = iota + 1 // data segment reaches its BS queue
	evRadioDone                    // stop-and-wait radio cycle completes
	evSinkDeliver                  // data segment reaches the mobile sink
	evAckArrive                    // TCP ack reaches the sender
	evEBSNArrive                   // bad-state notification reaches the sender
	evAdmit                        // admission batch: start the next flows
)

// calendar is a binary min-heap of calEvents ordered by (at, seq). Push
// and pop are allocation-free once the backing slice has plateaued.
type calendar struct {
	h   []calEvent
	seq uint64
}

func (c *calendar) len() int { return len(c.h) }

// minAt reports the earliest scheduled time, or -1 when empty.
func (c *calendar) minAt() int64 {
	if len(c.h) == 0 {
		return -1
	}
	return c.h[0].at
}

func (c *calendar) less(i, j int) bool {
	a, b := &c.h[i], &c.h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push schedules e, stamping its FIFO sequence number.
func (c *calendar) push(e calEvent) {
	c.seq++
	e.seq = c.seq
	c.h = append(c.h, e)
	i := len(c.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			break
		}
		c.h[i], c.h[parent] = c.h[parent], c.h[i]
		i = parent
	}
}

// pop removes and returns the earliest event. The calendar must not be
// empty.
func (c *calendar) pop() calEvent {
	top := c.h[0]
	n := len(c.h) - 1
	c.h[0] = c.h[n]
	c.h = c.h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && c.less(l, small) {
			small = l
		}
		if r < n && c.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		c.h[i], c.h[small] = c.h[small], c.h[i]
		i = small
	}
	return top
}
