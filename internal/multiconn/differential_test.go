package multiconn

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"wtcp/internal/units"
)

// TestRunMatchesReferenceEngine pins the cell-engine delegation
// bit-identical to the original object-per-flow engine across policies,
// EBSN settings, seeds, and population sizes: every field of every
// Result — elapsed times to the nanosecond, float throughputs to the
// last bit, radio counters exactly — must agree. Any divergence means
// the flat port's semantics drifted.
func TestRunMatchesReferenceEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	for _, n := range []int{1, 2, 4} {
		for _, policy := range []Policy{FIFO, RoundRobin, CSDP} {
			for _, ebsn := range []bool{false, true} {
				for seed := int64(1); seed <= 3; seed++ {
					n, policy, ebsn, seed := n, policy, ebsn, seed
					name := fmt.Sprintf("n%d/%v/ebsn=%v/seed%d", n, policy, ebsn, seed)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						cfg := LANDefaults(n, policy, time.Second)
						// Small transfers so every sweep point completes
						// well inside the horizon (the engines may
						// legally differ in which event straddles the
						// horizon boundary).
						cfg.TransferSize = 96 * units.KB
						cfg.EBSN = ebsn
						cfg.Seed = seed
						if policy == CSDP {
							cfg.PredictorAccuracy = 0.9
						}

						want, err := refRun(cfg)
						if err != nil {
							t.Fatalf("reference engine: %v", err)
						}
						got, err := Run(cfg)
						if err != nil {
							t.Fatalf("cell engine: %v", err)
						}
						if !want.Completed {
							t.Fatalf("reference run did not complete; grow the horizon")
						}
						diffResults(t, want, got)
					})
				}
			}
		}
	}
}

// diffResults compares every Result field, reporting the first few
// mismatches precisely enough to debug a divergence.
func diffResults(t *testing.T, want, got *Result) {
	t.Helper()
	if got.Completed != want.Completed {
		t.Errorf("Completed: got %v want %v", got.Completed, want.Completed)
	}
	for _, c := range []struct {
		name      string
		got, want uint64
	}{
		{"RadioAttempts", got.RadioAttempts, want.RadioAttempts},
		{"RadioDiscards", got.RadioDiscards, want.RadioDiscards},
		{"SkippedBad", got.SkippedBad, want.SkippedBad},
		{"EBSNsSent", got.EBSNsSent, want.EBSNsSent},
		{"TotalTimeouts", got.TotalTimeouts, want.TotalTimeouts},
	} {
		if c.got != c.want {
			t.Errorf("%s: got %d want %d", c.name, c.got, c.want)
		}
	}
	if !floatBitEqual(got.AggregateKbps, want.AggregateKbps) {
		t.Errorf("AggregateKbps: got %v want %v", got.AggregateKbps, want.AggregateKbps)
	}
	if !floatBitEqual(got.Fairness, want.Fairness) {
		t.Errorf("Fairness: got %v want %v", got.Fairness, want.Fairness)
	}
	if len(got.PerConn) != len(want.PerConn) {
		t.Fatalf("PerConn length: got %d want %d", len(got.PerConn), len(want.PerConn))
	}
	for i := range want.PerConn {
		if !reflect.DeepEqual(got.PerConn[i], want.PerConn[i]) {
			t.Errorf("conn %d: got %+v want %+v", i, got.PerConn[i], want.PerConn[i])
		}
	}
}

// floatBitEqual demands bit-level float equality (same arithmetic, same
// order, same rounding).
func floatBitEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
