// Package oracle is a streaming protocol-conformance checker for the
// simulator's trace stream. It subscribes to trace events (trace.Trace's
// observer) and validates, while a run executes, that the recorded
// behaviour obeys the paper's protocol rules:
//
//   - the TCP-Tahoe sender state machine: slow-start and congestion-
//     avoidance window growth, the loss responses (collapse to one
//     segment, ssthresh halving, go-back-N rewind), RTO doubling with
//     Karn's backoff-reset rule, and rejection of ACKs for unsent data;
//   - the base station's ARQ semantics: bounded retransmission attempts,
//     consistent attempt counting, no delivery after discard, and no
//     reordering introduced by local recovery;
//   - EBSN semantics: the base station notifies only after a failed
//     link-level attempt, and the source restarts — never extends, never
//     backs off — its retransmission timer with the current RTO.
//
// The checker is a shadow-state machine: it re-synchronizes from every
// event (the events carry post-transition state), so rules compare one
// event against the previous one rather than accumulating drift. A rule
// breach produces a *Violation naming the rule and the event index; the
// first violation is latched and, when wired into a run via internal/core,
// halts the simulation through sim.Fail.
package oracle

import (
	"fmt"
	"time"

	"wtcp/internal/tcp"
	"wtcp/internal/trace"
	"wtcp/internal/units"
)

// Config parameterizes the checker with the run's protocol constants.
type Config struct {
	// Variant selects the sender's conformance profile: the structural
	// rules (ACK validity, timer discipline, ARQ/EBSN/Snoop semantics)
	// apply to every variant, while the congestion-response rules come
	// from the variant's own profile — collapse-and-slow-start for
	// Tahoe, fast-recovery inflation/deflation for the Reno family
	// (Reno, NewReno, SACK). Zero defaults to Tahoe.
	Variant tcp.Variant
	// MSS and Window are the sender's segment size and advertised window.
	MSS    units.ByteSize
	Window units.ByteSize
	// MaxRTO caps the exponential timer backoff; zero defaults to
	// tcp.DefaultMaxRTO.
	MaxRTO time.Duration
	// RTmax is the ARQ retransmission cap (attempts allowed = RTmax+1);
	// zero disables the attempt-cap rule.
	RTmax int
	// SnoopMaxRetx is the snoop agent's local retransmission cap per
	// cached copy; zero disables the snoop attempt-cap rule (the other
	// snoop rules still apply whenever snoop events appear).
	SnoopMaxRetx int
	// TrackNotifications enables the notification-counting rules (a
	// source timer reset needs a prior EBSN on the wire; an EBSN on the
	// wire needs a prior link-level failure). Valid only for
	// single-connection runs with base-station hooks attached.
	TrackNotifications bool
	// ByteTol absorbs the int64 truncation of the float congestion
	// window in trace events; zero defaults to 8 bytes.
	ByteTol int64
	// TimeTol absorbs timestamp normalization (e.g. microsecond-rounded
	// golden traces); zero defaults to 2µs.
	TimeTol time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Variant == 0 {
		c.Variant = tcp.Tahoe
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = tcp.DefaultMaxRTO
	}
	if c.ByteTol == 0 {
		c.ByteTol = 8
	}
	if c.TimeTol == 0 {
		c.TimeTol = 2 * time.Microsecond
	}
	return c
}

// Violation reports one conformance breach: which rule, at which event.
type Violation struct {
	// Rule is the stable rule identifier, e.g. "tahoe/cwnd-growth".
	Rule string
	// Index is the event's position in the trace stream.
	Index int
	// Event is the offending event.
	Event trace.Event
	// Detail explains the breach in terms of observed vs expected values.
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("oracle: rule %s violated at event %d (%v %s): %s",
		v.Rule, v.Index, v.Event.At, v.Event.Kind, v.Detail)
}

// Checker validates a trace event stream against Config's protocol rules.
type Checker struct {
	cfg Config
	// profile holds the variant's congestion rules (see profile.go).
	profile profile

	// last is the most recent sender-side event (the shadow state);
	// haveLast guards the first event of a stream. last2 is the event
	// before it — the pre-transition baseline for ACK transitions that
	// span two events (the Reno family's retransmit-then-ACK pairs).
	last      trace.Event
	haveLast  bool
	last2     trace.Event
	haveLast2 bool

	// inRecovery and recoverSeq shadow the Reno family's fast-recovery
	// episode: entered at FastRetx (recoverSeq = snd_max at loss
	// detection), left on a covering ACK or any timeout.
	inRecovery bool
	recoverSeq int64

	// retx tracks byte ranges the source has retransmitted and not yet
	// had acknowledged — the evidence base for Karn's rule: the backoff
	// may only reset when an ACK covers at least one fresh byte.
	retx intervalSet

	// Notification bookkeeping (TrackNotifications).
	ebsnSent, ebsnResets int
	quenchSent, quenchIn int
	arqFailures          int

	// ARQ shadow: per-unit attempt counters, unit->packet ownership, and
	// packets withdrawn after RTmax.
	unitAttempt map[uint64]int
	unitPkt     map[uint64]uint64
	discarded   map[uint64]bool

	// lastLinkSeq enforces strictly-increasing sequenced delivery at the
	// mobile host.
	lastLinkSeq uint64

	// snoopCache shadows the snoop agent's segment cache: seq -> local
	// retransmission count for the current cached copy. Entries the
	// agent frees on a new ACK linger here (the clearing is not traced),
	// which is safe: a lingering entry is never retransmitted again.
	snoopCache map[int64]int

	first *Violation
}

// New returns a checker for one run.
func New(cfg Config) *Checker {
	cfg = cfg.withDefaults()
	return &Checker{
		cfg:         cfg,
		profile:     profileFor(cfg.Variant),
		unitAttempt: make(map[uint64]int),
		unitPkt:     make(map[uint64]uint64),
		discarded:   make(map[uint64]bool),
		snoopCache:  make(map[int64]int),
	}
}

// First returns the first violation observed, or nil.
func (c *Checker) First() *Violation { return c.first }

// Check replays a complete event sequence and returns the first
// violation, or nil if the whole stream conforms.
func Check(cfg Config, events []trace.Event) *Violation {
	c := New(cfg)
	for i, e := range events {
		if v := c.Observe(i, e); v != nil {
			return v
		}
	}
	return nil
}

// Observe feeds one event (trace.Trace observer signature plus a result):
// it returns the violation this event caused, or nil. The first violation
// is also latched for First. State keeps re-synchronizing afterwards, so
// observing past a violation reports further independent breaches rather
// than cascading noise.
func (c *Checker) Observe(idx int, e trace.Event) *Violation {
	v := c.observe(idx, e)
	if v != nil && c.first == nil {
		c.first = v
	}
	return v
}

func (c *Checker) observe(idx int, e trace.Event) *Violation {
	fail := func(rule, format string, args ...any) *Violation {
		return &Violation{Rule: rule, Index: idx, Event: e, Detail: fmt.Sprintf(format, args...)}
	}
	switch e.Kind {
	case trace.Send, trace.Retransmit, trace.Timeout, trace.FastRetx,
		trace.EBSNReset, trace.AckIn, trace.QuenchIn, trace.ECNEcho:
		return c.observeSender(idx, e, fail)
	case trace.ARQAttempt:
		return c.observeARQAttempt(e, fail)
	case trace.ARQFailure:
		c.arqFailures++
		if prev, ok := c.unitAttempt[e.Unit]; ok && e.Attempt != prev {
			return fail("arq/failure-mismatch",
				"failure reports attempt %d, unit %d is on attempt %d", e.Attempt, e.Unit, prev)
		}
		return nil
	case trace.ARQAck:
		delete(c.unitAttempt, e.Unit)
		delete(c.unitPkt, e.Unit)
		return nil
	case trace.ARQDiscard:
		c.discarded[e.Pkt] = true
		for unit, pkt := range c.unitPkt {
			if pkt == e.Pkt {
				delete(c.unitAttempt, unit)
				delete(c.unitPkt, unit)
			}
		}
		return nil
	case trace.EBSNSent:
		c.ebsnSent++
		if c.cfg.TrackNotifications && c.ebsnSent > c.arqFailures {
			return fail("ebsn/sent-without-failure",
				"%d EBSNs sent but only %d link-level failures observed", c.ebsnSent, c.arqFailures)
		}
		return nil
	case trace.QuenchSent:
		c.quenchSent++
		if c.cfg.TrackNotifications && c.quenchSent > c.arqFailures {
			return fail("quench/sent-without-failure",
				"%d quenches sent but only %d link-level failures observed", c.quenchSent, c.arqFailures)
		}
		return nil
	case trace.MHDeliver:
		if e.Unit <= c.lastLinkSeq {
			return fail("arq/reorder",
				"sequenced unit %d delivered after unit %d", e.Unit, c.lastLinkSeq)
		}
		c.lastLinkSeq = e.Unit
		return nil
	case trace.SnoopAdmit:
		c.snoopCache[e.Seq] = 0
		return nil
	case trace.SnoopRetx:
		prev, cached := c.snoopCache[e.Seq]
		if !cached {
			return fail("snoop/retx-uncached",
				"local retransmission of seq %d with no cached copy", e.Seq)
		}
		if c.cfg.SnoopMaxRetx > 0 && e.Attempt > c.cfg.SnoopMaxRetx {
			return fail("snoop/retx-cap",
				"local retransmission attempt %d of seq %d exceeds the cap of %d",
				e.Attempt, e.Seq, c.cfg.SnoopMaxRetx)
		}
		if e.Attempt != prev+1 {
			return fail("snoop/retx-order",
				"seq %d jumped from local attempt %d to %d", e.Seq, prev, e.Attempt)
		}
		c.snoopCache[e.Seq] = e.Attempt
		return nil
	case trace.SnoopSuppress:
		// Suppression may only absorb a duplicate the agent can repair
		// locally: the segment at the ACK must be cached, and the ACK
		// must not be one the sender has already moved past — otherwise
		// the base station is hiding acknowledgment state the source
		// genuinely needs (the no-hidden-timeout rule).
		if _, cached := c.snoopCache[e.Ack]; !cached {
			return fail("snoop/suppress-needs-cache",
				"suppressed duplicate ACK %d but the segment at it is not cached", e.Ack)
		}
		if c.haveLast && e.Ack < c.last.SndUna {
			return fail("snoop/suppress-only-dupacks",
				"suppressed ACK %d below the sender's snd_una %d", e.Ack, c.last.SndUna)
		}
		return nil
	case trace.SnoopEvict:
		if _, cached := c.snoopCache[e.Seq]; !cached {
			return fail("snoop/evict-uncached",
				"evicted seq %d with no cached copy", e.Seq)
		}
		delete(c.snoopCache, e.Seq)
		return nil
	default:
		return nil
	}
}

// observeARQAttempt checks the attempt-counting discipline of one link
// transmission.
func (c *Checker) observeARQAttempt(e trace.Event, fail failf) *Violation {
	if c.cfg.RTmax > 0 && e.Attempt > c.cfg.RTmax+1 {
		return fail("arq/attempt-cap",
			"attempt %d exceeds RTmax=%d (max %d transmissions)", e.Attempt, c.cfg.RTmax, c.cfg.RTmax+1)
	}
	if e.Attempt > 1 && c.discarded[e.Pkt] {
		return fail("arq/attempt-after-discard",
			"unit %d retransmitted (attempt %d) for packet %d after its discard", e.Unit, e.Attempt, e.Pkt)
	}
	if e.Attempt == 1 {
		// A fresh first attempt also re-admits a previously discarded
		// packet (the source retransmitted it end to end).
		delete(c.discarded, e.Pkt)
	}
	prev, tracked := c.unitAttempt[e.Unit]
	switch {
	case !tracked && e.Attempt != 1:
		return fail("arq/attempt-order",
			"unit %d appears mid-sequence at attempt %d (stale recycled timer?)", e.Unit, e.Attempt)
	case tracked && e.Attempt != prev+1 && e.Attempt != 1:
		return fail("arq/attempt-order",
			"unit %d jumped from attempt %d to %d", e.Unit, prev, e.Attempt)
	}
	c.unitAttempt[e.Unit] = e.Attempt
	c.unitPkt[e.Unit] = e.Pkt
	return nil
}

type failf func(rule, format string, args ...any) *Violation

// observeSender dispatches the TCP-side rules and re-syncs the shadow.
func (c *Checker) observeSender(idx int, e trace.Event, fail failf) *Violation {
	defer func() {
		// Transmission snapshots are taken before the sequence pointers
		// advance; shadow the post-advance values so the next event's
		// unchanged-state checks compare against reality. A retransmission
		// with Seq below SndNxt (Reno's retransmit-first) moves nothing.
		if e.Kind == trace.Send || e.Kind == trace.Retransmit {
			if e.Seq == e.SndNxt {
				e.SndNxt = e.Seq + e.Payload
			}
			if e.SndNxt > e.SndMax {
				e.SndMax = e.SndNxt
			}
		}
		c.last2, c.haveLast2 = c.last, c.haveLast
		c.last = e
		c.haveLast = true
	}()
	if e.SndUna < 0 || e.SndUna > e.SndNxt || e.SndNxt > e.SndMax {
		return fail("tcp/sequence-order",
			"snd_una=%d snd_nxt=%d snd_max=%d out of order", e.SndUna, e.SndNxt, e.SndMax)
	}
	switch e.Kind {
	case trace.Send, trace.Retransmit:
		return c.checkSend(e, fail)
	case trace.AckIn:
		return c.checkAck(e, fail)
	case trace.Timeout:
		return c.checkTimeout(e, fail)
	case trace.FastRetx:
		return c.checkFastRetx(e, fail)
	case trace.EBSNReset:
		return c.checkEBSNReset(e, fail)
	case trace.QuenchIn:
		return c.checkQuench(e, fail)
	case trace.ECNEcho:
		return c.checkECN(e, fail)
	}
	return nil
}

// checkSend validates one segment transmission. Send snapshots are taken
// before the sequence pointers advance, so a fresh send shows
// Seq == SndNxt == SndMax.
func (c *Checker) checkSend(e trace.Event, fail failf) *Violation {
	if e.Kind == trace.Send {
		if e.Seq != e.SndMax || e.Seq != e.SndNxt {
			return fail("tcp/send-pointer",
				"fresh send at seq %d, want snd_nxt=%d and snd_max=%d", e.Seq, e.SndNxt, e.SndMax)
		}
	} else {
		if e.Seq >= e.SndMax {
			return fail("tcp/retransmit-pointer",
				"retransmission at seq %d is not below snd_max %d", e.Seq, e.SndMax)
		}
		c.retx.add(e.Seq, e.Seq+e.Payload)
	}
	limit := e.SndUna + c.usableWindow(e.Cwnd)
	if e.Seq+e.Payload > limit+c.cfg.ByteTol {
		return fail("tcp/window-overrun",
			"segment [%d,%d) exceeds window limit %d (snd_una=%d cwnd=%d adv=%d)",
			e.Seq, e.Seq+e.Payload, limit, e.SndUna, e.Cwnd, int64(c.cfg.Window))
	}
	if e.Deadline < 0 {
		return fail("tcp/timer-armed-on-send",
			"retransmission timer idle immediately after a transmission")
	}
	return nil
}

// usableWindow mirrors the sender's window(): min(cwnd, advertised),
// floored at one segment.
func (c *Checker) usableWindow(cwnd int64) int64 {
	w := cwnd
	if adv := int64(c.cfg.Window); adv < w {
		w = adv
	}
	if mss := int64(c.cfg.MSS); w < mss {
		w = mss
	}
	return w
}

// checkAck validates the processing of one inbound cumulative ACK.
func (c *Checker) checkAck(e trace.Event, fail failf) *Violation {
	switch tcp.AckClass(e.AckClass) {
	case tcp.AckNew:
		return c.checkNewAck(e, fail)
	case tcp.AckDup:
		return c.checkDupAck(e, fail)
	case tcp.AckOld:
		if e.Ack >= e.SndUna {
			return fail("tcp/ack-class",
				"ACK %d classified old but is at or above snd_una %d", e.Ack, e.SndUna)
		}
		return c.checkUnchanged("tcp/old-ack-mutation", e, fail)
	case tcp.AckInvalid:
		if e.Ack <= e.SndMax {
			return fail("tcp/ack-class",
				"ACK %d classified invalid but is within snd_max %d", e.Ack, e.SndMax)
		}
		return c.checkUnchanged("tcp/ack-of-unsent", e, fail)
	default:
		return fail("tcp/ack-class", "unknown ACK class %d", e.AckClass)
	}
}

// checkNewAck validates window growth, timer restart, and Karn's
// backoff-reset rule for a window-advancing ACK.
func (c *Checker) checkNewAck(e trace.Event, fail failf) *Violation {
	if e.Ack > e.SndMax {
		return fail("tcp/ack-of-unsent",
			"sender accepted ACK %d beyond snd_max %d", e.Ack, e.SndMax)
	}
	if e.SndUna != e.Ack {
		return fail("tcp/ack-advance",
			"new ACK %d left snd_una at %d", e.Ack, e.SndUna)
	}
	if e.DupAcks != 0 {
		return fail("tcp/ack-advance",
			"new ACK %d did not clear the duplicate-ACK run (%d)", e.Ack, e.DupAcks)
	}
	if !c.haveLast {
		return nil
	}
	p := c.last
	// A Reno-family partial ACK spans two events (the hole's retransmit
	// snapshot already shows the advanced snd_una); the advance check
	// must compare against the event before the pair.
	base := p
	if c.inRecovery && p.Kind == trace.Retransmit && c.haveLast2 {
		base = c.last2
	}
	if e.SndUna <= base.SndUna {
		return fail("tcp/ack-advance",
			"new ACK %d did not advance snd_una (%d -> %d)", e.Ack, base.SndUna, e.SndUna)
	}
	// Karn's rule: the backoff shift may only reset to zero when the ACK
	// proves a fresh (never-retransmitted) byte made a round trip.
	switch {
	case e.Shift == p.Shift:
		// unchanged: fine
	case e.Shift == 0:
		if c.retx.covers(p.SndUna, e.Ack) {
			return fail("tcp/karn-backoff-reset",
				"backoff reset from shift %d but ACK %d covers only retransmitted bytes [%d,%d)",
				p.Shift, e.Ack, p.SndUna, e.Ack)
		}
	default:
		return fail("tcp/karn-backoff-reset",
			"backoff shift moved %d -> %d on an ACK (only reset-to-0 is legal)", p.Shift, e.Shift)
	}
	c.retx.prune(e.Ack)
	if v := c.profile.newAck(c, e, p, fail); v != nil {
		return v
	}
	// Timer discipline: restart for remaining outstanding data, stop when
	// everything is acknowledged.
	if e.SndNxt > e.SndUna {
		if !c.deadlineIs(e, e.At+e.RTO) {
			return fail("tcp/timer-restart-on-ack",
				"timer deadline %v after ACK, want restart at %v (now+RTO)", e.Deadline, e.At+e.RTO)
		}
	} else if e.Deadline >= 0 {
		return fail("tcp/timer-not-stopped-idle",
			"nothing outstanding after ACK %d but timer still armed for %v", e.Ack, e.Deadline)
	}
	return nil
}

// checkDupAck validates a duplicate ACK: no state may move, and for Tahoe
// the run length must stay below the fast-retransmit threshold (the third
// duplicate must surface as a FastRetx event instead).
func (c *Checker) checkDupAck(e trace.Event, fail failf) *Violation {
	if e.Ack != e.SndUna {
		return fail("tcp/ack-class",
			"ACK %d classified duplicate but snd_una is %d", e.Ack, e.SndUna)
	}
	if !c.haveLast {
		return nil
	}
	p := c.last
	if v := c.profile.dupAck(c, e, p, fail); v != nil {
		return v
	}
	if e.SndUna != p.SndUna || e.SndMax != p.SndMax {
		return fail("tcp/ack-class",
			"duplicate ACK moved sequence pointers (snd_una %d -> %d)", p.SndUna, e.SndUna)
	}
	return nil
}

// checkUnchanged asserts an ignored ACK (old or invalid) mutated nothing.
func (c *Checker) checkUnchanged(rule string, e trace.Event, fail failf) *Violation {
	if !c.haveLast {
		return nil
	}
	p := c.last
	if e.Cwnd != p.Cwnd || e.Ssthresh != p.Ssthresh || e.Shift != p.Shift ||
		e.SndUna != p.SndUna || e.SndNxt != p.SndNxt || e.SndMax != p.SndMax {
		return fail(rule,
			"ignored ACK %d mutated sender state (cwnd %d->%d ssthresh %d->%d snd_una %d->%d)",
			e.Ack, p.Cwnd, e.Cwnd, p.Ssthresh, e.Ssthresh, p.SndUna, e.SndUna)
	}
	return nil
}

// checkTimeout validates the Tahoe timeout response: collapse to one
// segment, ssthresh halving, go-back-N rewind, Karn backoff, timer
// restart. These hold for every variant in this codebase (timeouts always
// abandon fast recovery).
func (c *Checker) checkTimeout(e trace.Event, fail failf) *Violation {
	// A timeout abandons any fast-recovery episode in every variant.
	c.inRecovery = false
	if !within(float64(e.Cwnd), float64(c.cfg.MSS), c.cfg.ByteTol) {
		return fail("tcp/timeout-collapse",
			"cwnd %d after timeout, want one segment (%d)", e.Cwnd, int64(c.cfg.MSS))
	}
	if e.SndNxt != e.SndUna {
		return fail("tcp/timeout-rewind",
			"snd_nxt %d not rewound to snd_una %d (go-back-N)", e.SndNxt, e.SndUna)
	}
	if e.DupAcks != 0 {
		return fail("tcp/timeout-collapse",
			"timeout did not clear the duplicate-ACK run (%d)", e.DupAcks)
	}
	if !c.deadlineIs(e, e.At+e.RTO) {
		return fail("tcp/timer-restart-on-timeout",
			"timer deadline %v after timeout, want %v (now+RTO)", e.Deadline, e.At+e.RTO)
	}
	if !c.haveLast {
		return nil
	}
	p := c.last
	if v := c.checkHalved("tcp/timeout-ssthresh", e, p, fail); v != nil {
		return v
	}
	// Karn backoff: the shift increments (capped at 6) and the timeout
	// doubles (capped at MaxRTO). The RTO base cannot have changed since
	// the previous event — samples are only taken on new ACKs, which
	// snapshot too.
	const maxShift = 6
	wantShift := p.Shift + 1
	wantRTO := 2 * p.RTO
	if wantShift > maxShift {
		wantShift = maxShift
		wantRTO = p.RTO
	}
	if wantRTO > c.cfg.MaxRTO {
		wantRTO = c.cfg.MaxRTO
	}
	if e.Shift != wantShift {
		return fail("tcp/rto-backoff",
			"backoff shift %d after timeout, want %d", e.Shift, wantShift)
	}
	if !durWithin(e.RTO, wantRTO, 2*c.cfg.TimeTol) {
		return fail("tcp/rto-backoff",
			"RTO %v after timeout, want %v (doubled from %v, capped at %v)",
			e.RTO, wantRTO, p.RTO, c.cfg.MaxRTO)
	}
	return nil
}

// checkFastRetx delegates the third-duplicate-ACK response to the
// variant's profile: Tahoe collapses and rewinds, the Reno family
// retransmits the hole and enters fast recovery.
func (c *Checker) checkFastRetx(e trace.Event, fail failf) *Violation {
	return c.profile.fastRetx(c, e, c.last, fail)
}

// checkHalved asserts e.Ssthresh == max(min(prev cwnd, window)/2, 2*MSS).
func (c *Checker) checkHalved(rule string, e, p trace.Event, fail failf) *Violation {
	flight := float64(p.Cwnd)
	if adv := float64(c.cfg.Window); adv < flight {
		flight = adv
	}
	exp := flight / 2
	if min := 2 * float64(c.cfg.MSS); exp < min {
		exp = min
	}
	if !within(float64(e.Ssthresh), exp, c.cfg.ByteTol) {
		return fail(rule,
			"ssthresh %d, want %.0f (half of min(cwnd=%d, window=%d), floored at 2 segments)",
			e.Ssthresh, exp, p.Cwnd, int64(c.cfg.Window))
	}
	return nil
}

// checkEBSNReset validates the paper's EBSN response: the source restarts
// its retransmission timer with the *current* RTO — it does not extend an
// existing deadline, does not back off, and touches no congestion state.
func (c *Checker) checkEBSNReset(e trace.Event, fail failf) *Violation {
	if c.cfg.TrackNotifications {
		c.ebsnResets++
		if c.ebsnResets > c.ebsnSent {
			return fail("ebsn/reset-without-notification",
				"%d timer resets but only %d EBSNs were sent by the base station",
				c.ebsnResets, c.ebsnSent)
		}
	}
	if e.SndNxt > e.SndUna && !c.deadlineIs(e, e.At+e.RTO) {
		return fail("ebsn/timer-restart-not-extend",
			"timer deadline %v after EBSN, want restart at %v (now + current RTO)",
			e.Deadline, e.At+e.RTO)
	}
	if !c.haveLast {
		return nil
	}
	p := c.last
	if e.Cwnd != p.Cwnd || e.Ssthresh != p.Ssthresh {
		return fail("ebsn/no-congestion-response",
			"EBSN moved cwnd/ssthresh %d/%d -> %d/%d (must be congestion-neutral)",
			p.Cwnd, p.Ssthresh, e.Cwnd, e.Ssthresh)
	}
	if e.Shift != p.Shift || !durWithin(e.RTO, p.RTO, c.cfg.TimeTol) {
		return fail("ebsn/timer-restart-not-extend",
			"EBSN changed the timeout value (shift %d->%d, RTO %v->%v); it may only re-arm",
			p.Shift, e.Shift, p.RTO, e.RTO)
	}
	return nil
}

// checkQuench validates RFC 1122 source-quench handling: the window
// collapses to one segment, and nothing else moves (in particular the
// retransmission timer — which is exactly why quench cannot prevent the
// timeouts EBSN prevents).
func (c *Checker) checkQuench(e trace.Event, fail failf) *Violation {
	if c.cfg.TrackNotifications {
		c.quenchIn++
		if c.quenchIn > c.quenchSent {
			return fail("quench/in-without-notification",
				"%d quench responses but only %d quenches were sent", c.quenchIn, c.quenchSent)
		}
	}
	if !within(float64(e.Cwnd), float64(c.cfg.MSS), c.cfg.ByteTol) {
		return fail("quench/collapse",
			"cwnd %d after source quench, want one segment (%d)", e.Cwnd, int64(c.cfg.MSS))
	}
	if !c.haveLast {
		return nil
	}
	p := c.last
	if e.Ssthresh != p.Ssthresh || e.Shift != p.Shift || !durWithin(e.RTO, p.RTO, c.cfg.TimeTol) {
		return fail("quench/collapse",
			"source quench moved ssthresh/shift/RTO (%d/%d/%v -> %d/%d/%v)",
			p.Ssthresh, p.Shift, p.RTO, e.Ssthresh, e.Shift, e.RTO)
	}
	return nil
}

// checkECN validates the [Floyd 94] ECN response: one halving per flight,
// with cwnd dropped to the new ssthresh.
func (c *Checker) checkECN(e trace.Event, fail failf) *Violation {
	if !within(float64(e.Cwnd), float64(e.Ssthresh), c.cfg.ByteTol) {
		return fail("ecn/halve",
			"cwnd %d after ECN echo, want the new ssthresh %d", e.Cwnd, e.Ssthresh)
	}
	if !c.haveLast {
		return nil
	}
	return c.checkHalved("ecn/halve", e, c.last, fail)
}

// deadlineIs compares an armed deadline within the time tolerance; an
// idle timer (negative deadline) never matches.
func (c *Checker) deadlineIs(e trace.Event, want time.Duration) bool {
	if e.Deadline < 0 {
		return false
	}
	return durWithin(e.Deadline, want, 2*c.cfg.TimeTol)
}

// within compares byte quantities under the truncation tolerance.
func within(got, want float64, tol int64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= float64(tol)
}

// durWithin compares durations under tol.
func durWithin(got, want, tol time.Duration) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}
