package ip

import (
	"testing"
	"testing/quick"
	"time"

	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

func newFragmenter(t *testing.T, mtu units.ByteSize) *Fragmenter {
	t.Helper()
	f, err := NewFragmenter(mtu, &packet.IDGen{})
	if err != nil {
		t.Fatalf("NewFragmenter: %v", err)
	}
	return f
}

func TestNewFragmenterRejectsBadMTU(t *testing.T) {
	for _, mtu := range []units.ByteSize{0, -1} {
		if _, err := NewFragmenter(mtu, &packet.IDGen{}); err == nil {
			t.Errorf("MTU %d accepted", mtu)
		}
	}
}

func TestFragmentSlicing(t *testing.T) {
	tests := []struct {
		name      string
		payload   units.ByteSize // TCP payload; on-wire = payload + 40
		mtu       units.ByteSize
		wantCount int
		wantLast  units.ByteSize
	}{
		{"576B packet, 128 MTU", 536, 128, 5, 64}, // 576 = 4*128 + 64
		{"exact multiple", 472, 128, 4, 128},      // 512 = 4*128
		{"fits in one MTU", 60, 128, 1, 100},
		{"single byte over", 89, 128, 2, 1}, // 129 = 128 + 1
		{"1536B packet", 1496, 128, 12, 128},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := newFragmenter(t, tt.mtu)
			p := &packet.Packet{ID: 42, Kind: packet.Data, Seq: 1000, Payload: tt.payload}
			frags := f.Fragment(p)
			if len(frags) != tt.wantCount {
				t.Fatalf("got %d fragments, want %d", len(frags), tt.wantCount)
			}
			var sum units.ByteSize
			for i, fr := range frags {
				if fr.Kind != packet.Fragment {
					t.Errorf("fragment %d kind = %v", i, fr.Kind)
				}
				if fr.FragOf != p.ID || fr.FragCount != tt.wantCount || fr.FragIndex != i {
					t.Errorf("fragment %d ids wrong: %+v", i, fr)
				}
				if fr.Payload > tt.mtu {
					t.Errorf("fragment %d exceeds MTU: %d", i, fr.Payload)
				}
				if fr.Seq != p.Seq {
					t.Errorf("fragment %d seq = %d, want %d", i, fr.Seq, p.Seq)
				}
				sum += fr.Payload
			}
			if sum != p.Size() {
				t.Errorf("fragment bytes sum to %d, want %d", sum, p.Size())
			}
			if last := frags[len(frags)-1].Payload; last != tt.wantLast {
				t.Errorf("last fragment = %d bytes, want %d", last, tt.wantLast)
			}
			if got := f.FragmentCount(p.Size()); got != tt.wantCount {
				t.Errorf("FragmentCount = %d, want %d", got, tt.wantCount)
			}
		})
	}
}

func TestFragmentPropagatesRetransmitFlag(t *testing.T) {
	f := newFragmenter(t, 128)
	p := &packet.Packet{ID: 1, Kind: packet.Data, Payload: 536, Retransmit: true}
	for _, fr := range f.Fragment(p) {
		if !fr.Retransmit {
			t.Fatal("retransmit flag lost in fragmentation")
		}
	}
}

func TestFragmentIDsUnique(t *testing.T) {
	f := newFragmenter(t, 128)
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		p := &packet.Packet{ID: uint64(100 + i), Kind: packet.Data, Payload: 536}
		for _, fr := range f.Fragment(p) {
			if seen[fr.ID] {
				t.Fatalf("duplicate fragment ID %d", fr.ID)
			}
			seen[fr.ID] = true
		}
	}
}

func reassemble(t *testing.T, s *sim.Simulator, timeout time.Duration) (*Reassembler, *[]*packet.Packet) {
	t.Helper()
	var got []*packet.Packet
	r, err := NewReassembler(s, timeout, func(p *packet.Packet) { got = append(got, p) })
	if err != nil {
		t.Fatalf("NewReassembler: %v", err)
	}
	return r, &got
}

func TestReassembleRoundTrip(t *testing.T) {
	s := sim.New()
	f := newFragmenter(t, 128)
	r, got := reassemble(t, s, 0)

	orig := &packet.Packet{ID: 7, Kind: packet.Data, Seq: 2048, Payload: 536, Retransmit: true}
	for _, fr := range f.Fragment(orig) {
		r.Receive(fr)
	}
	if len(*got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(*got))
	}
	p := (*got)[0]
	if p.ID != orig.ID || p.Seq != orig.Seq || p.Payload != orig.Payload ||
		p.Kind != packet.Data || !p.Retransmit {
		t.Errorf("reassembled %+v, want equivalent of %+v", p, orig)
	}
	if r.Stats().Completed != 1 {
		t.Errorf("Completed = %d", r.Stats().Completed)
	}
	if r.Pending() != 0 {
		t.Errorf("Pending = %d", r.Pending())
	}
}

func TestReassembleOutOfOrder(t *testing.T) {
	s := sim.New()
	f := newFragmenter(t, 128)
	r, got := reassemble(t, s, 0)
	frags := f.Fragment(&packet.Packet{ID: 9, Kind: packet.Data, Seq: 0, Payload: 536})
	// Deliver in reverse.
	for i := len(frags) - 1; i >= 0; i-- {
		r.Receive(frags[i])
	}
	if len(*got) != 1 || (*got)[0].Payload != 536 {
		t.Fatalf("out-of-order reassembly failed: %v", *got)
	}
}

func TestReassembleDuplicatesIdempotent(t *testing.T) {
	s := sim.New()
	f := newFragmenter(t, 128)
	r, got := reassemble(t, s, 0)
	frags := f.Fragment(&packet.Packet{ID: 3, Kind: packet.Data, Payload: 536})
	// Each fragment delivered twice (lost link-acks cause ARQ re-sends).
	for _, fr := range frags {
		r.Receive(fr)
		r.Receive(fr)
	}
	if len(*got) != 1 {
		t.Fatalf("delivered %d, want 1", len(*got))
	}
	if (*got)[0].Payload != 536 {
		t.Errorf("payload = %d after duplicates", (*got)[0].Payload)
	}
	if r.Stats().Duplicates == 0 {
		t.Error("duplicates not counted")
	}
}

func TestStaleFragmentAfterCompletion(t *testing.T) {
	s := sim.New()
	f := newFragmenter(t, 128)
	r, got := reassemble(t, s, 0)
	frags := f.Fragment(&packet.Packet{ID: 4, Kind: packet.Data, Payload: 536})
	for _, fr := range frags {
		r.Receive(fr)
	}
	r.Receive(frags[0]) // straggler duplicate after completion
	if len(*got) != 1 {
		t.Fatalf("stale fragment re-delivered the packet")
	}
	if r.Stats().Stale != 1 {
		t.Errorf("Stale = %d, want 1", r.Stats().Stale)
	}
}

func TestIncompleteGroupExpires(t *testing.T) {
	s := sim.New()
	f := newFragmenter(t, 128)
	r, got := reassemble(t, s, 10*time.Second)
	frags := f.Fragment(&packet.Packet{ID: 5, Kind: packet.Data, Payload: 536})
	// Deliver all but one fragment.
	for _, fr := range frags[:len(frags)-1] {
		r.Receive(fr)
	}
	if r.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", r.Pending())
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if r.Pending() != 0 {
		t.Error("group not purged by timeout")
	}
	if r.Stats().Expired != 1 {
		t.Errorf("Expired = %d, want 1", r.Stats().Expired)
	}
	// The straggler arriving after expiry is stale, not a new group.
	r.Receive(frags[len(frags)-1])
	if r.Pending() != 0 || len(*got) != 0 {
		t.Error("straggler after expiry re-opened the group")
	}
	if r.Stats().Stale != 1 {
		t.Errorf("Stale = %d, want 1", r.Stats().Stale)
	}
}

func TestCompletionCancelsExpiryTimer(t *testing.T) {
	s := sim.New()
	f := newFragmenter(t, 128)
	r, _ := reassemble(t, s, 10*time.Second)
	for _, fr := range f.Fragment(&packet.Packet{ID: 6, Kind: packet.Data, Payload: 536}) {
		r.Receive(fr)
	}
	if s.Pending() != 0 {
		t.Errorf("%d events still pending after completion (timer leak)", s.Pending())
	}
}

func TestNonFragmentPassesThrough(t *testing.T) {
	s := sim.New()
	r, got := reassemble(t, s, 0)
	ack := &packet.Packet{ID: 11, Kind: packet.Ack, AckNo: 576}
	r.Receive(ack)
	if len(*got) != 1 || (*got)[0] != ack {
		t.Error("non-fragment packet did not pass through")
	}
}

func TestNilDeliverRejected(t *testing.T) {
	if _, err := NewReassembler(sim.New(), 0, nil); err == nil {
		t.Error("nil deliver accepted")
	}
}

func TestInterleavedGroups(t *testing.T) {
	s := sim.New()
	f := newFragmenter(t, 128)
	r, got := reassemble(t, s, 0)
	a := f.Fragment(&packet.Packet{ID: 100, Kind: packet.Data, Seq: 0, Payload: 536})
	b := f.Fragment(&packet.Packet{ID: 101, Kind: packet.Data, Seq: 576, Payload: 536})
	for i := range a {
		r.Receive(a[i])
		r.Receive(b[i])
	}
	if len(*got) != 2 {
		t.Fatalf("delivered %d, want 2", len(*got))
	}
	if (*got)[0].ID != 100 || (*got)[1].ID != 101 {
		t.Errorf("order = %d,%d", (*got)[0].ID, (*got)[1].ID)
	}
}

// Property: fragmentation then full reassembly is the identity on
// (ID, Seq, Payload, Retransmit) for any payload and MTU.
func TestPropertyFragmentReassembleIdentity(t *testing.T) {
	f := func(payloadRaw uint16, mtuRaw uint8, retx bool) bool {
		payload := units.ByteSize(payloadRaw%4096) + 1
		mtu := units.ByteSize(mtuRaw)%512 + 16
		s := sim.New()
		fr, err := NewFragmenter(mtu, &packet.IDGen{})
		if err != nil {
			return false
		}
		var out *packet.Packet
		r, err := NewReassembler(s, 0, func(p *packet.Packet) { out = p })
		if err != nil {
			return false
		}
		orig := &packet.Packet{ID: 77, Kind: packet.Data, Seq: 12345, Payload: payload, Retransmit: retx}
		for _, frag := range fr.Fragment(orig) {
			if frag.Payload > mtu {
				return false
			}
			r.Receive(frag)
		}
		return out != nil &&
			out.ID == orig.ID &&
			out.Seq == orig.Seq &&
			out.Payload == orig.Payload &&
			out.Retransmit == orig.Retransmit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
