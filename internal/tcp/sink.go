package tcp

import (
	"errors"
	"sort"
	"time"

	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// SinkStats accumulates receiver-side counters.
type SinkStats struct {
	// SegmentsReceived counts every Data segment that arrived.
	SegmentsReceived uint64
	// DuplicateSegments counts arrivals wholly at or below rcv_nxt or
	// already buffered — wasted wireless capacity.
	DuplicateSegments uint64
	// BufferedSegments counts out-of-order arrivals held for reordering.
	BufferedSegments uint64
	// AcksSent counts all ACKs, DupAcksSent the non-advancing ones.
	AcksSent    uint64
	DupAcksSent uint64
}

// Sink is the receiving TCP endpoint: it delivers payload in order,
// acknowledges every arriving segment immediately with a cumulative ACK
// (the ns TCPSink behaviour the paper's simulations used), and buffers
// out-of-order segments within the advertised window.
type Sink struct {
	sim *sim.Simulator
	ids *packet.IDGen
	out func(*packet.Packet)

	rcvNxt   int64
	window   units.ByteSize
	buffered map[int64]units.ByteSize // seq -> payload length

	delivered   units.ByteSize // cumulative in-order payload ("user data")
	lastArrival time.Duration

	// Delayed-ACK state (RFC 1122 §4.2.3.2): when enabled, an in-order
	// arrival is acknowledged either by the next arrival (ack every
	// second segment) or when the delay timer fires; out-of-order and
	// duplicate arrivals are always acknowledged immediately.
	delayAcks  bool
	ackDelay   time.Duration
	ackPending bool
	ackTimer   *sim.Timer

	// echoCE carries a received ECN congestion mark onto the next
	// emitted acknowledgment.
	echoCE bool

	// sackEnabled attaches selective-acknowledgment blocks describing
	// the out-of-order data held in the reorder buffer.
	sackEnabled bool

	// onDeliver, when set, observes every in-order delivery watermark
	// (application workloads use it to measure response latencies).
	onDeliver func(total units.ByteSize)

	stats SinkStats
}

// DefaultAckDelay is the common 200 ms delayed-ACK timer.
const DefaultAckDelay = 200 * time.Millisecond

// NewSink wires a sink that emits ACKs through out (typically the reverse
// wireless link's Send). window is the advertised receive window.
func NewSink(s *sim.Simulator, window units.ByteSize, ids *packet.IDGen, out func(*packet.Packet)) (*Sink, error) {
	if window <= 0 {
		return nil, errors.New("tcp: sink window must be positive")
	}
	if out == nil {
		return nil, errors.New("tcp: nil sink output callback")
	}
	k := &Sink{
		sim:      s,
		ids:      ids,
		out:      out,
		window:   window,
		buffered: make(map[int64]units.ByteSize),
	}
	k.ackTimer = sim.NewTimer(s, k.onAckDelay)
	return k, nil
}

// EnableSACK attaches RFC 2018 selective-acknowledgment blocks to every
// ACK. The paper's TCP predates SACK; the option exists as an ablation
// (see the sender's matching Config.SACK).
func (k *Sink) EnableSACK() { k.sackEnabled = true }

// SetDeliveredHook installs a callback invoked with the cumulative
// in-order payload after every delivery. May be nil.
func (k *Sink) SetDeliveredHook(fn func(total units.ByteSize)) { k.onDeliver = fn }

// sackBlocks summarizes the buffered out-of-order data as up to
// MaxSACKBlocks contiguous ranges, lowest first.
func (k *Sink) sackBlocks() []packet.SACKBlock {
	if !k.sackEnabled || len(k.buffered) == 0 {
		return nil
	}
	seqs := make([]int64, 0, len(k.buffered))
	for seq := range k.buffered {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var blocks []packet.SACKBlock
	for _, seq := range seqs {
		end := seq + int64(k.buffered[seq])
		if n := len(blocks); n > 0 && blocks[n-1].End == seq {
			blocks[n-1].End = end
			continue
		}
		if len(blocks) == packet.MaxSACKBlocks {
			break
		}
		blocks = append(blocks, packet.SACKBlock{Start: seq, End: end})
	}
	return blocks
}

// EnableDelayedAcks turns on RFC 1122 delayed acknowledgments with the
// given timer (non-positive uses DefaultAckDelay). The ns sink the paper
// used acks every segment; this option exists as an ablation.
func (k *Sink) EnableDelayedAcks(delay time.Duration) {
	if delay <= 0 {
		delay = DefaultAckDelay
	}
	k.delayAcks = true
	k.ackDelay = delay
}

// Delivered reports the total in-order payload handed to the application.
func (k *Sink) Delivered() units.ByteSize { return k.delivered }

// RcvNxt reports the next expected byte offset.
func (k *Sink) RcvNxt() int64 { return k.rcvNxt }

// LastArrival reports when the most recent in-order payload arrived.
func (k *Sink) LastArrival() time.Duration { return k.lastArrival }

// Stats returns a copy of the counters.
func (k *Sink) Stats() SinkStats { return k.stats }

// Receive accepts a Data segment, updates the reassembly state, and emits
// an immediate cumulative ACK. Non-data packets are ignored.
func (k *Sink) Receive(p *packet.Packet) {
	if p.Kind != packet.Data {
		return
	}
	k.stats.SegmentsReceived++
	if p.CongestionMarked {
		k.echoCE = true
	}
	advanced := false
	switch {
	case p.Seq == k.rcvNxt:
		k.accept(p.Seq, p.Payload)
		k.drainBuffered()
		advanced = true
		if k.onDeliver != nil {
			k.onDeliver(k.delivered)
		}
	case p.Seq > k.rcvNxt:
		// Out of order: buffer if it fits the advertised window and is
		// not already held.
		if _, dup := k.buffered[p.Seq]; dup {
			k.stats.DuplicateSegments++
		} else if p.End() <= k.rcvNxt+int64(k.window) {
			k.buffered[p.Seq] = p.Payload
			k.stats.BufferedSegments++
		}
	default:
		if p.End() > k.rcvNxt {
			// Partial overlap: a retransmission whose boundaries merged
			// previously separate writes. Accept the new suffix.
			k.accept(k.rcvNxt, units.ByteSize(p.End()-k.rcvNxt))
			k.drainBuffered()
			advanced = true
			if k.onDeliver != nil {
				k.onDeliver(k.delivered)
			}
		} else {
			// Wholly old data (retransmission of something delivered).
			k.stats.DuplicateSegments++
		}
	}
	k.sendAck(advanced)
}

// accept consumes one in-order segment.
func (k *Sink) accept(seq int64, payload units.ByteSize) {
	_ = seq // always == rcvNxt here
	k.rcvNxt += int64(payload)
	k.delivered += payload
	k.lastArrival = k.sim.Now()
}

// drainBuffered consumes any buffered segments made contiguous.
func (k *Sink) drainBuffered() {
	for {
		payload, ok := k.buffered[k.rcvNxt]
		if !ok {
			return
		}
		delete(k.buffered, k.rcvNxt)
		k.accept(k.rcvNxt, payload)
	}
}

// sendAck decides whether to emit a cumulative ACK for rcv_nxt now or to
// hold it under the delayed-ACK policy.
func (k *Sink) sendAck(advanced bool) {
	if !k.delayAcks || !advanced {
		// Immediate mode, or a duplicate/out-of-order arrival: the
		// sender needs the dupack now for fast retransmit. A pending
		// delayed ack is folded into this one.
		k.ackPending = false
		k.ackTimer.Stop()
		k.emitAck(advanced)
		return
	}
	if k.ackPending {
		// Second in-order segment: ack immediately (RFC 1122's "at
		// least every second segment").
		k.ackPending = false
		k.ackTimer.Stop()
		k.emitAck(true)
		return
	}
	k.ackPending = true
	k.ackTimer.Set(k.ackDelay)
}

// onAckDelay fires the delayed-ACK timer.
func (k *Sink) onAckDelay() {
	if !k.ackPending {
		return
	}
	k.ackPending = false
	k.emitAck(true)
}

// emitAck sends the ACK packet, echoing any pending congestion mark.
func (k *Sink) emitAck(advanced bool) {
	k.stats.AcksSent++
	if !advanced {
		k.stats.DupAcksSent++
	}
	ce := k.echoCE
	k.echoCE = false
	k.out(&packet.Packet{
		ID:               k.ids.Next(),
		Kind:             packet.Ack,
		AckNo:            k.rcvNxt,
		CongestionMarked: ce,
		SACK:             k.sackBlocks(),
		SentAt:           k.sim.Now(),
	})
}
