package oracle

import (
	"testing"
	"time"

	"wtcp/internal/tcp"
	"wtcp/internal/trace"
)

const (
	mss  = 536
	win  = 4288 // eight segments
	rto0 = 3 * time.Second
	sec  = time.Second
)

func baseCfg() Config {
	return Config{Variant: tcp.Tahoe, MSS: mss, Window: win, RTmax: 3}
}

// slowStartPrefix is a conforming opening: first segment, its ACK (slow-
// start growth, timer stopped — nothing outstanding), then two more sends.
func slowStartPrefix() []trace.Event {
	return []trace.Event{
		{At: 0, Kind: trace.Send, Seq: 0, Payload: mss,
			Cwnd: mss, Ssthresh: win, RTO: rto0, Deadline: rto0},
		{At: sec, Kind: trace.AckIn, Ack: mss, AckClass: int(tcp.AckNew),
			SndUna: mss, SndNxt: mss, SndMax: mss,
			Cwnd: 2 * mss, Ssthresh: win, RTO: rto0, Deadline: -1},
		{At: sec, Kind: trace.Send, Seq: mss, Payload: mss,
			SndUna: mss, SndNxt: mss, SndMax: mss,
			Cwnd: 2 * mss, Ssthresh: win, RTO: rto0, Deadline: sec + rto0},
		{At: sec, Kind: trace.Send, Seq: 2 * mss, Payload: mss,
			SndUna: mss, SndNxt: 2 * mss, SndMax: 2 * mss,
			Cwnd: 2 * mss, Ssthresh: win, RTO: rto0, Deadline: sec + rto0},
	}
}

// timeoutSuffix continues slowStartPrefix with a conforming timeout at the
// 4s deadline: collapse, halve, rewind, backoff, restart — then the
// go-back-N retransmission.
func timeoutSuffix() []trace.Event {
	return []trace.Event{
		{At: 4 * sec, Kind: trace.Timeout, Seq: mss,
			SndUna: mss, SndNxt: mss, SndMax: 3 * mss,
			Cwnd: mss, Ssthresh: 2 * mss, RTO: 2 * rto0, Deadline: 10 * sec, Shift: 1},
		{At: 4 * sec, Kind: trace.Retransmit, Seq: mss, Payload: mss,
			SndUna: mss, SndNxt: mss, SndMax: 3 * mss,
			Cwnd: mss, Ssthresh: 2 * mss, RTO: 2 * rto0, Deadline: 10 * sec, Shift: 1},
	}
}

func wantViolation(t *testing.T, v *Violation, rule string, index int) {
	t.Helper()
	if v == nil {
		t.Fatalf("stream accepted, want %s at event %d", rule, index)
	}
	if v.Rule != rule || v.Index != index {
		t.Fatalf("violation = %s at event %d (%s), want %s at %d", v.Rule, v.Index, v.Detail, rule, index)
	}
}

func TestCleanSlowStartAndTimeout(t *testing.T) {
	events := append(slowStartPrefix(), timeoutSuffix()...)
	if v := Check(baseCfg(), events); v != nil {
		t.Fatalf("conforming stream rejected: %v", v)
	}
}

func TestAckOfUnsentData(t *testing.T) {
	events := slowStartPrefix()
	// The sender accepted (class New) an ACK beyond snd_max.
	events[1].Ack = 10 * mss
	events[1].SndUna = 10 * mss
	events[1].SndNxt = 10 * mss
	events[1].SndMax = mss
	v := Check(baseCfg(), events)
	wantViolation(t, v, "tcp/sequence-order", 1)

	// With consistent pointers the specific ack-of-unsent rule names it.
	events = slowStartPrefix()
	events[1].Ack = 2 * mss // beyond snd_max = mss
	events[1].SndUna = mss
	wantViolation(t, Check(baseCfg(), events), "tcp/ack-of-unsent", 1)
}

func TestInvalidAckMustNotMutate(t *testing.T) {
	events := slowStartPrefix()[:2]
	events[1] = trace.Event{At: sec, Kind: trace.AckIn, Ack: 5 * mss,
		AckClass: int(tcp.AckInvalid),
		SndUna:   0, SndNxt: mss, SndMax: mss,
		Cwnd: 2 * mss, Ssthresh: win, RTO: rto0, Deadline: rto0}
	// cwnd grew on an invalid ACK: the sender failed to drop it.
	wantViolation(t, Check(baseCfg(), events), "tcp/ack-of-unsent", 1)
}

func TestTahoeCwndGrowthRules(t *testing.T) {
	// Slow start must add one MSS per new ACK.
	events := slowStartPrefix()
	events[1].Cwnd = 3 * mss // grew by two segments
	wantViolation(t, Check(baseCfg(), events), "tahoe/cwnd-growth", 1)

	// No growth at all is equally non-conforming.
	events = slowStartPrefix()
	events[1].Cwnd = mss
	wantViolation(t, Check(baseCfg(), events), "tahoe/cwnd-growth", 1)

	// Congestion avoidance: above ssthresh the increment is MSS^2/cwnd.
	ca := []trace.Event{
		{At: 0, Kind: trace.Send, Seq: 0, Payload: mss,
			Cwnd: 4 * mss, Ssthresh: 2 * mss, RTO: rto0, Deadline: rto0},
		{At: sec, Kind: trace.AckIn, Ack: mss, AckClass: int(tcp.AckNew),
			SndUna: mss, SndNxt: mss, SndMax: mss,
			Cwnd: 4*mss + mss/4, Ssthresh: 2 * mss, RTO: rto0, Deadline: -1},
	}
	if v := Check(baseCfg(), ca); v != nil {
		t.Fatalf("conforming CA growth rejected: %v", v)
	}
	ca[1].Cwnd = 5 * mss // slow-start jump while above ssthresh
	wantViolation(t, Check(baseCfg(), ca), "tahoe/cwnd-growth", 1)
}

func TestTimeoutRules(t *testing.T) {
	base := func() []trace.Event { return append(slowStartPrefix(), timeoutSuffix()...) }

	events := base()
	events[4].Cwnd = 2 * mss // no collapse
	wantViolation(t, Check(baseCfg(), events), "tcp/timeout-collapse", 4)

	events = base()
	events[4].Ssthresh = win // halving skipped
	wantViolation(t, Check(baseCfg(), events), "tcp/timeout-ssthresh", 4)

	events = base()
	events[4].SndNxt = 3 * mss
	events[4].Seq = mss
	wantViolation(t, Check(baseCfg(), events), "tcp/timeout-rewind", 4)

	events = base()
	events[4].Shift = 0
	events[4].RTO = rto0 // backoff skipped
	events[4].Deadline = 4*sec + rto0
	wantViolation(t, Check(baseCfg(), events), "tcp/rto-backoff", 4)

	events = base()
	events[4].Deadline = 20 * sec // re-armed with something other than RTO
	wantViolation(t, Check(baseCfg(), events), "tcp/timer-restart-on-timeout", 4)
}

func TestRTOBackoffCaps(t *testing.T) {
	cfg := baseCfg()
	cfg.MaxRTO = 8 * time.Second
	// Previous RTO 6s, shift 1: doubling would give 12s but must clamp.
	events := []trace.Event{
		{At: 0, Kind: trace.Send, Seq: 0, Payload: mss,
			Cwnd: mss, Ssthresh: win, RTO: 6 * sec, Deadline: 6 * sec, Shift: 1},
		{At: 6 * sec, Kind: trace.Timeout,
			SndUna: 0, SndNxt: 0, SndMax: mss,
			Cwnd: mss, Ssthresh: 2 * mss, RTO: 8 * sec, Deadline: 14 * sec, Shift: 2},
	}
	if v := Check(cfg, events); v != nil {
		t.Fatalf("clamped backoff rejected: %v", v)
	}
	events[1].RTO = 12 * sec // ignored the ceiling
	events[1].Deadline = 18 * sec
	wantViolation(t, Check(cfg, events), "tcp/rto-backoff", 1)
}

func TestKarnBackoffResetNeedsFreshByte(t *testing.T) {
	prefix := append(slowStartPrefix(), timeoutSuffix()...)
	// The ACK covers exactly the retransmitted range [mss, 2*mss) — no
	// fresh byte proves a round trip, so the shift may not reset.
	// The ACK drains everything outstanding (the go-back-N pass had only
	// resent one segment), so the timer stops.
	ack := trace.Event{At: 5 * sec, Kind: trace.AckIn, Ack: 2 * mss,
		AckClass: int(tcp.AckNew),
		SndUna:   2 * mss, SndNxt: 2 * mss, SndMax: 3 * mss,
		Cwnd: 2 * mss, Ssthresh: 2 * mss, RTO: 2 * rto0,
		Deadline: -1, Shift: 1}
	legit := append(append([]trace.Event{}, prefix...), ack)
	if v := Check(baseCfg(), legit); v != nil {
		t.Fatalf("Karn-conforming ACK rejected: %v", v)
	}

	bad := ack
	bad.Shift = 0
	bad.RTO = rto0
	events := append(append([]trace.Event{}, prefix...), bad)
	wantViolation(t, Check(baseCfg(), events), "tcp/karn-backoff-reset", len(prefix))

	// A shift *increase* on an ACK is never legal.
	up := ack
	up.Shift = 2
	up.RTO = 4 * rto0
	events = append(append([]trace.Event{}, prefix...), up)
	wantViolation(t, Check(baseCfg(), events), "tcp/karn-backoff-reset", len(prefix))
}

func TestMissedFastRetransmit(t *testing.T) {
	events := []trace.Event{
		{At: 0, Kind: trace.Send, Seq: 0, Payload: mss,
			Cwnd: 4 * mss, Ssthresh: win, RTO: rto0, Deadline: rto0},
	}
	for i := 1; i <= 3; i++ {
		events = append(events, trace.Event{At: sec, Kind: trace.AckIn, Ack: 0,
			AckClass: int(tcp.AckDup), DupAcks: i,
			SndUna: 0, SndNxt: mss, SndMax: mss,
			Cwnd: 4 * mss, Ssthresh: win, RTO: rto0, Deadline: rto0})
	}
	// The third duplicate ACK surfaced as a plain dupack instead of a
	// fast retransmit.
	wantViolation(t, Check(baseCfg(), events), "tahoe/missed-fast-retransmit", 3)
}

func TestFastRetransmitRules(t *testing.T) {
	prefix := []trace.Event{
		{At: 0, Kind: trace.Send, Seq: 0, Payload: mss,
			Cwnd: 4 * mss, Ssthresh: win, RTO: rto0, Deadline: rto0},
		{At: sec, Kind: trace.AckIn, Ack: 0, AckClass: int(tcp.AckDup), DupAcks: 1,
			SndUna: 0, SndNxt: mss, SndMax: mss,
			Cwnd: 4 * mss, Ssthresh: win, RTO: rto0, Deadline: rto0},
		{At: sec, Kind: trace.AckIn, Ack: 0, AckClass: int(tcp.AckDup), DupAcks: 2,
			SndUna: 0, SndNxt: mss, SndMax: mss,
			Cwnd: 4 * mss, Ssthresh: win, RTO: rto0, Deadline: rto0},
	}
	fr := trace.Event{At: sec, Kind: trace.FastRetx, Seq: 0,
		SndUna: 0, SndNxt: 0, SndMax: mss,
		Cwnd: mss, Ssthresh: 2 * mss, RTO: rto0, Deadline: sec + rto0}
	clean := append(append([]trace.Event{}, prefix...), fr)
	if v := Check(baseCfg(), clean); v != nil {
		t.Fatalf("conforming fast retransmit rejected: %v", v)
	}

	noCollapse := fr
	noCollapse.Cwnd = 2 * mss
	events := append(append([]trace.Event{}, prefix...), noCollapse)
	wantViolation(t, Check(baseCfg(), events), "tahoe/fastretx-collapse", 3)

	backedOff := fr
	backedOff.Shift = 1
	backedOff.RTO = 2 * rto0
	backedOff.Deadline = sec + 2*rto0
	events = append(append([]trace.Event{}, prefix...), backedOff)
	wantViolation(t, Check(baseCfg(), events), "tahoe/fastretx-no-backoff", 3)
}

func TestEBSNRestartsNotExtends(t *testing.T) {
	prefix := slowStartPrefix()
	ebsn := trace.Event{At: 2 * sec, Kind: trace.EBSNReset,
		SndUna: mss, SndNxt: 3 * mss, SndMax: 3 * mss,
		Cwnd: 2 * mss, Ssthresh: win, RTO: rto0, Deadline: 2*sec + rto0}
	clean := append(append([]trace.Event{}, prefix...), ebsn)
	if v := Check(baseCfg(), clean); v != nil {
		t.Fatalf("conforming EBSN reset rejected: %v", v)
	}

	// Deadline merely kept from the old timer: not a restart.
	stale := ebsn
	stale.Deadline = sec + rto0
	events := append(append([]trace.Event{}, prefix...), stale)
	wantViolation(t, Check(baseCfg(), events), "ebsn/timer-restart-not-extend", len(prefix))

	// Backing off on an EBSN is wrong: it must re-arm with the current RTO.
	backoff := ebsn
	backoff.Shift = 1
	backoff.RTO = 2 * rto0
	backoff.Deadline = 2*sec + 2*rto0
	events = append(append([]trace.Event{}, prefix...), backoff)
	wantViolation(t, Check(baseCfg(), events), "ebsn/timer-restart-not-extend", len(prefix))

	// EBSN is congestion-neutral: a window change is a violation.
	quenched := ebsn
	quenched.Cwnd = mss
	events = append(append([]trace.Event{}, prefix...), quenched)
	wantViolation(t, Check(baseCfg(), events), "ebsn/no-congestion-response", len(prefix))
}

func TestEBSNNotificationCounting(t *testing.T) {
	cfg := baseCfg()
	cfg.TrackNotifications = true

	// A timer reset with no EBSN on the wire (e.g. a duplicated or forged
	// notification) is flagged immediately.
	events := []trace.Event{{At: sec, Kind: trace.EBSNReset}}
	wantViolation(t, Check(cfg, events), "ebsn/reset-without-notification", 0)

	// An EBSN sent without a preceding link-level failure is flagged.
	events = []trace.Event{{At: sec, Kind: trace.EBSNSent}}
	wantViolation(t, Check(cfg, events), "ebsn/sent-without-failure", 0)

	// failure -> sent -> reset is the conforming order.
	events = []trace.Event{
		{At: sec, Kind: trace.ARQFailure, Unit: 1, Pkt: 1, Attempt: 1},
		{At: sec, Kind: trace.EBSNSent},
		{At: sec, Kind: trace.EBSNReset},
	}
	if v := Check(cfg, events); v != nil {
		t.Fatalf("conforming notification order rejected: %v", v)
	}
}

func TestQuenchRules(t *testing.T) {
	prefix := []trace.Event{{At: 0, Kind: trace.Send, Seq: 0, Payload: mss,
		Cwnd: 4 * mss, Ssthresh: win, RTO: rto0, Deadline: rto0}}
	q := trace.Event{At: sec, Kind: trace.QuenchIn,
		SndUna: 0, SndNxt: mss, SndMax: mss,
		Cwnd: mss, Ssthresh: win, RTO: rto0, Deadline: rto0}
	clean := append(append([]trace.Event{}, prefix...), q)
	if v := Check(baseCfg(), clean); v != nil {
		t.Fatalf("conforming quench rejected: %v", v)
	}
	bad := q
	bad.Cwnd = 4 * mss // ignored the quench
	events := append(append([]trace.Event{}, prefix...), bad)
	wantViolation(t, Check(baseCfg(), events), "quench/collapse", 1)

	touchedTimer := q
	touchedTimer.Shift = 1
	touchedTimer.RTO = 2 * rto0
	events = append(append([]trace.Event{}, prefix...), touchedTimer)
	wantViolation(t, Check(baseCfg(), events), "quench/collapse", 1)
}

func TestECNRules(t *testing.T) {
	prefix := []trace.Event{{At: 0, Kind: trace.Send, Seq: 0, Payload: mss,
		Cwnd: 4 * mss, Ssthresh: win, RTO: rto0, Deadline: rto0}}
	ecn := trace.Event{At: sec, Kind: trace.ECNEcho,
		SndUna: 0, SndNxt: mss, SndMax: mss,
		Cwnd: 2 * mss, Ssthresh: 2 * mss, RTO: rto0, Deadline: rto0}
	clean := append(append([]trace.Event{}, prefix...), ecn)
	if v := Check(baseCfg(), clean); v != nil {
		t.Fatalf("conforming ECN response rejected: %v", v)
	}
	bad := ecn
	bad.Cwnd = 4 * mss
	events := append(append([]trace.Event{}, prefix...), bad)
	wantViolation(t, Check(baseCfg(), events), "ecn/halve", 1)
}

func TestARQAttemptRules(t *testing.T) {
	cfg := baseCfg() // RTmax = 3

	clean := []trace.Event{
		{Kind: trace.ARQAttempt, Unit: 1, Pkt: 1, Attempt: 1},
		{Kind: trace.ARQFailure, Unit: 1, Pkt: 1, Attempt: 1},
		{Kind: trace.ARQAttempt, Unit: 1, Pkt: 1, Attempt: 2},
		{Kind: trace.ARQAck, Unit: 1, Pkt: 1},
		// After completion the unit ID may restart at attempt 1 (the same
		// network packet re-admitted, e.g. a duplicated wired delivery).
		{Kind: trace.ARQAttempt, Unit: 1, Pkt: 1, Attempt: 1},
	}
	if v := Check(cfg, clean); v != nil {
		t.Fatalf("conforming ARQ sequence rejected: %v", v)
	}

	over := []trace.Event{{Kind: trace.ARQAttempt, Unit: 1, Pkt: 1, Attempt: 5}}
	wantViolation(t, Check(cfg, over), "arq/attempt-cap", 0)

	jump := []trace.Event{
		{Kind: trace.ARQAttempt, Unit: 1, Pkt: 1, Attempt: 1},
		{Kind: trace.ARQAttempt, Unit: 1, Pkt: 1, Attempt: 3},
	}
	wantViolation(t, Check(cfg, jump), "arq/attempt-order", 1)

	// A unit appearing mid-count is the stale-recycled-timer signature.
	stale := []trace.Event{{Kind: trace.ARQAttempt, Unit: 9, Pkt: 9, Attempt: 2}}
	wantViolation(t, Check(cfg, stale), "arq/attempt-order", 0)
}

func TestARQDiscardRules(t *testing.T) {
	cfg := baseCfg()
	events := []trace.Event{
		{Kind: trace.ARQAttempt, Unit: 1, Pkt: 7, Attempt: 1},
		{Kind: trace.ARQDiscard, Pkt: 7},
		// Retrying a withdrawn packet's unit is a violation...
		{Kind: trace.ARQAttempt, Unit: 1, Pkt: 7, Attempt: 2},
	}
	wantViolation(t, Check(cfg, events), "arq/attempt-after-discard", 2)

	// ...but a fresh first attempt re-admits it (source retransmitted).
	events[2] = trace.Event{Kind: trace.ARQAttempt, Unit: 8, Pkt: 7, Attempt: 1}
	if v := Check(cfg, events); v != nil {
		t.Fatalf("re-admission after discard rejected: %v", v)
	}
}

func TestMobileReorderRule(t *testing.T) {
	cfg := baseCfg()
	clean := []trace.Event{
		{Kind: trace.MHDeliver, Unit: 1},
		{Kind: trace.MHDeliver, Unit: 2},
		{Kind: trace.MHDeliver, Unit: 4}, // gap flush after a discard: legal
	}
	if v := Check(cfg, clean); v != nil {
		t.Fatalf("in-order delivery rejected: %v", v)
	}
	dup := append(append([]trace.Event{}, clean...),
		trace.Event{Kind: trace.MHDeliver, Unit: 4})
	wantViolation(t, Check(cfg, dup), "arq/reorder", 3)
	back := append(append([]trace.Event{}, clean...),
		trace.Event{Kind: trace.MHDeliver, Unit: 3})
	wantViolation(t, Check(cfg, back), "arq/reorder", 3)
}

func TestCheckerLatchesFirstViolation(t *testing.T) {
	c := New(baseCfg())
	v0 := c.Observe(0, trace.Event{Kind: trace.MHDeliver, Unit: 2})
	if v0 != nil {
		t.Fatalf("first delivery flagged: %v", v0)
	}
	v1 := c.Observe(1, trace.Event{Kind: trace.MHDeliver, Unit: 2})
	if v1 == nil || c.First() != v1 {
		t.Fatalf("violation not latched: %v, first=%v", v1, c.First())
	}
	// A later, independent violation is still reported but First stays.
	v2 := c.Observe(2, trace.Event{Kind: trace.MHDeliver, Unit: 1})
	if v2 == nil || c.First() != v1 {
		t.Errorf("latch moved: %v", c.First())
	}
	if v1.Error() == "" || v1.Index != 1 {
		t.Errorf("violation error text/index: %v", v1)
	}
}
