package tcp

import (
	"sort"

	"wtcp/internal/packet"
)

// scoreboard tracks the byte ranges above snd_una the receiver has
// selectively acknowledged, so retransmission passes (Tahoe's go-back-N
// after a timeout or third dupack) can skip data already delivered.
//
// This is a simplified RFC 2018 sender: it performs no pipe accounting
// (RFC 3517); it only prevents redundant retransmissions, which is the
// dominant cost under the paper's burst losses.
type scoreboard struct {
	blocks []packet.SACKBlock // disjoint, sorted by Start
}

// maxScoreboardBlocks bounds memory against a pathological peer.
const maxScoreboardBlocks = 64

// record merges newly advertised blocks.
func (sb *scoreboard) record(blocks []packet.SACKBlock) {
	for _, b := range blocks {
		if b.End <= b.Start {
			continue
		}
		sb.blocks = append(sb.blocks, b)
	}
	if len(sb.blocks) == 0 {
		return
	}
	sort.Slice(sb.blocks, func(i, j int) bool { return sb.blocks[i].Start < sb.blocks[j].Start })
	merged := sb.blocks[:1]
	for _, b := range sb.blocks[1:] {
		last := &merged[len(merged)-1]
		if b.Start <= last.End {
			if b.End > last.End {
				last.End = b.End
			}
			continue
		}
		merged = append(merged, b)
	}
	if len(merged) > maxScoreboardBlocks {
		merged = merged[:maxScoreboardBlocks]
	}
	sb.blocks = merged
}

// advance discards state at or below the new cumulative ack.
func (sb *scoreboard) advance(una int64) {
	out := sb.blocks[:0]
	for _, b := range sb.blocks {
		if b.End <= una {
			continue
		}
		if b.Start < una {
			b.Start = una
		}
		out = append(out, b)
	}
	sb.blocks = out
}

// covered reports whether [start, end) is wholly inside one sacked block.
func (sb *scoreboard) covered(start, end int64) bool {
	for _, b := range sb.blocks {
		if b.Start <= start && end <= b.End {
			return true
		}
		if b.Start > start {
			break
		}
	}
	return false
}

// len reports how many disjoint ranges are held.
func (sb *scoreboard) len() int { return len(sb.blocks) }

// reset clears the board.
func (sb *scoreboard) reset() { sb.blocks = sb.blocks[:0] }
