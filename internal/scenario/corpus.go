package scenario

// FuzzSeeds returns the seed corpus for scenario-parser fuzzing. It is
// shared between this package's FuzzScenario and wtcpd's request-decoder
// fuzzer (internal/serve FuzzRunRequest) so both layers are exercised on
// the same mix of valid, borderline, and malformed documents.
func FuzzSeeds() []string {
	return []string{
		`{}`,
		`{"preset":"wan","scheme":"ebsn","packet_size_bytes":1536,"mean_bad":"4s","transfer_kb":100,"seed":7}`,
		`{"preset":"lan","scheme":"snoop","mean_bad":"800ms","sack":true,"delayed_acks":true}`,
		`{"scheme":"localrecovery","variant":"newreno","window_kb":8,"cross_traffic_pct":30,"ecn":true}`,
		`{"scheme":"sourcequench","notify_every":2,"deterministic":true,"collect_trace":true}`,
		`{"mtu_bytes":-1,"wired_kbps":128,"wireless_kbps":1000,"horizon":"10m"}`,
		`{"checks":true,"stall":"2m","seed":3}`,
		`{"scheme":"ebsn","checks":true,"stall":"off","chaos":{
			"blackouts":[{"link":"wireless-down","at":"5s","length":"3s"}],
			"storms":[{"link":"wired-fwd","at":"10s","length":"2s","loss_prob":0.3}],
			"crashes":[{"at":"20s","downtime":"2s"}],
			"notify":{"loss_prob":0.5,"dup_prob":0.1,"delay_prob":0.2,"delay":"300ms"},
			"packets":[{"link":"wireless-up","corrupt_prob":0.01,"dup_prob":0.01,"reorder_prob":0.02,"reorder_delay":"50ms"}]}}`,
		`{"packet_size_bytes":10}`,
		`{"chaos":{"blackouts":[{"link":"nope","at":"1s","length":"1s"}]}}`,
		`{"chaos":null}`,
		`{"bogus":1}`,
		`{`,
	}
}
