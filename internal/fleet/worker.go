package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"wtcp/internal/experiment"
)

// Worker-side RPC retry policy: capped exponential backoff with
// deterministic jitter (derived from worker name + attempt, so two
// workers hammered by the same chaos plan don't retry in lockstep).
const (
	rpcBackoffBase = 100 * time.Millisecond
	rpcBackoffCap  = 5 * time.Second
	rpcMaxAttempts = 8
)

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// Name identifies the worker to the coordinator (lease attribution,
	// fleet snapshot).
	Name string
	// Coordinator is the coordinator's base URL ("http://127.0.0.1:7070").
	Coordinator string
	// Health, when set, is the worker's engine heartbeat; snapshots
	// piggyback on every RPC so the coordinator's fleet snapshot stays
	// current. RunWorker threads it into the engine via Options.Health.
	Health *experiment.Health
	// HTTPClient overrides the transport (the local runner injects the
	// chaos RoundTripper here); nil uses a plain client.
	HTTPClient *http.Client
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)
	// BeforeResult and AfterResult are test seams invoked around the
	// result post for a key (crash-injection hooks; see the SIGKILL
	// acceptance tests). Nil is ignored.
	BeforeResult func(key string)
	AfterResult  func(key string)
}

// RunWorker joins the fleet at cfg.Coordinator and processes work units
// until the coordinator reports the campaign done or ctx is canceled.
// Each unit runs through experiment.RunPointSpec — the exact sequential
// engine path, same seeds, same retry schedule — while a background
// goroutine renews the lease. If a renewal comes back rejected (the
// lease expired or the point settled first), the unit's context is
// canceled and the worker abandons it without posting: its work either
// already counted or will be redone deterministically by the new
// holder.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Name == "" {
		return fmt.Errorf("fleet: worker needs a name")
	}
	if cfg.Coordinator == "" {
		return fmt.Errorf("fleet: worker needs the coordinator URL")
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}

	campaign, err := fetchCampaign(ctx, cfg)
	if err != nil {
		return err
	}
	opt, err := campaign.Options()
	if err != nil {
		return err
	}
	opt.Health = cfg.Health
	if campaign.Supervise {
		opt.Supervise = experiment.NewSupervisor()
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var rep leaseReply
		if err := callJSON(ctx, cfg, "/v1/lease", leaseRequest{Worker: cfg.Name, Health: healthOf(cfg)}, &rep); err != nil {
			return fmt.Errorf("fleet: worker %s: lease: %w", cfg.Name, err)
		}
		switch {
		case rep.Done:
			cfg.Log("fleet: worker %s: campaign done", cfg.Name)
			return nil
		case rep.Unit == nil:
			wait := time.Duration(rep.WaitMs) * time.Millisecond
			if wait <= 0 {
				wait = idleWaitMs * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
		default:
			if err := runUnit(ctx, cfg, opt, rep.Unit); err != nil {
				return err
			}
		}
	}
}

// runUnit executes one leased point and posts its outcome.
func runUnit(ctx context.Context, cfg WorkerConfig, opt experiment.Options, u *workUnit) error {
	cfg.Log("fleet: worker %s: leased %s (lease %d, stolen=%v)", cfg.Name, u.Key, u.Lease, u.Stolen)
	unitCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Renew at a third of the TTL; two renewals can be lost (dropped by
	// chaos, say) before the lease lapses.
	ttl := time.Duration(u.TTLMs) * time.Millisecond
	renewDone := make(chan struct{})
	var abandoned atomic.Bool
	go func() {
		defer close(renewDone)
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-unitCtx.Done():
				return
			case <-t.C:
				var rep renewReply
				err := callJSON(unitCtx, cfg, "/v1/renew", renewRequest{Worker: cfg.Name, Lease: u.Lease, Health: healthOf(cfg)}, &rep)
				if err == nil && !rep.OK {
					// Lease gone: abandon the unit. cancel() below makes
					// the engine return ctx.Canceled and runUnit skips the
					// post.
					cfg.Log("fleet: worker %s: lease %d on %s rejected; abandoning", cfg.Name, u.Lease, u.Key)
					abandoned.Store(true)
					cancel()
					return
				}
				// Transport errors are tolerated: renewals are fire and
				// forget, the next tick retries, and the worst case is the
				// lease lapsing — which the protocol already survives.
			}
		}
	}()

	outcome, runErr := experiment.RunPointSpec(unitCtx, opt, u.Spec)
	cancel()
	<-renewDone

	if runErr != nil {
		if ctx.Err() != nil {
			// The worker itself is shutting down.
			return ctx.Err()
		}
		if abandoned.Load() {
			// Only the unit was canceled (abandoned lease): not a campaign
			// failure, just go lease something else.
			return nil
		}
		// Fail-fast failure (protocol bug, panic, unclassified): report it
		// so the coordinator stops the campaign, mirroring the sequential
		// engine's behaviour.
		req := resultRequest{
			Worker:  cfg.Name,
			Lease:   u.Lease,
			Outcome: experiment.PointOutcome{Key: u.Key},
			Failure: runErr.Error(),
			Health:  healthOf(cfg),
		}
		var rep resultReply
		if err := callJSON(ctx, cfg, "/v1/result", req, &rep); err != nil {
			return fmt.Errorf("fleet: worker %s: report failure of %s: %w (original failure: %v)", cfg.Name, u.Key, err, runErr)
		}
		return fmt.Errorf("fleet: worker %s: %w", cfg.Name, runErr)
	}

	if cfg.BeforeResult != nil {
		cfg.BeforeResult(u.Key)
	}
	req := resultRequest{Worker: cfg.Name, Lease: u.Lease, Outcome: outcome, Health: healthOf(cfg)}
	var rep resultReply
	if err := callJSON(ctx, cfg, "/v1/result", req, &rep); err != nil {
		return fmt.Errorf("fleet: worker %s: post result of %s: %w", cfg.Name, u.Key, err)
	}
	if rep.Duplicate {
		cfg.Log("fleet: worker %s: %s already settled (duplicate dropped)", cfg.Name, u.Key)
	} else {
		cfg.Log("fleet: worker %s: settled %s", cfg.Name, u.Key)
	}
	if cfg.AfterResult != nil {
		cfg.AfterResult(u.Key)
	}
	return nil
}

// healthOf snapshots the worker's heartbeat for piggybacking; nil when
// no collector is configured.
func healthOf(cfg WorkerConfig) *experiment.HealthSnapshot {
	if cfg.Health == nil {
		return nil
	}
	snap := cfg.Health.Snapshot()
	return &snap
}

// fetchCampaign retrieves the manifest from the coordinator, retrying
// through startup races (worker process up before the listener).
func fetchCampaign(ctx context.Context, cfg WorkerConfig) (Campaign, error) {
	var lastErr error
	for attempt := 0; attempt < rpcMaxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, rpcBackoff(cfg.Name, attempt)); err != nil {
				return Campaign{}, err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.Coordinator+"/v1/campaign", nil)
		if err != nil {
			return Campaign{}, err
		}
		resp, err := cfg.HTTPClient.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
			continue
		}
		var c Campaign
		if err := json.Unmarshal(body, &c); err != nil {
			return Campaign{}, fmt.Errorf("fleet: decode campaign: %w", err)
		}
		return c, nil
	}
	return Campaign{}, fmt.Errorf("fleet: worker %s: fetch campaign: %w", cfg.Name, lastErr)
}

// callJSON POSTs a JSON request and decodes the JSON reply, retrying
// transient transport and 5xx errors under capped exponential backoff
// with deterministic jitter. 4xx errors are permanent (the request is
// wrong, retrying cannot help).
func callJSON(ctx context.Context, cfg WorkerConfig, path string, reqBody, replyOut any) error {
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < rpcMaxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, rpcBackoff(cfg.Name+path, attempt)); err != nil {
				return err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.Coordinator+path, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := cfg.HTTPClient.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			return json.Unmarshal(body, replyOut)
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
			continue
		default:
			return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
		}
	}
	return lastErr
}

// rpcBackoff is the capped exponential backoff with deterministic
// jitter for attempt N (N >= 1) of an RPC identified by salt.
func rpcBackoff(salt string, attempt int) time.Duration {
	d := rpcBackoffBase << (attempt - 1)
	if d <= 0 || d > rpcBackoffCap {
		d = rpcBackoffCap
	}
	h := fnv.New64a()
	h.Write([]byte(salt))
	x := splitmix64(h.Sum64() ^ uint64(attempt)<<40)
	return d + time.Duration(x%uint64(d/2+1))
}

// splitmix64 is the standard 64-bit mix finalizer (same generator the
// engine's retry backoff uses).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sleepCtx sleeps for d or until ctx is canceled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
