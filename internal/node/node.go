// Package node provides the end-host plumbing of the paper's topology.
// The fixed host is just a TCP sender behind the wired link, so it needs
// no wrapper; the mobile host needs one, because it combines three roles:
// link-level acknowledgment of received units (when the base station runs
// local recovery), IP reassembly of fragments, and the TCP sink.
package node

import (
	"errors"
	"time"

	"wtcp/internal/ip"
	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/tcp"
)

// MobileStats counts mobile-host link-layer activity.
type MobileStats struct {
	// UnitsReceived counts link units (fragments or whole packets)
	// arriving over the wireless link.
	UnitsReceived uint64
	// LinkAcksSent counts link-level acknowledgments emitted.
	LinkAcksSent uint64
	// ReorderedUnits counts sequenced units held back to restore
	// in-order delivery; DuplicateUnits counts sequenced units received
	// again after delivery (their link ack was lost).
	ReorderedUnits uint64
	DuplicateUnits uint64
	// GapFlushes counts reorder-buffer flushes forced by the gap timer
	// (a unit was discarded by the base station's ARQ).
	GapFlushes uint64
}

// Mobile is the mobile-host agent. Wireless deliveries go to Receive; TCP
// acks and link acks leave through the uplink callback. Reassembled
// in-order traffic is handed to a delivery callback — usually a TCP
// sink's Receive, or a per-connection dispatcher in multi-flow setups.
type Mobile struct {
	sim      *sim.Simulator
	ids      *packet.IDGen
	uplink   func(*packet.Packet)
	deliver  func(*packet.Packet)
	reasm    *ip.Reassembler
	linkAcks bool

	// In-sequence delivery of ARQ-sequenced units: retransmission
	// backoffs reorder the air, and out-of-order TCP segments would
	// provoke duplicate ACKs (and spurious fast retransmits) that the
	// base station's recovery is supposed to prevent. Units carrying a
	// LinkSeq are buffered until contiguous; a gap that persists past
	// reorderTimeout (an ARQ discard) is flushed.
	nextSeq        int64
	reorderBuf     map[int64]*packet.Packet
	gapTimer       *sim.Timer
	reorderTimeout time.Duration

	// onSequenced observes every ARQ-sequenced unit handed up in link
	// order (nil when unused) — the conformance oracle's view of the
	// no-reordering guarantee.
	onSequenced func(*packet.Packet)

	stats MobileStats
}

// DefaultReorderTimeout flushes a reorder gap the base station's ARQ will
// never fill (its unit was discarded after RTmax attempts).
const DefaultReorderTimeout = 1500 * time.Millisecond

// MobileConfig parameterizes the agent.
type MobileConfig struct {
	// LinkAcks enables link-level acknowledgment of every received unit
	// (required by the base station's local-recovery schemes).
	LinkAcks bool
	// ReassemblyTimeout bounds how long a partial fragment group is held;
	// zero uses the ip package default.
	ReassemblyTimeout time.Duration
	// ReorderTimeout bounds how long a sequenced-unit gap is waited out;
	// zero uses DefaultReorderTimeout.
	ReorderTimeout time.Duration
}

// NewMobile wires a mobile host around an existing TCP sink. uplink emits
// packets onto the wireless uplink toward the base station.
func NewMobile(s *sim.Simulator, cfg MobileConfig, ids *packet.IDGen, sink *tcp.Sink, uplink func(*packet.Packet)) (*Mobile, error) {
	if sink == nil {
		return nil, errors.New("node: nil sink")
	}
	return NewMobileDeliver(s, cfg, ids, sink.Receive, uplink)
}

// NewMobileDeliver wires a mobile host that hands reassembled traffic to
// an arbitrary delivery callback (e.g. a per-connection dispatcher).
func NewMobileDeliver(s *sim.Simulator, cfg MobileConfig, ids *packet.IDGen, deliver func(*packet.Packet), uplink func(*packet.Packet)) (*Mobile, error) {
	if deliver == nil {
		return nil, errors.New("node: nil deliver")
	}
	if uplink == nil {
		return nil, errors.New("node: nil uplink")
	}
	if cfg.ReorderTimeout <= 0 {
		cfg.ReorderTimeout = DefaultReorderTimeout
	}
	m := &Mobile{
		sim:            s,
		ids:            ids,
		uplink:         uplink,
		deliver:        deliver,
		linkAcks:       cfg.LinkAcks,
		nextSeq:        1,
		reorderBuf:     make(map[int64]*packet.Packet),
		reorderTimeout: cfg.ReorderTimeout,
	}
	m.gapTimer = sim.NewTimer(s, m.flushGap)
	reasm, err := ip.NewReassembler(s, cfg.ReassemblyTimeout, func(p *packet.Packet) {
		m.deliver(p)
	})
	if err != nil {
		return nil, err
	}
	m.reasm = reasm
	return m, nil
}

// Stats returns a copy of the counters.
func (m *Mobile) Stats() MobileStats { return m.stats }

// SetSequencedHook installs an observer invoked for every ARQ-sequenced
// unit as it is handed up in link order (before reassembly). The observer
// must not mutate the packet or the host; nil clears it.
func (m *Mobile) SetSequencedHook(fn func(*packet.Packet)) { m.onSequenced = fn }

// Reassembler exposes reassembly statistics.
func (m *Mobile) Reassembler() *ip.Reassembler { return m.reasm }

// Receive accepts a packet delivered by the wireless downlink.
func (m *Mobile) Receive(p *packet.Packet) {
	switch p.Kind {
	case packet.Fragment, packet.Data:
		m.stats.UnitsReceived++
		if m.linkAcks {
			m.stats.LinkAcksSent++
			m.uplink(&packet.Packet{
				ID:     m.ids.Next(),
				Kind:   packet.LinkAck,
				AckNo:  int64(p.ID),
				SentAt: m.sim.Now(),
			})
		}
		if p.LinkSeq > 0 {
			m.receiveSequenced(p)
		} else {
			m.reasm.Receive(p)
		}
	default:
		// Control packets are not addressed to the mobile host.
	}
}

// receiveSequenced buffers ARQ-sequenced units until contiguous and
// delivers them upward in link order.
func (m *Mobile) receiveSequenced(p *packet.Packet) {
	if p.LinkSeq < m.nextSeq {
		// Already delivered: the retransmission raced a lost link ack.
		m.stats.DuplicateUnits++
		return
	}
	if _, held := m.reorderBuf[p.LinkSeq]; held {
		m.stats.DuplicateUnits++
		return
	}
	m.reorderBuf[p.LinkSeq] = p
	if p.LinkSeq > m.nextSeq {
		m.stats.ReorderedUnits++
	}
	m.drainReorder()
}

// drainReorder delivers the contiguous run at nextSeq and manages the gap
// timer for whatever remains.
func (m *Mobile) drainReorder() {
	for {
		p, ok := m.reorderBuf[m.nextSeq]
		if !ok {
			break
		}
		delete(m.reorderBuf, m.nextSeq)
		m.nextSeq++
		if m.onSequenced != nil {
			m.onSequenced(p)
		}
		m.reasm.Receive(p)
	}
	if len(m.reorderBuf) == 0 {
		m.gapTimer.Stop()
	} else if !m.gapTimer.Pending() {
		m.gapTimer.Set(m.reorderTimeout)
	}
}

// flushGap gives up on the missing unit (the base station discarded it)
// and resumes delivery at the next buffered sequence number.
func (m *Mobile) flushGap() {
	if len(m.reorderBuf) == 0 {
		return
	}
	m.stats.GapFlushes++
	lowest := int64(-1)
	for seq := range m.reorderBuf {
		if lowest < 0 || seq < lowest {
			lowest = seq
		}
	}
	m.nextSeq = lowest
	m.drainReorder()
}
