// Package repro turns a simulation failure into a self-contained,
// replayable artifact. When an invariant check fires, the no-progress
// watchdog aborts a run, or a run panics, the experiment engine captures
// a Bundle: the complete scenario (including the chaos plan and the
// exact seed), a classification of the failure, and its diagnostic
// detail. Because every run is a deterministic function of its Config,
// the bundle alone reproduces the failure bit-for-bit on any machine —
// no logs, corefiles, or luck required.
//
// The package also shrinks bundles: Shrink greedily simplifies the
// scenario (dropping chaos faults, halving the transfer and horizon)
// while re-replaying after each candidate edit, keeping only edits that
// preserve the original failure. The result is a minimal failing case
// suitable for a bug report or a regression test.
package repro

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wtcp/internal/chaos"
	"wtcp/internal/core"
	"wtcp/internal/sim"
)

// Version is the current bundle schema version.
const Version = 1

// Failure kinds a bundle can carry.
const (
	// KindInvariant: a runtime invariant check failed (protocol bug).
	KindInvariant = "invariant"
	// KindWatchdog: the no-progress watchdog aborted the run.
	KindWatchdog = "watchdog"
	// KindPanic: the run panicked and was recovered into an error.
	KindPanic = "panic"
	// KindBudget: the run exhausted a resource budget (event, virtual-
	// time, wall-clock, or heap ceiling — see sim.BudgetError).
	KindBudget = "budget"
	// KindError: any other run error (bad config, channel setup, ...).
	KindError = "error"
	// KindNone classifies a replay that finished without failing — it
	// never appears in a saved bundle.
	KindNone = "none"
)

// Bundle is a self-contained failure reproduction: replaying Config
// deterministically re-derives the failure described by Kind/Failure.
type Bundle struct {
	Version int `json:"version"`
	// Origin records where the failure was observed (sweep point and
	// replication), for humans reading the file.
	Origin string `json:"origin,omitempty"`
	// Kind classifies the failure (KindInvariant, KindWatchdog,
	// KindPanic, KindError).
	Kind string `json:"kind"`
	// Check names the violated invariant when Kind is KindInvariant.
	Check string `json:"check,omitempty"`
	// Failure is the one-line failure summary.
	Failure string `json:"failure"`
	// Detail carries the full diagnostic: watchdog snapshot, panic
	// stack, or complete error text.
	Detail string `json:"detail,omitempty"`
	// BudgetKind, BudgetLimit, and BudgetValue record which resource
	// ceiling a KindBudget run exhausted, the configured limit, and the
	// consumption at abort (units per sim.BudgetError).
	BudgetKind  string `json:"budget_kind,omitempty"`
	BudgetLimit int64  `json:"budget_limit,omitempty"`
	BudgetValue int64  `json:"budget_value,omitempty"`
	// Config is the complete scenario, including Seed and the chaos
	// plan. Replaying it reproduces the failure.
	Config core.Config `json:"config"`
}

// Capture classifies a finished run and, if it failed, returns the
// bundle reproducing it. It returns nil for a run that did not fail —
// including a run halted by context cancellation, which is the caller's
// deadline rather than a defect worth archiving.
func Capture(cfg core.Config, res *core.Result, runErr error) *Bundle {
	b := &Bundle{Version: Version, Config: cfg}
	var checkErr *sim.CheckError
	var panicErr *core.PanicError
	var cancelErr *sim.CancelError
	var budgetErr *sim.BudgetError
	switch {
	case errors.As(runErr, &cancelErr),
		errors.Is(runErr, context.Canceled),
		errors.Is(runErr, context.DeadlineExceeded):
		return nil
	case errors.As(runErr, &checkErr):
		b.Kind = KindInvariant
		b.Check = checkErr.Name
		b.Failure = firstLine(checkErr.Error())
		b.Detail = checkErr.Error()
	case errors.As(runErr, &panicErr):
		b.Kind = KindPanic
		b.Failure = firstLine(panicErr.Value)
		b.Detail = panicErr.Value + "\n" + panicErr.Stack
	case errors.As(runErr, &budgetErr):
		b.Kind = KindBudget
		b.BudgetKind = budgetErr.Kind
		b.BudgetLimit = budgetErr.Limit
		b.BudgetValue = budgetErr.Value
		b.Failure = firstLine(budgetErr.Error())
		b.Detail = runErr.Error()
	case runErr != nil:
		b.Kind = KindError
		b.Failure = firstLine(runErr.Error())
		b.Detail = runErr.Error()
	case res != nil && res.Aborted:
		b.Kind = KindWatchdog
		b.Failure = firstLine(res.AbortReason)
		b.Detail = res.AbortReason
	default:
		return nil
	}
	return b
}

// firstLine trims a multi-line diagnostic to its summary line.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Save writes the bundle as indented JSON via temp-file-plus-rename, so
// a crash mid-write never leaves a truncated bundle at path.
func (b *Bundle) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("repro: encode bundle: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("repro: save bundle: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("repro: save bundle: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("repro: save bundle: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("repro: save bundle: %w", err)
	}
	return nil
}

// Load reads and validates a bundle file.
func Load(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("repro: load bundle: %w", err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("repro: parse bundle %s: %w", path, err)
	}
	if b.Version != Version {
		return nil, fmt.Errorf("repro: bundle %s has schema version %d, this build understands %d", path, b.Version, Version)
	}
	switch b.Kind {
	case KindInvariant, KindWatchdog, KindPanic, KindBudget, KindError:
	default:
		return nil, fmt.Errorf("repro: bundle %s has unknown failure kind %q", path, b.Kind)
	}
	return &b, nil
}

// Outcome is what one replay of a bundle's scenario produced.
type Outcome struct {
	// Kind classifies the replay like a bundle's Kind; KindNone means
	// the run finished without failing.
	Kind string
	// Check is the violated invariant's name for KindInvariant.
	Check string
	// BudgetKind is the exhausted ceiling for KindBudget.
	BudgetKind string
	// Failure is the one-line summary (empty for KindNone).
	Failure string
}

// Matches reports whether the outcome reproduces the bundle's failure:
// the same kind, for invariant violations the same named check, and for
// budget exhaustion the same ceiling. The failure text itself is not
// compared — virtual times and counters in the summary legitimately
// differ across code versions while the defect is the same.
func (o Outcome) Matches(b *Bundle) bool {
	if o.Kind != b.Kind {
		return false
	}
	switch b.Kind {
	case KindInvariant:
		return o.Check == b.Check
	case KindBudget:
		return o.BudgetKind == b.BudgetKind
	default:
		return true
	}
}

// Replay runs the bundle's scenario once and classifies what happened.
// It errors only when ctx ends; a reproduced (or vanished) failure is an
// Outcome, not an error.
func Replay(ctx context.Context, b *Bundle) (Outcome, error) {
	res, err := core.RunContext(ctx, b.Config)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return Outcome{}, err
	}
	captured := Capture(b.Config, res, err)
	if captured == nil {
		return Outcome{Kind: KindNone}, nil
	}
	return Outcome{Kind: captured.Kind, Check: captured.Check,
		BudgetKind: captured.BudgetKind, Failure: captured.Failure}, nil
}

// ShrinkStats summarizes a shrink session.
type ShrinkStats struct {
	// Replays counts simulations run while shrinking.
	Replays int
	// Accepted counts candidate simplifications that kept the failure.
	Accepted int
}

// DefaultShrinkReplays bounds a shrink session's simulation budget.
const DefaultShrinkReplays = 120

// Shrink greedily minimizes the bundle's scenario while preserving its
// failure: it tries dropping each chaos fault, zeroing the notification
// faults, halving the transfer size, and halving the horizon, replaying
// after every candidate edit and keeping only edits whose outcome still
// Matches the original failure. Passes repeat until a whole pass accepts
// nothing or maxReplays simulations have run (non-positive uses
// DefaultShrinkReplays). The returned bundle's Failure/Detail describe
// the failure as reproduced by the minimized scenario.
func Shrink(ctx context.Context, b *Bundle, maxReplays int) (*Bundle, ShrinkStats, error) {
	if maxReplays <= 0 {
		maxReplays = DefaultShrinkReplays
	}
	var stats ShrinkStats
	cur := *b
	// try replays cand; on a match it becomes the current scenario.
	try := func(cand core.Config) (bool, error) {
		if stats.Replays >= maxReplays {
			return false, nil
		}
		stats.Replays++
		o, err := Replay(ctx, &Bundle{Version: Version, Kind: b.Kind, Check: b.Check, Config: cand})
		if err != nil {
			return false, err
		}
		if !o.Matches(b) {
			return false, nil
		}
		stats.Accepted++
		cur.Config = cand
		cur.Failure = o.Failure
		return true, nil
	}

	// dropEach walks one fault list, retrying the same index after an
	// accepted drop (the list just shrank under it).
	dropEach := func(length func() int, drop func(*chaos.Config, int)) (bool, error) {
		improved := false
		for i := 0; i < length(); {
			ok, err := try(dropFault(cur.Config, func(c *chaos.Config) { drop(c, i) }))
			if err != nil {
				return improved, err
			}
			if ok {
				improved = true
				continue
			}
			i++
		}
		return improved, nil
	}

	for {
		improved := false

		// Drop chaos faults one at a time — the largest semantic
		// simplifications first.
		if cur.Config.Chaos.Enabled() {
			for _, faults := range []struct {
				length func() int
				drop   func(*chaos.Config, int)
			}{
				{func() int { return len(cur.Config.Chaos.Blackouts) },
					func(c *chaos.Config, i int) { c.Blackouts = deleteAt(c.Blackouts, i) }},
				{func() int { return len(cur.Config.Chaos.Storms) },
					func(c *chaos.Config, i int) { c.Storms = deleteAt(c.Storms, i) }},
				{func() int { return len(cur.Config.Chaos.Crashes) },
					func(c *chaos.Config, i int) { c.Crashes = deleteAt(c.Crashes, i) }},
				{func() int { return len(cur.Config.Chaos.Packets) },
					func(c *chaos.Config, i int) { c.Packets = deleteAt(c.Packets, i) }},
				{func() int { return len(cur.Config.Chaos.EventStorms) },
					func(c *chaos.Config, i int) { c.EventStorms = deleteAt(c.EventStorms, i) }},
			} {
				ok, err := dropEach(faults.length, faults.drop)
				if err != nil {
					return nil, stats, err
				}
				improved = improved || ok
			}
			if cur.Config.Chaos != nil && cur.Config.Chaos.Notify != (chaos.NotifyFaults{}) {
				ok, err := try(dropFault(cur.Config, func(c *chaos.Config) { c.Notify = chaos.NotifyFaults{} }))
				if err != nil {
					return nil, stats, err
				}
				improved = improved || ok
			}
		}

		// Halve the transfer (floor: one segment).
		if half := cur.Config.TransferSize / 2; half >= cur.Config.MSS() && half < cur.Config.TransferSize {
			cand := cur.Config
			cand.TransferSize = half
			ok, err := try(cand)
			if err != nil {
				return nil, stats, err
			}
			improved = improved || ok
		}

		// Halve the horizon (zero means the default; floor: one second).
		horizon := cur.Config.Horizon
		if horizon <= 0 {
			horizon = core.DefaultHorizon
		}
		if half := horizon / 2; half >= time.Second {
			cand := cur.Config
			cand.Horizon = half
			ok, err := try(cand)
			if err != nil {
				return nil, stats, err
			}
			improved = improved || ok
		}

		if !improved || stats.Replays >= maxReplays {
			break
		}
	}
	if cur.Config.Chaos != nil && !cur.Config.Chaos.Enabled() {
		cur.Config.Chaos = nil
	}
	return &cur, stats, nil
}

// dropFault deep-copies the config's chaos plan and applies edit to the
// copy, so candidate edits never alias the current scenario's slices.
func dropFault(cfg core.Config, edit func(*chaos.Config)) core.Config {
	ch := chaos.Config{}
	if cfg.Chaos != nil {
		ch.Blackouts = append([]chaos.Blackout(nil), cfg.Chaos.Blackouts...)
		ch.Storms = append([]chaos.Storm(nil), cfg.Chaos.Storms...)
		ch.Crashes = append([]chaos.Crash(nil), cfg.Chaos.Crashes...)
		ch.Packets = append([]chaos.PacketFaults(nil), cfg.Chaos.Packets...)
		ch.EventStorms = append([]chaos.EventStorm(nil), cfg.Chaos.EventStorms...)
		ch.Notify = cfg.Chaos.Notify
	}
	edit(&ch)
	cfg.Chaos = &ch
	return cfg
}

// deleteAt returns s without element i (copy, not in place).
func deleteAt[T any](s []T, i int) []T {
	out := make([]T, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}
