package sim

import "time"

// Timer is a restartable one-shot timer bound to a Simulator. It mirrors
// the retransmission-timer idiom in TCP implementations: Set replaces any
// previous deadline, Stop cancels, and the callback fires at most once per
// Set. The zero value is not usable; create timers with NewTimer.
type Timer struct {
	sim *Simulator
	ev  Event
	fn  func()
	// fire is the pre-bound expiry wrapper, allocated once at NewTimer so
	// re-arming the timer — the exact operation EBSN multiplies, one reset
	// per failed wireless transmission attempt — schedules no new closure.
	fire func()

	// sets counts how many times the timer has been (re)armed; exposed for
	// instrumentation (e.g. counting EBSN-induced timer resets).
	sets uint64
}

// NewTimer returns a timer that invokes fn on expiry. fn runs in event
// context (virtual time).
func NewTimer(s *Simulator, fn func()) *Timer {
	t := &Timer{sim: s, fn: fn}
	t.fire = func() {
		t.ev = Event{}
		t.fn()
	}
	return t
}

// Set arms the timer to fire after d, replacing any pending deadline.
// Re-arming is allocation-free: the previous deadline is tombstoned in
// O(1) and the new one reuses a recycled event struct and the pre-bound
// expiry callback.
func (t *Timer) Set(d time.Duration) {
	t.sim.Cancel(t.ev)
	t.sets++
	t.ev = t.sim.Schedule(d, t.fire)
}

// Stop cancels any pending deadline. Stopping an idle timer is a no-op.
func (t *Timer) Stop() {
	t.sim.Cancel(t.ev)
	t.ev = Event{}
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.ev.Pending() }

// Deadline reports the virtual time the timer will fire, or a negative
// value if the timer is idle.
func (t *Timer) Deadline() time.Duration {
	if !t.ev.Pending() {
		return -1
	}
	return t.ev.At()
}

// Sets reports how many times the timer has been armed since creation.
func (t *Timer) Sets() uint64 { return t.sets }
