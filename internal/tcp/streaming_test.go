package tcp

import (
	"testing"
	"time"

	"wtcp/internal/packet"
	"wtcp/internal/units"
)

func TestStreamingSenderWaitsForData(t *testing.T) {
	cfg := wanConfig()
	cfg.Streaming = true
	cfg.Total = 5 * 536
	l := newLoop(t, cfg, 20*time.Millisecond)
	l.snd.Start()
	if err := l.s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := l.snd.Stats().SegmentsSent; got != 0 {
		t.Fatalf("streaming sender sent %d segments with nothing available", got)
	}
	// Grant two segments.
	l.snd.MakeAvailable(2 * 536)
	if err := l.s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := l.sink.Delivered(); got != 2*536 {
		t.Fatalf("delivered %d, want %d", got, 2*536)
	}
	// Grant the rest; the transfer completes.
	l.snd.MakeAvailable(3 * 536)
	if err := l.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !l.snd.Done() {
		t.Fatal("streaming transfer did not complete")
	}
	if l.sink.Delivered() != cfg.Total {
		t.Errorf("delivered %d, want %d", l.sink.Delivered(), cfg.Total)
	}
}

func TestStreamingPartialWriteFlushedImmediately(t *testing.T) {
	// PSH semantics: an application write smaller than the MSS goes out
	// right away (an interactive write or page tail must not wait for
	// bytes that may never come).
	cfg := wanConfig()
	cfg.Streaming = true
	cfg.Total = 2 * 536
	l := newLoop(t, cfg, 10*time.Millisecond)
	l.snd.Start()
	l.snd.MakeAvailable(300) // less than one MSS
	if err := l.s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := l.sink.Delivered(); got != 300 {
		t.Fatalf("delivered %d, want the 300-byte write flushed", got)
	}
	l.snd.MakeAvailable(236)
	if err := l.s.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := l.sink.Delivered(); got != 536 {
		t.Fatalf("delivered %d, want 536", got)
	}
}

func TestSinkPartialOverlapSuffixAccepted(t *testing.T) {
	// A retransmission whose boundaries merged two earlier writes must
	// not lose the new suffix.
	h := newSinkHarness(t, 4*units.KB)
	h.sink.Receive(data(0, 200)) // rcvNxt = 200
	h.sink.Receive(data(0, 500)) // overlaps [0,200), new suffix [200,500)
	if got := h.sink.Delivered(); got != 500 {
		t.Fatalf("delivered %d, want 500", got)
	}
	if got := h.sink.RcvNxt(); got != 500 {
		t.Errorf("RcvNxt = %d", got)
	}
	// The ack for the merged arrival is cumulative.
	if last := h.acks[len(h.acks)-1]; last.AckNo != 500 {
		t.Errorf("ack = %d, want 500", last.AckNo)
	}
}

func TestStreamingFinalShortSegment(t *testing.T) {
	cfg := wanConfig()
	cfg.Streaming = true
	cfg.Total = 536 + 100
	l := newLoop(t, cfg, 10*time.Millisecond)
	l.snd.Start()
	l.snd.MakeAvailable(cfg.Total)
	if err := l.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !l.snd.Done() {
		t.Fatal("did not complete")
	}
	if l.sink.Delivered() != cfg.Total {
		t.Errorf("delivered %d, want %d", l.sink.Delivered(), cfg.Total)
	}
}

func TestMakeAvailableClampsAndIgnoresJunk(t *testing.T) {
	cfg := wanConfig()
	cfg.Streaming = true
	l := newLoop(t, cfg, 10*time.Millisecond)
	l.snd.MakeAvailable(-5)
	if l.snd.Available() != 0 {
		t.Error("negative grant changed availability")
	}
	l.snd.MakeAvailable(cfg.Total * 10)
	if l.snd.Available() != cfg.Total {
		t.Errorf("Available = %d, want clamp to Total %d", l.snd.Available(), cfg.Total)
	}
}

func TestNonStreamingFullyAvailable(t *testing.T) {
	l := newLoop(t, wanConfig(), 10*time.Millisecond)
	if l.snd.Available() != wanConfig().Total {
		t.Error("non-streaming sender should start fully available")
	}
}

func TestNewRenoRepairsMultiLossWindowWithoutTimeout(t *testing.T) {
	cfg := wanConfig()
	cfg.Total = 60 * units.KB
	cfg.Variant = NewReno
	l := newLoop(t, cfg, 50*time.Millisecond)
	// Drop two distinct segments from the same window once each.
	dropped := map[int64]bool{}
	l.dropData = func(p *packet.Packet) bool {
		if (p.Seq == 6*536 || p.Seq == 7*536) && !p.Retransmit && !dropped[p.Seq] {
			dropped[p.Seq] = true
			return true
		}
		return false
	}
	l.snd.Start()
	if err := l.s.Run(20 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !l.snd.Done() {
		t.Fatal("NewReno transfer did not complete")
	}
	st := l.snd.Stats()
	if st.Timeouts != 0 {
		t.Errorf("Timeouts = %d; NewReno partial ACKs should repair both losses", st.Timeouts)
	}
	if st.FastRetransmits != 1 {
		t.Errorf("FastRetransmits = %d, want 1 (second loss repaired by partial ACK)", st.FastRetransmits)
	}
	if st.RetransSegments != 2 {
		t.Errorf("RetransSegments = %d, want exactly 2", st.RetransSegments)
	}
}

func TestNewRenoString(t *testing.T) {
	if NewReno.String() != "newreno" {
		t.Error("NewReno name")
	}
}

func TestDelayedAcksCoalesce(t *testing.T) {
	h := newSinkHarness(t, 64*units.KB)
	h.sink.EnableDelayedAcks(200 * time.Millisecond)
	// Two back-to-back in-order segments: one ACK, not two.
	h.sink.Receive(data(0, 536))
	h.sink.Receive(data(536, 536))
	if len(h.acks) != 1 {
		t.Fatalf("acks = %d, want 1 (every second segment)", len(h.acks))
	}
	if h.acks[0].AckNo != 1072 {
		t.Errorf("coalesced ack = %d, want 1072", h.acks[0].AckNo)
	}
}

func TestDelayedAckTimerFiresForLoneSegment(t *testing.T) {
	h := newSinkHarness(t, 64*units.KB)
	h.sink.EnableDelayedAcks(200 * time.Millisecond)
	h.sink.Receive(data(0, 536))
	if len(h.acks) != 0 {
		t.Fatal("lone segment acked immediately under delayed acks")
	}
	if err := h.s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.acks) != 1 || h.acks[0].AckNo != 536 {
		t.Fatalf("delayed ack wrong: %v", h.acks)
	}
}

func TestDelayedAcksStillDupackImmediately(t *testing.T) {
	h := newSinkHarness(t, 64*units.KB)
	h.sink.EnableDelayedAcks(200 * time.Millisecond)
	h.sink.Receive(data(0, 536))
	// An out-of-order arrival must produce an immediate (dup)ack so fast
	// retransmit is not delayed; the pending delayed ack folds into it.
	h.sink.Receive(data(2*536, 536))
	if len(h.acks) != 1 {
		t.Fatalf("acks = %d, want immediate dupack", len(h.acks))
	}
	if h.acks[0].AckNo != 536 {
		t.Errorf("dupack = %d, want 536", h.acks[0].AckNo)
	}
	// No stray timer ack afterwards.
	if err := h.s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.acks) != 1 {
		t.Errorf("stray delayed ack fired: %v", h.acks)
	}
}

func TestDelayedAcksTransferStillCompletes(t *testing.T) {
	cfg := wanConfig()
	l := newLoop(t, cfg, 30*time.Millisecond)
	l.sink.EnableDelayedAcks(0) // default delay
	l.snd.Start()
	if err := l.s.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !l.snd.Done() {
		t.Fatal("transfer with delayed acks did not complete")
	}
	st := l.sink.Stats()
	// Delayed acks should send materially fewer ACKs than segments.
	if st.AcksSent >= st.SegmentsReceived {
		t.Errorf("AcksSent %d not below SegmentsReceived %d", st.AcksSent, st.SegmentsReceived)
	}
}

func TestIdleConnectionTimerStops(t *testing.T) {
	// Interactive pattern: a write is acked, the connection goes idle.
	// The retransmission timer must stop — no spurious timeouts, no
	// window collapse while waiting for the next write.
	cfg := wanConfig()
	cfg.Streaming = true
	cfg.Total = 10 * 536
	cfg.InitialRTO = 500 * time.Millisecond
	l := newLoop(t, cfg, 20*time.Millisecond)
	l.snd.Start()
	l.snd.MakeAvailable(536)
	if err := l.s.Run(10 * time.Second); err != nil { // long idle period
		t.Fatal(err)
	}
	if got := l.snd.Stats().Timeouts; got != 0 {
		t.Fatalf("idle connection recorded %d timeouts", got)
	}
	if l.s.Pending() != 0 {
		t.Errorf("%d events pending during idle (timer not stopped)", l.s.Pending())
	}
	// The next write still flows normally.
	l.snd.MakeAvailable(536)
	if err := l.s.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := l.sink.Delivered(); got != 2*536 {
		t.Errorf("delivered %d after resume", got)
	}
}
