package core

import (
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/units"
)

// congested returns a WAN config with heavy wired cross traffic.
func congested(scheme bs.Scheme, ecn bool, seed int64) Config {
	cfg := WAN(scheme, 576, 2*time.Second)
	cfg.TransferSize = 60 * units.KB
	cfg.CrossTraffic = CrossTraffic{Rate: units.BitRate(0.8 * float64(cfg.WiredRate))}
	cfg.ECN = ecn
	cfg.Seed = seed
	return cfg
}

func TestCrossTrafficSlowsTheTransfer(t *testing.T) {
	clean := WAN(bs.EBSN, 576, 2*time.Second)
	clean.TransferSize = 60 * units.KB
	rc, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	loaded := congested(bs.EBSN, false, 1)
	rl, err := Run(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Completed || !rl.Completed {
		t.Fatal("runs did not complete")
	}
	if rl.Summary.ThroughputKbps >= rc.Summary.ThroughputKbps {
		t.Errorf("80%% cross traffic did not slow the transfer: %.2f vs %.2f kbps",
			rl.Summary.ThroughputKbps, rc.Summary.ThroughputKbps)
	}
}

func TestECNMarksAndSenderResponds(t *testing.T) {
	// Under heavy wired load with ECN on, the queue must mark packets
	// and the source must react at least once.
	var responses uint64
	for seed := int64(1); seed <= 3; seed++ {
		r, err := Run(congested(bs.EBSN, true, seed))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Completed {
			t.Fatal("did not complete")
		}
		responses += r.Sender.ECNResponses
	}
	if responses == 0 {
		t.Error("no ECN responses under 80% wired load")
	}
}

func TestECNOffMeansNoResponses(t *testing.T) {
	r, err := Run(congested(bs.EBSN, false, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Sender.ECNResponses != 0 {
		t.Errorf("ECNResponses = %d with ECN disabled", r.Sender.ECNResponses)
	}
}

func TestECNAndEBSNCoexist(t *testing.T) {
	// The paper's §6 question: EBSN (wireless-loss timer protection) and
	// ECN (wired congestion signal) address disjoint events, so enabling
	// both keeps EBSN's core property — wireless fades cause no
	// timeouts beyond what congestion itself causes — while the source
	// still yields to wired congestion.
	var ebsnOnly, both uint64
	for seed := int64(1); seed <= 3; seed++ {
		a, err := Run(congested(bs.EBSN, false, seed))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(congested(bs.EBSN, true, seed))
		if err != nil {
			t.Fatal(err)
		}
		ebsnOnly += a.Summary.Timeouts
		both += b.Summary.Timeouts
	}
	// ECN must not make timeouts worse (it prevents some queue drops by
	// signalling early).
	if both > ebsnOnly+1 {
		t.Errorf("ECN+EBSN timeouts %d well above EBSN-only %d", both, ebsnOnly)
	}
}
