package experiment

import (
	"strings"
	"testing"
	"time"

	"wtcp/internal/handoff"
	"wtcp/internal/units"
)

func TestHandoffStudyShape(t *testing.T) {
	points, err := HandoffStudy(HandoffOptions{
		Transfer: 512 * units.KB,
		Dwells:   []time.Duration{500 * time.Millisecond, 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 2 schemes x 2 dwells", len(points))
	}
	find := func(s handoff.Scheme, dwell time.Duration) HandoffPoint {
		for _, p := range points {
			if p.Scheme == s && p.Dwell == dwell {
				return p
			}
		}
		t.Fatal("point missing")
		return HandoffPoint{}
	}
	for _, dwell := range []time.Duration{500 * time.Millisecond, 2 * time.Second} {
		plain := find(handoff.Plain, dwell)
		fr := find(handoff.FastRetransmit, dwell)
		if fr.ThroughputKbps.Mean() <= plain.ThroughputKbps.Mean() {
			t.Errorf("dwell %v: fast retransmit %.0f not above plain %.0f",
				dwell, fr.ThroughputKbps.Mean(), plain.ThroughputKbps.Mean())
		}
		if fr.TimeoutsAvg >= plain.TimeoutsAvg {
			t.Errorf("dwell %v: fast retransmit timeouts %.1f not below plain %.1f",
				dwell, fr.TimeoutsAvg, plain.TimeoutsAvg)
		}
	}
	// More frequent handoffs hurt plain TCP more.
	p5, p2 := find(handoff.Plain, 500*time.Millisecond), find(handoff.Plain, 2*time.Second)
	if p5.ThroughputKbps.Mean() >= p2.ThroughputKbps.Mean() {
		t.Error("frequent handoffs did not reduce plain TCP throughput")
	}
}

func TestHandoffRenderers(t *testing.T) {
	points, err := HandoffStudy(HandoffOptions{
		Transfer: 256 * units.KB,
		Dwells:   []time.Duration{time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	table := RenderHandoffTable("handoff", points)
	if !strings.Contains(table, "plain") || !strings.Contains(table, "fastretransmit") {
		t.Errorf("table malformed:\n%s", table)
	}
	csv := HandoffCSV(points)
	if !strings.Contains(csv, "plain,1.0,") {
		t.Errorf("csv malformed:\n%s", csv)
	}
}
