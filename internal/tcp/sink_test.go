package tcp

import (
	"testing"

	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

type sinkHarness struct {
	s    *sim.Simulator
	sink *Sink
	acks []*packet.Packet
}

func newSinkHarness(t *testing.T, window units.ByteSize) *sinkHarness {
	t.Helper()
	h := &sinkHarness{s: sim.New()}
	sink, err := NewSink(h.s, window, &packet.IDGen{}, func(p *packet.Packet) {
		h.acks = append(h.acks, p)
	})
	if err != nil {
		t.Fatalf("NewSink: %v", err)
	}
	h.sink = sink
	return h
}

func data(seq int64, payload units.ByteSize) *packet.Packet {
	return &packet.Packet{Kind: packet.Data, Seq: seq, Payload: payload}
}

func TestSinkInOrderDelivery(t *testing.T) {
	h := newSinkHarness(t, 4*units.KB)
	h.sink.Receive(data(0, 536))
	h.sink.Receive(data(536, 536))
	if got := h.sink.Delivered(); got != 1072 {
		t.Errorf("Delivered = %d, want 1072", got)
	}
	if got := h.sink.RcvNxt(); got != 1072 {
		t.Errorf("RcvNxt = %d, want 1072", got)
	}
	if len(h.acks) != 2 {
		t.Fatalf("acks = %d, want 2", len(h.acks))
	}
	if h.acks[0].AckNo != 536 || h.acks[1].AckNo != 1072 {
		t.Errorf("ack numbers = %d, %d", h.acks[0].AckNo, h.acks[1].AckNo)
	}
	st := h.sink.Stats()
	if st.DupAcksSent != 0 || st.DuplicateSegments != 0 {
		t.Errorf("unexpected dup counters: %+v", st)
	}
}

func TestSinkOutOfOrderBuffersAndDupAcks(t *testing.T) {
	h := newSinkHarness(t, 4*units.KB)
	h.sink.Receive(data(0, 536))
	// Segment 1 lost; segments 2 and 3 arrive out of order.
	h.sink.Receive(data(1072, 536))
	h.sink.Receive(data(1608, 536))
	if got := h.sink.Delivered(); got != 536 {
		t.Errorf("Delivered = %d, want 536", got)
	}
	// Both OOO arrivals generate duplicate ACKs for 536.
	if len(h.acks) != 3 {
		t.Fatalf("acks = %d", len(h.acks))
	}
	if h.acks[1].AckNo != 536 || h.acks[2].AckNo != 536 {
		t.Errorf("dupack numbers = %d, %d, want 536", h.acks[1].AckNo, h.acks[2].AckNo)
	}
	if got := h.sink.Stats().DupAcksSent; got != 2 {
		t.Errorf("DupAcksSent = %d, want 2", got)
	}
	// The missing segment arrives: everything drains at once.
	h.sink.Receive(data(536, 536))
	if got := h.sink.Delivered(); got != 4*536 {
		t.Errorf("Delivered = %d, want %d", got, 4*536)
	}
	if last := h.acks[len(h.acks)-1]; last.AckNo != 4*536 {
		t.Errorf("cumulative ack = %d, want %d", last.AckNo, 4*536)
	}
}

func TestSinkDuplicateSegmentCounted(t *testing.T) {
	h := newSinkHarness(t, 4*units.KB)
	h.sink.Receive(data(0, 536))
	h.sink.Receive(data(0, 536)) // full duplicate
	if got := h.sink.Delivered(); got != 536 {
		t.Errorf("Delivered = %d, want 536 (duplicate must not double-count)", got)
	}
	if got := h.sink.Stats().DuplicateSegments; got != 1 {
		t.Errorf("DuplicateSegments = %d, want 1", got)
	}
	// Duplicate still generates a (duplicate) ACK so the sender can make
	// progress.
	if len(h.acks) != 2 {
		t.Errorf("acks = %d, want 2", len(h.acks))
	}
}

func TestSinkBufferedDuplicateCounted(t *testing.T) {
	h := newSinkHarness(t, 4*units.KB)
	h.sink.Receive(data(536, 536)) // OOO, buffered
	h.sink.Receive(data(536, 536)) // same again
	if got := h.sink.Stats().BufferedSegments; got != 1 {
		t.Errorf("BufferedSegments = %d, want 1", got)
	}
	if got := h.sink.Stats().DuplicateSegments; got != 1 {
		t.Errorf("DuplicateSegments = %d, want 1", got)
	}
}

func TestSinkDiscardsBeyondWindow(t *testing.T) {
	h := newSinkHarness(t, 2*units.KB)
	// Segment far beyond the advertised window must not be buffered.
	h.sink.Receive(data(10*units.KB.Bits(), 536))
	if got := h.sink.Stats().BufferedSegments; got != 0 {
		t.Errorf("BufferedSegments = %d, want 0", got)
	}
	// Still acked (dupack for 0).
	if len(h.acks) != 1 || h.acks[0].AckNo != 0 {
		t.Error("window-exceeding segment not dupacked")
	}
}

func TestSinkIgnoresNonData(t *testing.T) {
	h := newSinkHarness(t, 4*units.KB)
	h.sink.Receive(&packet.Packet{Kind: packet.EBSN})
	h.sink.Receive(&packet.Packet{Kind: packet.Ack, AckNo: 99})
	if len(h.acks) != 0 {
		t.Error("non-data packets generated ACKs")
	}
	if h.sink.Stats().SegmentsReceived != 0 {
		t.Error("non-data counted as segments")
	}
}

func TestSinkLastArrivalTimestamp(t *testing.T) {
	h := newSinkHarness(t, 4*units.KB)
	h.s.Schedule(5, func() { h.sink.Receive(data(0, 536)) })
	if err := h.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := h.sink.LastArrival(); got != 5 {
		t.Errorf("LastArrival = %v, want 5ns", got)
	}
}
