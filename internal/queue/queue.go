// Package queue provides the drop-tail FIFO used at every node's outbound
// interface. The base station's queue occupancy additionally drives the
// ICMP source-quench comparator, so the queue exposes occupancy counters.
package queue

import (
	"wtcp/internal/packet"
	"wtcp/internal/units"
)

// DropTail is a FIFO with a packet-count capacity; packets arriving to a
// full queue are dropped (tail drop), matching the router model in ns.
// The zero value is unusable; construct with New.
type DropTail struct {
	limit int
	buf   []*packet.Packet
	bytes units.ByteSize

	enqueued uint64
	dropped  uint64
	peak     int
}

// New returns a queue holding at most limit packets. A non-positive limit
// means unbounded.
func New(limit int) *DropTail {
	return &DropTail{limit: limit}
}

// Push appends p, or drops it and reports false if the queue is full.
func (q *DropTail) Push(p *packet.Packet) bool {
	if q.limit > 0 && len(q.buf) >= q.limit {
		q.dropped++
		return false
	}
	q.buf = append(q.buf, p)
	q.bytes += p.Size()
	q.enqueued++
	if len(q.buf) > q.peak {
		q.peak = len(q.buf)
	}
	return true
}

// Pop removes and returns the head, or nil if empty.
func (q *DropTail) Pop() *packet.Packet {
	if len(q.buf) == 0 {
		return nil
	}
	p := q.buf[0]
	q.buf[0] = nil
	q.buf = q.buf[1:]
	q.bytes -= p.Size()
	return p
}

// Peek returns the head without removing it, or nil if empty.
func (q *DropTail) Peek() *packet.Packet {
	if len(q.buf) == 0 {
		return nil
	}
	return q.buf[0]
}

// PushFront reinserts p at the head (used by ARQ when a transmission must
// be retried ahead of queued traffic). PushFront never drops: requeueing a
// packet that was already admitted must not lose it.
func (q *DropTail) PushFront(p *packet.Packet) {
	q.buf = append([]*packet.Packet{p}, q.buf...)
	q.bytes += p.Size()
	if len(q.buf) > q.peak {
		q.peak = len(q.buf)
	}
}

// Len reports the number of queued packets.
func (q *DropTail) Len() int { return len(q.buf) }

// Bytes reports the total queued size.
func (q *DropTail) Bytes() units.ByteSize { return q.bytes }

// Limit reports the configured capacity (0 = unbounded).
func (q *DropTail) Limit() int { return q.limit }

// Dropped reports how many pushes were refused.
func (q *DropTail) Dropped() uint64 { return q.dropped }

// Enqueued reports how many pushes were admitted.
func (q *DropTail) Enqueued() uint64 { return q.enqueued }

// Peak reports the maximum occupancy seen.
func (q *DropTail) Peak() int { return q.peak }

// Drain empties the queue and returns the packets in order.
func (q *DropTail) Drain() []*packet.Packet {
	out := q.buf
	q.buf = nil
	q.bytes = 0
	return out
}
