package handoff_test

import (
	"fmt"

	"wtcp/internal/handoff"
)

// Example reproduces the mobility mitigation from [Caceres & Iftode 94]:
// re-sending three duplicate acks after a cell switch converts every
// post-handoff RTO stall into a fast retransmit.
func Example() {
	plain, err := handoff.Run(handoff.Defaults(handoff.Plain))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fr, err := handoff.Run(handoff.Defaults(handoff.FastRetransmit))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("plain timeouts > 0:       ", plain.Timeouts > 0)
	fmt.Println("fast-retransmit timeouts: ", fr.Timeouts)
	fmt.Println("fast retransmit is faster:", fr.Elapsed < plain.Elapsed)
	// Output:
	// plain timeouts > 0:        true
	// fast-retransmit timeouts:  0
	// fast retransmit is faster: true
}
