// Multi-connection scheduling: several TCP transfers share the base
// station's radio while their mobile hosts fade independently. Reproduces
// the related-work comparison the paper summarizes in §2 [Bhagwat et al.,
// INFOCOM 95]: FIFO service suffers head-of-line blocking; round-robin
// isolates a fading connection; channel-state-dependent scheduling (CSDP)
// does best but depends on the predictor's accuracy.
//
//	go run ./examples/multiconn
package main

import (
	"fmt"
	"log"
	"time"

	"wtcp/internal/experiment"
	"wtcp/internal/multiconn"
)

func main() {
	points, err := experiment.CSDPStudy(experiment.CSDPOptions{
		Connections:  4,
		Replications: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiment.RenderCSDPTable(
		"4 TCP connections sharing a 2 Mbps radio, independent per-user fading", points))

	fmt.Println("predictor-accuracy sensitivity (bad period 1s):")
	for _, acc := range []float64{1.0, 0.9, 0.75, 0.5} {
		var agg float64
		const reps = 3
		for seed := int64(1); seed <= reps; seed++ {
			cfg := multiconn.LANDefaults(4, multiconn.CSDP, time.Second)
			cfg.PredictorAccuracy = acc
			cfg.Seed = seed
			r, err := multiconn.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			agg += r.AggregateKbps / reps
		}
		fmt.Printf("  accuracy %.2f: %7.0f Kbps aggregate\n", acc, agg)
	}
	fmt.Println("\nThe original study's caveat — \"the performance improvement achievable")
	fmt.Println("depends mostly on the accuracy of the channel state predictor\" — is")
	fmt.Println("directly visible in the sweep above.")
}
