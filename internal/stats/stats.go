// Package stats provides the replication machinery the evaluation uses:
// independent seeded runs aggregated into mean, deviation, and confidence
// intervals. The paper reports that "the standard deviation for all
// results presented is less than 4%"; the experiment harnesses use these
// helpers to report the same quantity.
package stats

import (
	"math"
	"sort"
	"sync"
)

// Sample is a collection of replicated measurements.
type Sample struct {
	values []float64
}

// Add appends a measurement.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N reports the number of measurements.
func (s *Sample) N() int { return len(s.values) }

// Values returns a copy of the measurements.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Mean reports the arithmetic mean (zero for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev reports the sample standard deviation (n-1 denominator; zero for
// fewer than two measurements).
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// RelStdDev reports the standard deviation as a fraction of the mean (the
// paper's "< 4%" quantity). Zero when the mean is zero.
func (s *Sample) RelStdDev() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.StdDev() / math.Abs(m)
}

// CI95 reports the half-width of a 95% normal-approximation confidence
// interval on the mean.
func (s *Sample) CI95() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(n))
}

// Min reports the smallest measurement (zero for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max reports the largest measurement (zero for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Median reports the middle measurement (zero for an empty sample).
func (s *Sample) Median() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	sorted := s.Values()
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// RunReplications executes f once per seed 1..n (each a fully independent
// simulation) and collects the results into a Sample. Replications run
// concurrently — simulations share no state — but the sample order is by
// seed, so aggregation is deterministic.
func RunReplications(n int, f func(seed int64) float64) *Sample {
	if n <= 0 {
		return &Sample{}
	}
	values := make([]float64, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			values[i] = f(int64(i + 1))
		}(i)
	}
	wg.Wait()
	return &Sample{values: values}
}
