// Quickstart: run one 100 KB transfer over the paper's wide-area wireless
// topology with basic TCP, then again with EBSN, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
)

func main() {
	// The paper's Figure 2 setup: fixed host -> 56 kbps wire -> base
	// station -> 19.2 kbps radio (12.8 kbps effective) -> mobile host,
	// with a bursty channel averaging 10 s good / 4 s bad.
	const packetSize = 576 // the IP default the paper highlights
	badPeriod := 4 * time.Second

	basic, err := core.Run(core.WAN(bs.Basic, packetSize, badPeriod))
	if err != nil {
		log.Fatal(err)
	}
	ebsn, err := core.Run(core.WAN(bs.EBSN, packetSize, badPeriod))
	if err != nil {
		log.Fatal(err)
	}

	th := core.WAN(bs.Basic, packetSize, badPeriod).TheoreticalMaxKbps()
	fmt.Printf("100KB over a bursty wireless hop (mean good 10s, mean bad %v):\n\n", badPeriod)
	fmt.Printf("%-22s %12s %9s %12s %9s\n", "", "throughput", "goodput", "retransmit", "timeouts")
	print := func(name string, r *core.Result) {
		fmt.Printf("%-22s %9.2f Kbps %9.3f %9.1f KB %9d\n",
			name, r.Summary.ThroughputKbps, r.Summary.Goodput,
			r.Summary.RetransmittedKB(), r.Summary.Timeouts)
	}
	print("basic TCP", basic)
	print("TCP + EBSN", ebsn)
	fmt.Printf("\ntheoretical maximum (tput_th): %.2f Kbps\n", th)
	fmt.Printf("EBSN improvement: %.0f%%\n",
		100*(ebsn.Summary.ThroughputKbps-basic.Summary.ThroughputKbps)/basic.Summary.ThroughputKbps)
}
