package analytic_test

import (
	"fmt"
	"time"

	"wtcp/internal/analytic"
)

// Example computes the paper's theoretical ceilings for the wide-area
// setup: the raw tput_th the figures mark, and the payload-only ceiling
// an ideal EBSN run approaches at a given packet size.
func Example() {
	const effectiveRate = 12800 // 19.2 kbps radio, 1.5x overhead
	good, bad := 10*time.Second, 4*time.Second
	fmt.Printf("tput_th:           %.2f Kbps\n",
		analytic.TputThKbps(effectiveRate, good, bad))
	fmt.Printf("EBSN ceiling @1536: %.2f Kbps\n",
		analytic.EBSNCeilingKbps(effectiveRate, 1536, good, bad))
	fmt.Printf("header efficiency @128: %.3f\n",
		analytic.HeaderEfficiency(128))
	// Output:
	// tput_th:           9.14 Kbps
	// EBSN ceiling @1536: 8.90 Kbps
	// header efficiency @128: 0.688
}
