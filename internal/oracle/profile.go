package oracle

import (
	"wtcp/internal/tcp"
	"wtcp/internal/trace"
)

// profile is one sender variant's congestion-control rule set — the
// pluggable half of the conformance oracle. The structural rules that
// hold for every variant (ACK classification, sequence ordering, timer
// discipline, Karn's backoff rules, ARQ/EBSN/Snoop semantics) live in
// Checker; a profile contributes only the rules that differ between
// variants, each under its own rule namespace ("tahoe/...", "reno/...",
// "newreno/...", "sack/...").
//
// Every method receives the checker (for shared helpers and the shadow
// recovery state), the offending event e, and the previous sender event
// p (only valid when c.haveLast).
type profile interface {
	// prefix is the rule namespace, equal to the variant's wire name.
	prefix() string
	// newAck checks the congestion response to a window-advancing ACK.
	newAck(c *Checker, e, p trace.Event, fail failf) *Violation
	// dupAck checks a duplicate ACK that did not trigger fast
	// retransmit (below threshold, or inside fast recovery).
	dupAck(c *Checker, e, p trace.Event, fail failf) *Violation
	// fastRetx checks the third-duplicate-ACK response.
	fastRetx(c *Checker, e, p trace.Event, fail failf) *Violation
}

// profileFor resolves the conformance profile for a sender variant:
// Tahoe gets the collapse-and-slow-start rules, the Reno family (Reno,
// NewReno, SACK) the fast-recovery rules with per-variant partial-ACK
// handling.
func profileFor(v tcp.Variant) profile {
	if v.FastRecovery() {
		return &renoProfile{variant: v}
	}
	return &tahoeProfile{}
}

// checkGrowth validates one window-growth step outside any recovery
// episode: slow start below ssthresh, else congestion avoidance, capped
// at the advertised window plus one segment. Shared by every profile.
func (c *Checker) checkGrowth(rule string, e, p trace.Event, fail failf) *Violation {
	mss := float64(c.cfg.MSS)
	capTo := func(x float64) float64 {
		if cap := float64(c.cfg.Window) + mss; x > cap {
			return cap
		}
		return x
	}
	ss := capTo(float64(p.Cwnd) + mss)
	ca := capTo(float64(p.Cwnd) + mss*mss/float64(p.Cwnd))
	switch {
	case p.Cwnd < p.Ssthresh:
		if !within(float64(e.Cwnd), ss, c.cfg.ByteTol) {
			return fail(rule,
				"slow start growth from cwnd=%d gives %d, want %.0f", p.Cwnd, e.Cwnd, ss)
		}
	case p.Cwnd == p.Ssthresh:
		// Boundary: the snapshot truncates the sender's fractional
		// ssthresh, so cwnd==ssthresh here is consistent with either
		// phase. Accept both growth laws.
		if !within(float64(e.Cwnd), ss, c.cfg.ByteTol) && !within(float64(e.Cwnd), ca, c.cfg.ByteTol) {
			return fail(rule,
				"growth at the slow-start boundary from cwnd=%d gives %d, want %.0f or %.0f",
				p.Cwnd, e.Cwnd, ca, ss)
		}
	default:
		if !within(float64(e.Cwnd), ca, c.cfg.ByteTol) {
			return fail(rule,
				"congestion avoidance growth from cwnd=%d gives %d, want %.0f", p.Cwnd, e.Cwnd, ca)
		}
	}
	return nil
}

// tahoeProfile is the paper's TCP: any loss collapses the window to one
// segment and slow start resumes from snd_una (go-back-N).
type tahoeProfile struct{}

func (tahoeProfile) prefix() string { return "tahoe" }

func (tahoeProfile) newAck(c *Checker, e, p trace.Event, fail failf) *Violation {
	if v := c.checkGrowth("tahoe/cwnd-growth", e, p, fail); v != nil {
		return v
	}
	if e.Ssthresh != p.Ssthresh {
		return fail("tahoe/cwnd-growth",
			"ssthresh moved %d -> %d on a new ACK", p.Ssthresh, e.Ssthresh)
	}
	return nil
}

func (tahoeProfile) dupAck(c *Checker, e, p trace.Event, fail failf) *Violation {
	if e.DupAcks >= tcp.DupAckThreshold {
		return fail("tahoe/missed-fast-retransmit",
			"duplicate-ACK run reached %d without a fast retransmit", e.DupAcks)
	}
	if e.Cwnd != p.Cwnd || e.Ssthresh != p.Ssthresh {
		return fail("tahoe/dupack-no-growth",
			"below-threshold duplicate ACK moved cwnd/ssthresh %d/%d -> %d/%d",
			p.Cwnd, p.Ssthresh, e.Cwnd, e.Ssthresh)
	}
	return nil
}

// fastRetx validates the Tahoe fast-retransmit response on the third
// duplicate ACK: ssthresh halves, the window collapses and slow start
// resumes from snd_una — with no timer backoff (the ACK clock is still
// running; backing off here is the mistake Karn's rule is about).
func (tahoeProfile) fastRetx(c *Checker, e, p trace.Event, fail failf) *Violation {
	if !within(float64(e.Cwnd), float64(c.cfg.MSS), c.cfg.ByteTol) {
		return fail("tahoe/fastretx-collapse",
			"cwnd %d after fast retransmit, want one segment (%d)", e.Cwnd, int64(c.cfg.MSS))
	}
	if e.SndNxt != e.SndUna {
		return fail("tahoe/fastretx-collapse",
			"snd_nxt %d not rewound to snd_una %d", e.SndNxt, e.SndUna)
	}
	if e.DupAcks != 0 {
		return fail("tahoe/fastretx-collapse",
			"fast retransmit did not clear the duplicate-ACK run (%d)", e.DupAcks)
	}
	if !c.deadlineIs(e, e.At+e.RTO) {
		return fail("tahoe/fastretx-timer",
			"timer deadline %v after fast retransmit, want %v (now+RTO)", e.Deadline, e.At+e.RTO)
	}
	if !c.haveLast {
		return nil
	}
	if v := c.checkHalved("tahoe/fastretx-ssthresh", e, p, fail); v != nil {
		return v
	}
	if e.Shift != p.Shift || !durWithin(e.RTO, p.RTO, c.cfg.TimeTol) {
		return fail("tahoe/fastretx-no-backoff",
			"fast retransmit changed the timeout (shift %d->%d, RTO %v->%v)",
			p.Shift, e.Shift, p.RTO, e.RTO)
	}
	return nil
}

// renoProfile covers the fast-recovery family: Reno, NewReno, and SACK.
// On the third duplicate ACK the sender retransmits the hole, halves
// ssthresh, and inflates cwnd to ssthresh + 3 segments; each further
// duplicate inflates by one segment; a new ACK deflates back. The
// variants differ on partial ACKs: plain Reno leaves recovery on any
// new ACK, NewReno and SACK retransmit the next hole and stay in.
type renoProfile struct {
	variant tcp.Variant
}

func (r *renoProfile) prefix() string { return r.variant.String() }

func (r *renoProfile) newAck(c *Checker, e, p trace.Event, fail failf) *Violation {
	pre := r.prefix()
	if !c.inRecovery {
		if v := c.checkGrowth(pre+"/cwnd-growth", e, p, fail); v != nil {
			return v
		}
		if e.Ssthresh != p.Ssthresh {
			return fail(pre+"/cwnd-growth",
				"ssthresh moved %d -> %d on a new ACK", p.Ssthresh, e.Ssthresh)
		}
		return nil
	}
	switch {
	case e.Ack >= c.recoverSeq:
		// Full recovery: the ACK covers everything outstanding at loss
		// detection; the window deflates to ssthresh and recovery ends.
		c.inRecovery = false
		if !within(float64(e.Cwnd), float64(e.Ssthresh), c.cfg.ByteTol) {
			return fail(pre+"/recovery-exit",
				"cwnd %d leaving recovery, want deflation to ssthresh %d", e.Cwnd, e.Ssthresh)
		}
		if e.Ssthresh != p.Ssthresh {
			return fail(pre+"/recovery-exit",
				"ssthresh moved %d -> %d leaving recovery", p.Ssthresh, e.Ssthresh)
		}
	case !r.variant.PartialAckRetransmit():
		// Plain Reno leaves recovery on any new ACK, full or not.
		c.inRecovery = false
		if !within(float64(e.Cwnd), float64(e.Ssthresh), c.cfg.ByteTol) {
			return fail(pre+"/recovery-exit",
				"cwnd %d leaving recovery on a partial ACK, want ssthresh %d", e.Cwnd, e.Ssthresh)
		}
		if e.Ssthresh != p.Ssthresh {
			return fail(pre+"/recovery-exit",
				"ssthresh moved %d -> %d leaving recovery", p.Ssthresh, e.Ssthresh)
		}
	default:
		// NewReno/SACK partial ACK: recovery continues. The next hole —
		// the segment starting at the partial ACK — must be retransmitted
		// in the same transition (immediately before this snapshot), and
		// the window deflates by the amount acknowledged, floored at one
		// segment.
		if !c.haveLast2 {
			return nil
		}
		base := c.last2
		if p.Kind != trace.Retransmit || p.Seq != e.Ack {
			return fail(pre+"/partial-ack-retransmit",
				"partial ACK %d in recovery without a retransmission of the hole at %d", e.Ack, e.Ack)
		}
		exp := float64(base.Cwnd) - float64(e.Ack-base.SndUna)
		if mss := float64(c.cfg.MSS); exp < mss {
			exp = mss
		}
		if !within(float64(e.Cwnd), exp, c.cfg.ByteTol) {
			return fail(pre+"/partial-ack-deflate",
				"cwnd %d after partial ACK %d, want %.0f (deflated by the %d acked bytes)",
				e.Cwnd, e.Ack, exp, e.Ack-base.SndUna)
		}
		if e.Ssthresh != base.Ssthresh {
			return fail(pre+"/partial-ack-deflate",
				"ssthresh moved %d -> %d on a partial ACK", base.Ssthresh, e.Ssthresh)
		}
	}
	return nil
}

func (r *renoProfile) dupAck(c *Checker, e, p trace.Event, fail failf) *Violation {
	pre := r.prefix()
	if c.inRecovery {
		// Window inflation: every duplicate during recovery signals one
		// more segment has left the network.
		if !within(float64(e.Cwnd), float64(p.Cwnd)+float64(c.cfg.MSS), c.cfg.ByteTol) {
			return fail(pre+"/recovery-inflation",
				"duplicate ACK in recovery moved cwnd %d -> %d, want inflation by one segment", p.Cwnd, e.Cwnd)
		}
		if e.Ssthresh != p.Ssthresh {
			return fail(pre+"/recovery-inflation",
				"ssthresh moved %d -> %d during recovery", p.Ssthresh, e.Ssthresh)
		}
		return nil
	}
	if e.DupAcks >= tcp.DupAckThreshold {
		return fail(pre+"/missed-fast-retransmit",
			"duplicate-ACK run reached %d without a fast retransmit", e.DupAcks)
	}
	if e.Cwnd != p.Cwnd || e.Ssthresh != p.Ssthresh {
		return fail(pre+"/dupack-no-growth",
			"below-threshold duplicate ACK moved cwnd/ssthresh %d/%d -> %d/%d",
			p.Cwnd, p.Ssthresh, e.Cwnd, e.Ssthresh)
	}
	return nil
}

// fastRetx validates recovery entry: the lost segment retransmitted in
// the same transition, ssthresh halved, cwnd inflated to ssthresh plus
// three segments, no go-back-N rewind, and no timer backoff.
func (r *renoProfile) fastRetx(c *Checker, e, p trace.Event, fail failf) *Violation {
	pre := r.prefix()
	if c.inRecovery {
		return fail(pre+"/fastretx-in-recovery",
			"fast retransmit fired while already in fast recovery")
	}
	c.inRecovery = true
	c.recoverSeq = e.SndMax
	if e.DupAcks != tcp.DupAckThreshold {
		return fail(pre+"/fastretx-enter",
			"fast retransmit with a duplicate-ACK run of %d, want %d", e.DupAcks, tcp.DupAckThreshold)
	}
	if !c.deadlineIs(e, e.At+e.RTO) {
		return fail(pre+"/fastretx-timer",
			"timer deadline %v after fast retransmit, want %v (now+RTO)", e.Deadline, e.At+e.RTO)
	}
	if !c.haveLast {
		return nil
	}
	if p.Kind != trace.Retransmit || p.Seq != e.SndUna {
		return fail(pre+"/fastretx-retransmit",
			"recovery entered without a retransmission of the hole at snd_una %d", e.SndUna)
	}
	inflated := float64(e.Ssthresh) + float64(tcp.DupAckThreshold)*float64(c.cfg.MSS)
	if !within(float64(e.Cwnd), inflated, c.cfg.ByteTol) {
		return fail(pre+"/fastretx-inflate",
			"cwnd %d entering recovery, want ssthresh %d + %d segments (%.0f)",
			e.Cwnd, e.Ssthresh, tcp.DupAckThreshold, inflated)
	}
	if e.SndNxt != p.SndNxt || e.SndUna != p.SndUna {
		return fail(pre+"/fastretx-no-rewind",
			"fast recovery moved sequence pointers (snd_nxt %d -> %d, snd_una %d -> %d)",
			p.SndNxt, e.SndNxt, p.SndUna, e.SndUna)
	}
	if v := c.checkHalved(pre+"/fastretx-ssthresh", e, p, fail); v != nil {
		return v
	}
	if e.Shift != p.Shift || !durWithin(e.RTO, p.RTO, c.cfg.TimeTol) {
		return fail(pre+"/fastretx-no-backoff",
			"fast retransmit changed the timeout (shift %d->%d, RTO %v->%v)",
			p.Shift, e.Shift, p.RTO, e.RTO)
	}
	return nil
}
