package analytic

import (
	"math"
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
	"wtcp/internal/units"
)

func TestGoodFraction(t *testing.T) {
	tests := []struct {
		good, bad time.Duration
		want      float64
	}{
		{10 * time.Second, time.Second, 10.0 / 11},
		{10 * time.Second, 4 * time.Second, 10.0 / 14},
		{time.Second, 0, 1},
		{0, 0, 1},
	}
	for _, tt := range tests {
		if got := GoodFraction(tt.good, tt.bad); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("GoodFraction(%v,%v) = %v", tt.good, tt.bad, got)
		}
	}
}

func TestHeaderEfficiency(t *testing.T) {
	tests := []struct {
		size units.ByteSize
		want float64
	}{
		{128, 88.0 / 128},
		{576, 536.0 / 576},
		{1536, 1496.0 / 1536},
		{40, 0},
		{10, 0},
	}
	for _, tt := range tests {
		if got := HeaderEfficiency(tt.size); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("HeaderEfficiency(%d) = %v, want %v", tt.size, got, tt.want)
		}
	}
}

func TestTputThMatchesCore(t *testing.T) {
	for _, bad := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second} {
		cfg := core.WAN(bs.Basic, 576, bad)
		want := cfg.TheoreticalMaxKbps()
		got := TputThKbps(cfg.EffectiveWirelessRate(), cfg.Channel.MeanGood, cfg.Channel.MeanBad)
		if math.Abs(got-want) > 0.001 {
			t.Errorf("bad=%v: analytic %v vs core %v", bad, got, want)
		}
	}
}

func TestFadeHitProbability(t *testing.T) {
	if got := FadeHitProbability(0, 10*time.Second); got != 0 {
		t.Errorf("zero air time hit prob = %v", got)
	}
	// 1s transmission against 10s mean good: 1-e^-0.1 ~ 0.0952.
	got := FadeHitProbability(time.Second, 10*time.Second)
	if math.Abs(got-0.09516) > 0.0005 {
		t.Errorf("hit prob = %v", got)
	}
	if got := FadeHitProbability(time.Second, 0); got != 1 {
		t.Errorf("degenerate mean good = %v", got)
	}
}

// TestEBSNSimulationApproachesAnalyticCeiling is the validation headline:
// the simulated EBSN throughput lands within ~15% of the closed-form
// ceiling across the WAN sweep.
func TestEBSNSimulationApproachesAnalyticCeiling(t *testing.T) {
	for _, bad := range []time.Duration{time.Second, 4 * time.Second} {
		for _, size := range []units.ByteSize{512, 1536} {
			var mean float64
			const reps = 3
			for seed := int64(1); seed <= reps; seed++ {
				cfg := core.WAN(bs.EBSN, size, bad)
				cfg.Seed = seed
				r, err := core.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				mean += r.Summary.ThroughputKbps / reps
			}
			ceiling := EBSNCeilingKbps(12800, size, 10*time.Second, bad)
			if mean < 0.75*ceiling || mean > 1.15*ceiling {
				t.Errorf("bad=%v size=%d: simulated %.2f vs analytic ceiling %.2f",
					bad, size, mean, ceiling)
			}
		}
	}
}

// TestBasicTCPRenewalModelBrackets checks the renewal estimate brackets
// the simulated basic-TCP throughput within a factor-of-two band — a
// coarse model, but it captures the trend across bad periods.
func TestBasicTCPRenewalModelBrackets(t *testing.T) {
	for _, bad := range []time.Duration{time.Second, 4 * time.Second} {
		var mean float64
		const reps = 4
		for seed := int64(1); seed <= reps; seed++ {
			cfg := core.WAN(bs.Basic, 576, bad)
			cfg.Seed = seed
			r, err := core.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			mean += r.Summary.ThroughputKbps / reps
		}
		est := BasicTCPEstimateKbps(BasicTCPParams{
			EffectiveRate: 12800,
			PacketSize:    576,
			MeanGood:      10 * time.Second,
			MeanBad:       bad,
			DeadTime:      EstimateDeadTime(2*time.Second, 700*time.Millisecond),
		})
		if mean < est/2 || mean > est*2 {
			t.Errorf("bad=%v: simulated %.2f outside [%.2f, %.2f]", bad, mean, est/2, est*2)
		}
	}
}

func TestBasicTCPEstimateEdges(t *testing.T) {
	p := BasicTCPParams{EffectiveRate: 12800, PacketSize: 576}
	if got := BasicTCPEstimateKbps(p); math.Abs(got-PayloadCeilingKbps(12800, 576)) > 1e-9 {
		t.Errorf("no-fade estimate = %v, want ceiling", got)
	}
	p.MeanGood = time.Second
	p.MeanBad = time.Second
	p.DeadTime = 10 * time.Second // dead time exceeding the good period clamps
	if got := BasicTCPEstimateKbps(p); got != 0 {
		t.Errorf("over-dead estimate = %v, want 0", got)
	}
}
