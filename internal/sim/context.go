package sim

import (
	"context"
	"fmt"
	"time"
)

// This file gives the kernel cooperative cancellation: a context bound
// with Bind is polled at event boundaries, so a deadline or Ctrl-C stops
// a simulation cleanly between events — no goroutine is abandoned
// mid-run and no component observes a half-applied event.
//
// Polling happens every ctxPollStride fired events rather than on every
// event: a context check costs a mutex acquisition, and a run fires
// millions of events. The stride only affects how promptly a cancelled
// run notices (within ctxPollStride events, microseconds of real time);
// it never affects simulation results, because the poll reads no
// simulation state and a run that is not cancelled executes exactly the
// event sequence it would have executed unbound.
const ctxPollStride = 1024

// CancelError reports a run halted because the context bound with Bind
// ended (cancelled, or past its deadline) before the run condition was
// met. It unwraps to the context's error, so callers can test
// errors.Is(err, context.Canceled) / context.DeadlineExceeded.
type CancelError struct {
	// At is the virtual time the cancellation was observed.
	At time.Duration
	// Err is the bound context's error.
	Err error
}

// Error implements error.
func (e *CancelError) Error() string {
	return fmt.Sprintf("sim: run canceled at virtual time %v: %v", e.At, e.Err)
}

// Unwrap exposes the context error.
func (e *CancelError) Unwrap() error { return e.Err }

// Bind attaches ctx to the simulator: Run and Step poll it at event
// boundaries and halt with a *CancelError (recorded as the simulator's
// failure, see Failure) once it ends. A nil ctx detaches.
func (s *Simulator) Bind(ctx context.Context) {
	if ctx == context.Background() || ctx == context.TODO() {
		// Never ends; skip the per-stride poll entirely.
		ctx = nil
	}
	s.ctx = ctx
}

// cancelled polls the bound context at the poll stride. When the context
// has ended it records a *CancelError (first failure wins) and stops the
// run.
func (s *Simulator) cancelled() bool {
	if s.ctx == nil || s.fired%ctxPollStride != 0 {
		return false
	}
	err := s.ctx.Err()
	if err == nil {
		return false
	}
	if s.failure == nil {
		s.failure = &CancelError{At: s.now, Err: err}
	}
	s.stopped = true
	return true
}
