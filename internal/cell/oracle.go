package cell

import (
	"time"

	"wtcp/internal/oracle"
	"wtcp/internal/packet"
	"wtcp/internal/tcp"
	"wtcp/internal/trace"
)

// sampler is the cell-scale conformance spot-check: full-population
// checking is unaffordable at 50k flows, so OracleSample flows — spread
// evenly across the ID space — get the repository's streaming Tahoe/ARQ
// oracle attached. Events for sampled flows are synthesized into the
// same trace.Event shape internal/trace produces from sender snapshots,
// so the checker rules apply verbatim; a violation fails the kernel (it
// surfaces from the run loop as an error).
type sampler struct {
	e        *engine
	slotOf   []int32 // flow -> checker slot, -1 unsampled
	checkers []*oracle.Checker
	counts   []int // per-checker event index
	mss      int64
}

// newSampler attaches checkers to k flows (clamped to the population).
func newSampler(e *engine, k int) *sampler {
	if k > e.F {
		k = e.F
	}
	sp := &sampler{
		e:        e,
		slotOf:   make([]int32, e.F),
		checkers: make([]*oracle.Checker, k),
		counts:   make([]int, k),
		mss:      e.mss,
	}
	for f := range sp.slotOf {
		sp.slotOf[f] = -1
	}
	cfg := oracle.Config{
		Variant: tcp.Tahoe,
		MSS:     e.cfg.PacketSize - packet.HeaderSize,
		Window:  e.cfg.Window,
		MaxRTO:  e.maxRTO,
		RTmax:   e.cfg.RTmax,
	}
	step := e.F / k
	for i := 0; i < k; i++ {
		f := i * step
		sp.slotOf[f] = int32(i)
		sp.checkers[i] = oracle.New(cfg)
	}
	return sp
}

// observe feeds one synthesized event to flow f's checker, if sampled.
func (sp *sampler) observe(f int32, ev trace.Event) {
	slot := sp.slotOf[f]
	if slot < 0 {
		return
	}
	ev.At = sp.e.s.Now()
	ev.PacketNo = ev.Seq / sp.mss
	idx := sp.counts[slot]
	sp.counts[slot] = idx + 1
	if v := sp.checkers[slot].Observe(idx, ev); v != nil {
		sp.e.s.Fail("cell-oracle", v)
	}
}

// snapshot fills the post-transition sender fields recordState copies
// from a tcp.StateSnapshot.
func (sp *sampler) snapshot(f int32, ev trace.Event) trace.Event {
	e := sp.e
	ev.Cwnd = int64(e.cwnd[f])
	ev.Ssthresh = int64(e.ssthresh[f])
	ev.SndUna = e.sndUna[f]
	ev.SndNxt = e.sndNxt[f]
	ev.SndMax = e.sndMax[f]
	ev.RTO = e.rtoRTO(f)
	ev.Deadline = time.Duration(e.wheel.deadlineOf(f))
	ev.Shift = int(e.shift[f])
	ev.DupAcks = int(e.dupacks[f])
	return ev
}

// sampled reports whether flow f feeds a checker.
func (sp *sampler) sampled(f int32) bool { return sp.slotOf[f] >= 0 }

// ---- ARQ events (base-station side of the sampled flow's stream) ----

func (sp *sampler) arqAttempt(f int32, attempt int) {
	if !sp.sampled(f) {
		return
	}
	u := sp.e.unit[f]
	sp.observe(f, trace.Event{Kind: trace.ARQAttempt, Unit: u, Pkt: u, Attempt: attempt})
}

func (sp *sampler) arqFailure(f int32, attempt int) {
	if !sp.sampled(f) {
		return
	}
	u := sp.e.unit[f]
	sp.observe(f, trace.Event{Kind: trace.ARQFailure, Unit: u, Pkt: u, Attempt: attempt})
}

func (sp *sampler) arqAck(f int32) {
	if !sp.sampled(f) {
		return
	}
	u := sp.e.unit[f]
	sp.observe(f, trace.Event{Kind: trace.ARQAck, Unit: u, Pkt: u})
}

func (sp *sampler) arqDiscard(f int32) {
	if !sp.sampled(f) {
		return
	}
	sp.observe(f, trace.Event{Kind: trace.ARQDiscard, Pkt: sp.e.unit[f]})
}

// ---- sender events (engine-facing emission helpers) ----

// oracleSend records a Send/Retransmit event for a sampled flow.
func (e *engine) oracleSend(f int32, seq, seglen int64, retx bool) {
	if e.oracle == nil || !e.oracle.sampled(f) {
		return
	}
	kind := trace.Send
	if retx {
		kind = trace.Retransmit
	}
	e.oracle.observe(f, e.oracle.snapshot(f, trace.Event{Kind: kind, Seq: seq, Payload: seglen}))
}

// oracleAck records an AckIn event for a sampled flow.
func (e *engine) oracleAck(f int32, ackNo int64, class tcp.AckClass) {
	if e.oracle == nil || !e.oracle.sampled(f) {
		return
	}
	e.oracle.observe(f, e.oracle.snapshot(f,
		trace.Event{Kind: trace.AckIn, Ack: ackNo, AckClass: int(class)}))
}

// oracleState records a Timeout/FastRetx/EBSNReset event for a sampled
// flow (kind given as the sender state kind, mirroring recordState).
func (e *engine) oracleState(f int32, st tcp.StateKind, seq int64) {
	if e.oracle == nil || !e.oracle.sampled(f) {
		return
	}
	var kind trace.EventKind
	switch st {
	case tcp.StateTimeout:
		kind = trace.Timeout
	case tcp.StateFastRetx:
		kind = trace.FastRetx
	case tcp.StateEBSN:
		kind = trace.EBSNReset
	default:
		return
	}
	e.oracle.observe(f, e.oracle.snapshot(f, trace.Event{Kind: kind, Seq: seq}))
}
