package core

import (
	"context"
	"fmt"
	"runtime/debug"

	"wtcp/internal/cell"
	"wtcp/internal/sim"
)

// CellConfig parameterizes a cell-scale run: the flat struct-of-arrays
// engine simulating an entire base-station cell of concurrent flows
// (see internal/cell). Budget layers the same resource ceilings RunContext
// offers single-connection runs; a cell run should practically always set
// at least a wall-clock ceiling, since a mis-parameterized 100k-flow run
// can burn minutes.
type CellConfig struct {
	cell.Config
	// Budget bounds the run's fired events, virtual time, wall-clock
	// time, and heap bytes; exhaustion surfaces as a *sim.BudgetError.
	// The zero value imposes no ceilings.
	Budget sim.Budget
}

// RunCell executes one cell-scale simulation, the many-flow sibling of
// RunContext: cooperative cancellation through ctx, resource ceilings
// through cfg.Budget, and panic containment into *PanicError so a sweep
// over cell scenarios can skip a poisoned point instead of crashing.
func RunCell(ctx context.Context, cfg CellConfig) (res *cell.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res = nil
			err = &PanicError{Value: fmt.Sprint(p), Stack: string(debug.Stack())}
		}
	}()
	return cell.RunContext(ctx, cfg.Config, cfg.Budget)
}
