package errmodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"wtcp/internal/sim"
	"wtcp/internal/stats"
)

func mustMarkov(t *testing.T, cfg Config, seed int64) *Markov {
	t.Helper()
	m, err := NewMarkov(cfg, sim.NewRNG(seed))
	if err != nil {
		t.Fatalf("NewMarkov: %v", err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"paper WAN", PaperWAN(2 * time.Second), false},
		{"paper LAN", PaperLAN(time.Second), false},
		{"negative good BER", Config{GoodBER: -1, MeanGood: time.Second}, true},
		{"BER above one", Config{BadBER: 1.5, MeanGood: time.Second}, true},
		{"zero good period", Config{MeanBad: time.Second}, true},
		{"negative bad period", Config{MeanGood: time.Second, MeanBad: -time.Second}, true},
		{"zero bad period ok", Config{MeanGood: time.Second}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewMarkovRejectsInvalid(t *testing.T) {
	if _, err := NewMarkov(Config{}, sim.NewRNG(1)); err == nil {
		t.Error("NewMarkov accepted zero config")
	}
}

func TestGoodFraction(t *testing.T) {
	tests := []struct {
		good, bad time.Duration
		want      float64
	}{
		{10 * time.Second, time.Second, 10.0 / 11},
		{10 * time.Second, 4 * time.Second, 10.0 / 14},
		{4 * time.Second, 400 * time.Millisecond, 10.0 / 11},
		{time.Second, 0, 1},
	}
	for _, tt := range tests {
		cfg := Config{MeanGood: tt.good, MeanBad: tt.bad}
		if got := cfg.GoodFraction(); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("GoodFraction(%v,%v) = %v, want %v", tt.good, tt.bad, got, tt.want)
		}
	}
}

func TestDeterministicTimeline(t *testing.T) {
	cfg := PaperWAN(4 * time.Second)
	cfg.Deterministic = true
	m := mustMarkov(t, cfg, 1)

	// The paper's Figure 3-5 schedule: good 0-10, bad 10-14, good 14-24,
	// bad 24-28, ...
	tests := []struct {
		at   time.Duration
		want State
	}{
		{0, Good},
		{9*time.Second + 999*time.Millisecond, Good},
		{10 * time.Second, Bad},
		{13 * time.Second, Bad},
		{14 * time.Second, Good},
		{23 * time.Second, Good},
		{24 * time.Second, Bad},
		{27 * time.Second, Bad},
		{28 * time.Second, Good},
		{56 * time.Second, Bad}, // third bad period 52-56... check: cycle 14s; bad at [10,14)+14k: 52-56 → 56 is good start
	}
	// Recompute the last expectation: bad periods are [10,14), [24,28),
	// [38,42), [52,56). So 56s is Good.
	tests[len(tests)-1].want = Good
	for _, tt := range tests {
		if got := m.StateAt(tt.at); got != tt.want {
			t.Errorf("StateAt(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestStateAtNegativeTimeClamps(t *testing.T) {
	cfg := PaperWAN(4 * time.Second)
	cfg.Deterministic = true
	m := mustMarkov(t, cfg, 1)
	if got := m.StateAt(-5 * time.Second); got != Good {
		t.Errorf("StateAt(-5s) = %v, want Good", got)
	}
}

func TestStartStateBad(t *testing.T) {
	cfg := PaperWAN(4 * time.Second)
	cfg.Deterministic = true
	cfg.Start = Bad
	m := mustMarkov(t, cfg, 1)
	if got := m.StateAt(0); got != Bad {
		t.Errorf("StateAt(0) = %v, want Bad", got)
	}
	if got := m.StateAt(5 * time.Second); got != Good {
		t.Errorf("StateAt(5s) = %v, want Good (bad period is 4s)", got)
	}
}

func TestExpectedBitErrorsSingleState(t *testing.T) {
	cfg := PaperWAN(4 * time.Second)
	cfg.Deterministic = true
	m := mustMarkov(t, cfg, 1)

	// Entirely inside the first good period: mean = 1e-6 * bits.
	got := m.ExpectedBitErrors(time.Second, 2*time.Second, 1536)
	want := 1e-6 * 1536
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("good-state mean = %v, want %v", got, want)
	}

	// Entirely inside the first bad period.
	got = m.ExpectedBitErrors(11*time.Second, 12*time.Second, 1536)
	want = 1e-2 * 1536
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("bad-state mean = %v, want %v", got, want)
	}
}

func TestExpectedBitErrorsStraddlesBoundary(t *testing.T) {
	cfg := PaperWAN(4 * time.Second)
	cfg.Deterministic = true
	m := mustMarkov(t, cfg, 1)

	// Transmission spanning 9.5s-10.5s: half good, half bad.
	got := m.ExpectedBitErrors(9500*time.Millisecond, 10500*time.Millisecond, 1000)
	want := 0.5*1e-6*1000 + 0.5*1e-2*1000
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("straddling mean = %v, want %v", got, want)
	}
}

func TestExpectedBitErrorsSpansMultiplePeriods(t *testing.T) {
	cfg := PaperWAN(4 * time.Second)
	cfg.Deterministic = true
	m := mustMarkov(t, cfg, 1)

	// 8s-16s spans good(8-10)=2s, bad(10-14)=4s, good(14-16)=2s.
	bits := int64(8000)
	got := m.ExpectedBitErrors(8*time.Second, 16*time.Second, bits)
	want := (2.0/8)*1e-6*8000 + (4.0/8)*1e-2*8000 + (2.0/8)*1e-6*8000
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("multi-period mean = %v, want %v", got, want)
	}
}

func TestExpectedBitErrorsEdgeCases(t *testing.T) {
	cfg := PaperWAN(4 * time.Second)
	cfg.Deterministic = true
	m := mustMarkov(t, cfg, 1)

	if got := m.ExpectedBitErrors(time.Second, 2*time.Second, 0); got != 0 {
		t.Errorf("zero bits mean = %v, want 0", got)
	}
	// Instantaneous transmission attributed to state at start.
	got := m.ExpectedBitErrors(11*time.Second, 11*time.Second, 100)
	if math.Abs(got-1.0) > 1e-9 { // 1e-2 * 100
		t.Errorf("instantaneous mean = %v, want 1.0", got)
	}
}

func TestStochasticHoldingTimes(t *testing.T) {
	cfg := PaperWAN(2 * time.Second)
	m := mustMarkov(t, cfg, 42)
	ivs := m.Intervals(20000 * time.Second)
	if len(ivs) < 100 {
		t.Fatalf("only %d intervals in 20000s", len(ivs))
	}
	var goodSum, badSum float64
	var goodN, badN int
	for i := 0; i+1 < len(ivs); i++ {
		d := (ivs[i+1].Start - ivs[i].Start).Seconds()
		if ivs[i].State == Good {
			goodSum += d
			goodN++
		} else {
			badSum += d
			badN++
		}
	}
	gm, bm := goodSum/float64(goodN), badSum/float64(badN)
	if gm < 9 || gm > 11 {
		t.Errorf("mean good period = %vs, want ~10s", gm)
	}
	if bm < 1.8 || bm > 2.2 {
		t.Errorf("mean bad period = %vs, want ~2s", bm)
	}
	// States must strictly alternate.
	for i := 0; i+1 < len(ivs); i++ {
		if ivs[i].State == ivs[i+1].State {
			t.Fatal("adjacent intervals share a state")
		}
	}
}

// TestHoldingTimesAreExponentialKS validates §3.1's distributional claim
// rigorously: a Kolmogorov-Smirnov test must not reject exponential
// holding times for either state at the 1% level.
func TestHoldingTimesAreExponentialKS(t *testing.T) {
	cfg := PaperWAN(2 * time.Second)
	m := mustMarkov(t, cfg, 21)
	ivs := m.Intervals(40000 * time.Second)
	var good, bad []float64
	for i := 0; i+1 < len(ivs); i++ {
		d := (ivs[i+1].Start - ivs[i].Start).Seconds()
		if ivs[i].State == Good {
			good = append(good, d)
		} else {
			bad = append(bad, d)
		}
	}
	check := func(name string, sample []float64, mean float64) {
		t.Helper()
		if len(sample) < 100 {
			t.Fatalf("%s: only %d holding times", name, len(sample))
		}
		d, err := stats.KSStatistic(sample, stats.ExponentialCDF(mean))
		if err != nil {
			t.Fatal(err)
		}
		crit, err := stats.KSCriticalValue(len(sample), 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if d > crit {
			t.Errorf("%s holding times rejected as exponential: D=%.4f > %.4f (n=%d)",
				name, d, crit, len(sample))
		}
	}
	check("good", good, 10)
	check("bad", bad, 2)
}

func TestStochasticGoodFractionEmpirical(t *testing.T) {
	cfg := PaperWAN(4 * time.Second)
	m := mustMarkov(t, cfg, 7)
	horizon := 50000 * time.Second
	ivs := m.Intervals(horizon)
	var goodTime time.Duration
	for i := range ivs {
		end := horizon
		if i+1 < len(ivs) {
			end = ivs[i+1].Start
		}
		if end > horizon {
			end = horizon
		}
		if ivs[i].State == Good {
			goodTime += end - ivs[i].Start
		}
	}
	frac := float64(goodTime) / float64(horizon)
	want := cfg.GoodFraction() // 10/14
	if math.Abs(frac-want) > 0.02 {
		t.Errorf("empirical good fraction = %v, want ~%v", frac, want)
	}
}

func TestMarkovDeterministicAcrossSameSeed(t *testing.T) {
	cfg := PaperWAN(3 * time.Second)
	a := mustMarkov(t, cfg, 99)
	b := mustMarkov(t, cfg, 99)
	for ts := time.Duration(0); ts < 100*time.Second; ts += 137 * time.Millisecond {
		if a.StateAt(ts) != b.StateAt(ts) {
			t.Fatalf("same-seed channels diverged at %v", ts)
		}
	}
}

func TestQueriesOutOfOrderConsistent(t *testing.T) {
	cfg := PaperWAN(2 * time.Second)
	m := mustMarkov(t, cfg, 3)
	// Query far future first, then earlier times; answers must agree with
	// a fresh channel queried in order.
	fresh := mustMarkov(t, cfg, 3)
	farState := m.StateAt(500 * time.Second)
	for ts := time.Duration(0); ts <= 500*time.Second; ts += time.Second {
		if m.StateAt(ts) != fresh.StateAt(ts) {
			t.Fatalf("out-of-order query changed timeline at %v", ts)
		}
	}
	if farState != fresh.StateAt(500*time.Second) {
		t.Error("far-future state inconsistent")
	}
}

func TestZeroBadPeriodNeverBad(t *testing.T) {
	cfg := Config{GoodBER: 1e-6, BadBER: 1e-2, MeanGood: time.Second, MeanBad: 0}
	m := mustMarkov(t, cfg, 5)
	for ts := time.Duration(0); ts < 100*time.Second; ts += 100 * time.Millisecond {
		if m.StateAt(ts) != Good {
			t.Fatalf("channel with zero bad period entered bad state at %v", ts)
		}
	}
}

func TestPerfectChannel(t *testing.T) {
	var c Channel = Perfect{}
	if c.StateAt(time.Hour) != Good {
		t.Error("Perfect channel not always good")
	}
	if c.ExpectedBitErrors(0, time.Hour, 1<<40) != 0 {
		t.Error("Perfect channel reported errors")
	}
}

func TestStateString(t *testing.T) {
	if Good.String() != "good" || Bad.String() != "bad" {
		t.Error("state names wrong")
	}
	if State(9).String() == "" {
		t.Error("unknown state should still render")
	}
}

// Property: expected bit errors are additive over adjacent intervals when
// bits are split proportionally, and bounded by BadBER*bits.
func TestPropertyErrorMeanAdditiveAndBounded(t *testing.T) {
	cfg := PaperWAN(2 * time.Second)
	m := mustMarkov(t, cfg, 11)
	f := func(startMs, lenMs uint16, bitsRaw uint16) bool {
		start := time.Duration(startMs) * time.Millisecond
		length := time.Duration(lenMs%5000+2) * time.Millisecond
		bits := int64(bitsRaw) + 2
		end := start + length
		mid := start + length/2
		whole := m.ExpectedBitErrors(start, end, bits)
		// Split bits in proportion to sub-interval length.
		bitsA := float64(bits) * float64(mid-start) / float64(length)
		bitsB := float64(bits) - bitsA
		partA := m.ExpectedBitErrors(start, mid, int64(bitsA))
		partB := m.ExpectedBitErrors(mid, end, int64(bitsB))
		// Integer truncation of split bits loses at most 2 bits' worth.
		slack := 2 * cfg.BadBER
		if partA+partB > whole+slack {
			return false
		}
		return whole <= cfg.BadBER*float64(bits)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: StateAt is piecewise constant — two queries inside the same
// reported interval agree.
func TestPropertyPiecewiseConstant(t *testing.T) {
	cfg := PaperWAN(2 * time.Second)
	m := mustMarkov(t, cfg, 13)
	ivs := m.Intervals(1000 * time.Second)
	for i := 0; i+1 < len(ivs); i++ {
		lo, hi := ivs[i].Start, ivs[i+1].Start
		mid := lo + (hi-lo)/2
		if m.StateAt(lo) != ivs[i].State || m.StateAt(mid) != ivs[i].State {
			t.Fatalf("interval %d not piecewise constant", i)
		}
	}
}
