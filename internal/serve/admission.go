package serve

import (
	"context"
	"errors"
)

// Admission control: a fixed number of run slots (requests actually
// executing on the engine) fronted by a bounded wait queue. A request
// that cannot even get a queue position is rejected immediately with
// 429 — the queue never grows with offered load, so a request storm
// costs attackers connections, not server memory, and every rejection
// carries a Retry-After derived from the live median run time. This is
// the PR-5 budget idea applied to the service layer: capacity is an
// explicit budget, exhausting it is a first-class, well-shaped answer.

// errBusy is returned when both the slots and the wait queue are full.
var errBusy = errors.New("serve: all run slots and queue positions busy")

type admission struct {
	slots chan struct{}
	queue chan struct{}
}

func newAdmission(slots, queueDepth int) *admission {
	return &admission{
		slots: make(chan struct{}, slots),
		queue: make(chan struct{}, queueDepth),
	}
}

// acquire claims a run slot, waiting in the bounded queue if none is
// free. It returns the release function, errBusy when the queue is
// also full, or ctx.Err() when the context ends while queued (drain,
// shutdown). bypassQueue admits journaled work being resumed at
// startup: it was already accepted in a previous life, so it waits for
// a slot without competing for — or being bounced by — a queue
// position.
func (a *admission) acquire(ctx context.Context, bypassQueue bool) (release func(), err error) {
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	default:
	}
	if !bypassQueue {
		select {
		case a.queue <- struct{}{}:
			defer func() { <-a.queue }()
		default:
			return nil, errBusy
		}
	}
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// inFlight reports how many slots are held right now.
func (a *admission) inFlight() int { return len(a.slots) }

// queued reports how many requests are waiting for a slot.
func (a *admission) queued() int { return len(a.queue) }

// slotCount reports the slot capacity.
func (a *admission) slotCount() int { return cap(a.slots) }
