package sim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// errInjected is the sentinel violation used by check-driven tests.
var errInjected = errors.New("injected violation")

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(3*time.Second, func() { got = append(got, 3) })
	s.Schedule(1*time.Second, func() { got = append(got, 1) })
	s.Schedule(2*time.Second, func() { got = append(got, 2) })
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	want := []int{1, 2, 3}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", s.Now())
	}
}

func TestFIFOWithinSameInstant(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(-time.Second, func() { fired = true })
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if !fired {
		t.Error("negative-delay event did not fire")
	}
	if s.Now() != 0 {
		t.Errorf("Now = %v, want 0", s.Now())
	}
}

func TestScheduleAt(t *testing.T) {
	s := New()
	var at time.Duration
	s.Schedule(time.Second, func() {
		s.ScheduleAt(5*time.Second, func() { at = s.Now() })
	})
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if at != 5*time.Second {
		t.Errorf("absolute event fired at %v, want 5s", at)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	ev := s.Schedule(time.Second, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("event not pending after Schedule")
	}
	s.Cancel(ev)
	if ev.Pending() {
		t.Fatal("event pending after Cancel")
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	// Double-cancel and zero-handle cancel are no-ops.
	s.Cancel(ev)
	s.Cancel(Event{})
}

func TestCancelMiddleOfQueue(t *testing.T) {
	s := New()
	var got []int
	var evs []Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, s.Schedule(time.Duration(i)*time.Second, func() { got = append(got, i) }))
	}
	for i := 0; i < 20; i += 2 {
		s.Cancel(evs[i])
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("fired %d events, want 10", len(got))
	}
	for idx, v := range got {
		if v%2 == 0 {
			t.Errorf("cancelled event %d fired", v)
		}
		if idx > 0 && got[idx-1] > v {
			t.Errorf("out of order after cancels: %v", got)
		}
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New()
	fired := 0
	s.Schedule(1*time.Second, func() { fired++ })
	s.Schedule(2*time.Second, func() { fired++ })
	s.Schedule(3*time.Second, func() { fired++ })
	if err := s.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (event at horizon inclusive)", fired)
	}
	if s.Now() != 2*time.Second {
		t.Errorf("Now = %v, want horizon 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
	// Resuming runs the remainder.
	if err := s.RunAll(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if fired != 3 {
		t.Errorf("fired = %d after resume, want 3", fired)
	}
}

func TestRunAdvancesClockToHorizonWhenIdle(t *testing.T) {
	s := New()
	if err := s.Run(7 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Now() != 7*time.Second {
		t.Errorf("Now = %v, want 7s", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	fired := 0
	s.Schedule(1*time.Second, func() {
		fired++
		s.Stop()
	})
	s.Schedule(2*time.Second, func() { fired++ })
	if err := s.RunAll(); err != ErrStopped {
		t.Fatalf("RunAll = %v, want ErrStopped", err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	// A fresh Run clears the stop flag.
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll after stop: %v", err)
	}
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}

func TestStep(t *testing.T) {
	s := New()
	fired := 0
	s.Schedule(time.Second, func() { fired++ })
	ok, err := s.Step()
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if !ok {
		t.Fatal("Step returned false with a pending event")
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	ok, err = s.Step()
	if err != nil {
		t.Fatalf("Step on empty queue: %v", err)
	}
	if ok {
		t.Error("Step returned true on empty queue")
	}
}

// TestStepHonorsStop verifies the parity between Step and Run: once Stop
// halts the simulation (directly or via a failed check), Step refuses to
// execute further events and surfaces the halt as an error, exactly like
// Run would.
func TestStepHonorsStop(t *testing.T) {
	s := New()
	fired := 0
	s.Schedule(time.Second, func() { fired++; s.Stop() })
	s.Schedule(2*time.Second, func() { fired++ })
	if ok, err := s.Step(); !ok || err != nil {
		t.Fatalf("first Step = (%v, %v), want (true, nil)", ok, err)
	}
	ok, err := s.Step()
	if ok {
		t.Fatal("Step executed an event after Stop")
	}
	if err != ErrStopped {
		t.Fatalf("Step after Stop returned %v, want ErrStopped", err)
	}
	if fired != 1 {
		t.Errorf("fired = %d after Stop, want 1", fired)
	}
	// Run clears the stop, and Step works again afterwards.
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll after stop: %v", err)
	}
	if fired != 2 {
		t.Errorf("fired = %d after resume, want 2", fired)
	}
}

// TestStepSurfacesCheckFailure: a failed invariant check stops the
// simulator, and Step reports the recorded *CheckError instead of
// silently executing past it (the bug this test pins down: Step used to
// skip the stopped check entirely).
func TestStepSurfacesCheckFailure(t *testing.T) {
	s := New()
	bad := false
	s.AddCheck("bad", func() error {
		if bad {
			return errInjected
		}
		return nil
	})
	s.EnableChecks(time.Second)
	fired := 0
	s.Schedule(500*time.Millisecond, func() { fired++; bad = true })
	s.Schedule(1500*time.Millisecond, func() { fired++ })
	for {
		ok, err := s.Step()
		if err != nil {
			var ce *CheckError
			if !errors.As(err, &ce) {
				t.Fatalf("Step error = %v, want *CheckError", err)
			}
			break
		}
		if !ok {
			t.Fatal("queue drained without surfacing the check failure")
		}
	}
	if fired != 1 {
		t.Errorf("fired = %d events, want 1 (the one before the failed check)", fired)
	}
	if s.Failure() == nil {
		t.Error("Failure() is nil after a failed check")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := New()
	var times []time.Duration
	var chain func(depth int)
	chain = func(depth int) {
		times = append(times, s.Now())
		if depth < 5 {
			s.Schedule(time.Second, func() { chain(depth + 1) })
		}
	}
	s.Schedule(0, func() { chain(0) })
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(times) != 6 {
		t.Fatalf("chain fired %d times, want 6", len(times))
	}
	for i, at := range times {
		if want := time.Duration(i) * time.Second; at != want {
			t.Errorf("chain[%d] at %v, want %v", i, at, want)
		}
	}
}

// TestPropertyOrdering is a property-based check: for any set of delays,
// events fire in nondecreasing time order and the clock never goes
// backwards.
func TestPropertyOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var fireTimes []time.Duration
		for _, d := range delays {
			s.Schedule(time.Duration(d)*time.Millisecond, func() {
				fireTimes = append(fireTimes, s.Now())
			})
		}
		if err := s.RunAll(); err != nil {
			return false
		}
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCancelSubset: cancelling any subset of events leaves exactly
// the complement firing, still in order.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(delays []uint16, mask []bool) bool {
		s := New()
		fired := make(map[int]bool)
		evs := make([]Event, len(delays))
		for i, d := range delays {
			i := i
			evs[i] = s.Schedule(time.Duration(d)*time.Millisecond, func() { fired[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := range evs {
			if i < len(mask) && mask[i] {
				s.Cancel(evs[i])
				cancelled[i] = true
			}
		}
		if err := s.RunAll(); err != nil {
			return false
		}
		for i := range delays {
			if cancelled[i] == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTimerSetReplacesDeadline(t *testing.T) {
	s := New()
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	tm.Set(5 * time.Second)
	tm.Set(1 * time.Second) // replaces, does not add
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if s.Now() != time.Second {
		t.Errorf("fired at %v, want 1s", s.Now())
	}
	if tm.Sets() != 2 {
		t.Errorf("Sets = %d, want 2", tm.Sets())
	}
}

func TestTimerStop(t *testing.T) {
	s := New()
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	tm.Set(time.Second)
	if !tm.Pending() {
		t.Fatal("timer not pending after Set")
	}
	if tm.Deadline() != time.Second {
		t.Errorf("Deadline = %v, want 1s", tm.Deadline())
	}
	tm.Stop()
	if tm.Pending() {
		t.Fatal("timer pending after Stop")
	}
	if tm.Deadline() >= 0 {
		t.Errorf("Deadline = %v for idle timer, want negative", tm.Deadline())
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if fired != 0 {
		t.Errorf("stopped timer fired %d times", fired)
	}
	tm.Stop() // idempotent
}

func TestTimerRestartAfterFire(t *testing.T) {
	s := New()
	fired := 0
	var tm *Timer
	tm = NewTimer(s, func() {
		fired++
		if fired < 3 {
			tm.Set(time.Second)
		}
	})
	tm.Set(time.Second)
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if fired != 3 {
		t.Errorf("fired = %d, want 3", fired)
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", s.Now())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a42 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a42.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// Drawing from the child must not affect the parent's future stream
	// relative to a parent that split but never used the child.
	parent2 := NewRNG(7)
	_ = parent2.Split()
	for i := 0; i < 50; i++ {
		child.Float64()
	}
	for i := 0; i < 50; i++ {
		if parent.Float64() != parent2.Float64() {
			t.Fatal("child draws perturbed parent stream")
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(1)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Exp(2.5)
	}
	mean := sum / n
	if mean < 2.45 || mean > 2.55 {
		t.Errorf("Exp(2.5) empirical mean = %v", mean)
	}
	if g.Exp(0) != 0 || g.Exp(-1) != 0 {
		t.Error("non-positive mean should return 0")
	}
}

func TestRNGBernoulliEdges(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 100; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if g.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !g.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestRNGBernoulliRate(t *testing.T) {
	g := NewRNG(9)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.29 || rate > 0.31 {
		t.Errorf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestPoissonAtLeastOne(t *testing.T) {
	g := NewRNG(5)
	if g.PoissonAtLeastOne(0) {
		t.Error("mean 0 should never report errors")
	}
	if g.PoissonAtLeastOne(-1) {
		t.Error("negative mean should never report errors")
	}
	// mean 20: probability 1-e^-20 ~ 1; should essentially always be true.
	for i := 0; i < 1000; i++ {
		if !g.PoissonAtLeastOne(20) {
			t.Fatal("mean 20 reported no errors (p ~ 2e-9)")
		}
	}
	// mean 0.1: empirical rate should track 1-e^-0.1 ~ 0.0952.
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if g.PoissonAtLeastOne(0.1) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.090 || rate > 0.100 {
		t.Errorf("P(N>=1 | mean 0.1) = %v, want ~0.0952", rate)
	}
}

func TestSimulatorString(t *testing.T) {
	s := New()
	s.Schedule(time.Second, func() {})
	if got := s.String(); got == "" {
		t.Error("empty String()")
	}
}

// TestManyEventsStress exercises heap behaviour with a large random
// workload including interleaved cancels.
func TestManyEventsStress(t *testing.T) {
	s := New()
	r := rand.New(rand.NewSource(3))
	var last time.Duration
	ok := true
	var evs []Event
	for i := 0; i < 5000; i++ {
		d := time.Duration(r.Intn(10000)) * time.Millisecond
		evs = append(evs, s.Schedule(d, func() {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		}))
	}
	for i := 0; i < 1000; i++ {
		s.Cancel(evs[r.Intn(len(evs))])
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if !ok {
		t.Error("clock went backwards under stress")
	}
}
