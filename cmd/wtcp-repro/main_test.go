package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/chaos"
	"wtcp/internal/core"
	"wtcp/internal/repro"
	"wtcp/internal/units"
)

// writeWedgedBundle captures a watchdog failure (forward wired hop dead
// for the whole horizon) and saves its bundle, returning the path.
func writeWedgedBundle(t *testing.T) string {
	t.Helper()
	cfg := core.WAN(bs.Basic, 576, 2*time.Second)
	cfg.TransferSize = 30 * units.KB
	cfg.Stall = 2 * time.Minute
	cfg.Horizon = 30 * time.Minute
	cfg.Chaos = &chaos.Config{
		Blackouts: []chaos.Blackout{
			{Link: chaos.WiredFwd, At: 0, Length: 4 * time.Hour},
			{Link: chaos.WirelessUp, At: 5 * time.Second, Length: time.Second}, // removable decoy
		},
	}
	res, err := core.Run(cfg)
	b := repro.Capture(cfg, res, err)
	if b == nil {
		t.Fatal("wedged scenario did not fail")
	}
	b.Origin = "test/wedged rep 1"
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReplayReproduces(t *testing.T) {
	path := writeWedgedBundle(t)
	var out strings.Builder
	code, err := run(context.Background(), []string{"-bundle", path}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (reproduced)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "reproduced: [watchdog]") {
		t.Errorf("output missing reproduction verdict:\n%s", out.String())
	}
}

func TestShrinkWritesMinimizedBundle(t *testing.T) {
	path := writeWedgedBundle(t)
	minPath := filepath.Join(t.TempDir(), "min.json")
	var out strings.Builder
	code, err := run(context.Background(),
		[]string{"-bundle", path, "-shrink", "-replays", "40", "-out", minPath}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	min, err := repro.Load(minPath)
	if err != nil {
		t.Fatalf("minimized bundle unreadable: %v", err)
	}
	orig, err := repro.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Config.Chaos.Blackouts) >= len(orig.Config.Chaos.Blackouts) {
		t.Errorf("shrink removed no faults: %d vs %d blackouts",
			len(min.Config.Chaos.Blackouts), len(orig.Config.Chaos.Blackouts))
	}
	if min.Config.TransferSize >= orig.Config.TransferSize {
		t.Errorf("shrink did not reduce the transfer: %v vs %v",
			min.Config.TransferSize, orig.Config.TransferSize)
	}
	// The minimized scenario must still reproduce on its own.
	o, err := repro.Replay(context.Background(), min)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Matches(orig) {
		t.Errorf("minimized bundle no longer reproduces: %+v", o)
	}
}

func TestJSONOutput(t *testing.T) {
	path := writeWedgedBundle(t)
	var out strings.Builder
	code, err := run(context.Background(), []string{"-bundle", path, "-json"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v\n%s", code, err, out.String())
	}
	for _, want := range []string{`"reproduced": true`, `"want_kind": "watchdog"`, `"got_kind": "watchdog"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("JSON output missing %s:\n%s", want, out.String())
		}
	}
}

func TestMissingBundleFlag(t *testing.T) {
	var out strings.Builder
	if _, err := run(context.Background(), nil, &out); err == nil {
		t.Error("missing -bundle accepted")
	}
}

func TestNotReproducedExitsTwo(t *testing.T) {
	path := writeWedgedBundle(t)
	b, err := repro.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Heal the scenario: drop the wedging blackout. The recorded failure
	// must then fail to reproduce.
	b.Config.Chaos = nil
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run(context.Background(), []string{"-bundle", path}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 2 {
		t.Errorf("exit code = %d, want 2 (not reproduced)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "NOT reproduced") {
		t.Errorf("output missing NOT-reproduced verdict:\n%s", out.String())
	}
}
