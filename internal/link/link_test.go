package link

import (
	"testing"
	"time"

	"wtcp/internal/errmodel"
	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

func mkData(id uint64, payload units.ByteSize) *packet.Packet {
	return &packet.Packet{ID: id, Kind: packet.Data, Payload: payload}
}

func TestConfigValidation(t *testing.T) {
	s := sim.New()
	deliver := func(*packet.Packet) {}
	tests := []struct {
		name    string
		cfg     Config
		rng     *sim.RNG
		deliver func(*packet.Packet)
		wantErr bool
	}{
		{"valid wired", WiredWAN(50 * time.Millisecond), nil, deliver, false},
		{"zero rate", Config{}, nil, deliver, true},
		{"negative delay", Config{Rate: units.Kbps, Delay: -1}, nil, deliver, true},
		{"negative overhead", Config{Rate: units.Kbps, Overhead: -1}, nil, deliver, true},
		{"nil deliver", WiredWAN(0), nil, nil, true},
		{"channel without rng", WirelessWAN(0, errmodel.Perfect{}), nil, deliver, true},
		{"channel with rng", WirelessWAN(0, errmodel.Perfect{}), sim.NewRNG(1), deliver, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(s, tt.cfg, tt.rng, tt.deliver)
			if (err != nil) != tt.wantErr {
				t.Errorf("New() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestDeliveryTiming(t *testing.T) {
	s := sim.New()
	var deliveredAt time.Duration
	cfg := Config{Name: "t", Rate: 8 * units.Kbps, Delay: 100 * time.Millisecond}
	l, err := New(s, cfg, nil, func(*packet.Packet) { deliveredAt = s.Now() })
	if err != nil {
		t.Fatal(err)
	}
	// 1024-byte packet (payload 984 + 40 header) at 8 kbps = 1.024 s + 0.1 s.
	l.Send(mkData(1, 984))
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := 1024*time.Millisecond + 100*time.Millisecond
	if deliveredAt != want {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestSerializationFIFO(t *testing.T) {
	s := sim.New()
	var ids []uint64
	var times []time.Duration
	cfg := Config{Rate: 8 * units.Kbps, Delay: 0}
	l, err := New(s, cfg, nil, func(p *packet.Packet) {
		ids = append(ids, p.ID)
		times = append(times, s.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three packets sent back to back serialize one after another.
	for i := uint64(1); i <= 3; i++ {
		l.Send(mkData(i, 984)) // 1.024s each
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("delivered %d, want 3", len(ids))
	}
	for i, id := range ids {
		if id != uint64(i+1) {
			t.Errorf("order %v, want 1,2,3", ids)
		}
	}
	unit := 1024 * time.Millisecond
	for i, at := range times {
		want := time.Duration(i+1) * unit
		if at != want {
			t.Errorf("packet %d delivered at %v, want %v", i+1, at, want)
		}
	}
}

func TestOverheadStretchesTxTime(t *testing.T) {
	s := sim.New()
	cfg := WirelessWAN(0, errmodel.Perfect{})
	l, err := New(s, cfg, sim.NewRNG(1), func(*packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	// 128 network bytes -> 192 on-air bytes at 19.2 kbps = 80 ms.
	got := l.TxTime(128)
	want := 80 * time.Millisecond
	if diff := got - want; diff > time.Millisecond || diff < -time.Millisecond {
		t.Errorf("TxTime(128) = %v, want %v", got, want)
	}
}

func TestEffectiveWANRateIs12_8Kbps(t *testing.T) {
	// The paper's claim: 19.2 kbps raw with 1.5x overhead = 12.8 kbps
	// effective. Send 100 KB worth of 128-byte units and check elapsed.
	s := sim.New()
	var last time.Duration
	cfg := WirelessWAN(0, errmodel.Perfect{})
	l, err := New(s, cfg, sim.NewRNG(1), func(*packet.Packet) { last = s.Now() })
	if err != nil {
		t.Fatal(err)
	}
	const n = 800 // 800 * 128B = 100 KB
	for i := 0; i < n; i++ {
		l.Send(&packet.Packet{ID: uint64(i), Kind: packet.Fragment, Payload: 128})
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	kbps := units.ThroughputKbps(100*units.KB, last)
	if kbps < 12.7 || kbps > 12.9 {
		t.Errorf("effective rate = %.2f kbps, want 12.8", kbps)
	}
}

func TestQueueDropTail(t *testing.T) {
	s := sim.New()
	cfg := Config{Rate: units.Kbps, QueueLimit: 2}
	var dropped []uint64
	l, err := New(s, cfg, nil, func(*packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	l.SetDropHook(func(p *packet.Packet) { dropped = append(dropped, p.ID) })
	// First send goes straight to the transmitter; next two queue; the
	// fourth and fifth are tail-dropped.
	for i := uint64(1); i <= 5; i++ {
		l.Send(mkData(i, 10))
	}
	if got := l.Stats().QueueDrops; got != 2 {
		t.Errorf("QueueDrops = %d, want 2", got)
	}
	if len(dropped) != 2 || dropped[0] != 4 || dropped[1] != 5 {
		t.Errorf("dropped IDs = %v, want [4 5]", dropped)
	}
}

func TestCorruptionInBadState(t *testing.T) {
	// Deterministic channel, transmission entirely inside the bad period:
	// a 128-byte fragment has 1536 on-air bits, mean errors 15.36,
	// P(corrupt) ~ 1 - 2e-7. All 50 sends during the bad state should be
	// corrupted.
	s := sim.New()
	cfg := errmodel.PaperWAN(4 * time.Second)
	cfg.Deterministic = true
	ch, err := errmodel.NewMarkov(cfg, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	l, err := New(s, WirelessWAN(0, ch), sim.NewRNG(3), func(*packet.Packet) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	s.Schedule(10500*time.Millisecond, func() {
		for i := 0; i < 40; i++ { // 40 * 80ms = 3.2s, inside 10s-14s bad period
			l.Send(&packet.Packet{ID: uint64(i), Kind: packet.Fragment, Payload: 128})
		}
	})
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Errorf("%d fragments survived the bad state (p ~ 1e-6 each)", delivered)
	}
	if got := l.Stats().Corrupted; got != 40 {
		t.Errorf("Corrupted = %d, want 40", got)
	}
}

func TestMostlyCleanInGoodState(t *testing.T) {
	// Good-state BER 1e-6 on 1536 on-air bits: P(corrupt) ~ 0.0015.
	// 100 sends should essentially all survive.
	s := sim.New()
	cfg := errmodel.PaperWAN(time.Second)
	cfg.Deterministic = true
	cfg.MeanGood = time.Hour // never leave good state
	ch, err := errmodel.NewMarkov(cfg, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	l, err := New(s, WirelessWAN(0, ch), sim.NewRNG(3), func(*packet.Packet) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		l.Send(&packet.Packet{ID: uint64(i), Kind: packet.Fragment, Payload: 128})
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered < 98 {
		t.Errorf("only %d/100 delivered in good state", delivered)
	}
}

func TestStatsCounters(t *testing.T) {
	s := sim.New()
	l, err := New(s, Config{Rate: units.Mbps}, nil, func(*packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	l.Send(mkData(1, 60)) // 100 bytes on wire
	l.Send(mkData(2, 60))
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Sent != 2 || st.Delivered != 2 || st.Corrupted != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesSent != 200 || st.BytesDelivered != 200 {
		t.Errorf("byte stats = %+v", st)
	}
}

func TestBusyAndQueueLen(t *testing.T) {
	s := sim.New()
	l, err := New(s, Config{Rate: units.Kbps}, nil, func(*packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	if l.Busy() {
		t.Error("new link busy")
	}
	l.Send(mkData(1, 85)) // 1s tx
	l.Send(mkData(2, 85))
	if !l.Busy() {
		t.Error("link not busy after send")
	}
	if l.QueueLen() != 1 {
		t.Errorf("QueueLen = %d, want 1", l.QueueLen())
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if l.Busy() || l.QueueLen() != 0 {
		t.Error("link not idle after drain")
	}
}

func TestPresets(t *testing.T) {
	if WiredWAN(0).Rate != 56*units.Kbps {
		t.Error("WiredWAN rate")
	}
	if WirelessWAN(0, nil).Rate != 19200 {
		t.Error("WirelessWAN rate")
	}
	if WirelessWAN(0, nil).Overhead != 1.5 {
		t.Error("WirelessWAN overhead")
	}
	if WiredLAN(0).Rate != 10*units.Mbps {
		t.Error("WiredLAN rate")
	}
	if WirelessLAN(0, nil).Rate != 2*units.Mbps {
		t.Error("WirelessLAN rate")
	}
	if WirelessLAN(0, nil).Overhead != 0 { // 0 means 1.0 at construction
		t.Error("WirelessLAN overhead should default")
	}
}

func TestNameAndDelayAccessors(t *testing.T) {
	s := sim.New()
	l, err := New(s, Config{Name: "up", Rate: units.Kbps, Delay: 7 * time.Millisecond}, nil, func(*packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "up" {
		t.Error("Name")
	}
	if l.Delay() != 7*time.Millisecond {
		t.Error("Delay")
	}
	if l.RTT() != 14*time.Millisecond {
		t.Error("RTT")
	}
}
