// Command wtcp-conformance is the golden-trace regression gate: it
// replays a fixed set of canonical scenarios with the conformance oracle
// armed, renders each run's event trace in the stable golden encoding
// (internal/trace), and diffs the result against the committed golden
// files. Any drift — a reordered event, a changed congestion-window
// value, a shifted timestamp beyond tolerance — fails the gate with the
// first divergent event.
//
// Usage:
//
//	wtcp-conformance                 # compare against committed goldens
//	wtcp-conformance -update         # regenerate the goldens
//	wtcp-conformance -dir path/to/goldens
//
// Regenerate deliberately (make goldens) after a change that is supposed
// to alter protocol behaviour, and review the golden diff like code.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
	"wtcp/internal/tcp"
	"wtcp/internal/trace"
	"wtcp/internal/units"
)

// scenario is one canonical run. The set spans both paper environments
// and both instrumentation surfaces: sender-only traces (basic) and the
// full ARQ/notification stream (local recovery, EBSN).
type scenario struct {
	name  string
	build func() core.Config
}

// scenarios are replayed in order; each produces <name>.golden.
var scenarios = []scenario{
	{"wan-basic", func() core.Config {
		cfg := core.WAN(bs.Basic, 576, 2*time.Second)
		cfg.TransferSize = 20 * units.KB
		return cfg
	}},
	{"wan-ebsn", func() core.Config {
		cfg := core.WAN(bs.EBSN, 576, 2*time.Second)
		cfg.TransferSize = 20 * units.KB
		return cfg
	}},
	{"lan-local", func() core.Config {
		cfg := core.LAN(bs.LocalRecovery, 800*time.Millisecond)
		cfg.TransferSize = 128 * units.KB
		return cfg
	}},
	{"lan-ebsn", func() core.Config {
		cfg := core.LAN(bs.EBSN, 800*time.Millisecond)
		cfg.TransferSize = 128 * units.KB
		return cfg
	}},

	// Protocol zoo: one golden per sender variant on the canonical WAN
	// and LAN channels, plus the Snoop and split-connection topologies.
	// Each runs under its own variant's conformance profile.
	{"wan-reno", func() core.Config {
		cfg := core.WAN(bs.Basic, 576, 2*time.Second)
		cfg.TransferSize = 20 * units.KB
		cfg.Variant = tcp.Reno
		return cfg
	}},
	{"wan-newreno", func() core.Config {
		cfg := core.WAN(bs.Basic, 576, 2*time.Second)
		cfg.TransferSize = 20 * units.KB
		cfg.Variant = tcp.NewReno
		return cfg
	}},
	{"wan-sack", func() core.Config {
		cfg := core.WAN(bs.Basic, 576, 2*time.Second)
		cfg.TransferSize = 20 * units.KB
		cfg.Variant = tcp.SACKVariant
		return cfg
	}},
	{"wan-snoop", func() core.Config {
		cfg := core.WAN(bs.Snoop, 576, 2*time.Second)
		cfg.TransferSize = 20 * units.KB
		return cfg
	}},
	{"wan-split", func() core.Config {
		cfg := core.WAN(bs.SplitConnection, 576, 2*time.Second)
		cfg.TransferSize = 20 * units.KB
		return cfg
	}},
	{"lan-reno", func() core.Config {
		cfg := core.LAN(bs.Basic, 800*time.Millisecond)
		cfg.TransferSize = 128 * units.KB
		cfg.Variant = tcp.Reno
		return cfg
	}},
	{"lan-newreno", func() core.Config {
		cfg := core.LAN(bs.Basic, 800*time.Millisecond)
		cfg.TransferSize = 128 * units.KB
		cfg.Variant = tcp.NewReno
		return cfg
	}},
	{"lan-sack", func() core.Config {
		cfg := core.LAN(bs.Basic, 800*time.Millisecond)
		cfg.TransferSize = 128 * units.KB
		cfg.Variant = tcp.SACKVariant
		return cfg
	}},
	{"lan-snoop", func() core.Config {
		cfg := core.LAN(bs.Snoop, 800*time.Millisecond)
		cfg.TransferSize = 128 * units.KB
		return cfg
	}},
	{"lan-split", func() core.Config {
		cfg := core.LAN(bs.SplitConnection, 800*time.Millisecond)
		cfg.TransferSize = 128 * units.KB
		return cfg
	}},
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wtcp-conformance:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wtcp-conformance", flag.ContinueOnError)
	var (
		dir    = fs.String("dir", "testdata/goldens", "golden directory (make goldens passes the repo-rooted path)")
		update = fs.Bool("update", false, "rewrite the goldens from fresh runs instead of comparing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *update {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return err
		}
	}
	failed := 0
	for _, sc := range scenarios {
		if err := runScenario(sc, *dir, *update); err != nil {
			var drift *driftError
			if !errors.As(err, &drift) {
				return fmt.Errorf("%s: %w", sc.name, err)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", sc.name, err)
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios drifted from their goldens (rerun with -update if the change is intended, and review the golden diff)", failed, len(scenarios))
	}
	return nil
}

// driftError marks a golden mismatch (as opposed to a run or IO failure),
// so the gate reports every drifted scenario before failing.
type driftError struct{ msg string }

func (e *driftError) Error() string { return e.msg }

// runScenario replays one scenario and updates or checks its golden.
func runScenario(sc scenario, dir string, update bool) error {
	cfg := sc.build()
	cfg.CollectTrace = true
	cfg.Oracle = true // goldens must be born conformant
	res, err := core.Run(cfg)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if !res.Completed {
		return fmt.Errorf("transfer did not complete (horizon %v)", cfg.Horizon)
	}
	encoded := res.Trace.Encode()
	path := filepath.Join(dir, sc.name+".golden")

	if update {
		if err := os.WriteFile(path, []byte(encoded), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events)\n", path, res.Trace.Count(trace.Send)+res.Trace.Count(trace.Retransmit))
		return nil
	}

	want, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("missing golden (run with -update to create it): %w", err)
	}
	if string(want) == encoded {
		fmt.Printf("%s: ok\n", sc.name)
		return nil
	}
	// The bytes drifted; decode both sides for an event-level diff. The
	// fresh events are normalized to the encoding's microsecond grid so
	// the comparison sees real divergence, not rounding.
	_, wantEvents, derr := trace.DecodeEvents(string(want))
	if derr != nil {
		return &driftError{fmt.Sprintf("golden is unreadable (%v); regenerate with -update", derr)}
	}
	got := trace.NormalizeEvents(res.Trace.Events())
	if d := trace.DiffEvents(wantEvents, got, 0); d != nil {
		return &driftError{fmt.Sprintf("trace drifted: %v (golden has %d events, run has %d)", d, len(wantEvents), len(got))}
	}
	return &driftError{"encoding drifted with no event-level divergence (header or formatting change); regenerate with -update"}
}
