package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/chaos"
	"wtcp/internal/units"
)

// chaosPlan is the acceptance scenario: a base-station crash, EBSN
// notification loss, and a wireless blackout, composed on one run.
func chaosPlan() *chaos.Config {
	return &chaos.Config{
		Blackouts: []chaos.Blackout{{Link: chaos.WirelessDown, At: 10 * time.Second, Length: 3 * time.Second}},
		Crashes:   []chaos.Crash{{At: 25 * time.Second, Downtime: 2 * time.Second}},
		Notify:    chaos.NotifyFaults{LossProb: 0.5},
	}
}

func chaosConfig(t *testing.T) Config {
	t.Helper()
	cfg := WAN(bs.EBSN, 576, 2*time.Second)
	cfg.TransferSize = 30 * units.KB
	cfg.Chaos = chaosPlan()
	cfg.Checks = true
	cfg.Seed = 7
	return cfg
}

// TestChaosScenarioRunsClean is the acceptance scenario: crash + EBSN
// loss + blackout must either complete or abort cleanly — never panic,
// never violate an invariant.
func TestChaosScenarioRunsClean(t *testing.T) {
	r, err := Run(chaosConfig(t))
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if !r.Completed && !r.Aborted {
		t.Error("run neither completed nor aborted")
	}
	if r.Chaos == nil {
		t.Fatal("chaos counters missing from the result")
	}
	if r.Chaos.Crashes != 1 {
		t.Errorf("Crashes = %d, want 1", r.Chaos.Crashes)
	}
	if r.BS.Crashes != 1 {
		t.Errorf("BS crash counter = %d, want 1", r.BS.Crashes)
	}
}

// TestChaosDeterminism runs the acceptance scenario twice with one seed:
// the results must be bit-identical, faults included.
func TestChaosDeterminism(t *testing.T) {
	a, err := Run(chaosConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(chaosConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n%+v\n%+v", a.Summary, b.Summary)
	}
	// A different seed must change the probabilistic faults' outcome
	// somewhere (throughput, drops, or notification counts).
	cfg := chaosConfig(t)
	cfg.Seed = 8
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Summary, c.Summary) && reflect.DeepEqual(a.Chaos, c.Chaos) {
		t.Error("different seeds produced identical runs; the chaos RNG is not seeded")
	}
}

// TestChaosDoesNotPerturbBaseline: a run with a nil (or empty) fault plan
// must be bit-identical to one with no plan at all — the chaos RNG only
// splits off when faults are enabled.
func TestChaosDoesNotPerturbBaseline(t *testing.T) {
	base := WAN(bs.EBSN, 576, 2*time.Second)
	base.TransferSize = 20 * units.KB
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withEmpty := base
	withEmpty.Chaos = &chaos.Config{}
	b, err := Run(withEmpty)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary || a.Sender != b.Sender {
		t.Error("an empty fault plan changed the run")
	}
}

// TestPaperScenariosPassChecks runs each scheme's paper configuration
// with invariant checking enabled: the protocols must hold every
// invariant for the whole transfer.
func TestPaperScenariosPassChecks(t *testing.T) {
	for _, scheme := range []bs.Scheme{bs.Basic, bs.LocalRecovery, bs.EBSN, bs.SourceQuench, bs.Snoop} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			t.Parallel()
			cfg := WAN(scheme, 576, 2*time.Second)
			cfg.TransferSize = 30 * units.KB
			cfg.Checks = true
			r, err := Run(cfg)
			if err != nil {
				t.Fatalf("invariant violation in a paper scenario: %v", err)
			}
			if !r.Completed {
				t.Error("transfer did not complete")
			}
			if r.Aborted {
				t.Errorf("watchdog aborted a healthy run: %s", r.AbortReason)
			}
		})
	}
}

// TestSplitChecksSupported: split-connection runs support invariant
// checking (chaos is rejected, but checks are not).
func TestSplitChecksSupported(t *testing.T) {
	cfg := WAN(bs.SplitConnection, 576, 2*time.Second)
	cfg.TransferSize = 30 * units.KB
	cfg.Checks = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatalf("split run with checks failed: %v", err)
	}
	if !r.Completed {
		t.Error("split transfer did not complete")
	}
}

func TestChaosRejectedForSplit(t *testing.T) {
	cfg := WAN(bs.SplitConnection, 576, 2*time.Second)
	cfg.Chaos = chaosPlan()
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "split-connection") {
		t.Errorf("split + chaos not rejected: %v", err)
	}
}

// TestWatchdogAbortsWedgedRun: a blackout covering the entire horizon
// leaves the transfer no way to make progress; the watchdog must abort
// with a diagnostic snapshot instead of burning events to the horizon.
func TestWatchdogAbortsWedgedRun(t *testing.T) {
	cfg := WAN(bs.Basic, 576, 2*time.Second)
	cfg.TransferSize = 30 * units.KB
	cfg.Horizon = 2 * time.Hour
	cfg.Stall = 2 * time.Minute
	cfg.Chaos = &chaos.Config{
		Blackouts: []chaos.Blackout{
			{Link: chaos.WiredFwd, At: 0, Length: 2 * time.Hour},
		},
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatalf("wedged run returned an error instead of an abort: %v", err)
	}
	if !r.Aborted {
		t.Fatal("watchdog did not abort a run with a dead forward link")
	}
	if r.Completed {
		t.Error("aborted run claims completion")
	}
	if !strings.Contains(r.AbortReason, "watchdog") || !strings.Contains(r.AbortReason, "sender") {
		t.Errorf("abort reason lacks the diagnostic snapshot:\n%s", r.AbortReason)
	}
	// The abort must land well before the horizon (that is the point).
	if got := r.Summary.Elapsed; got > 30*time.Minute {
		t.Errorf("abort at %v; watchdog should fire within a few stall windows", got)
	}
}

func TestStallWindowResolution(t *testing.T) {
	base := Config{}
	if got := base.stallWindow(); got != 0 {
		t.Errorf("plain run arms watchdog at %v", got)
	}
	withChecks := Config{Checks: true}
	if got := withChecks.stallWindow(); got != DefaultStall {
		t.Errorf("checks auto-arm = %v, want %v", got, DefaultStall)
	}
	withChaos := Config{Chaos: chaosPlan()}
	if got := withChaos.stallWindow(); got != DefaultStall {
		t.Errorf("chaos auto-arm = %v, want %v", got, DefaultStall)
	}
	explicit := Config{Stall: time.Minute}
	if got := explicit.stallWindow(); got != time.Minute {
		t.Errorf("explicit stall = %v", got)
	}
	disabled := Config{Checks: true, Stall: -1}
	if got := disabled.stallWindow(); got != 0 {
		t.Errorf("disabled stall = %v, want 0", got)
	}
}

// TestBSCrashLosesState: a crash mid-transfer discards ARQ and radio
// queue state; the transfer must still complete after the restart (TCP
// recovers end to end).
func TestBSCrashLosesState(t *testing.T) {
	cfg := WAN(bs.LocalRecovery, 576, 2*time.Second)
	cfg.TransferSize = 30 * units.KB
	cfg.Checks = true
	cfg.Chaos = &chaos.Config{
		Crashes: []chaos.Crash{{At: 15 * time.Second, Downtime: 3 * time.Second}},
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("transfer did not recover from a base-station crash (aborted=%v: %s)", r.Aborted, r.AbortReason)
	}
	if r.BS.Crashes != 1 {
		t.Errorf("BS.Crashes = %d, want 1", r.BS.Crashes)
	}
}

// TestPacketFaultsOnWiredHop: duplication and reordering on the wired
// path exercise TCP's dup-ack machinery; checks stay green and the
// transfer completes.
func TestPacketFaultsOnWiredHop(t *testing.T) {
	cfg := WAN(bs.Basic, 576, 2*time.Second)
	cfg.TransferSize = 30 * units.KB
	cfg.Checks = true
	cfg.Chaos = &chaos.Config{
		Packets: []chaos.PacketFaults{
			{Link: chaos.WiredFwd, CorruptProb: 0.02, DupProb: 0.05, ReorderProb: 0.05, ReorderDelay: 100 * time.Millisecond},
			{Link: chaos.WiredRev, DupProb: 0.05},
		},
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("transfer did not survive wired packet faults (aborted=%v)", r.Aborted)
	}
	if r.Chaos.Duplicates == 0 && r.Chaos.Reorders == 0 && r.Chaos.CorruptDrops == 0 {
		t.Error("no packet faults were injected over a 30 KB transfer")
	}
}
