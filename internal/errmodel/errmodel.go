// Package errmodel implements the paper's wireless-channel error model: a
// two-state Markov (Gilbert) process alternating between a good and a bad
// state, with Poisson-distributed bit errors in each state (mean BER 1e-6
// good, 1e-2 bad in the paper's experiments) and exponentially distributed
// state holding times.
//
// A deterministic variant with fixed holding times reproduces the channel
// used for the paper's Figures 3-5, where the authors "exactly duplicate
// the errors and state transitions" across the three compared schemes.
//
// The model is continuous-time. Links ask the channel for the expected
// number of bit errors over the exact interval a transmission occupies the
// medium; the per-transmission corruption indicator is then Poisson:
// P(corrupted) = 1 - exp(-mean). Integrating across state boundaries means
// a transmission that straddles a good-to-bad transition is corrupted with
// the correct intermediate probability rather than being attributed to a
// single state.
package errmodel

import (
	"errors"
	"fmt"
	"time"

	"wtcp/internal/sim"
)

// State is the channel state.
type State int

// Channel states.
const (
	// Good is the low-BER state.
	Good State = iota + 1
	// Bad is the high-BER (deep fade) state.
	Bad
)

// String names the state for traces.
func (s State) String() string {
	switch s {
	case Good:
		return "good"
	case Bad:
		return "bad"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Channel is a continuous-time error process. Implementations must answer
// queries at arbitrary (including repeated or past) times; the simulation
// never queries beyond the horizon it has reached plus one transmission.
type Channel interface {
	// StateAt reports the channel state at virtual time t.
	StateAt(t time.Duration) State
	// ExpectedBitErrors reports the Poisson mean of bit errors for a
	// transmission of bits total bits occupying the medium over
	// [start, end), with the bits spread uniformly over the interval.
	ExpectedBitErrors(start, end time.Duration, bits int64) float64
}

// Config parameterizes the two-state model. The zero value is invalid; use
// the preset helpers or fill every field.
type Config struct {
	// GoodBER and BadBER are the mean bit error rates in each state.
	GoodBER float64
	BadBER  float64
	// MeanGood and MeanBad are the mean state holding times.
	MeanGood time.Duration
	MeanBad  time.Duration
	// Deterministic selects fixed holding times (exactly MeanGood /
	// MeanBad per visit) instead of exponential draws. Used for the
	// paper's trace figures.
	Deterministic bool
	// Start is the state at time zero. Defaults to Good if unset, as in
	// the paper ("the simulation starts with the wireless link in a good
	// state").
	Start State
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.GoodBER < 0 || c.BadBER < 0:
		return errors.New("errmodel: negative BER")
	case c.GoodBER > 1 || c.BadBER > 1:
		return errors.New("errmodel: BER above 1")
	case c.MeanGood <= 0:
		return errors.New("errmodel: non-positive mean good period")
	case c.MeanBad < 0:
		return errors.New("errmodel: negative mean bad period")
	default:
		return nil
	}
}

// GoodFraction reports the long-run fraction of time the channel spends in
// the good state, MeanGood / (MeanGood + MeanBad). The paper's theoretical
// maximum throughput is tput_max times this fraction.
func (c Config) GoodFraction() float64 {
	total := c.MeanGood + c.MeanBad
	if total <= 0 {
		return 1
	}
	return float64(c.MeanGood) / float64(total)
}

// PaperWAN returns the paper's wide-area channel: BER 1e-6 good / 1e-2
// bad, mean good period 10 s, and the given mean bad period (the paper
// sweeps 1-4 s).
func PaperWAN(meanBad time.Duration) Config {
	return Config{
		GoodBER:  1e-6,
		BadBER:   1e-2,
		MeanGood: 10 * time.Second,
		MeanBad:  meanBad,
		Start:    Good,
	}
}

// PaperLAN returns the paper's local-area channel: mean good period 4 s
// and the given mean bad period (the paper sweeps 0.4-1.6 s).
func PaperLAN(meanBad time.Duration) Config {
	return Config{
		GoodBER:  1e-6,
		BadBER:   1e-2,
		MeanGood: 4 * time.Second,
		MeanBad:  meanBad,
		Start:    Good,
	}
}

// interval is one constant-state stretch of the generated timeline.
type interval struct {
	start time.Duration
	state State
}

// Markov is the stochastic (or deterministic-period) two-state channel. It
// generates its state timeline lazily and caches it, so repeated queries
// over the same horizon are cheap and consistent.
type Markov struct {
	cfg Config
	rng *sim.RNG

	// timeline holds intervals in increasing start order; timeline[0]
	// always starts at 0. horizon is the time up to which the timeline is
	// complete (the next interval's start).
	timeline []interval
	horizon  time.Duration
}

var _ Channel = (*Markov)(nil)

// NewMarkov builds a channel from cfg, drawing holding times from rng
// (ignored when cfg.Deterministic). It returns an error if cfg is invalid.
func NewMarkov(cfg Config, rng *sim.RNG) (*Markov, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Start == 0 {
		cfg.Start = Good
	}
	m := &Markov{cfg: cfg, rng: rng}
	m.timeline = append(m.timeline, interval{start: 0, state: cfg.Start})
	m.horizon = m.draw(cfg.Start)
	return m, nil
}

// draw returns a holding time for the given state.
func (m *Markov) draw(s State) time.Duration {
	mean := m.cfg.MeanGood
	if s == Bad {
		mean = m.cfg.MeanBad
	}
	if m.cfg.Deterministic {
		return mean
	}
	d := time.Duration(m.rng.Exp(float64(mean)))
	if d <= 0 {
		// An exactly-zero draw would stall timeline extension; clamp to
		// one nanosecond of virtual time.
		d = 1
	}
	return d
}

// extendTo generates intervals until the timeline covers t.
func (m *Markov) extendTo(t time.Duration) {
	for m.horizon <= t {
		last := m.timeline[len(m.timeline)-1].state
		next := Good
		if last == Good {
			next = Bad
		}
		// A zero mean bad period degenerates to an always-good channel;
		// skip the empty visit to keep intervals non-empty.
		if next == Bad && m.cfg.MeanBad == 0 {
			m.horizon += m.draw(Good)
			continue
		}
		m.timeline = append(m.timeline, interval{start: m.horizon, state: next})
		m.horizon += m.draw(next)
	}
}

// locate returns the index of the interval containing t.
func (m *Markov) locate(t time.Duration) int {
	if t < 0 {
		t = 0
	}
	m.extendTo(t)
	// Binary search for the last interval starting at or before t.
	lo, hi := 0, len(m.timeline)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.timeline[mid].start <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// StateAt implements Channel.
func (m *Markov) StateAt(t time.Duration) State {
	return m.timeline[m.locate(t)].state
}

// ber returns the bit error rate in state s.
func (m *Markov) ber(s State) float64 {
	if s == Bad {
		return m.cfg.BadBER
	}
	return m.cfg.GoodBER
}

// ExpectedBitErrors implements Channel. The transmission's bits are spread
// uniformly over [start, end); the mean error count integrates the BER
// across every state interval the transmission overlaps.
func (m *Markov) ExpectedBitErrors(start, end time.Duration, bits int64) float64 {
	if bits <= 0 || end <= start {
		// Instantaneous transmissions (degenerate configs) are attributed
		// entirely to the state at start.
		if bits <= 0 {
			return 0
		}
		return m.ber(m.StateAt(start)) * float64(bits)
	}
	if start < 0 {
		start = 0
	}
	m.extendTo(end)
	total := float64(end - start)
	mean := 0.0
	for i := m.locate(start); i < len(m.timeline); i++ {
		iv := m.timeline[i]
		ivEnd := m.horizon
		if i+1 < len(m.timeline) {
			ivEnd = m.timeline[i+1].start
		}
		lo, hi := maxDur(start, iv.start), minDur(end, ivEnd)
		if hi <= lo {
			if iv.start >= end {
				break
			}
			continue
		}
		frac := float64(hi-lo) / total
		mean += m.ber(iv.state) * float64(bits) * frac
	}
	return mean
}

// Intervals returns a copy of the generated timeline up to horizon t, as
// (start, state) pairs. Intended for tests and trace annotation.
func (m *Markov) Intervals(t time.Duration) []struct {
	Start time.Duration
	State State
} {
	m.extendTo(t)
	out := make([]struct {
		Start time.Duration
		State State
	}, 0, len(m.timeline))
	for _, iv := range m.timeline {
		if iv.start > t {
			break
		}
		out = append(out, struct {
			Start time.Duration
			State State
		}{iv.start, iv.state})
	}
	return out
}

// Perfect is an error-free channel, used for theoretical-maximum runs.
type Perfect struct{}

var _ Channel = Perfect{}

// StateAt implements Channel: always Good.
func (Perfect) StateAt(time.Duration) State { return Good }

// ExpectedBitErrors implements Channel: never any errors.
func (Perfect) ExpectedBitErrors(time.Duration, time.Duration, int64) float64 { return 0 }

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
