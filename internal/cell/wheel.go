package cell

import "math/bits"

// wheel is the engine's single retransmission-timer structure: one hashed
// timer wheel replaces the per-sender sim.Timer objects the object-graph
// engines use. Every flow owns exactly one timer index (its RTO timer);
// base stations own one more each (the CSDP poll timer). Arm and cancel
// are O(1) intrusive list operations on preallocated int32 slabs — no
// per-arm heap nodes, which is what keeps a 50k-flow run allocation-free
// while timers re-arm on every ACK.
//
// Deadlines are exact (nanosecond), not tick-quantized: the tick only
// selects the bucket. The engine fires entries at their precise deadline,
// so wheel-driven senders behave bit-identically to sim.Timer-driven
// ones. The wheel's span (tick x buckets) must exceed the longest timer
// ever armed (the 64 s RTO ceiling); arm panics otherwise, because a
// beyond-span deadline would alias into a near bucket and fire early.
type wheel struct {
	tickNs int64
	mask   int64 // nbuckets-1; nbuckets is a power of two

	head []int32 // per bucket: first entry index, or -1
	tail []int32 // per bucket: last entry index, or -1 (FIFO arm order)

	next     []int32 // per entry index
	prev     []int32
	deadline []int64 // per entry index; <0 = idle

	occupied []uint64 // bucket occupancy bitmap
	count    int
}

// newWheel sizes a wheel for nidx timer owners with the given tick and
// bucket count (rounded up to a power of two).
func newWheel(tickNs int64, nbuckets, nidx int) *wheel {
	b := 1
	for b < nbuckets {
		b <<= 1
	}
	w := &wheel{
		tickNs:   tickNs,
		mask:     int64(b - 1),
		head:     make([]int32, b),
		tail:     make([]int32, b),
		next:     make([]int32, nidx),
		prev:     make([]int32, nidx),
		deadline: make([]int64, nidx),
		occupied: make([]uint64, (b+63)/64),
	}
	for i := range w.head {
		w.head[i] = -1
		w.tail[i] = -1
	}
	for i := range w.deadline {
		w.deadline[i] = -1
	}
	return w
}

// span reports the wheel's unambiguous horizon in nanoseconds.
func (w *wheel) span() int64 { return w.tickNs * (w.mask + 1) }

func (w *wheel) bucket(at int64) int64 { return (at / w.tickNs) & w.mask }

// armed reports whether idx has a pending deadline.
func (w *wheel) armed(idx int32) bool { return w.deadline[idx] >= 0 }

// deadlineOf reports idx's pending deadline, or -1 when idle.
func (w *wheel) deadlineOf(idx int32) int64 { return w.deadline[idx] }

// arm sets idx's timer to fire at the absolute time at, replacing any
// pending deadline (sim.Timer.Set semantics). now bounds the span check.
func (w *wheel) arm(idx int32, at, now int64) {
	if at-now >= w.span() {
		panic("cell: timer deadline beyond wheel span")
	}
	if w.deadline[idx] >= 0 {
		w.unlink(idx)
	}
	if at < now {
		at = now
	}
	w.deadline[idx] = at
	b := w.bucket(at)
	// Append at the tail so same-deadline entries fire in arm order,
	// matching the kernel's same-instant FIFO discipline.
	w.prev[idx] = w.tail[b]
	w.next[idx] = -1
	if w.tail[b] >= 0 {
		w.next[w.tail[b]] = idx
	} else {
		w.head[b] = idx
		w.occupied[b>>6] |= 1 << uint(b&63)
	}
	w.tail[b] = idx
	w.count++
}

// cancel clears idx's pending deadline, if any.
func (w *wheel) cancel(idx int32) {
	if w.deadline[idx] < 0 {
		return
	}
	w.unlink(idx)
	w.deadline[idx] = -1
}

func (w *wheel) unlink(idx int32) {
	b := w.bucket(w.deadline[idx])
	if w.prev[idx] >= 0 {
		w.next[w.prev[idx]] = w.next[idx]
	} else {
		w.head[b] = w.next[idx]
	}
	if w.next[idx] >= 0 {
		w.prev[w.next[idx]] = w.prev[idx]
	} else {
		w.tail[b] = w.prev[idx]
	}
	if w.head[b] < 0 {
		w.occupied[b>>6] &^= 1 << uint(b&63)
	}
	w.count--
}

// nextAt reports the earliest pending deadline, or -1 when no timer is
// armed. now must be at or before every pending deadline (the engine
// fires timers promptly, so deadlines are never in the past); the scan
// walks the occupancy bitmap ring-wise from now's bucket, and because
// every deadline is within one span of now, ring order is deadline-tick
// order and the first occupied bucket holds the minimum.
func (w *wheel) nextAt(now int64) int64 {
	if w.count == 0 {
		return -1
	}
	start := w.bucket(now)
	n := w.mask + 1
	for off := int64(0); off < n; {
		b := (start + off) & w.mask
		word := w.occupied[b>>6]
		// Mask off bits below b within its word, then jump by whole
		// words when empty.
		word &= ^uint64(0) << uint(b&63)
		if word == 0 {
			off += 64 - (b & 63)
			continue
		}
		b = (b &^ 63) + int64(bits.TrailingZeros64(word))
		if ((b - start) & w.mask) >= n {
			break
		}
		min := int64(-1)
		for e := w.head[b]; e >= 0; e = w.next[e] {
			if min < 0 || w.deadline[e] < min {
				min = w.deadline[e]
			}
		}
		return min
		// Unreachable: the first occupied bucket always yields min.
	}
	// All occupancy is behind the start bit inside its own word; fall
	// back to a full scan (cold path, only near bucket-boundary wrap).
	min := int64(-1)
	for wi, word := range w.occupied {
		for word != 0 {
			b := int64(wi*64 + bits.TrailingZeros64(word))
			word &= word - 1
			for e := w.head[b]; e >= 0; e = w.next[e] {
				if min < 0 || w.deadline[e] < min {
					min = w.deadline[e]
				}
			}
		}
	}
	return min
}

// popDue unlinks and returns the first entry (in arm order) whose
// deadline is exactly at, or -1 when none remains. The engine calls it in
// a loop at each pump instant.
func (w *wheel) popDue(at int64) int32 {
	if w.count == 0 {
		return -1
	}
	b := w.bucket(at)
	for e := w.head[b]; e >= 0; e = w.next[e] {
		if w.deadline[e] == at {
			w.unlink(e)
			w.deadline[e] = -1
			return e
		}
	}
	return -1
}
