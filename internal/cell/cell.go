// Package cell is the flat, index-addressed multi-flow engine: a whole
// cell of 10k-100k concurrent TCP transfers sharing base-station radios,
// with per-flow sender/sink state held in struct-of-arrays slices indexed
// by flow ID, data segments in a shared refcounted arena, one flat ARQ
// table per base station, and a single hashed timer wheel for every RTO
// timer in the run — so the zero-alloc event kernel stays zero-alloc at
// 1000x the flow count of the object-graph engines.
//
// The protocol semantics are an exact port of the repository's Tahoe
// sender, coarse-clock RTO estimator, immediate-ack sink, and the
// multiconn shared-radio scheduler (FIFO / round-robin / CSDP with EBSN):
// given the same configuration and seed, a cell run is bit-identical to
// the object-per-flow engine it replaces (internal/multiconn delegates
// here and pins that equivalence with a differential test).
package cell

import (
	"context"
	"errors"
	"fmt"
	"time"

	"wtcp/internal/errmodel"
	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// Policy selects a base station's radio scheduling discipline. Values
// match internal/multiconn's so delegation is a direct cast.
type Policy int

// Policies.
const (
	// FIFO serves packets in global arrival order; a fading head blocks
	// every flow behind it.
	FIFO Policy = iota + 1
	// RoundRobin cycles across per-flow queues.
	RoundRobin
	// CSDP is round-robin that skips flows whose channel the predictor
	// marks bad.
	CSDP
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case RoundRobin:
		return "roundrobin"
	case CSDP:
		return "csdp"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Chaos injects seeded faults at the radio-to-sink boundary, for the
// arena leak/double-free property tests and robustness studies: each
// successfully received segment may be dropped, duplicated, or delayed
// (reordered) on its way to the sink. All draws come from a dedicated
// RNG split, so enabling chaos never perturbs the protocol draw
// sequence of a chaos-free run.
type Chaos struct {
	// DropP loses the delivery entirely (TCP recovers end to end).
	DropP float64
	// DupP delivers the segment twice.
	DupP float64
	// ReorderP delays the delivery by ReorderDelay (default 5 ms),
	// letting later segments overtake it.
	ReorderP     float64
	ReorderDelay time.Duration
}

func (c Chaos) enabled() bool { return c.DropP > 0 || c.DupP > 0 || c.ReorderP > 0 }

// Config parameterizes a cell run.
type Config struct {
	// Flows is the number of concurrent TCP transfers in the cell.
	Flows int
	// BaseStations shards the flows across radios (flow f belongs to
	// base station f mod BaseStations). Zero means one.
	BaseStations int
	// Policy is each base station's scheduling discipline.
	Policy Policy
	// TransferSize is moved per flow; PacketSize is the segment size
	// (header included); Window is each flow's advertised window.
	TransferSize units.ByteSize
	PacketSize   units.ByteSize
	Window       units.ByteSize
	// WiredRate/WiredDelay parameterize each flow's wired hop (both
	// directions).
	WiredRate  units.BitRate
	WiredDelay time.Duration
	// WirelessRate/WirelessDelay parameterize each base station's shared
	// radio.
	WirelessRate  units.BitRate
	WirelessDelay time.Duration
	// Channel is the Gilbert fading model. With SharedChannel every base
	// station gets one channel its flows all ride (a fade hits the
	// medium); otherwise every flow fades independently (the CSDP study
	// setup, and what multiconn delegation uses).
	Channel       errmodel.Config
	SharedChannel bool
	// PredictorAccuracy is the probability the CSDP predictor reports
	// the true channel state. Ignored by other policies.
	PredictorAccuracy float64
	// EBSN notifies sources after every unsuccessful link attempt.
	// EBSNBroadcast extends the notification to every flow with queued
	// data at that base station (the multiconn semantics); without it
	// only the failing flow is notified, which is the only affordable
	// variant at cell scale.
	EBSN          bool
	EBSNBroadcast bool
	// RTmax bounds link-level retransmissions per packet before the base
	// station discards it. Zero defaults to 64.
	RTmax int
	// PerFlowQueue bounds each flow's base-station queue, in packets.
	// Zero defaults to 20.
	PerFlowQueue int
	// AdmitBatch/AdmitEvery stagger flow admission: AdmitBatch flows
	// start at t=0 and every AdmitEvery thereafter until all are
	// running. Zero AdmitBatch starts every flow at t=0 (the multiconn
	// semantics).
	AdmitBatch int
	AdmitEvery time.Duration
	// OracleSample attaches the streaming Tahoe/ARQ conformance checker
	// to this many flows, spread evenly across the population. Zero
	// checks nothing (full-population checking is unaffordable at 50k
	// flows; sampling keeps correctness coverage at scale).
	OracleSample int
	// Chaos injects radio-delivery faults (see Chaos).
	Chaos Chaos
	// Seed drives all randomness; Horizon caps the run (default 4 h).
	Seed    int64
	Horizon time.Duration
}

// withDefaults fills the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.BaseStations <= 0 {
		c.BaseStations = 1
	}
	if c.Horizon <= 0 {
		c.Horizon = 4 * time.Hour
	}
	if c.RTmax <= 0 {
		c.RTmax = 64
	}
	if c.PerFlowQueue <= 0 {
		c.PerFlowQueue = 20
	}
	if c.Chaos.ReorderDelay <= 0 {
		c.Chaos.ReorderDelay = 5 * time.Millisecond
	}
	return c
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	switch {
	case c.Flows <= 0:
		return errors.New("cell: need at least one flow")
	case c.Policy < FIFO || c.Policy > CSDP:
		return errors.New("cell: unknown policy")
	case c.PacketSize <= packet.HeaderSize:
		return errors.New("cell: packet size below header")
	case c.TransferSize <= 0:
		return errors.New("cell: nothing to transfer")
	case c.Window < c.PacketSize-packet.HeaderSize:
		return errors.New("cell: window below one segment")
	case c.WiredRate <= 0 || c.WirelessRate <= 0:
		return errors.New("cell: rates must be positive")
	case c.PredictorAccuracy < 0 || c.PredictorAccuracy > 1:
		return errors.New("cell: predictor accuracy outside [0,1]")
	case c.BaseStations < 0 || (c.BaseStations > c.Flows && c.Flows > 0):
		return errors.New("cell: more base stations than flows")
	case c.Chaos.DropP < 0 || c.Chaos.DropP > 1 ||
		c.Chaos.DupP < 0 || c.Chaos.DupP > 1 ||
		c.Chaos.ReorderP < 0 || c.Chaos.ReorderP > 1:
		return errors.New("cell: chaos probabilities outside [0,1]")
	default:
		return c.Channel.Validate()
	}
}

// Preset returns a metro-cell scale scenario with n flows: ~10k flows
// per base station over a shared Gilbert channel, a small-cell radio
// (1 Gbps, 5 us propagation), fast wire, round-robin service with EBSN
// to the failing flow, and staggered admission. The transfer is sized so
// a healthy run settles most flows inside a 60-virtual-second horizon.
func Preset(n int) Config {
	b := (n + 9999) / 10000
	if b < 1 {
		b = 1
	}
	batch := n / 25
	if batch < 100 {
		batch = 0 // small populations just start together
	}
	return Config{
		Flows:             n,
		BaseStations:      b,
		Policy:            RoundRobin,
		TransferSize:      32 * units.KB,
		PacketSize:        1536,
		Window:            16 * units.KB,
		WiredRate:         10000 * units.Mbps,
		WiredDelay:        200 * time.Microsecond,
		WirelessRate:      1000 * units.Mbps,
		WirelessDelay:     5 * time.Microsecond,
		Channel:           errmodel.PaperLAN(500 * time.Millisecond),
		SharedChannel:     true,
		PredictorAccuracy: 1.0,
		EBSN:              true,
		EBSNBroadcast:     false,
		RTmax:             16,
		PerFlowQueue:      20,
		AdmitBatch:        batch,
		AdmitEvery:        5 * time.Millisecond,
		Seed:              1,
		Horizon:           60 * time.Second,
	}
}

// FlowResult is one flow's outcome.
type FlowResult struct {
	Completed bool
	// Elapsed is the transfer time (or the run length if unfinished).
	Elapsed time.Duration
	// Timeouts counts source RTO expiries; RetransBytes the bytes the
	// source retransmitted (header included).
	Timeouts     uint64
	RetransBytes units.ByteSize
}

// Result is a whole cell run's outcome.
type Result struct {
	Config    Config
	Completed bool // every flow finished
	// CompletedFlows counts flows that finished inside the horizon.
	CompletedFlows int
	// Flows holds per-flow outcomes, indexed by flow ID.
	Flows []FlowResult
	// AggregateKbps sums per-flow goodput; Fairness is Jain's index over
	// the per-flow throughputs.
	AggregateKbps float64
	Fairness      float64
	// Radio counters, summed across base stations.
	RadioAttempts uint64
	RadioDiscards uint64
	SkippedBad    uint64
	EBSNsSent     uint64
	// TotalTimeouts aggregates source timeouts; QueueDrops counts
	// base-station tail drops; ChaosDrops/ChaosDups/ChaosDelays count
	// injected faults.
	TotalTimeouts uint64
	QueueDrops    uint64
	ChaosDrops    uint64
	ChaosDups     uint64
	ChaosDelays   uint64
	// Events counts engine micro-events processed (calendar pops plus
	// wheel fires); the scale SLOs express wall bounds per event.
	Events uint64
	// Arena summarizes packet-slot usage; LiveAtEnd must be zero.
	Arena ArenaStats
}

// Run executes one cell simulation on a pooled kernel.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg, sim.Budget{})
}

// RunContext is Run with cooperative cancellation and a resource budget:
// the kernel polls ctx between events and halts cleanly once it ends
// (the error unwraps to ctx.Err()), and a non-zero budget caps fired
// events, virtual time, wall-clock time, and heap bytes, surfacing
// exhaustion as a *sim.BudgetError. The pump yields to the kernel every
// few thousand micro-events, so both stay live even inside a same-instant
// admission wave. A zero budget imposes no ceilings.
func RunContext(ctx context.Context, cfg Config, budget sim.Budget) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e, err := newEngine(cfg.withDefaults())
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Acquire from the kernel pool so sweeps of cell runs reuse the event
	// heap slab, like the single-connection runners do. The simulator is
	// returned on every exit path here; a panic propagates without
	// releasing (the pool must only hold simulators known mid-nothing).
	s := sim.Acquire()
	s.SetBudget(budget)
	s.Bind(ctx)
	e.bind(s)
	e.begin()
	if err := e.loop(); err != nil {
		sim.Release(s)
		return nil, err
	}
	res, err := e.finish()
	sim.Release(s)
	return res, err
}
