package experiment

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"wtcp/internal/core"
	"wtcp/internal/repro"
)

// This file is the crash-safe experiment engine. A sweep is a sequence
// of points; each point is Replications independent seeded simulations.
// The engine:
//
//   - runs a point's replications on a bounded worker pool (Workers),
//     then aggregates the raw per-replication records in seed order, so
//     any worker count produces bit-identical results to the sequential
//     runner;
//   - records every replication's raw measurements as float64 bit
//     patterns, checkpointing each completed point to disk with an
//     atomic write-rename (see checkpoint.go), so a killed sweep
//     resumes from the last finished point with byte-identical output;
//   - retries a failed replication with a perturbed seed (retrying a
//     deterministic failure with the same seed can never succeed) and
//     records the substituted seed in the point's metadata;
//   - stops cleanly between simulations when ctx ends, without
//     checkpointing a half-run point;
//   - captures a repro bundle (internal/repro) for every replication
//     that exhausts its retries, so the failure can be replayed and
//     shrunk offline with cmd/wtcp-repro.

// runSim executes one simulation. It is a variable so engine tests can
// inject failures without constructing a failing scenario.
var runSim = core.RunContext

// RepRecord is one successful replication's raw measurements. Values
// holds float64 bit patterns (math.Float64bits) in the sweep-defined
// metric order: unlike decimal JSON floats, bit patterns reload exactly,
// which is what makes a resumed sweep byte-identical to an uninterrupted
// one. Seed is the core.Config seed the replication actually ran with —
// for a retried replication, the perturbed substitute. Backoffs records
// the retry backoff delays (milliseconds) the replication waited through
// before succeeding; the delays are seed-derived, so a resumed or
// re-run sweep writes an identical record. Exported so the fleet layer
// (internal/fleet) can carry records between workers and the
// coordinator's ledger.
type RepRecord struct {
	Seed     int64    `json:"seed"`
	Values   []uint64 `json:"values"`
	Backoffs []int64  `json:"backoff_ms,omitempty"`
}

// floats decodes the record's measurements.
func (r RepRecord) floats() []float64 {
	out := make([]float64, len(r.Values))
	for i, bits := range r.Values {
		out[i] = math.Float64frombits(bits)
	}
	return out
}

// bitsOf encodes measurements for storage.
func bitsOf(vs []float64) []uint64 {
	out := make([]uint64, len(vs))
	for i, v := range vs {
		out[i] = math.Float64bits(v)
	}
	return out
}

// seedsOf collects the per-replication seeds for a point's metadata.
func seedsOf(reps []RepRecord) []int64 {
	out := make([]int64, len(reps))
	for i, r := range reps {
		out[i] = r.Seed
	}
	return out
}

// runPoint executes one sweep point: reload it from the checkpoint if
// already finished, otherwise run its replications on the worker pool,
// checkpoint the completed point, and report it via OnPoint. extract
// maps a successful run to the point's metric vector. A replication
// that still fails after its retries is skipped; runPoint errors only
// when every replication failed (a point built from zero samples would
// silently fabricate results), a replication hit a fail-fast failure
// class (protocol-bug, panic), or ctx ended.
//
// With a Supervisor configured, a point whose breaker trips (any
// replication resource-exhausted, or every replication permanently
// failed transient) is quarantined instead of failing the sweep: the
// record goes to the supervisor and the checkpoint, and runPoint
// returns errPointQuarantined so the sweep skips the point. A resumed
// sweep replays recorded quarantines here, at the same place in sweep
// order, which keeps its output byte-identical.
func runPoint(ctx context.Context, opt Options, ck *checkpoint, key string,
	build func(seed int64) core.Config, extract func(*core.Result) []float64) ([]RepRecord, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ck != nil {
		if reps, ok := ck.get(key); ok {
			return reps, nil
		}
		if q, ok := ck.getQuarantine(key); ok && opt.Supervise != nil {
			opt.noteQuarantined(q)
			return nil, errPointQuarantined
		}
	}

	reps, quar, err := executePoint(ctx, opt, key, build, extract)
	if err != nil {
		return nil, err
	}
	if quar != nil {
		if ck != nil {
			if err := ck.putQuarantine(*quar); err != nil {
				return nil, err
			}
		}
		opt.noteQuarantined(*quar)
		return nil, errPointQuarantined
	}
	if ck != nil {
		if err := ck.put(key, reps); err != nil {
			return nil, err
		}
	}
	if opt.OnPoint != nil {
		opt.OnPoint(key)
	}
	return reps, nil
}

// executePoint runs one point's replications on the worker pool and
// classifies the outcome without touching any checkpoint or supervisor
// state — the piece a fleet worker (internal/fleet) executes remotely.
// It returns exactly one of: the seed-ordered records on success; a
// quarantine record when supervision is armed and the point's circuit
// breaker trips; or an error (fail-fast class, every replication failed
// unsupervised, or ctx ended mid-point).
func executePoint(ctx context.Context, opt Options, key string,
	build func(seed int64) core.Config, extract func(*core.Result) []float64) ([]RepRecord, *Quarantine, error) {
	n := opt.Replications
	type slot struct {
		rec RepRecord
		ok  bool
		err error
	}
	slots := make([]slot, n)
	workers := opt.workers()
	if workers > n {
		workers = n
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rec, err := runRep(ctx, opt, key, build, int64(i+1), extract)
			if err != nil {
				slots[i] = slot{err: err}
				return
			}
			slots[i] = slot{rec: rec, ok: true}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// Cancelled mid-point: do not checkpoint a partial point — on
		// resume it reruns whole, keeping the merged output identical.
		return nil, nil, err
	}

	reps := make([]RepRecord, 0, n)
	var firstErr error
	var breaker *repFailure
	for _, s := range slots {
		if s.ok {
			reps = append(reps, s.rec)
			continue
		}
		if firstErr == nil {
			firstErr = s.err
		}
		var rf *repFailure
		if !errors.As(s.err, &rf) {
			continue
		}
		// Fail-fast classes dominate the point's verdict; otherwise keep
		// the first classified failure (seed order) for the record.
		if breaker == nil || (failFast(rf.class) && !failFast(breaker.class)) {
			breaker = rf
		}
	}
	if breaker != nil && failFast(breaker.class) {
		return nil, nil, fmt.Errorf("experiment: point %q: %s: %w", key, breaker.class, breaker.err)
	}
	if opt.Supervise != nil && breaker != nil &&
		(breaker.class == core.ClassResourceExhausted || len(reps) == 0) {
		return nil, &Quarantine{Key: key, Class: string(breaker.class), Attempts: breaker.attempts,
			Reason: breaker.err.Error()}, nil
	}
	if len(reps) == 0 {
		if firstErr == nil {
			firstErr = errors.New("no replications configured")
		}
		return nil, nil, fmt.Errorf("experiment: every replication failed: %w", firstErr)
	}
	return reps, nil, nil
}

// runRep executes one replication: the configuration built for seed,
// re-built with perturbed seeds up to the retry budget when a run
// fails retryably (transient or resource-exhausted classes, or a
// watchdog abort). Retries do not fire immediately: each waits through
// a capped exponential backoff with deterministic jitter (retryBackoff)
// so a burst of transient failures — a loaded host, a fleet of workers
// hammering one filesystem — spreads out instead of stampeding, and
// the delays actually waited are recorded in the replication's
// metadata. Fail-fast classes — protocol-bug and panic — skip the
// retry loop entirely: a deterministic correctness failure retried
// under a perturbed seed would only bury the bug. A replication that
// fails permanently is captured as a repro bundle (when ReproDir is
// set) and returned as a *repFailure carrying its class and attempt
// count, which runPoint's circuit breaker inspects.
func runRep(ctx context.Context, opt Options, key string, build func(seed int64) core.Config,
	seed int64, extract func(*core.Result) []float64) (RepRecord, error) {
	var lastErr, lastRunErr error
	var lastClass core.FailureClass
	var lastCfg core.Config
	var lastRes *core.Result
	var backoffs []int64
	attempts := 0
	for attempt := 0; attempt <= opt.retries(); attempt++ {
		if err := ctx.Err(); err != nil {
			return RepRecord{}, err
		}
		if attempt > 0 {
			pause := retryBackoff(key, seed, attempt)
			if err := sleepCtx(ctx, pause); err != nil {
				return RepRecord{}, err
			}
			backoffs = append(backoffs, pause.Milliseconds())
			opt.Health.noteRetry()
		}
		attempts++
		hid := opt.Health.RunStarted(key, seed+int64(attempt)*retrySeedOffset)
		cfg, r, err := runAttempt(ctx, opt, build, seed+int64(attempt)*retrySeedOffset)
		var events uint64
		if r != nil {
			events = r.Events
		}
		ok := err == nil && !r.Aborted
		opt.Health.RunFinished(hid, events, ok)
		class := core.Classify(err)
		switch {
		case class == core.ClassCanceled:
			return RepRecord{}, err
		case err == nil && r.Aborted:
			// Virtual-time stall killed by the watchdog: transient shape,
			// retry under a perturbed seed.
			lastErr = fmt.Errorf("seed %d: watchdog abort: %s", cfg.Seed, firstLine(r.AbortReason))
			lastCfg, lastRes, lastRunErr, lastClass = cfg, r, nil, core.ClassTransient
		case err == nil:
			return RepRecord{Seed: cfg.Seed, Values: bitsOf(extract(r)), Backoffs: backoffs}, nil
		case failFast(class):
			wrapped := fmt.Errorf("seed %d: %w", cfg.Seed, err)
			emitBundle(opt, key, seed, cfg, nil, err)
			return RepRecord{}, &repFailure{err: wrapped, class: class, attempts: attempts}
		default:
			lastErr = fmt.Errorf("seed %d: %w", cfg.Seed, err)
			lastCfg, lastRes, lastRunErr, lastClass = cfg, nil, err, class
		}
	}
	emitBundle(opt, key, seed, lastCfg, lastRes, lastRunErr)
	return RepRecord{}, &repFailure{err: lastErr, class: lastClass, attempts: attempts}
}

// Retry backoff envelope: the first retry waits at least
// retryBackoffBase, each further retry doubles it, and no retry waits
// longer than retryBackoffCap plus its jitter share.
const (
	retryBackoffBase = 50 * time.Millisecond
	retryBackoffCap  = 2 * time.Second
)

// retryBackoff computes the pause before retry `attempt` (1-based) of
// the replication identified by (key, seed): exponential growth from
// retryBackoffBase capped at retryBackoffCap, plus jitter in [0, half
// the uncapped delay] derived purely from the replication's identity.
// Seeded jitter rather than rand/time keeps the whole retry schedule —
// and therefore the Backoffs metadata persisted in the checkpoint —
// reproducible, so a resumed sweep rewrites a byte-identical record.
func retryBackoff(key string, seed int64, attempt int) time.Duration {
	d := retryBackoffBase << (attempt - 1)
	if d <= 0 || d > retryBackoffCap {
		d = retryBackoffCap
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	x := splitmix64(h.Sum64() ^ uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(attempt)<<48)
	return d + time.Duration(x%uint64(d/2+1))
}

// splitmix64 is the standard 64-bit finalizer used to turn an identity
// into well-mixed jitter bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sleepCtx waits d or until ctx ends, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// runAttempt builds and runs one configuration under the engine's
// resolved resource budget (see Options.runBudget). A panic in the
// build function or anywhere under the run is recovered into a
// *PanicError, so one pathological replication cannot take down a
// whole campaign.
func runAttempt(ctx context.Context, opt Options, build func(seed int64) core.Config, seed int64) (cfg core.Config, res *core.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res = nil
			err = &core.PanicError{Value: fmt.Sprint(p), Stack: string(debug.Stack())}
		}
	}()
	cfg = build(seed)
	cfg.Budget = opt.runBudget(cfg.Budget)
	res, err = runSim(ctx, cfg)
	return cfg, res, err
}

// emitBundle writes a repro bundle for a permanently failed replication.
// Bundle-write problems are reported to stderr rather than failing the
// sweep — the replication's own error is the one worth surfacing.
func emitBundle(opt Options, key string, rep int64, cfg core.Config, res *core.Result, runErr error) {
	if opt.ReproDir == "" {
		return
	}
	b := repro.Capture(cfg, res, runErr)
	if b == nil {
		return
	}
	b.Origin = fmt.Sprintf("%s rep %d", key, rep)
	if err := os.MkdirAll(opt.ReproDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "experiment: repro dir: %v\n", err)
		return
	}
	name := fmt.Sprintf("repro-%s-rep%d.json", sanitizeKey(key), rep)
	if err := b.Save(filepath.Join(opt.ReproDir, name)); err != nil {
		fmt.Fprintf(os.Stderr, "experiment: write repro bundle: %v\n", err)
	}
}

// sanitizeKey maps a point key to a safe file-name fragment.
func sanitizeKey(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_', r == '=':
			return r
		default:
			return '-'
		}
	}, key)
}
