package metrics

import (
	"math"
	"testing"
	"time"

	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

func TestSegments(t *testing.T) {
	tests := []struct {
		total, mss units.ByteSize
		want       int64
	}{
		{100 * units.KB, 536, 192}, // 102400/536 = 191.04 -> 192
		{536, 536, 1},
		{537, 536, 2},
		{0, 536, 0},
		{536, 0, 0},
	}
	for _, tt := range tests {
		if got := Segments(tt.total, tt.mss); got != tt.want {
			t.Errorf("Segments(%d,%d) = %d, want %d", tt.total, tt.mss, got, tt.want)
		}
	}
}

func TestWireBytes(t *testing.T) {
	// 10 segments of 536 payload carry 10 headers.
	got := WireBytes(5360, 536)
	want := units.ByteSize(5360 + 400)
	if got != want {
		t.Errorf("WireBytes = %d, want %d", got, want)
	}
}

func TestSummarizeCleanRun(t *testing.T) {
	total := 100 * units.KB
	mss := units.ByteSize(536)
	st := tcp.Stats{BytesSent: WireBytes(total, mss)}
	s := Summarize(total, mss, st, 64*time.Second)
	if s.Goodput < 0.9999 || s.Goodput > 1.0001 {
		t.Errorf("clean goodput = %v, want 1.0", s.Goodput)
	}
	// Throughput counts user payload only (headers deducted).
	wantKbps := float64(total.Bits()) / 64 / 1000
	if math.Abs(s.ThroughputKbps-wantKbps) > 0.01 {
		t.Errorf("throughput = %v, want %v", s.ThroughputKbps, wantKbps)
	}
	if math.Abs(s.ThroughputMbps-wantKbps/1000) > 1e-6 {
		t.Error("Mbps inconsistent with Kbps")
	}
}

func TestSummarizeLossyRun(t *testing.T) {
	total := 10 * units.KB
	mss := units.ByteSize(536)
	fresh := WireBytes(total, mss)
	st := tcp.Stats{
		BytesSent:    fresh + 2*units.KB, // 2KB of retransmissions
		RetransBytes: 2 * units.KB,
		Timeouts:     3,
		EBSNResets:   7,
	}
	s := Summarize(total, mss, st, 10*time.Second)
	wantGoodput := float64(fresh) / float64(fresh+2*units.KB)
	if math.Abs(s.Goodput-wantGoodput) > 1e-9 {
		t.Errorf("goodput = %v, want %v", s.Goodput, wantGoodput)
	}
	if s.RetransmittedKB() != 2.0 {
		t.Errorf("RetransmittedKB = %v, want 2", s.RetransmittedKB())
	}
	if s.Timeouts != 3 || s.EBSNResets != 7 {
		t.Error("counters not propagated")
	}
}

func TestSummarizeZeroSent(t *testing.T) {
	s := Summarize(units.KB, 536, tcp.Stats{}, time.Second)
	if s.Goodput != 0 {
		t.Errorf("goodput with zero sent = %v", s.Goodput)
	}
}

func TestHeaderTaxVisibleInThroughput(t *testing.T) {
	// 576-byte packets back-to-back at the 12.8 kbps effective rate
	// deliver one packet per 360 ms; with headers deducted the user sees
	// 12.8 * 536/576 ~ 11.91 kbps. With 128-byte packets the same wire
	// delivers only 12.8 * 88/128 = 8.8 kbps — the paper's reason small
	// packets lose in Figure 7 even before fragmentation.
	check := func(pkt units.ByteSize, want float64) {
		mss := pkt - 40
		total := 100 * units.KB
		segs := Segments(total, mss)
		perPacket := time.Duration(float64(pkt.Bits()) / 12800 * float64(time.Second))
		elapsed := time.Duration(segs) * perPacket
		s := Summarize(total, mss, tcp.Stats{BytesSent: WireBytes(total, mss)}, elapsed)
		if math.Abs(s.ThroughputKbps-want) > 0.1 {
			t.Errorf("pkt=%d throughput = %.2f, want ~%.2f", pkt, s.ThroughputKbps, want)
		}
	}
	check(576, 12.8*536/576)
	check(128, 12.8*88/128)
	check(1536, 12.8*1496/1536)
}
