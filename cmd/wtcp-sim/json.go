package main

import (
	"encoding/json"
	"fmt"

	"wtcp/internal/core"
	"wtcp/internal/stats"
)

// jsonResult is the machine-readable output of wtcp-sim -json.
type jsonResult struct {
	Scheme          string  `json:"scheme"`
	PacketSizeBytes int64   `json:"packet_size_bytes"`
	TransferBytes   int64   `json:"transfer_bytes"`
	MeanGoodSec     float64 `json:"mean_good_sec"`
	MeanBadSec      float64 `json:"mean_bad_sec"`
	TputThKbps      float64 `json:"tput_th_kbps"`
	Replications    int     `json:"replications"`

	ThroughputKbpsMean   float64 `json:"throughput_kbps_mean"`
	ThroughputKbpsStddev float64 `json:"throughput_kbps_stddev"`
	GoodputMean          float64 `json:"goodput_mean"`
	RetransKBMean        float64 `json:"retrans_kb_mean"`
	TimeoutsMean         float64 `json:"timeouts_mean"`

	LastReplication *jsonComponents `json:"last_replication,omitempty"`
}

// jsonComponents carries the per-component counters of the final
// replication for deeper post-processing.
type jsonComponents struct {
	SenderSegments   uint64 `json:"sender_segments"`
	SenderRetrans    uint64 `json:"sender_retrans_segments"`
	FastRetransmits  uint64 `json:"fast_retransmits"`
	EBSNResets       uint64 `json:"ebsn_resets"`
	ARQAttempts      uint64 `json:"arq_attempts"`
	ARQDiscards      uint64 `json:"arq_discards"`
	DownlinkCorrupt  uint64 `json:"downlink_corrupted"`
	UplinkCorrupt    uint64 `json:"uplink_corrupted"`
	SinkSegments     uint64 `json:"sink_segments"`
	SinkDuplicates   uint64 `json:"sink_duplicates"`
	MobileLinkAcks   uint64 `json:"mobile_link_acks"`
	MobileGapFlushes uint64 `json:"mobile_gap_flushes"`
}

// emitJSON prints the aggregated run as one JSON document.
func emitJSON(cfg core.Config, tput, goodput, retrans, timeouts *stats.Sample, last *core.Result) error {
	out := jsonResult{
		Scheme:               cfg.Scheme.String(),
		PacketSizeBytes:      int64(cfg.PacketSize),
		TransferBytes:        int64(cfg.TransferSize),
		MeanGoodSec:          cfg.Channel.MeanGood.Seconds(),
		MeanBadSec:           cfg.Channel.MeanBad.Seconds(),
		TputThKbps:           cfg.TheoreticalMaxKbps(),
		Replications:         tput.N(),
		ThroughputKbpsMean:   tput.Mean(),
		ThroughputKbpsStddev: tput.StdDev(),
		GoodputMean:          goodput.Mean(),
		RetransKBMean:        retrans.Mean(),
		TimeoutsMean:         timeouts.Mean(),
	}
	if last != nil {
		out.LastReplication = &jsonComponents{
			SenderSegments:   last.Sender.SegmentsSent,
			SenderRetrans:    last.Sender.RetransSegments,
			FastRetransmits:  last.Sender.FastRetransmits,
			EBSNResets:       last.Sender.EBSNResets,
			ARQAttempts:      last.BS.ARQAttempts,
			ARQDiscards:      last.BS.ARQDiscards,
			DownlinkCorrupt:  last.WirelessDown.Corrupted,
			UplinkCorrupt:    last.WirelessUp.Corrupted,
			SinkSegments:     last.Sink.SegmentsReceived,
			SinkDuplicates:   last.Sink.DuplicateSegments,
			MobileLinkAcks:   last.Mobile.LinkAcksSent,
			MobileGapFlushes: last.Mobile.GapFlushes,
		}
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(enc))
	return nil
}
