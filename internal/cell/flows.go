package cell

import (
	"time"

	"wtcp/internal/packet"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

// This file is the struct-of-arrays port of the repository's TCP
// endpoints: the Tahoe sender (internal/tcp/sender.go), the coarse-clock
// RTO estimator (internal/tcp/rto.go), and the immediate-ack sink
// (internal/tcp/sink.go), specialized to the multiconn configuration
// (non-streaming transfer, per-segment ACKs, no SACK/ECN/delayed-ack).
// Every arithmetic expression keeps the original's operation order —
// float updates included — because internal/multiconn pins the cell
// engine bit-identical to the object-per-flow engine it replaced. Change
// the originals and this port together, or the differential test fails.

// ---- sender ----

// startFlow opens flow f's transfer (Sender.Start).
func (e *engine) startFlow(f int32) {
	if e.started[f] {
		return
	}
	e.started[f] = true
	e.trySend(f)
}

// window is the usable send window in bytes: min(cwnd, advertised),
// floored at one segment (Sender.window).
func (e *engine) window(f int32) int64 {
	w := int64(e.cwnd[f])
	if e.adv < w {
		w = e.adv
	}
	if w < e.mss {
		w = e.mss
	}
	return w
}

// trySend transmits as many segments as the window allows
// (Sender.trySend, with the application's whole transfer available).
func (e *engine) trySend(f int32) {
	if e.done[f] {
		return
	}
	for e.sndNxt[f] < e.total {
		limit := e.sndUna[f] + e.window(f)
		space := limit - e.sndNxt[f]
		remaining := e.total - e.sndNxt[f]
		seglen := e.mss
		if remaining < seglen {
			seglen = remaining
		}
		if space < seglen {
			// Silly-window avoidance: wait for an ACK rather than send a
			// partial segment into a sliver of window.
			return
		}
		e.emit(f, e.sndNxt[f], seglen)
		e.sndNxt[f] += seglen
		if e.sndNxt[f] > e.sndMax[f] {
			e.sndMax[f] = e.sndNxt[f]
		}
	}
}

// emit sends one segment starting at seq (Sender.emit): counters, Karn
// RTT timing, timer arm, then the wired forward pipe.
func (e *engine) emit(f int32, seq, seglen int64) {
	retx := seq < e.sndMax[f]
	size := packet.HeaderSize + units.ByteSize(seglen)
	if retx {
		e.fRetrans[f] += size
	}
	// Time one fresh segment per window (Karn: never a retransmission).
	if !e.timing[f] && !retx {
		e.timing[f] = true
		e.timedSeq[f] = seq
		e.timedAtTick[f] = int32(e.rtoTicks(e.s.Now()))
	}
	if !e.wheel.armed(f) {
		e.timerSet(f)
	}
	if e.oracle != nil {
		e.oracleSend(f, seq, seglen, retx)
	}
	// The wired forward hop, collapsed into one arrival event: the pipe
	// is per-flow and serial, and sends enter it in nondecreasing time
	// order, so busy-until folding at emit time is exact.
	slot := e.arena.alloc(f, seq, int32(seglen))
	now := e.s.Now()
	start := now
	if e.fwdBusy[f] > start {
		start = e.fwdBusy[f]
	}
	e.fwdBusy[f] = start + units.TransmissionTime(size, e.cfg.WiredRate)
	e.cal.push(calEvent{
		at:   int64(e.fwdBusy[f] + e.cfg.WiredDelay),
		kind: evWiredArrive,
		flow: f,
		bs:   f % int32(e.B),
		slot: slot,
	})
}

// timerSet re-arms flow f's retransmission timer at now+RTO
// (sim.Timer.Set semantics: cancel plus schedule).
func (e *engine) timerSet(f int32) {
	now := int64(e.s.Now())
	e.wheel.arm(f, now+int64(e.rtoRTO(f)), now)
}

// senderOnAck processes a cumulative acknowledgment (Sender.onAck).
func (e *engine) senderOnAck(f int32, ackNo int64) {
	if e.done[f] {
		return
	}
	if ackNo > e.sndMax[f] {
		// Acknowledgment for data never sent: RFC 793 drops it.
		e.oracleAck(f, ackNo, tcp.AckInvalid)
		return
	}
	switch {
	case ackNo > e.sndUna[f]:
		e.onNewAck(f, ackNo)
	case ackNo == e.sndUna[f] && e.sndNxt[f] > e.sndUna[f]:
		e.onDupAck(f)
	default:
		e.oracleAck(f, ackNo, tcp.AckOld)
	}
}

func (e *engine) onNewAck(f int32, ackNo int64) {
	// RTT sample if the timed segment is covered and never retransmitted.
	if e.timing[f] && ackNo > e.timedSeq[f] {
		e.rtoSample(f, e.rtoTicks(e.s.Now())-int(e.timedAtTick[f]))
		e.timing[f] = false
	}
	e.growCwnd(f)
	e.dupacks[f] = 0
	e.sndUna[f] = ackNo
	if e.sndNxt[f] < e.sndUna[f] {
		e.sndNxt[f] = e.sndUna[f]
	}
	if e.sndUna[f] >= e.total {
		e.complete(f)
		e.oracleAck(f, ackNo, tcp.AckNew)
		return
	}
	if e.sndNxt[f] > e.sndUna[f] {
		e.timerSet(f)
	} else {
		e.wheel.cancel(f)
	}
	e.oracleAck(f, ackNo, tcp.AckNew)
	e.trySend(f)
}

// growCwnd applies slow start or congestion avoidance for one new ACK
// (Sender.growCwnd; identical float operation order).
func (e *engine) growCwnd(f int32) {
	mss := float64(e.mss)
	if e.cwnd[f] < e.ssthresh[f] {
		e.cwnd[f] += mss
	} else {
		e.cwnd[f] += mss * mss / e.cwnd[f]
	}
	if cap := float64(e.adv) + mss; e.cwnd[f] > cap {
		e.cwnd[f] = cap
	}
}

func (e *engine) onDupAck(f int32) {
	e.dupacks[f]++
	if e.dupacks[f] != tcp.DupAckThreshold {
		e.oracleAck(f, e.sndUna[f], tcp.AckDup)
		return
	}
	// Fast retransmit, Tahoe: collapse and slow-start from snd_una.
	e.halveSsthresh(f)
	e.timing[f] = false
	e.cwnd[f] = float64(e.mss)
	e.sndNxt[f] = e.sndUna[f]
	e.dupacks[f] = 0
	e.timerSet(f)
	if e.oracle != nil {
		e.oracleState(f, tcp.StateFastRetx, e.sndUna[f])
	}
	e.trySend(f)
}

// halveSsthresh sets ssthresh to half the effective window, floored at
// two segments (Sender.halveSsthresh).
func (e *engine) halveSsthresh(f int32) {
	flight := e.cwnd[f]
	if adv := float64(e.adv); adv < flight {
		flight = adv
	}
	half := flight / 2
	if min := 2 * float64(e.mss); half < min {
		half = min
	}
	e.ssthresh[f] = half
}

// onTimeout is the retransmission-timer expiry (Sender.onTimeout). The
// wheel has already cleared the deadline when this runs.
func (e *engine) onTimeout(f int32) {
	if e.done[f] {
		return
	}
	if e.sndNxt[f] <= e.sndUna[f] {
		// Nothing outstanding: a stale expiry must not collapse the
		// window.
		return
	}
	e.fTimeouts[f]++
	e.halveSsthresh(f)
	e.cwnd[f] = float64(e.mss)
	e.rtoBackoff(f)
	e.timing[f] = false
	e.dupacks[f] = 0
	e.sndNxt[f] = e.sndUna[f]
	e.timerSet(f)
	if e.oracle != nil {
		e.oracleState(f, tcp.StateTimeout, e.sndUna[f])
	}
	e.trySend(f)
}

// senderOnEBSN re-arms the pending timer with the current timeout value;
// estimators and windows untouched (Sender.onEBSN).
func (e *engine) senderOnEBSN(f int32) {
	if e.done[f] {
		return
	}
	if e.sndNxt[f] > e.sndUna[f] {
		e.timerSet(f)
	}
	if e.oracle != nil {
		e.oracleState(f, tcp.StateEBSN, 0)
	}
}

// complete marks flow f's transfer finished (Sender.complete).
func (e *engine) complete(f int32) {
	e.done[f] = true
	e.finishAt[f] = e.s.Now()
	e.wheel.cancel(f)
	e.doneCount++
}

// ---- RTO estimator (RTOEstimator, struct-of-arrays) ----

const (
	maxBackoffShift = 6
	minRTOTicks     = 2
)

// rtoTicks converts a duration to whole clock ticks, truncating.
func (e *engine) rtoTicks(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return int(d / e.granularity)
}

// rtoSample feeds one round-trip measurement in ticks
// (RTOEstimator.Sample; identical float operation order).
func (e *engine) rtoSample(f int32, ticks int) {
	m := float64(ticks)
	if !e.hasSample[f] {
		e.srtt[f] = m
		e.rttvar[f] = m / 2
		e.hasSample[f] = true
	} else {
		err := m - e.srtt[f]
		e.srtt[f] += err / 8
		if err < 0 {
			err = -err
		}
		e.rttvar[f] += (err - e.rttvar[f]) / 4
	}
	e.shift[f] = 0
}

// rtoBase returns the un-backed-off timeout (RTOEstimator.base).
func (e *engine) rtoBase(f int32) time.Duration {
	if !e.hasSample[f] {
		return e.initialRTO
	}
	ticks := e.srtt[f] + 4*e.rttvar[f]
	if ticks < minRTOTicks {
		ticks = minRTOTicks
	}
	return time.Duration(ticks * float64(e.granularity))
}

// rtoRTO reports the current timeout with Karn backoff, clamped
// (RTOEstimator.RTO).
func (e *engine) rtoRTO(f int32) time.Duration {
	rto := e.rtoBase(f) << uint(e.shift[f])
	if rto > e.maxRTO {
		rto = e.maxRTO
	}
	return rto
}

// rtoBackoff doubles the next timeout up to the 64x cap
// (RTOEstimator.Backoff).
func (e *engine) rtoBackoff(f int32) {
	if e.shift[f] < maxBackoffShift {
		e.shift[f]++
	}
}

// ---- sink (Sink, immediate-ack mode, fixed reorder slab) ----

// sinkReceive accepts one data segment at the mobile host and emits the
// immediate cumulative ACK (Sink.Receive). The out-of-order buffer is a
// fixed per-flow slab instead of a map: segments sit on the MSS grid
// inside the advertised window, so at most segCap distinct starts exist.
func (e *engine) sinkReceive(f int32, seq, paylen int64) {
	advanced := false
	end := seq + paylen
	switch rn := e.rcvNxt[f]; {
	case seq == rn:
		e.rcvNxt[f] = rn + paylen
		e.drainBuffered(f)
		advanced = true
	case seq > rn:
		// Out of order: buffer if it fits the window and is not held.
		if e.oooFind(f, seq) < 0 && end <= rn+e.adv {
			e.oooInsert(f, seq, paylen)
		}
	default:
		if end > rn {
			// Partial overlap: accept the new suffix.
			e.rcvNxt[f] = end
			e.drainBuffered(f)
			advanced = true
		}
		// Wholly old data: duplicate; ack below repeats rcv_nxt.
	}
	e.sinkEmitAck(f, advanced)
}

// oooFind returns the slab index holding seq, or -1.
func (e *engine) oooFind(f int32, seq int64) int {
	base := int(f) * e.segCap
	for i := 0; i < int(e.oooCount[f]); i++ {
		if e.oooSeq[base+i] == seq {
			return base + i
		}
	}
	return -1
}

// oooInsert buffers an out-of-order segment. A full slab drops the
// segment (cannot occur for MSS-grid senders; counted for the record).
func (e *engine) oooInsert(f int32, seq, paylen int64) {
	n := int(e.oooCount[f])
	if n >= e.segCap {
		e.oooOverflow++
		return
	}
	base := int(f) * e.segCap
	e.oooSeq[base+n] = seq
	e.oooLen[base+n] = int32(paylen)
	e.oooCount[f] = int32(n + 1)
}

// drainBuffered consumes buffered segments made contiguous
// (Sink.drainBuffered; exact-match lookups only, so slab order is
// irrelevant to behaviour).
func (e *engine) drainBuffered(f int32) {
	base := int(f) * e.segCap
	for {
		i := e.oooFind(f, e.rcvNxt[f])
		if i < 0 {
			return
		}
		e.rcvNxt[f] += int64(e.oooLen[i])
		last := base + int(e.oooCount[f]) - 1
		e.oooSeq[i] = e.oooSeq[last]
		e.oooLen[i] = e.oooLen[last]
		e.oooCount[f]--
	}
}

// sinkEmitAck carries the cumulative ACK across the fading uplink and
// the wired reverse pipe toward the sender (Sink.emitAck +
// engine.ackFromMobile, collapsed: the uplink loss draw happens here, at
// receive time, exactly where the object engine drew it).
func (e *engine) sinkEmitAck(f int32, advanced bool) {
	_ = advanced // the ack packet is the same either way (no delayed acks)
	now := e.s.Now()
	ch := e.channelOf(f)
	lost := e.rng.PoissonAtLeastOne(
		ch.ExpectedBitErrors(now, now+e.ackTxRadio, int64(packet.ControlSize.Bits())))
	if lost {
		return
	}
	// Uplink transit, then the wired reverse pipe (serial, per flow,
	// fed in nondecreasing time order: busy-until folding is exact).
	t1 := now + e.ackTxRadio + e.cfg.WirelessDelay
	start := t1
	if e.revBusy[f] > start {
		start = e.revBusy[f]
	}
	e.revBusy[f] = start + e.revAckTx
	e.cal.push(calEvent{
		at:   int64(e.revBusy[f] + e.cfg.WiredDelay),
		kind: evAckArrive,
		flow: f,
		a:    e.rcvNxt[f],
	})
}
