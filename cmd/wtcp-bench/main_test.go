package main

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: wtcp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimKernel-8     	26153130	        86.81 ns/op	       0 B/op	       0 allocs/op
BenchmarkSimTimerReset-8 	198126300	        12.16 ns/op	       0 B/op	       0 allocs/op
BenchmarkWANRun-8        	    1586	   1575676 ns/op	  479734 B/op	    4053 allocs/op
PASS
ok  	wtcp	11.662s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	k := results[0]
	if k.Name != "BenchmarkSimKernel" || k.NsPerOp != 86.81 || k.AllocsPerOp != 0 {
		t.Fatalf("unexpected first result: %+v", k)
	}
	w := results[2]
	if w.Name != "BenchmarkWANRun" || w.AllocsPerOp != 4053 || w.BytesPerOp != 479734 {
		t.Fatalf("unexpected WANRun result: %+v", w)
	}
}

func TestParseBenchKeepsBestOfRepeats(t *testing.T) {
	repeated := "BenchmarkSimKernel-8 100 90.0 ns/op\t1 B/op\t1 allocs/op\n" +
		"BenchmarkSimKernel-8 100 80.0 ns/op\t0 B/op\t0 allocs/op\n"
	results, err := parseBench(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("parsed %d results, want 1", len(results))
	}
	if results[0].NsPerOp != 80.0 {
		t.Fatalf("ns/op = %v, want min of repeats (80)", results[0].NsPerOp)
	}
	if results[0].AllocsPerOp != 1 {
		t.Fatalf("allocs/op = %v, want max of repeats (1)", results[0].AllocsPerOp)
	}
}

func TestCompareFailsOnSlowdown(t *testing.T) {
	base := map[string]Result{
		"BenchmarkSimKernel": {Name: "BenchmarkSimKernel", NsPerOp: 100},
	}
	fresh := []Result{{Name: "BenchmarkSimKernel", NsPerOp: 130}}
	err := compareResults(&strings.Builder{}, base, fresh, nil, 0.20)
	if err == nil {
		t.Fatal("30% slowdown with 20% threshold did not fail")
	}
}

func TestCompareFailsOnAllocIncrease(t *testing.T) {
	base := map[string]Result{
		"BenchmarkSimKernel": {Name: "BenchmarkSimKernel", NsPerOp: 100, AllocsPerOp: 0},
	}
	fresh := []Result{{Name: "BenchmarkSimKernel", NsPerOp: 100, AllocsPerOp: 1}}
	err := compareResults(&strings.Builder{}, base, fresh, nil, 0.20)
	if err == nil {
		t.Fatal("allocs/op increase did not fail even within the ns/op threshold")
	}
}

// TestRecordStoresFilterAndCompareUsesIt pins the multi-baseline
// contract: a baseline recorded with an explicit -filter stores it, and
// a later compare with the default "auto" filter applies the stored one
// — so BENCH_scale.json gates ^BenchmarkCell while BENCH_kernel.json
// keeps gating ^BenchmarkSim, with no flags repeated at compare time.
func TestRecordStoresFilterAndCompareUsesIt(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/BENCH_test.json"
	bench := "BenchmarkCellSend-8 1000 30.0 ns/op\t0 B/op\t0 allocs/op\n" +
		"BenchmarkSimKernel-8 1000 80.0 ns/op\t0 B/op\t0 allocs/op\n"

	in := dir + "/bench.txt"
	if err := writeFile(in, bench); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-record", "-file", path, "-filter", "^BenchmarkCell",
		"-note", "test baseline", "-in", in}); err != nil {
		t.Fatalf("record: %v", err)
	}
	b, m, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Filter != "^BenchmarkCell" || b.Note != "test baseline" {
		t.Fatalf("stored baseline %+v", b)
	}
	if len(m) != 2 {
		t.Fatalf("stored %d results, want 2", len(m))
	}

	// A fresh run where only the out-of-filter benchmark regressed must
	// pass: the stored filter excludes it.
	fresh := "BenchmarkCellSend-8 1000 31.0 ns/op\t0 B/op\t0 allocs/op\n" +
		"BenchmarkSimKernel-8 1000 9999.0 ns/op\t0 B/op\t0 allocs/op\n"
	if err := writeFile(in, fresh); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path, "-in", in}); err != nil {
		t.Fatalf("compare with stored filter: %v", err)
	}
	// An explicit -filter overrides the stored one and sees the regression.
	if err := run([]string{"-file", path, "-filter", "^BenchmarkSim", "-in", in}); err == nil {
		t.Fatal("explicit filter override missed the regression")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestComparePassesWithinThreshold(t *testing.T) {
	base := map[string]Result{
		"BenchmarkSimKernel":     {Name: "BenchmarkSimKernel", NsPerOp: 100},
		"BenchmarkSimTimerReset": {Name: "BenchmarkSimTimerReset", NsPerOp: 10},
	}
	fresh := []Result{
		{Name: "BenchmarkSimKernel", NsPerOp: 110},
		{Name: "BenchmarkSimTimerReset", NsPerOp: 9},
		{Name: "BenchmarkWANRun", NsPerOp: 999999}, // filtered out
	}
	filter := regexp.MustCompile("^BenchmarkSim")
	if err := compareResults(&strings.Builder{}, base, fresh, filter, 0.20); err != nil {
		t.Fatalf("within-threshold comparison failed: %v", err)
	}
}
