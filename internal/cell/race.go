//go:build race

package cell

// raceEnabled gates the scale SLOs and allocation pins: under the race
// detector every allocation is instrumented (so AllocsPerRun pins are
// meaningless) and the engine runs ~10x slower (so wall-clock SLOs
// would need uselessly loose bounds). The behavioural and property
// tests still run under -race; only the performance assertions skip.
const raceEnabled = true
