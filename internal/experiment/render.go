package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/units"
)

// RenderThroughputTable formats Figure 7/8 points as the paper's series:
// one row per packet size, one column per bad period, with the tput_th
// ceiling row on top.
func RenderThroughputTable(title string, points []ThroughputPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	bads := sortedBadPeriods(points)
	sizes := sortedSizes(points)

	fmt.Fprintf(&b, "%-12s", "pkt size")
	for _, bad := range bads {
		fmt.Fprintf(&b, "  bad=%-7s", bad)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-12s", "tput_th")
	for _, bad := range bads {
		fmt.Fprintf(&b, "  %-11s", fmt.Sprintf("%.2f", theoreticalFor(points, bad)))
	}
	b.WriteString("\n")
	for _, size := range sizes {
		fmt.Fprintf(&b, "%-12s", size)
		for _, bad := range bads {
			p, ok := pointAt(points, bad, size)
			if !ok {
				fmt.Fprintf(&b, "  %-11s", "-")
				continue
			}
			fmt.Fprintf(&b, "  %-11s", fmt.Sprintf("%.2f±%.0f%%",
				p.ThroughputKbps.Mean(), 100*p.ThroughputKbps.RelStdDev()))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ThroughputCSV emits Figure 7/8 points as CSV.
func ThroughputCSV(points []ThroughputPoint) string {
	var b strings.Builder
	b.WriteString("scheme,bad_period_sec,packet_size_bytes,throughput_kbps_mean,throughput_kbps_stddev,goodput_mean,tput_th_kbps\n")
	for _, p := range points {
		goodput := 0.0
		if p.Goodput != nil {
			goodput = p.Goodput.Mean()
		}
		fmt.Fprintf(&b, "%s,%.1f,%d,%.3f,%.3f,%.4f,%.3f\n",
			p.Scheme, p.BadPeriod.Seconds(), p.PacketSize,
			p.ThroughputKbps.Mean(), p.ThroughputKbps.StdDev(), goodput, p.TheoreticalMaxKbps)
	}
	return b.String()
}

// RenderRetransTable formats Figure 9 points.
func RenderRetransTable(title string, points []RetransPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	schemes := sortedSchemes(points)
	for _, scheme := range schemes {
		fmt.Fprintf(&b, "[%s]\n", scheme)
		var sub []RetransPoint
		for _, p := range points {
			if p.Scheme == scheme {
				sub = append(sub, p)
			}
		}
		bads := retransBadPeriods(sub)
		sizes := retransSizes(sub)
		fmt.Fprintf(&b, "%-12s", "pkt size")
		for _, bad := range bads {
			fmt.Fprintf(&b, "  bad=%-7s", bad)
		}
		b.WriteString("\n")
		for _, size := range sizes {
			fmt.Fprintf(&b, "%-12s", size)
			for _, bad := range bads {
				found := false
				for _, p := range sub {
					if p.BadPeriod == bad && p.PacketSize == size {
						fmt.Fprintf(&b, "  %-11s", fmt.Sprintf("%.1fKB", p.RetransKB.Mean()))
						found = true
						break
					}
				}
				if !found {
					fmt.Fprintf(&b, "  %-11s", "-")
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// RetransCSV emits Figure 9 points as CSV.
func RetransCSV(points []RetransPoint) string {
	var b strings.Builder
	b.WriteString("scheme,bad_period_sec,packet_size_bytes,retrans_kb_mean,retrans_kb_stddev,timeouts_avg\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%.1f,%d,%.3f,%.3f,%.2f\n",
			p.Scheme, p.BadPeriod.Seconds(), p.PacketSize,
			p.RetransKB.Mean(), p.RetransKB.StdDev(), p.TimeoutsAvg)
	}
	return b.String()
}

// RenderLANTable formats Figures 10 and 11 points.
func RenderLANTable(title string, points []LANPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s  %-14s  %-18s  %-14s  %-10s\n",
		"bad", "scheme", "throughput(Mbps)", "retrans(KB)", "tput_th")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s  %-14s  %-18s  %-14s  %-10s\n",
			p.BadPeriod, p.Scheme,
			fmt.Sprintf("%.3f±%.0f%%", p.ThroughputMbps.Mean(), 100*p.ThroughputMbps.RelStdDev()),
			fmt.Sprintf("%.1f", p.RetransKB.Mean()),
			fmt.Sprintf("%.3f", p.TheoreticalMaxMbps))
	}
	return b.String()
}

// LANCSV emits Figure 10/11 points as CSV.
func LANCSV(points []LANPoint) string {
	var b strings.Builder
	b.WriteString("scheme,bad_period_sec,throughput_mbps_mean,throughput_mbps_stddev,retrans_kb_mean,timeouts_avg,tput_th_mbps\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%.1f,%.4f,%.4f,%.2f,%.2f,%.4f\n",
			p.Scheme, p.BadPeriod.Seconds(),
			p.ThroughputMbps.Mean(), p.ThroughputMbps.StdDev(),
			p.RetransKB.Mean(), p.TimeoutsAvg, p.TheoreticalMaxMbps)
	}
	return b.String()
}

func sortedBadPeriods(points []ThroughputPoint) []time.Duration {
	seen := map[time.Duration]bool{}
	var out []time.Duration
	for _, p := range points {
		if !seen[p.BadPeriod] {
			seen[p.BadPeriod] = true
			out = append(out, p.BadPeriod)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedSizes(points []ThroughputPoint) []units.ByteSize {
	seen := map[units.ByteSize]bool{}
	var out []units.ByteSize
	for _, p := range points {
		if !seen[p.PacketSize] {
			seen[p.PacketSize] = true
			out = append(out, p.PacketSize)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func retransBadPeriods(points []RetransPoint) []time.Duration {
	seen := map[time.Duration]bool{}
	var out []time.Duration
	for _, p := range points {
		if !seen[p.BadPeriod] {
			seen[p.BadPeriod] = true
			out = append(out, p.BadPeriod)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func retransSizes(points []RetransPoint) []units.ByteSize {
	seen := map[units.ByteSize]bool{}
	var out []units.ByteSize
	for _, p := range points {
		if !seen[p.PacketSize] {
			seen[p.PacketSize] = true
			out = append(out, p.PacketSize)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedSchemes(points []RetransPoint) []bs.Scheme {
	seen := map[bs.Scheme]bool{}
	var out []bs.Scheme
	for _, p := range points {
		if !seen[p.Scheme] {
			seen[p.Scheme] = true
			out = append(out, p.Scheme)
		}
	}
	return out
}

func theoreticalFor(points []ThroughputPoint, bad time.Duration) float64 {
	for _, p := range points {
		if p.BadPeriod == bad {
			return p.TheoreticalMaxKbps
		}
	}
	return 0
}

func pointAt(points []ThroughputPoint, bad time.Duration, size units.ByteSize) (ThroughputPoint, bool) {
	for _, p := range points {
		if p.BadPeriod == bad && p.PacketSize == size {
			return p, true
		}
	}
	return ThroughputPoint{}, false
}
