package experiment

// Ledger is the fleet coordinator's exactly-once record of a campaign:
// an exported handle on the same checkpoint store the sequential engine
// uses, with the same fingerprint discipline, atomic persistence, and
// exclusive file lock. Because the coordinator merges worker results
// into an ordinary checkpoint file, finishing a sharded campaign and
// then running the figure sweeps against that file reloads every point
// — the output is byte-identical to a single-process run, and a
// half-finished fleet campaign can even be completed by the sequential
// engine (or vice versa).
type Ledger struct {
	ck *checkpoint
}

// OpenLedger opens (or creates) the campaign ledger at path, bound to
// the result-affecting fingerprint of opt. It takes the exclusive
// checkpoint lock; a live sequential sweep or second coordinator on the
// same path is refused.
func OpenLedger(path string, opt Options) (*Ledger, error) {
	opt = opt.withDefaults()
	ck, err := openCheckpoint(path, opt.fingerprint())
	if err != nil {
		return nil, err
	}
	return &Ledger{ck: ck}, nil
}

// Close releases the ledger's exclusive lock. Call it before handing
// the file to the sequential engine for the merge pass.
func (l *Ledger) Close() {
	if l != nil {
		l.ck.close()
	}
}

// Path returns the ledger's on-disk location.
func (l *Ledger) Path() string { return l.ck.path }

// Has reports whether key is already settled — finished or
// quarantined. A settled key is never dispatched (or re-recorded)
// again; this is the "exactly once" half the lease protocol's
// "at least once" needs.
func (l *Ledger) Has(key string) bool {
	if _, ok := l.ck.get(key); ok {
		return true
	}
	_, ok := l.ck.getQuarantine(key)
	return ok
}

// Reps returns the recorded replications for a finished key.
func (l *Ledger) Reps(key string) ([]RepRecord, bool) {
	return l.ck.get(key)
}

// Put records a finished point and persists the ledger atomically. It
// is idempotent in effect: callers must check Has first (the
// coordinator does, under its own mutex) so a duplicate result post is
// dropped instead of re-recorded.
func (l *Ledger) Put(key string, reps []RepRecord) error {
	return l.ck.put(key, reps)
}

// PutQuarantine records a breaker-tripped point and persists the
// ledger.
func (l *Ledger) PutQuarantine(q Quarantine) error {
	return l.ck.putQuarantine(q)
}

// Quarantined returns the recorded quarantines in ledger order.
func (l *Ledger) Quarantined() []Quarantine {
	l.ck.mu.Lock()
	defer l.ck.mu.Unlock()
	out := make([]Quarantine, 0, len(l.ck.quarOrder))
	for _, k := range l.ck.quarOrder {
		out = append(out, l.ck.quars[k])
	}
	return out
}

// Settled returns how many keys the ledger has settled (finished plus
// quarantined).
func (l *Ledger) Settled() int {
	l.ck.mu.Lock()
	defer l.ck.mu.Unlock()
	return len(l.ck.order) + len(l.ck.quarOrder)
}
