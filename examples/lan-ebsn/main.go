// Local-area EBSN study: LAN round-trip times are tiny, so a TCP source
// is *more* exposed to spurious timeouts during local recovery — the
// paper's argument for why a wireless LAN is an ideal EBSN deployment.
// This example reproduces the Figure 10/11 comparison at a few bad-period
// lengths.
//
//	go run ./examples/lan-ebsn
package main

import (
	"fmt"
	"log"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
	"wtcp/internal/units"
)

func main() {
	fmt.Println("4MB transfer, 10 Mbps wire + 2 Mbps radio, 64KB window, 1536B packets")
	fmt.Printf("%-10s %-22s %-22s %10s\n", "bad", "basic TCP", "TCP + EBSN", "tput_th")
	for _, bad := range []time.Duration{
		400 * time.Millisecond, 800 * time.Millisecond,
		1200 * time.Millisecond, 1600 * time.Millisecond,
	} {
		basic := mustRun(core.LAN(bs.Basic, bad))
		ebsn := mustRun(core.LAN(bs.EBSN, bad))
		th := core.LAN(bs.Basic, bad).TheoreticalMaxKbps() / 1000
		fmt.Printf("%-10s %8.3f Mbps (%2d TO) %8.3f Mbps (%2d TO) %7.3f Mbps\n",
			bad,
			basic.Summary.ThroughputMbps, basic.Summary.Timeouts,
			ebsn.Summary.ThroughputMbps, ebsn.Summary.Timeouts,
			th)
	}
	fmt.Println("\nretransmitted data (the Figure 11 series):")
	for _, bad := range []time.Duration{800 * time.Millisecond, 1600 * time.Millisecond} {
		basic := mustRun(core.LAN(bs.Basic, bad))
		ebsn := mustRun(core.LAN(bs.EBSN, bad))
		fmt.Printf("  bad=%v: basic %.0f KB, EBSN %.0f KB (of %d KB sent)\n",
			bad, basic.Summary.RetransmittedKB(), ebsn.Summary.RetransmittedKB(),
			4*units.MB/units.KB)
	}
}

func mustRun(cfg core.Config) *core.Result {
	r, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if !r.Completed {
		log.Fatalf("transfer did not complete for %+v", cfg.Scheme)
	}
	return r
}
