package cell

import (
	"testing"
	"time"

	"wtcp/internal/errmodel"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// Per-stage benchmarks isolate each hot-path segment of a flow's life —
// admission, send, the stop-and-wait ARQ cycle, sink delivery, ack
// processing — so a regression names the stage it hit instead of hiding
// in an end-to-end number. Each drives the engine's handlers directly
// with hand-restored state; all must report 0 allocs/op in steady state
// (wtcp-bench -compare BENCH_scale.json fails on any allocs/op growth).

// quietChannel never corrupts: per-stage benchmarks want deterministic
// success paths so every iteration does identical work.
func quietChannel() errmodel.Config {
	return errmodel.Config{GoodBER: 0, BadBER: 0, MeanGood: time.Hour}
}

// benchEngine builds a bound engine without starting any flows.
func benchEngine(tb testing.TB, cfg Config) *engine {
	tb.Helper()
	e, err := newEngine(cfg.withDefaults())
	if err != nil {
		tb.Fatal(err)
	}
	e.bind(sim.New())
	return e
}

func benchConfig(flows int) Config {
	cfg := Preset(flows)
	cfg.Channel = quietChannel()
	cfg.TransferSize = 64 * units.MB // never completes during a bench
	cfg.OracleSample = 0
	cfg.AdmitBatch = 0
	return cfg
}

// BenchmarkCellAdmission measures startFlow: the initial cwnd-limited
// send, timer arm, and wired-pipe fold. Engines are recycled off the
// clock every F admissions.
func BenchmarkCellAdmission(b *testing.B) {
	const F = 8192
	cfg := benchConfig(F)
	b.ReportAllocs()
	var e *engine
	for i := 0; i < b.N; i++ {
		if i%F == 0 {
			b.StopTimer()
			e = benchEngine(b, cfg)
			b.StartTimer()
		}
		e.startFlow(int32(i % F))
	}
}

// BenchmarkCellSend measures emit: arena claim, retransmit accounting,
// Karn timing, wheel arm check, wired-pipe fold, calendar push. The
// iteration is unwound (calendar pop + slot release) so state never
// drifts.
func BenchmarkCellSend(b *testing.B) {
	e := benchEngine(b, benchConfig(256))
	const f = int32(7)
	e.started[f] = true
	e.timing[f] = true // steady state: an earlier segment is being timed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.emit(f, 0, e.mss)
		ev := e.cal.pop()
		e.arena.decref(ev.slot)
		e.fwdBusy[f] = 0
	}
}

// BenchmarkCellARQ measures one full stop-and-wait radio cycle on a
// quiet channel: pick, transmit, link-ack success, hand-off to the
// sink's delivery queue.
func BenchmarkCellARQ(b *testing.B) {
	e := benchEngine(b, benchConfig(256))
	const f = int32(5)
	station := e.bsOf(f)
	slot := e.arena.alloc(f, 0, int32(e.mss))
	e.qPush(f, slot)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.transmit(station, f)
		e.cal.pop() // evRadioDone; handlers are invoked directly
		e.radioDone(station)
		dv := e.cal.pop() // evSinkDeliver (success is deterministic)
		e.arena.decref(dv.slot)
		// Re-queue a fresh packet; the sink's rcvNxt is untouched because
		// the delivery event was dropped above.
		s := e.arena.alloc(f, 0, int32(e.mss))
		e.qPush(f, s)
	}
}

// BenchmarkCellDelivery measures the sink side: in-order receive,
// cumulative-ack emission, reverse-pipe fold.
func BenchmarkCellDelivery(b *testing.B) {
	e := benchEngine(b, benchConfig(256))
	const f = int32(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := e.arena.alloc(f, e.rcvNxt[f], int32(e.mss))
		e.sinkDeliver(f, slot)
		if e.cal.len() > 0 {
			e.cal.pop() // evAckArrive
		}
		e.revBusy[f] = 0
	}
}

// BenchmarkCellAck measures the sender's ack path at full window: each
// new cumulative ack slides the window one MSS and releases exactly one
// fresh segment (congestion avoidance at the cwnd cap).
func BenchmarkCellAck(b *testing.B) {
	e := benchEngine(b, benchConfig(256))
	const f = int32(9)
	e.started[f] = true
	e.total = 1 << 50                           // never completes within b.N acks
	e.cwnd[f] = float64(e.adv) + float64(e.mss) // at cap: window() == adv
	e.ssthresh[f] = float64(e.mss)              // stay in congestion avoidance
	e.sndNxt[f] = e.adv
	e.sndMax[f] = e.adv
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.senderOnAck(f, e.sndUna[f]+e.mss)
		ev := e.cal.pop() // the one segment trySend released
		e.arena.decref(ev.slot)
		e.fwdBusy[f] = 0
	}
}

// End-to-end scale benchmarks: whole Preset(n) runs, dominated by the
// pump loop. ns/op here is the headline "simulate a cell" cost that
// BENCH_scale.json pins.

func benchmarkCellRun(b *testing.B, n int) {
	if raceEnabled && n > 1000 {
		b.Skip("large scale benchmarks run in non-race mode only")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Preset(n))
		if err != nil {
			b.Fatal(err)
		}
		if res.CompletedFlows < n*9/10 {
			b.Fatalf("only %d/%d flows completed", res.CompletedFlows, n)
		}
	}
}

func BenchmarkCellRun1k(b *testing.B)  { benchmarkCellRun(b, 1000) }
func BenchmarkCellRun10k(b *testing.B) { benchmarkCellRun(b, 10000) }
func BenchmarkCellRun50k(b *testing.B) { benchmarkCellRun(b, 50000) }
