// Package ip implements the fragmentation the base station performs before
// the wireless hop and the all-or-nothing reassembly at the mobile host.
//
// Following the paper's model, a wired-side packet of W bytes (TCP payload
// plus 40-byte header) is sliced into ceil(W/MTU) link-level fragments of
// at most MTU bytes each; the radio's framing/FEC overhead (the 1.5x
// factor) is applied by the wireless link, not here. Loss of any fragment
// loses the whole packet — exactly the behaviour [Kent & Mogul 1988] warn
// about and the paper's packet-size study quantifies.
package ip

import (
	"errors"
	"time"

	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// ErrBadMTU is returned when constructing a Fragmenter with a non-positive
// MTU.
var ErrBadMTU = errors.New("ip: MTU must be positive")

// Fragmenter slices Data segments into wireless-MTU fragments.
type Fragmenter struct {
	mtu units.ByteSize
	ids *packet.IDGen
}

// NewFragmenter returns a fragmenter for the given wireless MTU, drawing
// fragment IDs from ids.
func NewFragmenter(mtu units.ByteSize, ids *packet.IDGen) (*Fragmenter, error) {
	if mtu <= 0 {
		return nil, ErrBadMTU
	}
	return &Fragmenter{mtu: mtu, ids: ids}, nil
}

// MTU reports the configured maximum fragment size.
func (f *Fragmenter) MTU() units.ByteSize { return f.mtu }

// Fragment slices p (a Data segment) into fragments of at most MTU bytes.
// A packet that already fits in the MTU still yields a single fragment so
// the ARQ path is uniform. Fragments carry a pointer back to the original
// segment via Orig for reassembly.
func (f *Fragmenter) Fragment(p *packet.Packet) []*packet.Packet {
	total := p.Size()
	count := int((total + f.mtu - 1) / f.mtu)
	if count < 1 {
		count = 1
	}
	frags := make([]*packet.Packet, 0, count)
	remaining := total
	for i := 0; i < count; i++ {
		chunk := f.mtu
		if remaining < chunk {
			chunk = remaining
		}
		remaining -= chunk
		frags = append(frags, &packet.Packet{
			ID:               f.ids.Next(),
			Kind:             packet.Fragment,
			Conn:             p.Conn,
			Seq:              p.Seq,
			Payload:          chunk,
			Retransmit:       p.Retransmit,
			CongestionMarked: p.CongestionMarked,
			FragOf:           p.ID,
			FragIndex:        i,
			FragCount:        count,
			SentAt:           p.SentAt,
		})
	}
	return frags
}

// FragmentCount reports how many fragments a packet of the given on-wire
// size produces, without allocating them.
func (f *Fragmenter) FragmentCount(size units.ByteSize) int {
	n := int((size + f.mtu - 1) / f.mtu)
	if n < 1 {
		n = 1
	}
	return n
}

// Stats counts reassembler activity.
type Stats struct {
	// Completed counts fully reassembled packets delivered upward.
	Completed uint64
	// Duplicates counts fragments that arrived for an already-held index
	// (ARQ retransmission after a lost link-level ack).
	Duplicates uint64
	// Expired counts partial groups purged by the reassembly timeout.
	Expired uint64
	// Stale counts fragments that arrived after their group completed or
	// expired.
	Stale uint64
}

// group tracks one in-progress reassembly.
type group struct {
	have  map[int]bool
	count int
	timer sim.Event
	orig  originKey
}

// originKey carries the original segment's identity so the reassembled
// packet can be rebuilt without holding a pointer to the sender's object.
type originKey struct {
	id         uint64
	conn       int
	seq        int64
	payload    units.ByteSize
	retransmit bool
	marked     bool
	sentAt     time.Duration
}

// Reassembler collects fragments and delivers the original segment when a
// group completes. Partial groups are purged after Timeout (a lost
// fragment must not hold buffer state forever — the TCP source will send a
// fresh segment with a fresh packet ID).
type Reassembler struct {
	sim     *sim.Simulator
	timeout time.Duration
	deliver func(*packet.Packet)
	groups  map[uint64]*group
	done    map[uint64]bool
	stats   Stats
}

// DefaultReassemblyTimeout matches common IP stack defaults (60 s is the
// BSD ip reassembly TTL ballpark).
const DefaultReassemblyTimeout = 60 * time.Second

// NewReassembler returns a reassembler delivering completed segments to
// deliver. A non-positive timeout uses DefaultReassemblyTimeout.
func NewReassembler(s *sim.Simulator, timeout time.Duration, deliver func(*packet.Packet)) (*Reassembler, error) {
	if deliver == nil {
		return nil, errors.New("ip: nil deliver callback")
	}
	if timeout <= 0 {
		timeout = DefaultReassemblyTimeout
	}
	return &Reassembler{
		sim:     s,
		timeout: timeout,
		deliver: deliver,
		groups:  make(map[uint64]*group),
		done:    make(map[uint64]bool),
	}, nil
}

// Stats returns a copy of the counters.
func (r *Reassembler) Stats() Stats { return r.stats }

// Pending reports how many groups are partially assembled.
func (r *Reassembler) Pending() int { return len(r.groups) }

// Receive accepts one fragment. When the fragment completes its group, the
// original Data segment is rebuilt and delivered; duplicates and stale
// fragments are counted and dropped.
func (r *Reassembler) Receive(frag *packet.Packet) {
	if frag.Kind != packet.Fragment {
		// Whole packets (LAN mode acks, control) pass straight through.
		r.deliver(frag)
		return
	}
	if r.done[frag.FragOf] {
		r.stats.Stale++
		return
	}
	g, ok := r.groups[frag.FragOf]
	if !ok {
		g = &group{
			have:  make(map[int]bool),
			count: frag.FragCount,
			orig: originKey{
				id:         frag.FragOf,
				conn:       frag.Conn,
				seq:        frag.Seq,
				retransmit: frag.Retransmit,
				sentAt:     frag.SentAt,
			},
		}
		id := frag.FragOf
		g.timer = r.sim.Schedule(r.timeout, func() { r.expire(id) })
		r.groups[frag.FragOf] = g
	}
	if g.have[frag.FragIndex] {
		r.stats.Duplicates++
		return
	}
	g.have[frag.FragIndex] = true
	g.orig.payload += frag.Payload
	if frag.CongestionMarked {
		g.orig.marked = true
	}
	if len(g.have) < g.count {
		return
	}
	// Complete: rebuild the original segment. The summed fragment bytes
	// include the 40-byte header, so subtract it to recover the TCP
	// payload length.
	r.sim.Cancel(g.timer)
	delete(r.groups, frag.FragOf)
	r.done[frag.FragOf] = true
	r.stats.Completed++
	r.deliver(&packet.Packet{
		ID:               g.orig.id,
		Kind:             packet.Data,
		Conn:             g.orig.conn,
		Seq:              g.orig.seq,
		Payload:          g.orig.payload - packet.HeaderSize,
		Retransmit:       g.orig.retransmit,
		CongestionMarked: g.orig.marked,
		SentAt:           g.orig.sentAt,
	})
}

// expire purges a partial group whose timeout elapsed.
func (r *Reassembler) expire(id uint64) {
	if _, ok := r.groups[id]; !ok {
		return
	}
	delete(r.groups, id)
	r.done[id] = true
	r.stats.Expired++
}
