package core

import (
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/units"
)

func TestSplitConnectionCompletes(t *testing.T) {
	cfg := WAN(bs.SplitConnection, 576, 2*time.Second)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("split transfer did not complete")
	}
	if r.Sink.SegmentsReceived == 0 {
		t.Error("mobile host received nothing")
	}
	if r.SplitWireless == nil {
		t.Fatal("wireless-side stats missing")
	}
	if r.Summary.ThroughputKbps <= 0 {
		t.Error("no throughput measured")
	}
}

func TestSplitViolatesEndToEndSemantics(t *testing.T) {
	// The paper's §2 criticism: with a split connection, acknowledgments
	// reach the fixed host before the data reaches the mobile host. The
	// wired half must finish strictly earlier than the whole transfer.
	cfg := WAN(bs.SplitConnection, 576, 4*time.Second)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("did not complete")
	}
	if r.SplitWiredDone >= r.Summary.Elapsed {
		t.Errorf("wired half finished at %v, not before end-to-end completion %v",
			r.SplitWiredDone, r.Summary.Elapsed)
	}
	// The gap is large on this topology (56 kbps wire vs lossy 12.8 kbps
	// radio): the fixed host is done in well under half the real time.
	if r.SplitWiredDone > r.Summary.Elapsed/2 {
		t.Errorf("semantics gap suspiciously small: wired %v vs total %v",
			r.SplitWiredDone, r.Summary.Elapsed)
	}
}

func TestSplitWirelessHalfStillSuffersBurstLosses(t *testing.T) {
	// Splitting isolates the wireless losses but does not remove them:
	// the paper notes split connections "do not perform well in the
	// presence of bursty losses". The wireless-side sender must show
	// congestion events.
	cfg := WAN(bs.SplitConnection, 576, 4*time.Second)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws := r.SplitWireless
	if ws.Timeouts == 0 && ws.FastRetransmits == 0 {
		t.Error("wireless half saw no loss events under a 4s-fade channel")
	}
	// And EBSN beats split under identical conditions.
	e := WAN(bs.EBSN, 576, 4*time.Second)
	re, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if re.Summary.ThroughputKbps <= r.Summary.ThroughputKbps {
		t.Errorf("EBSN %.2f kbps not above split %.2f kbps",
			re.Summary.ThroughputKbps, r.Summary.ThroughputKbps)
	}
}

func TestSplitAvoidsFragmentation(t *testing.T) {
	// The wireless half uses MTU-sized segments, so the radio never
	// carries fragments.
	cfg := WAN(bs.SplitConnection, 1536, 2*time.Second)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("did not complete")
	}
	if r.Mobile.UnitsReceived == 0 {
		t.Fatal("no units at mobile host")
	}
	// Every unit at the mobile host is a whole (small) data segment; the
	// reassembler never sees fragments.
	if r.Sink.SegmentsReceived != r.Mobile.UnitsReceived {
		t.Errorf("units %d != segments %d: fragmentation happened",
			r.Mobile.UnitsReceived, r.Sink.SegmentsReceived)
	}
}

func TestSplitTraceFollowsWirelessHalf(t *testing.T) {
	cfg := WAN(bs.SplitConnection, 576, 2*time.Second)
	cfg.CollectTrace = true
	cfg.TransferSize = 20 * units.KB
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace == nil || len(r.Trace.Events()) == 0 {
		t.Error("split run collected no trace")
	}
}

func TestSplitLANRuns(t *testing.T) {
	cfg := LAN(bs.SplitConnection, 800*time.Millisecond)
	cfg.TransferSize = units.MB
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("LAN split did not complete")
	}
}

func TestBaseStationRejectsSplitScheme(t *testing.T) {
	// Guard the layering: the BaseStation agent must refuse the split
	// scheme (core owns that topology).
	cfg := WAN(bs.SplitConnection, 576, time.Second)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config invalid: %v", err)
	}
}
