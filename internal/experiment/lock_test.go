//go:build unix

package experiment

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestCheckpointLockRejectsSecondEngine: while one engine holds a
// checkpoint open, a second open of the same path must fail fast and
// name the holder — two engines persisting over each other would
// silently corrupt the sweep.
func TestCheckpointLockRejectsSecondEngine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	ck, err := openCheckpoint(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	_, err = openCheckpoint(path, "fp")
	if err == nil {
		t.Fatal("second open of a locked checkpoint succeeded, want locked-by error")
	}
	if !strings.Contains(err.Error(), "locked by another process") {
		t.Errorf("second-open error %q does not say the checkpoint is locked", err)
	}
	if !strings.Contains(err.Error(), strconv.Itoa(os.Getpid())) {
		t.Errorf("second-open error %q does not name the holder pid %d", err, os.Getpid())
	}

	// Release the lock: the next engine must get in, and the lock file
	// is deliberately left behind (unlinking would race a concurrent
	// opener into locking an orphaned inode).
	ck.close()
	ck2, err := openCheckpoint(path, "fp")
	if err != nil {
		t.Fatalf("open after release: %v", err)
	}
	ck2.close()
	ck2.close() // close is idempotent
	if _, err := os.Stat(path + ".lock"); err != nil {
		t.Errorf("lock file should remain in place after release: %v", err)
	}
}

// TestLedgerLockGuardsSharedPath: the exported ledger (the fleet
// coordinator's exactly-once store) inherits the same single-writer
// guard as the engine checkpoint.
func TestLedgerLockGuardsSharedPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.json")
	led, err := OpenLedger(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	if _, err := openCheckpoint(path, "fp"); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Errorf("engine opened a checkpoint a live ledger holds: err = %v", err)
	}
}
