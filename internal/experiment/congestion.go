package experiment

import (
	"fmt"
	"strings"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
	"wtcp/internal/stats"
	"wtcp/internal/units"
)

// CongestionPoint is one (scheme, wired load) cell of the congested-wire
// study — the interaction the paper defers to future work (§6): does EBSN
// remain effective, and does it stay out of the way of genuine congestion
// control, when the wired network is loaded?
type CongestionPoint struct {
	Scheme         bs.Scheme
	LoadFraction   float64 // cross traffic / wired capacity
	ThroughputKbps *stats.Sample
	TimeoutsAvg    float64
}

// CongestionOptions tunes the study.
type CongestionOptions struct {
	Replications int
	Transfer     units.ByteSize
	BadPeriod    time.Duration
	// Loads are cross-traffic rates as fractions of the wired capacity.
	Loads    []float64
	BaseSeed int64
}

func (o CongestionOptions) withDefaults() CongestionOptions {
	if o.Replications <= 0 {
		o.Replications = 3
	}
	if o.BadPeriod <= 0 {
		o.BadPeriod = 2 * time.Second
	}
	if len(o.Loads) == 0 {
		o.Loads = []float64{0, 0.3, 0.6}
	}
	return o
}

// CongestionStudy sweeps wired cross-traffic load for basic TCP and EBSN.
func CongestionStudy(opt CongestionOptions) ([]CongestionPoint, error) {
	opt = opt.withDefaults()
	var out []CongestionPoint
	for _, scheme := range []bs.Scheme{bs.Basic, bs.EBSN} {
		for _, load := range opt.Loads {
			var tput stats.Sample
			var timeouts uint64
			for seed := int64(1); seed <= int64(opt.Replications); seed++ {
				cfg := core.WAN(scheme, 576, opt.BadPeriod)
				if opt.Transfer > 0 {
					cfg.TransferSize = opt.Transfer
				}
				cfg.CrossTraffic = core.CrossTraffic{
					Rate: units.BitRate(load * float64(cfg.WiredRate)),
				}
				cfg.Seed = opt.BaseSeed + seed
				r, err := core.Run(cfg)
				if err != nil {
					return nil, err
				}
				tput.Add(r.Summary.ThroughputKbps)
				timeouts += r.Summary.Timeouts
			}
			out = append(out, CongestionPoint{
				Scheme:         scheme,
				LoadFraction:   load,
				ThroughputKbps: &tput,
				TimeoutsAvg:    float64(timeouts) / float64(opt.Replications),
			})
		}
	}
	return out, nil
}

// CongestionCSV emits the study as CSV.
func CongestionCSV(points []CongestionPoint) string {
	var b strings.Builder
	b.WriteString("scheme,load_fraction,throughput_kbps_mean,throughput_kbps_stddev,timeouts_avg\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%.2f,%.3f,%.3f,%.1f\n",
			p.Scheme, p.LoadFraction,
			p.ThroughputKbps.Mean(), p.ThroughputKbps.StdDev(), p.TimeoutsAvg)
	}
	return b.String()
}

// RenderCongestionTable formats the study.
func RenderCongestionTable(title string, points []CongestionPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s  %-12s  %-18s  %-10s\n", "scheme", "wired load", "throughput(Kbps)", "timeouts")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s  %-12s  %-18s  %-10.1f\n",
			p.Scheme, fmt.Sprintf("%.0f%%", 100*p.LoadFraction),
			fmt.Sprintf("%.2f±%.0f%%", p.ThroughputKbps.Mean(), 100*p.ThroughputKbps.RelStdDev()),
			p.TimeoutsAvg)
	}
	return b.String()
}
