package core_test

import (
	"fmt"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
)

// Example runs the paper's headline comparison at its default operating
// point: a 100 KB transfer over the wide-area topology with 4 s mean
// fades, first with plain TCP-Tahoe and then with EBSN.
func Example() {
	basic, err := core.Run(core.WAN(bs.Basic, 576, 4*time.Second))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ebsn, err := core.Run(core.WAN(bs.EBSN, 576, 4*time.Second))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("basic timeouts > 0: %v\n", basic.Summary.Timeouts > 0)
	fmt.Printf("ebsn timeouts:      %d\n", ebsn.Summary.Timeouts)
	fmt.Printf("ebsn faster:        %v\n",
		ebsn.Summary.ThroughputKbps > basic.Summary.ThroughputKbps)
	// Output:
	// basic timeouts > 0: true
	// ebsn timeouts:      0
	// ebsn faster:        true
}

// ExampleConfig_TheoreticalMaxKbps shows the paper's tput_th values for
// the wide-area sweep.
func ExampleConfig_TheoreticalMaxKbps() {
	for _, bad := range []time.Duration{time.Second, 4 * time.Second} {
		cfg := core.WAN(bs.Basic, 576, bad)
		fmt.Printf("bad=%v tput_th=%.2f Kbps\n", bad, cfg.TheoreticalMaxKbps())
	}
	// Output:
	// bad=1s tput_th=11.64 Kbps
	// bad=4s tput_th=9.14 Kbps
}

// ExampleRun_deterministicTrace reproduces the Figure 5 claim: under the
// deterministic fade schedule, EBSN eliminates every source timeout.
func ExampleRun_deterministicTrace() {
	cfg := core.WAN(bs.EBSN, core.PaperWANPacketDefault, 4*time.Second)
	cfg.Channel.Deterministic = true
	cfg.CollectTrace = true
	r, err := core.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("timeouts=%d source-retransmissions=%d ebsn-resets>0: %v\n",
		r.Summary.Timeouts, r.Sender.RetransSegments, r.Summary.EBSNResets > 0)
	// Output:
	// timeouts=0 source-retransmissions=0 ebsn-resets>0: true
}
