//go:build unix

package experiment

import (
	"fmt"
	"os"
	"strings"
	"syscall"
)

// acquireFileLock takes an exclusive advisory flock on path, creating it
// if needed, and records this process's pid inside for diagnostics. It
// fails fast (no blocking) when another process holds the lock, naming
// the holder. The kernel drops the lock if the process dies, so a
// SIGKILLed holder never leaves the path stale; the lock file itself is
// deliberately left in place on release — unlinking it would race a
// concurrent opener into locking an orphaned inode.
func acquireFileLock(path string) (release func(), err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		holder := "unknown pid"
		if data, rerr := os.ReadFile(path); rerr == nil {
			if pid := strings.TrimSpace(string(data)); pid != "" {
				holder = "pid " + pid
			}
		}
		f.Close()
		return nil, fmt.Errorf("locked by another process (%s); two engines must not share one checkpoint file", holder)
	}
	// Best-effort holder tag; the flock itself is the guard.
	f.Truncate(0)
	fmt.Fprintf(f, "%d\n", os.Getpid())
	f.Sync()
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
