package tcp

import (
	"testing"
	"testing/quick"
	"time"

	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// loop wires a Sender and Sink back to back over fixed-delay pipes with an
// optional per-packet drop predicate, giving TCP unit tests a controlled
// network.
type loop struct {
	s     *sim.Simulator
	snd   *Sender
	sink  *Sink
	delay time.Duration
	t     *testing.T
	// dropData decides whether a data segment is lost in transit;
	// dropAck likewise for ACKs. Nil means deliver everything.
	dropData func(p *packet.Packet) bool
	dropAck  func(p *packet.Packet) bool
}

func newLoop(t *testing.T, cfg Config, delay time.Duration) *loop {
	t.Helper()
	l := &loop{s: sim.New(), delay: delay, t: t}
	ids := &packet.IDGen{}
	sink, err := NewSink(l.s, cfg.Window, ids, func(p *packet.Packet) {
		if l.dropAck != nil && l.dropAck(p) {
			return
		}
		l.s.Schedule(l.delay, func() { l.snd.Receive(p) })
	})
	if err != nil {
		t.Fatalf("NewSink: %v", err)
	}
	l.sink = sink
	snd, err := NewSender(l.s, cfg, ids, func(p *packet.Packet) {
		if l.dropData != nil && l.dropData(p) {
			return
		}
		l.s.Schedule(l.delay, func() { l.sink.Receive(p) })
	})
	if err != nil {
		t.Fatalf("NewSender: %v", err)
	}
	l.snd = snd
	return l
}

func wanConfig() Config {
	return Config{
		MSS:    536,
		Window: 4 * units.KB,
		Total:  20 * units.KB,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"valid", wanConfig(), false},
		{"zero MSS", Config{Window: units.KB, Total: units.KB}, true},
		{"window below MSS", Config{MSS: 536, Window: 100, Total: units.KB}, true},
		{"zero total", Config{MSS: 536, Window: units.KB}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestConstructorRejections(t *testing.T) {
	s := sim.New()
	ids := &packet.IDGen{}
	if _, err := NewSender(s, Config{}, ids, func(*packet.Packet) {}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewSender(s, wanConfig(), ids, nil); err == nil {
		t.Error("nil out accepted")
	}
	if _, err := NewSink(s, 0, ids, func(*packet.Packet) {}); err == nil {
		t.Error("zero window sink accepted")
	}
	if _, err := NewSink(s, units.KB, ids, nil); err == nil {
		t.Error("nil sink out accepted")
	}
}

func TestCleanTransferCompletes(t *testing.T) {
	l := newLoop(t, wanConfig(), 50*time.Millisecond)
	l.snd.Start()
	if err := l.s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !l.snd.Done() {
		t.Fatal("transfer did not complete")
	}
	if got := l.sink.Delivered(); got != 20*units.KB {
		t.Errorf("delivered %d bytes, want %d", got, 20*units.KB)
	}
	st := l.snd.Stats()
	if st.RetransSegments != 0 || st.Timeouts != 0 || st.FastRetransmits != 0 {
		t.Errorf("clean path saw losses: %+v", st)
	}
	// Goodput invariant: non-retransmitted bytes = total + header per
	// original segment.
	segs := (20*units.KB + 535) / 536
	want := 20*units.KB + segs*packet.HeaderSize
	if got := st.BytesSent - st.RetransBytes; got != want {
		t.Errorf("fresh bytes = %d, want %d", got, want)
	}
}

func TestSlowStartDoubling(t *testing.T) {
	cfg := wanConfig()
	cfg.Window = 64 * units.KB
	cfg.Total = 64 * units.KB
	l := newLoop(t, cfg, 100*time.Millisecond)
	var sends []time.Duration
	l.snd.SetHooks(Hooks{OnSend: func(int64, units.ByteSize, bool) {
		sends = append(sends, l.s.Now())
	}})
	l.snd.Start()
	if err := l.s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Group sends by RTT rounds (round-trip is 200ms; all sends within a
	// round share a burst window of < 200ms here since pipes are instant).
	rounds := map[int]int{}
	for _, at := range sends {
		rounds[int(at/(200*time.Millisecond))]++
	}
	// Slow start: 1, 2, 4, 8 segments in the first four rounds.
	for i, want := range []int{1, 2, 4, 8} {
		if rounds[i] != want {
			t.Errorf("round %d sent %d segments, want %d", i, rounds[i], want)
		}
	}
}

func TestFastRetransmitRecoversSingleLoss(t *testing.T) {
	cfg := wanConfig()
	cfg.Total = 30 * units.KB
	l := newLoop(t, cfg, 50*time.Millisecond)
	dropped := false
	l.dropData = func(p *packet.Packet) bool {
		// Drop the first transmission of the segment at 5*536.
		if !dropped && p.Seq == 5*536 && !p.Retransmit {
			dropped = true
			return true
		}
		return false
	}
	l.snd.Start()
	if err := l.s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !l.snd.Done() {
		t.Fatal("transfer did not complete")
	}
	st := l.snd.Stats()
	if st.FastRetransmits != 1 {
		t.Errorf("FastRetransmits = %d, want 1", st.FastRetransmits)
	}
	if st.Timeouts != 0 {
		t.Errorf("Timeouts = %d, want 0 (dupacks should beat the timer)", st.Timeouts)
	}
	if l.sink.Delivered() != cfg.Total {
		t.Errorf("delivered %d, want %d", l.sink.Delivered(), cfg.Total)
	}
}

func TestFastRetransmitHalvesSsthresh(t *testing.T) {
	cfg := wanConfig()
	cfg.Total = 30 * units.KB
	l := newLoop(t, cfg, 50*time.Millisecond)
	dropped := false
	var cwndAtLoss, ssthreshAfter units.ByteSize
	l.dropData = func(p *packet.Packet) bool {
		if !dropped && p.Seq == 6*536 && !p.Retransmit {
			dropped = true
			cwndAtLoss = l.snd.Cwnd()
			return true
		}
		return false
	}
	l.snd.SetHooks(Hooks{OnFastRetransmit: func(int64) {
		ssthreshAfter = l.snd.Ssthresh()
	}})
	l.snd.Start()
	if err := l.s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if ssthreshAfter == 0 {
		t.Fatal("fast retransmit never fired")
	}
	// ssthresh = max(flight/2, 2*MSS) where flight <= min(cwnd@loss, wnd).
	if ssthreshAfter > cwndAtLoss && ssthreshAfter != 2*536 {
		t.Errorf("ssthresh %d exceeds cwnd at loss %d", ssthreshAfter, cwndAtLoss)
	}
	if ssthreshAfter < 2*536 {
		t.Errorf("ssthresh %d below the two-segment floor", ssthreshAfter)
	}
	// Tahoe: cwnd collapsed to one segment at the retransmit.
}

func TestTimeoutAndBackoff(t *testing.T) {
	cfg := wanConfig()
	cfg.InitialRTO = 1 * time.Second
	l := newLoop(t, cfg, 50*time.Millisecond)
	blackout := true
	l.dropData = func(*packet.Packet) bool { return blackout }
	var timeoutTimes []time.Duration
	l.snd.SetHooks(Hooks{OnTimeout: func(int64) {
		timeoutTimes = append(timeoutTimes, l.s.Now())
		if len(timeoutTimes) == 3 {
			blackout = false // heal the path after the third timeout
		}
	}})
	l.snd.Start()
	if err := l.s.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !l.snd.Done() {
		t.Fatal("transfer did not complete after blackout healed")
	}
	if len(timeoutTimes) < 3 {
		t.Fatalf("saw %d timeouts, want >= 3", len(timeoutTimes))
	}
	// Karn backoff: gaps between consecutive timeouts double (1s, 2s, 4s).
	gap1 := timeoutTimes[1] - timeoutTimes[0]
	gap2 := timeoutTimes[2] - timeoutTimes[1]
	if gap2 != 2*gap1 {
		t.Errorf("timeout gaps %v then %v, want doubling", gap1, gap2)
	}
	st := l.snd.Stats()
	if st.RetransSegments == 0 {
		t.Error("no retransmissions recorded across timeouts")
	}
}

func TestTimeoutCollapsesCwndToOneSegment(t *testing.T) {
	cfg := wanConfig()
	cfg.InitialRTO = 1 * time.Second
	l := newLoop(t, cfg, 50*time.Millisecond)
	drop := true
	l.dropData = func(*packet.Packet) bool { return drop }
	fired := false
	var cwndAfter units.ByteSize
	l.snd.SetHooks(Hooks{OnSend: func(_ int64, _ units.ByteSize, retx bool) {
		if retx && cwndAfter == 0 {
			cwndAfter = l.snd.Cwnd() // observed right as the timeout retransmits
		}
	}, OnTimeout: func(int64) {
		fired = true
		drop = false
	}})
	l.snd.Start()
	if err := l.s.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("timer did not fire")
	}
	if cwndAfter != 536 {
		t.Errorf("cwnd after timeout = %d, want one MSS", cwndAfter)
	}
}

func TestKarnNoSampleFromRetransmission(t *testing.T) {
	cfg := wanConfig()
	cfg.Total = 2 * 536 // two segments
	cfg.InitialRTO = 1 * time.Second
	l := newLoop(t, cfg, 200*time.Millisecond)
	first := true
	l.dropData = func(p *packet.Packet) bool {
		// Lose the entire first window once, forcing a timeout-driven
		// retransmission of segment 0.
		if first && !p.Retransmit {
			return true
		}
		return false
	}
	l.snd.SetHooks(Hooks{OnTimeout: func(int64) { first = false }})
	l.snd.Start()
	if err := l.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !l.snd.Done() {
		t.Fatal("did not complete")
	}
	// The ACK of the retransmitted segment 0 must not have produced an
	// RTT sample; only segment 1 (fresh, sent after recovery began) may.
	if got := l.snd.RTOEstimator().Samples(); got > 1 {
		t.Errorf("Samples = %d; a retransmitted segment was sampled", got)
	}
}

func TestEBSNPreventsTimeout(t *testing.T) {
	cfg := wanConfig()
	cfg.InitialRTO = 1 * time.Second
	l := newLoop(t, cfg, 50*time.Millisecond)
	l.dropData = func(*packet.Packet) bool { return true } // permanent blackout
	l.snd.Start()
	// Deliver an EBSN every 800ms (before each 1s timeout would fire).
	var pump func()
	ebsnCount := 0
	pump = func() {
		if ebsnCount < 10 {
			ebsnCount++
			l.snd.Receive(&packet.Packet{Kind: packet.EBSN})
			l.s.Schedule(800*time.Millisecond, pump)
		}
	}
	l.s.Schedule(800*time.Millisecond, pump)
	if err := l.s.Run(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := l.snd.Stats()
	if st.Timeouts != 0 {
		t.Errorf("Timeouts = %d with EBSN pump, want 0", st.Timeouts)
	}
	if st.EBSNResets != 10 {
		t.Errorf("EBSNResets = %d, want 10", st.EBSNResets)
	}
	// After the pump stops (last EBSN at 8.0s, timer re-armed to 9.0s),
	// the timer finally fires once; its backed-off successor lands beyond
	// the horizon.
	if err := l.s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := l.snd.Stats().Timeouts; got != 1 {
		t.Errorf("Timeouts after pump stopped = %d, want 1", got)
	}
}

func TestEBSNDoesNotTouchEstimatesOrCwnd(t *testing.T) {
	cfg := wanConfig()
	cfg.Total = 500 * units.KB // still in flight when the EBSN lands
	l := newLoop(t, cfg, 50*time.Millisecond)
	l.snd.Start()
	if err := l.s.Run(2 * time.Second); err != nil { // a few RTTs
		t.Fatal(err)
	}
	srtt := l.snd.RTOEstimator().SRTT()
	cwnd := l.snd.Cwnd()
	l.snd.Receive(&packet.Packet{Kind: packet.EBSN})
	if l.snd.RTOEstimator().SRTT() != srtt {
		t.Error("EBSN changed SRTT")
	}
	if l.snd.Cwnd() != cwnd {
		t.Error("EBSN changed cwnd")
	}
}

func TestEBSNIgnoredWhenIdle(t *testing.T) {
	cfg := wanConfig()
	l := newLoop(t, cfg, 10*time.Millisecond)
	l.snd.Start()
	if err := l.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !l.snd.Done() {
		t.Fatal("did not complete")
	}
	l.snd.Receive(&packet.Packet{Kind: packet.EBSN})
	if l.s.Pending() != 0 {
		t.Error("EBSN after completion armed a timer")
	}
}

func TestQuenchCollapsesCwndOnly(t *testing.T) {
	cfg := wanConfig()
	cfg.Total = 500 * units.KB // long enough to still be running at 2s
	l := newLoop(t, cfg, 50*time.Millisecond)
	l.snd.Start()
	if err := l.s.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	deadlineBefore := l.snd.timer.Deadline()
	l.snd.Receive(&packet.Packet{Kind: packet.SourceQuench})
	if got := l.snd.Cwnd(); got != 536 {
		t.Errorf("cwnd after quench = %d, want one MSS", got)
	}
	if l.snd.timer.Deadline() != deadlineBefore {
		t.Error("quench moved the retransmission timer (it must not)")
	}
	if l.snd.Stats().Quenches != 1 {
		t.Errorf("Quenches = %d", l.snd.Stats().Quenches)
	}
	// Transfer still completes afterwards.
	if err := l.s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !l.snd.Done() {
		t.Error("transfer did not complete after quench")
	}
}

func TestRenoFastRecoveryKeepsHalfWindow(t *testing.T) {
	cfg := wanConfig()
	cfg.Total = 40 * units.KB
	cfg.Variant = Reno
	l := newLoop(t, cfg, 50*time.Millisecond)
	dropped := false
	l.dropData = func(p *packet.Packet) bool {
		if !dropped && p.Seq == 6*536 && !p.Retransmit {
			dropped = true
			return true
		}
		return false
	}
	l.snd.Start()
	if err := l.s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !l.snd.Done() {
		t.Fatal("Reno transfer did not complete")
	}
	st := l.snd.Stats()
	if st.FastRetransmits != 1 {
		t.Errorf("FastRetransmits = %d, want 1", st.FastRetransmits)
	}
	if st.Timeouts != 0 {
		t.Errorf("Timeouts = %d, want 0", st.Timeouts)
	}
	// Reno's single-loss recovery retransmits exactly one segment; Tahoe's
	// go-back-N typically resends more.
	if st.RetransSegments != 1 {
		t.Errorf("RetransSegments = %d, want exactly 1 for Reno", st.RetransSegments)
	}
}

func TestVariantString(t *testing.T) {
	if Tahoe.String() != "tahoe" || Reno.String() != "reno" {
		t.Error("variant names")
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant should render")
	}
}

func TestFinalPartialSegment(t *testing.T) {
	cfg := wanConfig()
	cfg.Total = 5*536 + 123 // last segment is 123 bytes
	l := newLoop(t, cfg, 20*time.Millisecond)
	var lastPayload units.ByteSize
	l.snd.SetHooks(Hooks{OnSend: func(_ int64, payload units.ByteSize, _ bool) {
		lastPayload = payload
	}})
	l.snd.Start()
	if err := l.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !l.snd.Done() {
		t.Fatal("did not complete")
	}
	if lastPayload != 123 {
		t.Errorf("last segment payload = %d, want 123", lastPayload)
	}
	if l.sink.Delivered() != cfg.Total {
		t.Errorf("delivered %d, want %d", l.sink.Delivered(), cfg.Total)
	}
}

func TestStartIdempotent(t *testing.T) {
	l := newLoop(t, wanConfig(), 20*time.Millisecond)
	l.snd.Start()
	sent := l.snd.Stats().SegmentsSent
	l.snd.Start()
	if l.snd.Stats().SegmentsSent != sent {
		t.Error("second Start sent more data")
	}
}

// Property: under any bounded random loss pattern the transfer completes,
// the sink receives exactly Total in-order bytes, and the fresh-bytes
// accounting invariant holds.
func TestPropertyLossyTransferInvariants(t *testing.T) {
	f := func(seed int64, dropPctRaw uint8) bool {
		dropPct := float64(dropPctRaw%60) / 100 // up to 59% loss
		rng := sim.NewRNG(seed)
		cfg := Config{
			MSS:        536,
			Window:     4 * units.KB,
			Total:      10 * units.KB,
			InitialRTO: 500 * time.Millisecond,
		}
		l := newLoop(t, cfg, 20*time.Millisecond)
		l.dropData = func(*packet.Packet) bool { return rng.Bernoulli(dropPct) }
		l.dropAck = func(*packet.Packet) bool { return rng.Bernoulli(dropPct) }
		l.snd.Start()
		if err := l.s.Run(4 * time.Hour); err != nil {
			return false
		}
		if !l.snd.Done() {
			return false
		}
		if l.sink.Delivered() != cfg.Total {
			return false
		}
		st := l.snd.Stats()
		segs := (cfg.Total + cfg.MSS - 1) / cfg.MSS
		want := cfg.Total + segs*packet.HeaderSize
		return st.BytesSent-st.RetransBytes == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
