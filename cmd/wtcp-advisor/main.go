// Command wtcp-advisor builds the paper's §4.1 deployment artifact: the
// fixed table a base station keeps, mapping a wireless error
// characteristic (mean bad-period length) to the "good" wired packet size
// for it. It calibrates by simulation sweeps and can then answer
// point queries.
//
//	wtcp-advisor                      # calibrate and print the table
//	wtcp-advisor -query 2.5s          # calibrate, then recommend for 2.5s fades
//	wtcp-advisor -reps 10 -csv        # higher-confidence calibration, CSV out
//
// With -server it skips local calibration and asks a running wtcpd,
// whose content-addressed cache and shared point ledgers make repeat
// and overlapping queries nearly free:
//
//	wtcp-advisor -server http://127.0.0.1:8787 -query 2.5s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"

	"wtcp/internal/experiment"
	"wtcp/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wtcp-advisor:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wtcp-advisor", flag.ContinueOnError)
	var (
		reps   = fs.Int("reps", 5, "replications per calibration point")
		query  = fs.Duration("query", 0, "optionally recommend a packet size for this mean bad period")
		csv    = fs.Bool("csv", false, "emit the table as CSV")
		server = fs.String("server", "", "query a running wtcpd (base URL) instead of calibrating locally")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server != "" {
		return runRemote(*server, *query, *csv)
	}
	advisor, err := experiment.CalibrateAdvisor(context.Background(), experiment.Options{Replications: *reps})
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println("mean_bad_sec,packet_size_bytes,throughput_kbps")
		for _, e := range advisor.Table() {
			fmt.Printf("%.1f,%d,%.2f\n", e.MeanBad.Seconds(), e.PacketSize, e.ThroughputKbps)
		}
	} else {
		fmt.Println("packet-size advisory table (basic TCP, wide-area preset):")
		fmt.Print(advisor.String())
	}
	if *query > 0 {
		size := advisor.Recommend(*query)
		fmt.Printf("recommended packet size for %v fades: %s\n", *query, size)
	}
	return nil
}

// runRemote asks a wtcpd for the advisory column of one error
// characteristic. The server settles only the calibration points nobody
// has computed yet (sweep campaigns and earlier advise queries share
// its point ledgers), so this is cheap against a warm server.
func runRemote(base string, query time.Duration, csv bool) error {
	if query <= 0 {
		return fmt.Errorf("-server needs -query (the observed mean bad period, e.g. -query 2.5s)")
	}
	u, err := url.Parse(base)
	if err != nil {
		return fmt.Errorf("parse -server: %w", err)
	}
	u = u.JoinPath("/v1/advise")
	u.RawQuery = url.Values{"bad": {query.String()}}.Encode()

	resp, err := http.Get(u.String())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("wtcpd: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("wtcpd: HTTP %d", resp.StatusCode)
	}
	var adv serve.AdviseResponse
	if err := json.Unmarshal(body, &adv); err != nil {
		return fmt.Errorf("decode wtcpd response: %w", err)
	}

	if csv {
		fmt.Println("packet_size_bytes,throughput_kbps")
		for _, e := range adv.Table {
			fmt.Printf("%d,%.2f\n", e.PacketSizeBytes, e.ThroughputKbps)
		}
	} else {
		fmt.Printf("advisory column for %s fades (server %s, cache %s):\n",
			adv.MeanBad, base, resp.Header.Get("X-Wtcpd-Cache"))
		for _, e := range adv.Table {
			fmt.Printf("  %-6d -> %.2f Kbps\n", e.PacketSizeBytes, e.ThroughputKbps)
		}
		for _, q := range adv.Quarantined {
			fmt.Printf("  quarantined: %s\n", q)
		}
	}
	fmt.Printf("recommended packet size for %s fades: %d bytes (%.2f Kbps)\n",
		adv.MeanBad, adv.RecommendedPacketSizeBytes, adv.ThroughputKbps)
	return nil
}
