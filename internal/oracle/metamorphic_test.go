package oracle_test

// Metamorphic paper-fidelity gates: rather than pinning absolute
// throughput numbers (which drift with any legitimate model change),
// these tests pin the paper's *relations* — the directions and shapes
// its figures argue from. Every run executes with the conformance oracle
// armed, so a metamorphic regression and a protocol violation are both
// caught here.

import (
	"fmt"
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
	"wtcp/internal/units"
)

// meanThroughput averages throughput over a few seeded replications.
func meanThroughput(t *testing.T, build func(seed int64) core.Config) float64 {
	t.Helper()
	const reps = 3
	sum := 0.0
	for seed := int64(1); seed <= reps; seed++ {
		cfg := build(seed)
		cfg.Oracle = true
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: transfer did not complete", seed)
		}
		sum += res.Summary.ThroughputKbps
	}
	return sum / reps
}

// TestThroughputMonotoneInErrorSeverity is the paper's independent
// variable: longer mean fades must not raise throughput. A small
// tolerance absorbs replication noise at test-sized transfers.
func TestThroughputMonotoneInErrorSeverity(t *testing.T) {
	bads := []time.Duration{
		500 * time.Millisecond, time.Second, 2 * time.Second, 4 * time.Second,
	}
	for _, scheme := range []bs.Scheme{bs.Basic, bs.EBSN} {
		prev := -1.0
		prevBad := time.Duration(0)
		for _, bad := range bads {
			bad := bad
			tput := meanThroughput(t, func(seed int64) core.Config {
				cfg := core.WAN(scheme, 576, bad)
				cfg.TransferSize = 40 * units.KB
				cfg.Seed = seed
				return cfg
			})
			if prev >= 0 && tput > prev*1.10 {
				t.Errorf("%v: throughput rose with longer fades: bad=%v -> %.2f Kbps, bad=%v -> %.2f Kbps",
					scheme, prevBad, prev, bad, tput)
			}
			prev, prevBad = tput, bad
		}
	}
}

// TestEBSNAtLeastBasic pins the paper's headline: explicit bad-state
// notification never hurts, because the source's RTO stops backing off
// against losses it did not cause. Figures 6-8 show EBSN >= basic TCP
// across the whole sweep; 5% tolerance covers seed noise.
func TestEBSNAtLeastBasic(t *testing.T) {
	for _, bad := range []time.Duration{time.Second, 4 * time.Second} {
		bad := bad
		run := func(scheme bs.Scheme) float64 {
			return meanThroughput(t, func(seed int64) core.Config {
				cfg := core.WAN(scheme, 576, bad)
				cfg.TransferSize = 40 * units.KB
				cfg.Seed = seed
				return cfg
			})
		}
		basic := run(bs.Basic)
		ebsn := run(bs.EBSN)
		if ebsn < basic*0.95 {
			t.Errorf("bad=%v: EBSN %.2f Kbps below basic %.2f Kbps", bad, ebsn, basic)
		}
	}
}

// TestPacketSizeSweepUnimodal pins the shape of Figure 7's packet-size
// axis: throughput rises toward an interior optimum (bigger packets
// amortize headers) and falls past it (bigger packets lose more to each
// fade). The gate allows a 20% dip against the running envelope on each
// side of the peak — the claim is the shape, not the exact values.
func TestPacketSizeSweepUnimodal(t *testing.T) {
	sizes := []units.ByteSize{128, 256, 576, 1024, 1536}
	tputs := make([]float64, len(sizes))
	for i, size := range sizes {
		size := size
		tputs[i] = meanThroughput(t, func(seed int64) core.Config {
			cfg := core.WAN(bs.EBSN, size, 2*time.Second)
			cfg.TransferSize = 40 * units.KB
			cfg.Seed = seed
			return cfg
		})
	}
	peak := 0
	for i, v := range tputs {
		if v > tputs[peak] {
			peak = i
		}
	}
	const tol = 0.80
	// Left of the peak: each point must beat the best seen so far, up to
	// tolerance (no deep valley on the rise).
	best := 0.0
	for i := 0; i <= peak; i++ {
		if tputs[i] < best*tol {
			t.Errorf("valley on the rising side: size %d gives %.2f Kbps, after %.2f", sizes[i], tputs[i], best)
		}
		if tputs[i] > best {
			best = tputs[i]
		}
	}
	// Right of the peak: no point may climb back above the falling
	// envelope (a second mode).
	ceil := tputs[peak]
	for i := peak + 1; i < len(tputs); i++ {
		if tputs[i] > ceil/tol {
			t.Errorf("second mode on the falling side: size %d gives %.2f Kbps, ceiling %.2f", sizes[i], tputs[i], ceil)
		}
		if tputs[i] < ceil {
			ceil = tputs[i]
		}
	}
	if testing.Verbose() {
		for i := range sizes {
			fmt.Printf("size=%d tput=%.2f\n", sizes[i], tputs[i])
		}
	}
}
