package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		buf := new(strings.Builder)
		chunk := make([]byte, 1<<16)
		for {
			n, err := r.Read(chunk)
			buf.Write(chunk[:n])
			if err != nil {
				break
			}
		}
		done <- buf.String()
	}()
	runErr := fn()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, runErr
}

func TestAdvisorTable(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-reps", "1"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "mean bad period -> good packet size") {
		t.Errorf("table missing:\n%s", out)
	}
}

func TestAdvisorQueryAndCSV(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-reps", "1", "-csv", "-query", "2s"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "mean_bad_sec,packet_size_bytes,throughput_kbps") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if !strings.Contains(out, "recommended packet size for 2s fades") {
		t.Errorf("query answer missing:\n%s", out)
	}
}

func TestAdvisorRejectsBadFlags(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-bogus"}) }); err == nil {
		t.Error("unknown flag accepted")
	}
}
