package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wtcp/internal/experiment"
)

// TestMain doubles as the subprocess-worker entry point: when the
// harness env var is set, the test binary runs a fleet worker instead
// of the test suite (the crash tests re-exec the binary this way so a
// SIGKILL hits a real process, not a goroutine). runTestWorker lives in
// crash_test.go (unix-only).
func TestMain(m *testing.M) {
	if os.Getenv("WTCP_FLEET_TEST_WORKER") == "1" {
		runTestWorker()
		return
	}
	os.Exit(m.Run())
}

// quickCampaign is a four-point campaign small enough for unit tests.
func quickCampaign() Campaign {
	return Campaign{
		Sweeps:       []string{experiment.SweepFig7},
		Replications: 2,
		TransferKB:   20,
		PacketSizes:  []int{128, 512},
		BadPeriods:   []string{"1s", "2s"},
	}
}

func TestCampaignValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"no sweeps", `{}`, "names no sweeps"},
		{"unknown sweep", `{"sweeps": ["fig99"]}`, "unknown sweep"},
		{"unknown field", `{"sweeps": ["fig7"], "replicatoins": 3}`, "unknown field"},
		{"tiny packet", `{"sweeps": ["fig7"], "packet_sizes": [8]}`, "40-byte"},
		{"bad duration", `{"sweeps": ["fig7"], "bad_periods": ["soon"]}`, "bad_periods[0]"},
		{"negative reps", `{"sweeps": ["fig7"], "replications": -1}`, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseCampaign([]byte(tc.json))
			if err == nil {
				t.Fatalf("ParseCampaign(%s) accepted", tc.json)
			}
			if !bytes.Contains([]byte(err.Error()), []byte(tc.want)) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	c, err := ParseCampaign([]byte(`{"sweeps": ["fig7", "lan"], "replications": 3, "transfer_kb": 20, "bad_periods": ["1s"]}`))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := c.Specs()
	if err != nil {
		t.Fatal(err)
	}
	// fig7: 1 bad x 12 default sizes; lan: 2 schemes x 1 bad.
	if len(specs) != 14 {
		t.Fatalf("specs = %d, want 14", len(specs))
	}
}

// testCoordinator spins up a coordinator with a short lease TTL and
// returns it plus a direct handler-invocation helper.
func testCoordinator(t *testing.T, c Campaign, ttl time.Duration) (*Coordinator, func(path string, req, out any)) {
	t.Helper()
	coord, err := NewCoordinator(CoordinatorConfig{
		Campaign:   c,
		LedgerPath: filepath.Join(t.TempDir(), "ledger.json"),
		LeaseTTL:   ttl,
		Log:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	h := coord.Handler()
	call := func(path string, req, out any) {
		t.Helper()
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", path, w.Code, w.Body.String())
		}
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: decode reply: %v", path, err)
		}
	}
	return coord, call
}

// fakeResult fabricates a plausible result post for a leased unit (the
// coordinator never inspects replication contents).
func fakeResult(worker string, u *workUnit) resultRequest {
	return resultRequest{
		Worker: worker,
		Lease:  u.Lease,
		Outcome: experiment.PointOutcome{
			Key:  u.Key,
			Reps: []experiment.RepRecord{{Seed: 0, Values: []uint64{42}}, {Seed: 1, Values: []uint64{43}}},
		},
	}
}

func TestLeaseSettleFlow(t *testing.T) {
	coord, call := testCoordinator(t, quickCampaign(), time.Minute)
	keys := map[string]bool{}
	for i := 0; i < 4; i++ {
		var rep leaseReply
		call("/v1/lease", leaseRequest{Worker: "w1"}, &rep)
		if rep.Done || rep.Unit == nil {
			t.Fatalf("lease %d: done=%v unit=%v, want a grant", i, rep.Done, rep.Unit)
		}
		if keys[rep.Unit.Key] {
			t.Fatalf("key %s granted twice while leased", rep.Unit.Key)
		}
		keys[rep.Unit.Key] = true
		var res resultReply
		call("/v1/result", fakeResult("w1", rep.Unit), &res)
		if !res.Accepted || res.Duplicate {
			t.Fatalf("result %d: %+v, want fresh accept", i, res)
		}
	}
	var rep leaseReply
	call("/v1/lease", leaseRequest{Worker: "w1"}, &rep)
	if !rep.Done {
		t.Fatalf("after settling all units lease reply = %+v, want Done", rep)
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("coordinator not Done after all units settled")
	}
	snap := coord.Snapshot()
	if snap.Settled != 4 || snap.TotalUnits != 4 || snap.Duplicates != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Workers) != 1 || snap.Workers[0].Completed != 4 {
		t.Fatalf("worker accounting = %+v", snap.Workers)
	}
}

func TestDuplicateResultDropped(t *testing.T) {
	_, call := testCoordinator(t, quickCampaign(), time.Minute)
	var rep leaseReply
	call("/v1/lease", leaseRequest{Worker: "w1"}, &rep)
	res := fakeResult("w1", rep.Unit)
	var first, second resultReply
	call("/v1/result", res, &first)
	call("/v1/result", res, &second)
	if !first.Accepted || first.Duplicate {
		t.Fatalf("first post = %+v, want fresh accept", first)
	}
	if !second.Accepted || !second.Duplicate {
		t.Fatalf("second post = %+v, want duplicate drop", second)
	}
}

func TestExpiredLeaseReassignsWithAttribution(t *testing.T) {
	ttl := 100 * time.Millisecond
	coord, call := testCoordinator(t, quickCampaign(), ttl)

	// w1 takes a unit and goes silent (simulating SIGKILL).
	var dead leaseReply
	call("/v1/lease", leaseRequest{Worker: "w1"}, &dead)
	deadKey := dead.Unit.Key

	// Wait for the sweeper to lapse the lease.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap := coord.Snapshot(); snap.Expired > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(ttl / 4)
	}

	// w2 drains the campaign; it must receive the dead worker's unit.
	got := map[string]bool{}
	for {
		var rep leaseReply
		call("/v1/lease", leaseRequest{Worker: "w2"}, &rep)
		if rep.Done {
			break
		}
		if rep.Unit == nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		got[rep.Unit.Key] = true
		var res resultReply
		call("/v1/result", fakeResult("w2", rep.Unit), &res)
		if !res.Accepted || res.Duplicate {
			t.Fatalf("result for %s = %+v", rep.Unit.Key, res)
		}
	}
	if !got[deadKey] {
		t.Fatalf("dead worker's unit %s never reassigned to w2 (got %v)", deadKey, got)
	}
	snap := coord.Snapshot()
	if snap.Settled != 4 {
		t.Fatalf("settled = %d, want 4", snap.Settled)
	}
	var attributed bool
	for _, r := range snap.Reassigned {
		if r.Key == deadKey && r.Worker == "w1" {
			attributed = true
		}
	}
	if !attributed {
		t.Fatalf("reassignment of %s not attributed to w1: %+v", deadKey, snap.Reassigned)
	}
}

func TestLateResultFromExpiredLeaseIsSafe(t *testing.T) {
	ttl := 100 * time.Millisecond
	coord, call := testCoordinator(t, quickCampaign(), ttl)

	var slow leaseReply
	call("/v1/lease", leaseRequest{Worker: "slow"}, &slow)

	// Let the lease lapse, reassign to a fast worker, settle it there.
	deadline := time.Now().Add(5 * time.Second)
	for coord.Snapshot().Expired == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(ttl / 4)
	}
	var again leaseReply
	for {
		call("/v1/lease", leaseRequest{Worker: "fast"}, &again)
		if again.Unit != nil && again.Unit.Key == slow.Unit.Key {
			break
		}
		if again.Unit != nil {
			var res resultReply
			call("/v1/result", fakeResult("fast", again.Unit), &res)
		}
		if again.Done {
			t.Fatal("campaign done before the lapsed unit was regranted")
		}
	}
	var res resultReply
	call("/v1/result", fakeResult("fast", again.Unit), &res)
	if !res.Accepted || res.Duplicate {
		t.Fatalf("fast settle = %+v", res)
	}

	// The slow worker finally posts through its dead lease: must be
	// dropped as a duplicate, not double-recorded.
	var late resultReply
	call("/v1/result", fakeResult("slow", slow.Unit), &late)
	if !late.Accepted || !late.Duplicate {
		t.Fatalf("late post = %+v, want duplicate drop", late)
	}
	snap := coord.Snapshot()
	if snap.Duplicates != 1 || snap.LateResults == 0 {
		t.Fatalf("snapshot counters = duplicates %d lateResults %d", snap.Duplicates, snap.LateResults)
	}
}

func TestRenewExtendsAndRejects(t *testing.T) {
	_, call := testCoordinator(t, quickCampaign(), time.Minute)
	var rep leaseReply
	call("/v1/lease", leaseRequest{Worker: "w1"}, &rep)

	var ren renewReply
	call("/v1/renew", renewRequest{Worker: "w1", Lease: rep.Unit.Lease}, &ren)
	if !ren.OK {
		t.Fatalf("renew of live lease rejected: %+v", ren)
	}

	// Settle the unit; a further renewal must be rejected so the worker
	// abandons the (now pointless) unit.
	var res resultReply
	call("/v1/result", fakeResult("w1", rep.Unit), &res)
	call("/v1/renew", renewRequest{Worker: "w1", Lease: rep.Unit.Lease}, &ren)
	if ren.OK {
		t.Fatal("renew of settled unit's lease accepted")
	}

	// A renewal for a lease that never existed is likewise rejected.
	call("/v1/renew", renewRequest{Worker: "w1", Lease: 9999}, &ren)
	if ren.OK {
		t.Fatal("renew of unknown lease accepted")
	}
}

func TestStragglerStolenAndFirstFinisherWins(t *testing.T) {
	coord, call := testCoordinator(t, quickCampaign(), time.Minute)

	// The straggler takes the first unit and sits on it (renewing, so its
	// lease never expires — this is the hung-but-alive case expiry cannot
	// catch).
	var strag leaseReply
	call("/v1/lease", leaseRequest{Worker: "strag"}, &strag)

	// A fast worker settles the remaining units, building up the settle-
	// time median the steal threshold needs; once at least
	// stealMinSamples units have settled and the pending queue is empty,
	// the straggler's unit (held far over 4x the near-zero median) is
	// offered to the idle fast worker as a stolen grant.
	var stolenUnit *workUnit
	deadline := time.Now().Add(5 * time.Second)
	for stolenUnit == nil {
		if time.Now().After(deadline) {
			t.Fatal("straggler's unit never offered for stealing")
		}
		var rep leaseReply
		call("/v1/lease", leaseRequest{Worker: "fast"}, &rep)
		switch {
		case rep.Done:
			t.Fatal("campaign done while straggler still holds a unit")
		case rep.Unit == nil:
			time.Sleep(10 * time.Millisecond)
		case rep.Unit.Stolen:
			stolenUnit = rep.Unit
		default:
			var res resultReply
			call("/v1/result", fakeResult("fast", rep.Unit), &res)
		}
	}
	if stolenUnit.Key != strag.Unit.Key {
		t.Fatalf("stolen grant = %+v, want straggler's unit %s", stolenUnit, strag.Unit.Key)
	}

	// First finisher (the thief) settles the point...
	var res resultReply
	call("/v1/result", fakeResult("fast", stolenUnit), &res)
	if !res.Accepted || res.Duplicate {
		t.Fatalf("thief settle = %+v", res)
	}
	// ...the straggler's renewal is rejected (abandon signal)...
	var ren renewReply
	call("/v1/renew", renewRequest{Worker: "strag", Lease: strag.Unit.Lease}, &ren)
	if ren.OK {
		t.Fatal("straggler's renewal accepted after thief settled the point")
	}
	// ...and its eventual post is dropped as a duplicate.
	var late resultReply
	call("/v1/result", fakeResult("strag", strag.Unit), &late)
	if !late.Duplicate {
		t.Fatalf("straggler post = %+v, want duplicate drop", late)
	}
	snap := coord.Snapshot()
	if snap.Stolen != 1 || snap.Settled != 4 {
		t.Fatalf("snapshot = stolen %d settled %d, want 1 and 4", snap.Stolen, snap.Settled)
	}
}

func TestFailFastStopsCampaign(t *testing.T) {
	coord, call := testCoordinator(t, quickCampaign(), time.Minute)
	var rep leaseReply
	call("/v1/lease", leaseRequest{Worker: "w1"}, &rep)
	var res resultReply
	call("/v1/result", resultRequest{
		Worker:  "w1",
		Lease:   rep.Unit.Lease,
		Outcome: experiment.PointOutcome{Key: rep.Unit.Key},
		Failure: "protocol bug: oracle rule tahoe-window violated",
	}, &res)
	select {
	case <-coord.Done():
	case <-time.After(time.Second):
		t.Fatal("campaign not stopped by fail-fast result")
	}
	if err := coord.Err(); err == nil || !bytes.Contains([]byte(err.Error()), []byte("oracle rule")) {
		t.Fatalf("Err() = %v, want the worker's failure", err)
	}
	var next leaseReply
	call("/v1/lease", leaseRequest{Worker: "w2"}, &next)
	if !next.Done {
		t.Fatalf("lease after failure = %+v, want Done", next)
	}
}

func TestCoordinatorResumesFromLedger(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "ledger.json")
	c := quickCampaign()

	// First campaign: settle two of four units, then stop.
	coord1, err := NewCoordinator(CoordinatorConfig{Campaign: c, LedgerPath: ledger, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	h := coord1.Handler()
	call := func(path string, req, out any) {
		t.Helper()
		body, _ := json.Marshal(req)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body)))
		if w.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", path, w.Code, w.Body.String())
		}
		json.Unmarshal(w.Body.Bytes(), out)
	}
	settled := map[string]bool{}
	for i := 0; i < 2; i++ {
		var rep leaseReply
		call("/v1/lease", leaseRequest{Worker: "w1"}, &rep)
		var res resultReply
		call("/v1/result", fakeResult("w1", rep.Unit), &res)
		settled[rep.Unit.Key] = true
	}
	coord1.Close()

	// Second coordinator on the same ledger: only the two unfinished
	// units are dispatchable.
	coord2, call2 := testCoordinatorAt(t, c, ledger)
	granted := map[string]bool{}
	for {
		var rep leaseReply
		call2("/v1/lease", leaseRequest{Worker: "w2"}, &rep)
		if rep.Done {
			break
		}
		if rep.Unit == nil {
			t.Fatalf("unexpected wait with pending units")
		}
		if settled[rep.Unit.Key] {
			t.Fatalf("already-settled unit %s re-dispatched after resume", rep.Unit.Key)
		}
		granted[rep.Unit.Key] = true
		var res resultReply
		call2("/v1/result", fakeResult("w2", rep.Unit), &res)
	}
	if len(granted) != 2 {
		t.Fatalf("resumed campaign dispatched %d units, want 2", len(granted))
	}
	if snap := coord2.Snapshot(); snap.Settled != 4 {
		t.Fatalf("settled = %d, want 4", snap.Settled)
	}
}

// testCoordinatorAt is testCoordinator with an explicit ledger path.
func testCoordinatorAt(t *testing.T, c Campaign, ledger string) (*Coordinator, func(path string, req, out any)) {
	t.Helper()
	coord, err := NewCoordinator(CoordinatorConfig{Campaign: c, LedgerPath: ledger, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	h := coord.Handler()
	return coord, func(path string, req, out any) {
		t.Helper()
		body, _ := json.Marshal(req)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body)))
		if w.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", path, w.Code, w.Body.String())
		}
		json.Unmarshal(w.Body.Bytes(), out)
	}
}

func TestQuarantineAttributedToWorker(t *testing.T) {
	coord, call := testCoordinator(t, quickCampaign(), time.Minute)
	var rep leaseReply
	call("/v1/lease", leaseRequest{Worker: "w7"}, &rep)
	var res resultReply
	call("/v1/result", resultRequest{
		Worker: "w7",
		Lease:  rep.Unit.Lease,
		Outcome: experiment.PointOutcome{
			Key: rep.Unit.Key,
			Quarantine: &experiment.Quarantine{
				Key: rep.Unit.Key, Class: "resource-exhausted", Attempts: 2, Reason: "budget: max events",
			},
		},
	}, &res)
	if !res.Accepted {
		t.Fatalf("quarantine post = %+v", res)
	}
	snap := coord.Snapshot()
	if snap.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", snap.Quarantined)
	}
	qs := coord.ledger.Quarantined()
	if len(qs) != 1 || qs[0].Worker != "w7" {
		t.Fatalf("ledger quarantine = %+v, want attribution to w7", qs)
	}
}
