package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wtcp/internal/core"
	"wtcp/internal/trace"
)

// TestGoldenScenariosByteStable is the harness's own foundation: replaying
// a scenario twice must produce byte-identical encodings, or committed
// goldens would flap.
func TestGoldenScenariosByteStable(t *testing.T) {
	for _, sc := range scenarios {
		runOnce := func() string {
			cfg := sc.build()
			cfg.CollectTrace = true
			cfg.Oracle = true
			res, err := core.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", sc.name, err)
			}
			if !res.Completed {
				t.Fatalf("%s: did not complete", sc.name)
			}
			return res.Trace.Encode()
		}
		a, b := runOnce(), runOnce()
		if a != b {
			t.Errorf("%s: two replays produced different encodings", sc.name)
		}
		// The encoding must round-trip through its own decoder.
		if _, evs, err := trace.DecodeEvents(a); err != nil {
			t.Errorf("%s: encoding does not decode: %v", sc.name, err)
		} else if len(evs) == 0 {
			t.Errorf("%s: empty trace", sc.name)
		}
	}
}

// TestCommittedGoldensMatch runs the gate in compare mode against the
// goldens committed in testdata — the in-process version of the CI job.
func TestCommittedGoldensMatch(t *testing.T) {
	if err := run([]string{"-dir", "testdata/goldens"}); err != nil {
		t.Fatalf("committed goldens drifted: %v", err)
	}
}

// TestUpdateThenCompare exercises the full cycle in a scratch directory:
// -update writes goldens, compare mode accepts them, and a second -update
// rewrites them byte-identically.
func TestUpdateThenCompare(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dir", dir, "-update"}); err != nil {
		t.Fatalf("update: %v", err)
	}
	if err := run([]string{"-dir", dir}); err != nil {
		t.Fatalf("compare after update: %v", err)
	}
	first := readAll(t, dir)
	if err := run([]string{"-dir", dir, "-update"}); err != nil {
		t.Fatalf("second update: %v", err)
	}
	second := readAll(t, dir)
	for name, a := range first {
		if b, ok := second[name]; !ok || a != b {
			t.Errorf("%s not byte-stable across regenerations", name)
		}
	}
}

// TestCompareDetectsTampering corrupts one committed-golden copy and
// requires the gate to name the divergent event.
func TestCompareDetectsTampering(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dir", dir, "-update"}); err != nil {
		t.Fatalf("update: %v", err)
	}
	path := filepath.Join(dir, scenarios[0].name+".golden")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a cwnd value on the second line (first event).
	lines := strings.SplitN(string(data), "\n", 3)
	if len(lines) < 3 {
		t.Fatal("golden too short to tamper with")
	}
	lines[1] = strings.Replace(lines[1], "cwnd=", "cwnd=9", 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-dir", dir})
	if err == nil {
		t.Fatal("tampered golden passed the gate")
	}
	if !strings.Contains(err.Error(), "drifted") {
		t.Errorf("error does not report drift: %v", err)
	}
}

// TestLegacyGoldensSurviveZooRefactor pins the four goldens that predate
// the protocol zoo (Tahoe sender, ARQ/EBSN base station) byte-for-byte:
// the zoo's variant plumbing, the oracle's profile split, and the Snoop
// hooks must leave every pre-existing scenario's trace untouched. A
// failure here means the refactor changed committed protocol behaviour,
// not just added to it.
func TestLegacyGoldensSurviveZooRefactor(t *testing.T) {
	legacy := map[string]bool{
		"wan-basic": true, "wan-ebsn": true, "lan-local": true, "lan-ebsn": true,
	}
	seen := 0
	for _, sc := range scenarios {
		if !legacy[sc.name] {
			continue
		}
		seen++
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			cfg := sc.build()
			cfg.CollectTrace = true
			cfg.Oracle = true
			res, err := core.Run(cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", "goldens", sc.name+".golden"))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			if res.Trace.Encode() != string(want) {
				t.Fatalf("legacy golden %s drifted: the zoo refactor changed pre-existing protocol behaviour", sc.name)
			}
		})
	}
	if seen != len(legacy) {
		t.Fatalf("found %d of %d legacy scenarios in the scenario list", seen, len(legacy))
	}
}

// TestMissingGoldenIsAnError keeps the gate honest on fresh checkouts: a
// missing golden must fail, not silently pass.
func TestMissingGoldenIsAnError(t *testing.T) {
	if err := run([]string{"-dir", t.TempDir()}); err == nil {
		t.Fatal("missing goldens passed the gate")
	}
}

func readAll(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(data)
	}
	return out
}
