package queue

import (
	"testing"

	"wtcp/internal/sim"
)

func validRED() REDConfig {
	return REDConfig{MinThreshold: 5, MaxThreshold: 15, MaxP: 0.1, Weight: 0.2}
}

func TestREDConfigValidate(t *testing.T) {
	if err := validRED().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*REDConfig)
	}{
		{"negative min", func(c *REDConfig) { c.MinThreshold = -1 }},
		{"max not above min", func(c *REDConfig) { c.MaxThreshold = c.MinThreshold }},
		{"zero maxp", func(c *REDConfig) { c.MaxP = 0 }},
		{"maxp above one", func(c *REDConfig) { c.MaxP = 1.5 }},
		{"zero weight", func(c *REDConfig) { c.Weight = 0 }},
		{"weight above one", func(c *REDConfig) { c.Weight = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validRED()
			tt.mutate(&cfg)
			if cfg.Validate() == nil {
				t.Error("invalid config accepted")
			}
			if _, err := NewRED(cfg); err == nil {
				t.Error("NewRED accepted invalid config")
			}
		})
	}
}

func TestREDNeverMarksBelowMin(t *testing.T) {
	r, err := NewRED(validRED())
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	for i := 0; i < 1000; i++ {
		if r.ShouldMark(3, rng) { // instantaneous 3 < min 5, avg stays below
			t.Fatal("marked below the minimum threshold")
		}
	}
}

func TestREDAlwaysMarksAboveMax(t *testing.T) {
	r, err := NewRED(validRED())
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	// Drive the average above max with a persistently long queue.
	for i := 0; i < 200; i++ {
		r.ShouldMark(40, rng)
	}
	if r.AvgQueue() < 15 {
		t.Fatalf("average %v did not reach max threshold", r.AvgQueue())
	}
	for i := 0; i < 100; i++ {
		if !r.ShouldMark(40, rng) {
			t.Fatal("arrival not marked above the max threshold")
		}
	}
}

func TestREDMarksProbabilisticallyBetweenThresholds(t *testing.T) {
	r, err := NewRED(REDConfig{MinThreshold: 5, MaxThreshold: 15, MaxP: 0.1, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	marks := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.ShouldMark(10, rng) { // exactly mid-band with weight 1
			marks++
		}
	}
	rate := float64(marks) / n
	// Base probability is MaxP/2 = 0.05; the count correction raises the
	// effective rate toward ~1/ceil(1/p)... accept a broad band that
	// excludes "never" and "always".
	if rate < 0.03 || rate > 0.25 {
		t.Errorf("mid-band mark rate = %v, want moderate", rate)
	}
}

func TestREDAverageTracksQueue(t *testing.T) {
	r, err := NewRED(validRED())
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		r.ShouldMark(10, rng)
	}
	if avg := r.AvgQueue(); avg < 9.5 || avg > 10.5 {
		t.Errorf("EWMA = %v after steady queue of 10", avg)
	}
	for i := 0; i < 100; i++ {
		r.ShouldMark(0, rng)
	}
	if avg := r.AvgQueue(); avg > 0.5 {
		t.Errorf("EWMA = %v after steady empty queue", avg)
	}
}
