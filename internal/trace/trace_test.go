package trace

import (
	"strings"
	"testing"
	"time"

	"wtcp/internal/units"
)

func TestRecordAndPacketNumbers(t *testing.T) {
	tr := New(536)
	tr.Record(time.Second, Send, 0)
	tr.Record(2*time.Second, Send, 536)
	tr.Record(3*time.Second, Retransmit, 536)
	tr.Record(4*time.Second, Timeout, 536)
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[1].PacketNo != 1 || evs[2].PacketNo != 1 {
		t.Errorf("packet numbers = %d, %d, want 1, 1", evs[1].PacketNo, evs[2].PacketNo)
	}
	if tr.Count(Send) != 2 || tr.Count(Retransmit) != 1 || tr.Count(Timeout) != 1 {
		t.Error("counts wrong")
	}
	if tr.SendsOf(1) != 2 {
		t.Errorf("SendsOf(1) = %d, want 2 (send + retransmit)", tr.SendsOf(1))
	}
	if tr.SendsOf(0) != 1 {
		t.Errorf("SendsOf(0) = %d, want 1", tr.SendsOf(0))
	}
}

func TestHooksFeedTrace(t *testing.T) {
	tr := New(536)
	now := time.Duration(0)
	h := tr.Hooks(func() time.Duration { return now })
	now = time.Second
	h.OnSend(0, 536, false)
	now = 2 * time.Second
	h.OnSend(0, 536, true)
	h.OnTimeout(0)
	h.OnFastRetransmit(536)
	h.OnEBSN()
	if tr.Count(Send) != 1 || tr.Count(Retransmit) != 1 ||
		tr.Count(Timeout) != 1 || tr.Count(FastRetx) != 1 || tr.Count(EBSNReset) != 1 {
		t.Errorf("hook-fed counts wrong: %+v", tr.Events())
	}
	if tr.Events()[0].At != time.Second {
		t.Error("hook did not use the clock callback")
	}
}

func TestCSVFormat(t *testing.T) {
	tr := New(100)
	tr.Record(1500*time.Millisecond, Send, 0)
	tr.Record(2*time.Second, Retransmit, 100*95) // packet 95 -> mod 90 = 5
	tr.Record(3*time.Second, Timeout, 0)         // not a transmission: excluded
	csv := tr.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2", len(lines))
	}
	if lines[0] != "time_sec,packet_mod_90,kind" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1.500,0,send" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "2.000,5,retransmit" {
		t.Errorf("row 2 = %q (mod-90 wraparound)", lines[2])
	}
}

func TestRenderASCII(t *testing.T) {
	tr := New(100)
	tr.Record(0, Send, 0)
	tr.Record(30*time.Second, Send, 100*89)  // top-right area
	tr.Record(15*time.Second, Retransmit, 0) // bottom middle
	out := tr.RenderASCII(60, 20, 30*time.Second)
	if !strings.Contains(out, ".") {
		t.Error("no send marks rendered")
	}
	if !strings.Contains(out, "o") {
		t.Error("no retransmission marks rendered")
	}
	if !strings.Contains(out, "30s") {
		t.Error("x-axis label missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 20 {
		t.Errorf("grid height = %d lines", len(lines))
	}
	// Retransmission at 15s packet 0 must be on the bottom row of the grid.
	bottom := lines[len(lines)-4] // last grid row before axis
	if !strings.Contains(bottom, "o") {
		t.Errorf("retransmit mark not on bottom row: %q", bottom)
	}
}

func TestRenderASCIIDefaults(t *testing.T) {
	tr := New(100)
	tr.Record(5*time.Second, Send, 0)
	// Degenerate sizes clamp; zero horizon auto-scales.
	out := tr.RenderASCII(1, 1, 0)
	if out == "" {
		t.Error("empty render")
	}
}

func TestEventKindStrings(t *testing.T) {
	names := map[EventKind]string{
		Send: "send", Retransmit: "retransmit", Timeout: "timeout",
		FastRetx: "fastretx", EBSNReset: "ebsn",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if EventKind(77).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestNewClampsBadMSS(t *testing.T) {
	tr := New(0)
	tr.Record(0, Send, 1234)
	if tr.Events()[0].PacketNo != 1234 {
		t.Error("zero MSS should fall back to 1")
	}
	_ = units.ByteSize(0)
}
