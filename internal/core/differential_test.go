package core

import (
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/tcp"
	"wtcp/internal/trace"
	"wtcp/internal/units"
)

// diffRun executes one LAN transfer and returns its event stream. The
// config matches the lan-* conformance scenarios (Basic scheme, 800 ms
// mean fade, 128 KB) except that lossFree zeroes both BER states, turning
// the Gilbert channel into a perfect wire.
func diffRun(t *testing.T, v tcp.Variant, lossFree bool) []trace.Event {
	t.Helper()
	cfg := LAN(bs.Basic, 800*time.Millisecond)
	cfg.TransferSize = 128 * units.KB
	cfg.Variant = v
	cfg.CollectTrace = true
	cfg.Oracle = true
	if lossFree {
		cfg.Channel.GoodBER = 0
		cfg.Channel.BadBER = 0
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%v run: %v", v, err)
	}
	if !res.Completed {
		t.Fatalf("%v: transfer did not complete", v)
	}
	return res.Trace.Events()
}

// TestVariantsIdenticalWithoutLoss is the differential baseline: on a
// loss-free channel no variant ever reaches fast retransmit or recovery,
// so Tahoe, Reno, NewReno, and SACK are the same state machine and must
// produce bit-identical event streams. Any divergence here means a
// variant leaks behaviour into the common path.
func TestVariantsIdenticalWithoutLoss(t *testing.T) {
	base := diffRun(t, tcp.Tahoe, true)
	if n := countKind(base, trace.FastRetx); n != 0 {
		t.Fatalf("loss-free run performed %d fast retransmits; channel not clean", n)
	}
	for _, v := range []tcp.Variant{tcp.Reno, tcp.NewReno, tcp.SACKVariant} {
		other := diffRun(t, v, true)
		if d := trace.DiffEvents(base, other, 0); d != nil {
			t.Errorf("tahoe and %v diverge on a loss-free channel: %v", v, d)
		}
	}
}

// TestTahoeRenoDivergeAtFastRetransmit pins where the variants part ways:
// with identical seeds and channel, Tahoe and Reno stay bit-identical up
// to the third duplicate ACK, then diverge at exactly that event — Tahoe
// records the fast-retransmit collapse before re-sending (go-back-N),
// Reno re-sends the hole first and then records the recovery entry. The
// divergence index must equal the first fast-retransmit in the Tahoe
// stream, and the cause must be the event kind, not timing drift.
func TestTahoeRenoDivergeAtFastRetransmit(t *testing.T) {
	tahoe := diffRun(t, tcp.Tahoe, false)
	reno := diffRun(t, tcp.Reno, false)

	d := trace.DiffEvents(tahoe, reno, 0)
	if d == nil {
		t.Fatal("tahoe and reno produced identical streams on a lossy channel; scenario never triggered fast retransmit")
	}
	if d.Field != "kind" {
		t.Fatalf("first divergence is %v; want the event kind at the fast-retransmit cluster", d)
	}

	frTahoe := firstKind(tahoe, trace.FastRetx)
	if frTahoe < 0 {
		t.Fatal("tahoe stream has no fast retransmit")
	}
	if d.Index != frTahoe {
		t.Errorf("divergence at event %d, but tahoe's first fast retransmit is event %d: variants differ before loss recovery", d.Index, frTahoe)
	}
	if got := tahoe[d.Index].Kind; got != trace.FastRetx {
		t.Errorf("tahoe event %d is %v, want fastretx first (collapse before go-back-N resend)", d.Index, got)
	}
	if got := reno[d.Index].Kind; got != trace.Retransmit {
		t.Errorf("reno event %d is %v, want retransmit first (hole re-sent on recovery entry)", d.Index, got)
	}
	frReno := firstKind(reno, trace.FastRetx)
	if frReno != d.Index+1 {
		t.Errorf("reno's recovery-entry snapshot at event %d, want %d (immediately after the hole retransmission)", frReno, d.Index+1)
	}

	// The shared prefix must contain real traffic — the divergence has to
	// come from loss recovery, not from the connection's opening moves.
	if d.Index < 10 {
		t.Errorf("divergence at event %d is suspiciously early; expected an established transfer before the first fade", d.Index)
	}
}

func firstKind(events []trace.Event, k trace.EventKind) int {
	for i, e := range events {
		if e.Kind == k {
			return i
		}
	}
	return -1
}

func countKind(events []trace.Event, k trace.EventKind) int {
	n := 0
	for _, e := range events {
		if e.Kind == k {
			n++
		}
	}
	return n
}
