package queue

import (
	"errors"

	"wtcp/internal/sim"
)

// REDConfig parameterizes Random Early Detection [Floyd & Jacobson 93],
// the active-queue-management algorithm behind the ECN proposal the paper
// cites [Floyd 94]. Queue length is smoothed with an EWMA; between the
// two thresholds arrivals are marked with a probability that rises
// linearly to MaxP (with the standard count correction that spaces marks
// out evenly); above MaxThreshold every arrival is marked.
type REDConfig struct {
	// MinThreshold and MaxThreshold are average-queue-length bounds, in
	// packets.
	MinThreshold float64
	MaxThreshold float64
	// MaxP is the marking probability as the average reaches
	// MaxThreshold.
	MaxP float64
	// Weight is the EWMA gain applied per arrival (classic RED uses
	// 0.002 at line rate; coarser simulations use larger values).
	Weight float64
}

// Validate reports whether the configuration is usable.
func (c REDConfig) Validate() error {
	switch {
	case c.MinThreshold < 0:
		return errors.New("queue: negative RED min threshold")
	case c.MaxThreshold <= c.MinThreshold:
		return errors.New("queue: RED max threshold must exceed min")
	case c.MaxP <= 0 || c.MaxP > 1:
		return errors.New("queue: RED MaxP outside (0,1]")
	case c.Weight <= 0 || c.Weight > 1:
		return errors.New("queue: RED weight outside (0,1]")
	default:
		return nil
	}
}

// RED is the detector state. It is a policy object: the owner consults
// ShouldMark at each arrival and applies the verdict (ECN-mark or drop).
type RED struct {
	cfg   REDConfig
	avg   float64
	count int // arrivals since the last mark while in the marking band
}

// NewRED builds a detector.
func NewRED(cfg REDConfig) (*RED, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &RED{cfg: cfg, count: -1}, nil
}

// AvgQueue reports the smoothed queue length.
func (r *RED) AvgQueue() float64 { return r.avg }

// ShouldMark updates the average with the instantaneous queue length and
// reports whether this arrival should be marked (or dropped, for a
// non-ECN deployment).
func (r *RED) ShouldMark(queueLen int, rng *sim.RNG) bool {
	r.avg += r.cfg.Weight * (float64(queueLen) - r.avg)
	switch {
	case r.avg < r.cfg.MinThreshold:
		r.count = -1
		return false
	case r.avg >= r.cfg.MaxThreshold:
		r.count = 0
		return true
	default:
		r.count++
		p := r.cfg.MaxP * (r.avg - r.cfg.MinThreshold) / (r.cfg.MaxThreshold - r.cfg.MinThreshold)
		// Count correction spaces marks roughly uniformly.
		if denom := 1 - float64(r.count)*p; denom > 0 {
			p /= denom
		} else {
			p = 1
		}
		if rng.Bernoulli(p) {
			r.count = 0
			return true
		}
		return false
	}
}
