package trace

import (
	"strings"
	"testing"
	"time"
)

// sampleEvents exercises every field of the golden encoding, including the
// idle-timer sentinel and sub-microsecond timestamps.
func sampleEvents() []Event {
	return []Event{
		{At: 0, Kind: Send, Seq: 0, Payload: 536, Cwnd: 536, Ssthresh: 4288,
			SndUna: 0, SndNxt: 0, SndMax: 0, RTO: 3 * time.Second, Deadline: -time.Microsecond},
		{At: 123456789 * time.Nanosecond, Kind: AckIn, Ack: 536, AckClass: 1,
			Cwnd: 1072, Ssthresh: 4288, SndUna: 536, SndNxt: 536, SndMax: 536,
			RTO: 3 * time.Second, Deadline: 3123456789 * time.Nanosecond, Shift: 0, DupAcks: 0},
		{At: 2 * time.Second, Kind: Timeout, Seq: 536, Cwnd: 536, Ssthresh: 2144,
			SndUna: 536, SndNxt: 536, SndMax: 1072, RTO: 6 * time.Second,
			Deadline: 8 * time.Second, Shift: 1},
		{At: 2500 * time.Millisecond, Kind: ARQAttempt, Unit: 42, Pkt: 7, Attempt: 3},
		{At: 3 * time.Second, Kind: MHDeliver, Seq: 1072, Unit: 9},
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	events := sampleEvents()
	enc := EncodeEvents(536, events)
	mss, decoded, err := DecodeEvents(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if mss != 536 {
		t.Errorf("mss = %d", mss)
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(events))
	}
	// Decoding is the encoding's normal form: re-encoding must be
	// byte-identical, and the decoded events must equal the normalized
	// originals exactly.
	if re := EncodeEvents(mss, decoded); re != enc {
		t.Errorf("re-encode not byte-stable:\n%s\nvs\n%s", enc, re)
	}
	norm := NormalizeEvents(events)
	for i := range norm {
		norm[i].PacketNo = norm[i].Seq / 536
	}
	if d := DiffEvents(norm, decoded, 0); d != nil {
		t.Errorf("decoded differs from normalized original: %v", d)
	}
}

func TestGoldenDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "not-a-golden\n",
		"bad mss":      "wtcp-golden v1 mss=0 events=0\n",
		"short line":   "wtcp-golden v1 mss=536 events=1\n0.000000 send seq=0\n",
		"bad kind":     "wtcp-golden v1 mss=536 events=1\n0.000000 bogus seq=0 len=0 ack=0 cls=0 una=0 nxt=0 max=0 cwnd=0 ssth=0 rto=0.000000 dl=- sh=0 dup=0 att=0 unit=0 pid=0\n",
		"count drift":  "wtcp-golden v1 mss=536 events=2\n0.000000 send seq=0 len=0 ack=0 cls=0 una=0 nxt=0 max=0 cwnd=0 ssth=0 rto=0.000000 dl=- sh=0 dup=0 att=0 unit=0 pid=0\n",
		"bad duration": "wtcp-golden v1 mss=536 events=1\n0.0 send seq=0 len=0 ack=0 cls=0 una=0 nxt=0 max=0 cwnd=0 ssth=0 rto=0.000000 dl=- sh=0 dup=0 att=0 unit=0 pid=0\n",
	}
	for name, data := range cases {
		if _, _, err := DecodeEvents(data); err == nil {
			t.Errorf("%s: decode accepted %q", name, data)
		}
	}
}

func TestGoldenHeaderCountsEvents(t *testing.T) {
	enc := EncodeEvents(536, sampleEvents())
	header := strings.SplitN(enc, "\n", 2)[0]
	if header != "wtcp-golden v1 mss=536 events=5" {
		t.Errorf("header = %q", header)
	}
}

func TestTraceEncode(t *testing.T) {
	tr := New(536)
	tr.Record(time.Second, Send, 0)
	_, events, err := DecodeEvents(tr.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(events) != 1 || events[0].Kind != Send {
		t.Errorf("events = %+v", events)
	}
}

func TestDiffEventsEmptyAndSingle(t *testing.T) {
	// Two empty sequences match.
	if d := DiffEvents(nil, nil, 0); d != nil {
		t.Errorf("empty vs empty diverged: %v", d)
	}
	e := Event{At: time.Second, Kind: Send, Seq: 536}
	// Empty vs single: divergence at index 0, field "missing".
	d := DiffEvents(nil, []Event{e}, 0)
	if d == nil || d.Index != 0 || d.Field != "missing" {
		t.Fatalf("empty vs single: %v", d)
	}
	if d.A != "-" || !strings.Contains(d.B, "send") {
		t.Errorf("missing-side rendering: %v", d)
	}
	// Single vs itself matches.
	if d := DiffEvents([]Event{e}, []Event{e}, 0); d != nil {
		t.Errorf("single vs itself diverged: %v", d)
	}
	// Longer side reported symmetrically.
	d = DiffEvents([]Event{e, e}, []Event{e}, 0)
	if d == nil || d.Index != 1 || d.B != "-" {
		t.Errorf("single vs double: %v", d)
	}
}

func TestDiffEventsTimestampTolerance(t *testing.T) {
	a := []Event{{At: time.Second, Kind: Send, RTO: 3 * time.Second, Deadline: 4 * time.Second}}
	within := []Event{{At: time.Second + 400*time.Nanosecond, Kind: Send,
		RTO: 3*time.Second - 200*time.Nanosecond, Deadline: 4*time.Second + 499*time.Nanosecond}}
	if d := DiffEvents(a, within, 500*time.Nanosecond); d != nil {
		t.Errorf("sub-tolerance timestamps diverged: %v", d)
	}
	beyond := []Event{{At: time.Second + 2*time.Microsecond, Kind: Send,
		RTO: 3 * time.Second, Deadline: 4 * time.Second}}
	d := DiffEvents(a, beyond, 500*time.Nanosecond)
	if d == nil || d.Field != "at" {
		t.Errorf("beyond-tolerance timestamp accepted: %v", d)
	}
	// An idle timer never matches an armed one, however small the armed
	// deadline is.
	idle := []Event{{At: time.Second, Kind: Send, RTO: 3 * time.Second, Deadline: -time.Microsecond}}
	d = DiffEvents(a, idle, time.Hour)
	if d == nil || d.Field != "deadline" {
		t.Errorf("idle vs armed deadline accepted: %v", d)
	}
}

func TestDiffEventsFieldMismatches(t *testing.T) {
	base := Event{At: time.Second, Kind: AckIn, Ack: 536, Cwnd: 1072, Shift: 1}
	cases := []struct {
		field  string
		mutate func(*Event)
	}{
		{"kind", func(e *Event) { e.Kind = Timeout }},
		{"ack", func(e *Event) { e.Ack = 537 }},
		{"cwnd", func(e *Event) { e.Cwnd = 536 }},
		{"shift", func(e *Event) { e.Shift = 2 }},
		{"attempt", func(e *Event) { e.Attempt = 1 }},
		{"unit", func(e *Event) { e.Unit = 5 }},
	}
	for _, c := range cases {
		other := base
		c.mutate(&other)
		d := DiffEvents([]Event{base}, []Event{other}, 0)
		if d == nil || d.Field != c.field {
			t.Errorf("mutating %s: got %v", c.field, d)
		}
	}
}
