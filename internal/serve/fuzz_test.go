package serve

import (
	"fmt"
	"testing"

	"wtcp/internal/scenario"
)

// FuzzRunRequest fuzzes the /v1/run decoder end to end: whatever the
// bytes, ParseRunRequest must never panic, and when it accepts, the
// request must be well-formed (buildable scenario, bounded
// replications) and its fingerprint stable — the properties the
// admission path relies on. The seed corpus wraps the scenario
// parser's shared seeds (internal/scenario.FuzzSeeds) in request
// envelopes, plus envelope-level malformations, so both decode layers
// are exercised on the same documents.
func FuzzRunRequest(f *testing.F) {
	for _, s := range scenario.FuzzSeeds() {
		f.Add([]byte(fmt.Sprintf(`{"scenario":%s}`, s)))
		f.Add([]byte(fmt.Sprintf(`{"scenario":%s,"replications":3,"deadline_ms":500}`, s)))
	}
	f.Add([]byte(`{"scenario":{"preset":"wan"},"replications":65}`))
	f.Add([]byte(`{"scenario":{"preset":"wan"},"replications":-1}`))
	f.Add([]byte(`{"scenario":{"preset":"wan"},"deadline_ms":-1}`))
	f.Add([]byte(`{"scenario":{"preset":"wan"}} trailing`))
	f.Add([]byte(`{"scenario":null}`))
	f.Add([]byte(`{"campaign":{"sweeps":["fig7"]}}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, sf, err := ParseRunRequest(data)
		if err != nil {
			return // rejected is fine; panicking or half-accepting is not
		}
		if req.Replications < 1 || req.Replications > MaxReplications {
			t.Fatalf("accepted replications %d outside [1, %d]", req.Replications, MaxReplications)
		}
		if req.DeadlineMS < 0 {
			t.Fatalf("accepted negative deadline_ms %d", req.DeadlineMS)
		}
		if _, err := sf.Build(); err != nil {
			t.Fatalf("accepted request whose scenario does not build: %v", err)
		}
		fp := RunFingerprint(sf, req.Replications)
		if !validFingerprint(fp) {
			t.Fatalf("fingerprint %q is not a sha256 hex digest", fp)
		}
		if again := RunFingerprint(sf, req.Replications); again != fp {
			t.Fatalf("fingerprint unstable: %s vs %s", fp, again)
		}
	})
}
