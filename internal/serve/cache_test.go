package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// Fingerprint identity: what must split the cache and what must not.

func TestRunFingerprintIdentity(t *testing.T) {
	fp := func(body string) string {
		t.Helper()
		return mustRunFP(t, []byte(body))
	}
	base := fp(`{"scenario":{"preset":"wan","mean_bad":"4s","seed":1}}`)

	// Formatting, key order, and default spelling never split the cache.
	same := []string{
		`{ "scenario" : {"preset":"wan", "mean_bad":"4s", "seed":1} }`,
		`{"scenario":{"mean_bad":"4s","seed":1,"preset":"wan"}}`,
		`{"scenario":{"preset":"wan","mean_bad":"4s","seed":1},"replications":1}`,
	}
	for _, body := range same {
		if got := fp(body); got != base {
			t.Errorf("fingerprint split by formatting: %s", body)
		}
	}

	// Budgets and deadlines bound how long we compute, not what a
	// within-budget run measures: excluded from identity.
	excluded := []string{
		`{"scenario":{"preset":"wan","mean_bad":"4s","seed":1,"budget":{"max_events":999999999}}}`,
		`{"scenario":{"preset":"wan","mean_bad":"4s","seed":1},"deadline_ms":5000}`,
	}
	for _, body := range excluded {
		if got := fp(body); got != base {
			t.Errorf("execution knob leaked into identity: %s", body)
		}
	}

	// Seeds and every result-affecting field are included.
	distinct := []string{
		`{"scenario":{"preset":"wan","mean_bad":"4s","seed":2}}`,
		`{"scenario":{"preset":"wan","mean_bad":"2s","seed":1}}`,
		`{"scenario":{"preset":"wan","mean_bad":"4s","seed":1,"sack":true}}`,
		`{"scenario":{"preset":"wan","mean_bad":"4s","seed":1},"replications":2}`,
		`{"scenario":{"preset":"wan","mean_bad":"4s","seed":1,"chaos":{"notify":{"loss_prob":0.5}}}}`,
	}
	seen := map[string]string{base: "base"}
	for _, body := range distinct {
		got := fp(body)
		if prev, dup := seen[got]; dup {
			t.Errorf("fingerprint collision between %s and %s", prev, body)
		}
		seen[got] = body
	}
}

func TestSweepFingerprintIdentity(t *testing.T) {
	fp := func(body string) string {
		t.Helper()
		_, c, err := ParseSweepRequest([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		return SweepFingerprint(c)
	}
	base := fp(`{"campaign":{"sweeps":["fig7"],"replications":2,"bad_periods":["4s"]}}`)
	// Worker width and budget are pure execution knobs.
	if got := fp(`{"campaign":{"sweeps":["fig7"],"replications":2,"bad_periods":["4s"],"workers":8,"budget":{"wall_clock":"5m"}}}`); got != base {
		t.Error("workers/budget leaked into sweep identity")
	}
	// Supervise changes the response shape (quarantines vs failure).
	if got := fp(`{"campaign":{"sweeps":["fig7"],"replications":2,"bad_periods":["4s"],"supervise":true}}`); got == base {
		t.Error("supervise does not split sweep identity but changes the answer")
	}
	if got := fp(`{"campaign":{"sweeps":["fig7"],"replications":3,"bad_periods":["4s"]}}`); got == base {
		t.Error("replications does not split sweep identity")
	}
}

// Disk cache mechanics: byte-cap eviction, LRU order, reopen.

func TestDiskCacheEvictsUnderByteCap(t *testing.T) {
	fp := func(i int) string { return fmt.Sprintf("%064d", i) }
	blob := bytes.Repeat([]byte("x"), 100)

	c, err := openDiskCache(t.TempDir(), 250)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.put(fp(i), blob); err != nil {
			t.Fatal(err)
		}
	}
	// 300 bytes over a 250 cap: the oldest entry evicts.
	if _, ok := c.get(fp(0)); ok {
		t.Error("oldest entry survived the byte cap")
	}
	for i := 1; i < 3; i++ {
		if _, ok := c.get(fp(i)); !ok {
			t.Errorf("entry %d evicted prematurely", i)
		}
	}
	entries, size, evictions := c.stats()
	if entries != 2 || size != 200 || evictions != 1 {
		t.Errorf("stats = (%d, %d, %d), want (2, 200, 1)", entries, size, evictions)
	}

	// A get refreshes recency: touch 1, insert 3, expect 2 to evict.
	c.get(fp(1))
	if err := c.put(fp(3), blob); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.get(fp(2)); ok {
		t.Error("LRU order ignores gets: 2 should have evicted before 1")
	}
	if _, ok := c.get(fp(1)); !ok {
		t.Error("recently read entry evicted")
	}

	// A blob larger than the whole cap is refused outright, not allowed
	// to flush everything else.
	if err := c.put(fp(9), bytes.Repeat([]byte("y"), 300)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.get(fp(9)); ok {
		t.Error("over-cap blob was cached")
	}
	if _, ok := c.get(fp(1)); !ok {
		t.Error("over-cap blob evicted resident entries")
	}
}

func TestDiskCacheSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	fp := func(i int) string { return fmt.Sprintf("%064d", i) }
	c, err := openDiskCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.put(fp(i), []byte(fmt.Sprintf("blob-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	re, err := openDiskCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		data, ok := re.get(fp(i))
		if !ok || string(data) != fmt.Sprintf("blob-%d", i) {
			t.Errorf("entry %d lost across reopen", i)
		}
	}
	entries, size, _ := re.stats()
	if entries != 3 || size == 0 {
		t.Errorf("reopen re-indexed (%d, %d)", entries, size)
	}
}

// Single-flight: concurrent identical requests coalesce into one
// execution; everyone gets the same bytes. Run under -race in CI.
func TestSingleFlightDeduplicatesConcurrentRequests(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), func(cfg *Config) {
		cfg.Slots = 4
		cfg.QueueDepth = 8
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := runBody(1, 2000)
	const clients = 12
	responses := make([][]byte, clients)
	statuses := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := post(t, ts, "/v1/run", body)
			statuses[i] = resp.StatusCode
			responses[i] = data
		}()
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("client %d: HTTP %d: %s", i, statuses[i], responses[i])
		}
		if !bytes.Equal(responses[i], responses[0]) {
			t.Errorf("client %d got different bytes", i)
		}
	}
	if got := srv.met.executed.Load(); got != 1 {
		t.Errorf("%d identical concurrent requests executed %d times, want 1", clients, got)
	}
	if got := srv.met.requests.Load(); got != clients {
		t.Errorf("requests counter = %d, want %d", got, clients)
	}
}
