package stats

import (
	"errors"
	"math"
	"sort"
)

// KSStatistic computes the one-sample Kolmogorov-Smirnov statistic D_n:
// the largest deviation between the sample's empirical CDF and the given
// theoretical CDF. Used to validate that the error model's holding times
// really follow the distributions §3.1 of the paper specifies.
func KSStatistic(sample []float64, cdf func(float64) float64) (float64, error) {
	n := len(sample)
	if n == 0 {
		return 0, errors.New("stats: empty sample")
	}
	sorted := make([]float64, n)
	copy(sorted, sample)
	sort.Float64s(sorted)
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		// Deviations just before and just after the step at x.
		lo := f - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d, nil
}

// KSCriticalValue returns the approximate critical D for the given sample
// size at significance alpha (two common levels supported): samples with
// D below this are consistent with the hypothesized distribution. Uses
// the asymptotic c(alpha)/sqrt(n) approximation, valid for n >= 35.
func KSCriticalValue(n int, alpha float64) (float64, error) {
	if n <= 0 {
		return 0, errors.New("stats: non-positive sample size")
	}
	var c float64
	switch {
	case math.Abs(alpha-0.05) < 1e-9:
		c = 1.358
	case math.Abs(alpha-0.01) < 1e-9:
		c = 1.628
	default:
		return 0, errors.New("stats: supported alpha levels are 0.05 and 0.01")
	}
	return c / math.Sqrt(float64(n)), nil
}

// ExponentialCDF returns the CDF of an exponential distribution with the
// given mean, for use with KSStatistic.
func ExponentialCDF(mean float64) func(float64) float64 {
	return func(x float64) float64 {
		if x <= 0 || mean <= 0 {
			return 0
		}
		return -math.Expm1(-x / mean)
	}
}
