//go:build unix

package main

import (
	"os"
	"strconv"
	"syscall"

	"wtcp/internal/fleet"
)

// Crash-injection hooks for the acceptance tests. The lease protocol's
// guarantees are about where a worker dies relative to its result post:
// dying before the post must reassign the point, dying after must make
// the straggler's eventual repost a dropped duplicate. External
// observation can't pin those orderings, so the worker kills itself at
// the exact boundary when asked to via environment variables:
//
//	WTCP_FLEET_KILL_BEFORE_RESULT=N  SIGKILL self just before posting the Nth result (1-based)
//	WTCP_FLEET_KILL_AFTER_RESULT=N   SIGKILL self just after the Nth result is acknowledged
//
// Unset (the normal case) installs nothing.
func hookWorkerCrash(cfg *fleet.WorkerConfig) {
	if n := killAt("WTCP_FLEET_KILL_BEFORE_RESULT"); n > 0 {
		count := 0
		cfg.BeforeResult = func(string) {
			if count++; count == n {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	if n := killAt("WTCP_FLEET_KILL_AFTER_RESULT"); n > 0 {
		count := 0
		cfg.AfterResult = func(string) {
			if count++; count == n {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
}

// killAt parses the 1-based trigger count from env; 0 means disabled.
func killAt(env string) int {
	v := os.Getenv(env)
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0
	}
	return n
}
