// Package chaos is the repository's fault-injection subsystem: a
// deterministic, seed-driven layer that composes with any scenario and
// injects the adverse conditions the paper's error model does not
// schedule — link blackouts and burst-loss storms, base-station
// crash/restart with ARQ-state loss, EBSN notification loss/delay/
// duplication, and packet corruption, duplication, and reordering at the
// wired or wireless hop.
//
// All randomness flows from one sim.RNG derived from the scenario seed,
// so a chaos run is reproducible bit-for-bit from (config, seed) alone —
// the property the whole evaluation methodology rests on. Scheduled
// faults (blackouts, storms, crashes) fire at configured virtual times;
// probabilistic faults (corruption, duplication, reordering, EBSN loss)
// draw per packet from the chaos RNG, never from the RNGs that drive the
// channel or the ARQ backoff, so enabling chaos does not perturb those
// processes' draw sequences within a run.
package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"wtcp/internal/errmodel"
)

// Link names addressable by fault configuration, matching the labels the
// core topology gives its four hops.
const (
	WiredFwd     = "wired-fwd"     // FH -> BS
	WiredRev     = "wired-rev"     // BS -> FH (acks, EBSNs)
	WirelessDown = "wireless-down" // BS -> MH
	WirelessUp   = "wireless-up"   // MH -> BS
)

// knownLinks lists every addressable hop.
var knownLinks = []string{WiredFwd, WiredRev, WirelessDown, WirelessUp}

func knownLink(name string) bool {
	for _, l := range knownLinks {
		if l == name {
			return true
		}
	}
	return false
}

// Blackout is a total outage of one hop: every transmission overlapping
// the window is lost (wireless hops model it as a certain-corruption
// fade; wired hops as a dead interface).
type Blackout struct {
	// Link names the hop ("wired-fwd", "wired-rev", "wireless-down",
	// "wireless-up").
	Link string
	// At is the virtual time the outage begins; Length its duration.
	At     time.Duration
	Length time.Duration
}

// Storm is a burst-loss window beyond what the Markov error process
// schedules: during [At, At+Length) every delivery on the hop is lost
// independently with probability LossProb.
type Storm struct {
	Link     string
	At       time.Duration
	Length   time.Duration
	LossProb float64
}

// Crash is one base-station failure: the station loses all soft state
// (ARQ windows, timers, snoop cache, radio queue) at At and ignores all
// traffic until At+Downtime.
type Crash struct {
	At       time.Duration
	Downtime time.Duration
}

// NotifyFaults degrades the EBSN/quench notification stream on the
// reverse wired hop: each notification is independently lost with
// LossProb, duplicated with DupProb, and (if it survives) delayed by
// Delay with DelayProb.
type NotifyFaults struct {
	LossProb  float64
	DupProb   float64
	DelayProb float64
	Delay     time.Duration
}

func (n NotifyFaults) enabled() bool {
	return n.LossProb > 0 || n.DupProb > 0 || (n.DelayProb > 0 && n.Delay > 0)
}

// PacketFaults injects per-packet faults on one hop: each delivery is
// independently corrupted (lost, as a CRC failure would be) with
// CorruptProb, duplicated with DupProb, and held back by ReorderDelay
// with ReorderProb (later packets overtake it — reordering).
type PacketFaults struct {
	Link         string
	CorruptProb  float64
	DupProb      float64
	ReorderProb  float64
	ReorderDelay time.Duration
}

func (p PacketFaults) enabled() bool {
	return p.CorruptProb > 0 || p.DupProb > 0 || (p.ReorderProb > 0 && p.ReorderDelay > 0)
}

// EventStorm is a resource-exhaustion fault: starting at At it floods
// the event queue with Count self-rescheduling kernel events spaced
// Spacing apart. It models a runaway component (a timer storm, a
// pathological retry loop) that burns scheduler capacity without
// touching any packet. A Spacing of zero reproduces the same-instant
// livelock shape — every storm event fires at the same virtual instant,
// so the clock never advances and neither the horizon nor the
// virtual-time watchdog can end the run; only an event or wall-clock
// budget (sim.Budget) stops it. A Count of zero makes the storm
// unbounded: it runs until a budget, cancellation, or (with positive
// spacing) the horizon halts the run.
type EventStorm struct {
	At time.Duration
	// Count is the number of storm events; 0 = unbounded.
	Count int64
	// Spacing is the delay between consecutive storm events; 0 = all at
	// the same instant (the livelock shape).
	Spacing time.Duration
}

// Config is a complete fault-injection plan. The zero value injects
// nothing.
type Config struct {
	Blackouts   []Blackout
	Storms      []Storm
	Crashes     []Crash
	Notify      NotifyFaults
	Packets     []PacketFaults
	EventStorms []EventStorm
}

// Enabled reports whether the plan injects any fault at all.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	if len(c.Blackouts) > 0 || len(c.Storms) > 0 || len(c.Crashes) > 0 ||
		c.Notify.enabled() || len(c.EventStorms) > 0 {
		return true
	}
	for _, p := range c.Packets {
		if p.enabled() {
			return true
		}
	}
	return false
}

func probRange(name string, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("chaos: %s %v outside [0, 1]", name, p)
	}
	return nil
}

// Validate reports whether the plan is injectable: known link names,
// probabilities in [0, 1], positive durations, and non-overlapping
// blackout windows per link (overlap would double-schedule one outage).
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	perLink := map[string][]Blackout{}
	for _, b := range c.Blackouts {
		switch {
		case !knownLink(b.Link):
			return fmt.Errorf("chaos: blackout names unknown link %q (want one of %v)", b.Link, knownLinks)
		case b.At < 0:
			return fmt.Errorf("chaos: blackout on %s starts before time zero", b.Link)
		case b.Length <= 0:
			return fmt.Errorf("chaos: blackout on %s needs a positive length", b.Link)
		}
		perLink[b.Link] = append(perLink[b.Link], b)
	}
	for link, bs := range perLink {
		sort.Slice(bs, func(i, j int) bool { return bs[i].At < bs[j].At })
		for i := 1; i < len(bs); i++ {
			if bs[i].At < bs[i-1].At+bs[i-1].Length {
				return fmt.Errorf("chaos: blackouts on %s overlap at %v; merge them into one window", link, bs[i].At)
			}
		}
	}
	for _, s := range c.Storms {
		switch {
		case !knownLink(s.Link):
			return fmt.Errorf("chaos: storm names unknown link %q (want one of %v)", s.Link, knownLinks)
		case s.At < 0:
			return fmt.Errorf("chaos: storm on %s starts before time zero", s.Link)
		case s.Length <= 0:
			return fmt.Errorf("chaos: storm on %s needs a positive length", s.Link)
		}
		if err := probRange("storm loss probability", s.LossProb); err != nil {
			return err
		}
	}
	var prev *Crash
	crashes := append([]Crash(nil), c.Crashes...)
	sort.Slice(crashes, func(i, j int) bool { return crashes[i].At < crashes[j].At })
	for i := range crashes {
		cr := &crashes[i]
		switch {
		case cr.At < 0:
			return errors.New("chaos: crash scheduled before time zero")
		case cr.Downtime <= 0:
			return errors.New("chaos: crash needs a positive downtime")
		}
		if prev != nil && cr.At < prev.At+prev.Downtime {
			return fmt.Errorf("chaos: crash at %v scheduled while the station is already down", cr.At)
		}
		prev = cr
	}
	for _, name := range []struct {
		label string
		p     float64
	}{
		{"EBSN loss probability", c.Notify.LossProb},
		{"EBSN duplication probability", c.Notify.DupProb},
		{"EBSN delay probability", c.Notify.DelayProb},
	} {
		if err := probRange(name.label, name.p); err != nil {
			return err
		}
	}
	if c.Notify.Delay < 0 {
		return errors.New("chaos: negative EBSN delay")
	}
	if c.Notify.DelayProb > 0 && c.Notify.Delay == 0 {
		return errors.New("chaos: EBSN delay probability set but delay is zero; set delay or drop the probability")
	}
	seen := map[string]bool{}
	for _, p := range c.Packets {
		if !knownLink(p.Link) {
			return fmt.Errorf("chaos: packet faults name unknown link %q (want one of %v)", p.Link, knownLinks)
		}
		if seen[p.Link] {
			return fmt.Errorf("chaos: duplicate packet-fault entry for link %s; merge them", p.Link)
		}
		seen[p.Link] = true
		for _, pr := range []struct {
			label string
			p     float64
		}{
			{"corruption probability", p.CorruptProb},
			{"duplication probability", p.DupProb},
			{"reorder probability", p.ReorderProb},
		} {
			if err := probRange(pr.label+" on "+p.Link, pr.p); err != nil {
				return err
			}
		}
		if p.ReorderDelay < 0 {
			return fmt.Errorf("chaos: negative reorder delay on %s", p.Link)
		}
		if p.ReorderProb > 0 && p.ReorderDelay == 0 {
			return fmt.Errorf("chaos: reorder probability set on %s but reorder delay is zero; set the delay or drop the probability", p.Link)
		}
	}
	for i, es := range c.EventStorms {
		switch {
		case es.At < 0:
			return fmt.Errorf("chaos: event storm %d starts before time zero", i)
		case es.Count < 0:
			return fmt.Errorf("chaos: event storm %d has a negative count (0 means unbounded)", i)
		case es.Spacing < 0:
			return fmt.Errorf("chaos: event storm %d has a negative spacing", i)
		}
	}
	return nil
}

// windowsFor collects the blackout and storm fault windows for one hop as
// errmodel overlay windows (blackout = BER 1, certain corruption; storm =
// probabilistic loss handled at delivery time instead, so storms do not
// appear here).
func (c *Config) windowsFor(link string) []errmodel.FaultWindow {
	if c == nil {
		return nil
	}
	var out []errmodel.FaultWindow
	for _, b := range c.Blackouts {
		if b.Link == link {
			out = append(out, errmodel.FaultWindow{Start: b.At, Length: b.Length, BER: 1})
		}
	}
	return out
}

// NeedsChannel reports whether the named hop needs a fault overlay
// channel (it has at least one blackout window).
func (c *Config) NeedsChannel(link string) bool { return len(c.windowsFor(link)) > 0 }

// OverlayChannel wraps base with this plan's blackout windows for the
// named hop. base may be nil (an error-free wired hop). When the hop has
// no windows it returns base unchanged.
func (c *Config) OverlayChannel(link string, base errmodel.Channel) (errmodel.Channel, error) {
	ws := c.windowsFor(link)
	if len(ws) == 0 {
		return base, nil
	}
	return errmodel.NewOverlay(base, ws)
}

// --- JSON form ---------------------------------------------------------
//
// The on-disk form uses human-readable duration strings, matching the
// scenario files:
//
//	{
//	  "blackouts": [{"link": "wireless-down", "at": "5s", "length": "3s"}],
//	  "storms":    [{"link": "wired-fwd", "at": "10s", "length": "2s", "loss_prob": 0.3}],
//	  "crashes":   [{"at": "20s", "downtime": "2s"}],
//	  "notify":    {"loss_prob": 0.5, "dup_prob": 0.1, "delay_prob": 0.2, "delay": "300ms"},
//	  "packets":   [{"link": "wireless-up", "corrupt_prob": 0.01, "dup_prob": 0.01,
//	                 "reorder_prob": 0.02, "reorder_delay": "50ms"}],
//	  "event_storms": [{"at": "5s", "count": 100000, "spacing": "0s"}]
//	}

type jsonBlackout struct {
	Link   string `json:"link"`
	At     string `json:"at"`
	Length string `json:"length"`
}

type jsonStorm struct {
	Link     string  `json:"link"`
	At       string  `json:"at"`
	Length   string  `json:"length"`
	LossProb float64 `json:"loss_prob"`
}

type jsonCrash struct {
	At       string `json:"at"`
	Downtime string `json:"downtime"`
}

type jsonNotify struct {
	LossProb  float64 `json:"loss_prob"`
	DupProb   float64 `json:"dup_prob"`
	DelayProb float64 `json:"delay_prob"`
	Delay     string  `json:"delay"`
}

type jsonPacketFaults struct {
	Link         string  `json:"link"`
	CorruptProb  float64 `json:"corrupt_prob"`
	DupProb      float64 `json:"dup_prob"`
	ReorderProb  float64 `json:"reorder_prob"`
	ReorderDelay string  `json:"reorder_delay"`
}

type jsonEventStorm struct {
	At      string `json:"at"`
	Count   int64  `json:"count"`
	Spacing string `json:"spacing"`
}

type jsonConfig struct {
	Blackouts   []jsonBlackout     `json:"blackouts"`
	Storms      []jsonStorm        `json:"storms"`
	Crashes     []jsonCrash        `json:"crashes"`
	Notify      *jsonNotify        `json:"notify"`
	Packets     []jsonPacketFaults `json:"packets"`
	EventStorms []jsonEventStorm   `json:"event_storms"`
}

// parseDur parses a required duration field.
func parseDur(field, v string) (time.Duration, error) {
	if v == "" {
		return 0, fmt.Errorf("chaos: %s is required (a duration like \"3s\" or \"500ms\")", field)
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("chaos: %s: %w", field, err)
	}
	return d, nil
}

// parseOptDur parses an optional duration field (empty = zero).
func parseOptDur(field, v string) (time.Duration, error) {
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("chaos: %s: %w", field, err)
	}
	return d, nil
}

// Parse decodes the JSON fault plan and validates it. Unknown fields are
// rejected so a typoed knob fails loudly instead of silently injecting
// nothing.
func Parse(data []byte) (*Config, error) {
	var jc jsonConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jc); err != nil {
		return nil, fmt.Errorf("chaos: parse config: %w", err)
	}
	cfg := &Config{}
	for i, b := range jc.Blackouts {
		at, err := parseDur(fmt.Sprintf("blackouts[%d].at", i), b.At)
		if err != nil {
			return nil, err
		}
		length, err := parseDur(fmt.Sprintf("blackouts[%d].length", i), b.Length)
		if err != nil {
			return nil, err
		}
		cfg.Blackouts = append(cfg.Blackouts, Blackout{Link: b.Link, At: at, Length: length})
	}
	for i, s := range jc.Storms {
		at, err := parseDur(fmt.Sprintf("storms[%d].at", i), s.At)
		if err != nil {
			return nil, err
		}
		length, err := parseDur(fmt.Sprintf("storms[%d].length", i), s.Length)
		if err != nil {
			return nil, err
		}
		cfg.Storms = append(cfg.Storms, Storm{Link: s.Link, At: at, Length: length, LossProb: s.LossProb})
	}
	for i, cr := range jc.Crashes {
		at, err := parseDur(fmt.Sprintf("crashes[%d].at", i), cr.At)
		if err != nil {
			return nil, err
		}
		down, err := parseDur(fmt.Sprintf("crashes[%d].downtime", i), cr.Downtime)
		if err != nil {
			return nil, err
		}
		cfg.Crashes = append(cfg.Crashes, Crash{At: at, Downtime: down})
	}
	if jc.Notify != nil {
		delay, err := parseOptDur("notify.delay", jc.Notify.Delay)
		if err != nil {
			return nil, err
		}
		cfg.Notify = NotifyFaults{
			LossProb:  jc.Notify.LossProb,
			DupProb:   jc.Notify.DupProb,
			DelayProb: jc.Notify.DelayProb,
			Delay:     delay,
		}
	}
	for i, es := range jc.EventStorms {
		at, err := parseDur(fmt.Sprintf("event_storms[%d].at", i), es.At)
		if err != nil {
			return nil, err
		}
		spacing, err := parseOptDur(fmt.Sprintf("event_storms[%d].spacing", i), es.Spacing)
		if err != nil {
			return nil, err
		}
		cfg.EventStorms = append(cfg.EventStorms, EventStorm{At: at, Count: es.Count, Spacing: spacing})
	}
	for i, p := range jc.Packets {
		rd, err := parseOptDur(fmt.Sprintf("packets[%d].reorder_delay", i), p.ReorderDelay)
		if err != nil {
			return nil, err
		}
		cfg.Packets = append(cfg.Packets, PacketFaults{
			Link:         p.Link,
			CorruptProb:  p.CorruptProb,
			DupProb:      p.DupProb,
			ReorderProb:  p.ReorderProb,
			ReorderDelay: rd,
		})
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}
