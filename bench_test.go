// Package wtcp_test holds the repository-level benchmark harness: one
// benchmark per paper figure (3-5, 7-11), regenerating the figure's series
// and reporting its headline quantity as a custom metric, plus ablation
// benchmarks for the design choices DESIGN.md calls out and
// micro-benchmarks of the simulation substrate.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks use reduced sweeps (fewer replications and
// points) so an iteration stays sub-second; cmd/wtcp-figures regenerates
// the full-resolution figures.
package wtcp_test

import (
	"context"
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
	"wtcp/internal/errmodel"
	"wtcp/internal/experiment"
	"wtcp/internal/handoff"
	"wtcp/internal/multiconn"
	"wtcp/internal/sim"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

// benchOpts are the reduced sweep settings used by figure benchmarks.
func benchOpts() experiment.Options {
	return experiment.Options{
		Replications: 2,
		Transfer:     40 * units.KB,
		PacketSizes:  []units.ByteSize{128, 512, 1536},
		BadPeriods:   []time.Duration{time.Second, 4 * time.Second},
	}
}

// BenchmarkFig3Trace regenerates Figure 3 (basic TCP packet trace over the
// deterministic channel) and reports the source timeout count.
func BenchmarkFig3Trace(b *testing.B) {
	var timeouts uint64
	for i := 0; i < b.N; i++ {
		r, err := experiment.TraceFigure(bs.Basic, 60*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		timeouts = r.Summary.Timeouts
	}
	b.ReportMetric(float64(timeouts), "timeouts")
}

// BenchmarkFig4Trace regenerates Figure 4 (local recovery trace).
func BenchmarkFig4Trace(b *testing.B) {
	var timeouts uint64
	for i := 0; i < b.N; i++ {
		r, err := experiment.TraceFigure(bs.LocalRecovery, 60*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		timeouts = r.Summary.Timeouts
	}
	b.ReportMetric(float64(timeouts), "timeouts")
}

// BenchmarkFig5Trace regenerates Figure 5 (EBSN trace); the reported
// metric should be zero, the paper's headline.
func BenchmarkFig5Trace(b *testing.B) {
	var timeouts uint64
	for i := 0; i < b.N; i++ {
		r, err := experiment.TraceFigure(bs.EBSN, 60*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		timeouts = r.Summary.Timeouts
	}
	b.ReportMetric(float64(timeouts), "timeouts")
}

// BenchmarkFig7 regenerates the basic-TCP packet-size sweep and reports
// the best mean throughput at bad=1s.
func BenchmarkFig7(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		points, err := experiment.Fig7(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		_, best = experiment.OptimalPacketSize(points, time.Second)
	}
	b.ReportMetric(best, "kbps@bad=1s")
}

// BenchmarkFig8 regenerates the EBSN packet-size sweep and reports the
// large-packet throughput at bad=4s (the paper's 100%-improvement point).
func BenchmarkFig8(b *testing.B) {
	var tput float64
	for i := 0; i < b.N; i++ {
		points, err := experiment.Fig8(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.BadPeriod == 4*time.Second && p.PacketSize == 1536 {
				tput = p.ThroughputKbps.Mean()
			}
		}
	}
	b.ReportMetric(tput, "kbps@1536B,bad=4s")
}

// BenchmarkFig9 regenerates the retransmitted-data comparison and reports
// the basic-minus-EBSN gap at 1536B/bad=4s in KB.
func BenchmarkFig9(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		points, err := experiment.Fig9(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var basicKB, ebsnKB float64
		for _, p := range points {
			if p.BadPeriod == 4*time.Second && p.PacketSize == 1536 {
				switch p.Scheme {
				case bs.Basic:
					basicKB = p.RetransKB.Mean()
				case bs.EBSN:
					ebsnKB = p.RetransKB.Mean()
				}
			}
		}
		gap = basicKB - ebsnKB
	}
	b.ReportMetric(gap, "retransKB-gap")
}

// BenchmarkFig10 regenerates the LAN throughput comparison and reports
// EBSN's relative improvement over basic at bad=800ms.
func BenchmarkFig10(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		points, err := experiment.LANStudy(context.Background(), experiment.Options{
			Replications: 2,
			Transfer:     units.MB,
			BadPeriods:   []time.Duration{800 * time.Millisecond},
		})
		if err != nil {
			b.Fatal(err)
		}
		var basicM, ebsnM float64
		for _, p := range points {
			switch p.Scheme {
			case bs.Basic:
				basicM = p.ThroughputMbps.Mean()
			case bs.EBSN:
				ebsnM = p.ThroughputMbps.Mean()
			}
		}
		improvement = 100 * (ebsnM - basicM) / basicM
	}
	b.ReportMetric(improvement, "%improvement")
}

// BenchmarkFig11 regenerates the LAN retransmitted-data comparison and
// reports basic TCP's retransmitted volume at bad=800ms (EBSN's is ~0).
func BenchmarkFig11(b *testing.B) {
	var basicKB float64
	for i := 0; i < b.N; i++ {
		points, err := experiment.LANStudy(context.Background(), experiment.Options{
			Replications: 2,
			Transfer:     units.MB,
			BadPeriods:   []time.Duration{800 * time.Millisecond},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Scheme == bs.Basic {
				basicKB = p.RetransKB.Mean()
			}
		}
	}
	b.ReportMetric(basicKB, "basic-retransKB")
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationTahoeVsReno compares the source variants under the WAN
// preset; the metric is Reno's throughput advantage in percent.
func BenchmarkAblationTahoeVsReno(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		run := func(v tcp.Variant) float64 {
			cfg := core.WAN(bs.Basic, 576, 2*time.Second)
			cfg.Variant = v
			cfg.TransferSize = 40 * units.KB
			r, err := core.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return r.Summary.ThroughputKbps
		}
		tahoe := run(tcp.Tahoe)
		reno := run(tcp.Reno)
		adv = 100 * (reno - tahoe) / tahoe
	}
	b.ReportMetric(adv, "%reno-advantage")
}

// BenchmarkAblationClockGranularity compares the paper's 100 ms TCP clock
// against a 500 ms BSD-style clock under local recovery — the coarse
// clock hides the spurious-timeout problem EBSN exists to fix.
func BenchmarkAblationClockGranularity(b *testing.B) {
	var fineTO, coarseTO float64
	for i := 0; i < b.N; i++ {
		run := func(g time.Duration) float64 {
			cfg := core.WAN(bs.LocalRecovery, 576, 4*time.Second)
			cfg.Granularity = g
			cfg.TransferSize = 40 * units.KB
			r, err := core.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return float64(r.Summary.Timeouts)
		}
		fineTO = run(100 * time.Millisecond)
		coarseTO = run(500 * time.Millisecond)
	}
	b.ReportMetric(fineTO, "timeouts@100ms")
	b.ReportMetric(coarseTO, "timeouts@500ms")
}

// BenchmarkAblationARQWindow sweeps the local-recovery pipeline depth; the
// metric is the stop-and-wait (window 1) throughput penalty in percent.
func BenchmarkAblationARQWindow(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		run := func(w int) float64 {
			cfg := core.WAN(bs.EBSN, 576, 2*time.Second)
			cfg.ARQ.Window = w
			cfg.TransferSize = 40 * units.KB
			r, err := core.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return r.Summary.ThroughputKbps
		}
		w1 := run(1)
		w4 := run(4)
		penalty = 100 * (w4 - w1) / w4
	}
	b.ReportMetric(penalty, "%stopandwait-penalty")
}

// BenchmarkAblationSnoopVsLocalRecovery compares the related-work snoop
// baseline against the paper's link-level recovery under bursty loss.
func BenchmarkAblationSnoopVsLocalRecovery(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		run := func(s bs.Scheme) float64 {
			cfg := core.WAN(s, 576, 4*time.Second)
			cfg.TransferSize = 40 * units.KB
			r, err := core.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return r.Summary.ThroughputKbps
		}
		gap = run(bs.LocalRecovery) - run(bs.Snoop)
	}
	b.ReportMetric(gap, "kbps-gap")
}

// BenchmarkRelatedWorkCSDP regenerates the §2 scheduling comparison
// [Bhagwat 95]: the metric is round-robin's aggregate-throughput advantage
// over FIFO in percent, with CSDP's shown alongside.
func BenchmarkRelatedWorkCSDP(b *testing.B) {
	var rrAdv, csdpAdv float64
	for i := 0; i < b.N; i++ {
		points, err := experiment.CSDPStudy(experiment.CSDPOptions{
			Connections:  4,
			Replications: 2,
			Transfer:     256 * units.KB,
			BadPeriods:   []time.Duration{time.Second},
		})
		if err != nil {
			b.Fatal(err)
		}
		vals := map[string]float64{}
		for _, p := range points {
			vals[p.Policy.String()] = p.AggregateKbps.Mean()
		}
		rrAdv = 100 * (vals["roundrobin"] - vals["fifo"]) / vals["fifo"]
		csdpAdv = 100 * (vals["csdp"] - vals["fifo"]) / vals["fifo"]
	}
	b.ReportMetric(rrAdv, "%rr-over-fifo")
	b.ReportMetric(csdpAdv, "%csdp-over-fifo")
}

// BenchmarkFutureWorkCongestion measures EBSN's advantage over basic TCP
// while the wired link carries 60% cross-traffic load (the paper's §6
// future-work scenario).
func BenchmarkFutureWorkCongestion(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		points, err := experiment.CongestionStudy(experiment.CongestionOptions{
			Replications: 2,
			Transfer:     40 * units.KB,
			Loads:        []float64{0.6},
		})
		if err != nil {
			b.Fatal(err)
		}
		var basicT, ebsnT float64
		for _, p := range points {
			switch p.Scheme {
			case bs.Basic:
				basicT = p.ThroughputKbps.Mean()
			case bs.EBSN:
				ebsnT = p.ThroughputKbps.Mean()
			}
		}
		adv = 100 * (ebsnT - basicT) / basicT
	}
	b.ReportMetric(adv, "%ebsn-advantage@60%load")
}

// BenchmarkAblationEBSNNotifyRate thins the EBSN stream (every 4th failed
// attempt) and reports the timeout count that reappears versus
// every-attempt notification.
func BenchmarkAblationEBSNNotifyRate(b *testing.B) {
	var dense, sparse float64
	for i := 0; i < b.N; i++ {
		run := func(every int) float64 {
			cfg := core.WAN(bs.EBSN, 576, 4*time.Second)
			cfg.NotifyEvery = every
			cfg.TransferSize = 40 * units.KB
			r, err := core.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return float64(r.Summary.Timeouts)
		}
		dense = run(1)
		sparse = run(4)
	}
	b.ReportMetric(dense, "timeouts@every1")
	b.ReportMetric(sparse, "timeouts@every4")
}

// BenchmarkAblationDelayedAcks compares the paper's per-segment-ACK sink
// against RFC 1122 delayed ACKs under EBSN.
func BenchmarkAblationDelayedAcks(b *testing.B) {
	var immediate, delayed float64
	for i := 0; i < b.N; i++ {
		run := func(delay bool) float64 {
			cfg := core.WAN(bs.EBSN, 576, 2*time.Second)
			cfg.DelayedAcks = delay
			cfg.TransferSize = 40 * units.KB
			r, err := core.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return r.Summary.ThroughputKbps
		}
		immediate = run(false)
		delayed = run(true)
	}
	b.ReportMetric(immediate, "kbps-immediate")
	b.ReportMetric(delayed, "kbps-delayed")
}

// BenchmarkAblationSACK measures how much of basic TCP's wireless penalty
// selective acknowledgments recover without any base-station help — the
// TCP-side alternative the paper's approach competes with.
func BenchmarkAblationSACK(b *testing.B) {
	var plain, sacked float64
	for i := 0; i < b.N; i++ {
		run := func(sack bool) float64 {
			cfg := core.WAN(bs.Basic, 576, 4*time.Second)
			cfg.SACK = sack
			cfg.TransferSize = 40 * units.KB
			r, err := core.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return r.Summary.ThroughputKbps
		}
		plain = run(false)
		sacked = run(true)
	}
	b.ReportMetric(plain, "kbps-plain")
	b.ReportMetric(sacked, "kbps-sack")
}

// BenchmarkBaselineSplitConnection measures the I-TCP baseline against
// EBSN at the paper's default point.
func BenchmarkBaselineSplitConnection(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		run := func(s bs.Scheme) float64 {
			cfg := core.WAN(s, 576, 4*time.Second)
			cfg.TransferSize = 40 * units.KB
			r, err := core.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return r.Summary.ThroughputKbps
		}
		gap = run(bs.EBSN) - run(bs.SplitConnection)
	}
	b.ReportMetric(gap, "kbps-ebsn-over-split")
}

// BenchmarkRelatedWorkHandoff regenerates the §2 mobility comparison
// [Caceres & Iftode 94]: the metric is fast-retransmit-on-handoff's
// throughput advantage over plain TCP at a 1 s dwell.
func BenchmarkRelatedWorkHandoff(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		plain, err := handoff.Run(handoff.Defaults(handoff.Plain))
		if err != nil {
			b.Fatal(err)
		}
		fr, err := handoff.Run(handoff.Defaults(handoff.FastRetransmit))
		if err != nil {
			b.Fatal(err)
		}
		adv = 100 * (fr.ThroughputKbps - plain.ThroughputKbps) / plain.ThroughputKbps
	}
	b.ReportMetric(adv, "%fastretransmit-advantage")
}

// BenchmarkExtensionEBSNWithScheduling measures the timeout reduction
// from composing EBSN with the FIFO shared-radio scheduler.
func BenchmarkExtensionEBSNWithScheduling(b *testing.B) {
	var plainTO, ebsnTO float64
	for i := 0; i < b.N; i++ {
		run := func(ebsn bool) float64 {
			cfg := multiconn.LANDefaults(4, multiconn.FIFO, time.Second)
			cfg.TransferSize = 256 * units.KB
			cfg.EBSN = ebsn
			r, err := multiconn.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return float64(r.TotalTimeouts)
		}
		plainTO = run(false)
		ebsnTO = run(true)
	}
	b.ReportMetric(plainTO, "timeouts-plain")
	b.ReportMetric(ebsnTO, "timeouts-ebsn")
}

// BenchmarkExtensionInteractiveWorkloads measures EBSN's effect on the
// paper's motivating-but-unevaluated applications: web page loads and
// telnet keystroke latencies.
func BenchmarkExtensionInteractiveWorkloads(b *testing.B) {
	var webBasic, webEBSN, telBasic, telEBSN float64
	for i := 0; i < b.N; i++ {
		web := func(s bs.Scheme) float64 {
			r, err := core.RunWeb(core.WAN(s, 576, 4*time.Second), core.WebWorkload{
				Pages: 6, PageSize: 8 * units.KB, ThinkTime: 2 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			return r.MeanLoadSec
		}
		tel := func(s bs.Scheme) float64 {
			r, err := core.RunTelnet(core.WAN(s, 576, 4*time.Second), core.TelnetWorkload{
				Keystrokes: 80, Interval: 500 * time.Millisecond, WriteSize: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			return r.MeanLatency
		}
		webBasic, webEBSN = web(bs.Basic), web(bs.EBSN)
		telBasic, telEBSN = tel(bs.Basic), tel(bs.EBSN)
	}
	b.ReportMetric(webBasic, "web-mean-s-basic")
	b.ReportMetric(webEBSN, "web-mean-s-ebsn")
	b.ReportMetric(telBasic, "telnet-mean-s-basic")
	b.ReportMetric(telEBSN, "telnet-mean-s-ebsn")
}

// BenchmarkExtensionMultiFlow measures the multi-flow EBSN timeout
// reduction through a single base station.
func BenchmarkExtensionMultiFlow(b *testing.B) {
	var basicTO, ebsnTO float64
	for i := 0; i < b.N; i++ {
		run := func(s bs.Scheme) float64 {
			base := core.WAN(s, 576, 4*time.Second)
			base.TransferSize = 40 * units.KB
			r, err := core.RunMultiFlow(core.MultiFlowConfig{Base: base, Flows: 3})
			if err != nil {
				b.Fatal(err)
			}
			var to float64
			for _, f := range r.PerFlow {
				to += float64(f.Timeouts)
			}
			return to
		}
		basicTO = run(bs.Basic)
		ebsnTO = run(bs.EBSN)
	}
	b.ReportMetric(basicTO, "timeouts-basic")
	b.ReportMetric(ebsnTO, "timeouts-ebsn")
}

// --- Substrate micro-benchmarks ------------------------------------------

// BenchmarkSimKernel measures raw event scheduling and dispatch.
func BenchmarkSimKernel(b *testing.B) {
	s := sim.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			if err := s.RunAll(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := s.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimTimerReset measures the EBSN hot path: cancelling and
// re-arming a timer.
func BenchmarkSimTimerReset(b *testing.B) {
	s := sim.New()
	tm := sim.NewTimer(s, func() {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Set(time.Second)
	}
	tm.Stop()
	if err := s.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMarkovChannel measures per-transmission corruption queries.
func BenchmarkMarkovChannel(b *testing.B) {
	ch, err := errmodel.NewMarkov(errmodel.PaperWAN(2*time.Second), sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := time.Duration(i%100000) * time.Millisecond
		ch.ExpectedBitErrors(at, at+80*time.Millisecond, 1536)
	}
}

// BenchmarkWANRun measures one full wide-area simulation (100 KB, EBSN).
func BenchmarkWANRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.WAN(bs.EBSN, 576, 2*time.Second)
		cfg.Seed = int64(i + 1)
		r, err := core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Completed {
			b.Fatal("run did not complete")
		}
	}
}

// BenchmarkLANRun measures one full local-area simulation (4 MB, EBSN).
func BenchmarkLANRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.LAN(bs.EBSN, 800*time.Millisecond)
		cfg.Seed = int64(i + 1)
		r, err := core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Completed {
			b.Fatal("run did not complete")
		}
	}
}
