package trace

import (
	"fmt"
	"strings"
	"time"

	"wtcp/internal/units"
)

// CwndPoint is one congestion-window observation.
type CwndPoint struct {
	At       time.Duration
	Cwnd     units.ByteSize
	Ssthresh units.ByteSize
}

// CwndSeries accumulates window-evolution samples — the classic companion
// plot to the paper's packet traces: basic TCP's window saws between one
// segment and the advertised window as fades force collapses, while
// EBSN's window stays pinned high.
type CwndSeries struct {
	points []CwndPoint
}

// NewCwndSeries returns an empty series.
func NewCwndSeries() *CwndSeries { return &CwndSeries{} }

// Record appends one observation.
func (c *CwndSeries) Record(at time.Duration, cwnd, ssthresh units.ByteSize) {
	c.points = append(c.points, CwndPoint{At: at, Cwnd: cwnd, Ssthresh: ssthresh})
}

// Hook returns a tcp.Hooks-compatible OnCwnd callback bound to a clock.
func (c *CwndSeries) Hook(now func() time.Duration) func(cwnd, ssthresh units.ByteSize) {
	return func(cwnd, ssthresh units.ByteSize) { c.Record(now(), cwnd, ssthresh) }
}

// Points returns a copy of the series.
func (c *CwndSeries) Points() []CwndPoint {
	out := make([]CwndPoint, len(c.points))
	copy(out, c.points)
	return out
}

// Collapses counts window resets to at most one segment of the given MSS.
func (c *CwndSeries) Collapses(mss units.ByteSize) int {
	n := 0
	for i := 1; i < len(c.points); i++ {
		if c.points[i].Cwnd <= mss && c.points[i-1].Cwnd > mss {
			n++
		}
	}
	return n
}

// Max reports the largest window observed.
func (c *CwndSeries) Max() units.ByteSize {
	var m units.ByteSize
	for _, p := range c.points {
		if p.Cwnd > m {
			m = p.Cwnd
		}
	}
	return m
}

// CSV renders the series as time_sec,cwnd_bytes,ssthresh_bytes.
func (c *CwndSeries) CSV() string {
	var b strings.Builder
	b.WriteString("time_sec,cwnd_bytes,ssthresh_bytes\n")
	for _, p := range c.points {
		fmt.Fprintf(&b, "%.3f,%d,%d\n", p.At.Seconds(), p.Cwnd, p.Ssthresh)
	}
	return b.String()
}

// RenderASCII draws cwnd over time on a width x height grid scaled to the
// observed maxima.
func (c *CwndSeries) RenderASCII(width, height int, horizon time.Duration) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	if horizon <= 0 {
		for _, p := range c.points {
			if p.At > horizon {
				horizon = p.At
			}
		}
		if horizon == 0 {
			horizon = time.Second
		}
	}
	maxW := c.Max()
	if maxW == 0 {
		maxW = 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range c.points {
		if p.At > horizon {
			continue
		}
		x := int(float64(width-1) * float64(p.At) / float64(horizon))
		y := int(float64(height-1) * float64(p.Cwnd) / float64(maxW))
		grid[height-1-y][x] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "congestion window (top=%s)\n", maxW)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, " 0%*s\n", width-1, fmt.Sprintf("%.0fs", horizon.Seconds()))
	return b.String()
}
