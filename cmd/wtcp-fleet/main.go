// Command wtcp-fleet runs a sweep campaign sharded across worker
// processes, with lease-based fault tolerance: a crashed, hung, or
// killed worker's points are reassigned, results are recorded exactly
// once, and the merged checkpoint is byte-identical to what the
// sequential engine would have produced.
//
//	wtcp-fleet run -campaign campaign.json -ledger sweep.json -workers 4
//	wtcp-fleet run -campaign campaign.json -ledger sweep.json -chaos faults.json
//	wtcp-fleet coordinate -campaign campaign.json -ledger sweep.json -listen 127.0.0.1:7070
//	wtcp-fleet worker -coordinator http://127.0.0.1:7070 -name worker-0
//
// `run` is the one-machine mode: it starts a coordinator on a loopback
// port, spawns N worker subprocesses (re-executing this binary's
// `worker` subcommand), and blocks until the campaign completes.
// `coordinate` and `worker` are the split mode for driving the two
// halves by hand or across machines.
//
// After a campaign, the ledger file is an ordinary engine checkpoint:
// point wtcp-figures or wtcp-report at it (-checkpoint) to render the
// figures from the merged results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"syscall"
	"time"

	"wtcp/internal/chaos"
	"wtcp/internal/experiment"
	"wtcp/internal/fleet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "wtcp-fleet: interrupted; settled points are in the ledger, rerun to resume")
		} else {
			fmt.Fprintln(os.Stderr, "wtcp-fleet:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: wtcp-fleet <run|coordinate|worker> [flags] (see -h of each subcommand)")
	}
	switch args[0] {
	case "run":
		return runLocal(ctx, args[1:])
	case "coordinate":
		return runCoordinator(ctx, args[1:])
	case "worker":
		return runWorker(ctx, args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want run, coordinate, or worker)", args[0])
	}
}

// loadCampaign reads and validates a campaign manifest file.
func loadCampaign(path string) (fleet.Campaign, error) {
	if path == "" {
		return fleet.Campaign{}, fmt.Errorf("a campaign manifest is required (-campaign campaign.json)")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fleet.Campaign{}, fmt.Errorf("read campaign: %w", err)
	}
	c, err := fleet.ParseCampaign(raw)
	if err != nil {
		return fleet.Campaign{}, fmt.Errorf("campaign %s: %w", path, err)
	}
	return c, nil
}

// loadFaults reads an optional chaos plan for the fleet boundary.
func loadFaults(path string) (*chaos.FleetFaults, error) {
	if path == "" {
		return nil, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read chaos plan: %w", err)
	}
	f, err := chaos.ParseFleet(raw)
	if err != nil {
		return nil, fmt.Errorf("chaos plan %s: %w", path, err)
	}
	return f, nil
}

// runLocal is the one-machine mode: coordinator plus N subprocess
// workers, blocking until the campaign settles every point.
func runLocal(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("wtcp-fleet run", flag.ContinueOnError)
	var (
		campaignPath = fs.String("campaign", "", "campaign manifest JSON (required)")
		ledgerPath   = fs.String("ledger", "", "checkpoint file results merge into (required); rerunning resumes from it")
		workers      = fs.Int("workers", 4, "worker subprocesses to spawn")
		statusPath   = fs.String("status", "", "write the fleet health snapshot JSON to this file as the campaign runs")
		chaosPath    = fs.String("chaos", "", "fleet fault-injection plan JSON (see internal/chaos.FleetFaults)")
		leaseTTL     = fs.Duration("lease-ttl", 0, "lease time-to-live (0 = default 10s)")
		verbose      = fs.Bool("v", false, "log lease traffic and settlements to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	campaign, err := loadCampaign(*campaignPath)
	if err != nil {
		return err
	}
	if *ledgerPath == "" {
		return fmt.Errorf("a ledger path is required (-ledger sweep.json)")
	}
	faults, err := loadFaults(*chaosPath)
	if err != nil {
		return err
	}
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("locate own binary for worker re-exec: %w", err)
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	snap, err := fleet.RunLocal(ctx, fleet.LocalOptions{
		Campaign:   campaign,
		Workers:    *workers,
		LedgerPath: *ledgerPath,
		StatusPath: *statusPath,
		LeaseTTL:   *leaseTTL,
		Faults:     faults,
		Log:        logf,
		WorkerCommand: func(i int, name, url string) *exec.Cmd {
			// Workers get the same chaos plan: the RPC faults (drop,
			// duplicate, delay) live on the worker's client side, while
			// the kill schedule is executed by the coordinator's watcher.
			wargs := []string{"worker", "-coordinator", url, "-name", name}
			if *chaosPath != "" {
				wargs = append(wargs, "-chaos", *chaosPath)
			}
			if *verbose {
				wargs = append(wargs, "-v")
			}
			cmd := exec.Command(self, wargs...)
			cmd.Stderr = os.Stderr
			return cmd
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("campaign complete: %d/%d points settled (%d quarantined, %d reassigned, %d stolen, %d duplicate posts dropped)\n",
		snap.Settled, snap.TotalUnits, snap.Quarantined, len(snap.Reassigned), snap.Stolen, snap.Duplicates)
	fmt.Printf("ledger: %s (render with: wtcp-figures -checkpoint %s, or wtcp-report -checkpoint %s)\n",
		*ledgerPath, *ledgerPath, *ledgerPath)
	return nil
}

// runCoordinator serves the coordinator half on a fixed address until
// the campaign completes or the context ends.
func runCoordinator(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("wtcp-fleet coordinate", flag.ContinueOnError)
	var (
		campaignPath = fs.String("campaign", "", "campaign manifest JSON (required)")
		ledgerPath   = fs.String("ledger", "", "checkpoint file results merge into (required)")
		listen       = fs.String("listen", "127.0.0.1:7070", "address to serve the fleet API on")
		statusPath   = fs.String("status", "", "write the fleet health snapshot JSON to this file")
		leaseTTL     = fs.Duration("lease-ttl", 0, "lease time-to-live (0 = default 10s)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	campaign, err := loadCampaign(*campaignPath)
	if err != nil {
		return err
	}
	if *ledgerPath == "" {
		return fmt.Errorf("a ledger path is required (-ledger sweep.json)")
	}
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Campaign:   campaign,
		LedgerPath: *ledgerPath,
		StatusPath: *statusPath,
		LeaseTTL:   *leaseTTL,
		Log:        func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) },
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "wtcp-fleet: coordinating on http://%s\n", ln.Addr())
	select {
	case <-coord.Done():
		// Give in-flight result posts a moment to drain before the server
		// goes away.
		time.Sleep(100 * time.Millisecond)
		return coord.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// runWorker joins a coordinator and processes work units until told the
// campaign is done.
func runWorker(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("wtcp-fleet worker", flag.ContinueOnError)
	var (
		coordinator = fs.String("coordinator", "", "coordinator base URL (required), e.g. http://127.0.0.1:7070")
		name        = fs.String("name", "", "worker name (default worker-<pid>)")
		chaosPath   = fs.String("chaos", "", "fleet fault-injection plan JSON applied to this worker's RPCs")
		verbose     = fs.Bool("v", false, "log leases and settlements to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator == "" {
		return fmt.Errorf("a coordinator URL is required (-coordinator http://host:port)")
	}
	if *name == "" {
		*name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	faults, err := loadFaults(*chaosPath)
	if err != nil {
		return err
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	cfg := fleet.WorkerConfig{
		Name:        *name,
		Coordinator: *coordinator,
		Health:      experiment.NewHealth(),
		HTTPClient:  fleet.NewFaultClient(faults, int64(os.Getpid())),
		Log:         logf,
	}
	hookWorkerCrash(&cfg)
	return fleet.RunWorker(ctx, cfg)
}
