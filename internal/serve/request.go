package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"wtcp/internal/fleet"
	"wtcp/internal/scenario"
)

// Request envelopes and their content addresses. A request's
// fingerprint is the sha256 of its canonical identity — the fields
// that affect what the engine would measure, normalized through the
// typed request structs so formatting, key order, and documentation
// noise never split the cache. Seeds are part of the identity (a
// different seed is a different experiment); budgets and deadlines are
// not (they bound how long we are willing to compute the answer, never
// what a within-budget run measures — the same exclusion the
// checkpoint fingerprint makes).

// maxRequestBody bounds request decoding; a body this size is already
// three orders of magnitude past any legitimate scenario.
const maxRequestBody = 1 << 20

// MaxReplications bounds the per-request replication count so a single
// request cannot monopolize the server for minutes by inflating the
// multiplier rather than the scenario.
const MaxReplications = 64

// RunRequest is the POST /v1/run body: one scenario, executed under
// full engine policy (retry/backoff, classification, repro capture).
type RunRequest struct {
	// Scenario is a wtcp-sim scenario document (internal/scenario
	// schema, unknown fields rejected).
	Scenario json.RawMessage `json:"scenario"`
	// Replications runs the scenario under consecutive seeds and
	// returns every record (default 1, max MaxReplications).
	Replications int `json:"replications,omitempty"`
	// DeadlineMS bounds the whole request's execution wall clock; the
	// deadline propagates into each run's sim.Budget. Zero uses the
	// server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SweepRequest is the POST /v1/sweep body: a fleet campaign manifest
// executed locally, point by point, with every finished point
// checkpointed before the next starts.
type SweepRequest struct {
	// Campaign is a fleet campaign manifest (internal/fleet schema).
	Campaign json.RawMessage `json:"campaign"`
	// DeadlineMS bounds the whole request's execution wall clock.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// decodeStrict decodes one JSON value into v, rejecting unknown
// fields and trailing garbage. The fleet/scenario parsers reject
// unknown fields themselves but tolerate trailing bytes; at the HTTP
// boundary a half-corrupted body must never half-succeed.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Anything but a clean EOF after the first value — a second JSON
	// value or raw garbage alike — is trailing data.
	var rest json.RawMessage
	if err := dec.Decode(&rest); err != io.EOF {
		return fmt.Errorf("trailing data after request body")
	}
	return nil
}

// ParseRunRequest decodes and fully validates a /v1/run body. The
// returned scenario file has been through the same validation wtcp-sim
// applies to -config (including a complete configuration build), so an
// accepted request is known runnable before it costs a slot.
func ParseRunRequest(data []byte) (RunRequest, scenario.File, error) {
	var req RunRequest
	if err := decodeStrict(data, &req); err != nil {
		return RunRequest{}, scenario.File{}, fmt.Errorf("serve: parse run request: %w", err)
	}
	if len(bytes.TrimSpace(req.Scenario)) == 0 || string(bytes.TrimSpace(req.Scenario)) == "null" {
		return RunRequest{}, scenario.File{}, fmt.Errorf("serve: run request names no scenario")
	}
	if req.Replications < 0 {
		return RunRequest{}, scenario.File{}, fmt.Errorf("serve: replications %d is negative", req.Replications)
	}
	if req.Replications > MaxReplications {
		return RunRequest{}, scenario.File{}, fmt.Errorf("serve: replications %d exceeds the per-request cap of %d; split the request", req.Replications, MaxReplications)
	}
	if req.Replications == 0 {
		req.Replications = 1
	}
	if req.DeadlineMS < 0 {
		return RunRequest{}, scenario.File{}, fmt.Errorf("serve: deadline_ms %d is negative", req.DeadlineMS)
	}
	sf, err := scenario.ParseFile(req.Scenario)
	if err != nil {
		return RunRequest{}, scenario.File{}, fmt.Errorf("serve: %w", err)
	}
	if _, err := sf.Build(); err != nil {
		return RunRequest{}, scenario.File{}, fmt.Errorf("serve: %w", err)
	}
	return req, sf, nil
}

// ParseSweepRequest decodes and fully validates a /v1/sweep body.
func ParseSweepRequest(data []byte) (SweepRequest, fleet.Campaign, error) {
	var req SweepRequest
	if err := decodeStrict(data, &req); err != nil {
		return SweepRequest{}, fleet.Campaign{}, fmt.Errorf("serve: parse sweep request: %w", err)
	}
	if len(bytes.TrimSpace(req.Campaign)) == 0 || string(bytes.TrimSpace(req.Campaign)) == "null" {
		return SweepRequest{}, fleet.Campaign{}, fmt.Errorf("serve: sweep request names no campaign")
	}
	if req.DeadlineMS < 0 {
		return SweepRequest{}, fleet.Campaign{}, fmt.Errorf("serve: deadline_ms %d is negative", req.DeadlineMS)
	}
	c, err := fleet.ParseCampaign(req.Campaign)
	if err != nil {
		return SweepRequest{}, fleet.Campaign{}, fmt.Errorf("serve: %w", err)
	}
	return req, c, nil
}

// RunFingerprint content-addresses a run request: the normalized
// scenario (budget cleared, chaos plan compacted) plus the replication
// count, hashed under a versioned kind tag.
func RunFingerprint(sf scenario.File, replications int) string {
	sf.Budget = nil
	sf.Chaos = compactJSON(sf.Chaos)
	return fingerprintOf(struct {
		Kind         string        `json:"kind"`
		Scenario     scenario.File `json:"scenario"`
		Replications int           `json:"replications"`
	}{"run/v1", sf, replications})
}

// SweepFingerprint content-addresses a sweep request: the campaign
// with its execution-only knobs (budget, worker width) cleared.
// Supervise stays: it changes the response shape (quarantines versus a
// failed request).
func SweepFingerprint(c fleet.Campaign) string {
	c.Budget = nil
	c.Workers = 0
	return fingerprintOf(struct {
		Kind     string         `json:"kind"`
		Campaign fleet.Campaign `json:"campaign"`
	}{"sweep/v1", c})
}

// fingerprintOf hashes the canonical JSON encoding of an identity
// struct. Go's json.Marshal is deterministic for a fixed struct type,
// which is what makes these stable content addresses.
func fingerprintOf(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		// Identity structs are marshalable by construction.
		panic(fmt.Sprintf("serve: fingerprint encode: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// compactJSON normalizes an embedded raw message so whitespace in the
// client's chaos block cannot split the cache.
func compactJSON(raw json.RawMessage) json.RawMessage {
	if len(raw) == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return raw
	}
	return json.RawMessage(buf.Bytes())
}

// validFingerprint gates /v1/result path parameters: exactly a sha256
// hex digest, so a crafted path can never escape the cache directory.
func validFingerprint(fp string) bool {
	if len(fp) != 64 {
		return false
	}
	for _, c := range fp {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
