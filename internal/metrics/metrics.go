// Package metrics computes the paper's two performance measures from raw
// endpoint statistics:
//
//   - Throughput: total data received by the end user divided by the
//     connection time. Per §5 ("we take into account 40 bytes of header
//     overhead while measuring connection throughput"), the numerator is
//     user payload only — headers are deducted. That header tax is what
//     makes small packets score low in Figure 7 (a 128-byte packet spends
//     31% of the wire on headers) and what makes EBSN throughput rise
//     with packet size toward tput_th in Figure 8.
//   - Goodput: useful data received at the destination divided by total
//     data transmitted by the source, both at the network layer — 1.0
//     when nothing was retransmitted (the paper reports 100% goodput for
//     EBSN).
package metrics

import (
	"time"

	"wtcp/internal/packet"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

// Summary is the per-run measurement record.
type Summary struct {
	// Elapsed is the connection time (start to last-byte-acknowledged).
	Elapsed time.Duration
	// UserBytes is the delivered user payload (headers deducted), the
	// throughput numerator.
	UserBytes units.ByteSize
	// ThroughputKbps and ThroughputMbps express UserBytes/Elapsed.
	ThroughputKbps float64
	ThroughputMbps float64
	// Goodput is UserBytes over everything the source transmitted.
	Goodput float64
	// RetransmittedBytes counts source retransmissions (network-layer),
	// the paper's "data retransmitted" series.
	RetransmittedBytes units.ByteSize
	// Timeouts, FastRetransmits and EBSNResets summarize source events.
	Timeouts        uint64
	FastRetransmits uint64
	EBSNResets      uint64
}

// Segments reports how many segments a transfer of total bytes needs at
// the given MSS.
func Segments(total, mss units.ByteSize) int64 {
	if mss <= 0 || total <= 0 {
		return 0
	}
	return int64((total + mss - 1) / mss)
}

// WireBytes reports the on-wire bytes of a transfer's original segments:
// payload plus one header per segment.
func WireBytes(total, mss units.ByteSize) units.ByteSize {
	return total + units.ByteSize(Segments(total, mss))*packet.HeaderSize
}

// Summarize computes the run summary for a completed transfer of total
// payload bytes segmented at mss, finished at elapsed, with the sender's
// counters.
func Summarize(total, mss units.ByteSize, st tcp.Stats, elapsed time.Duration) Summary {
	s := Summary{
		Elapsed:            elapsed,
		UserBytes:          total,
		ThroughputKbps:     units.ThroughputKbps(total, elapsed),
		ThroughputMbps:     units.ThroughputMbps(total, elapsed),
		RetransmittedBytes: st.RetransBytes,
		Timeouts:           st.Timeouts,
		FastRetransmits:    st.FastRetransmits,
		EBSNResets:         st.EBSNResets,
	}
	// Goodput compares like with like at the network layer: the wire
	// bytes of the segments the user needed against everything the
	// source transmitted.
	if st.BytesSent > 0 {
		s.Goodput = float64(WireBytes(total, mss)) / float64(st.BytesSent)
	}
	return s
}

// RetransmittedKB reports the retransmitted volume in the paper's KBytes
// unit.
func (s Summary) RetransmittedKB() float64 {
	return float64(s.RetransmittedBytes) / float64(units.KB)
}
