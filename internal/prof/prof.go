// Package prof wires the standard runtime/pprof profilers behind the
// -cpuprofile/-memprofile flags the CLIs expose, so a slow campaign can
// be profiled in place (`go tool pprof` on the emitted files) without
// rebuilding anything.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a
// stop function that finishes the CPU profile and writes a heap profile
// to memPath (if non-empty). Either path may be empty; with both empty
// Start is a no-op and the returned stop does nothing. The stop function
// must be called exactly once, typically via defer.
func Start(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
			defer f.Close()
			// An up-to-date picture of live allocations, not whatever the
			// last background GC happened to see.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
