package scenario

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

func writeScenario(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadScenarioFull(t *testing.T) {
	path := writeScenario(t, `{
		"preset": "wan",
		"scheme": "ebsn",
		"packet_size_bytes": 1536,
		"transfer_kb": 50,
		"window_kb": 8,
		"mean_good": "8s",
		"mean_bad": "3s",
		"deterministic": true,
		"variant": "newreno",
		"delayed_acks": true,
		"sack": true,
		"ecn": true,
		"notify_every": 2,
		"cross_traffic_pct": 30,
		"seed": 42,
		"collect_trace": true
	}`)
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheme != bs.EBSN || cfg.PacketSize != 1536 {
		t.Errorf("scheme/packet = %v/%v", cfg.Scheme, cfg.PacketSize)
	}
	if cfg.TransferSize != 50*units.KB || cfg.Window != 8*units.KB {
		t.Errorf("transfer/window = %v/%v", cfg.TransferSize, cfg.Window)
	}
	if cfg.Channel.MeanGood != 8*time.Second || cfg.Channel.MeanBad != 3*time.Second {
		t.Errorf("channel = %+v", cfg.Channel)
	}
	if !cfg.Channel.Deterministic || !cfg.DelayedAcks || !cfg.SACK || !cfg.ECN || !cfg.CollectTrace {
		t.Error("boolean options not applied")
	}
	if cfg.Variant != tcp.NewReno || cfg.NotifyEvery != 2 || cfg.Seed != 42 {
		t.Errorf("variant/notify/seed = %v/%d/%d", cfg.Variant, cfg.NotifyEvery, cfg.Seed)
	}
	if cfg.CrossTraffic.Rate != units.BitRate(0.3*56000) {
		t.Errorf("cross traffic = %v", cfg.CrossTraffic.Rate)
	}
}

func TestLoadScenarioLANDefaults(t *testing.T) {
	path := writeScenario(t, `{"preset": "lan", "scheme": "basic", "mean_bad": "800ms"}`)
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WirelessRate != 2*units.Mbps || cfg.PacketSize != 1536 {
		t.Errorf("LAN preset not applied: %v/%v", cfg.WirelessRate, cfg.PacketSize)
	}
}

func TestLoadScenarioRejections(t *testing.T) {
	tests := []struct {
		name string
		body string
	}{
		{"bad json", `{`},
		{"unknown field", `{"bogus": 1}`},
		{"unknown preset", `{"preset": "moon"}`},
		{"unknown scheme", `{"scheme": "bogus"}`},
		{"unknown variant", `{"variant": "vegas"}`},
		{"bad duration", `{"mean_bad": "sometimes"}`},
		{"invalid config", `{"packet_size_bytes": 10}`},
		{"negative packet size", `{"packet_size_bytes": -1}`},
		{"negative transfer", `{"transfer_kb": -5}`},
		{"negative window", `{"window_kb": -1}`},
		{"bad mtu", `{"mtu_bytes": -2}`},
		{"negative wired rate", `{"wired_kbps": -56}`},
		{"negative wireless rate", `{"wireless_kbps": -19.2}`},
		{"negative notify thinning", `{"notify_every": -1}`},
		{"cross traffic over 100", `{"cross_traffic_pct": 150}`},
		{"negative mean_bad", `{"mean_bad": "-2s"}`},
		{"bad horizon", `{"horizon": "eventually"}`},
		{"negative stall", `{"stall": "-3s"}`},
		{"bad stall word", `{"stall": "never"}`},
		{"bad chaos json", `{"chaos": {"blackouts": "all of them"}}`},
		{"chaos unknown link", `{"chaos": {"blackouts": [{"link": "nope", "at": "1s", "length": "1s"}]}}`},
		{"chaos past horizon", `{"horizon": "10s", "chaos": {"crashes": [{"at": "20s", "downtime": "2s"}]}}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			path := writeScenario(t, tt.body)
			if _, err := Load(path); err == nil {
				t.Error("invalid scenario accepted")
			}
		})
	}
	if _, err := Load("/nonexistent/path.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadScenarioChaos(t *testing.T) {
	path := writeScenario(t, `{
		"scheme": "ebsn",
		"transfer_kb": 20,
		"horizon": "5m",
		"checks": true,
		"stall": "2m",
		"chaos": {
			"blackouts": [{"link": "wireless-down", "at": "5s", "length": "3s"}],
			"crashes":   [{"at": "20s", "downtime": "2s"}],
			"notify":    {"loss_prob": 0.5}
		}
	}`)
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Chaos.Enabled() {
		t.Error("chaos plan not applied")
	}
	if !cfg.Checks || cfg.Stall != 2*time.Minute {
		t.Errorf("checks/stall = %v/%v", cfg.Checks, cfg.Stall)
	}
	if len(cfg.Chaos.Blackouts) != 1 || len(cfg.Chaos.Crashes) != 1 || cfg.Chaos.Notify.LossProb != 0.5 {
		t.Errorf("chaos plan = %+v", cfg.Chaos)
	}
}

func TestLoadScenarioStallOff(t *testing.T) {
	path := writeScenario(t, `{"stall": "off"}`)
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Stall >= 0 {
		t.Errorf("stall \"off\" did not disable the watchdog: %v", cfg.Stall)
	}
}
