// Scheme shoot-out: every base-station behaviour in the repository —
// basic forwarding, local recovery, EBSN, ICMP source quench (the paper's
// negative result), and a simplified snoop agent (related work) — under
// identical wide-area error conditions, averaged over replications.
//
//	go run ./examples/schemes
package main

import (
	"fmt"
	"log"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
	"wtcp/internal/stats"
)

func main() {
	const reps = 5
	bad := 4 * time.Second
	fmt.Printf("100KB, 576B packets, mean good 10s / bad %v, %d replications\n\n", bad, reps)
	fmt.Printf("%-15s %12s %9s %12s %9s\n", "scheme", "throughput", "goodput", "retransmit", "timeouts")

	for _, scheme := range bs.Schemes() {
		var tput, goodput, retrans, timeouts stats.Sample
		for seed := int64(1); seed <= reps; seed++ {
			cfg := core.WAN(scheme, 576, bad)
			cfg.Seed = seed
			r, err := core.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if !r.Completed {
				log.Fatalf("%v seed %d did not complete", scheme, seed)
			}
			tput.Add(r.Summary.ThroughputKbps)
			goodput.Add(r.Summary.Goodput)
			retrans.Add(r.Summary.RetransmittedKB())
			timeouts.Add(float64(r.Summary.Timeouts))
		}
		fmt.Printf("%-15s %7.2f Kbps %9.3f %9.1f KB %9.1f\n",
			scheme, tput.Mean(), goodput.Mean(), retrans.Mean(), timeouts.Mean())
	}

	th := core.WAN(bs.Basic, 576, bad).TheoreticalMaxKbps()
	fmt.Printf("\ntheoretical maximum: %.2f Kbps\n", th)
	fmt.Println(`
Reading the table (paper sections 2, 4.2, 5):
 - local recovery lifts throughput but the source still times out;
 - source quench throttles the window yet cannot stop those timeouts;
 - EBSN keeps resetting the retransmission timer and reaches ~tput_th
   with goodput ~1.0 and no state at the base station;
 - snoop keeps transport state at the base station and still struggles
   with long burst losses (its local timer interacts with the fade).`)
}
