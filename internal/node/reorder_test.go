package node

import (
	"testing"
	"testing/quick"
	"time"

	"wtcp/internal/packet"
)

// seqUnit builds a sequenced whole-packet unit (LAN-style ARQ).
func seqUnit(id uint64, linkSeq int64, seq int64) *packet.Packet {
	return &packet.Packet{
		ID: id, Kind: packet.Data, Seq: seq, Payload: 536, LinkSeq: linkSeq,
	}
}

func TestReorderBufferRestoresOrder(t *testing.T) {
	h := newHarness(t, true)
	// Units arrive 2, 3, 1 (retransmission backoff reordered the air).
	h.m.Receive(seqUnit(12, 2, 536))
	h.m.Receive(seqUnit(13, 3, 1072))
	if got := h.sink.Delivered(); got != 0 {
		t.Fatalf("out-of-order units delivered early: %d", got)
	}
	h.m.Receive(seqUnit(11, 1, 0))
	if got := h.sink.Delivered(); got != 3*536 {
		t.Fatalf("delivered %d after gap filled, want %d", got, 3*536)
	}
	// All in order: exactly three TCP acks, and the last is cumulative.
	var acks []*packet.Packet
	for _, p := range h.uplink {
		if p.Kind == packet.Ack {
			acks = append(acks, p)
		}
	}
	if len(acks) != 3 || acks[2].AckNo != 3*536 {
		t.Errorf("acks = %v", acks)
	}
	if h.m.Stats().ReorderedUnits != 2 {
		t.Errorf("ReorderedUnits = %d, want 2", h.m.Stats().ReorderedUnits)
	}
}

func TestReorderDuplicateDetection(t *testing.T) {
	h := newHarness(t, true)
	u := seqUnit(5, 1, 0)
	h.m.Receive(u)
	h.m.Receive(u) // duplicate after delivery (lost link ack)
	if h.m.Stats().DuplicateUnits != 1 {
		t.Errorf("DuplicateUnits = %d, want 1", h.m.Stats().DuplicateUnits)
	}
	// Duplicate while still buffered.
	v := seqUnit(6, 3, 1072)
	h.m.Receive(v)
	h.m.Receive(v)
	if h.m.Stats().DuplicateUnits != 2 {
		t.Errorf("DuplicateUnits = %d, want 2", h.m.Stats().DuplicateUnits)
	}
	if h.sink.Delivered() != 536 {
		t.Errorf("Delivered = %d", h.sink.Delivered())
	}
}

func TestGapFlushAfterDiscard(t *testing.T) {
	h := newHarnessWithReorderTimeout(t, 500*time.Millisecond)
	// Unit 1 was discarded by the base station; 2 and 3 arrive.
	h.m.Receive(seqUnit(22, 2, 536))
	h.m.Receive(seqUnit(23, 3, 1072))
	if h.sink.Delivered() != 0 {
		t.Fatal("gap leaked early")
	}
	if err := h.s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if h.m.Stats().GapFlushes != 1 {
		t.Errorf("GapFlushes = %d, want 1", h.m.Stats().GapFlushes)
	}
	// The buffered OOO segments reach the sink (which dupacks; TCP
	// recovers the hole end to end).
	if h.sink.Stats().BufferedSegments != 2 {
		t.Errorf("sink buffered = %d, want 2", h.sink.Stats().BufferedSegments)
	}
}

func TestGapFillCancelsFlush(t *testing.T) {
	h := newHarnessWithReorderTimeout(t, 500*time.Millisecond)
	h.m.Receive(seqUnit(32, 2, 536))
	h.m.Receive(seqUnit(31, 1, 0)) // gap fills promptly
	if err := h.s.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if h.m.Stats().GapFlushes != 0 {
		t.Errorf("GapFlushes = %d after a filled gap", h.m.Stats().GapFlushes)
	}
	if h.s.Pending() != 0 {
		t.Errorf("%d timers leaked", h.s.Pending())
	}
}

func TestMultipleGapsFlushIteratively(t *testing.T) {
	h := newHarnessWithReorderTimeout(t, 300*time.Millisecond)
	// Holes at 1 and 3: units 2 and 4 arrive.
	h.m.Receive(seqUnit(42, 2, 536))
	h.m.Receive(seqUnit(44, 4, 3*536))
	if err := h.s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if h.m.Stats().GapFlushes != 2 {
		t.Errorf("GapFlushes = %d, want 2 (one per hole)", h.m.Stats().GapFlushes)
	}
	if h.sink.Stats().BufferedSegments != 2 {
		t.Errorf("sink buffered = %d", h.sink.Stats().BufferedSegments)
	}
}

// newHarnessWithReorderTimeout builds a link-acking mobile host with a
// custom gap timeout.
func newHarnessWithReorderTimeout(t *testing.T, timeout time.Duration) *harness {
	t.Helper()
	h := newHarness(t, true)
	m, err := NewMobile(h.s, MobileConfig{LinkAcks: true, ReorderTimeout: timeout},
		h.ids, h.sink, func(p *packet.Packet) { h.uplink = append(h.uplink, p) })
	if err != nil {
		t.Fatal(err)
	}
	h.m = m
	return h
}

// TestPropertyReorderAnyPermutation: whatever order sequenced units
// arrive in (with duplicates), the sink sees them in link order and
// exactly once.
func TestPropertyReorderAnyPermutation(t *testing.T) {
	f := func(order []uint8) bool {
		const n = 8
		h := newHarness(t, true)
		units := make([]*packet.Packet, n)
		for i := range units {
			units[i] = seqUnit(uint64(100+i), int64(i+1), int64(i)*536)
		}
		seen := map[int]bool{}
		for _, b := range order {
			idx := int(b) % n
			seen[idx] = true
			h.m.Receive(units[idx])
		}
		// Deliveries equal the longest contiguous prefix received.
		prefix := 0
		for seen[prefix] {
			prefix++
		}
		return int64(h.sink.Delivered()) == packetBytes(prefix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func packetBytes(n int) (total int64) { return int64(n) * 536 }
