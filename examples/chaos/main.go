// Chaos: compose faults beyond the paper's error model — a wireless
// blackout, a base-station crash that loses all ARQ state, and 50% EBSN
// notification loss — onto one EBSN transfer, with runtime invariant
// checking and the no-progress watchdog armed. Run it twice with one
// seed to show the whole fault schedule is deterministic, then wedge a
// transfer completely to show the watchdog aborting it with a
// diagnostic snapshot.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/chaos"
	"wtcp/internal/core"
	"wtcp/internal/units"
)

func chaosConfig() core.Config {
	cfg := core.WAN(bs.EBSN, 576, 2*time.Second)
	cfg.TransferSize = 30 * units.KB
	cfg.Checks = true // invariant checking + auto-armed watchdog
	cfg.Seed = 7
	cfg.Chaos = &chaos.Config{
		Blackouts: []chaos.Blackout{{Link: chaos.WirelessDown, At: 10 * time.Second, Length: 3 * time.Second}},
		Crashes:   []chaos.Crash{{At: 25 * time.Second, Downtime: 2 * time.Second}},
		Notify:    chaos.NotifyFaults{LossProb: 0.5},
	}
	return cfg
}

func main() {
	fmt.Println("30KB EBSN transfer under injected faults: 3s wireless blackout at 10s,")
	fmt.Println("base-station crash at 25s (2s downtime, ARQ state lost), 50% EBSN loss.")
	fmt.Println()

	first, err := core.Run(chaosConfig())
	if err != nil {
		log.Fatal(err) // an error here would be an invariant violation
	}
	second, err := core.Run(chaosConfig())
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, r *core.Result) {
		fmt.Printf("%-12s completed=%v  throughput=%.2f Kbps  timeouts=%d\n",
			name, r.Completed, r.Summary.ThroughputKbps, r.Summary.Timeouts)
		fmt.Printf("%-12s faults: crashes=%d arq_state_lost=%d notify_lost=%d\n",
			"", r.Chaos.Crashes, r.Chaos.CrashLostPackets, r.Chaos.NotifyDropped)
	}
	report("run 1:", first)
	report("run 2:", second)
	identical := first.Summary == second.Summary && *first.Chaos == *second.Chaos
	fmt.Printf("\nbit-identical across runs (same seed): %v\n", identical)
	if !identical {
		log.Fatal("determinism broken: two runs with one seed diverged")
	}

	// Now leave the transfer no way to finish: a blackout covering the
	// whole horizon on the forward wired hop. The watchdog aborts the run
	// after its no-progress window instead of simulating two virtual
	// hours of nothing.
	wedged := core.WAN(bs.Basic, 576, 2*time.Second)
	wedged.TransferSize = 30 * units.KB
	wedged.Stall = 2 * time.Minute
	wedged.Chaos = &chaos.Config{
		Blackouts: []chaos.Blackout{{Link: chaos.WiredFwd, At: 0, Length: 4 * time.Hour}},
	}
	r, err := core.Run(wedged)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwedged run (forward wire dead for the whole horizon):\n")
	fmt.Printf("aborted=%v at virtual time %v; watchdog snapshot:\n%s\n",
		r.Aborted, r.Summary.Elapsed, r.AbortReason)
}
