package sim

import (
	"testing"
	"time"
)

// These tests pin the zero-allocation guarantee of the kernel hot path.
// testing.AllocsPerRun fails the build the moment someone reintroduces a
// per-operation allocation (a closure, a boxed heap element, an event
// struct that escapes the free list) — the regressions the pooled kernel
// exists to prevent.

// TestScheduleFireZeroAlloc: steady-state schedule→fire cycles must not
// allocate. The first cycle warms the free list; every later event struct
// comes back from recycle.
func TestScheduleFireZeroAlloc(t *testing.T) {
	s := New()
	var fn func()
	fn = func() {}
	// Warm: grow the heap slab and seed the free list.
	for i := 0; i < 64; i++ {
		s.Schedule(time.Duration(i)*time.Microsecond, fn)
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("warmup run: %v", err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Schedule(time.Microsecond, fn)
		if err := s.RunAll(); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("schedule+fire allocated %.1f objects per op, want 0", allocs)
	}
}

// TestTimerSetZeroAlloc: re-arming a timer (the EBSN reset path — the
// hottest cancel+schedule pattern in the codebase) must not allocate.
func TestTimerSetZeroAlloc(t *testing.T) {
	s := New()
	tm := NewTimer(s, func() {})
	tm.Set(time.Millisecond) // warm: first Set takes the event struct
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Set(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("Timer.Set allocated %.1f objects per op, want 0", allocs)
	}
	// Lazy cancellation must not let tombstones accumulate unboundedly:
	// after 1000+ re-arms the queue holds at most ~compactMin dead events
	// plus the one live timer.
	if p := s.Pending(); p != 1 {
		t.Fatalf("pending live events = %d, want 1", p)
	}
	if qlen := s.queue.len(); qlen > 2*compactMin {
		t.Fatalf("queue holds %d slots after repeated re-arms; compaction is not bounding tombstones", qlen)
	}
}

// TestCancelZeroAlloc: tombstoning is O(1) and allocation-free (the
// amortized compaction sweep recycles in place).
func TestCancelZeroAlloc(t *testing.T) {
	s := New()
	fn := func() {}
	allocs := testing.AllocsPerRun(1000, func() {
		ev := s.Schedule(time.Second, fn)
		s.Cancel(ev)
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel allocated %.1f objects per op, want 0", allocs)
	}
}
