//go:build unix

package fleet

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"syscall"
	"testing"
	"time"

	"wtcp/internal/chaos"
	"wtcp/internal/experiment"
)

// The crash acceptance suite: SIGKILL a worker process mid-campaign and
// assert the lease protocol's promises — zero lost points, zero
// double-counted replications, results bit-identical to the sequential
// engine. The kill ordering relative to the result post is the whole
// game, so the killed worker SIGKILLs *itself* at the exact boundary
// (via the env hooks in TestMain's worker mode) instead of being shot
// from outside at a random moment.

// runTestWorker is the helper-process main (dispatched from TestMain):
// join the coordinator named by env, optionally arming a self-SIGKILL
// at an exact result-post boundary — the only way to pin the
// kill-before-post and kill-after-post orderings deterministically.
func runTestWorker() {
	cfg := WorkerConfig{
		Name:        os.Getenv("WTCP_FLEET_TEST_NAME"),
		Coordinator: os.Getenv("WTCP_FLEET_TEST_COORD"),
		Health:      experiment.NewHealth(),
	}
	if n, _ := strconv.Atoi(os.Getenv("WTCP_FLEET_TEST_KILL_BEFORE")); n > 0 {
		count := 0
		cfg.BeforeResult = func(string) {
			if count++; count == n {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	if n, _ := strconv.Atoi(os.Getenv("WTCP_FLEET_TEST_KILL_AFTER")); n > 0 {
		count := 0
		cfg.AfterResult = func(string) {
			if count++; count == n {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	if err := RunWorker(context.Background(), cfg); err != nil {
		fmt.Fprintln(os.Stderr, "test worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// testWorkerCommand re-execs this test binary as a fleet worker.
// extraEnv arms crash hooks for specific worker indexes.
func testWorkerCommand(t *testing.T, extraEnv map[int][]string) func(i int, name, url string) *exec.Cmd {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func(i int, name, url string) *exec.Cmd {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			"WTCP_FLEET_TEST_WORKER=1",
			"WTCP_FLEET_TEST_NAME="+name,
			"WTCP_FLEET_TEST_COORD="+url,
		)
		cmd.Env = append(cmd.Env, extraEnv[i]...)
		cmd.Stderr = os.Stderr
		return cmd
	}
}

// crashCampaign makes points heavy enough (~40 ms) that a 100 ms lease
// TTL expires well before the steal threshold (4x the median settle
// time) can fire, so the kill tests exercise the expiry path. The
// conformance oracle stays off: at transfers this large a known
// pre-existing oracle strictness issue (tahoe/cwnd-growth at ~4 min of
// virtual time) would fail the sequential reference run itself, which
// is orthogonal to what this suite tests.
func crashCampaign() Campaign {
	c := integrationCampaign()
	c.TransferKB = 500
	c.Oracle = false
	return c
}

// runCrashCampaign shards crashCampaign over two subprocess workers
// with worker 0 armed to SIGKILL itself, then verifies the campaign
// completed with results bit-identical to the sequential engine's.
func runCrashCampaign(t *testing.T, killEnv string) Snapshot {
	t.Helper()
	c := crashCampaign()
	wantFig7, wantLAN := sequentialResults(t, c, "")

	ledger := filepath.Join(t.TempDir(), "ledger.json")
	snap, err := RunLocal(context.Background(), LocalOptions{
		Campaign:   c,
		Workers:    2,
		LedgerPath: ledger,
		LeaseTTL:   100 * time.Millisecond,
		WorkerCommand: testWorkerCommand(t, map[int][]string{
			0: {killEnv + "=1"},
		}),
		Log: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Settled != snap.TotalUnits || snap.TotalUnits != 4 {
		t.Fatalf("campaign settled %d/%d after worker kill, want 4/4 (no lost points)", snap.Settled, snap.TotalUnits)
	}

	opt, err := c.Options()
	if err != nil {
		t.Fatal(err)
	}
	opt.Checkpoint = ledger
	opt.OnPoint = func(key string) { t.Errorf("point %s recomputed during merge; ledger should hold it", key) }
	gotFig7, err := experiment.Fig7(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	gotLAN, err := experiment.LANStudy(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Bit-identity also rules out double counting: a double-recorded
	// point would carry 2x the replications and differ immediately.
	if !reflect.DeepEqual(wantFig7, gotFig7) {
		t.Errorf("fig7 after worker kill differs from sequential run:\nwant %s\ngot  %s",
			renderTput(wantFig7), renderTput(gotFig7))
	}
	if !reflect.DeepEqual(wantLAN, gotLAN) {
		t.Errorf("lan study after worker kill differs from sequential run")
	}
	return snap
}

// TestWorkerSIGKILLBeforePost kills worker 0 after it computed its
// first point but before the result post. The point must be recovered
// by lease expiry and re-run by the survivor.
func TestWorkerSIGKILLBeforePost(t *testing.T) {
	snap := runCrashCampaign(t, "WTCP_FLEET_TEST_KILL_BEFORE")
	// The dead worker's point must have been recovered — normally by
	// lease expiry (attributed reassignment); under extreme scheduling
	// skew a work-steal can rescue it first, which is equally correct.
	if snap.Expired == 0 && snap.Stolen == 0 {
		t.Errorf("kill-before-post triggered neither lease expiry nor a steal (snapshot: %+v)", snap)
	}
	recovered := snap.Stolen > 0
	for _, r := range snap.Reassigned {
		if r.Worker == "worker-0" {
			recovered = true
		}
	}
	if !recovered {
		t.Errorf("no reassignment attributed to the killed worker-0: %+v", snap.Reassigned)
	}
}

// TestWorkerSIGKILLAfterPost kills worker 0 immediately after its first
// result is acknowledged. The settled point must stay counted exactly
// once; only leases the dead worker still held (usually none at that
// boundary) may be reassigned.
func TestWorkerSIGKILLAfterPost(t *testing.T) {
	snap := runCrashCampaign(t, "WTCP_FLEET_TEST_KILL_AFTER")
	var w0 *WorkerHealth
	for i := range snap.Workers {
		if snap.Workers[i].Name == "worker-0" {
			w0 = &snap.Workers[i]
		}
	}
	if w0 == nil {
		t.Fatalf("worker-0 missing from fleet snapshot: %+v", snap.Workers)
	}
	if w0.Completed != 1 {
		t.Errorf("killed-after-post worker completed %d units, want exactly 1", w0.Completed)
	}
}

// TestFleetSmoke is the CI smoke: a four-worker sharded campaign with a
// chaos-injected SIGKILL of a live lease holder (the external-kill
// path, exercising the coordinator's watch loop rather than the
// deterministic self-kill hooks), verified against the sequential
// engine. `make fleet-smoke` runs exactly this test under -race.
func TestFleetSmoke(t *testing.T) {
	c := Campaign{
		Sweeps:       []string{experiment.SweepFig7},
		Replications: 3,
		TransferKB:   2000,
		PacketSizes:  []int{128, 512},
		BadPeriods:   []string{"1s", "2s"},
	}
	wantFig7, err := func() ([]experiment.ThroughputPoint, error) {
		opt, err := c.Options()
		if err != nil {
			return nil, err
		}
		return experiment.Fig7(context.Background(), opt)
	}()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ledger := filepath.Join(dir, "ledger.json")
	snap, runErr := RunLocal(context.Background(), LocalOptions{
		Campaign:      c,
		Workers:       4,
		LedgerPath:    ledger,
		StatusPath:    filepath.Join(dir, "fleet-status.json"),
		LeaseTTL:      400 * time.Millisecond,
		Faults:        &chaos.FleetFaults{Kill: &chaos.WorkerKill{Worker: 1, AfterUnits: 0}},
		WorkerCommand: testWorkerCommand(t, nil),
		Log:           t.Logf,
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if snap.Settled != snap.TotalUnits || snap.TotalUnits != 4 {
		t.Fatalf("smoke campaign settled %d/%d, want 4/4", snap.Settled, snap.TotalUnits)
	}

	opt, err := c.Options()
	if err != nil {
		t.Fatal(err)
	}
	opt.Checkpoint = ledger
	gotFig7, err := experiment.Fig7(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantFig7, gotFig7) {
		t.Errorf("smoke results differ from sequential run:\nwant %s\ngot  %s",
			renderTput(wantFig7), renderTput(gotFig7))
	}
	if _, err := os.Stat(filepath.Join(dir, "fleet-status.json")); err != nil {
		t.Errorf("fleet status file missing: %v", err)
	}
}
