package bs

import (
	"testing"
	"time"

	"wtcp/internal/errmodel"
	"wtcp/internal/link"
	"wtcp/internal/packet"
	"wtcp/internal/sim"
)

// scriptChannel is a controllable error process: transmissions starting
// while bad() is true are corrupted with certainty; others never are.
type scriptChannel struct {
	bad func(t time.Duration) bool
}

func (c scriptChannel) StateAt(t time.Duration) errmodel.State {
	if c.bad != nil && c.bad(t) {
		return errmodel.Bad
	}
	return errmodel.Good
}

func (c scriptChannel) ExpectedBitErrors(start, _ time.Duration, _ int64) float64 {
	if c.bad != nil && c.bad(start) {
		return 1e9
	}
	return 0
}

// bench wires a base station between a captured wired side and a mobile
// host stub over real wireless links.
type bench struct {
	t       *testing.T
	s       *sim.Simulator
	ids     *packet.IDGen
	bs      *BaseStation
	toFH    []*packet.Packet // packets emitted toward the fixed host
	mhGot   []*packet.Packet // units delivered to the mobile host
	up      *link.Link
	down    *link.Link
	ackBack bool // mobile host sends link acks
}

func newBench(t *testing.T, cfg Config, ch errmodel.Channel) *bench {
	t.Helper()
	b := &bench{t: t, s: sim.New(), ids: &packet.IDGen{}, ackBack: cfg.Scheme.UsesLinkAcks()}

	up, err := link.New(b.s, link.WirelessWAN(5*time.Millisecond, nil), sim.NewRNG(2), func(p *packet.Packet) {
		b.bs.FromWireless(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	b.up = up

	down, err := link.New(b.s, link.WirelessWAN(5*time.Millisecond, ch), sim.NewRNG(3), func(p *packet.Packet) {
		b.mhGot = append(b.mhGot, p)
		if b.ackBack {
			b.up.Send(&packet.Packet{
				ID:    b.ids.Next(),
				Kind:  packet.LinkAck,
				AckNo: int64(p.ID),
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	b.down = down

	station, err := New(b.s, cfg, b.ids, sim.NewRNG(4), down, func(p *packet.Packet) {
		b.toFH = append(b.toFH, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	b.bs = station
	return b
}

// dataPacket builds a 576-byte (536 payload) data segment.
func (b *bench) dataPacket(seq int64) *packet.Packet {
	return &packet.Packet{ID: b.ids.Next(), Kind: packet.Data, Seq: seq, Payload: 536}
}

func TestSchemeNamesRoundTrip(t *testing.T) {
	for _, s := range Schemes() {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("bogus scheme accepted")
	}
	if Scheme(42).String() == "" {
		t.Error("unknown scheme should render")
	}
}

func TestUsesLinkAcks(t *testing.T) {
	want := map[Scheme]bool{
		Basic: false, LocalRecovery: true, EBSN: true, SourceQuench: true, Snoop: false,
	}
	for s, w := range want {
		if got := s.UsesLinkAcks(); got != w {
			t.Errorf("%v.UsesLinkAcks() = %v, want %v", s, got, w)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	s := sim.New()
	ids := &packet.IDGen{}
	down, err := link.New(s, link.WirelessWAN(0, nil), sim.NewRNG(1), func(*packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(s, Config{}, ids, nil, nil, func(*packet.Packet) {}); err == nil {
		t.Error("nil downlink accepted")
	}
	if _, err := New(s, Config{}, ids, nil, down, nil); err == nil {
		t.Error("nil wired output accepted")
	}
	if _, err := New(s, Config{Scheme: EBSN, MTU: 128}, ids, nil, down, func(*packet.Packet) {}); err == nil {
		t.Error("recovery scheme without RNG accepted")
	}
	if _, err := New(s, Config{MTU: -1}, ids, nil, down, func(*packet.Packet) {}); err == nil {
		t.Error("negative MTU accepted")
	}
}

func TestBasicFragmentsAndForwards(t *testing.T) {
	b := newBench(t, Config{Scheme: Basic, MTU: 128}, nil)
	b.bs.FromWired(b.dataPacket(0))
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	// 576 bytes -> 5 fragments (4x128 + 64).
	if len(b.mhGot) != 5 {
		t.Fatalf("MH received %d units, want 5 fragments", len(b.mhGot))
	}
	for _, p := range b.mhGot {
		if p.Kind != packet.Fragment {
			t.Errorf("unit kind = %v", p.Kind)
		}
	}
	if b.bs.Stats().DataIn != 1 {
		t.Errorf("DataIn = %d", b.bs.Stats().DataIn)
	}
}

func TestBasicNoFragmentationWhenMTUZero(t *testing.T) {
	b := newBench(t, Config{Scheme: Basic}, nil)
	b.bs.FromWired(b.dataPacket(0))
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.mhGot) != 1 || b.mhGot[0].Kind != packet.Data {
		t.Fatalf("MH received %v, want the whole data packet", b.mhGot)
	}
}

func TestAcksForwardedToFixedHost(t *testing.T) {
	b := newBench(t, Config{Scheme: Basic, MTU: 128}, nil)
	ack := &packet.Packet{ID: b.ids.Next(), Kind: packet.Ack, AckNo: 576}
	b.bs.FromWireless(ack)
	if len(b.toFH) != 1 || b.toFH[0] != ack {
		t.Fatal("TCP ack not forwarded to fixed host")
	}
	if b.bs.Stats().AcksForwarded != 1 {
		t.Error("AcksForwarded not counted")
	}
}

func TestNonDataFromWiredIgnored(t *testing.T) {
	b := newBench(t, Config{Scheme: Basic, MTU: 128}, nil)
	b.bs.FromWired(&packet.Packet{Kind: packet.EBSN})
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.mhGot) != 0 || b.bs.Stats().DataIn != 0 {
		t.Error("non-data packet was forwarded")
	}
}

func TestARQDeliversOnCleanChannel(t *testing.T) {
	b := newBench(t, Config{Scheme: LocalRecovery, MTU: 128}, nil)
	b.bs.FromWired(b.dataPacket(0))
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.mhGot) != 5 {
		t.Fatalf("MH received %d units, want 5", len(b.mhGot))
	}
	st := b.bs.Stats()
	if st.ARQAttempts != 5 {
		t.Errorf("ARQAttempts = %d, want 5 (no retries on clean channel)", st.ARQAttempts)
	}
	if st.ARQTimeouts != 0 || st.ARQDiscards != 0 {
		t.Errorf("unexpected failures: %+v", st)
	}
	if st.LinkAcks != 5 {
		t.Errorf("LinkAcks = %d, want 5", st.LinkAcks)
	}
	if b.bs.Backlog() != 0 {
		t.Errorf("Backlog = %d after completion", b.bs.Backlog())
	}
	if b.s.Pending() != 0 {
		t.Errorf("%d timers leaked", b.s.Pending())
	}
}

func TestARQRecoversFromBurstLoss(t *testing.T) {
	// Bad from 0 to 2s, then clean: the first attempts fail, the ARQ
	// retries until the channel heals, and everything is delivered.
	ch := scriptChannel{bad: func(ts time.Duration) bool { return ts < 2*time.Second }}
	b := newBench(t, Config{Scheme: LocalRecovery, MTU: 128}, ch)
	b.bs.FromWired(b.dataPacket(0))
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Reassembly-unique units: dedup by ID since retransmissions deliver
	// the same unit object at most once... each unit may be delivered
	// multiple times if a link ack was lost; here the uplink is clean so
	// exactly once.
	if len(b.mhGot) != 5 {
		t.Fatalf("MH received %d units, want 5", len(b.mhGot))
	}
	st := b.bs.Stats()
	if st.ARQTimeouts == 0 {
		t.Error("no ARQ timeouts during a 2s burst")
	}
	if st.ARQDiscards != 0 {
		t.Errorf("ARQDiscards = %d, want 0 (burst shorter than RTmax budget)", st.ARQDiscards)
	}
	if st.ARQAttempts <= 5 {
		t.Errorf("ARQAttempts = %d, want retries beyond 5", st.ARQAttempts)
	}
	if b.bs.Backlog() != 0 {
		t.Errorf("Backlog = %d", b.bs.Backlog())
	}
}

func TestARQDiscardsAfterRTmax(t *testing.T) {
	ch := scriptChannel{bad: func(time.Duration) bool { return true }} // permanent fade
	cfg := Config{Scheme: LocalRecovery, MTU: 128, ARQ: ARQConfig{RTmax: 3, Window: 1}}
	b := newBench(t, cfg, ch)
	b.bs.FromWired(b.dataPacket(0))
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.mhGot) != 0 {
		t.Fatalf("units delivered through a permanent fade: %d", len(b.mhGot))
	}
	st := b.bs.Stats()
	if st.ARQDiscards != 1 {
		t.Errorf("ARQDiscards = %d, want 1 (whole-packet discard)", st.ARQDiscards)
	}
	// Each unit is allowed 1 + RTmax = 4 transmissions. During a unit's
	// backoff its window slot frees, so a second fragment also cycles;
	// the discard withdraws everything once the first unit exhausts its
	// budget. Attempts are therefore bounded by 2 * (1 + RTmax) here.
	if st.ARQAttempts < 4 || st.ARQAttempts > 8 {
		t.Errorf("ARQAttempts = %d, want in [4, 8]", st.ARQAttempts)
	}
	if b.bs.Backlog() != 0 {
		t.Errorf("Backlog = %d after discard", b.bs.Backlog())
	}
}

func TestARQWindowRespected(t *testing.T) {
	cfg := Config{Scheme: LocalRecovery, MTU: 128, ARQ: ARQConfig{Window: 2}}
	b := newBench(t, cfg, nil)
	b.bs.FromWired(b.dataPacket(0))
	// Immediately after admit, at most Window units are in flight; the
	// rest are pending.
	if got := b.bs.arq.inFlight(); got > 2 {
		t.Errorf("in flight = %d, want <= 2", got)
	}
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.mhGot) != 5 {
		t.Errorf("delivered %d, want all 5 despite window", len(b.mhGot))
	}
}

func TestAdmissionControl(t *testing.T) {
	cfg := Config{Scheme: LocalRecovery, MTU: 128, QueueLimit: 2}
	// Permanent fade so nothing drains.
	b := newBench(t, cfg, scriptChannel{bad: func(time.Duration) bool { return true }})
	for i := 0; i < 4; i++ {
		b.bs.FromWired(b.dataPacket(int64(i * 576)))
	}
	st := b.bs.Stats()
	if st.DataIn != 2 {
		t.Errorf("DataIn = %d, want 2", st.DataIn)
	}
	if st.DataDropped != 2 {
		t.Errorf("DataDropped = %d, want 2", st.DataDropped)
	}
	if b.bs.Backlog() != 2 {
		t.Errorf("Backlog = %d, want 2", b.bs.Backlog())
	}
}

func TestEBSNSentPerFailedAttempt(t *testing.T) {
	ch := scriptChannel{bad: func(ts time.Duration) bool { return ts < 1500*time.Millisecond }}
	b := newBench(t, Config{Scheme: EBSN, MTU: 128}, ch)
	b.bs.FromWired(b.dataPacket(0))
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := b.bs.Stats()
	if st.ARQTimeouts == 0 {
		t.Fatal("no failed attempts to notify")
	}
	if st.EBSNsSent != st.ARQTimeouts {
		t.Errorf("EBSNsSent = %d, ARQTimeouts = %d; want one EBSN per failure", st.EBSNsSent, st.ARQTimeouts)
	}
	// EBSNs reached the wired side.
	ebsns := 0
	for _, p := range b.toFH {
		if p.Kind == packet.EBSN {
			ebsns++
		}
	}
	if uint64(ebsns) != st.EBSNsSent {
		t.Errorf("%d EBSNs on the wire, stats say %d", ebsns, st.EBSNsSent)
	}
}

func TestQuenchSentPerFailedAttempt(t *testing.T) {
	ch := scriptChannel{bad: func(ts time.Duration) bool { return ts < time.Second }}
	b := newBench(t, Config{Scheme: SourceQuench, MTU: 128}, ch)
	b.bs.FromWired(b.dataPacket(0))
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := b.bs.Stats()
	if st.QuenchesSent == 0 || st.QuenchesSent != st.ARQTimeouts {
		t.Errorf("QuenchesSent = %d, ARQTimeouts = %d", st.QuenchesSent, st.ARQTimeouts)
	}
	if st.EBSNsSent != 0 {
		t.Error("quench scheme sent EBSNs")
	}
}

func TestStaleLinkAckIgnored(t *testing.T) {
	b := newBench(t, Config{Scheme: LocalRecovery, MTU: 128}, nil)
	b.bs.FromWireless(&packet.Packet{Kind: packet.LinkAck, AckNo: 9999})
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if b.bs.Stats().LinkAcks != 1 {
		t.Error("stale link ack not counted")
	}
}

func TestDuplicateDeliveryWhenLinkAckLost(t *testing.T) {
	// Uplink corrupts everything for the first 400ms: the fragment
	// arrives, its link ack dies, the ARQ retransmits, and the mobile
	// host sees the unit twice. (Reassembly dedup is exercised in the ip
	// package.)
	b := newBench(t, Config{Scheme: LocalRecovery, MTU: 600}, nil)
	// Rebuild the uplink with a lossy channel: simplest is to drop the
	// first link ack by hand.
	dropped := false
	inner := b.up
	_ = inner
	b.ackBack = false
	b.down.SetDropHook(nil)
	// Re-wire MH delivery manually.
	// Note: newBench's downlink deliver closure already appended to
	// mhGot; we emulate the ack path with one dropped ack.
	b.bs.FromWired(&packet.Packet{ID: b.ids.Next(), Kind: packet.Data, Seq: 0, Payload: 100})
	if err := b.s.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(b.mhGot) != 1 {
		t.Fatalf("first delivery missing")
	}
	// Don't ack; let the ARQ time out and retransmit, then ack.
	if err := b.s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(b.mhGot) < 2 {
		t.Fatalf("no retransmission after lost link ack: %d deliveries", len(b.mhGot))
	}
	if !dropped {
		dropped = true // silence unused warning pattern; ack the retransmission
		b.bs.FromWireless(&packet.Packet{Kind: packet.LinkAck, AckNo: int64(b.mhGot[1].ID)})
	}
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if b.bs.Backlog() != 0 {
		t.Errorf("Backlog = %d after late ack", b.bs.Backlog())
	}
}

func TestSnoopLocalRetransmitOnDupAck(t *testing.T) {
	b := newBench(t, Config{Scheme: Snoop, MTU: 128}, nil)
	p0 := b.dataPacket(0)
	p1 := b.dataPacket(536)
	b.bs.FromWired(p0)
	b.bs.FromWired(p1)
	// Bounded run: the snoop persistence timer re-arms while segments
	// stay cached, so RunAll would never drain.
	if err := b.s.Run(790 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	before := len(b.mhGot)

	// New ack for p0 frees it from the cache and is forwarded.
	b.bs.FromWireless(&packet.Packet{Kind: packet.Ack, AckNo: 536})
	if len(b.toFH) != 1 {
		t.Fatal("new ack not forwarded")
	}
	// Dupacks for 536 (p1 lost in this scenario): first triggers a local
	// retransmission and is suppressed.
	b.bs.FromWireless(&packet.Packet{Kind: packet.Ack, AckNo: 536})
	if len(b.toFH) != 1 {
		t.Error("dupack not suppressed")
	}
	st := b.bs.Stats()
	if st.SnoopLocalRetx != 1 {
		t.Errorf("SnoopLocalRetx = %d, want 1", st.SnoopLocalRetx)
	}
	if st.SnoopSuppressedDupAcks != 1 {
		t.Errorf("SnoopSuppressedDupAcks = %d, want 1", st.SnoopSuppressedDupAcks)
	}
	// Second dupack: already locally retransmitted, still suppressed,
	// no second local retransmission.
	b.bs.FromWireless(&packet.Packet{Kind: packet.Ack, AckNo: 536})
	if got := b.bs.Stats().SnoopLocalRetx; got != 1 {
		t.Errorf("SnoopLocalRetx after second dupack = %d, want 1", got)
	}
	if err := b.s.Run(1200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(b.mhGot) <= before {
		t.Error("local retransmission never reached the mobile host")
	}
}

func TestSnoopDupAckForUncachedSegmentForwarded(t *testing.T) {
	b := newBench(t, Config{Scheme: Snoop, MTU: 128}, nil)
	// Dupack for a segment the snoop never saw: must go to the source.
	b.bs.FromWireless(&packet.Packet{Kind: packet.Ack, AckNo: 0})
	b.bs.FromWireless(&packet.Packet{Kind: packet.Ack, AckNo: 0})
	if len(b.toFH) != 2 {
		t.Errorf("forwarded %d acks, want 2 (nothing cached to repair)", len(b.toFH))
	}
}

func TestSnoopPersistenceTimer(t *testing.T) {
	cfg := Config{Scheme: Snoop, MTU: 128, Snoop: SnoopConfig{LocalTimeout: 500 * time.Millisecond}}
	b := newBench(t, cfg, nil)
	b.bs.FromWired(b.dataPacket(0))
	if err := b.s.Run(300 * time.Millisecond); err != nil { // initial tx done
		t.Fatal(err)
	}
	before := b.bs.Stats().SnoopLocalRetx
	if err := b.s.Run(1200 * time.Millisecond); err != nil { // one timeout fires
		t.Fatal(err)
	}
	if got := b.bs.Stats().SnoopLocalRetx; got <= before {
		t.Error("persistence timer never retransmitted")
	}
	// A covering ack stops the timer and empties the cache.
	b.bs.FromWireless(&packet.Packet{Kind: packet.Ack, AckNo: 536})
	if err := b.s.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	retxAfterAck := b.bs.Stats().SnoopLocalRetx
	if err := b.s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if b.bs.Stats().SnoopLocalRetx != retxAfterAck {
		t.Error("snoop kept retransmitting after everything was acked")
	}
}

func TestBacklogBasicUsesLinkQueue(t *testing.T) {
	b := newBench(t, Config{Scheme: Basic, MTU: 128}, nil)
	b.bs.FromWired(b.dataPacket(0))
	// Before the simulation runs, four of five fragments still queue at
	// the link (one is in the transmitter).
	if got := b.bs.Backlog(); got != 4 {
		t.Errorf("Backlog = %d, want 4 queued fragments", got)
	}
}
