package cell

import (
	"time"

	"wtcp/internal/errmodel"
	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// wheelTick and wheelBuckets size the timer wheel: the span (tick x
// buckets, 81.92 s) must exceed the 64 s RTO ceiling, the longest timer
// the engine ever arms.
const (
	wheelTick    = 10 * time.Millisecond
	wheelBuckets = 8192
)

// csdpPollInterval is how often a fully-blocked CSDP base station
// re-checks its channels (matches internal/multiconn).
const csdpPollInterval = 10 * time.Millisecond

// pumpChunk bounds micro-events processed per kernel event, so budget
// and context checks stay live through same-instant storms (a 50k-flow
// admission wave is one instant).
const pumpChunk = 8192

// channelSlack is how far past the horizon the fading timelines are
// pre-extended at setup, so the hot path never appends intervals. It
// must exceed the longest span any single draw can be queried over
// (bounded by the 64 s RTO ceiling).
const channelSlack = 2 * time.Minute

// engine is the flat cell state: every per-flow and per-base-station
// quantity lives in a slice indexed by flow or base-station ID.
type engine struct {
	s   *sim.Simulator
	cfg Config
	F   int // flow count
	B   int // base-station count

	rng   *sim.RNG // corruption + link-ack + TCP-ack loss draws
	pred  *sim.RNG // CSDP predictor error draws
	chaos *sim.RNG // fault-injection draws (isolated split)

	// chans holds one Markov channel per flow, or one per base station
	// when SharedChannel is set.
	chans []*errmodel.Markov

	arena *arena
	wheel *wheel
	cal   calendar
	pump  *sim.Timer

	// Scalar protocol parameters.
	mss   int64
	total int64
	adv   int64

	granularity time.Duration
	initialRTO  time.Duration
	maxRTO      time.Duration

	// Precomputed transmission times: the radio link-ack / TCP-ack
	// (control size at wireless rate) and the wired reverse-pipe ack.
	ackTxRadio time.Duration
	revAckTx   time.Duration

	// ---- per-flow sender state (struct of arrays) ----
	sndUna, sndNxt, sndMax []int64
	cwnd, ssthresh         []float64
	dupacks                []int32
	timing                 []bool
	timedSeq               []int64
	timedAtTick            []int32
	srtt, rttvar           []float64
	hasSample              []bool
	shift                  []int8
	started, done          []bool
	finishAt               []time.Duration
	fTimeouts              []uint64
	fRetrans               []units.ByteSize

	// ---- per-flow sink state ----
	rcvNxt   []int64
	oooSeq   []int64 // F x segCap slab
	oooLen   []int32
	oooCount []int32
	segCap   int

	// ---- per-flow wired pipes (collapsed to busy-until horizons) ----
	fwdBusy, revBusy []time.Duration

	// ---- per-flow base-station queue rings (arena slot indices) ----
	qSlot         []int32 // F x qCap slab
	qHead, qCount []int32
	qCap          int

	// tries is the flat ARQ table: the head packet's transmission count
	// per flow (stop-and-wait; the head is retried until acked or
	// discarded).
	tries []int32
	// unit numbers ARQ units per flow for the conformance sampler (slot
	// indices recycle; unit IDs must not).
	unit []uint64

	// ---- per-base-station radio state ----
	busy       []bool
	curFlow    []int32
	curSlot    []int32
	curStart   []time.Duration
	rr         []int32 // round-robin pointer, in local flow indices
	nLocal     []int32 // flows hosted at this base station
	attempts   []uint64
	discards   []uint64
	skippedBad []uint64
	ebsnsSent  []uint64
	// fifo preserves global packet-arrival order per base station (FIFO
	// policy only).
	fifo []fifoRing

	doneCount int
	admitted  int

	events      uint64
	queueDrops  uint64
	chaosOn     bool
	chaosDrops  uint64
	chaosDups   uint64
	chaosDelays uint64
	oooOverflow uint64

	oracle *sampler
}

// fifoRing is a growable ring of flow IDs.
type fifoRing struct {
	buf   []int32
	head  int
	count int
}

func (r *fifoRing) push(v int32) {
	if r.count == len(r.buf) {
		n := len(r.buf) * 2
		if n < 16 {
			n = 16
		}
		buf := make([]int32, n)
		for i := 0; i < r.count; i++ {
			buf[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = buf
		r.head = 0
	}
	r.buf[(r.head+r.count)%len(r.buf)] = v
	r.count++
}

func (r *fifoRing) peek() int32 { return r.buf[r.head] }

func (r *fifoRing) pop() {
	r.head = (r.head + 1) % len(r.buf)
	r.count--
}

// newEngine allocates every slab for cfg (already defaulted) and seeds
// the random state. The RNG split order is a compatibility contract with
// internal/multiconn: root -> engine draws, predictor draws, one split
// per channel in index order; the chaos split comes last so chaos-free
// runs draw identically to the engine this one replaced.
func newEngine(cfg Config) (*engine, error) {
	F := cfg.Flows
	B := cfg.BaseStations
	e := &engine{
		cfg: cfg,
		F:   F,
		B:   B,

		mss:   int64(cfg.PacketSize - packet.HeaderSize),
		total: int64(cfg.TransferSize),
		adv:   int64(cfg.Window),

		granularity: 100 * time.Millisecond, // tcp.DefaultGranularity
		initialRTO:  3 * time.Second,        // tcp.DefaultInitialRTO
		maxRTO:      64 * time.Second,       // tcp.DefaultMaxRTO

		ackTxRadio: units.TransmissionTime(packet.ControlSize, cfg.WirelessRate),
		revAckTx:   units.TransmissionTime(packet.ControlSize, cfg.WiredRate),

		chaosOn: cfg.Chaos.enabled(),
	}

	root := sim.NewRNG(cfg.Seed)
	e.rng = root.Split()
	e.pred = root.Split()
	nchan := F
	if cfg.SharedChannel {
		nchan = B
	}
	e.chans = make([]*errmodel.Markov, nchan)
	for i := range e.chans {
		ch, err := errmodel.NewMarkov(cfg.Channel, root.Split())
		if err != nil {
			return nil, err
		}
		// Pre-extend the fading timeline past every query the run can
		// make, so steady-state queries never append (and never
		// allocate). Timelines are a fixed draw sequence, so extending
		// early is behaviour-neutral.
		ch.StateAt(cfg.Horizon + channelSlack)
		e.chans[i] = ch
	}
	e.chaos = root.Split()

	// Sender slabs.
	e.sndUna = make([]int64, F)
	e.sndNxt = make([]int64, F)
	e.sndMax = make([]int64, F)
	e.cwnd = make([]float64, F)
	e.ssthresh = make([]float64, F)
	e.dupacks = make([]int32, F)
	e.timing = make([]bool, F)
	e.timedSeq = make([]int64, F)
	e.timedAtTick = make([]int32, F)
	e.srtt = make([]float64, F)
	e.rttvar = make([]float64, F)
	e.hasSample = make([]bool, F)
	e.shift = make([]int8, F)
	e.started = make([]bool, F)
	e.done = make([]bool, F)
	e.finishAt = make([]time.Duration, F)
	e.fTimeouts = make([]uint64, F)
	e.fRetrans = make([]units.ByteSize, F)
	for f := 0; f < F; f++ {
		e.cwnd[f] = float64(e.mss) // InitialCwnd = 1 segment
		e.ssthresh[f] = float64(cfg.Window)
	}

	// Sink slabs. Senders emit on the MSS grid inside the advertised
	// window, so at most window/mss+2 distinct out-of-order starts exist.
	e.rcvNxt = make([]int64, F)
	e.segCap = int(e.adv/e.mss) + 2
	e.oooSeq = make([]int64, F*e.segCap)
	e.oooLen = make([]int32, F*e.segCap)
	e.oooCount = make([]int32, F)

	e.fwdBusy = make([]time.Duration, F)
	e.revBusy = make([]time.Duration, F)

	e.qCap = cfg.PerFlowQueue
	e.qSlot = make([]int32, F*e.qCap)
	e.qHead = make([]int32, F)
	e.qCount = make([]int32, F)
	e.tries = make([]int32, F)
	e.unit = make([]uint64, F)

	// Base-station slabs.
	e.busy = make([]bool, B)
	e.curFlow = make([]int32, B)
	e.curSlot = make([]int32, B)
	e.curStart = make([]time.Duration, B)
	e.rr = make([]int32, B)
	e.nLocal = make([]int32, B)
	e.attempts = make([]uint64, B)
	e.discards = make([]uint64, B)
	e.skippedBad = make([]uint64, B)
	e.ebsnsSent = make([]uint64, B)
	if cfg.Policy == FIFO {
		e.fifo = make([]fifoRing, B)
	}
	for f := 0; f < F; f++ {
		e.nLocal[f%B]++
	}

	e.arena = newArena(2 * F)
	e.wheel = newWheel(int64(wheelTick), wheelBuckets, F+B)

	if cfg.OracleSample > 0 {
		e.oracle = newSampler(e, cfg.OracleSample)
	}
	return e, nil
}

// channelOf maps a flow to its fading channel.
func (e *engine) channelOf(f int32) *errmodel.Markov {
	if e.cfg.SharedChannel {
		return e.chans[f%int32(e.B)]
	}
	return e.chans[f]
}

// bsOf maps a flow to its base station.
func (e *engine) bsOf(f int32) int32 { return f % int32(e.B) }

// ---- queue rings ----

func (e *engine) qPush(f, slot int32) bool {
	if int(e.qCount[f]) >= e.qCap {
		return false
	}
	pos := int(f)*e.qCap + int((e.qHead[f]+e.qCount[f])%int32(e.qCap))
	e.qSlot[pos] = slot
	e.qCount[f]++
	return true
}

func (e *engine) qHeadSlot(f int32) int32 {
	return e.qSlot[int(f)*e.qCap+int(e.qHead[f])]
}

func (e *engine) qPop(f int32) int32 {
	s := e.qHeadSlot(f)
	e.qHead[f] = (e.qHead[f] + 1) % int32(e.qCap)
	e.qCount[f]--
	return s
}

// ---- run loop ----

// bind attaches the engine to a kernel and pre-binds its pump timer.
func (e *engine) bind(s *sim.Simulator) {
	e.s = s
	e.pump = sim.NewTimer(s, e.pumpFire)
}

// begin admits the initial flows and arms the pump.
func (e *engine) begin() {
	if e.cfg.AdmitBatch <= 0 {
		for f := 0; f < e.F; f++ {
			e.startFlow(int32(f))
		}
		e.admitted = e.F
	} else {
		e.admitBatch()
	}
	e.rearm()
}

// loop steps the kernel until every flow completes, the horizon passes,
// or the kernel fails (budget, conformance violation).
func (e *engine) loop() error {
	s := e.s
	horizon := e.cfg.Horizon
	for e.doneCount < e.F && s.Now() < horizon {
		ok, err := s.Step()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
	}
	return nil
}

// rearm sets the pump for the earliest pending micro-event, if any.
func (e *engine) rearm() {
	now := e.s.Now()
	next := e.nextEventAt(int64(now))
	if next >= 0 {
		e.pump.Set(time.Duration(next) - now)
	}
}

// nextEventAt reports the earliest pending micro-event time, or -1.
func (e *engine) nextEventAt(nowNs int64) int64 {
	next := e.cal.minAt()
	if wAt := e.wheel.nextAt(nowNs); wAt >= 0 && (next < 0 || wAt < next) {
		next = wAt
	}
	return next
}

// pumpFire drains every micro-event due at the current instant — the
// calendar before the wheel on ties, each in FIFO schedule order,
// mirroring the kernel's same-instant discipline — then re-arms the pump
// for the next instant. It stops early when every flow is done or the
// horizon has passed (matching the object engine's per-event checks),
// and yields back to the kernel every pumpChunk events so budget and
// context enforcement see progress even inside one instant.
func (e *engine) pumpFire() {
	now := e.s.Now()
	nowNs := int64(now)
	horizon := e.cfg.Horizon
	for n := 0; ; {
		if e.doneCount == e.F {
			return
		}
		cAt := e.cal.minAt()
		next := cAt
		wAt := e.wheel.nextAt(nowNs)
		if wAt >= 0 && (next < 0 || wAt < next) {
			next = wAt
		}
		if next < 0 {
			return
		}
		if next > nowNs {
			e.pump.Set(time.Duration(next) - now)
			return
		}
		e.events++
		if cAt >= 0 && cAt <= nowNs {
			ev := e.cal.pop()
			e.dispatch(ev)
		} else {
			idx := e.wheel.popDue(wAt)
			if idx < 0 {
				return // defensive; cannot happen
			}
			e.fireTimer(idx)
		}
		if now >= horizon {
			// The object engine checked the horizon between kernel
			// events: exactly one event past the horizon runs.
			return
		}
		if n++; n >= pumpChunk {
			e.pump.Set(0)
			return
		}
	}
}

// dispatch routes one calendar event.
func (e *engine) dispatch(ev calEvent) {
	switch ev.kind {
	case evWiredArrive:
		e.wiredArrive(ev.flow, ev.slot)
	case evRadioDone:
		e.radioDone(ev.bs)
	case evSinkDeliver:
		e.sinkDeliver(ev.flow, ev.slot)
	case evAckArrive:
		e.senderOnAck(ev.flow, ev.a)
	case evEBSNArrive:
		e.senderOnEBSN(ev.flow)
	case evAdmit:
		e.admitBatch()
	}
}

// fireTimer routes one wheel expiry: flow indices are RTO timers, the
// indices past them are per-base-station CSDP poll timers.
func (e *engine) fireTimer(idx int32) {
	if int(idx) < e.F {
		e.onTimeout(idx)
		return
	}
	e.kick(idx - int32(e.F))
}

// admitBatch starts the next AdmitBatch flows and schedules the batch
// after it.
func (e *engine) admitBatch() {
	n := e.cfg.AdmitBatch
	if n <= 0 {
		n = e.F
	}
	for i := 0; i < n && e.admitted < e.F; i++ {
		e.startFlow(int32(e.admitted))
		e.admitted++
	}
	if e.admitted < e.F {
		e.cal.push(calEvent{at: int64(e.s.Now() + e.cfg.AdmitEvery), kind: evAdmit})
	}
}

// ---- base station ----

// wiredArrive admits a data segment that finished the wired hop into its
// flow's base-station queue.
func (e *engine) wiredArrive(f, slot int32) {
	if !e.qPush(f, slot) {
		e.queueDrops++
		e.arena.decref(slot)
		return // tail drop; TCP recovers end to end
	}
	b := e.bsOf(f)
	if e.cfg.Policy == FIFO {
		e.fifo[b].push(f)
	}
	e.kick(b)
}

// kick starts a transmission if base station b's radio is idle and a
// unit is eligible.
func (e *engine) kick(b int32) {
	if e.busy[b] {
		return
	}
	f, ok := e.pickNext(b)
	if !ok {
		return
	}
	if e.qCount[f] == 0 {
		return
	}
	e.transmit(b, f)
}

// pickNext selects the next flow to serve, per policy.
func (e *engine) pickNext(b int32) (int32, bool) {
	switch e.cfg.Policy {
	case FIFO:
		r := &e.fifo[b]
		for r.count > 0 {
			f := r.peek()
			if e.qCount[f] > 0 {
				return f, true
			}
			// The entry's packet was discarded; drop the stale slot.
			r.pop()
		}
		return 0, false
	case RoundRobin:
		return e.nextNonEmpty(b, false)
	default: // CSDP
		f, ok := e.nextNonEmpty(b, true)
		if ok {
			return f, true
		}
		// Everything pending is predicted bad: poll again shortly rather
		// than burn the radio on doomed transmissions.
		poll := int32(e.F) + b
		if e.anyQueued(b) && !e.wheel.armed(poll) {
			now := int64(e.s.Now())
			e.wheel.arm(poll, now+int64(csdpPollInterval), now)
		}
		return 0, false
	}
}

// nextNonEmpty scans round-robin from b's pointer for a non-empty queue,
// skipping predicted-bad channels when csdp is set.
func (e *engine) nextNonEmpty(b int32, csdp bool) (int32, bool) {
	n := e.nLocal[b]
	for i := int32(1); i <= n; i++ {
		l := (e.rr[b] + i) % n
		f := l*int32(e.B) + b
		if e.qCount[f] == 0 {
			continue
		}
		if csdp && !e.predictGood(f) {
			e.skippedBad[b]++
			continue
		}
		e.rr[b] = l
		return f, true
	}
	return 0, false
}

// anyQueued reports whether any of b's flows has pending packets.
func (e *engine) anyQueued(b int32) bool {
	for l := int32(0); l < e.nLocal[b]; l++ {
		if e.qCount[l*int32(e.B)+b] > 0 {
			return true
		}
	}
	return false
}

// predictGood consults the channel predictor for a flow.
func (e *engine) predictGood(f int32) bool {
	truth := e.channelOf(f).StateAt(e.s.Now()) == errmodel.Good
	if e.pred.Bernoulli(e.cfg.PredictorAccuracy) {
		return truth
	}
	return !truth
}

// transmit puts flow f's head packet on base station b's radio
// (stop-and-wait: the radio is held until the link-ack deadline).
func (e *engine) transmit(b, f int32) {
	e.busy[b] = true
	e.attempts[b]++
	e.tries[f]++
	if e.tries[f] == 1 {
		e.unit[f]++
	}
	slot := e.qHeadSlot(f)
	start := e.s.Now()
	tx := units.TransmissionTime(e.arena.size(slot), e.cfg.WirelessRate)
	cycle := tx + 2*e.cfg.WirelessDelay + e.ackTxRadio

	e.curFlow[b] = f
	e.curSlot[b] = slot
	e.curStart[b] = start
	e.cal.push(calEvent{at: int64(start + cycle), kind: evRadioDone, bs: b})

	if e.oracle != nil {
		e.oracle.arqAttempt(f, int(e.tries[f]))
	}
}

// radioDone completes a stop-and-wait cycle: draw the data corruption
// over the fading window, then (for survivors) the link-ack loss; data
// that arrived is delivered regardless of the ack's fate — a lost ack
// only causes a duplicate later.
func (e *engine) radioDone(b int32) {
	f := e.curFlow[b]
	slot := e.curSlot[b]
	start := e.curStart[b]
	e.busy[b] = false

	ch := e.channelOf(f)
	size := e.arena.size(slot)
	tx := units.TransmissionTime(size, e.cfg.WirelessRate)
	corrupted := e.rng.PoissonAtLeastOne(ch.ExpectedBitErrors(start, start+tx, size.Bits()))
	ackLost := false
	if !corrupted {
		// The link ack rides the same fading channel.
		ackStart := start + tx + e.cfg.WirelessDelay
		ackLost = e.rng.PoissonAtLeastOne(
			ch.ExpectedBitErrors(ackStart, ackStart+e.ackTxRadio, packet.ControlSize.Bits()))
		e.deliverToSink(f, slot)
	}
	if corrupted || ackLost {
		e.onAttemptFailed(b, f)
	} else {
		e.onAttemptSucceeded(b, f)
	}
	e.kick(b)
}

// deliverToSink schedules the received copy's hand-off to the mobile
// sink, one propagation delay away, with chaos faults applied.
func (e *engine) deliverToSink(f, slot int32) {
	delay := e.cfg.WirelessDelay
	if e.chaosOn {
		if e.chaos.Bernoulli(e.cfg.Chaos.DropP) {
			e.chaosDrops++
			return
		}
		if e.chaos.Bernoulli(e.cfg.Chaos.ReorderP) {
			e.chaosDelays++
			delay += e.cfg.Chaos.ReorderDelay
		}
		if e.chaos.Bernoulli(e.cfg.Chaos.DupP) {
			e.chaosDups++
			e.arena.incref(slot)
			e.cal.push(calEvent{at: int64(e.s.Now() + delay), kind: evSinkDeliver, flow: f, slot: slot})
		}
	}
	e.arena.incref(slot)
	e.cal.push(calEvent{at: int64(e.s.Now() + delay), kind: evSinkDeliver, flow: f, slot: slot})
}

// sinkDeliver hands one arena slot's segment to the sink and releases
// the delivery reference.
func (e *engine) sinkDeliver(f, slot int32) {
	seq := e.arena.seq[slot]
	paylen := int64(e.arena.paylen[slot])
	e.arena.decref(slot)
	e.sinkReceive(f, seq, paylen)
}

// onAttemptSucceeded pops the acknowledged head and resets its ARQ
// state.
func (e *engine) onAttemptSucceeded(b, f int32) {
	e.arena.decref(e.qPop(f))
	e.tries[f] = 0
	if e.cfg.Policy == FIFO && e.fifo[b].count > 0 {
		e.fifo[b].pop()
	}
	if e.oracle != nil {
		e.oracle.arqAck(f)
	}
}

// onAttemptFailed notifies sources (EBSN) and retries or discards the
// head packet.
func (e *engine) onAttemptFailed(b, f int32) {
	if e.cfg.EBSN {
		at := int64(e.s.Now() + e.cfg.WiredDelay)
		if e.cfg.EBSNBroadcast {
			// The object engine's semantics: notify every source whose
			// data the base station is holding up — the one whose
			// transmission failed and any bystanders queued behind it.
			for l := int32(0); l < e.nLocal[b]; l++ {
				i := l*int32(e.B) + b
				if i != f && e.qCount[i] == 0 {
					continue
				}
				e.ebsnsSent[b]++
				e.cal.push(calEvent{at: at, kind: evEBSNArrive, flow: i})
			}
		} else {
			e.ebsnsSent[b]++
			e.cal.push(calEvent{at: at, kind: evEBSNArrive, flow: f})
		}
	}
	if e.oracle != nil {
		e.oracle.arqFailure(f, int(e.tries[f]))
	}
	if int(e.tries[f]) <= e.cfg.RTmax {
		return // head stays queued; the next pick may retry it
	}
	// Discard after RTmax retransmissions.
	e.discards[b]++
	e.arena.decref(e.qPop(f))
	e.tries[f] = 0
	if e.cfg.Policy == FIFO && e.fifo[b].count > 0 {
		e.fifo[b].pop()
	}
	if e.oracle != nil {
		e.oracle.arqDiscard(f)
	}
}

// ---- teardown ----

// drain releases every outstanding packet reference (queues, in-flight
// deliveries) so the arena's live count audits reference hygiene: after
// drain, a non-zero live count is a leaked reference and a negative-path
// decref would have latched a misuse error.
func (e *engine) drain() {
	for f := 0; f < e.F; f++ {
		for e.qCount[f] > 0 {
			e.arena.decref(e.qPop(int32(f)))
		}
	}
	for e.cal.len() > 0 {
		ev := e.cal.pop()
		if ev.kind == evWiredArrive || ev.kind == evSinkDeliver {
			e.arena.decref(ev.slot)
		}
	}
}

// finish drains references and assembles the Result.
func (e *engine) finish() (*Result, error) {
	e.drain()
	if e.arena.misuse != nil {
		return nil, e.arena.misuse
	}

	res := &Result{
		Config:         e.cfg,
		Completed:      e.doneCount == e.F,
		CompletedFlows: e.doneCount,
		Flows:          make([]FlowResult, e.F),
		TotalTimeouts:  0,
		QueueDrops:     e.queueDrops,
		ChaosDrops:     e.chaosDrops,
		ChaosDups:      e.chaosDups,
		ChaosDelays:    e.chaosDelays,
		Events:         e.events,
		Arena:          e.arena.stats(),
	}
	for b := 0; b < e.B; b++ {
		res.RadioAttempts += e.attempts[b]
		res.RadioDiscards += e.discards[b]
		res.SkippedBad += e.skippedBad[b]
		res.EBSNsSent += e.ebsnsSent[b]
	}
	var sum, sumSq float64
	for f := 0; f < e.F; f++ {
		elapsed := e.finishAt[f]
		if !e.done[f] {
			elapsed = e.s.Now()
		}
		tput := units.ThroughputKbps(e.cfg.TransferSize, elapsed)
		res.Flows[f] = FlowResult{
			Completed:    e.done[f],
			Elapsed:      elapsed,
			Timeouts:     e.fTimeouts[f],
			RetransBytes: e.fRetrans[f],
		}
		res.TotalTimeouts += e.fTimeouts[f]
		res.AggregateKbps += tput
		sum += tput
		sumSq += tput * tput
	}
	if n := float64(e.F); sumSq > 0 {
		res.Fairness = sum * sum / (n * sumSq)
	}
	return res, nil
}
