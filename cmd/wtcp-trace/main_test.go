package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		buf := new(strings.Builder)
		chunk := make([]byte, 1<<16)
		for {
			n, err := r.Read(chunk)
			buf.Write(chunk[:n])
			if err != nil {
				break
			}
		}
		done <- buf.String()
	}()
	runErr := fn()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, runErr
}

func TestTraceASCII(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-scheme", "basic", "-width", "60", "-height", "15"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"packet trace: basic", "packet number mod 90", "source timeouts"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%.400s", want, out)
		}
	}
}

func TestTraceCSVMode(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-scheme", "ebsn", "-csv"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.HasPrefix(out, "time_sec,packet_mod_90,kind") {
		t.Errorf("CSV output malformed:\n%.200s", out)
	}
}

func TestTraceRejectsBogusScheme(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-scheme", "bogus"}) }); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestTraceCompareMode(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-compare", "-width", "80", "-height", "12"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "Fig 3: basic TCP") || !strings.Contains(out, "Fig 5: EBSN (0 timeouts)") {
		t.Errorf("comparison output malformed:\n%.300s", out)
	}
}
