//go:build !unix

package fleet

// runTestWorker is only reachable on unix (the crash suite re-execs the
// test binary there); elsewhere TestMain never dispatches to it.
func runTestWorker() {}
