package experiment

import (
	"strings"
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

// TestZooStudyGrid runs the full variant x scheme grid at a small
// transfer: every cell must complete oracle-clean (ZooStudy arms the
// conformance oracle on every run, so a profile violation surfaces as an
// error here) and the grid must cover all sixteen combinations.
func TestZooStudyGrid(t *testing.T) {
	pts, err := ZooStudy(ZooOptions{
		Replications: 1,
		Transfer:     30 * units.KB,
		BadPeriod:    2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 16 {
		t.Fatalf("got %d grid cells, want 16 (4 variants x 4 schemes)", len(pts))
	}
	for _, v := range []tcp.Variant{tcp.Tahoe, tcp.Reno, tcp.NewReno, tcp.SACKVariant} {
		for _, s := range []bs.Scheme{bs.Basic, bs.EBSN, bs.Snoop, bs.SplitConnection} {
			p := ZooCell(pts, v, s)
			if p == nil {
				t.Fatalf("missing cell %s/%s", v, s)
			}
			if p.ThroughputKbps.Mean() <= 0 {
				t.Errorf("%s/%s: non-positive throughput", v, s)
			}
			if g := p.Goodput.Mean(); g <= 0 || g > 1 {
				t.Errorf("%s/%s: goodput %.3f outside (0, 1]", v, s, g)
			}
		}
	}
	table := RenderZooTable("zoo", pts)
	for _, want := range []string{"tahoe", "reno", "newreno", "sack", "basic", "ebsn", "snoop", "split"} {
		if !strings.Contains(table, want) {
			t.Errorf("rendered table missing %q:\n%s", want, table)
		}
	}
	csv := ZooCSV(pts)
	if got := strings.Count(csv, "\n"); got != 17 {
		t.Errorf("CSV has %d lines, want 17 (header + 16 cells)", got)
	}
}
