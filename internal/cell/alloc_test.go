package cell

import (
	"testing"
	"time"

	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// warmEngine builds an engine on a fresh kernel and steps it through its
// start-up transient: slab growth (arena, calendar, kernel heap) is
// amortized and must plateau, after which the steady state is
// allocation-free. Returns the engine mid-run with plenty of events left.
func warmEngine(tb testing.TB, cfg Config, warmupSteps int) *engine {
	tb.Helper()
	e, err := newEngine(cfg.withDefaults())
	if err != nil {
		tb.Fatal(err)
	}
	e.bind(sim.New())
	e.begin()
	for i := 0; i < warmupSteps; i++ {
		ok, err := e.s.Step()
		if err != nil {
			tb.Fatalf("warmup step: %v", err)
		}
		if !ok {
			tb.Fatal("run drained during warmup; grow the transfer")
		}
	}
	return e
}

// steadyConfig is a mid-sized cell with transfers long enough that the
// run stays in steady state for millions of events.
func steadyConfig() Config {
	cfg := Preset(256)
	cfg.TransferSize = 4 * units.MB
	cfg.Horizon = 4 * time.Hour
	cfg.OracleSample = 0
	return cfg
}

// TestSteadyStateZeroAllocs is the tentpole's allocation pin: once the
// working set has plateaued, processing events — sends, ARQ cycles,
// deliveries, acks, timer churn — allocates nothing. AllocsPerRun
// demands an exact zero: a single per-packet or per-ack object shows up
// as >= 1 and fails.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector instruments allocation")
	}
	e := warmEngine(t, steadyConfig(), 50000)
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 2000; i++ {
			if ok, err := e.s.Step(); err != nil || !ok {
				t.Fatalf("step: ok=%v err=%v", ok, err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady state allocates: %.1f allocs per 2000 events", avg)
	}
}

// TestSteadyStateZeroAllocsFIFO pins the same property for the FIFO
// ring (its growable buffer must also plateau) and for a chaos run
// (fault draws and duplicate deliveries are allocation-free too).
func TestSteadyStateZeroAllocsFIFO(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector instruments allocation")
	}
	cfg := steadyConfig()
	cfg.Policy = FIFO
	cfg.Chaos = Chaos{DropP: 0.05, DupP: 0.05, ReorderP: 0.05}
	e := warmEngine(t, cfg, 50000)
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 2000; i++ {
			if ok, err := e.s.Step(); err != nil || !ok {
				t.Fatalf("step: ok=%v err=%v", ok, err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("FIFO/chaos steady state allocates: %.1f allocs per 2000 events", avg)
	}
}
