package experiment

import (
	"context"
	"strings"
	"testing"
	"time"

	"wtcp/internal/units"
)

func TestCalibrateAdvisor(t *testing.T) {
	a, err := CalibrateAdvisor(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	table := a.Table()
	if len(table) != 2 {
		t.Fatalf("entries = %d, want one per bad period", len(table))
	}
	if table[0].MeanBad != time.Second || table[1].MeanBad != 4*time.Second {
		t.Errorf("entries unsorted: %+v", table)
	}
	for _, e := range table {
		if e.PacketSize == 0 || e.ThroughputKbps <= 0 {
			t.Errorf("degenerate entry %+v", e)
		}
	}
	if s := a.String(); !strings.Contains(s, "->") {
		t.Errorf("String() = %q", s)
	}
}

func TestAdvisorRecommendNearest(t *testing.T) {
	a, err := NewAdvisor([]AdvisorEntry{
		{MeanBad: 4 * time.Second, PacketSize: 384},
		{MeanBad: 1 * time.Second, PacketSize: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		bad  time.Duration
		want units.ByteSize
	}{
		{1 * time.Second, 512},
		{1200 * time.Millisecond, 512},
		{4 * time.Second, 384},
		{10 * time.Second, 384},
		{2600 * time.Millisecond, 384}, // nearer to 4s than 1s
		{2400 * time.Millisecond, 512},
	}
	for _, tt := range tests {
		if got := a.Recommend(tt.bad); got != tt.want {
			t.Errorf("Recommend(%v) = %v, want %v", tt.bad, got, tt.want)
		}
	}
}

func TestAdvisorRejectsEmpty(t *testing.T) {
	if _, err := NewAdvisor(nil); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := CalibrateAdvisor(context.Background(), Options{Replications: 1, PacketSizes: []units.ByteSize{512}, BadPeriods: []time.Duration{time.Second}, Transfer: 10 * units.KB}); err != nil {
		t.Errorf("single-point calibration failed: %v", err)
	}
}

func TestAdvisorTableIsCopy(t *testing.T) {
	a, err := NewAdvisor([]AdvisorEntry{{MeanBad: time.Second, PacketSize: 512}})
	if err != nil {
		t.Fatal(err)
	}
	tbl := a.Table()
	tbl[0].PacketSize = 9999
	if a.Recommend(time.Second) != 512 {
		t.Error("Table exposed internal storage")
	}
}
