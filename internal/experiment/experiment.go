// Package experiment reproduces every result-bearing figure of the paper:
//
//   - Figures 3-5: deterministic-channel packet traces for basic TCP,
//     local recovery, and EBSN (TraceFigure).
//   - Figure 7: WAN throughput vs wired packet size for basic TCP, four
//     bad-period lengths (Fig7).
//   - Figure 8: the same sweep under EBSN (Fig8).
//   - Figure 9: WAN retransmitted data vs packet size for both schemes
//     (Fig9).
//   - Figures 10-11: LAN throughput and retransmitted data vs mean bad
//     period for basic TCP and EBSN (LANStudy).
//
// Each experiment runs independent seeded replications (the paper reports
// standard deviations below 4%) and returns per-point samples plus the
// theoretical maximum tput_th the paper marks on its axes.
package experiment

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
	"wtcp/internal/stats"
	"wtcp/internal/units"
)

// PacketSizes is the paper's swept wired-packet-size axis (128-1536
// bytes).
var PacketSizes = []units.ByteSize{
	128, 256, 384, 512, 640, 768, 896, 1024, 1152, 1280, 1408, 1536,
}

// WANBadPeriods is the paper's wide-area mean-bad-period axis.
var WANBadPeriods = []time.Duration{
	1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second,
}

// LANBadPeriods is the paper's local-area mean-bad-period axis
// (400 ms - 1.6 s).
var LANBadPeriods = []time.Duration{
	400 * time.Millisecond, 600 * time.Millisecond, 800 * time.Millisecond,
	1000 * time.Millisecond, 1200 * time.Millisecond, 1400 * time.Millisecond,
	1600 * time.Millisecond,
}

// Options tunes an experiment run.
type Options struct {
	// Replications per point (default 5).
	Replications int
	// BaseSeed offsets the replication seeds so independent experiment
	// invocations can use disjoint randomness.
	BaseSeed int64
	// Transfer overrides the preset transfer size (tests use smaller
	// transfers for speed); zero keeps the paper's value.
	Transfer units.ByteSize
	// PacketSizes and BadPeriods override the swept axes; nil keeps the
	// paper's.
	PacketSizes []units.ByteSize
	BadPeriods  []time.Duration
	// Retries bounds how many times a failed or watchdog-aborted
	// replication is re-run with fresh randomness before being skipped
	// (default 1; negative disables retrying).
	Retries int
	// Checks enables runtime invariant checking inside every run (see
	// core.Config.Checks). A violation fails the replication.
	Checks bool
}

func (o Options) withDefaults() Options {
	if o.Replications <= 0 {
		o.Replications = 5
	}
	return o
}

func (o Options) packetSizes() []units.ByteSize {
	if len(o.PacketSizes) > 0 {
		return o.PacketSizes
	}
	return PacketSizes
}

func (o Options) wanBadPeriods() []time.Duration {
	if len(o.BadPeriods) > 0 {
		return o.BadPeriods
	}
	return WANBadPeriods
}

func (o Options) lanBadPeriods() []time.Duration {
	if len(o.BadPeriods) > 0 {
		return o.BadPeriods
	}
	return LANBadPeriods
}

// ThroughputPoint is one (bad period, packet size) cell of Figures 7/8.
type ThroughputPoint struct {
	Scheme         bs.Scheme
	BadPeriod      time.Duration
	PacketSize     units.ByteSize
	ThroughputKbps *stats.Sample
	// Goodput is the paper's second metric: useful data over everything
	// the source transmitted.
	Goodput *stats.Sample
	// TheoreticalMaxKbps is the paper's tput_th for this bad period.
	TheoreticalMaxKbps float64
}

// RetransPoint is one cell of Figure 9 (and the per-scheme halves of
// Figure 11): source-retransmitted data in KB.
type RetransPoint struct {
	Scheme      bs.Scheme
	BadPeriod   time.Duration
	PacketSize  units.ByteSize
	RetransKB   *stats.Sample
	TimeoutsAvg float64
}

// wanSweep runs the WAN packet-size sweep for one scheme.
func wanSweep(scheme bs.Scheme, opt Options) ([]ThroughputPoint, error) {
	opt = opt.withDefaults()
	var tps []ThroughputPoint
	for _, bad := range opt.wanBadPeriods() {
		for _, size := range opt.packetSizes() {
			var tput, goodput stats.Sample
			_, err := runReps(opt, func(seed int64) core.Config {
				return wanConfig(scheme, size, bad, opt, seed)
			}, func(r *core.Result) {
				tput.Add(r.Summary.ThroughputKbps)
				goodput.Add(r.Summary.Goodput)
			})
			if err != nil {
				return nil, fmt.Errorf("%v sweep, bad period %v, packet size %d: %w", scheme, bad, size, err)
			}
			cfg := core.WAN(scheme, size, bad)
			tps = append(tps, ThroughputPoint{
				Scheme:             scheme,
				BadPeriod:          bad,
				PacketSize:         size,
				ThroughputKbps:     &tput,
				Goodput:            &goodput,
				TheoreticalMaxKbps: cfg.TheoreticalMaxKbps(),
			})
		}
	}
	return tps, nil
}

// wanConfig builds one run's configuration.
func wanConfig(scheme bs.Scheme, size units.ByteSize, bad time.Duration, opt Options, seed int64) core.Config {
	cfg := core.WAN(scheme, size, bad)
	if opt.Transfer > 0 {
		cfg.TransferSize = opt.Transfer
	}
	cfg.Seed = opt.BaseSeed + seed
	cfg.Checks = opt.Checks
	return cfg
}

// lanConfig builds one LAN run's configuration.
func lanConfig(scheme bs.Scheme, bad time.Duration, opt Options, seed int64) core.Config {
	cfg := core.LAN(scheme, bad)
	if opt.Transfer > 0 {
		cfg.TransferSize = opt.Transfer
	}
	cfg.Seed = opt.BaseSeed + seed
	cfg.Checks = opt.Checks
	return cfg
}

// retries resolves the per-replication retry budget.
func (o Options) retries() int {
	switch {
	case o.Retries > 0:
		return o.Retries
	case o.Retries < 0:
		return 0
	default:
		return 1
	}
}

// retrySeedOffset pushes a retried replication's seed far outside the
// normal per-point seed range, so retries draw fresh, disjoint randomness
// instead of replaying the failure.
const retrySeedOffset = int64(1) << 20

// runOnce executes one replication: the configuration built for seed,
// re-built with offset seeds up to the retry budget when a run errors or
// the watchdog aborts it.
func runOnce(opt Options, build func(seed int64) core.Config, seed int64) (*core.Result, error) {
	var lastErr error
	for attempt := 0; attempt <= opt.retries(); attempt++ {
		cfg := build(seed + int64(attempt)*retrySeedOffset)
		r, err := core.Run(cfg)
		switch {
		case err != nil:
			lastErr = fmt.Errorf("seed %d: %w", cfg.Seed, err)
		case r.Aborted:
			lastErr = fmt.Errorf("seed %d: watchdog abort: %s", cfg.Seed, firstLine(r.AbortReason))
		default:
			return r, nil
		}
	}
	return nil, lastErr
}

// runReps executes the replication loop for one experiment point, feeding
// each successful result to accumulate. A replication that still fails
// after its retries is skipped; runReps reports how many replications
// contributed and errors only when none did (a point built from zero
// samples would silently fabricate results).
func runReps(opt Options, build func(seed int64) core.Config, accumulate func(*core.Result)) (int, error) {
	succeeded := 0
	var firstErr error
	for seed := int64(1); seed <= int64(opt.Replications); seed++ {
		r, err := runOnce(opt, build, seed)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		accumulate(r)
		succeeded++
	}
	if succeeded == 0 {
		if firstErr == nil {
			firstErr = errors.New("no replications configured")
		}
		return 0, fmt.Errorf("experiment: every replication failed: %w", firstErr)
	}
	return succeeded, nil
}

// firstLine trims a multi-line diagnostic (a watchdog snapshot) to its
// summary line for inline error messages.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Fig7 reproduces Figure 7: basic-TCP throughput vs packet size.
func Fig7(opt Options) ([]ThroughputPoint, error) { return wanSweep(bs.Basic, opt) }

// Fig8 reproduces Figure 8: EBSN throughput vs packet size.
func Fig8(opt Options) ([]ThroughputPoint, error) { return wanSweep(bs.EBSN, opt) }

// Fig9 reproduces Figure 9: retransmitted data vs packet size for basic
// TCP and EBSN.
func Fig9(opt Options) ([]RetransPoint, error) {
	opt = opt.withDefaults()
	var out []RetransPoint
	for _, scheme := range []bs.Scheme{bs.Basic, bs.EBSN} {
		for _, bad := range opt.wanBadPeriods() {
			for _, size := range opt.packetSizes() {
				var retrans stats.Sample
				var timeouts uint64
				n, err := runReps(opt, func(seed int64) core.Config {
					return wanConfig(scheme, size, bad, opt, seed)
				}, func(r *core.Result) {
					retrans.Add(r.Summary.RetransmittedKB())
					timeouts += r.Summary.Timeouts
				})
				if err != nil {
					return nil, fmt.Errorf("fig9 %v, bad period %v, packet size %d: %w", scheme, bad, size, err)
				}
				out = append(out, RetransPoint{
					Scheme:      scheme,
					BadPeriod:   bad,
					PacketSize:  size,
					RetransKB:   &retrans,
					TimeoutsAvg: float64(timeouts) / float64(n),
				})
			}
		}
	}
	return out, nil
}

// LANPoint is one (scheme, bad period) cell of Figures 10 and 11.
type LANPoint struct {
	Scheme             bs.Scheme
	BadPeriod          time.Duration
	ThroughputMbps     *stats.Sample
	RetransKB          *stats.Sample
	TimeoutsAvg        float64
	TheoreticalMaxMbps float64
}

// LANStudy reproduces Figures 10 (throughput vs bad period) and 11
// (retransmitted data vs bad period) in one pass over basic TCP and EBSN.
func LANStudy(opt Options) ([]LANPoint, error) {
	opt = opt.withDefaults()
	var out []LANPoint
	for _, scheme := range []bs.Scheme{bs.Basic, bs.EBSN} {
		for _, bad := range opt.lanBadPeriods() {
			var tput, retrans stats.Sample
			var timeouts uint64
			n, err := runReps(opt, func(seed int64) core.Config {
				return lanConfig(scheme, bad, opt, seed)
			}, func(r *core.Result) {
				tput.Add(r.Summary.ThroughputMbps)
				retrans.Add(r.Summary.RetransmittedKB())
				timeouts += r.Summary.Timeouts
			})
			if err != nil {
				return nil, fmt.Errorf("lan study %v, bad period %v: %w", scheme, bad, err)
			}
			cfg := core.LAN(scheme, bad)
			out = append(out, LANPoint{
				Scheme:             scheme,
				BadPeriod:          bad,
				ThroughputMbps:     &tput,
				RetransKB:          &retrans,
				TimeoutsAvg:        float64(timeouts) / float64(n),
				TheoreticalMaxMbps: cfg.TheoreticalMaxKbps() / 1000,
			})
		}
	}
	return out, nil
}

// TraceFigure reproduces one of Figures 3-5: a deterministic-channel run
// (good 10 s / bad 4 s, exactly repeating) of a 576-byte-packet transfer
// with the packet trace collected. scheme selects the figure: Basic =
// Fig. 3, LocalRecovery = Fig. 4, EBSN = Fig. 5.
func TraceFigure(scheme bs.Scheme, horizon time.Duration) (*core.Result, error) {
	cfg := core.WAN(scheme, core.PaperWANPacketDefault, 4*time.Second)
	cfg.Channel.Deterministic = true
	cfg.CollectTrace = true
	if horizon > 0 {
		cfg.Horizon = horizon
	}
	return core.Run(cfg)
}

// OptimalPacketSize reports the packet size with the highest mean
// throughput among the given points for one bad period, with the winning
// mean.
func OptimalPacketSize(points []ThroughputPoint, bad time.Duration) (units.ByteSize, float64) {
	var bestSize units.ByteSize
	best := -1.0
	for _, p := range points {
		if p.BadPeriod != bad {
			continue
		}
		if m := p.ThroughputKbps.Mean(); m > best {
			best = m
			bestSize = p.PacketSize
		}
	}
	return bestSize, best
}
