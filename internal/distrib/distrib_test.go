package distrib

import (
	"math"
	"sort"
	"testing"

	"wtcp/internal/sim"
)

// empiricalMean draws n samples and averages.
func empiricalMean(d Distribution, n int, seed int64) float64 {
	rng := sim.NewRNG(seed)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	return sum / float64(n)
}

func TestConstant(t *testing.T) {
	c := Constant(7.5)
	if c.Mean() != 7.5 || c.Sample(sim.NewRNG(1)) != 7.5 {
		t.Error("constant distribution wrong")
	}
}

func TestUniform(t *testing.T) {
	u := Uniform{Lo: 2, Hi: 6}
	if u.Mean() != 4 {
		t.Errorf("Mean = %v", u.Mean())
	}
	rng := sim.NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := u.Sample(rng)
		if v < 2 || v >= 6 {
			t.Fatalf("sample %v outside [2,6)", v)
		}
	}
	if m := empiricalMean(u, 100000, 4); math.Abs(m-4) > 0.05 {
		t.Errorf("empirical mean = %v", m)
	}
}

func TestExponential(t *testing.T) {
	e := Exponential{MeanValue: 3}
	if e.Mean() != 3 {
		t.Errorf("Mean = %v", e.Mean())
	}
	if m := empiricalMean(e, 200000, 5); math.Abs(m-3) > 0.05 {
		t.Errorf("empirical mean = %v", m)
	}
}

func TestParetoValidation(t *testing.T) {
	if _, err := NewPareto(1.0, 1); err == nil {
		t.Error("shape 1 accepted (infinite mean)")
	}
	if _, err := NewPareto(1.5, 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := ParetoWithMean(0.9, 5); err == nil {
		t.Error("sub-unit shape accepted")
	}
	if _, err := ParetoWithMean(1.5, -1); err == nil {
		t.Error("negative mean accepted")
	}
}

func TestParetoMeanAndFloor(t *testing.T) {
	p, err := NewPareto(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mean() != 6 { // 2*3/(2-1)
		t.Errorf("Mean = %v, want 6", p.Mean())
	}
	rng := sim.NewRNG(6)
	for i := 0; i < 1000; i++ {
		if v := p.Sample(rng); v < 3 {
			t.Fatalf("sample %v below scale", v)
		}
	}
	// Empirical mean converges slowly for heavy tails; accept 15%.
	if m := empiricalMean(p, 400000, 7); math.Abs(m-6)/6 > 0.15 {
		t.Errorf("empirical mean = %v, want ~6", m)
	}
}

func TestParetoWithMeanHitsTarget(t *testing.T) {
	p, err := ParetoWithMean(2.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Mean()-10) > 1e-9 {
		t.Errorf("Mean = %v, want 10", p.Mean())
	}
}

func TestParetoHeavyTail(t *testing.T) {
	// The defining property: the tail dominates. Compare the p99/p50
	// ratio against an exponential of the same mean.
	pareto, err := ParetoWithMean(1.3, 10)
	if err != nil {
		t.Fatal(err)
	}
	expo := Exponential{MeanValue: 10}
	ratio := func(d Distribution, seed int64) float64 {
		rng := sim.NewRNG(seed)
		const n = 50000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = d.Sample(rng)
		}
		sort.Float64s(xs)
		return xs[n*99/100] / xs[n/2]
	}
	pr := ratio(pareto, 8)
	er := ratio(expo, 9)
	if pr <= 2*er {
		t.Errorf("Pareto p99/p50 = %.1f not far above exponential's %.1f", pr, er)
	}
}

func TestLognormal(t *testing.T) {
	l := Lognormal{Mu: 1, Sigma: 0.5}
	want := math.Exp(1 + 0.125)
	if math.Abs(l.Mean()-want) > 1e-9 {
		t.Errorf("Mean = %v, want %v", l.Mean(), want)
	}
	if m := empiricalMean(l, 300000, 10); math.Abs(m-want)/want > 0.03 {
		t.Errorf("empirical mean = %v, want ~%v", m, want)
	}
	rng := sim.NewRNG(11)
	for i := 0; i < 1000; i++ {
		if l.Sample(rng) <= 0 {
			t.Fatal("non-positive lognormal sample")
		}
	}
}
