package experiment

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wtcp/internal/core"
	"wtcp/internal/repro"
	"wtcp/internal/units"
)

// ckOpts is a small sweep (2 bads x 2 sizes = 4 points) for engine tests.
// The conformance oracle rides along, as in quickOpts.
func ckOpts() Options {
	return Options{
		Replications: 2,
		Transfer:     20 * units.KB,
		PacketSizes:  []units.ByteSize{512, 1536},
		BadPeriods:   []time.Duration{time.Second, 4 * time.Second},
		Oracle:       true,
	}
}

// TestCheckpointResumeByteIdentical is the tentpole guarantee: a sweep
// killed after N points and resumed from its checkpoint emits output
// byte-identical to an uninterrupted run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	baseline, err := Fig7(context.Background(), ckOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := ThroughputCSV(baseline)

	// First run: cancel after two finished points, like a Ctrl-C mid-sweep.
	path := filepath.Join(t.TempDir(), "sweep.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := ckOpts()
	opt.Checkpoint = path
	finished := 0
	opt.OnPoint = func(string) {
		if finished++; finished == 2 {
			cancel()
		}
	}
	if _, err := Fig7(ctx, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep returned %v, want context.Canceled", err)
	}
	if finished != 2 {
		t.Fatalf("finished %d points before cancel, want 2", finished)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Second run: must reload the two finished points (OnPoint fires only
	// for fresh ones) and match the uninterrupted output byte for byte.
	opt = ckOpts()
	opt.Checkpoint = path
	fresh := 0
	opt.OnPoint = func(string) { fresh++ }
	resumed, err := Fig7(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if fresh != 2 {
		t.Errorf("resumed run computed %d fresh points, want 2 (2 reloaded)", fresh)
	}
	if got := ThroughputCSV(resumed); got != want {
		t.Errorf("resumed output differs from uninterrupted run:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestCheckpointRejectsChangedOptions: resuming under different
// result-affecting options must be refused, not silently merged.
func TestCheckpointRejectsChangedOptions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	opt := ckOpts()
	opt.Checkpoint = path
	if _, err := Fig7(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	opt.Transfer = 30 * units.KB
	if _, err := Fig7(context.Background(), opt); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("changed options accepted against old checkpoint (err=%v)", err)
	}
	// Execution-only options may change freely.
	opt = ckOpts()
	opt.Checkpoint = path
	opt.Workers = 3
	fresh := 0
	opt.OnPoint = func(string) { fresh++ }
	if _, err := Fig7(context.Background(), opt); err != nil {
		t.Errorf("worker-count change rejected: %v", err)
	}
	if fresh != 0 {
		t.Errorf("full checkpoint reload recomputed %d points", fresh)
	}
}

// TestParallelMatchesSequential: the worker pool must be bit-identical
// to the sequential runner. Run under -race this also exercises the
// pool for data races.
func TestParallelMatchesSequential(t *testing.T) {
	seq := ckOpts()
	seq.Replications = 4
	sp, err := Fig7(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	par := seq
	par.Workers = 4
	pp, err := Fig7(context.Background(), par)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := ThroughputCSV(sp), ThroughputCSV(pp); a != b {
		t.Errorf("parallel output diverged from sequential:\n--- seq ---\n%s--- par ---\n%s", a, b)
	}
	for i := range sp {
		if len(sp[i].Seeds) != len(pp[i].Seeds) {
			t.Fatalf("seed metadata length differs at point %d", i)
		}
		for j := range sp[i].Seeds {
			if sp[i].Seeds[j] != pp[i].Seeds[j] {
				t.Errorf("seed order differs at point %d rep %d: %d vs %d",
					i, j, sp[i].Seeds[j], pp[i].Seeds[j])
			}
		}
	}
}

// stubRunSim swaps the engine's simulation runner for fn and restores it
// when the test ends.
func stubRunSim(t *testing.T, fn func(ctx context.Context, cfg core.Config) (*core.Result, error)) {
	t.Helper()
	orig := runSim
	runSim = fn
	t.Cleanup(func() { runSim = orig })
}

// TestRetryPerturbsAndRecordsSeed: a failed replication must be retried
// with a perturbed seed, and the substituted seed must appear in the
// point's metadata instead of the original.
func TestRetryPerturbsAndRecordsSeed(t *testing.T) {
	const baseSeed = 100
	failing := int64(baseSeed + 1) // replication 1's first-attempt seed
	stubRunSim(t, func(ctx context.Context, cfg core.Config) (*core.Result, error) {
		if cfg.Seed == failing {
			return nil, errors.New("synthetic deterministic failure")
		}
		r := &core.Result{Completed: true}
		r.Summary.ThroughputKbps = float64(cfg.Seed) // distinguishable payload
		r.Summary.Goodput = 1
		return r, nil
	})
	opt := Options{
		Replications: 2,
		BaseSeed:     baseSeed,
		Retries:      1,
		PacketSizes:  []units.ByteSize{512},
		BadPeriods:   []time.Duration{time.Second},
	}
	points, err := Fig7(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d, want 1", len(points))
	}
	wantSeeds := []int64{failing + retrySeedOffset, baseSeed + 2}
	if got := points[0].Seeds; len(got) != 2 || got[0] != wantSeeds[0] || got[1] != wantSeeds[1] {
		t.Errorf("Seeds = %v, want %v (retried rep shows its substituted seed)", got, wantSeeds)
	}
	// The sample really came from the perturbed run, not the failed one.
	if m := points[0].ThroughputKbps.Mean(); m != float64(wantSeeds[0]+wantSeeds[1])/2 {
		t.Errorf("sample mean %v does not match the substituted-seed runs", m)
	}
}

// TestBundleEmittedOnPermanentFailure: a replication that exhausts its
// retries must leave a replayable bundle in ReproDir.
func TestBundleEmittedOnPermanentFailure(t *testing.T) {
	stubRunSim(t, func(ctx context.Context, cfg core.Config) (*core.Result, error) {
		return nil, errors.New("synthetic permanent failure")
	})
	dir := t.TempDir()
	opt := Options{
		Replications: 1,
		Retries:      -1,
		ReproDir:     dir,
		PacketSizes:  []units.ByteSize{512},
		BadPeriods:   []time.Duration{time.Second},
	}
	if _, err := Fig7(context.Background(), opt); err == nil {
		t.Fatal("all-failing sweep succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no repro bundle written")
	}
	b, err := repro.Load(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatalf("bundle unreadable: %v", err)
	}
	if b.Kind != repro.KindError {
		t.Errorf("bundle kind = %s, want %s", b.Kind, repro.KindError)
	}
	if !strings.Contains(b.Origin, "wan/basic") || !strings.Contains(b.Origin, "rep 1") {
		t.Errorf("bundle origin %q does not identify the point", b.Origin)
	}
	if b.Config.Seed == 0 {
		t.Error("bundle config missing the failing seed")
	}
}
