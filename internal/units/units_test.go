package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestByteSizeBits(t *testing.T) {
	tests := []struct {
		in   ByteSize
		want int64
	}{
		{0, 0},
		{1, 8},
		{128, 1024},
		{KB, 8192},
		{4 * KB, 32768},
	}
	for _, tt := range tests {
		if got := tt.in.Bits(); got != tt.want {
			t.Errorf("(%d).Bits() = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestByteSizeString(t *testing.T) {
	tests := []struct {
		in   ByteSize
		want string
	}{
		{576, "576B"},
		{KB, "1KB"},
		{4 * KB, "4KB"},
		{100 * KB, "100KB"},
		{4 * MB, "4MB"},
		{1536, "1536B"}, // not a whole KB multiple
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestBitRateString(t *testing.T) {
	tests := []struct {
		in   BitRate
		want string
	}{
		{56 * Kbps, "56Kbps"},
		{19200, "19.2Kbps"},
		{12800, "12.8Kbps"},
		{2 * Mbps, "2Mbps"},
		{10 * Mbps, "10Mbps"},
		{500, "500bps"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestTransmissionTime(t *testing.T) {
	tests := []struct {
		name string
		size ByteSize
		rate BitRate
		want time.Duration
	}{
		{"1KB at 8kbps is ~1.024s", KB, 8 * Kbps, 1024 * time.Millisecond},
		{"576B at 56kbps", 576, 56 * Kbps, time.Duration(math.Round(576 * 8.0 / 56000 * float64(time.Second)))},
		{"zero rate", KB, 0, 0},
		{"zero size", 0, Kbps, 0},
		{"negative size", -5, Kbps, 0},
		{"128B at 19.2kbps", 128, 19200, time.Duration(math.Round(1024.0 / 19200 * float64(time.Second)))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := TransmissionTime(tt.size, tt.rate)
			if diff := got - tt.want; diff > time.Microsecond || diff < -time.Microsecond {
				t.Errorf("TransmissionTime(%v, %v) = %v, want %v", tt.size, tt.rate, got, tt.want)
			}
		})
	}
}

func TestThroughputInvertsTransmissionTime(t *testing.T) {
	f := func(sizeKB uint16, rateKbps uint16) bool {
		size := ByteSize(sizeKB%1024+1) * KB
		rate := BitRate(rateKbps%10000+1) * Kbps
		d := TransmissionTime(size, rate)
		got := Throughput(size, d)
		// Rounding in both directions: allow 0.1% slack.
		diff := float64(got-rate) / float64(rate)
		return diff < 0.001 && diff > -0.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThroughputEdges(t *testing.T) {
	if Throughput(KB, 0) != 0 {
		t.Error("zero elapsed should yield 0")
	}
	if Throughput(0, time.Second) != 0 {
		t.Error("zero size should yield 0")
	}
	if ThroughputKbps(KB, 0) != 0 {
		t.Error("ThroughputKbps zero elapsed should yield 0")
	}
}

func TestThroughputKbps(t *testing.T) {
	// 100KB in 64s = 819200 bits / 64s = 12.8 kbps.
	got := ThroughputKbps(100*KB, 64*time.Second)
	if got < 12.79 || got > 12.81 {
		t.Errorf("ThroughputKbps = %v, want 12.8", got)
	}
}

func TestThroughputMbps(t *testing.T) {
	// 4MB in 16.777216s = 2 Mbps.
	elapsed := time.Duration(float64(4*MB.Bits()*0) + 16777216*float64(time.Microsecond))
	got := ThroughputMbps(4*MB, elapsed)
	if got < 1.99 || got > 2.01 {
		t.Errorf("ThroughputMbps = %v, want 2", got)
	}
}

func TestFormatters(t *testing.T) {
	if got := FormatKbps(12.8); got != "12.80 Kbps" {
		t.Errorf("FormatKbps = %q", got)
	}
	if got := FormatMbps(1.5); got != "1.500 Mbps" {
		t.Errorf("FormatMbps = %q", got)
	}
}
