package report

import (
	"os"
	"strings"
	"testing"
)

// TestFleetSectionMirroredInReplicationDoc pins the committed
// REPLICATION.md against the generator: the sharded-campaign
// walkthrough is static text, so the committed doc must carry it
// verbatim — otherwise the next `make report` run would silently
// rewrite it.
func TestFleetSectionMirroredInReplicationDoc(t *testing.T) {
	data, err := os.ReadFile("../../REPLICATION.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), fleetSection) {
		t.Error("REPLICATION.md does not contain the generator's fleet section verbatim; regenerate with `make report` or update both")
	}
	if !strings.Contains(string(data), serveSection) {
		t.Error("REPLICATION.md does not contain the generator's service section verbatim; regenerate with `make report` or update both")
	}
	if !strings.Contains(string(data), zooSection) {
		t.Error("REPLICATION.md does not contain the generator's protocol-zoo section verbatim; regenerate with `make report` or update both")
	}
}
