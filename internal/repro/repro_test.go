package repro

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/chaos"
	"wtcp/internal/core"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// wedgedConfig leaves the transfer no way to finish: the forward wired
// hop is dead for the whole horizon, so the watchdog must abort. Extra
// decoy faults give Shrink something to remove.
func wedgedConfig() core.Config {
	cfg := core.WAN(bs.Basic, 576, 2*time.Second)
	cfg.TransferSize = 30 * units.KB
	cfg.Stall = 2 * time.Minute
	cfg.Horizon = 30 * time.Minute
	cfg.Chaos = &chaos.Config{
		Blackouts: []chaos.Blackout{
			{Link: chaos.WiredFwd, At: 0, Length: 4 * time.Hour},
			{Link: chaos.WirelessUp, At: 5 * time.Second, Length: time.Second}, // decoy
		},
		Crashes: []chaos.Crash{{At: 40 * time.Second, Downtime: 2 * time.Second}}, // decoy
		Notify:  chaos.NotifyFaults{LossProb: 0.25},                               // decoy
	}
	return cfg
}

// captureWedged runs the wedged scenario and captures its bundle.
func captureWedged(t *testing.T) *Bundle {
	t.Helper()
	cfg := wedgedConfig()
	res, err := core.Run(cfg)
	b := Capture(cfg, res, err)
	if b == nil {
		t.Fatalf("wedged run did not fail (err=%v, res=%+v)", err, res)
	}
	if b.Kind != KindWatchdog {
		t.Fatalf("bundle kind = %s, want %s", b.Kind, KindWatchdog)
	}
	return b
}

func TestCaptureClassifies(t *testing.T) {
	cfg := core.WAN(bs.Basic, 576, time.Second)
	if b := Capture(cfg, &core.Result{Completed: true}, nil); b != nil {
		t.Errorf("clean run captured as %+v", b)
	}
	if b := Capture(cfg, nil, context.Canceled); b != nil {
		t.Errorf("cancellation captured as %+v", b)
	}
	if b := Capture(cfg, nil, errors.New("boom")); b == nil || b.Kind != KindError {
		t.Errorf("plain error captured as %+v", b)
	}
	pe := &core.PanicError{Value: "index out of range", Stack: "stack..."}
	if b := Capture(cfg, nil, pe); b == nil || b.Kind != KindPanic || b.Failure != "index out of range" {
		t.Errorf("panic captured as %+v", b)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	b := captureWedged(t)
	b.Origin = "test/wedged rep 1"
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != b.Kind || got.Origin != b.Origin || got.Failure != b.Failure {
		t.Errorf("round trip changed header: %+v vs %+v", got, b)
	}
	if got.Config.Seed != b.Config.Seed || got.Config.TransferSize != b.Config.TransferSize {
		t.Errorf("round trip changed config: %+v vs %+v", got.Config, b.Config)
	}
	if len(got.Config.Chaos.Blackouts) != 2 {
		t.Errorf("chaos plan lost in round trip: %+v", got.Config.Chaos)
	}
}

func TestReplayReproducesDeterministically(t *testing.T) {
	b := captureWedged(t)
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Two replays of the loaded bundle must both reproduce the original
	// failure with identical summaries — determinism from the file alone.
	o1, err := Replay(context.Background(), loaded)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Replay(context.Background(), loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !o1.Matches(b) {
		t.Errorf("replay outcome %+v does not match bundle %s/%s", o1, b.Kind, b.Failure)
	}
	if o1 != o2 {
		t.Errorf("two replays diverged: %+v vs %+v", o1, o2)
	}
}

func TestReplayHonorsContext(t *testing.T) {
	b := captureWedged(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Replay(ctx, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("Replay = %v, want context.Canceled", err)
	}
}

func TestShrinkRemovesDecoysAndKeepsFailure(t *testing.T) {
	b := captureWedged(t)
	min, stats, err := Shrink(context.Background(), b, 60)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replays == 0 || stats.Accepted == 0 {
		t.Fatalf("shrink did no work: %+v", stats)
	}
	// The shrunk scenario must still reproduce the watchdog failure...
	o, err := Replay(context.Background(), min)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Matches(b) {
		t.Fatalf("shrunk bundle no longer fails the same way: %+v", o)
	}
	// ...with the decoy faults gone (only the wedging blackout can be
	// essential) and a smaller transfer.
	if min.Config.Chaos == nil || len(min.Config.Chaos.Blackouts) != 1 {
		t.Errorf("decoy blackout not removed: %+v", min.Config.Chaos)
	} else if min.Config.Chaos.Blackouts[0].Link != chaos.WiredFwd {
		t.Errorf("wrong blackout kept: %+v", min.Config.Chaos.Blackouts[0])
	}
	if min.Config.Chaos != nil && len(min.Config.Chaos.Crashes) != 0 {
		t.Errorf("decoy crash not removed: %+v", min.Config.Chaos.Crashes)
	}
	if min.Config.Chaos != nil && min.Config.Chaos.Notify != (chaos.NotifyFaults{}) {
		t.Errorf("decoy notify faults not removed: %+v", min.Config.Chaos.Notify)
	}
	if min.Config.TransferSize >= b.Config.TransferSize {
		t.Errorf("transfer not shrunk: %v >= %v", min.Config.TransferSize, b.Config.TransferSize)
	}
	if min.Config.Horizon >= b.Config.Horizon {
		t.Errorf("horizon not shrunk: %v >= %v", min.Config.Horizon, b.Config.Horizon)
	}
}

// budgetConfig is a benign WAN transfer starved of its event budget:
// the run aborts with a *sim.BudgetError well before completing, and —
// because the event ceiling counts deterministic kernel events — every
// replay aborts identically.
func budgetConfig() core.Config {
	cfg := core.WAN(bs.EBSN, 576, 2*time.Second)
	cfg.TransferSize = 50 * units.KB
	cfg.Budget = sim.Budget{MaxEvents: 500}
	return cfg
}

func TestCaptureBudgetRoundTripAndReplay(t *testing.T) {
	cfg := budgetConfig()
	res, err := core.Run(cfg)
	var be *sim.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("starved run returned %v (res=%+v), want *sim.BudgetError", err, res)
	}
	b := Capture(cfg, res, err)
	if b == nil {
		t.Fatal("budget abort not captured")
	}
	if b.Kind != KindBudget || b.BudgetKind != sim.BudgetEvents {
		t.Fatalf("bundle kind = %s/%s, want %s/%s", b.Kind, b.BudgetKind, KindBudget, sim.BudgetEvents)
	}
	if b.BudgetLimit != 500 || b.BudgetValue < 500 {
		t.Fatalf("bundle counters limit=%d value=%d, want limit 500 and value >= 500", b.BudgetLimit, b.BudgetValue)
	}

	b.Origin = "test/budget rep 1"
	path := filepath.Join(t.TempDir(), "budget.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != b.Kind || got.BudgetKind != b.BudgetKind ||
		got.BudgetLimit != b.BudgetLimit || got.BudgetValue != b.BudgetValue {
		t.Errorf("round trip changed budget metadata: %+v vs %+v", got, b)
	}
	if got.Config.Budget != cfg.Budget {
		t.Errorf("round trip changed Config.Budget: %+v vs %+v", got.Config.Budget, cfg.Budget)
	}

	o, err := Replay(context.Background(), got)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Matches(got) {
		t.Errorf("replay outcome %+v does not match bundle %s/%s", o, got.Kind, got.BudgetKind)
	}

	// A different exhausted ceiling is a different failure.
	if (Outcome{Kind: KindBudget, BudgetKind: sim.BudgetWall}).Matches(got) {
		t.Error("wall-clock outcome matched an event-budget bundle")
	}
}
