// Crash-safe campaigns: this example demonstrates the experiment
// engine's three robustness features end to end.
//
//  1. Checkpointed sweeps — a Figure 7 sweep is cancelled midway (as if
//     killed), then rerun against its checkpoint; the resumed output is
//     byte-identical to an uninterrupted run.
//
//  2. Parallel replications — the same sweep on a 4-wide worker pool
//     produces the same bytes as the sequential one.
//
//  3. Repro bundles — a wedged scenario (the forward wired hop dead for
//     the whole run) is captured as a self-contained bundle, then
//     shrunk to a minimal scenario that still fails the same way.
//
//     go run ./examples/resume
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/chaos"
	"wtcp/internal/core"
	"wtcp/internal/experiment"
	"wtcp/internal/repro"
	"wtcp/internal/units"
)

func sweepOpts() experiment.Options {
	return experiment.Options{
		Replications: 2,
		Transfer:     20 * units.KB,
		PacketSizes:  []units.ByteSize{512, 1536},
		BadPeriods:   []time.Duration{time.Second, 4 * time.Second},
	}
}

func main() {
	dir, err := os.MkdirTemp("", "wtcp-resume")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- 1. Uninterrupted baseline ------------------------------------
	baseline, err := experiment.Fig7(context.Background(), sweepOpts())
	if err != nil {
		log.Fatal(err)
	}
	want := experiment.ThroughputCSV(baseline)
	fmt.Println("baseline sweep: 4 points, no checkpoint")

	// --- 2. Kill the sweep after two points, then resume ---------------
	ckpt := filepath.Join(dir, "sweep.json")
	ctx, cancel := context.WithCancel(context.Background())
	opt := sweepOpts()
	opt.Checkpoint = ckpt
	finished := 0
	opt.OnPoint = func(key string) {
		finished++
		fmt.Printf("  finished %s\n", key)
		if finished == 2 {
			fmt.Println("  -- simulating a kill: cancelling mid-sweep --")
			cancel()
		}
	}
	if _, err := experiment.Fig7(ctx, opt); !errors.Is(err, context.Canceled) {
		log.Fatalf("expected cancellation, got %v", err)
	}
	cancel()

	opt = sweepOpts()
	opt.Checkpoint = ckpt
	fresh := 0
	opt.OnPoint = func(string) { fresh++ }
	resumed, err := experiment.Fig7(context.Background(), opt)
	if err != nil {
		log.Fatal(err)
	}
	got := experiment.ThroughputCSV(resumed)
	fmt.Printf("resumed sweep: %d points reloaded from checkpoint, %d computed fresh\n",
		len(resumed)-fresh, fresh)
	fmt.Println("resumed output byte-identical to baseline:", got == want)

	// --- 3. Parallel pool, identical bytes -----------------------------
	par := sweepOpts()
	par.Workers = 4
	parallel, err := experiment.Fig7(context.Background(), par)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("4-worker output byte-identical to sequential:",
		experiment.ThroughputCSV(parallel) == want)

	// --- 4. Capture a failure as a bundle and shrink it -----------------
	cfg := core.WAN(bs.Basic, 576, 2*time.Second)
	cfg.TransferSize = 30 * units.KB
	cfg.Stall = 2 * time.Minute
	cfg.Horizon = 30 * time.Minute
	cfg.Chaos = &chaos.Config{
		Blackouts: []chaos.Blackout{
			{Link: chaos.WiredFwd, At: 0, Length: 4 * time.Hour},               // the wedge
			{Link: chaos.WirelessUp, At: 5 * time.Second, Length: time.Second}, // decoy
		},
		Crashes: []chaos.Crash{{At: 40 * time.Second, Downtime: 2 * time.Second}}, // decoy
	}
	res, runErr := core.Run(cfg)
	bundle := repro.Capture(cfg, res, runErr)
	if bundle == nil {
		log.Fatal("wedged scenario did not fail")
	}
	fmt.Printf("captured failure: [%s] %s\n", bundle.Kind, bundle.Failure)

	min, stats, err := repro.Shrink(context.Background(), bundle, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shrunk in %d replays: %d -> %d chaos faults, transfer %v -> %v\n",
		stats.Replays,
		len(bundle.Config.Chaos.Blackouts)+len(bundle.Config.Chaos.Crashes),
		len(min.Config.Chaos.Blackouts)+len(min.Config.Chaos.Crashes),
		bundle.Config.TransferSize, min.Config.TransferSize)
	o, err := repro.Replay(context.Background(), min)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("minimized scenario still reproduces:", o.Matches(bundle))
}
