package experiment

import (
	"fmt"
	"strings"
	"time"

	"wtcp/internal/handoff"
	"wtcp/internal/stats"
	"wtcp/internal/units"
)

// HandoffPoint is one (scheme, dwell) cell of the mobility study
// [Caceres & Iftode 94], the related work the paper's §2 opens with.
type HandoffPoint struct {
	Scheme         handoff.Scheme
	Dwell          time.Duration
	ThroughputKbps *stats.Sample
	TimeoutsAvg    float64
	FastRetxAvg    float64
}

// HandoffOptions tunes the study.
type HandoffOptions struct {
	Replications int
	Transfer     units.ByteSize
	Latency      time.Duration
	Dwells       []time.Duration
	BaseSeed     int64
}

func (o HandoffOptions) withDefaults() HandoffOptions {
	if o.Replications <= 0 {
		// Handoff runs are fully deterministic (error-free cells, fixed
		// dwell), so one replication per point suffices.
		o.Replications = 1
	}
	if len(o.Dwells) == 0 {
		o.Dwells = []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second}
	}
	return o
}

// HandoffStudy compares plain TCP against fast-retransmit-on-handoff
// across cell dwell times.
func HandoffStudy(opt HandoffOptions) ([]HandoffPoint, error) {
	opt = opt.withDefaults()
	var out []HandoffPoint
	for _, scheme := range []handoff.Scheme{handoff.Plain, handoff.FastRetransmit} {
		for _, dwell := range opt.Dwells {
			var tput stats.Sample
			var timeouts, fastRetx uint64
			for seed := int64(1); seed <= int64(opt.Replications); seed++ {
				cfg := handoff.Defaults(scheme)
				cfg.Dwell = dwell
				cfg.Seed = opt.BaseSeed + seed
				if opt.Transfer > 0 {
					cfg.TransferSize = opt.Transfer
				}
				if opt.Latency > 0 {
					cfg.Latency = opt.Latency
				}
				r, err := handoff.Run(cfg)
				if err != nil {
					return nil, err
				}
				tput.Add(r.ThroughputKbps)
				timeouts += r.Timeouts
				fastRetx += r.FastRetransmits
			}
			out = append(out, HandoffPoint{
				Scheme:         scheme,
				Dwell:          dwell,
				ThroughputKbps: &tput,
				TimeoutsAvg:    float64(timeouts) / float64(opt.Replications),
				FastRetxAvg:    float64(fastRetx) / float64(opt.Replications),
			})
		}
	}
	return out, nil
}

// RenderHandoffTable formats the study.
func RenderHandoffTable(title string, points []HandoffPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-16s  %-10s  %-18s  %-10s  %-10s\n",
		"scheme", "dwell", "throughput(Kbps)", "timeouts", "fastretx")
	for _, p := range points {
		fmt.Fprintf(&b, "%-16s  %-10s  %-18s  %-10.1f  %-10.1f\n",
			p.Scheme, p.Dwell,
			fmt.Sprintf("%.0f", p.ThroughputKbps.Mean()),
			p.TimeoutsAvg, p.FastRetxAvg)
	}
	return b.String()
}

// HandoffCSV emits the study as CSV.
func HandoffCSV(points []HandoffPoint) string {
	var b strings.Builder
	b.WriteString("scheme,dwell_sec,throughput_kbps_mean,throughput_kbps_stddev,timeouts_avg,fastretx_avg\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%.1f,%.2f,%.2f,%.1f,%.1f\n",
			p.Scheme, p.Dwell.Seconds(),
			p.ThroughputKbps.Mean(), p.ThroughputKbps.StdDev(),
			p.TimeoutsAvg, p.FastRetxAvg)
	}
	return b.String()
}
