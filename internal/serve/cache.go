package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// diskCache is the content-addressed result store: one file per
// fingerprint holding the exact response bytes a fresh computation
// produced, bounded by a total byte cap with least-recently-used
// eviction. Entries are immutable once written (the address is a hash
// of everything that determines the content), so a hit can be served
// verbatim — byte-identical to the fresh run — and eviction is purely
// a capacity decision, never a correctness one.
type diskCache struct {
	mu    sync.Mutex
	dir   string
	cap   int64
	size  int64
	sizes map[string]int64
	// order is LRU: front oldest, back most recently used.
	order     []string
	evictions uint64
}

// openDiskCache loads (or creates) the cache directory. Surviving
// entries are re-indexed with their on-disk modification order as the
// initial LRU order, so a restarted server keeps its warm set.
func openDiskCache(dir string, capBytes int64) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	c := &diskCache{dir: dir, cap: capBytes, sizes: map[string]int64{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	type onDisk struct {
		fp    string
		size  int64
		mtime int64
	}
	var found []onDisk
	for _, e := range entries {
		if e.IsDir() || !validFingerprint(e.Name()) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, onDisk{e.Name(), info.Size(), info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	for _, f := range found {
		c.sizes[f.fp] = f.size
		c.size += f.size
		c.order = append(c.order, f.fp)
	}
	c.evictLocked()
	return c, nil
}

// get returns the cached response bytes for fp and marks it recently
// used.
func (c *diskCache) get(fp string) ([]byte, bool) {
	c.mu.Lock()
	_, ok := c.sizes[fp]
	if ok {
		c.touchLocked(fp)
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, fp))
	if err != nil {
		// Entry vanished underneath us (manual cleanup); drop the index.
		c.mu.Lock()
		c.dropLocked(fp)
		c.mu.Unlock()
		return nil, false
	}
	return data, true
}

// put stores the response bytes for fp (atomic write-rename), evicting
// least-recently-used entries until the cap holds. A blob bigger than
// the whole cap is not stored: the response is still delivered, it
// just isn't worth the entire cache. First write wins; identical
// content makes overwrites a no-op anyway.
func (c *diskCache) put(fp string, data []byte) error {
	if c.cap > 0 && int64(len(data)) > c.cap {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sizes[fp]; ok {
		return nil
	}
	path := filepath.Join(c.dir, fp)
	tmp, err := os.CreateTemp(c.dir, fp+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: cache temp: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: cache close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: cache commit: %w", err)
	}
	c.sizes[fp] = int64(len(data))
	c.size += int64(len(data))
	c.order = append(c.order, fp)
	c.evictLocked()
	return nil
}

// touchLocked moves fp to the most-recently-used end.
func (c *diskCache) touchLocked(fp string) {
	for i, k := range c.order {
		if k == fp {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), fp)
			return
		}
	}
}

// dropLocked removes fp from the index (file already gone or being
// evicted).
func (c *diskCache) dropLocked(fp string) {
	if sz, ok := c.sizes[fp]; ok {
		c.size -= sz
		delete(c.sizes, fp)
	}
	for i, k := range c.order {
		if k == fp {
			c.order = append(c.order[:i:i], c.order[i+1:]...)
			return
		}
	}
}

// evictLocked removes oldest entries until the byte cap holds.
func (c *diskCache) evictLocked() {
	if c.cap <= 0 {
		return
	}
	for c.size > c.cap && len(c.order) > 0 {
		victim := c.order[0]
		os.Remove(filepath.Join(c.dir, victim))
		c.dropLocked(victim)
		c.evictions++
	}
}

// stats reports entry count, resident bytes, and lifetime evictions.
func (c *diskCache) stats() (entries int, bytes int64, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sizes), c.size, c.evictions
}
