// Package packet defines the network-layer packet model shared by the
// links, the TCP endpoints, and the base station.
//
// The model follows the paper's setup: TCP segments carry a 40-byte
// TCP/IP header; the base station fragments wired-side packets into
// wireless-MTU-sized fragments; control packets (link-level ACKs, EBSN,
// ICMP source quench) are small and header-only.
package packet

import (
	"fmt"
	"time"

	"wtcp/internal/units"
)

// HeaderSize is the combined TCP/IP header size used throughout the paper.
const HeaderSize units.ByteSize = 40

// ControlSize is the on-wire size of control packets (link ACK, EBSN,
// source quench): header-only.
const ControlSize units.ByteSize = HeaderSize

// SACKBlock is one contiguous received byte range [Start, End).
type SACKBlock struct {
	Start int64
	End   int64
}

// MaxSACKBlocks bounds the blocks carried per acknowledgment (RFC 2018's
// option-space limit is three when timestamps are in use).
const MaxSACKBlocks = 3

// Kind discriminates packet types.
type Kind int

// Packet kinds.
const (
	// Data is a TCP data segment.
	Data Kind = iota + 1
	// Ack is a TCP cumulative acknowledgment.
	Ack
	// Fragment is an IP fragment of a Data segment, produced by the base
	// station for the wireless hop.
	Fragment
	// LinkAck is a link-level acknowledgment for one fragment or segment,
	// used by the base station's local-recovery ARQ.
	LinkAck
	// EBSN is an Explicit Bad State Notification from the base station to
	// the TCP source (the paper's contribution; an ICMP-style message).
	EBSN
	// SourceQuench is an ICMP source quench from the base station to the
	// TCP source (the paper's negative-result comparator).
	SourceQuench
)

var kindNames = map[Kind]string{
	Data:         "DATA",
	Ack:          "ACK",
	Fragment:     "FRAG",
	LinkAck:      "LACK",
	EBSN:         "EBSN",
	SourceQuench: "QUENCH",
}

// String returns the short uppercase name used in traces.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Packet is one network-layer packet. Packets are created once and passed
// by pointer; links and agents must not mutate a packet after sending it
// (retransmissions create fresh packets so traces can tell copies apart).
type Packet struct {
	// ID uniquely identifies this packet instance within a simulation run.
	ID uint64
	// Kind discriminates the fields below.
	Kind Kind
	// Conn identifies the TCP connection in multi-connection scenarios
	// (zero in the single-connection experiments).
	Conn int

	// Seq is the sequence number of the first payload byte (Data,
	// Fragment) or is unused (other kinds).
	Seq int64
	// Payload is the number of TCP payload bytes carried (Data, Fragment).
	Payload units.ByteSize
	// AckNo is the cumulative acknowledgment: the next byte expected by
	// the receiver (Ack), or the fragment/segment being link-acked
	// (LinkAck, where it holds the acked packet's ID).
	AckNo int64

	// Retransmit marks a TCP-source retransmission of previously sent
	// data. Karn's algorithm uses it to skip RTT sampling.
	Retransmit bool

	// CongestionMarked is the ECN CE bit: set by a congested queue on a
	// Data packet, echoed by the receiver on the corresponding Ack.
	CongestionMarked bool

	// SACK carries selective-acknowledgment blocks on an Ack (RFC 2018):
	// byte ranges above AckNo the receiver already holds. Nil when the
	// connection does not negotiate SACK.
	SACK []SACKBlock

	// FragOf is the ID of the original Data segment a Fragment belongs
	// to; FragIndex/FragCount locate it within the fragment train.
	FragOf    uint64
	FragIndex int
	FragCount int

	// LinkSeq is the link-level sequence number a local-recovery ARQ
	// assigns to each unit it manages, so the receiver can restore
	// in-sequence delivery after out-of-order retransmissions. Zero means
	// "not sequenced" (no reordering applied).
	LinkSeq int64

	// SentAt is stamped by the sending agent when the packet enters its
	// outbound link, for tracing and RTT measurement.
	SentAt time.Duration
}

// Size reports the packet's on-wire size at the network layer: header plus
// payload for Data segments, the raw chunk size for Fragments (a fragment
// is a link-level slice of the whole segment, so the original header bytes
// are already inside Payload), and header-only for control kinds.
func (p *Packet) Size() units.ByteSize {
	switch p.Kind {
	case Data:
		return HeaderSize + p.Payload
	case Fragment:
		return p.Payload
	default:
		return ControlSize
	}
}

// End reports the sequence number one past the last payload byte.
func (p *Packet) End() int64 { return p.Seq + int64(p.Payload) }

// IsControl reports whether the packet is a control message (no TCP
// payload and no TCP ack semantics at the transport layer).
func (p *Packet) IsControl() bool {
	return p.Kind == LinkAck || p.Kind == EBSN || p.Kind == SourceQuench
}

// IsNotification reports whether the packet is a bad-state notification
// travelling toward the source (an EBSN or an ICMP source quench).
func (p *Packet) IsNotification() bool {
	return p.Kind == EBSN || p.Kind == SourceQuench
}

// String renders a one-line summary for traces and test failures.
func (p *Packet) String() string {
	switch p.Kind {
	case Data:
		r := ""
		if p.Retransmit {
			r = " rtx"
		}
		return fmt.Sprintf("DATA id=%d seq=%d len=%d%s", p.ID, p.Seq, p.Payload, r)
	case Ack:
		return fmt.Sprintf("ACK id=%d ackno=%d", p.ID, p.AckNo)
	case Fragment:
		return fmt.Sprintf("FRAG id=%d of=%d %d/%d seq=%d len=%d",
			p.ID, p.FragOf, p.FragIndex+1, p.FragCount, p.Seq, p.Payload)
	case LinkAck:
		return fmt.Sprintf("LACK id=%d for=%d", p.ID, p.AckNo)
	default:
		return fmt.Sprintf("%s id=%d", p.Kind, p.ID)
	}
}

// IDGen allocates packet IDs unique within one simulation run. The zero
// value is ready to use.
type IDGen struct {
	next uint64
}

// Next returns a fresh ID (starting at 1, so the zero ID means "unset").
func (g *IDGen) Next() uint64 {
	g.next++
	return g.next
}
