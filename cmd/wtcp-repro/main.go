// Command wtcp-repro replays and minimizes failure bundles captured by
// the experiment engine (wtcp-figures/wtcp-report with -repro, or any
// caller of internal/repro).
//
// A bundle is a self-contained JSON scenario: config, seed, chaos plan,
// and the failure it produced. Because every simulation is deterministic
// in (config, seed), replaying the bundle re-derives the failure exactly
// — on any machine, with no sweep context.
//
//	wtcp-repro -bundle repro-wan-basic.json            # replay, report
//	wtcp-repro -bundle b.json -shrink -out min.json    # minimize first
//	wtcp-repro -bundle b.json -json                    # machine-readable
//
// Exit status: 0 when the bundle's failure reproduces, 2 when it does
// not (the defect is gone or the bundle is stale), 1 on operational
// errors. SIGINT/SIGTERM stop the replay at the next event boundary.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"wtcp/internal/repro"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wtcp-repro:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// result is the -json output shape.
type result struct {
	Bundle      string        `json:"bundle"`
	Origin      string        `json:"origin,omitempty"`
	WantKind    string        `json:"want_kind"`
	GotKind     string        `json:"got_kind"`
	BudgetKind  string        `json:"budget_kind,omitempty"`
	BudgetLimit int64         `json:"budget_limit,omitempty"`
	BudgetValue int64         `json:"budget_value,omitempty"`
	Failure     string        `json:"failure,omitempty"`
	Reproduced  bool          `json:"reproduced"`
	Shrink      *shrinkResult `json:"shrink,omitempty"`
}

type shrinkResult struct {
	Replays  int    `json:"replays"`
	Accepted int    `json:"accepted"`
	Out      string `json:"out,omitempty"`
}

func run(ctx context.Context, args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("wtcp-repro", flag.ContinueOnError)
	var (
		bundlePath = fs.String("bundle", "", "bundle file to replay (required)")
		shrink     = fs.Bool("shrink", false, "minimize the scenario before the final replay")
		shrinkOut  = fs.String("out", "", "write the minimized bundle here (with -shrink)")
		replays    = fs.Int("replays", repro.DefaultShrinkReplays, "simulation budget for -shrink")
		asJSON     = fs.Bool("json", false, "emit the outcome as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *bundlePath == "" {
		return 1, errors.New("-bundle is required")
	}
	b, err := repro.Load(*bundlePath)
	if err != nil {
		return 1, err
	}
	res := result{Bundle: *bundlePath, Origin: b.Origin, WantKind: b.Kind,
		BudgetKind: b.BudgetKind, BudgetLimit: b.BudgetLimit, BudgetValue: b.BudgetValue}
	if !*asJSON {
		fmt.Fprintf(out, "bundle: %s\n", *bundlePath)
		if b.Origin != "" {
			fmt.Fprintf(out, "origin: %s\n", b.Origin)
		}
		fmt.Fprintf(out, "captured failure: [%s] %s\n", b.Kind, b.Failure)
		if b.Kind == repro.KindBudget {
			fmt.Fprintf(out, "budget: %s ceiling %d exhausted at %d\n", b.BudgetKind, b.BudgetLimit, b.BudgetValue)
		}
	}

	if *shrink {
		min, stats, err := repro.Shrink(ctx, b, *replays)
		if err != nil {
			return 1, err
		}
		res.Shrink = &shrinkResult{Replays: stats.Replays, Accepted: stats.Accepted}
		if !*asJSON {
			fmt.Fprintf(out, "shrink: %d replays, %d simplifications kept (transfer %v, horizon %v)\n",
				stats.Replays, stats.Accepted, min.Config.TransferSize, min.Config.Horizon)
		}
		if *shrinkOut != "" {
			if err := min.Save(*shrinkOut); err != nil {
				return 1, err
			}
			res.Shrink.Out = *shrinkOut
			if !*asJSON {
				fmt.Fprintf(out, "wrote minimized bundle to %s\n", *shrinkOut)
			}
		}
		b = min
	}

	o, err := repro.Replay(ctx, b)
	if err != nil {
		return 1, err
	}
	res.GotKind = o.Kind
	res.Failure = o.Failure
	res.Reproduced = o.Matches(b)
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return 1, err
		}
	} else if res.Reproduced {
		fmt.Fprintf(out, "reproduced: [%s] %s\n", o.Kind, o.Failure)
	} else {
		fmt.Fprintf(out, "NOT reproduced: replay finished as [%s], bundle recorded [%s]\n", o.Kind, b.Kind)
	}
	if !res.Reproduced {
		return 2, nil
	}
	return 0, nil
}
