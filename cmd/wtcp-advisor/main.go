// Command wtcp-advisor builds the paper's §4.1 deployment artifact: the
// fixed table a base station keeps, mapping a wireless error
// characteristic (mean bad-period length) to the "good" wired packet size
// for it. It calibrates by simulation sweeps and can then answer
// point queries.
//
//	wtcp-advisor                      # calibrate and print the table
//	wtcp-advisor -query 2.5s          # calibrate, then recommend for 2.5s fades
//	wtcp-advisor -reps 10 -csv        # higher-confidence calibration, CSV out
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"wtcp/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wtcp-advisor:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wtcp-advisor", flag.ContinueOnError)
	var (
		reps  = fs.Int("reps", 5, "replications per calibration point")
		query = fs.Duration("query", 0, "optionally recommend a packet size for this mean bad period")
		csv   = fs.Bool("csv", false, "emit the table as CSV")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	advisor, err := experiment.CalibrateAdvisor(context.Background(), experiment.Options{Replications: *reps})
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println("mean_bad_sec,packet_size_bytes,throughput_kbps")
		for _, e := range advisor.Table() {
			fmt.Printf("%.1f,%d,%.2f\n", e.MeanBad.Seconds(), e.PacketSize, e.ThroughputKbps)
		}
	} else {
		fmt.Println("packet-size advisory table (basic TCP, wide-area preset):")
		fmt.Print(advisor.String())
	}
	if *query > 0 {
		size := advisor.Recommend(*query)
		fmt.Printf("recommended packet size for %v fades: %s\n", *query, size)
	}
	return nil
}
